(* Benchmark harness: one Bechamel micro-benchmark per table/figure
   workload of the paper, followed by the full regeneration of every
   table and figure (paper-vs-measured).

   Run with:  dune exec bench/main.exe
   Environment:
     PIPESCHED_STUDY_COUNT  blocks in the main study (default 16000)
     PIPESCHED_BENCH_QUOTA  seconds per micro-benchmark (default 0.5) *)

open Bechamel
open Toolkit
open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Generator = Pipesched_synth.Generator
module Harness = Pipesched_harness

let machine = Machine.Presets.simulation

(* Deterministic fixture: a block whose optimized size is exactly [n]. *)
let block_of_size seed n =
  let rng = Rng.create seed in
  let rec go attempts best =
    if attempts = 0 then snd (Option.get best)
    else
      let blk = Generator.block rng (Generator.sample_params rng) in
      let d = abs (Block.length blk - n) in
      let best =
        match best with
        | Some (d0, _) when d0 <= d -> best
        | _ -> Some (d, blk)
      in
      if d = 0 then blk else go (attempts - 1) best
  in
  go 3000 None

let dag_of n = Dag.of_block (block_of_size (1000 + n) n)

let dag10 = dag_of 10
let dag15 = dag_of 15
let dag16 = dag_of 16
let dag20 = dag_of 20
let dag30 = dag_of 30
let dag11 = dag_of 11

let order15 = List_sched.schedule List_sched.Max_distance dag15

let search ?(options = Optimal.default_options) dag () =
  ignore (Optimal.schedule ~options machine dag)

let with_options o =
  { Optimal.default_options with Optimal.lambda = 50_000 } |> o

let tests =
  [ (* §2.3: the cost of one Omega call on a typical 15-instruction
       block (the paper measured 0.12 ms on a Gould NP1). *)
    Test.make ~name:"omega/evaluate-n15"
      (Staged.stage (fun () ->
           ignore (Omega.evaluate machine dag15 ~order:order15)));
    (* Table 1 workloads: the proposed pruned search, and the legal-only
       enumeration it is compared against. *)
    Test.make ~name:"table1/proposed-search-n16"
      (Staged.stage (search dag16));
    Test.make ~name:"table1/legal-only-count-n11"
      (Staged.stage (fun () ->
           ignore (Baselines.count_legal_schedules ~cutoff:200_000 dag11)));
    (* Table 7: one full study step — generate, compile, schedule. *)
    Test.make ~name:"table7/study-step"
      (Staged.stage
         (let rng = Rng.create 7 in
          fun () ->
            let blk = Generator.block rng (Generator.sample_params rng) in
            ignore (Harness.Study.run_block machine blk)));
    (* Figures 1 and 6: search cost across block sizes. *)
    Test.make ~name:"fig1-fig6/search-n10" (Staged.stage (search dag10));
    Test.make ~name:"fig1-fig6/search-n20" (Staged.stage (search dag20));
    Test.make ~name:"fig1-fig6/search-n30" (Staged.stage (search dag30));
    (* Figure 4: the list-schedule seed (initial NOPs) vs the search. *)
    Test.make ~name:"fig4/list-schedule-n20"
      (Staged.stage (fun () ->
           ignore (List_sched.schedule List_sched.Max_distance dag20)));
    (* Figure 5: the synthetic generator itself. *)
    Test.make ~name:"fig5/generate-block"
      (Staged.stage
         (let rng = Rng.create 5 in
          fun () ->
            ignore (Generator.block rng (Generator.sample_params rng))));
    (* Figure 7: a curtailed search (lambda = 1000). *)
    Test.make ~name:"fig7/curtailed-search-n30"
      (Staged.stage
         (search
            ~options:{ Optimal.default_options with Optimal.lambda = 1_000 }
            dag30));
    (* Ablations (DESIGN.md §5): the two optimality-preserving extensions
       and the machine-aware seed. *)
    Test.make ~name:"ablation/critical-path-bound-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.lower_bound = Optimal.Critical_path }))
            dag20));
    Test.make ~name:"ablation/strong-equivalence-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.strong_equivalence = true }))
            dag20));
    Test.make ~name:"ablation/no-list-seed-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.seed = List_sched.Source_order }))
            dag20));
    (* Baseline one-pass schedulers. *)
    Test.make ~name:"baseline/greedy-n20"
      (Staged.stage (fun () -> ignore (Baselines.greedy machine dag20)));
    Test.make ~name:"baseline/gross-n20"
      (Staged.stage (fun () -> ignore (Baselines.gross machine dag20)));
    (* Multi-pipe extension on the demo machine. *)
    Test.make ~name:"extension/multi-pipe-n10"
      (Staged.stage (fun () ->
           ignore (Optimal.schedule_multi Machine.Presets.demo dag10)));
    (* Windowed scheduling of a large block (§5.3). *)
    Test.make ~name:"extension/windowed-w8-n30"
      (Staged.stage (fun () ->
           ignore (Windowed.schedule ~window:8 machine dag30)));
    (* Region scheduling with entry-state threading (footnote 1). *)
    Test.make ~name:"extension/region-3-blocks"
      (Staged.stage
         (let dags = [ dag10; dag_of 12; dag_of 9 ] in
          fun () -> ignore (Region.schedule machine dags)));
    (* Whole-program compilation with control flow (§6). *)
    Test.make ~name:"extension/cflow-compile+schedule"
      (Staged.stage
         (let prog =
            Pipesched_synth.Generator.structured_program (Rng.create 44)
              { Pipesched_synth.Generator.statements = 12; variables = 5;
                constants = 3 }
              ~depth:2
          in
          fun () ->
            let cfg =
              Pipesched_cflow.Cfg.merge_chains
                (Pipesched_cflow.Lower.lower prog)
            in
            ignore (Pipesched_cflow.Schedule.schedule machine cfg)))
  ]

let run_benchmarks () =
  let quota =
    match Sys.getenv_opt "PIPESCHED_BENCH_QUOTA" with
    | Some s -> float_of_string s
    | None -> 0.5
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:true ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf
    "Micro-benchmarks (one per table/figure workload; ns per run):\n";
  Printf.printf "  %-36s %14s\n" "benchmark" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f\n" name est
          | Some _ | None -> Printf.printf "  %-36s %14s\n" name "n/a")
        analyzed)
    tests;
  Printf.printf "\n%!"

let () =
  run_benchmarks ();
  let count =
    match Sys.getenv_opt "PIPESCHED_STUDY_COUNT" with
    | Some s -> int_of_string s
    | None -> 16_000
  in
  Harness.Experiments.run_all ~count Format.std_formatter
