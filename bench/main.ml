(* Benchmark harness: one Bechamel micro-benchmark per table/figure
   workload of the paper, followed by the full regeneration of every
   table and figure (paper-vs-measured).  Besides the human-readable
   output, the estimates are written to BENCH_results.json so the perf
   trajectory is machine-checkable across PRs.

   Run with:  dune exec bench/main.exe -- [--jobs N] [--search-jobs N]
   Environment:
     PIPESCHED_STUDY_COUNT   blocks in the main study (default 16000)
     PIPESCHED_BENCH_QUOTA   seconds per micro-benchmark (default 0.5)
     PIPESCHED_JOBS          worker domains for the study (default: the
                             recommended domain count; --jobs wins)
     PIPESCHED_SEARCH_JOBS   worker domains inside each optimal search
                             (default 1; --search-jobs wins) *)

(* Alias before [open Toolkit], which shadows [Monotonic_clock] with the
   bechamel measure of the same name. *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit
open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Generator = Pipesched_synth.Generator
module Harness = Pipesched_harness

let machine = Machine.Presets.simulation

(* Deterministic fixture: a block whose optimized size is exactly [n]. *)
let block_of_size seed n =
  let rng = Rng.create seed in
  let rec go attempts best =
    if attempts = 0 then snd (Option.get best)
    else
      let blk = Generator.block rng (Generator.sample_params rng) in
      let d = abs (Block.length blk - n) in
      let best =
        match best with
        | Some (d0, _) when d0 <= d -> best
        | _ -> Some (d, blk)
      in
      if d = 0 then blk else go (attempts - 1) best
  in
  go 3000 None

let dag_of n = Dag.of_block (block_of_size (1000 + n) n)

let dag10 = dag_of 10
let dag15 = dag_of 15
let dag16 = dag_of 16
let dag20 = dag_of 20
let dag30 = dag_of 30
let dag11 = dag_of 11

(* Hard block for the intra-search parallel speedup evidence: 8 mutually
   independent multiplies interleaved with 6 independent loads.  Wide
   independent blocks are the hard case for the search — the free-slot
   equivalence pruning cannot collapse piped instructions, so the tree
   is genuinely large — yet this one still completes, which the evidence
   needs (identical results at every job count are only guaranteed for
   completed searches). *)
let parallel_hard_dag =
  let mul i id = Tuple.make ~id Op.Mul (Operand.Imm i) (Operand.Imm (i + 1)) in
  let load j id =
    Tuple.make ~id Op.Load (Operand.Var (Printf.sprintf "v%d" j)) Operand.Null
  in
  let rec weave a b =
    match (a, b) with
    | [], r | r, [] -> r
    | x :: xs, y :: ys -> x :: y :: weave xs ys
  in
  let seq =
    weave
      (List.init 8 (fun i -> `M (i + 1)))
      (List.init 6 (fun j -> `L (j + 1)))
  in
  Dag.of_block
    (Block.of_tuples_exn
       (List.mapi
          (fun k x ->
            let id = k + 1 in
            match x with `M i -> mul i id | `L j -> load j id)
          seq))

(* The unseeded search (Source_order) has to discover the optimum on its
   own, which is what makes the incumbent sharing measurable; lambda is
   set well above the ~8M calls the serial search needs so every job
   count completes and therefore reports the identical schedule. *)
let parallel_hard_options jobs =
  { Optimal.default_options with
    Optimal.lambda = 30_000_000;
    Optimal.seed = List_sched.Source_order;
    Optimal.parallel_activation = 256;
    Optimal.search_jobs = jobs }

let order15 = List_sched.schedule List_sched.Max_distance dag15

let search ?(options = Optimal.default_options) dag () =
  ignore (Optimal.schedule ~options machine dag)

let with_options o =
  { Optimal.default_options with Optimal.lambda = 50_000 } |> o

let tests =
  [ (* §2.3: the cost of one Omega call on a typical 15-instruction
       block (the paper measured 0.12 ms on a Gould NP1). *)
    Test.make ~name:"omega/evaluate-n15"
      (Staged.stage (fun () ->
           ignore (Omega.evaluate machine dag15 ~order:order15)));
    (* Table 1 workloads: the proposed pruned search, and the legal-only
       enumeration it is compared against. *)
    Test.make ~name:"table1/proposed-search-n16"
      (Staged.stage (search dag16));
    Test.make ~name:"table1/legal-only-count-n11"
      (Staged.stage (fun () ->
           ignore (Baselines.count_legal_schedules ~cutoff:200_000 dag11)));
    (* Table 7: one full study step — generate, compile, schedule. *)
    Test.make ~name:"table7/study-step"
      (Staged.stage
         (let rng = Rng.create 7 in
          fun () ->
            let blk = Generator.block rng (Generator.sample_params rng) in
            ignore (Harness.Study.run_block machine blk)));
    (* Figures 1 and 6: search cost across block sizes. *)
    Test.make ~name:"fig1-fig6/search-n10" (Staged.stage (search dag10));
    Test.make ~name:"fig1-fig6/search-n20" (Staged.stage (search dag20));
    Test.make ~name:"fig1-fig6/search-n30" (Staged.stage (search dag30));
    (* Figure 4: the list-schedule seed (initial NOPs) vs the search. *)
    Test.make ~name:"fig4/list-schedule-n20"
      (Staged.stage (fun () ->
           ignore (List_sched.schedule List_sched.Max_distance dag20)));
    (* Figure 5: the synthetic generator itself. *)
    Test.make ~name:"fig5/generate-block"
      (Staged.stage
         (let rng = Rng.create 5 in
          fun () ->
            ignore (Generator.block rng (Generator.sample_params rng))));
    (* Figure 7: a curtailed search (lambda = 1000). *)
    Test.make ~name:"fig7/curtailed-search-n30"
      (Staged.stage
         (search
            ~options:{ Optimal.default_options with Optimal.lambda = 1_000 }
            dag30));
    (* Ablations (DESIGN.md §5): the two optimality-preserving extensions
       and the machine-aware seed. *)
    Test.make ~name:"ablation/critical-path-bound-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.lower_bound = Optimal.Critical_path }))
            dag20));
    Test.make ~name:"ablation/strong-equivalence-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.strong_equivalence = true }))
            dag20));
    Test.make ~name:"ablation/no-list-seed-n20"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with Optimal.seed = List_sched.Source_order }))
            dag20));
    (* Dominance memoization on a deep search: same block, memo forced
       on from the first Omega call vs fully off. *)
    Test.make ~name:"memo/search-n30-on"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with
                     Optimal.memo =
                       { o.Optimal.memo with Optimal.memo_activation = 0 } }))
            dag30));
    Test.make ~name:"memo/search-n30-off"
      (Staged.stage
         (search
            ~options:
              (with_options (fun o ->
                   { o with
                     Optimal.memo =
                       { o.Optimal.memo with Optimal.memo_enabled = false } }))
            dag30));
    (* Baseline one-pass schedulers. *)
    Test.make ~name:"baseline/greedy-n20"
      (Staged.stage (fun () -> ignore (Baselines.greedy machine dag20)));
    Test.make ~name:"baseline/gross-n20"
      (Staged.stage (fun () -> ignore (Baselines.gross machine dag20)));
    (* Multi-pipe extension on the demo machine. *)
    Test.make ~name:"extension/multi-pipe-n10"
      (Staged.stage (fun () ->
           ignore (Optimal.schedule_multi Machine.Presets.demo dag10)));
    (* Windowed scheduling of a large block (§5.3). *)
    Test.make ~name:"extension/windowed-w8-n30"
      (Staged.stage (fun () ->
           ignore (Windowed.schedule ~window:8 machine dag30)));
    (* Region scheduling with entry-state threading (footnote 1). *)
    Test.make ~name:"extension/region-3-blocks"
      (Staged.stage
         (let dags = [ dag10; dag_of 12; dag_of 9 ] in
          fun () -> ignore (Region.schedule machine dags)));
    (* Whole-program compilation with control flow (§6). *)
    Test.make ~name:"extension/cflow-compile+schedule"
      (Staged.stage
         (let prog =
            Pipesched_synth.Generator.structured_program (Rng.create 44)
              { Pipesched_synth.Generator.statements = 12; variables = 5;
                constants = 3 }
              ~depth:2
          in
          fun () ->
            let cfg =
              Pipesched_cflow.Cfg.merge_chains
                (Pipesched_cflow.Lower.lower prog)
            in
            ignore (Pipesched_cflow.Schedule.schedule machine cfg)))
  ]

let run_benchmarks () =
  let quota =
    match Sys.getenv_opt "PIPESCHED_BENCH_QUOTA" with
    | Some s -> float_of_string s
    | None -> 0.5
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:true ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf
    "Micro-benchmarks (one per table/figure workload; ns per run):\n";
  Printf.printf "  %-36s %14s\n" "benchmark" "ns/run";
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            estimates := (name, est) :: !estimates;
            Printf.printf "  %-36s %14.1f\n" name est
          | Some _ | None -> Printf.printf "  %-36s %14s\n" name "n/a")
        analyzed)
    tests;
  Printf.printf "\n%!";
  List.rev !estimates

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Deterministic evidence that the dominance memo is a pure search
   accelerator: the deep fixture searched with the memo forced on vs
   off must agree on the optimum while spending fewer Omega calls. *)
let memo_evidence () =
  let outcome memo =
    Optimal.schedule
      ~options:
        { Optimal.default_options with Optimal.lambda = 50_000;
          Optimal.memo = memo }
      machine dag30
  in
  let on =
    outcome { Optimal.default_memo with Optimal.memo_activation = 0 }
  in
  let off =
    outcome { Optimal.default_memo with Optimal.memo_enabled = false }
  in
  if on.Optimal.best.Omega.nops <> off.Optimal.best.Omega.nops then
    failwith "memo changed the reported optimum on the n30 fixture";
  (on, off)

(* Anytime evidence: with a 50 ms wall-clock deadline and an effectively
   unlimited lambda, every entry point must come back promptly with a
   complete legal incumbent; the recorded status says whether the
   deadline (rather than lambda) is what stopped the search.  The
   fixture is 36 mutually independent, pairwise distinct instructions —
   a search space equivalence pruning cannot collapse, so no budget this
   side of the deadline proves the optimum. *)
let deadline_evidence () =
  let deadline_s = 0.05 in
  let hard_dag =
    let ops = [| Op.Load; Op.Mul; Op.Div; Op.Mod |] in
    Dag.of_block
      (Block.of_tuples_exn
         (List.init 36 (fun i ->
              match ops.(i mod 4) with
              | Op.Load ->
                Tuple.make ~id:(i + 1) Op.Load
                  (Operand.Var (Printf.sprintf "v%d" i))
                  Operand.Null
              | op ->
                Tuple.make ~id:(i + 1) op (Operand.Imm (i + 1))
                  (Operand.Imm (i + 2)))))
  in
  let options =
    { Optimal.default_options with
      Optimal.lambda = max_int;
      Optimal.deadline_s = Some deadline_s }
  in
  let timed f =
    let t0 = Mclock.now () in
    let status, nops = f () in
    let wall_s = Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e9 in
    (status, nops, wall_s)
  in
  ( deadline_s,
    [ ("schedule",
       timed (fun () ->
           let o = Optimal.schedule ~options machine hard_dag in
           (o.Optimal.stats.Optimal.status, o.Optimal.best.Omega.nops)));
      ("schedule_bounded",
       timed (fun () ->
           match
             Optimal.schedule_bounded ~options ~registers:16 machine hard_dag
           with
           | Ok o -> (o.Optimal.stats.Optimal.status, o.Optimal.best.Omega.nops)
           | Error () -> (Pipesched_prelude.Budget.Curtailed_deadline, -1)));
      ("windowed",
       timed (fun () ->
           let o = Windowed.schedule ~options ~window:20 machine hard_dag in
           (o.Windowed.status, o.Windowed.best.Omega.nops))) ] )

(* Intra-search parallel speedup: the committed hard block scheduled at
   search-jobs 1/2/4, wall-clock best of two runs each.  A completed
   parallel search reports the same schedule as the serial one (the
   incumbent join is deterministic), so the evidence also asserts the
   results are byte-identical across job counts. *)
let search_speedup_evidence () =
  let run jobs =
    let wall = ref infinity in
    let result = ref None in
    for _rep = 1 to 2 do
      let t0 = Mclock.now () in
      let r =
        Optimal.schedule
          ~options:(parallel_hard_options jobs)
          machine parallel_hard_dag
      in
      let s = Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e9 in
      if s < !wall then wall := s;
      result := Some r
    done;
    (Option.get !result, !wall)
  in
  let entries = List.map (fun jobs -> (jobs, run jobs)) [ 1; 2; 4 ] in
  let serial, _ = List.assoc 1 entries in
  let identical =
    List.for_all
      (fun (_, ((r : Optimal.outcome), _)) ->
        r.Optimal.stats.Optimal.completed
        && r.Optimal.best = serial.Optimal.best)
      entries
  in
  if not identical then
    failwith "parallel search disagreed with serial on the hard block";
  List.iter
    (fun (jobs, ((r : Optimal.outcome), wall)) ->
      Printf.printf
        "Search speedup: jobs=%d wall=%.3fs nops=%d omega-calls=%d\n%!" jobs
        wall r.Optimal.best.Omega.nops r.Optimal.stats.Optimal.omega_calls)
    entries;
  (entries, identical)

(* Portfolio evidence (DESIGN.md §14), two claims:

   (1) Corpus race: both exact backends over a seeded mixed corpus
   (alternating the simulation machine with random machines).  The
   backends search the same space under the same Omega semantics, so a
   proved-optimum disagreement is a solver bug and fails the bench
   outright; and each backend must prove-first on at least one block,
   or racing them would be pointless.

   (2) Hard-block wall clock, over a committed pair chosen so each
   backend dominates one block: the cp-favored mul8-load6 weave (cp
   proves in sub-ms where bnb burns seconds) and the bnb-favored
   gen-seed-28 block (bnb proves in ~0.2s where cp runs to its
   deadline).  No fixed backend choice is right for both — that is the
   point of the portfolio — so the gated ratio is total portfolio wall
   over the pair versus the better FIXED single backend (the oracle
   per-block minimum is unreachable on one core, where the two race
   domains timeshare).  The inline CP presolve keeps the portfolio at
   epsilon over bare cp on cp-easy blocks.

   PIPESCHED_PORTFOLIO_COUNT sets the corpus size (default 200). *)
type pf_hard = {
  ph_name : string;
  ph_bnb : float;
  ph_cp : float;
  ph_portfolio : float;
}

type portfolio_evidence = {
  pf_corpus : int;
  pf_wins_bnb : int;
  pf_wins_cp : int;
  pf_neither : int;
  pf_proved : int;
  pf_hard : pf_hard list;
  pf_total_bnb : float;
  pf_total_cp : float;
  pf_total_portfolio : float;
  pf_overhead : float;
      (* total_portfolio / min(total_bnb, total_cp) over the hard pair *)
}

let portfolio_evidence () =
  let corpus =
    match Sys.getenv_opt "PIPESCHED_PORTFOLIO_COUNT" with
    | Some s -> int_of_string s
    | None -> 200
  in
  let options = { Optimal.default_options with Optimal.lambda = 50_000 } in
  let wins_bnb = ref 0 and wins_cp = ref 0 and neither = ref 0 in
  let proved = ref 0 and disagreements = ref 0 in
  for i = 1 to corpus do
    let m =
      if i mod 2 = 0 then machine
      else Generator.random_machine (Rng.create ((2026 + i) * 7919))
    in
    let dag = Dag.of_block (Generator.of_seed (2026 + i)) in
    match Portfolio.run ~options m dag with
    | o ->
      (match o.Portfolio.winner with
       | Some Portfolio.Bnb -> incr wins_bnb
       | Some Portfolio.Cp -> incr wins_cp
       | None -> incr neither);
      if o.Portfolio.proved <> None then incr proved
    | exception Portfolio.Disagreement msg ->
      incr disagreements;
      prerr_endline ("portfolio disagreement: " ^ msg)
  done;
  if !disagreements > 0 then
    failwith
      (Printf.sprintf "portfolio: %d bnb-vs-cp disagreements" !disagreements);
  if !wins_bnb = 0 || !wins_cp = 0 then
    failwith
      (Printf.sprintf
         "portfolio: a backend never proved first (bnb %d, cp %d of %d) — \
          the race is pointless on this corpus"
         !wins_bnb !wins_cp corpus);
  let timed f =
    let best = ref infinity in
    for _rep = 1 to 2 do
      let t0 = Mclock.now () in
      f ();
      let s = Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e9 in
      if s < !best then best := s
    done;
    !best
  in
  let backend name options m dag =
    let (module B : Scheduler.S) = Option.get (Scheduler.find name) in
    timed (fun () -> ignore (B.schedule ~options m dag))
  in
  let hard_pair =
    [
      ("weave-mul8-load6-n14", machine, parallel_hard_dag,
       parallel_hard_options 1);
      (let s = 28 in
       ( Printf.sprintf "gen-seed-%d-n26" s,
         Generator.random_machine (Rng.create (s * 7919)),
         Dag.of_block (Generator.of_seed s),
         { Optimal.default_options with
           Optimal.lambda = 2_000_000;
           Optimal.deadline_s = Some 3.0 } ));
    ]
  in
  let pf_hard =
    List.map
      (fun (ph_name, m, dag, options) ->
        let ph_bnb = backend "bnb" options m dag in
        let ph_cp = backend "cp" options m dag in
        let ph_portfolio = backend "portfolio" options m dag in
        Printf.printf
          "Portfolio hard block %s: bnb %.3fs cp %.3fs portfolio %.3fs\n%!"
          ph_name ph_bnb ph_cp ph_portfolio;
        { ph_name; ph_bnb; ph_cp; ph_portfolio })
      hard_pair
  in
  let total f = List.fold_left (fun acc h -> acc +. f h) 0. pf_hard in
  let pf_total_bnb = total (fun h -> h.ph_bnb) in
  let pf_total_cp = total (fun h -> h.ph_cp) in
  let pf_total_portfolio = total (fun h -> h.ph_portfolio) in
  let pf_overhead =
    pf_total_portfolio /. Float.min pf_total_bnb pf_total_cp
  in
  Printf.printf
    "Portfolio: %d blocks raced, 0 disagreements; first proof bnb %d / cp \
     %d / neither %d; hard pair bnb %.3fs cp %.3fs portfolio %.3fs \
     (%.2fx the best fixed single backend)\n%!"
    corpus !wins_bnb !wins_cp !neither pf_total_bnb pf_total_cp
    pf_total_portfolio pf_overhead;
  {
    pf_corpus = corpus;
    pf_wins_bnb = !wins_bnb;
    pf_wins_cp = !wins_cp;
    pf_neither = !neither;
    pf_proved = !proved;
    pf_hard;
    pf_total_bnb;
    pf_total_cp;
    pf_total_portfolio;
    pf_overhead;
  }

(* Serving evidence: a duplicate-heavy request stream (90% of requests
   are isomorphic re-presentations of an earlier block) replayed against
   the scheduling service twice — cache disabled ("cold": every request
   is a fresh search) and cache enabled ("hot": repeats answered from
   the canonical-form LRU).  Because both paths render the stored
   canonical solution through the request's own permutation, the two
   response streams must be byte-identical — asserted here, gated in
   CI. *)
let server_evidence () =
  let module Server = Pipesched_serve.Server in
  let module Json = Pipesched_prelude.Json in
  let uniques = 20 and copies = 10 in
  (* Isomorphic re-presentation k of a block: fresh ids, renamed
     virtual registers, shifted immediates — canonically equal, not
     textually equal. *)
  let relabel k blk =
    Block.of_tuples_exn
      (List.map
         (fun (tu : Tuple.t) ->
           let operand = function
             | Operand.Ref id -> Operand.Ref (id + (10_000 * k))
             | Operand.Var s -> Operand.Var (Printf.sprintf "%s~%d" s k)
             | Operand.Imm i -> Operand.Imm (i + k)
             | Operand.Null -> Operand.Null
           in
           Tuple.make
             ~id:(tu.Tuple.id + (10_000 * k))
             tu.Tuple.op (operand tu.Tuple.a) (operand tu.Tuple.b))
         (Array.to_list (Block.tuples blk)))
  in
  let rng = Rng.create 2026 in
  (* Moderately hard uniques: each miss must cost a real search (a few
     ms), while a hit costs one canonicalization + render (~50 us) —
     otherwise the hot/cold ratio just measures JSON plumbing.  Blocks
     are screened deterministically: kept only if the default search
     completes (curtailed results are never cached) after a nontrivial
     number of Omega calls. *)
  let base =
    let acc = ref [] and kept = ref 0 and drawn = ref 0 in
    while !kept < uniques && !drawn < 50 * uniques do
      incr drawn;
      let blk =
        Generator.block ~freq:Pipesched_synth.Frequency.mul_heavy rng
          { Generator.statements = 15 + Rng.int rng 4;
            variables = 5 + Rng.int rng 3;
            constants = 2 + Rng.int rng 2 }
      in
      let stats =
        (Optimal.schedule machine (Dag.of_block blk)).Optimal.stats
      in
      if stats.Optimal.completed && stats.Optimal.omega_calls >= 2000 then begin
        incr kept;
        acc := blk :: !acc
      end
    done;
    if !kept < uniques then failwith "server: too few qualifying fixtures";
    List.rev !acc
  in
  (* Interleave the classes so hits and misses mix the way a serving
     workload would, rather than solving everything up front. *)
  let requests =
    List.concat
      (List.init copies (fun k ->
           List.mapi
             (fun i blk ->
               let id = (k * uniques) + i in
               Json.to_string
                 (Json.Assoc
                    [ ("id", Json.Int id);
                      ("machine", Json.String "simulation");
                      ("block",
                       Json.String (Block.to_string (relabel k blk))) ]))
             base))
  in
  let n = List.length requests in
  let replay server =
    let lat = ref [] in
    let responses =
      List.map
        (fun line ->
          let t0 = Mclock.now () in
          let r = Server.handle_line server line in
          let ms =
            Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e6
          in
          lat := ms :: !lat;
          r)
        requests
    in
    (responses, List.rev !lat)
  in
  let cold_server = Server.create ~cache_capacity:0 () in
  let t0 = Mclock.now () in
  let cold_responses, _ = replay cold_server in
  let cold_s = Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e9 in
  let hot_server = Server.create ~cache_capacity:4096 () in
  let t0 = Mclock.now () in
  let hot_responses, hot_lat = replay hot_server in
  let hot_s = Int64.to_float (Int64.sub (Mclock.now ()) t0) /. 1e9 in
  if not (List.for_all2 String.equal cold_responses hot_responses) then
    failwith "server: cached response differed from a fresh solve";
  List.iter
    (fun r ->
      if not (Json.member "ok" (Result.get_ok (Json.parse r)) = Some (Json.Bool true))
      then failwith ("server: request failed: " ^ r))
    hot_responses;
  let hits = Server.cache_hits hot_server in
  let misses = Server.cache_misses hot_server in
  let hit_rate = float_of_int hits /. float_of_int n in
  let evidence =
    [ ("requests", float_of_int n);
      ("unique_blocks", float_of_int uniques);
      ("hit_rate", hit_rate);
      ("hits", float_of_int hits);
      ("misses", float_of_int misses);
      ("req_per_s_cold", float_of_int n /. cold_s);
      ("req_per_s_hot", float_of_int n /. hot_s);
      ("speedup_hot_vs_cold", cold_s /. hot_s);
      ("p50_ms", Harness.Stats.percentile 50.0 hot_lat);
      ("p99_ms", Harness.Stats.percentile 99.0 hot_lat) ]
  in
  Printf.printf
    "Server: %d requests (%d unique), hit rate %.2f, %.0f req/s hot vs \
     %.0f req/s cold (%.1fx), byte-identical responses\n%!"
    n uniques hit_rate
    (float_of_int n /. hot_s)
    (float_of_int n /. cold_s)
    (cold_s /. hot_s);
  evidence

let bench_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then (
          close_in_noerr ic;
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          try int_of_string digits with _ -> 0)
        else go ()
      | exception End_of_file ->
        close_in_noerr ic;
        0
    in
    go ()
  with Sys_error _ -> 0

(* Overload evidence: the same admission/supervision/degradation
   machinery the real daemon binary runs, driven in-process at roughly
   three times its measured capacity (estimated from the healthy run's
   fresh-solve p50, two workers).  Three properties of the overload
   contract are gated outright:

   - every request gets exactly one answer (unanswered == 0) — shed
     requests are answered inline by the certified list scheduler
     (--degrade), never silently dropped;
   - resident memory stays bounded (max_rss_ratio <= 2.0 across the
     run) — the 64-entry queue bound is what makes this hold at any
     offered rate;
   - degraded answers are cheap: their p99 under full overload stays
     under the healthy-mode optimal-solve p99 over the same block
     distribution (measured by a quiet serial probe), i.e. shedding to
     the list scheduler really is graceful degradation, not a slower
     path. *)
let overload_evidence ~healthy:(_ : Harness.Loadgen.report) =
  let module Server = Pipesched_serve.Server in
  let module Daemon = Pipesched_serve.Daemon in
  let module Loadgen = Harness.Loadgen in
  let module Json = Pipesched_prelude.Json in
  let stat stages field stage =
    List.fold_left
      (fun acc (s : Loadgen.stage_summary) ->
        if s.Loadgen.stage = stage then field s else acc)
      0.0 stages
  in
  (* Quiet probe: solve a sample of the very same seeded fresh-block
     stream serially on an idle server.  Its mean fixes the capacity
     estimate; its p99 is the healthy-mode optimal baseline the
     degraded path must beat. *)
  let probe_plan =
    Loadgen.plan ~hot:8 ~lambda:200_000 ~dup_rate:0.0 ~seed:2027
      ~shape:Loadgen.Soak ~rps:100.0 ~duration:2.0 ()
  in
  let probe_server = Server.create ~cache_capacity:4096 () in
  let probe_lat =
    Array.map
      (fun (r : Loadgen.request) ->
        let t0 = Unix.gettimeofday () in
        ignore (Server.handle_line probe_server r.Loadgen.line);
        1000.0 *. (Unix.gettimeofday () -. t0))
      probe_plan.Loadgen.requests
  in
  let probe_lat = Array.to_list probe_lat in
  let healthy_mean_ms =
    List.fold_left ( +. ) 0.0 probe_lat
    /. float_of_int (List.length probe_lat)
  in
  let healthy_optimal_p99 = Harness.Stats.percentile 99.0 probe_lat in
  (* One solver domain: capacity is deliberately constrained so the
     3x-overload point is reachable and reproducible on 2-core CI
     runners, and so solver-domain GC pressure does not swamp the
     inline degraded path whose latency is being gated. *)
  let jobs = 1 in
  let capacity_rps =
    float_of_int jobs *. 1000.0 /. Float.max 0.05 healthy_mean_ms
  in
  let offered_rps = 3.0 *. capacity_rps in
  let duration = Float.min 2.0 (2000.0 /. offered_rps) in
  let plan =
    Loadgen.plan ~hot:8 ~lambda:200_000 ~dup_rate:0.0 ~seed:2028
      ~shape:Loadgen.Soak ~rps:offered_rps ~duration ()
  in
  let n = Array.length plan.Loadgen.requests in
  let rss0 = Float.max 1.0 (float_of_int (bench_rss_kb ())) in
  let server = Server.create ~cache_capacity:4096 ~degrade:true () in
  let st = Daemon.create ~max_queue:64 ~degrade:true server in
  let o = Loadgen.outcome () in
  let lock = Mutex.create () in
  let answered = ref 0 in
  let send_times = Array.make (max n 1) 0.0 in
  let write response =
    let now = Unix.gettimeofday () in
    let id =
      match Json.parse response with
      | Ok j -> (
        match Json.member "id" j with Some (Json.Int i) -> i | _ -> -1)
      | Error _ -> -1
    in
    let latency_s =
      if id >= 0 && id < n then now -. send_times.(id) else 0.0
    in
    let stage = Loadgen.classify response in
    Mutex.lock lock;
    Loadgen.record o stage ~latency_s;
    incr answered;
    Mutex.unlock lock
  in
  let sup = Thread.create (fun () -> Daemon.supervise st ~jobs) () in
  let start = Unix.gettimeofday () in
  Array.iter
    (fun (r : Loadgen.request) ->
      let slack = start +. r.Loadgen.time -. Unix.gettimeofday () in
      if slack > 0.0005 then Thread.delay slack;
      send_times.(r.Loadgen.index) <- Unix.gettimeofday ();
      match
        Daemon.submit st ~line:r.Loadgen.line ~write ~on_done:(fun () -> ())
      with
      | Daemon.Accepted | Daemon.Answered -> ()
      | Daemon.Draining ->
        Mutex.lock lock;
        Loadgen.record o Loadgen.Dropped ~latency_s:0.0;
        Mutex.unlock lock)
    plan.Loadgen.requests;
  Daemon.begin_shutdown st;
  Thread.join sup;
  let wall_s = Unix.gettimeofday () -. start in
  let rss1 = float_of_int (bench_rss_kb ()) in
  let rss_ratio = rss1 /. rss0 in
  let unanswered = n - !answered in
  let report = Loadgen.summarize ~plan ~conns:1 ~wall_s o in
  let degraded_p99 =
    stat report.Loadgen.r_stages (fun s -> s.Loadgen.p99_ms) Loadgen.Degraded
  in
  if unanswered <> 0 then
    failwith
      (Printf.sprintf "overload: %d of %d request(s) never answered"
         unanswered n);
  if report.Loadgen.r_degraded = 0 then
    failwith
      (Printf.sprintf
         "overload: offered %.0f rps (3x estimated capacity) never \
          triggered degradation"
         offered_rps);
  if report.Loadgen.r_errors > 0 then
    failwith
      (Printf.sprintf "overload: %d request(s) errored"
         report.Loadgen.r_errors);
  if rss_ratio > 2.0 then
    failwith
      (Printf.sprintf "overload: RSS grew %.2fx (gate: <= 2.0)" rss_ratio);
  (* Two caveats on this comparison.  The relative bound breaks down
     when the optimal path itself gets faster (the growing-memo fix cut
     the healthy baseline ~3x, which says nothing about the degrade
     path), so a 2 ms absolute ceiling — an order of magnitude under
     pre-degradation hard-block solve tails — also counts as cheap.
     And on a single-core host the open-loop sender answers sheds
     inline while timesharing with the solver domain, so send-to-answer
     latency measures sender backlog (multiples of the 0.15 ms
     inter-arrival slot), not the degrade path: a direct probe of the
     path under a busy solver shows p99 < 0.1 ms.  There the gate is
     only a 25 ms sanity bound; the strict gate needs the second core
     this section was calibrated for (see the jobs comment above). *)
  let strict = Stdlib.Domain.recommended_domain_count () >= 2 in
  if strict && not (degraded_p99 < Float.max healthy_optimal_p99 2.0) then
    failwith
      (Printf.sprintf
         "overload: degraded p99 %.2f ms not under healthy optimal p99 \
          %.2f ms (nor the 2 ms absolute ceiling)"
         degraded_p99 healthy_optimal_p99);
  if not (degraded_p99 < 25.0) then
    failwith
      (Printf.sprintf "overload: degraded p99 %.2f ms fails 25 ms sanity"
         degraded_p99);
  Printf.printf
    "Server overload: offered %.0f rps (~3x capacity) for %.2f s, %d \
     requests: %d optimal / %d degraded / %d rejected, 0 unanswered, RSS \
     x%.2f, degraded p99 %.3f ms vs healthy optimal p99 %.2f ms\n\
     %!"
    offered_rps duration n
    (report.Loadgen.r_hits + report.Loadgen.r_fresh
   + report.Loadgen.r_curtailed)
    report.Loadgen.r_degraded report.Loadgen.r_rejected rss_ratio
    degraded_p99 healthy_optimal_p99;
  Json.Assoc
    [ ("offered_rps", Json.Float offered_rps);
      ("capacity_est_rps", Json.Float capacity_rps);
      ("duration_s", Json.Float duration);
      ("requests", Json.Int n);
      ("served_optimal",
       Json.Int
         (report.Loadgen.r_hits + report.Loadgen.r_fresh
        + report.Loadgen.r_curtailed));
      ("degraded", Json.Int report.Loadgen.r_degraded);
      ("rejected", Json.Int report.Loadgen.r_rejected);
      ("unanswered", Json.Int unanswered);
      ("max_rss_ratio", Json.Float rss_ratio);
      ("p99_degraded_ms", Json.Float degraded_p99);
      ("p99_healthy_optimal_ms", Json.Float healthy_optimal_p99) ]

(* Load-replay evidence: a Loadgen plan (the same seeded, DSL-shaped
   stream `pipesched_load` sends over a socket) replayed serially
   against a fresh caching server.  The per-stage counts and hit rate
   are a pure function of the plan seed and the server's deterministic
   behavior, so they are gated outright: any error, any drop, or a hit
   rate at or below 0.5 fails the bench.  The percentiles in the
   emitted report are wall-clock and informational. *)
let server_load_evidence () =
  let module Server = Pipesched_serve.Server in
  let module Loadgen = Harness.Loadgen in
  let module Json = Pipesched_prelude.Json in
  let plan =
    Loadgen.plan ~hot:8 ~lambda:200_000 ~dup_rate:0.9 ~seed:2026
      ~shape:Loadgen.Ramp ~rps:30.0 ~duration:4.0 ()
  in
  let server = Server.create ~cache_capacity:4096 () in
  let report =
    Loadgen.run_sync
      ~handle:(fun line -> Some (Server.handle_line server line))
      plan
  in
  if report.Loadgen.r_errors > 0 then
    failwith
      (Printf.sprintf "server_load: %d request(s) errored"
         report.Loadgen.r_errors);
  if report.Loadgen.r_drops > 0 then
    failwith
      (Printf.sprintf "server_load: %d request(s) dropped"
         report.Loadgen.r_drops);
  if not (report.Loadgen.r_hit_rate > 0.5) then
    failwith
      (Printf.sprintf "server_load: hit rate %.2f did not clear 0.5"
         report.Loadgen.r_hit_rate);
  let stage_stat field stage =
    List.fold_left
      (fun acc (s : Loadgen.stage_summary) ->
        if s.Loadgen.stage = stage then field s else acc)
      0.0 report.Loadgen.r_stages
  in
  let p50 = stage_stat (fun s -> s.Loadgen.p50_ms) in
  Printf.printf
    "Server load: %s seed %d, %d requests, hit rate %.2f (%d hit / %d \
     fresh), p50 %.2f ms hit vs %.2f ms fresh\n%!"
    (Loadgen.shape_to_string report.Loadgen.r_shape)
    report.Loadgen.r_seed report.Loadgen.r_requests
    report.Loadgen.r_hit_rate report.Loadgen.r_hits report.Loadgen.r_fresh
    (p50 Loadgen.Hit) (p50 Loadgen.Fresh);
  let overload = overload_evidence ~healthy:report in
  match Loadgen.report_json report with
  | Json.Assoc fields ->
    Json.to_string (Json.Assoc (fields @ [ ("overload", overload) ]))
  | j -> Json.to_string j

(* Mega-study evidence: the sharded engine's headline numbers, plus its
   two correctness claims asserted outright — the aggregate is
   byte-identical at shard counts 1/2/4, and a SIGKILLed-then-resumed
   run's aggregate is byte-identical to an uninterrupted one.  A third,
   soft claim rides along: worker RSS at the end of the run over RSS at
   its first checkpoint (max across shards) stays near 1, i.e. streaming
   aggregation really is constant-memory.

   PIPESCHED_MEGA_COUNT sets the corpus size (default 20000; the
   committed baseline uses 100000). *)
let mega_evidence () =
  let count =
    match Sys.getenv_opt "PIPESCHED_MEGA_COUNT" with
    | Some s -> int_of_string s
    | None -> 20_000
  in
  let dir = "_mega_bench" in
  let cfg shards =
    {
      Harness.Mega.default with
      Harness.Mega.seed = 2026;
      count;
      shards;
      jobs = 1;
      dedup_capacity = 4096;
      checkpoint_every = max 1 (count / 16);
      checkpoint_dir = dir;
    }
  in
  let run ?(resume = false) shards =
    match Harness.Mega.run ~resume (cfg shards) with
    | Error m -> failwith ("mega: " ^ m)
    | Ok (agg, stats) -> (Harness.Aggregate.render agg, stats)
  in
  let r1, s1 = run 1 in
  let r2, s2 = run 2 in
  let r4, s4 = run 4 in
  if not (String.equal r1 r2 && String.equal r1 r4) then
    failwith "mega: aggregate differs across shard counts";
  (* Kill shard 1 of 2 partway into its slice — deliberately between
     checkpoints — then resume and demand the uninterrupted bytes. *)
  Unix.putenv "PIPESCHED_MEGA_CRASH"
    (Printf.sprintf "1:%d" ((count / 4) + 3));
  let crashed =
    match Harness.Mega.run ~resume:false (cfg 2) with
    | Ok _ -> false
    | Error _ -> true
  in
  Unix.putenv "PIPESCHED_MEGA_CRASH" "";
  if not crashed then failwith "mega: injected crash did not fail the run";
  let r_resumed, s_resumed = run ~resume:true 2 in
  if not (String.equal r_resumed r1) then
    failwith "mega: resumed aggregate differs from uninterrupted run";
  if s_resumed.Harness.Mega.resumed = 0 then
    failwith "mega: resume replayed no checkpointed blocks";
  let max_rss_ratio =
    List.fold_left
      (fun m (s : Harness.Mega.stats) -> Float.max m s.Harness.Mega.max_rss_ratio)
      0.0 [ s1; s2; s4 ]
  in
  (* 0 = /proc unavailable; otherwise a growing ratio means per-block
     state is accumulating somewhere and the constant-memory claim is
     broken. *)
  if max_rss_ratio > 2.0 then
    failwith
      (Printf.sprintf "mega: worker RSS grew %.2fx over the run"
         max_rss_ratio);
  Printf.printf
    "Mega: %d blocks; %.0f / %.0f / %.0f blocks/s at 1/2/4 shards, \
     byte-identical; kill+resume byte-identical (replayed %d); max RSS \
     ratio %.2f\n%!"
    count s1.Harness.Mega.blocks_per_s s2.Harness.Mega.blocks_per_s
    s4.Harness.Mega.blocks_per_s s_resumed.Harness.Mega.resumed
    max_rss_ratio;
  (count, [ (1, s1); (2, s2); (4, s4) ], max_rss_ratio)

let write_results_json ~path ~jobs ~study_count ~study_failures ~study_wall_s
    ~study_dedup estimates =
  let memo_on, memo_off = memo_evidence () in
  let deadline_s, deadline_entries = deadline_evidence () in
  let speedup_entries, speedup_identical = search_speedup_evidence () in
  let server = server_evidence () in
  let server_load = server_load_evidence () in
  (* The portfolio corpus race spawns hundreds of short-lived domains
     and runs a multi-million-call search, which permanently grows the
     process major heap; run it after the server/overload sections so
     the overload gate's degraded-p99-vs-healthy-p99 comparison is
     measured under the same heap conditions it was calibrated on. *)
  let pf = portfolio_evidence () in
  let mega_count, mega_runs, mega_rss_ratio = mega_evidence () in
  let dedup_uniq, _, dedup_rate = study_dedup in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"jobs\": %d,\n" jobs;
  p
    "  \"study\": { \"count\": %d, \"failures\": %d, \"wall_s\": %.6f, \
     \"blocks_per_s\": %.1f, \"unique_blocks\": %d, \"dedup_rate\": %.4f },\n"
    study_count study_failures study_wall_s
    (float_of_int study_count /. study_wall_s)
    dedup_uniq dedup_rate;
  let best_rate =
    List.fold_left
      (fun m (_, (s : Harness.Mega.stats)) ->
        Float.max m s.Harness.Mega.blocks_per_s)
      0.0 mega_runs
  in
  p
    "  \"mega\": { \"count\": %d, \"shards\": %d, \"blocks_per_s\": %.1f, \
     \"resume_identical\": true, \"max_rss_ratio\": %.3f"
    mega_count
    (List.fold_left (fun m (sh, _) -> max m sh) 0 mega_runs)
    best_rate mega_rss_ratio;
  List.iter
    (fun (sh, (s : Harness.Mega.stats)) ->
      p ", \"shards%d\": { \"blocks_per_s\": %.1f, \"wall_s\": %.6f }" sh
        s.Harness.Mega.blocks_per_s s.Harness.Mega.wall_s)
    mega_runs;
  p " },\n";
  p "  \"server\": {";
  List.iteri
    (fun i (k, v) ->
      p "%s \"%s\": %s"
        (if i = 0 then "" else ",")
        k
        (if Float.is_integer v then Printf.sprintf "%.0f" v
         else Printf.sprintf "%.4f" v))
    server;
  p " },\n";
  p "  \"server_load\": %s,\n" server_load;
  p
    "  \"memo\": { \"nops\": %d, \"calls_on\": %d, \"calls_off\": %d, \
     \"hits\": %d, \"entries\": %d, \"evictions\": %d },\n"
    memo_on.Optimal.best.Omega.nops memo_on.Optimal.stats.Optimal.omega_calls
    memo_off.Optimal.stats.Optimal.omega_calls
    memo_on.Optimal.stats.Optimal.memo_hits
    memo_on.Optimal.stats.Optimal.memo_entries
    memo_on.Optimal.stats.Optimal.memo_evictions;
  p
    "  \"portfolio\": { \"corpus\": %d, \"disagreements\": 0, \
     \"wins_bnb\": %d, \"wins_cp\": %d, \"neither\": %d, \"proved\": %d,\n"
    pf.pf_corpus pf.pf_wins_bnb pf.pf_wins_cp pf.pf_neither pf.pf_proved;
  p "    \"hard_blocks\": [";
  List.iteri
    (fun i h ->
      p
        "%s { \"name\": \"%s\", \"wall_bnb_s\": %.6f, \"wall_cp_s\": %.6f, \
         \"wall_portfolio_s\": %.6f }"
        (if i = 0 then "" else ",")
        (json_escape h.ph_name) h.ph_bnb h.ph_cp h.ph_portfolio)
    pf.pf_hard;
  p " ],\n";
  p
    "    \"wall_bnb_s\": %.6f, \"wall_cp_s\": %.6f, \
     \"wall_portfolio_s\": %.6f, \"overhead_vs_best\": %.3f },\n"
    pf.pf_total_bnb pf.pf_total_cp pf.pf_total_portfolio pf.pf_overhead;
  p "  \"deadline\": { \"deadline_s\": %.3f" deadline_s;
  List.iter
    (fun (name, (status, nops, wall_s)) ->
      p ", \"%s\": { \"status\": \"%s\", \"nops\": %d, \"wall_s\": %.6f }"
        (json_escape name)
        (Pipesched_prelude.Budget.status_to_string status)
        nops wall_s)
    deadline_entries;
  p " },\n";
  let wall_of jobs = snd (List.assoc jobs speedup_entries) in
  p
    "  \"search_speedup\": { \"block\": \"mul8-load6-interleaved-n14\", \
     \"lambda\": 30000000, \"identical_results\": %b"
    speedup_identical;
  List.iter
    (fun (jobs, ((r : Optimal.outcome), wall)) ->
      p ", \"j%d\": { \"wall_s\": %.6f, \"nops\": %d, \"omega_calls\": %d }"
        jobs wall r.Optimal.best.Omega.nops
        r.Optimal.stats.Optimal.omega_calls)
    speedup_entries;
  p ", \"speedup_j2\": %.3f, \"speedup_j4\": %.3f },\n"
    (wall_of 1 /. wall_of 2) (wall_of 1 /. wall_of 4);
  p "  \"benchmarks\": {\n";
  List.iteri
    (fun i (name, est) ->
      p "    \"%s\": %.1f%s\n" (json_escape name) est
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  p "  }\n";
  p "}\n";
  close_out oc;
  Printf.printf "Wrote %s\n%!" path

let () =
  (* A [--mega-worker] invocation is a shard of the mega evidence
     re-executing this binary; it must never fall through into the
     benchmarks. *)
  Harness.Mega.run_if_worker ();
  (* Larger per-domain minor heaps (4M words = 32 MB): a minor collection
     in OCaml 5 is a stop-the-world barrier across every domain, so at
     search-jobs > 1 collection frequency is directly wall-clock.  Set
     before any domain spawns; applies identically at every job count,
     so the speedup comparison stays fair. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let jobs_flag = ref 0 in
  let search_jobs_flag = ref 0 in
  Arg.parse
    [ ("--jobs", Arg.Set_int jobs_flag,
       "N  worker domains for the study (default: PIPESCHED_JOBS or the \
        recommended domain count)");
      ("--search-jobs", Arg.Set_int search_jobs_flag,
       "N  worker domains inside each optimal search (default: \
        PIPESCHED_SEARCH_JOBS or 1)") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "dune exec bench/main.exe -- [--jobs N] [--search-jobs N]";
  let jobs =
    if !jobs_flag > 0 then !jobs_flag
    else Pipesched_parallel.Pool.default_jobs ()
  in
  let search_jobs =
    Pipesched_parallel.Pool.resolve_search_jobs
      (if !search_jobs_flag > 0 then Some !search_jobs_flag else None)
  in
  let estimates = run_benchmarks () in
  let count =
    match Sys.getenv_opt "PIPESCHED_STUDY_COUNT" with
    | Some s -> int_of_string s
    | None -> 16_000
  in
  (* The headline wall-clock number: the §5.3 study, timed with the
     monotonic clock, on [jobs] domains. *)
  let t0 = Mclock.now () in
  let study = Harness.Experiments.run_study ~count ~jobs ~search_jobs () in
  let t1 = Mclock.now () in
  let study_wall_s = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
  let study_failures = List.length (Harness.Study.failures study) in
  Printf.printf
    "Study: scheduled %d blocks (%d contained failures) in %.2f s on %d \
     domain%s (search-jobs %d)\n%!"
    count study_failures study_wall_s jobs
    (if jobs = 1 then "" else "s")
    search_jobs;
  write_results_json ~path:"BENCH_results.json" ~jobs ~study_count:count
    ~study_failures ~study_wall_s
    ~study_dedup:(Harness.Study.dedup_stats study)
    estimates;
  Harness.Experiments.run_all ~count ~jobs ~search_jobs ~study
    Format.std_formatter
