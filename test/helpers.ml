(* Shared QCheck generators and Alcotest utilities for the test suites. *)

open Pipesched_ir
module Rng = Pipesched_prelude.Rng

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Random tuple blocks, built directly over the IR (independent of the
   frontend, so IR-level properties do not depend on the compiler). *)

(* Build a random valid block of [n] tuples over [nvars] variables.  Each
   tuple is drawn so that Ref operands point at earlier value-producing
   tuples; Load/Store mix in memory dependences. *)
let random_block_with rng n nvars =
  let vars = Array.init (max nvars 1) (fun i -> Printf.sprintf "x%d" i) in
  let producers = ref [] in
  let pick_value () =
    match !producers with
    | [] -> Operand.Imm (Rng.int rng 100)
    | ids ->
      if Rng.int rng 5 = 0 then Operand.Imm (Rng.int rng 100)
      else Operand.Ref (Rng.choose rng (Array.of_list ids))
  in
  let tuples = ref [] in
  for id = 1 to n do
    let choice = Rng.int rng 10 in
    let tu =
      if choice < 2 then
        Tuple.make ~id Op.Const (Operand.Imm (Rng.int rng 100)) Operand.Null
      else if choice < 4 then
        Tuple.make ~id Op.Load (Operand.Var (Rng.choose rng vars))
          Operand.Null
      else if choice < 6 then
        Tuple.make ~id Op.Store (Operand.Var (Rng.choose rng vars))
          (pick_value ())
      else if choice < 7 then Tuple.make ~id Op.Neg (pick_value ()) Operand.Null
      else
        let op =
          Rng.choose rng
            [| Op.Add; Op.Sub; Op.Mul; Op.Div; Op.And; Op.Or; Op.Xor |]
        in
        Tuple.make ~id op (pick_value ()) (pick_value ())
    in
    if Tuple.produces_value tu then producers := tu.Tuple.id :: !producers;
    tuples := tu :: !tuples
  done;
  Block.of_tuples_exn (List.rev !tuples)

let random_block rng n = random_block_with rng n 4

(* QCheck generator of (seed, size) driven blocks, shrink-friendly on the
   size parameter. *)
let block_gen ?(min_size = 1) ?(max_size = 14) () =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        random_block rng n)
      (int_bound 1_000_000)
      (int_range min_size max_size))

let block_print blk = Block.to_string blk

(* A qcheck property registered as an alcotest case. *)
let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen prop)

(* Machine used by most scheduling tests. *)
let machine = Pipesched_machine.Machine.Presets.simulation

(* An environment mapping every variable to a deterministic value. *)
let env_of_seed seed v = Hashtbl.hash (seed, v) mod 1000

(* All legal orders of a dag (test oracle; exponential). *)
let all_legal_orders dag =
  let n = Dag.length dag in
  let unsched = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let used = Array.make n false in
  let acc = ref [] in
  let order = Array.make n 0 in
  let rec go depth =
    if depth = n then acc := Array.copy order :: !acc
    else
      for i = 0 to n - 1 do
        if (not used.(i)) && unsched.(i) = 0 then begin
          used.(i) <- true;
          List.iter (fun v -> unsched.(v) <- unsched.(v) - 1) (Dag.succs dag i);
          order.(depth) <- i;
          go (depth + 1);
          List.iter (fun v -> unsched.(v) <- unsched.(v) + 1) (Dag.succs dag i);
          used.(i) <- false
        end
      done
  in
  go 0;
  !acc

(* ------------------------------------------------------------------ *)
(* Scheduling-irrelevant presentation changes (canonical-form tests and
   the server's duplicate-traffic tests). *)

(* A uniformly random legal topological reordering of [blk]. *)
let random_topo_reorder rng blk =
  let dag = Dag.of_block blk in
  let n = Dag.length dag in
  let indeg = Array.init n (fun v -> List.length (Dag.preds dag v)) in
  let ready = ref (List.filter (fun v -> indeg.(v) = 0) (List.init n Fun.id)) in
  let order = Array.make n 0 in
  for j = 0 to n - 1 do
    let v = Rng.choose rng (Array.of_list !ready) in
    ready := List.filter (fun w -> w <> v) !ready;
    order.(j) <- v;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := w :: !ready)
      (Dag.succs dag v)
  done;
  Block.permute blk order

(* Relabel tuple ids by a random bijection, prefix every variable name,
   shift immediates, and flip binary operand sides at random — all
   scheduling-irrelevant presentation changes. *)
let random_relabel rng blk =
  let tus = Block.tuples blk in
  let n = Array.length tus in
  let fresh = Array.init (2 * n) (fun i -> i + 1) in
  Rng.shuffle rng fresh;
  let newid = Hashtbl.create n in
  Array.iteri
    (fun i (tu : Tuple.t) -> Hashtbl.replace newid tu.Tuple.id fresh.(i))
    tus;
  let value = function
    | Operand.Ref id -> Operand.Ref (Hashtbl.find newid id)
    | Operand.Imm k -> Operand.Imm (k + 1 + Rng.int rng 50)
    | v -> v
  in
  let rename = function Operand.Var x -> Operand.Var ("r_" ^ x) | v -> v in
  Block.of_tuples_exn
    (Array.to_list tus
    |> List.map (fun (tu : Tuple.t) ->
           let id = Hashtbl.find newid tu.Tuple.id in
           match tu.Tuple.op with
           | Op.Const ->
             Tuple.make ~id Op.Const (value tu.Tuple.a) Operand.Null
           | Op.Load -> Tuple.make ~id Op.Load (rename tu.Tuple.a) Operand.Null
           | Op.Store ->
             Tuple.make ~id Op.Store (rename tu.Tuple.a) (value tu.Tuple.b)
           | op when Op.value_arity op = 1 ->
             Tuple.make ~id op (value tu.Tuple.a) Operand.Null
           | op ->
             let a = value tu.Tuple.a and b = value tu.Tuple.b in
             let a, b = if Rng.bool rng then (a, b) else (b, a) in
             Tuple.make ~id op a b))
