(* Tests for Pipesched_verify.Certify, Machine.validate and the
   fault-contained study driver.  The certifier is exercised in both
   directions: every real scheduler output must certify clean, and each
   class of deliberately corrupted schedule must be rejected with a
   structured violation (never an escaping exception). *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Generator = Pipesched_synth.Generator
module Certify = Pipesched_verify.Certify
module Study = Pipesched_harness.Study
open Helpers

(* ------------------------------------------------------------------ *)
(* Every scheduler's output certifies clean                            *)

let certify_clean label m blk (r : Omega.result) =
  let vs = Certify.check m blk r in
  if not (Certify.certified vs) then
    Alcotest.failf "%s failed certification on %s:\n%s" label
      (Block.to_string blk) (Certify.explain_all vs)

let all_schedulers_certify m blk =
  let dag = Dag.of_block blk in
  let options = { Optimal.default_options with Optimal.lambda = 5_000 } in
  let opt = Optimal.schedule ~options m dag in
  certify_clean "optimal best" m blk opt.Optimal.best;
  certify_clean "optimal initial" m blk opt.Optimal.initial;
  let multi, _ = Optimal.schedule_multi ~options m dag in
  certify_clean "optimal-multi" m blk multi.Optimal.best;
  (match Optimal.schedule_bounded ~options ~registers:16 m dag with
   | Ok o -> certify_clean "bounded" m blk o.Optimal.best
   | Error () -> ());
  let win = Windowed.schedule ~options ~window:4 m dag in
  certify_clean "windowed" m blk win.Windowed.best;
  let eval label order =
    certify_clean label m blk (Omega.evaluate m dag ~order)
  in
  eval "list" (List_sched.schedule List_sched.Max_distance dag);
  eval "greedy" (Baselines.greedy m dag);
  eval "gross" (Baselines.gross m dag);
  eval "source" (Omega.identity_order (Block.length blk));
  (* Orderings that hold unconditionally (both searches seed from the
     list schedule). *)
  let list_nops =
    (Omega.evaluate m dag
       ~order:(List_sched.schedule List_sched.Max_distance dag))
      .Omega.nops
  in
  check bool_t "optimal <= list" true
    (Certify.certified
       (Certify.check_ordering
          [ ("optimal", opt.Optimal.best.Omega.nops); ("list", list_nops) ]));
  check bool_t "windowed <= list" true
    (Certify.certified
       (Certify.check_ordering
          [ ("windowed", win.Windowed.best.Omega.nops); ("list", list_nops) ]));
  (* Semantic equivalence of the reordered block. *)
  let sem = Certify.check_semantics blk ~order:opt.Optimal.best.Omega.order in
  if sem <> [] then
    Alcotest.failf "semantics violated on %s:\n%s" (Block.to_string blk)
      (Certify.explain_all sem);
  true

let schedulers_clean_presets =
  qtest ~count:120 "all schedulers certify clean on the presets"
    QCheck2.Gen.(
      pair (block_gen ~max_size:12 ()) (int_bound 2))
    (fun (blk, mi) -> Printf.sprintf "machine %d, %s" mi (Block.to_string blk))
    (fun (blk, mi) ->
      let m =
        match mi with
        | 0 -> Machine.Presets.simulation
        | 1 -> Machine.Presets.demo
        | _ -> Machine.Presets.throttled
      in
      all_schedulers_certify m blk)

let schedulers_clean_random_machines =
  qtest ~count:120 "all schedulers certify clean on random machines"
    QCheck2.Gen.(pair (int_bound 1_000_000) (block_gen ~max_size:10 ()))
    (fun (seed, blk) ->
      Printf.sprintf "machine seed %d, %s" seed (Block.to_string blk))
    (fun (seed, blk) ->
      let m = Generator.random_machine (Rng.create seed) in
      all_schedulers_certify m blk)

(* ------------------------------------------------------------------ *)
(* Mutation rejection: each corruption class yields its violation      *)

(* A fixture with a real dependence and a real pipeline: t1 = Load x0;
   t2 = Neg t1; t3 = Mul t1, t2.  On the simulation machine the Load
   (latency 2) and the Mul (multiplier) both constrain the schedule. *)
let fixture () =
  let blk =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Load (Operand.Var "x0") Operand.Null;
        Tuple.make ~id:2 Op.Neg (Operand.Ref 1) Operand.Null;
        Tuple.make ~id:3 Op.Mul (Operand.Ref 1) (Operand.Ref 2) ]
  in
  let dag = Dag.of_block blk in
  (blk, dag, Omega.evaluate machine dag ~order:(Omega.identity_order 3))

let has p vs = List.exists p vs

let test_mutation_swapped_dependents () =
  let blk, _dag, r = fixture () in
  (* Swap producer (slot 0, the Load) and consumer (slot 1, the Neg). *)
  let order = Array.copy r.Omega.order in
  let tmp = order.(0) in
  order.(0) <- order.(1);
  order.(1) <- tmp;
  let vs = Certify.check machine blk { r with Omega.order } in
  check bool_t "rejected" false (Certify.certified vs);
  check bool_t "as Dependence_order" true
    (has (function Certify.Dependence_order _ -> true | _ -> false) vs)

let test_mutation_underreported_nops () =
  let blk, _dag, r = fixture () in
  let vs = Certify.check machine blk { r with Omega.nops = r.Omega.nops - 1 } in
  check bool_t "rejected" false (Certify.certified vs);
  check bool_t "as Nop_mismatch" true
    (has (function Certify.Nop_mismatch _ -> true | _ -> false) vs)

let test_mutation_illegal_pipe () =
  let blk, _dag, r = fixture () in
  (* Slot 0 is the Load; the multiplier (pipe 1) is not a candidate. *)
  let pipes = Array.copy r.Omega.pipes in
  pipes.(0) <- 1;
  let vs = Certify.check machine blk { r with Omega.pipes } in
  check bool_t "rejected" false (Certify.certified vs);
  check bool_t "as Illegal_pipe" true
    (has (function Certify.Illegal_pipe _ -> true | _ -> false) vs)

let test_mutation_compressed_issue () =
  (* Claim every instruction issues back-to-back: the Load->Neg latency
     stall disappears, which must surface as a dependence-stall (and the
     claimed etas no longer match the replay). *)
  let blk, _dag, r = fixture () in
  let n = Array.length r.Omega.order in
  let issue = Array.init n (fun i -> i) in
  let eta = Array.make n 0 in
  let vs =
    Certify.check machine blk
      { r with Omega.issue = issue; Omega.eta = eta; Omega.nops = 0 }
  in
  check bool_t "rejected" false (Certify.certified vs);
  check bool_t "as Dependence_stall" true
    (has (function Certify.Dependence_stall _ -> true | _ -> false) vs)

let test_mutation_never_raises () =
  (* Garbage in every field: the certifier must return violations, not
     raise. *)
  let blk, _dag, r = fixture () in
  let garbage =
    [ { r with Omega.order = [| 7; -1; 0 |] };
      { r with Omega.order = [| 0; 0; 0 |] };
      { r with Omega.eta = [||] };
      { r with Omega.pipes = [| 99; -3; 1 |] };
      { r with Omega.issue = [| 5; 1; 0 |] } ]
  in
  List.iter
    (fun bad ->
      let vs = Certify.check machine blk bad in
      check bool_t "some violation" false (Certify.certified vs))
    garbage

let test_ordering_check () =
  check bool_t "violated pair found" false
    (Certify.certified
       (Certify.check_ordering [ ("optimal", 5); ("list", 3) ]));
  check bool_t "ordered pair clean" true
    (Certify.certified
       (Certify.check_ordering
          [ ("optimal", 2); ("windowed", 2); ("list", 4) ]))

let test_semantics_detects_illegal_reorder () =
  (* Permuting dependents violates block validity; the certifier reports
     it (as a crash-contained violation) instead of raising. *)
  let blk, _dag, _r = fixture () in
  let vs = Certify.check_semantics blk ~order:[| 1; 0; 2 |] in
  check bool_t "rejected" false (Certify.certified vs)

(* ------------------------------------------------------------------ *)
(* Machine.validate                                                    *)

let test_validate_presets_clean () =
  List.iter
    (fun (name, m) ->
      check int_t ("preset " ^ name) 0 (List.length (Machine.validate m)))
    Machine.Presets.all

let test_validate_no_pipes () =
  let m = Machine.make ~name:"empty" [||] ~assign:[] in
  check bool_t "No_pipes" true
    (List.exists
       (function Machine.No_pipes -> true | _ -> false)
       (Machine.validate m))

let test_validate_no_candidates () =
  let m =
    Machine.make ~name:"m"
      [| Pipe.make ~label:"p" ~latency:2 ~enqueue:1 |]
      ~assign:[ (Op.Load, []) ]
  in
  check bool_t "No_candidates" true
    (List.exists
       (function
         | Machine.No_candidates { op } -> op = Op.Load
         | _ -> false)
       (Machine.validate m))

let test_validate_duplicate_candidate () =
  let m =
    Machine.make ~name:"m"
      [| Pipe.make ~label:"p" ~latency:2 ~enqueue:1 |]
      ~assign:[ (Op.Load, [ 0; 0 ]) ]
  in
  check bool_t "Duplicate_candidate" true
    (List.exists
       (function
         | Machine.Duplicate_candidate { op; pipe } ->
           op = Op.Load && pipe = 0
         | _ -> false)
       (Machine.validate m))

let test_diagnostic_strings () =
  List.iter
    (fun d -> check bool_t "nonempty" true
        (String.length (Machine.diagnostic_to_string d) > 0))
    [ Machine.No_pipes;
      Machine.Bad_latency { pipe = 0; label = "p"; latency = 0 };
      Machine.Bad_enqueue { pipe = 0; label = "p"; enqueue = 0 };
      Machine.No_candidates { op = Op.Load };
      Machine.Duplicate_candidate { op = Op.Load; pipe = 0 } ]

(* ------------------------------------------------------------------ *)
(* Fault containment in the study driver                               *)

exception Boom

let test_run_protected_contains () =
  let f x = if x = 2 then raise Boom else Study.run_block machine (random_block (Rng.create x) 6) in
  let results = Study.run_protected ~jobs:2 f [ 0; 1; 2; 3; 4 ] in
  check int_t "five results" 5 (List.length results);
  check int_t "one failure" 1 (List.length (Study.failures results));
  check int_t "four records" 4 (List.length (Study.records results));
  (* The failure sits at the crashing input's position. *)
  (match List.nth results 2 with
   | Study.Failed { exn; _ } ->
     check bool_t "names the exception" true
       (String.length exn > 0)
   | Study.Scheduled _ -> Alcotest.fail "expected Failed at position 2")

let test_run_protected_strict_raises () =
  let f x = if x = 2 then raise Boom else Study.run_block machine (random_block (Rng.create x) 6) in
  match Study.run_protected ~strict:true ~jobs:1 f [ 0; 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Boom to propagate under strict"
  | exception Boom -> ()

let test_study_certified_run () =
  let results = Study.run ~certify:true ~seed:11 ~count:20 machine in
  check int_t "all scheduled" 20 (List.length (Study.records results));
  check int_t "no failures" 0 (List.length (Study.failures results))

let test_run_block_certify_flag () =
  let blk = random_block (Rng.create 5) 10 in
  let r = Study.run_block ~certify:true machine blk in
  check bool_t "record produced" true (r.Study.size = 10)

let () =
  Alcotest.run "verify"
    [ ( "clean",
        [ schedulers_clean_presets; schedulers_clean_random_machines ] );
      ( "mutations",
        [ Alcotest.test_case "swapped dependents" `Quick
            test_mutation_swapped_dependents;
          Alcotest.test_case "under-reported NOPs" `Quick
            test_mutation_underreported_nops;
          Alcotest.test_case "illegal pipe" `Quick test_mutation_illegal_pipe;
          Alcotest.test_case "compressed issue ticks" `Quick
            test_mutation_compressed_issue;
          Alcotest.test_case "garbage never raises" `Quick
            test_mutation_never_raises;
          Alcotest.test_case "ordering check" `Quick test_ordering_check;
          Alcotest.test_case "illegal reorder semantics" `Quick
            test_semantics_detects_illegal_reorder ] );
      ( "machine-validate",
        [ Alcotest.test_case "presets clean" `Quick test_validate_presets_clean;
          Alcotest.test_case "no pipes" `Quick test_validate_no_pipes;
          Alcotest.test_case "no candidates" `Quick test_validate_no_candidates;
          Alcotest.test_case "duplicate candidate" `Quick
            test_validate_duplicate_candidate;
          Alcotest.test_case "diagnostic strings" `Quick
            test_diagnostic_strings ] );
      ( "containment",
        [ Alcotest.test_case "run_protected contains" `Quick
            test_run_protected_contains;
          Alcotest.test_case "strict fail-fast" `Quick
            test_run_protected_strict_raises;
          Alcotest.test_case "certified study" `Quick test_study_certified_run;
          Alcotest.test_case "run_block --certify" `Quick
            test_run_block_certify_flag ] ) ]
