(* End-to-end integration tests: source text -> front end -> optimal
   schedule -> register allocation -> assembly, with semantic checks at
   every boundary. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_frontend
open Pipesched_core
module Regalloc = Pipesched_regalloc
module Generator = Pipesched_synth.Generator
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Scheduling never changes meaning                                    *)

let program_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create seed in
        Generator.program rng
          { Generator.statements = 1 + Rng.int rng 8;
            variables = 1 + Rng.int rng 4;
            constants = 1 + Rng.int rng 3 })
      (int_bound 10_000_000))

let all_vars prog =
  List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)

let optimal_schedule_preserves_semantics =
  qtest ~count:300 "optimally scheduled block computes the same results"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      let scheduled = Block.permute blk o.Optimal.best.Omega.order in
      Interp.equivalent_on prog scheduled ~env:(env_of_seed 8)
        ~vars:(all_vars prog))

let any_legal_order_preserves_semantics =
  qtest ~count:150 "every legal order of a compiled block is equivalent"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      if Block.length blk > 7 then true (* keep enumeration tractable *)
      else
        List.for_all
          (fun order ->
            Interp.equivalent_on prog
              (Block.permute blk order)
              ~env:(env_of_seed 9) ~vars:(all_vars prog))
          (all_legal_orders dag))

(* ------------------------------------------------------------------ *)
(* The whole compiler pipeline on concrete programs                    *)

let compile_schedule_emit src registers =
  let blk = Compile.compile src in
  let dag = Dag.of_block blk in
  let o = Optimal.schedule machine dag in
  let scheduled = Block.permute blk o.Optimal.best.Omega.order in
  match Regalloc.Alloc.allocate scheduled ~registers with
  | Ok alloc ->
    (o, Regalloc.Codegen.emit scheduled ~eta:o.Optimal.best.Omega.eta ~alloc)
  | Error (pos, demand) ->
    Alcotest.failf "allocation failed at %d (demand %d)" pos demand

let test_pipeline_fig3 () =
  let o, asm = compile_schedule_emit "b = 15; a = b * a;" 8 in
  check bool_t "some output" true (String.length asm > 0);
  check bool_t "optimal" true o.Optimal.stats.Optimal.completed;
  (* emitted line count = instructions + NOPs *)
  let lines = String.split_on_char '\n' asm in
  check int_t "line count"
    (Array.length o.Optimal.best.Omega.order + o.Optimal.best.Omega.nops)
    (List.length lines)

let test_pipeline_larger_program () =
  let src =
    "a = x * y; b = a + z; c = b * b; d = c - a; e = d / 3; out = e;"
  in
  let o, asm = compile_schedule_emit src 16 in
  check bool_t "non-trivial block" true
    (Array.length o.Optimal.best.Omega.order > 5);
  check bool_t "assembly emitted" true (String.length asm > 100)

let test_scheduling_reduces_nops () =
  (* A classic load-use sequence where the source order stalls but the
     optimal schedule does not. *)
  let src = "s1 = a + 1; s2 = b + 2; s3 = c + 3; s4 = d + 4;" in
  let blk = Compile.compile src in
  let dag = Dag.of_block blk in
  let source =
    Omega.evaluate machine dag ~order:(Omega.identity_order (Block.length blk))
  in
  let o = Optimal.schedule machine dag in
  check bool_t "source order stalls" true (source.Omega.nops > 0);
  check int_t "optimal removes every NOP" 0 o.Optimal.best.Omega.nops

(* ------------------------------------------------------------------ *)
(* Interlock equivalence across the whole pipeline                     *)

let pipeline_interlock_agree =
  qtest ~count:150 "interlock models agree on fully compiled programs"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      let r = o.Optimal.best in
      let n = Array.length r.Omega.order in
      let padded = Interlock.execute_padded (Interlock.nop_padded dag r) in
      let tags = Interlock.explicit_tags machine dag r in
      padded = n + r.Omega.nops
      && Interlock.execute_tagged tags = padded)

(* ------------------------------------------------------------------ *)
(* Allocation after scheduling stays interference-free                 *)

let alloc_after_scheduling =
  qtest ~count:200 "post-schedule allocation is interference-free"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      let scheduled = Block.permute blk o.Optimal.best.Omega.order in
      match Regalloc.Alloc.allocate scheduled ~registers:64 with
      | Error _ -> false
      | Ok alloc ->
        (* No two overlapping values share a register. *)
        let ranges = Regalloc.Liveness.ranges scheduled in
        List.for_all
          (fun (id1, (r1 : Regalloc.Liveness.range)) ->
            List.for_all
              (fun (id2, (r2 : Regalloc.Liveness.range)) ->
                id1 >= id2
                || Regalloc.Alloc.register_of alloc id1
                   <> Regalloc.Alloc.register_of alloc id2
                || r1.Regalloc.Liveness.last_use_pos
                   <= r2.Regalloc.Liveness.def_pos
                || r2.Regalloc.Liveness.last_use_pos
                   <= r1.Regalloc.Liveness.def_pos)
              ranges)
          ranges)

(* ------------------------------------------------------------------ *)
(* The multi-pipe machine end to end                                   *)

let test_demo_machine_end_to_end () =
  let src = "p = a * b; q = c * d; r = p + q; s = r * r; out = s;" in
  let blk = Compile.compile src in
  let dag = Dag.of_block blk in
  let single = Optimal.schedule Machine.Presets.demo dag in
  let multi, choice = Optimal.schedule_multi Machine.Presets.demo dag in
  check bool_t "multi never worse" true
    (multi.Optimal.best.Omega.nops <= single.Optimal.best.Omega.nops);
  (* The returned assignment is complete and well-formed. *)
  Array.iteri
    (fun pos c ->
      let op = (Block.tuple_at blk pos).Tuple.op in
      match (c, Machine.candidates Machine.Presets.demo op) with
      | None, [] -> ()
      | Some p, cands -> check bool_t "choice is a candidate" true
                           (List.mem p cands)
      | None, _ :: _ -> Alcotest.fail "missing pipe choice")
    choice

(* Source program -> optimized tuples -> optimal schedule -> registers ->
   assembly text -> parse -> execute: the machine-level run agrees with
   the source semantics, NOPs and all. *)
let full_pipeline_to_metal =
  qtest ~count:200 "assembly execution matches the source program"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      let scheduled = Block.permute blk o.Optimal.best.Omega.order in
      match Regalloc.Alloc.allocate scheduled ~registers:64 with
      | Error _ -> false
      | Ok alloc ->
        let text =
          Regalloc.Codegen.emit scheduled ~eta:o.Optimal.best.Omega.eta
            ~alloc
        in
        (match Regalloc.Asm.parse text with
         | Error _ -> false
         | Ok instrs ->
           let env = env_of_seed 12 in
           let result, ticks = Regalloc.Asm.execute instrs ~env in
           let reference = Interp.run_program prog ~env in
           let agree (v, x) =
             match List.assoc_opt v result with
             | Some y -> x = y
             | None -> x = env v
           in
           ticks
           = Array.length o.Optimal.best.Omega.order
             + o.Optimal.best.Omega.nops
           && List.for_all agree reference))

(* ------------------------------------------------------------------ *)
(* Curtailed searches still produce usable compiler output             *)

let curtailed_still_compiles =
  qtest ~count:100 "tiny lambda still yields valid, allocatable schedules"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let o =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.lambda = 3 }
          machine dag
      in
      let scheduled = Block.permute blk o.Optimal.best.Omega.order in
      Interp.equivalent_on prog scheduled ~env:(env_of_seed 10)
        ~vars:(all_vars prog))

let () =
  Alcotest.run "integration"
    [ ( "semantics",
        [ optimal_schedule_preserves_semantics;
          any_legal_order_preserves_semantics ] );
      ( "pipeline",
        [ Alcotest.test_case "figure 3 program" `Quick test_pipeline_fig3;
          Alcotest.test_case "larger program" `Quick
            test_pipeline_larger_program;
          Alcotest.test_case "scheduling removes stalls" `Quick
            test_scheduling_reduces_nops;
          pipeline_interlock_agree;
          alloc_after_scheduling;
          Alcotest.test_case "demo machine end to end" `Quick
            test_demo_machine_end_to_end;
          full_pipeline_to_metal;
          curtailed_still_compiles ] ) ]
