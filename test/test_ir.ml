(* Tests for Pipesched_ir: Op, Operand, Tuple, Block, Dag. *)

open Pipesched_ir
module Bitset = Pipesched_prelude.Bitset
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Op                                                                  *)

let test_op_roundtrip () =
  List.iter
    (fun op ->
      check bool_t (Op.to_string op) true
        (Op.of_string (Op.to_string op) = Some op);
      check bool_t "case-insensitive" true
        (Op.of_string (String.uppercase_ascii (Op.to_string op)) = Some op))
    Op.all;
  check bool_t "unknown" true (Op.of_string "Bogus" = None)

let test_op_arity () =
  check int_t "const" 0 (Op.value_arity Op.Const);
  check int_t "load" 0 (Op.value_arity Op.Load);
  check int_t "store" 1 (Op.value_arity Op.Store);
  check int_t "neg" 1 (Op.value_arity Op.Neg);
  check int_t "add" 2 (Op.value_arity Op.Add)

let test_op_eval () =
  check int_t "add" 7 (Op.eval2 Op.Add 3 4);
  check int_t "sub" (-1) (Op.eval2 Op.Sub 3 4);
  check int_t "mul" 12 (Op.eval2 Op.Mul 3 4);
  check int_t "div" 3 (Op.eval2 Op.Div 13 4);
  check int_t "div0 total" 0 (Op.eval2 Op.Div 13 0);
  check int_t "mod0 total" 0 (Op.eval2 Op.Mod 13 0);
  check int_t "neg" (-3) (Op.eval1 Op.Neg 3);
  check int_t "mov" 3 (Op.eval1 Op.Mov 3);
  Alcotest.check_raises "eval2 on unary"
    (Invalid_argument "Op.eval2: not a binary operation") (fun () ->
      ignore (Op.eval2 Op.Neg 1 2))

let op_commutative_sound =
  qtest ~count:200 "commutative ops commute"
    QCheck2.Gen.(pair small_int small_int)
    (fun (x, y) -> Printf.sprintf "(%d,%d)" x y)
    (fun (x, y) ->
      List.for_all
        (fun op ->
          (not (Op.commutative op)) || Op.eval2 op x y = Op.eval2 op y x)
        Op.binary_ops)

let test_op_pure () =
  check bool_t "load impure" false (Op.pure Op.Load);
  check bool_t "store impure" false (Op.pure Op.Store);
  check bool_t "add pure" true (Op.pure Op.Add);
  check bool_t "const pure" true (Op.pure Op.Const)

(* ------------------------------------------------------------------ *)
(* Tuple shapes                                                        *)

let test_tuple_shapes () =
  let ok op a b = ignore (Tuple.make ~id:1 op a b) in
  let bad op a b =
    match Tuple.make ~id:1 op a b with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected shape rejection"
  in
  ok Op.Const (Operand.Imm 5) Operand.Null;
  bad Op.Const (Operand.Var "x") Operand.Null;
  bad Op.Const (Operand.Imm 5) (Operand.Imm 5);
  ok Op.Load (Operand.Var "x") Operand.Null;
  bad Op.Load (Operand.Imm 5) Operand.Null;
  ok Op.Store (Operand.Var "x") (Operand.Ref 0);
  ok Op.Store (Operand.Var "x") (Operand.Imm 3);
  bad Op.Store (Operand.Ref 0) (Operand.Ref 1);
  bad Op.Store (Operand.Var "x") Operand.Null;
  ok Op.Add (Operand.Ref 0) (Operand.Imm 1);
  bad Op.Add (Operand.Ref 0) Operand.Null;
  bad Op.Add (Operand.Var "x") (Operand.Imm 1);
  ok Op.Neg (Operand.Ref 0) Operand.Null;
  bad Op.Neg (Operand.Ref 0) (Operand.Ref 1)

let test_tuple_accessors () =
  let t = Tuple.make ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 1) in
  check (Alcotest.list int_t) "refs with duplicates" [ 1; 1 ]
    (Tuple.value_refs t);
  check bool_t "no memory var" true (Tuple.memory_var t = None);
  let s = Tuple.make ~id:4 Op.Store (Operand.Var "a") (Operand.Ref 3) in
  check bool_t "store memory var" true (Tuple.memory_var s = Some "a");
  check bool_t "store writes" true (Tuple.writes_memory s);
  check bool_t "store no value" false (Tuple.produces_value s);
  let l = Tuple.make ~id:5 Op.Load (Operand.Var "a") Operand.Null in
  check bool_t "load memory var" true (Tuple.memory_var l = Some "a");
  check bool_t "load reads only" false (Tuple.writes_memory l)

(* ------------------------------------------------------------------ *)
(* Block validation                                                    *)

let tu ~id op a b = Tuple.make ~id op a b

let test_block_valid () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:10 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:20 Op.Neg (Operand.Ref 10) Operand.Null;
        tu ~id:30 Op.Store (Operand.Var "x") (Operand.Ref 20) ]
  in
  check int_t "length" 3 (Block.length blk);
  check int_t "pos of 20" 1 (Block.pos_of_id blk 20);
  check bool_t "find" true ((Block.find blk 30).Tuple.op = Op.Store);
  check (Alcotest.list Alcotest.string) "vars" [ "x" ] (Block.vars blk)

let test_block_rejects_duplicates () =
  match
    Block.of_tuples
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:1 Op.Const (Operand.Imm 2) Operand.Null ]
  with
  | Error msg -> check bool_t "mentions duplicate" true
                   (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted duplicate ids"

let test_block_rejects_forward_ref () =
  match
    Block.of_tuples
      [ tu ~id:1 Op.Neg (Operand.Ref 2) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 1) Operand.Null ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted forward reference"

let test_block_rejects_ref_to_store () =
  match
    Block.of_tuples
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Store (Operand.Var "x") (Operand.Ref 1);
        tu ~id:3 Op.Neg (Operand.Ref 2) Operand.Null ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a reference to a Store"

let test_block_permute () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 2) ]
  in
  let blk' = Block.permute blk [| 1; 0; 2 |] in
  check int_t "swapped" 1 (Block.pos_of_id blk' 1);
  Alcotest.check_raises "illegal permute"
    (Invalid_argument
       "Block.permute: illegal schedule: tuple 3 references 2, which is \
        undefined or defined later")
    (fun () -> ignore (Block.permute blk [| 0; 2; 1 |]));
  (match Block.permute blk [| 0; 0; 1 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "accepted non-permutation")

(* ------------------------------------------------------------------ *)
(* Text round-trips                                                    *)

let test_operand_roundtrip () =
  List.iter
    (fun o ->
      check bool_t (Operand.to_string o) true
        (Operand.of_string (Operand.to_string o) = Some o))
    [ Operand.Var "abc"; Operand.Ref 12; Operand.Imm 0; Operand.Imm (-7);
      Operand.Null ];
  check bool_t "bad ref" true (Operand.of_string "tx" = None);
  check bool_t "bare word" true (Operand.of_string "abc" = None)

let test_tuple_parse () =
  (match Tuple.of_string "4: Mul t1, t3" with
   | Ok t ->
     check bool_t "parsed" true
       (t = Tuple.make ~id:4 Op.Mul (Operand.Ref 1) (Operand.Ref 3))
   | Error msg -> Alcotest.fail msg);
  (match Tuple.of_string "  2:   Store #b , 15 " with
   | Ok t -> check bool_t "whitespace tolerated" true (t.Tuple.op = Op.Store)
   | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Tuple.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "no colon"; "x: Mul t1, t2"; "1: Frobnicate t1"; "1: Mul t1";
      "1: Mul t1, t2, t3"; "1: Load 5"; "1: Const #x" ]

let block_text_roundtrip =
  qtest ~count:300 "Block.to_string/parse round-trips"
    (block_gen ~max_size:16 ()) block_print
    (fun blk ->
      match Block.parse (Block.to_string blk) with
      | Ok blk' -> Block.equal blk blk'
      | Error _ -> false)

let test_block_parse_diagnostics () =
  (match Block.parse "1: Const 1\n\n# a comment\n2: Neg t1" with
   | Ok blk -> check int_t "comments skipped" 2 (Block.length blk)
   | Error _ -> Alcotest.fail "rejected valid text");
  (match Block.parse "1: Const 1\nbogus line" with
   | Error (2, _) -> ()
   | Error (l, _) -> Alcotest.failf "wrong line %d" l
   | Ok _ -> Alcotest.fail "accepted bogus line");
  match Block.parse "1: Neg t9" with
  | Error (0, _) -> () (* block-level validation: dangling reference *)
  | _ -> Alcotest.fail "accepted dangling reference"

(* ------------------------------------------------------------------ *)
(* Dag                                                                 *)

(* The paper's Figure 3 block. *)
let fig3 () =
  Block.of_tuples_exn
    [ tu ~id:1 Op.Const (Operand.Imm 15) Operand.Null;
      tu ~id:2 Op.Store (Operand.Var "b") (Operand.Ref 1);
      tu ~id:3 Op.Load (Operand.Var "a") Operand.Null;
      tu ~id:4 Op.Mul (Operand.Ref 1) (Operand.Ref 3);
      tu ~id:5 Op.Store (Operand.Var "a") (Operand.Ref 4) ]

let test_dag_edges () =
  let dag = Dag.of_block (fig3 ()) in
  check (Alcotest.list int_t) "preds of store b" [ 0 ] (Dag.preds dag 1);
  check (Alcotest.list int_t) "preds of mul" [ 0; 2 ] (Dag.preds dag 3);
  (* store a depends on mul (data) and load a (memory anti) *)
  check (Alcotest.list int_t) "preds of store a" [ 2; 3 ] (Dag.preds dag 4);
  check bool_t "anti edge kind" true
    (Dag.edge_kind dag 2 4 = Some Dag.Mem_anti);
  check bool_t "data edge kind" true (Dag.edge_kind dag 3 4 = Some Dag.Data);
  check bool_t "no edge" true (Dag.edge_kind dag 1 3 = None);
  check (Alcotest.list int_t) "roots" [ 0; 2 ] (Dag.roots dag)

let test_dag_memory_kinds () =
  (* store x; load x; store x; load x -> flow, anti, output edges *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Store (Operand.Var "x") (Operand.Imm 1);
        tu ~id:2 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:3 Op.Store (Operand.Var "x") (Operand.Imm 2);
        tu ~id:4 Op.Load (Operand.Var "x") Operand.Null ]
  in
  let dag = Dag.of_block blk in
  check bool_t "flow 0->1" true (Dag.edge_kind dag 0 1 = Some Dag.Mem_flow);
  check bool_t "anti 1->2" true (Dag.edge_kind dag 1 2 = Some Dag.Mem_anti);
  check bool_t "output 0->2" true
    (Dag.edge_kind dag 0 2 = Some Dag.Mem_output);
  check bool_t "flow 2->3" true (Dag.edge_kind dag 2 3 = Some Dag.Mem_flow);
  (* no edge from load 1 to load 3 *)
  check bool_t "load-load independent" true (Dag.edge_kind dag 1 3 = None)

let test_earliest_latest () =
  let dag = Dag.of_block (fig3 ()) in
  (* positions: 0 Const, 1 Store b, 2 Load a, 3 Mul, 4 Store a *)
  check int_t "earliest const" 0 (Dag.earliest dag 0);
  check int_t "earliest mul" 2 (Dag.earliest dag 3);
  check int_t "earliest store a" 3 (Dag.earliest dag 4);
  (* const's descendants are store b, mul, store a -> latest = 4 - 3 = 1 *)
  check int_t "latest const" 1 (Dag.latest dag 0);
  check int_t "latest store b" 4 (Dag.latest dag 1);
  check int_t "latest load a" 2 (Dag.latest dag 2);
  check int_t "latest store a" 4 (Dag.latest dag 4)

let test_heights_critical_path () =
  let dag = Dag.of_block (fig3 ()) in
  let h = Dag.heights dag ~edge_weight:(fun ~src:_ ~dst:_ -> 1) in
  check int_t "height const" 2 h.(0);
  check int_t "height store a" 0 h.(4);
  check int_t "critical path" 2
    (Dag.critical_path dag ~edge_weight:(fun ~src:_ ~dst:_ -> 1))

let test_is_legal_order () =
  let dag = Dag.of_block (fig3 ()) in
  check bool_t "identity legal" true
    (Dag.is_legal_order dag [| 0; 1; 2; 3; 4 |]);
  check bool_t "valid reorder" true
    (Dag.is_legal_order dag [| 2; 0; 3; 1; 4 |]);
  check bool_t "consumer before producer" false
    (Dag.is_legal_order dag [| 3; 0; 1; 2; 4 |]);
  check bool_t "wrong length" false (Dag.is_legal_order dag [| 0; 1 |]);
  check bool_t "not a permutation" false
    (Dag.is_legal_order dag [| 0; 0; 1; 2; 3 |])

(* Transitive closure via bitsets must agree with a brute-force DFS. *)
let closure_agrees =
  qtest ~count:150 "ancestors/descendants agree with DFS reachability"
    (block_gen ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let n = Dag.length dag in
      let reach_fwd = Array.make_matrix n n false in
      for u = n - 1 downto 0 do
        List.iter
          (fun v ->
            reach_fwd.(u).(v) <- true;
            for w = 0 to n - 1 do
              if reach_fwd.(v).(w) then reach_fwd.(u).(w) <- true
            done)
          (Dag.succs dag u)
      done;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Bitset.mem (Dag.descendants dag u) v <> reach_fwd.(u).(v) then
            ok := false;
          if Bitset.mem (Dag.ancestors dag v) u <> reach_fwd.(u).(v) then
            ok := false
        done
      done;
      !ok)

(* earliest/latest bound every legal order's positions (on small blocks,
   checked against full enumeration). *)
let earliest_latest_bound =
  qtest ~count:60 "earliest/latest bound all legal positions"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let orders = all_legal_orders dag in
      List.for_all
        (fun order ->
          let ok = ref true in
          Array.iteri
            (fun newpos oldpos ->
              if
                newpos < Dag.earliest dag oldpos
                || newpos > Dag.latest dag oldpos
              then ok := false)
            order;
          !ok)
        orders)

(* Every legal order keeps the block valid under permute. *)
let permute_legal_orders =
  qtest ~count:60 "legal orders permute into valid blocks"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      List.for_all
        (fun order ->
          match Block.permute blk order with
          | _ -> true
          | exception Invalid_argument _ -> false)
        (all_legal_orders dag))

(* ------------------------------------------------------------------ *)
(* Canonical: isomorphism-stable form and hash.                        *)

let seeded_block_gen =
  QCheck2.Gen.(
    pair (int_bound 1_000_000) (int_range 1 14)
    |> map (fun (seed, n) ->
           let rng = Rng.create seed in
           (random_block rng n, seed)))

let seeded_print (blk, seed) =
  Printf.sprintf "seed %d:\n%s" seed (Block.to_string blk)

(* Canonicalization is invariant under any composition of topological
   reordering and relabeling, and idempotent (the canonical block is its
   own canonical form). *)
let canonical_invariance =
  qtest ~count:300 "canonical key invariant under iso presentations"
    seeded_block_gen seeded_print
    (fun (blk, seed) ->
      let rng = Rng.create (seed + 1) in
      let c = Canonical.of_block blk in
      let variants =
        [ random_topo_reorder rng blk;
          random_relabel rng blk;
          random_relabel rng (random_topo_reorder rng blk);
          c.Canonical.block ]
      in
      List.for_all
        (fun v ->
          let cv = Canonical.of_block v in
          String.equal cv.Canonical.key c.Canonical.key
          && cv.Canonical.hash = c.Canonical.hash
          && Block.equal cv.Canonical.block c.Canonical.block)
        variants)

(* [apply] maps every legal order of the canonical block onto a legal
   order of the original (small blocks, full enumeration). *)
let canonical_apply_legal =
  qtest ~count:60 "canonical apply maps legal orders to legal orders"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let c = Canonical.of_block blk in
      let cdag = Dag.of_block c.Canonical.block in
      List.for_all
        (fun corder -> Dag.is_legal_order dag (Canonical.apply c corder))
        (all_legal_orders cdag))

(* Flipping one op kind changes the op multiset, so the key must move. *)
let canonical_detects_op_flip =
  qtest ~count:200 "canonical key detects op-kind flips" seeded_block_gen
    seeded_print
    (fun (blk, _) ->
      let tus = Block.tuples blk in
      let site =
        Array.to_list tus
        |> List.find_opt (fun (tu : Tuple.t) -> Op.value_arity tu.Tuple.op = 2)
      in
      match site with
      | None -> true (* vacuous: nothing to flip *)
      | Some tu ->
        let flip = if tu.Tuple.op = Op.Add then Op.Xor else Op.Add in
        let blk' =
          Block.of_tuples_exn
            (Array.to_list tus
            |> List.map (fun (t : Tuple.t) ->
                   if t.Tuple.id = tu.Tuple.id then
                     Tuple.make ~id:t.Tuple.id flip t.Tuple.a t.Tuple.b
                   else t))
        in
        not
          (String.equal (Canonical.of_block blk).Canonical.key
             (Canonical.of_block blk').Canonical.key))

(* Adding one data edge (immediate operand -> reference to a producer the
   tuple does not already read) changes the data-edge count, so the key
   must move. *)
let canonical_detects_edge_add =
  qtest ~count:200 "canonical key detects added dependences" seeded_block_gen
    seeded_print
    (fun (blk, _) ->
      let tus = Block.tuples blk in
      let producers_before i =
        Array.to_list (Array.sub tus 0 i)
        |> List.filter Tuple.produces_value
        |> List.map (fun (t : Tuple.t) -> t.Tuple.id)
      in
      let site = ref None in
      Array.iteri
        (fun i (tu : Tuple.t) ->
          if !site = None && Op.value_arity tu.Tuple.op = 2 then
            match tu.Tuple.b with
            | Operand.Imm _ ->
              let avoid =
                match tu.Tuple.a with Operand.Ref r -> Some r | _ -> None
              in
              (match
                 List.filter (fun id -> Some id <> avoid) (producers_before i)
               with
              | id :: _ -> site := Some (tu, id)
              | [] -> ())
            | _ -> ())
        tus;
      match !site with
      | None -> true (* vacuous: no place to add an edge *)
      | Some (tu, target) ->
        let blk' =
          Block.of_tuples_exn
            (Array.to_list tus
            |> List.map (fun (t : Tuple.t) ->
                   if t.Tuple.id = tu.Tuple.id then
                     Tuple.make ~id:t.Tuple.id t.Tuple.op t.Tuple.a
                       (Operand.Ref target)
                   else t))
        in
        not
          (String.equal (Canonical.of_block blk).Canonical.key
             (Canonical.of_block blk').Canonical.key))

let test_canonical_shapes () =
  (* Two hand-written presentations of the same computation: different
     ids, variable names, immediates, instruction order, operand sides. *)
  let p1 =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:2 Op.Load (Operand.Var "b") Operand.Null;
        Tuple.make ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        Tuple.make ~id:4 Op.Store (Operand.Var "c") (Operand.Ref 3) ]
  in
  let p2 =
    Block.of_tuples_exn
      [ Tuple.make ~id:9 Op.Load (Operand.Var "y") Operand.Null;
        Tuple.make ~id:4 Op.Load (Operand.Var "x") Operand.Null;
        Tuple.make ~id:7 Op.Add (Operand.Ref 4) (Operand.Ref 9);
        Tuple.make ~id:1 Op.Store (Operand.Var "z") (Operand.Ref 7) ]
  in
  let c1 = Canonical.of_block p1 and c2 = Canonical.of_block p2 in
  check bool_t "same key" true (String.equal c1.Canonical.key c2.Canonical.key);
  check bool_t "same hash" true (c1.Canonical.hash = c2.Canonical.hash);
  (* A genuinely different computation (Mul instead of Add) separates. *)
  let p3 =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:2 Op.Load (Operand.Var "b") Operand.Null;
        Tuple.make ~id:3 Op.Mul (Operand.Ref 1) (Operand.Ref 2);
        Tuple.make ~id:4 Op.Store (Operand.Var "c") (Operand.Ref 3) ]
  in
  check bool_t "mul differs" false
    (String.equal c1.Canonical.key (Canonical.of_block p3).Canonical.key);
  (* hash_string is the documented FNV-1a: fixed known vector. *)
  check bool_t "fnv empty" true
    (Canonical.hash_string "" = (0xcbf29ce4 lsl 32) lor 0x84222325)

let () =
  Alcotest.run "ir"
    [ ( "op",
        [ Alcotest.test_case "roundtrip" `Quick test_op_roundtrip;
          Alcotest.test_case "arity" `Quick test_op_arity;
          Alcotest.test_case "eval" `Quick test_op_eval;
          Alcotest.test_case "pure" `Quick test_op_pure;
          op_commutative_sound ] );
      ( "tuple",
        [ Alcotest.test_case "shapes" `Quick test_tuple_shapes;
          Alcotest.test_case "accessors" `Quick test_tuple_accessors ] );
      ( "block",
        [ Alcotest.test_case "valid" `Quick test_block_valid;
          Alcotest.test_case "rejects duplicates" `Quick
            test_block_rejects_duplicates;
          Alcotest.test_case "rejects forward refs" `Quick
            test_block_rejects_forward_ref;
          Alcotest.test_case "rejects refs to store" `Quick
            test_block_rejects_ref_to_store;
          Alcotest.test_case "permute" `Quick test_block_permute ] );
      ( "text",
        [ Alcotest.test_case "operand roundtrip" `Quick
            test_operand_roundtrip;
          Alcotest.test_case "tuple parse" `Quick test_tuple_parse;
          block_text_roundtrip;
          Alcotest.test_case "parse diagnostics" `Quick
            test_block_parse_diagnostics ] );
      ( "dag",
        [ Alcotest.test_case "edges (fig 3)" `Quick test_dag_edges;
          Alcotest.test_case "memory edge kinds" `Quick
            test_dag_memory_kinds;
          Alcotest.test_case "earliest/latest (fig 3)" `Quick
            test_earliest_latest;
          Alcotest.test_case "heights" `Quick test_heights_critical_path;
          Alcotest.test_case "is_legal_order" `Quick test_is_legal_order;
          closure_agrees;
          earliest_latest_bound;
          permute_legal_orders ] );
      ( "canonical",
        [ Alcotest.test_case "shapes" `Quick test_canonical_shapes;
          canonical_invariance;
          canonical_apply_legal;
          canonical_detects_op_flip;
          canonical_detects_edge_add ] ) ]
