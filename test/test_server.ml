(* Tests for Pipesched_serve.Server: protocol shapes, cache parity
   (cached responses byte-identical to fresh solves), and concurrent
   mixed-duplicate traffic. *)

open Pipesched_ir
module Rng = Pipesched_prelude.Rng
module Json = Pipesched_prelude.Json
module Server = Pipesched_serve.Server
open Helpers

(* One request line for [blk] (the test traffic is JSON text, exactly
   what the daemon reads). *)
let request_line ?deadline_ms id blk =
  let fields =
    [ ("id", Json.Int id);
      ("machine", Json.String "simulation");
      ("block", Json.String (Block.to_string blk)) ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
    | None -> []
  in
  Json.to_string (Json.Assoc fields)

(* Strip the echoed id so responses to different requests for the same
   block compare equal. *)
let strip_id line =
  match Json.parse line with
  | Ok (Json.Assoc fields) ->
    Json.to_string (Json.Assoc (List.remove_assoc "id" fields))
  | Ok v -> Json.to_string v
  | Error msg -> Alcotest.failf "unparsable response %S: %s" line msg

let test_protocol_basics () =
  let t = Server.create () in
  let ok line =
    match Json.parse (Server.handle_line t line) with
    | Ok resp -> (
      match Json.member "ok" resp with
      | Some (Json.Bool b) -> b
      | _ -> Alcotest.fail "response without ok field")
    | Error msg -> Alcotest.failf "bad response: %s" msg
  in
  check bool_t "malformed json" false (ok "{nope");
  check bool_t "missing machine" false (ok "{\"block\": \"1: Load #a\"}");
  check bool_t "unknown preset" false
    (ok "{\"machine\": \"nope\", \"block\": \"1: Load #a\"}");
  check bool_t "bad block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"what\"}");
  check bool_t "empty block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"\"}");
  check bool_t "schedules" true
    (ok "{\"machine\": \"simulation\", \"block\": \"1: Load #a\"}");
  check bool_t "stats op" true (ok "{\"op\": \"stats\"}");
  check bool_t "ping op" true (ok "{\"op\": \"ping\"}");
  check bool_t "unknown op" false (ok "{\"op\": \"nope\"}");
  (* Inline textual machine descriptions work too. *)
  check bool_t "inline machine" true
    (ok
       "{\"machine\": {\"text\": \"machine m\\npipe loader 2 1\\nops Load \
        -> 0\"}, \"block\": \"1: Load #a\"}")

(* The response to a request must not depend on whether it was answered
   by the cache: replay mixed duplicate traffic against a caching server
   and an uncached one, and require byte equality line by line. *)
let test_cache_parity () =
  let rng = Rng.create 0xbeef in
  let blocks = List.init 8 (fun _ -> random_block rng (4 + Rng.int rng 8)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 3 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
  in
  let cached = Server.create ~cache_capacity:256 () in
  let uncached = Server.create ~cache_capacity:0 () in
  List.iteri
    (fun i blk ->
      let line = request_line i blk in
      let a = Server.handle_line cached line in
      let b = Server.handle_line uncached line in
      check bool_t (Printf.sprintf "request %d byte-identical" i) true
        (String.equal a b))
    traffic;
  check bool_t "cache actually hit" true (Server.cache_hits cached > 0);
  check bool_t "uncached never hit" true (Server.cache_hits uncached = 0);
  check int_t "one entry per unique block" (List.length blocks)
    (Server.cache_length cached)

(* Isomorphic presentations of one block must get responses that agree
   after the per-presentation order remap: same nops, same eta/issue,
   and a legal order for their own block. *)
let test_iso_responses_consistent () =
  let rng = Rng.create 0xfeed in
  let t = Server.create () in
  for i = 1 to 12 do
    let blk = random_block rng (4 + Rng.int rng 8) in
    let variant = random_relabel rng (random_topo_reorder rng blk) in
    let get blk =
      match Json.parse (Server.handle_line t (request_line i blk)) with
      | Ok resp ->
        let field name =
          match Json.member name resp with
          | Some (Json.List xs) ->
            List.map (fun j -> Option.get (Json.to_int_opt j)) xs
          | _ -> Alcotest.failf "response missing %s" name
        in
        let nops =
          match Json.member "nops" resp with
          | Some (Json.Int n) -> n
          | _ -> Alcotest.fail "response missing nops"
        in
        (nops, field "order", field "eta", field "issue")
      | Error msg -> Alcotest.failf "bad response: %s" msg
    in
    let nops, order, eta, issue = get blk in
    let nops', order', eta', issue' = get variant in
    check int_t "same nops" nops nops';
    check bool_t "same stall shape" true (eta = eta' && issue = issue');
    check bool_t "legal for original" true
      (Dag.is_legal_order (Dag.of_block blk) (Array.of_list order));
    check bool_t "legal for variant" true
      (Dag.is_legal_order (Dag.of_block variant) (Array.of_list order'))
  done

(* Hammer one caching server from several domains with mixed duplicate
   traffic; every response must equal the serially computed uncached
   response for its line. *)
let test_concurrent_parity () =
  let rng = Rng.create 0xcafe in
  let blocks = List.init 6 (fun _ -> random_block rng (4 + Rng.int rng 6)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 7 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
    |> List.mapi (fun i blk -> request_line i blk)
    |> Array.of_list
  in
  (* Shuffle so duplicates interleave across domains. *)
  Rng.shuffle rng traffic;
  let expected =
    let uncached = Server.create ~cache_capacity:0 () in
    Array.map (fun line -> strip_id (Server.handle_line uncached line)) traffic
  in
  let t = Server.create ~cache_capacity:256 () in
  let njobs = 4 in
  let results = Array.make (Array.length traffic) "" in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length traffic then begin
        results.(i) <- Server.handle_line t traffic.(i);
        go ()
      end
    in
    go ()
  in
  let domains = List.init njobs (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Array.iteri
    (fun i got ->
      check bool_t
        (Printf.sprintf "concurrent response %d matches fresh solve" i)
        true
        (String.equal (strip_id got) expected.(i)))
    results;
  check bool_t "hits under concurrency" true (Server.cache_hits t > 0);
  check bool_t "misses bounded by uniques + races" true
    (Server.cache_misses t >= List.length blocks)

(* The "cached" response field is opt-in: a request carrying
   "detail": true learns whether it was answered from the cache, while
   default requests stay byte-identical whether cached or not (the
   parity tests above depend on that). *)
let test_detail_cached_field () =
  let t = Server.create ~cache_capacity:256 () in
  let blk =
    let rng = Rng.create 0x5eed in
    random_block rng 6
  in
  let line ~detail id =
    let fields =
      [ ("id", Json.Int id);
        ("machine", Json.String "simulation");
        ("block", Json.String (Block.to_string blk)) ]
      @ if detail then [ ("detail", Json.Bool true) ] else []
    in
    Json.to_string (Json.Assoc fields)
  in
  let cached_of resp =
    match Json.parse resp with
    | Error msg -> Alcotest.failf "bad response: %s" msg
    | Ok r -> Json.member "cached" r
  in
  check bool_t "fresh solve reports cached:false" true
    (cached_of (Server.handle_line t (line ~detail:true 0))
    = Some (Json.Bool false));
  check bool_t "replay reports cached:true" true
    (cached_of (Server.handle_line t (line ~detail:true 1))
    = Some (Json.Bool true));
  check bool_t "default request has no cached field" true
    (cached_of (Server.handle_line t (line ~detail:false 2)) = None)

(* A curtailed solve (deadline ~ 0) is served but never cached. *)
let test_curtailed_not_cached () =
  let rng = Rng.create 0xd00d in
  let blk = random_block rng 16 in
  let t = Server.create () in
  let resp =
    Server.handle_line t (request_line ~deadline_ms:0.000001 0 blk)
  in
  match Json.parse resp with
  | Error msg -> Alcotest.failf "bad response: %s" msg
  | Ok r ->
    check bool_t "served ok" true (Json.member "ok" r = Some (Json.Bool true));
    (match Json.member "completed" r with
    | Some (Json.Bool false) ->
      check int_t "not inserted" 0 (Server.cache_length t)
    | _ ->
      (* The search beat even that deadline: it may cache.  Nothing to
         assert beyond the response being well-formed. *)
      ())

(* ------------------------------------------------------------------ *)
(* Daemon: the queue/drain/listener state machine behind the binary.   *)

module Daemon = Pipesched_serve.Daemon

(* Feed [lines] to a [reader_loop] through a real pipe, collecting
   everything it writes back. *)
let feed_lines st lines =
  let r, w = Unix.pipe ~cloexec:true () in
  let oc = Unix.out_channel_of_descr w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let written = ref [] in
  Daemon.reader_loop st ic (fun resp -> written := resp :: !written);
  close_in ic;
  List.rev !written

(* Requests arriving after shutdown must get an explicit refusal, not
   silence: the old daemon [ignore]d the failed submit and kept
   reading, leaving clients waiting forever. *)
let test_drain_refusal_answered () =
  let st = Daemon.create (Server.create ()) in
  Daemon.begin_shutdown st;
  check bool_t "draining" true (Daemon.draining st);
  let responses = feed_lines st [ "{\"op\": \"ping\"}"; "{\"op\": \"ping\"}" ] in
  (* One refusal, then the reader stops — it must not keep consuming a
     stream nobody will answer. *)
  check int_t "exactly one response" 1 (List.length responses);
  (match Json.parse (List.hd responses) with
  | Error msg -> Alcotest.failf "unparsable refusal: %s" msg
  | Ok r ->
    check bool_t "ok:false" true (Json.member "ok" r = Some (Json.Bool false));
    check bool_t "says shutting down" true
      (Json.member "error" r = Some (Json.String "shutting down")));
  check int_t "nothing served" 0 (Daemon.served st)

(* Work accepted before the shutdown still drains to completion. *)
let test_drain_completes_accepted_work () =
  let st = Daemon.create (Server.create ()) in
  let written = ref [] in
  let accepted =
    Daemon.submit st ~line:"{\"id\": 7, \"op\": \"ping\"}"
      ~write:(fun resp -> written := resp :: !written)
  in
  check bool_t "accepted before shutdown" true accepted;
  Daemon.begin_shutdown st;
  (* A worker started after shutdown must still drain the queue. *)
  Daemon.worker st 0;
  check int_t "queued job answered" 1 (List.length !written);
  (match Json.parse (List.hd !written) with
  | Error msg -> Alcotest.failf "unparsable response: %s" msg
  | Ok r ->
    check bool_t "answered ok" true
      (Json.member "ok" r = Some (Json.Bool true)));
  check int_t "served counts it" 1 (Daemon.served st)

let fd_closed fd =
  match Unix.fstat fd with
  | _ -> false
  | exception Unix.Unix_error (EBADF, _, _) -> true

(* The startup/shutdown race: a listener published after shutdown has
   begun must be refused and closed, and one published before must be
   closed by the shutdown.  (The old daemon wrote the fd without the
   queue mutex, so a shutdown could miss it and park the acceptor in
   accept(2) forever.) *)
let test_listener_install_race () =
  let socket () = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (* Install before shutdown: accepted, then closed by the shutdown. *)
  let st = Daemon.create (Server.create ()) in
  let fd = socket () in
  check bool_t "install on live daemon" true (Daemon.install_listener st fd);
  check bool_t "fd stays open" false (fd_closed fd);
  Daemon.begin_shutdown st;
  check bool_t "shutdown closes listener" true (fd_closed fd);
  (* Install after shutdown: refused and closed immediately. *)
  let st = Daemon.create (Server.create ()) in
  Daemon.begin_shutdown st;
  let fd = socket () in
  check bool_t "install refused while draining" false
    (Daemon.install_listener st fd);
  check bool_t "refused fd closed" true (fd_closed fd)

let () =
  Alcotest.run "server"
    [ ( "server",
        [ Alcotest.test_case "protocol basics" `Quick test_protocol_basics;
          Alcotest.test_case "cache parity" `Quick test_cache_parity;
          Alcotest.test_case "iso responses consistent" `Quick
            test_iso_responses_consistent;
          Alcotest.test_case "concurrent parity" `Quick
            test_concurrent_parity;
          Alcotest.test_case "detail cached field" `Quick
            test_detail_cached_field;
          Alcotest.test_case "curtailed not cached" `Quick
            test_curtailed_not_cached ] );
      ( "daemon",
        [ Alcotest.test_case "drain refusal answered" `Quick
            test_drain_refusal_answered;
          Alcotest.test_case "drain completes accepted work" `Quick
            test_drain_completes_accepted_work;
          Alcotest.test_case "listener install race" `Quick
            test_listener_install_race ] ) ]
