(* Tests for Pipesched_serve.Server: protocol shapes, cache parity
   (cached responses byte-identical to fresh solves), and concurrent
   mixed-duplicate traffic. *)

open Pipesched_ir
module Rng = Pipesched_prelude.Rng
module Json = Pipesched_prelude.Json
module Fault = Pipesched_prelude.Fault
module Machine = Pipesched_machine.Machine
module Omega = Pipesched_machine.Omega
module Server = Pipesched_serve.Server
open Helpers

(* One request line for [blk] (the test traffic is JSON text, exactly
   what the daemon reads). *)
let request_line ?deadline_ms id blk =
  let fields =
    [ ("id", Json.Int id);
      ("machine", Json.String "simulation");
      ("block", Json.String (Block.to_string blk)) ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
    | None -> []
  in
  Json.to_string (Json.Assoc fields)

(* Strip the echoed id so responses to different requests for the same
   block compare equal. *)
let strip_id line =
  match Json.parse line with
  | Ok (Json.Assoc fields) ->
    Json.to_string (Json.Assoc (List.remove_assoc "id" fields))
  | Ok v -> Json.to_string v
  | Error msg -> Alcotest.failf "unparsable response %S: %s" line msg

let test_protocol_basics () =
  let t = Server.create () in
  let ok line =
    match Json.parse (Server.handle_line t line) with
    | Ok resp -> (
      match Json.member "ok" resp with
      | Some (Json.Bool b) -> b
      | _ -> Alcotest.fail "response without ok field")
    | Error msg -> Alcotest.failf "bad response: %s" msg
  in
  check bool_t "malformed json" false (ok "{nope");
  check bool_t "missing machine" false (ok "{\"block\": \"1: Load #a\"}");
  check bool_t "unknown preset" false
    (ok "{\"machine\": \"nope\", \"block\": \"1: Load #a\"}");
  check bool_t "bad block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"what\"}");
  check bool_t "empty block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"\"}");
  check bool_t "schedules" true
    (ok "{\"machine\": \"simulation\", \"block\": \"1: Load #a\"}");
  check bool_t "stats op" true (ok "{\"op\": \"stats\"}");
  check bool_t "ping op" true (ok "{\"op\": \"ping\"}");
  check bool_t "unknown op" false (ok "{\"op\": \"nope\"}");
  (* Inline textual machine descriptions work too. *)
  check bool_t "inline machine" true
    (ok
       "{\"machine\": {\"text\": \"machine m\\npipe loader 2 1\\nops Load \
        -> 0\"}, \"block\": \"1: Load #a\"}")

(* The response to a request must not depend on whether it was answered
   by the cache: replay mixed duplicate traffic against a caching server
   and an uncached one, and require byte equality line by line. *)
let test_cache_parity () =
  let rng = Rng.create 0xbeef in
  let blocks = List.init 8 (fun _ -> random_block rng (4 + Rng.int rng 8)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 3 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
  in
  let cached = Server.create ~cache_capacity:256 () in
  let uncached = Server.create ~cache_capacity:0 () in
  List.iteri
    (fun i blk ->
      let line = request_line i blk in
      let a = Server.handle_line cached line in
      let b = Server.handle_line uncached line in
      check bool_t (Printf.sprintf "request %d byte-identical" i) true
        (String.equal a b))
    traffic;
  check bool_t "cache actually hit" true (Server.cache_hits cached > 0);
  check bool_t "uncached never hit" true (Server.cache_hits uncached = 0);
  check int_t "one entry per unique block" (List.length blocks)
    (Server.cache_length cached)

(* Isomorphic presentations of one block must get responses that agree
   after the per-presentation order remap: same nops, same eta/issue,
   and a legal order for their own block. *)
let test_iso_responses_consistent () =
  let rng = Rng.create 0xfeed in
  let t = Server.create () in
  for i = 1 to 12 do
    let blk = random_block rng (4 + Rng.int rng 8) in
    let variant = random_relabel rng (random_topo_reorder rng blk) in
    let get blk =
      match Json.parse (Server.handle_line t (request_line i blk)) with
      | Ok resp ->
        let field name =
          match Json.member name resp with
          | Some (Json.List xs) ->
            List.map (fun j -> Option.get (Json.to_int_opt j)) xs
          | _ -> Alcotest.failf "response missing %s" name
        in
        let nops =
          match Json.member "nops" resp with
          | Some (Json.Int n) -> n
          | _ -> Alcotest.fail "response missing nops"
        in
        (nops, field "order", field "eta", field "issue")
      | Error msg -> Alcotest.failf "bad response: %s" msg
    in
    let nops, order, eta, issue = get blk in
    let nops', order', eta', issue' = get variant in
    check int_t "same nops" nops nops';
    check bool_t "same stall shape" true (eta = eta' && issue = issue');
    check bool_t "legal for original" true
      (Dag.is_legal_order (Dag.of_block blk) (Array.of_list order));
    check bool_t "legal for variant" true
      (Dag.is_legal_order (Dag.of_block variant) (Array.of_list order'))
  done

(* Hammer one caching server from several domains with mixed duplicate
   traffic; every response must equal the serially computed uncached
   response for its line. *)
let test_concurrent_parity () =
  let rng = Rng.create 0xcafe in
  let blocks = List.init 6 (fun _ -> random_block rng (4 + Rng.int rng 6)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 7 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
    |> List.mapi (fun i blk -> request_line i blk)
    |> Array.of_list
  in
  (* Shuffle so duplicates interleave across domains. *)
  Rng.shuffle rng traffic;
  let expected =
    let uncached = Server.create ~cache_capacity:0 () in
    Array.map (fun line -> strip_id (Server.handle_line uncached line)) traffic
  in
  let t = Server.create ~cache_capacity:256 () in
  let njobs = 4 in
  let results = Array.make (Array.length traffic) "" in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length traffic then begin
        results.(i) <- Server.handle_line t traffic.(i);
        go ()
      end
    in
    go ()
  in
  let domains = List.init njobs (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Array.iteri
    (fun i got ->
      check bool_t
        (Printf.sprintf "concurrent response %d matches fresh solve" i)
        true
        (String.equal (strip_id got) expected.(i)))
    results;
  check bool_t "hits under concurrency" true (Server.cache_hits t > 0);
  check bool_t "misses bounded by uniques + races" true
    (Server.cache_misses t >= List.length blocks)

(* The "cached" response field is opt-in: a request carrying
   "detail": true learns whether it was answered from the cache, while
   default requests stay byte-identical whether cached or not (the
   parity tests above depend on that). *)
let test_detail_cached_field () =
  let t = Server.create ~cache_capacity:256 () in
  let blk =
    let rng = Rng.create 0x5eed in
    random_block rng 6
  in
  let line ~detail id =
    let fields =
      [ ("id", Json.Int id);
        ("machine", Json.String "simulation");
        ("block", Json.String (Block.to_string blk)) ]
      @ if detail then [ ("detail", Json.Bool true) ] else []
    in
    Json.to_string (Json.Assoc fields)
  in
  let cached_of resp =
    match Json.parse resp with
    | Error msg -> Alcotest.failf "bad response: %s" msg
    | Ok r -> Json.member "cached" r
  in
  check bool_t "fresh solve reports cached:false" true
    (cached_of (Server.handle_line t (line ~detail:true 0))
    = Some (Json.Bool false));
  check bool_t "replay reports cached:true" true
    (cached_of (Server.handle_line t (line ~detail:true 1))
    = Some (Json.Bool true));
  check bool_t "default request has no cached field" true
    (cached_of (Server.handle_line t (line ~detail:false 2)) = None)

(* A curtailed solve (deadline ~ 0) is served but never cached. *)
let test_curtailed_not_cached () =
  let rng = Rng.create 0xd00d in
  let blk = random_block rng 16 in
  let t = Server.create () in
  let resp =
    Server.handle_line t (request_line ~deadline_ms:0.000001 0 blk)
  in
  match Json.parse resp with
  | Error msg -> Alcotest.failf "bad response: %s" msg
  | Ok r ->
    check bool_t "served ok" true (Json.member "ok" r = Some (Json.Bool true));
    (match Json.member "completed" r with
    | Some (Json.Bool false) ->
      check int_t "not inserted" 0 (Server.cache_length t)
    | _ ->
      (* The search beat even that deadline: it may cache.  Nothing to
         assert beyond the response being well-formed. *)
      ())

(* ------------------------------------------------------------------ *)
(* Fault containment and graceful degradation.                         *)

let parse_resp resp =
  match Json.parse resp with
  | Ok r -> r
  | Error msg -> Alcotest.failf "unparsable response %S: %s" resp msg

let int_list name resp =
  match Json.member name resp with
  | Some (Json.List xs) ->
    Array.of_list (List.map (fun j -> Option.get (Json.to_int_opt j)) xs)
  | _ -> Alcotest.failf "response missing %s" name

(* With the solver fault always firing, a plain server contains the
   raise into this request's error response and lives on; a degrading
   server answers with the list scheduler instead — a legal order whose
   stall shape agrees with an independent Omega replay, explicitly
   marked so nobody mistakes it for an optimal schedule. *)
let test_solver_fault_contained_and_degraded () =
  Fault.arm [ (Fault.Solver, 1.0, 3) ];
  Fun.protect ~finally:Fault.disarm (fun () ->
      let rng = Rng.create 0xfa17 in
      let blk = random_block rng 6 in
      let t = Server.create () in
      let r = parse_resp (Server.handle_line t (request_line 0 blk)) in
      check bool_t "plain server refuses" true
        (Json.member "ok" r = Some (Json.Bool false));
      (match Json.member "error" r with
      | Some (Json.String e) ->
        check bool_t "says internal error" true
          (String.length e >= 14 && String.sub e 0 14 = "internal error")
      | _ -> Alcotest.fail "no error field");
      check int_t "containment counted" 1 (Server.contained t);
      check bool_t "server still serves" true
        (Json.member "ok" (parse_resp (Server.handle_line t "{\"op\": \"ping\"}"))
        = Some (Json.Bool true));
      let td = Server.create ~degrade:true () in
      let r = parse_resp (Server.handle_line td (request_line 1 blk)) in
      check bool_t "degrading server answers ok" true
        (Json.member "ok" r = Some (Json.Bool true));
      check bool_t "marked degraded" true
        (Json.member "degraded" r = Some (Json.Bool true));
      check bool_t "status Degraded" true
        (Json.member "status" r = Some (Json.String "Degraded"));
      check bool_t "no optimality claim" true
        (Json.member "completed" r = Some (Json.Bool false));
      let order = int_list "order" r in
      let dag = Dag.of_block blk in
      check bool_t "degraded order legal" true (Dag.is_legal_order dag order);
      let machine = Option.get (Machine.Presets.find "simulation") in
      let replay = Omega.evaluate machine dag ~order in
      check bool_t "nops matches independent replay" true
        (Json.member "nops" r = Some (Json.Int replay.Omega.nops));
      check int_t "degraded counted" 1 (Server.degraded_served td);
      check int_t "containment counted too" 1 (Server.contained td))

(* A failing cache insert costs nothing but the caching: the request is
   still answered (byte-identically to an uncached solve), the failure
   is contained and counted, and the cache simply stays empty. *)
let test_cache_insert_fault_contained () =
  Fault.arm [ (Fault.Cache_insert, 1.0, 5) ];
  Fun.protect ~finally:Fault.disarm (fun () ->
      let rng = Rng.create 0xca5e in
      let blk = random_block rng 5 in
      let t = Server.create ~cache_capacity:256 () in
      let a = Server.handle_line t (request_line 0 blk) in
      check bool_t "answered ok" true
        (Json.member "ok" (parse_resp a) = Some (Json.Bool true));
      check int_t "nothing cached" 0 (Server.cache_length t);
      check bool_t "insert failure contained" true (Server.contained t >= 1);
      Fault.disarm ();
      let b = Server.handle_line t (request_line 0 blk) in
      check bool_t "same answer without the fault" true (String.equal a b))

(* ------------------------------------------------------------------ *)
(* Daemon: the queue/drain/listener state machine behind the binary.   *)

module Daemon = Pipesched_serve.Daemon

(* Feed [lines] to a [reader_loop] through a real pipe, collecting
   everything it writes back. *)
let feed_lines st lines =
  let r, w = Unix.pipe ~cloexec:true () in
  let oc = Unix.out_channel_of_descr w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let written = ref [] in
  Daemon.reader_loop st ic (fun resp -> written := resp :: !written);
  close_in ic;
  List.rev !written

(* Requests arriving after shutdown must get an explicit refusal, not
   silence: the old daemon [ignore]d the failed submit and kept
   reading, leaving clients waiting forever. *)
let test_drain_refusal_answered () =
  let st = Daemon.create (Server.create ()) in
  Daemon.begin_shutdown st;
  check bool_t "draining" true (Daemon.draining st);
  let responses = feed_lines st [ "{\"op\": \"ping\"}"; "{\"op\": \"ping\"}" ] in
  (* One refusal, then the reader stops — it must not keep consuming a
     stream nobody will answer. *)
  check int_t "exactly one response" 1 (List.length responses);
  (match Json.parse (List.hd responses) with
  | Error msg -> Alcotest.failf "unparsable refusal: %s" msg
  | Ok r ->
    check bool_t "ok:false" true (Json.member "ok" r = Some (Json.Bool false));
    check bool_t "says shutting down" true
      (Json.member "error" r = Some (Json.String "shutting down")));
  check int_t "nothing served" 0 (Daemon.served st)

(* Work accepted before the shutdown still drains to completion. *)
let test_drain_completes_accepted_work () =
  let st = Daemon.create (Server.create ()) in
  let written = ref [] in
  let done_count = ref 0 in
  let admission =
    Daemon.submit st ~line:"{\"id\": 7, \"op\": \"ping\"}"
      ~write:(fun resp -> written := resp :: !written)
      ~on_done:(fun () -> incr done_count)
  in
  check bool_t "accepted before shutdown" true (admission = Daemon.Accepted);
  Daemon.begin_shutdown st;
  (* A worker started after shutdown must still drain the queue. *)
  Daemon.worker st 0;
  check int_t "queued job answered" 1 (List.length !written);
  (match Json.parse (List.hd !written) with
  | Error msg -> Alcotest.failf "unparsable response: %s" msg
  | Ok r ->
    check bool_t "answered ok" true
      (Json.member "ok" r = Some (Json.Bool true)));
  check int_t "served counts it" 1 (Daemon.served st);
  check int_t "on_done ran once" 1 !done_count

(* Admission control: with the queue bounded, overflow is answered
   immediately with an explicit "overloaded" refusal carrying a
   non-negative retry hint — never queued without bound, never silently
   dropped. *)
let test_admission_queue_bound () =
  let st = Daemon.create ~max_queue:2 (Server.create ()) in
  let written = ref [] in
  let write r = written := r :: !written in
  let sub id =
    Daemon.submit st
      ~line:(Printf.sprintf "{\"id\": %d, \"op\": \"ping\"}" id)
      ~write ~on_done:ignore
  in
  check bool_t "first queued" true (sub 1 = Daemon.Accepted);
  check bool_t "second queued" true (sub 2 = Daemon.Accepted);
  check bool_t "third shed" true (sub 3 = Daemon.Answered);
  check int_t "shed counted" 1 (Daemon.shed st);
  check int_t "refusal written inline" 1 (List.length !written);
  (match Json.parse (List.hd !written) with
  | Error msg -> Alcotest.failf "unparsable refusal: %s" msg
  | Ok r ->
    check bool_t "id echoed" true (Json.member "id" r = Some (Json.Int 3));
    check bool_t "says overloaded" true
      (Json.member "error" r = Some (Json.String "overloaded"));
    match Json.member "retry_after_ms" r with
    | Some (Json.Int ms) -> check bool_t "retry hint >= 0" true (ms >= 0)
    | _ -> Alcotest.fail "no retry_after_ms");
  check int_t "accepted work still queued" 2 (Daemon.queue_depth st)

(* A request whose own deadline is provably unmeetable at the current
   depth is refused up front (once the service-time estimate is
   primed); the same request without a deadline is admitted. *)
let test_admission_deadline_unmeetable () =
  let st = Daemon.create (Server.create ()) in
  let sub line = Daemon.submit st ~line ~write:ignore ~on_done:ignore in
  (* Prime: ~1 s per job, one job already queued, no workers running. *)
  check bool_t "first queued" true
    (sub "{\"id\": 1, \"op\": \"ping\"}" = Daemon.Accepted);
  Daemon.observe_service_ms st 1000.0;
  check bool_t "1 ms deadline shed" true
    (sub "{\"id\": 2, \"op\": \"ping\", \"deadline_ms\": 1}" = Daemon.Answered);
  check bool_t "no deadline admitted" true
    (sub "{\"id\": 3, \"op\": \"ping\"}" = Daemon.Accepted);
  check bool_t "generous deadline admitted" true
    (sub "{\"id\": 4, \"op\": \"ping\", \"deadline_ms\": 60000}"
    = Daemon.Accepted);
  check int_t "one shed" 1 (Daemon.shed st)

(* Degrade mode: the would-be-shed request is answered inline by the
   certified list scheduler instead of refused. *)
let test_degrade_on_shed () =
  let rng = Rng.create 0xde6e in
  let blk = random_block rng 6 in
  let st = Daemon.create ~max_queue:1 ~degrade:true (Server.create ~degrade:true ()) in
  let written = ref [] in
  let write r = written := r :: !written in
  check bool_t "first queued" true
    (Daemon.submit st ~line:(request_line 0 blk) ~write ~on_done:ignore
    = Daemon.Accepted);
  check bool_t "second answered inline" true
    (Daemon.submit st ~line:(request_line 1 blk) ~write ~on_done:ignore
    = Daemon.Answered);
  check int_t "shed counted" 1 (Daemon.shed st);
  let r = parse_resp (List.hd !written) in
  check bool_t "degraded ok" true (Json.member "ok" r = Some (Json.Bool true));
  check bool_t "marked degraded" true
    (Json.member "degraded" r = Some (Json.Bool true));
  let order = int_list "order" r in
  check bool_t "degraded order legal" true
    (Dag.is_legal_order (Dag.of_block blk) order)

(* A response write that fails with an expected I/O error (the client
   vanished) is contained: the worker survives and answers the next
   job. *)
let test_write_failure_contained () =
  let st = Daemon.create (Server.create ()) in
  ignore
    (Daemon.submit st ~line:"{\"id\": 1, \"op\": \"ping\"}"
       ~write:(fun _ -> raise (Sys_error "broken pipe"))
       ~on_done:ignore);
  let answered = ref [] in
  ignore
    (Daemon.submit st ~line:"{\"id\": 2, \"op\": \"ping\"}"
       ~write:(fun r -> answered := r :: !answered)
       ~on_done:ignore);
  Daemon.begin_shutdown st;
  (* Must not raise: the Sys_error is contained inside the worker. *)
  Daemon.worker st 0;
  check int_t "write failure contained" 1 (Daemon.write_contained st);
  check int_t "next job still answered" 1 (List.length !answered);
  check int_t "both served" 2 (Daemon.served st)

(* The same containment against a real EPIPE: the reader half of the
   pipe is gone before the worker writes the response (a client that
   disconnected mid-burst).  With SIGPIPE ignored the write raises
   instead of killing the process, and the worker contains it. *)
let test_epipe_disconnect_contained () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let st = Daemon.create (Server.create ()) in
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.close r;
  let oc = Unix.out_channel_of_descr w in
  let write resp =
    output_string oc resp;
    output_char oc '\n';
    flush oc
  in
  ignore
    (Daemon.submit st ~line:"{\"id\": 1, \"op\": \"ping\"}" ~write
       ~on_done:ignore);
  Daemon.begin_shutdown st;
  Daemon.worker st 0;
  check int_t "EPIPE contained" 1 (Daemon.write_contained st);
  check int_t "served despite dead client" 1 (Daemon.served st);
  (try close_out oc with Sys_error _ -> ())

(* Supervision: an unexpected exception (not an I/O failure) kills the
   worker domain, and the supervisor respawns it — queued work behind
   the poisoned job still gets answered. *)
let test_supervisor_respawns_dead_worker () =
  let st = Daemon.create (Server.create ()) in
  ignore
    (Daemon.submit st ~line:"{\"id\": 1, \"op\": \"ping\"}"
       ~write:(fun _ -> failwith "boom")
       ~on_done:ignore);
  let answered = ref [] in
  ignore
    (Daemon.submit st ~line:"{\"id\": 2, \"op\": \"ping\"}"
       ~write:(fun r -> answered := r :: !answered)
       ~on_done:ignore);
  Daemon.begin_shutdown st;
  Daemon.supervise st ~jobs:1;
  check bool_t "worker was respawned" true (Daemon.respawns st >= 1);
  check int_t "job behind the poison answered" 1 (List.length !answered)

(* The close-vs-write race: a request line with no trailing newline
   followed by EOF (exactly what a client that writes-then-shutdowns
   produces) must be answered before reader_loop returns, because the
   caller closes the fd right after.  The deliberately slow writer
   makes the old race a deterministic failure. *)
let test_reader_waits_for_pending () =
  let st = Daemon.create (Server.create ()) in
  let r, w = Unix.pipe ~cloexec:true () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc "{\"id\": 1, \"op\": \"ping\"}\n{\"id\": 2, \"op\": \"ping\"}";
  close_out oc;
  let responses = ref [] in
  let lock = Mutex.create () in
  let worker = Domain.spawn (fun () -> Daemon.worker st 0) in
  let ic = Unix.in_channel_of_descr r in
  Daemon.reader_loop st ic (fun resp ->
      Thread.delay 0.05;
      Mutex.lock lock;
      responses := resp :: !responses;
      Mutex.unlock lock);
  (* reader_loop returned: both responses (including the unterminated
     tail's) must already be written. *)
  Mutex.lock lock;
  let n = List.length !responses in
  Mutex.unlock lock;
  check int_t "all answered before reader_loop returns" 2 n;
  Daemon.begin_shutdown st;
  Domain.join worker;
  close_in ic

(* Counter coherence under concurrent intake and workers: pound the
   daemon from four intake threads against two supervised workers with
   a tight queue bound; afterwards every request is accounted exactly
   once (served + shed = submitted), every refusal carried a
   non-negative retry hint, and on_done ran once per accepted job. *)
let test_stats_coherence_stress () =
  let server = Server.create () in
  let st = Daemon.create ~max_queue:4 server in
  let intakes = 4 and per_intake = 100 in
  let accepted = Atomic.make 0 in
  let inline = Atomic.make 0 in
  let dones = Atomic.make 0 in
  let bad_retry = Atomic.make 0 in
  let supervisor = Thread.create (fun () -> Daemon.supervise st ~jobs:2) () in
  let intake k =
    Thread.create
      (fun () ->
        for i = 0 to per_intake - 1 do
          let line =
            Printf.sprintf "{\"id\": %d, \"op\": \"ping\"}"
              ((k * per_intake) + i)
          in
          let write resp =
            match Json.parse resp with
            | Ok r
              when Json.member "error" r = Some (Json.String "overloaded") -> (
              match Json.member "retry_after_ms" r with
              | Some (Json.Int ms) when ms >= 0 -> ()
              | _ -> Atomic.incr bad_retry)
            | _ -> ()
          in
          match
            Daemon.submit st ~line ~write ~on_done:(fun () ->
                Atomic.incr dones)
          with
          | Daemon.Accepted -> Atomic.incr accepted
          | Daemon.Answered -> Atomic.incr inline
          | Daemon.Draining -> ()
        done)
      ()
  in
  let threads = List.init intakes intake in
  List.iter Thread.join threads;
  Daemon.begin_shutdown st;
  Thread.join supervisor;
  check int_t "every request accounted once" (intakes * per_intake)
    (Atomic.get accepted + Atomic.get inline);
  check int_t "served = accepted" (Atomic.get accepted) (Daemon.served st);
  check int_t "shed = answered inline" (Atomic.get inline) (Daemon.shed st);
  check int_t "on_done once per accepted job" (Atomic.get accepted)
    (Atomic.get dones);
  check int_t "every retry hint non-negative" 0 (Atomic.get bad_retry);
  check int_t "no respawns from healthy traffic" 0 (Daemon.respawns st);
  check int_t "queue fully drained" 0 (Daemon.queue_depth st)

let fd_closed fd =
  match Unix.fstat fd with
  | _ -> false
  | exception Unix.Unix_error (EBADF, _, _) -> true

(* The startup/shutdown race: a listener published after shutdown has
   begun must be refused and closed, and one published before must be
   closed by the shutdown.  (The old daemon wrote the fd without the
   queue mutex, so a shutdown could miss it and park the acceptor in
   accept(2) forever.) *)
let test_listener_install_race () =
  let socket () = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (* Install before shutdown: accepted, then closed by the shutdown. *)
  let st = Daemon.create (Server.create ()) in
  let fd = socket () in
  check bool_t "install on live daemon" true (Daemon.install_listener st fd);
  check bool_t "fd stays open" false (fd_closed fd);
  Daemon.begin_shutdown st;
  check bool_t "shutdown closes listener" true (fd_closed fd);
  (* Install after shutdown: refused and closed immediately. *)
  let st = Daemon.create (Server.create ()) in
  Daemon.begin_shutdown st;
  let fd = socket () in
  check bool_t "install refused while draining" false
    (Daemon.install_listener st fd);
  check bool_t "refused fd closed" true (fd_closed fd)

let () =
  Alcotest.run "server"
    [ ( "server",
        [ Alcotest.test_case "protocol basics" `Quick test_protocol_basics;
          Alcotest.test_case "cache parity" `Quick test_cache_parity;
          Alcotest.test_case "iso responses consistent" `Quick
            test_iso_responses_consistent;
          Alcotest.test_case "concurrent parity" `Quick
            test_concurrent_parity;
          Alcotest.test_case "detail cached field" `Quick
            test_detail_cached_field;
          Alcotest.test_case "curtailed not cached" `Quick
            test_curtailed_not_cached;
          Alcotest.test_case "solver fault contained and degraded" `Quick
            test_solver_fault_contained_and_degraded;
          Alcotest.test_case "cache insert fault contained" `Quick
            test_cache_insert_fault_contained ] );
      ( "daemon",
        [ Alcotest.test_case "drain refusal answered" `Quick
            test_drain_refusal_answered;
          Alcotest.test_case "drain completes accepted work" `Quick
            test_drain_completes_accepted_work;
          Alcotest.test_case "listener install race" `Quick
            test_listener_install_race;
          Alcotest.test_case "admission queue bound" `Quick
            test_admission_queue_bound;
          Alcotest.test_case "admission deadline unmeetable" `Quick
            test_admission_deadline_unmeetable;
          Alcotest.test_case "degrade on shed" `Quick test_degrade_on_shed;
          Alcotest.test_case "write failure contained" `Quick
            test_write_failure_contained;
          Alcotest.test_case "EPIPE disconnect contained" `Quick
            test_epipe_disconnect_contained;
          Alcotest.test_case "supervisor respawns dead worker" `Quick
            test_supervisor_respawns_dead_worker;
          Alcotest.test_case "reader waits for pending" `Quick
            test_reader_waits_for_pending;
          Alcotest.test_case "stats coherence stress" `Quick
            test_stats_coherence_stress ] ) ]
