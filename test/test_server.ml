(* Tests for Pipesched_serve.Server: protocol shapes, cache parity
   (cached responses byte-identical to fresh solves), and concurrent
   mixed-duplicate traffic. *)

open Pipesched_ir
module Rng = Pipesched_prelude.Rng
module Json = Pipesched_prelude.Json
module Server = Pipesched_serve.Server
open Helpers

(* One request line for [blk] (the test traffic is JSON text, exactly
   what the daemon reads). *)
let request_line ?deadline_ms id blk =
  let fields =
    [ ("id", Json.Int id);
      ("machine", Json.String "simulation");
      ("block", Json.String (Block.to_string blk)) ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
    | None -> []
  in
  Json.to_string (Json.Assoc fields)

(* Strip the echoed id so responses to different requests for the same
   block compare equal. *)
let strip_id line =
  match Json.parse line with
  | Ok (Json.Assoc fields) ->
    Json.to_string (Json.Assoc (List.remove_assoc "id" fields))
  | Ok v -> Json.to_string v
  | Error msg -> Alcotest.failf "unparsable response %S: %s" line msg

let test_protocol_basics () =
  let t = Server.create () in
  let ok line =
    match Json.parse (Server.handle_line t line) with
    | Ok resp -> (
      match Json.member "ok" resp with
      | Some (Json.Bool b) -> b
      | _ -> Alcotest.fail "response without ok field")
    | Error msg -> Alcotest.failf "bad response: %s" msg
  in
  check bool_t "malformed json" false (ok "{nope");
  check bool_t "missing machine" false (ok "{\"block\": \"1: Load #a\"}");
  check bool_t "unknown preset" false
    (ok "{\"machine\": \"nope\", \"block\": \"1: Load #a\"}");
  check bool_t "bad block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"what\"}");
  check bool_t "empty block" false
    (ok "{\"machine\": \"simulation\", \"block\": \"\"}");
  check bool_t "schedules" true
    (ok "{\"machine\": \"simulation\", \"block\": \"1: Load #a\"}");
  check bool_t "stats op" true (ok "{\"op\": \"stats\"}");
  check bool_t "ping op" true (ok "{\"op\": \"ping\"}");
  check bool_t "unknown op" false (ok "{\"op\": \"nope\"}");
  (* Inline textual machine descriptions work too. *)
  check bool_t "inline machine" true
    (ok
       "{\"machine\": {\"text\": \"machine m\\npipe loader 2 1\\nops Load \
        -> 0\"}, \"block\": \"1: Load #a\"}")

(* The response to a request must not depend on whether it was answered
   by the cache: replay mixed duplicate traffic against a caching server
   and an uncached one, and require byte equality line by line. *)
let test_cache_parity () =
  let rng = Rng.create 0xbeef in
  let blocks = List.init 8 (fun _ -> random_block rng (4 + Rng.int rng 8)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 3 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
  in
  let cached = Server.create ~cache_capacity:256 () in
  let uncached = Server.create ~cache_capacity:0 () in
  List.iteri
    (fun i blk ->
      let line = request_line i blk in
      let a = Server.handle_line cached line in
      let b = Server.handle_line uncached line in
      check bool_t (Printf.sprintf "request %d byte-identical" i) true
        (String.equal a b))
    traffic;
  check bool_t "cache actually hit" true (Server.cache_hits cached > 0);
  check bool_t "uncached never hit" true (Server.cache_hits uncached = 0);
  check int_t "one entry per unique block" (List.length blocks)
    (Server.cache_length cached)

(* Isomorphic presentations of one block must get responses that agree
   after the per-presentation order remap: same nops, same eta/issue,
   and a legal order for their own block. *)
let test_iso_responses_consistent () =
  let rng = Rng.create 0xfeed in
  let t = Server.create () in
  for i = 1 to 12 do
    let blk = random_block rng (4 + Rng.int rng 8) in
    let variant = random_relabel rng (random_topo_reorder rng blk) in
    let get blk =
      match Json.parse (Server.handle_line t (request_line i blk)) with
      | Ok resp ->
        let field name =
          match Json.member name resp with
          | Some (Json.List xs) ->
            List.map (fun j -> Option.get (Json.to_int_opt j)) xs
          | _ -> Alcotest.failf "response missing %s" name
        in
        let nops =
          match Json.member "nops" resp with
          | Some (Json.Int n) -> n
          | _ -> Alcotest.fail "response missing nops"
        in
        (nops, field "order", field "eta", field "issue")
      | Error msg -> Alcotest.failf "bad response: %s" msg
    in
    let nops, order, eta, issue = get blk in
    let nops', order', eta', issue' = get variant in
    check int_t "same nops" nops nops';
    check bool_t "same stall shape" true (eta = eta' && issue = issue');
    check bool_t "legal for original" true
      (Dag.is_legal_order (Dag.of_block blk) (Array.of_list order));
    check bool_t "legal for variant" true
      (Dag.is_legal_order (Dag.of_block variant) (Array.of_list order'))
  done

(* Hammer one caching server from several domains with mixed duplicate
   traffic; every response must equal the serially computed uncached
   response for its line. *)
let test_concurrent_parity () =
  let rng = Rng.create 0xcafe in
  let blocks = List.init 6 (fun _ -> random_block rng (4 + Rng.int rng 6)) in
  let traffic =
    List.concat_map
      (fun blk ->
        blk
        :: List.init 7 (fun _ ->
               random_relabel rng (random_topo_reorder rng blk)))
      blocks
    |> List.mapi (fun i blk -> request_line i blk)
    |> Array.of_list
  in
  (* Shuffle so duplicates interleave across domains. *)
  Rng.shuffle rng traffic;
  let expected =
    let uncached = Server.create ~cache_capacity:0 () in
    Array.map (fun line -> strip_id (Server.handle_line uncached line)) traffic
  in
  let t = Server.create ~cache_capacity:256 () in
  let njobs = 4 in
  let results = Array.make (Array.length traffic) "" in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length traffic then begin
        results.(i) <- Server.handle_line t traffic.(i);
        go ()
      end
    in
    go ()
  in
  let domains = List.init njobs (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Array.iteri
    (fun i got ->
      check bool_t
        (Printf.sprintf "concurrent response %d matches fresh solve" i)
        true
        (String.equal (strip_id got) expected.(i)))
    results;
  check bool_t "hits under concurrency" true (Server.cache_hits t > 0);
  check bool_t "misses bounded by uniques + races" true
    (Server.cache_misses t >= List.length blocks)

(* A curtailed solve (deadline ~ 0) is served but never cached. *)
let test_curtailed_not_cached () =
  let rng = Rng.create 0xd00d in
  let blk = random_block rng 16 in
  let t = Server.create () in
  let resp =
    Server.handle_line t (request_line ~deadline_ms:0.000001 0 blk)
  in
  match Json.parse resp with
  | Error msg -> Alcotest.failf "bad response: %s" msg
  | Ok r ->
    check bool_t "served ok" true (Json.member "ok" r = Some (Json.Bool true));
    (match Json.member "completed" r with
    | Some (Json.Bool false) ->
      check int_t "not inserted" 0 (Server.cache_length t)
    | _ ->
      (* The search beat even that deadline: it may cache.  Nothing to
         assert beyond the response being well-formed. *)
      ())

let () =
  Alcotest.run "server"
    [ ( "server",
        [ Alcotest.test_case "protocol basics" `Quick test_protocol_basics;
          Alcotest.test_case "cache parity" `Quick test_cache_parity;
          Alcotest.test_case "iso responses consistent" `Quick
            test_iso_responses_consistent;
          Alcotest.test_case "concurrent parity" `Quick
            test_concurrent_parity;
          Alcotest.test_case "curtailed not cached" `Quick
            test_curtailed_not_cached ] ) ]
