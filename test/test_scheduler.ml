(* Conformance suite for the common SCHEDULER interface
   (Pipesched_core.Scheduler): every registered backend — exact
   searches, the cp solver, the portfolio race, the heuristics — must
   honor the same outcome contract (see scheduler.mli).  The properties
   here are backend-generic on purpose: adding a backend to the
   registry automatically puts it under this suite. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core
module Budget = Pipesched_prelude.Budget
module Certify = Pipesched_verify.Certify
open Helpers

let exact = [ "bnb"; "cp"; "portfolio" ]
let is_exact name = List.mem name exact

let backend name =
  match Scheduler.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %S not registered" name

let schedule ?options ?(name = "bnb") blk =
  let (module B : Scheduler.S) = backend name in
  B.schedule ?options machine (Dag.of_block blk)

let all_clean what vs =
  if not (Certify.certified vs) then
    Alcotest.failf "%s: %s" what (Certify.explain_all vs);
  true

(* ------------------------------------------------------------------ *)
(* Registry shape                                                      *)

let registry_is_complete () =
  Alcotest.(check (list string))
    "registry names" [ "bnb"; "cp"; "portfolio"; "windowed"; "list" ]
    Scheduler.names;
  List.iter
    (fun name ->
      let (module B : Scheduler.S) = backend name in
      Alcotest.(check string) "find is name-consistent" name B.name;
      Alcotest.(check bool) "describe nonempty" true (B.describe <> ""))
    Scheduler.names;
  Alcotest.(check (option reject)) "unknown name" None
    (Option.map ignore (Scheduler.find "no-such-backend"))

(* ------------------------------------------------------------------ *)
(* Certification: best and initial are legal, best-first ordered       *)

let outcomes_certify =
  qtest ~count:100 "every backend's best and initial certify clean"
    (block_gen ~min_size:1 ~max_size:8 ()) block_print
    (fun blk ->
      List.for_all
        (fun name ->
          let o = schedule ~name blk in
          all_clean (name ^ " best") (Certify.check machine blk o.Scheduler.best)
          && all_clean (name ^ " initial")
               (Certify.check machine blk o.Scheduler.initial)
          && all_clean (name ^ " ordering")
               (Certify.check_ordering
                  [ (name ^ " best", o.Scheduler.best.Omega.nops);
                    (name ^ " initial", o.Scheduler.initial.Omega.nops) ]))
        Scheduler.names)

(* ------------------------------------------------------------------ *)
(* The completed / status / proved contract                            *)

let contract_holds =
  qtest ~count:100 "completed iff Complete iff proved (exact backends)"
    (block_gen ~min_size:1 ~max_size:8 ()) block_print
    (fun blk ->
      List.for_all
        (fun name ->
          let o = schedule ~name blk in
          if is_exact name then
            o.Scheduler.completed = (o.Scheduler.status = Budget.Complete)
            && o.Scheduler.completed = (o.Scheduler.proved <> None)
            && (match o.Scheduler.proved with
                | Some p -> p = o.Scheduler.best.Omega.nops
                | None -> true)
            && o.Scheduler.calls >= 0
          else
            (* Heuristics terminate naturally but never claim a proof. *)
            (not o.Scheduler.completed)
            && o.Scheduler.status = Budget.Complete
            && o.Scheduler.proved = None)
        Scheduler.names)

(* ------------------------------------------------------------------ *)
(* Exact backends agree with the trusted bnb optimum                   *)

let exact_backends_agree =
  qtest ~count:100 "cp and portfolio proofs name the bnb optimum"
    (block_gen ~min_size:1 ~max_size:7 ()) block_print
    (fun blk ->
      let reference = schedule ~name:"bnb" blk in
      if not reference.Scheduler.completed then QCheck2.assume_fail ()
      else
        let opt = reference.Scheduler.best.Omega.nops in
        List.for_all
          (fun name ->
            let o = schedule ~name blk in
            match o.Scheduler.proved with
            | Some p -> p = opt
            | None -> o.Scheduler.best.Omega.nops >= opt)
          [ "cp"; "portfolio" ])

(* ------------------------------------------------------------------ *)
(* Anytime behavior: tiny budgets and pre-cancelled tokens             *)

let anytime_under_tiny_lambda =
  qtest ~count:80 "a starved budget still yields a legal incumbent"
    (block_gen ~min_size:2 ~max_size:8 ()) block_print
    (fun blk ->
      let options = { Optimal.default_options with Optimal.lambda = 3 } in
      List.for_all
        (fun name ->
          let o = schedule ~options ~name blk in
          (o.Scheduler.status = Budget.Complete
          || o.Scheduler.status = Budget.Curtailed_lambda)
          && (o.Scheduler.status = Budget.Complete || not o.Scheduler.completed)
          && all_clean (name ^ " starved best")
               (Certify.check machine blk o.Scheduler.best))
        exact)

let anytime_under_cancellation =
  qtest ~count:50 "a pre-cancelled token stops the search, legally"
    (block_gen ~min_size:2 ~max_size:8 ()) block_print
    (fun blk ->
      List.for_all
        (fun name ->
          let t = Budget.token () in
          Budget.cancel t;
          let options =
            { Optimal.default_options with Optimal.cancel = Some t }
          in
          let o = schedule ~options ~name blk in
          (o.Scheduler.status = Budget.Cancelled
          || o.Scheduler.status = Budget.Complete)
          && all_clean (name ^ " cancelled best")
               (Certify.check machine blk o.Scheduler.best))
        exact)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

let deterministic_schedules =
  qtest ~count:60 "serial backends reproduce the same schedule"
    (block_gen ~min_size:1 ~max_size:7 ()) block_print
    (fun blk ->
      List.for_all
        (fun name ->
          let a = schedule ~name blk in
          let b = schedule ~name blk in
          a.Scheduler.best.Omega.order = b.Scheduler.best.Omega.order
          && a.Scheduler.best.Omega.nops = b.Scheduler.best.Omega.nops)
        [ "bnb"; "cp"; "windowed"; "list" ])

let portfolio_deterministic_value =
  qtest ~count:60 "the portfolio's proved value does not depend on the race"
    (block_gen ~min_size:1 ~max_size:7 ()) block_print
    (fun blk ->
      let a = schedule ~name:"portfolio" blk in
      let b = schedule ~name:"portfolio" blk in
      match (a.Scheduler.proved, b.Scheduler.proved) with
      | Some x, Some y ->
        x = y
        && a.Scheduler.best.Omega.nops = x
        && b.Scheduler.best.Omega.nops = y
      | _ ->
        (* With the default budget both runs prove or neither does. *)
        a.Scheduler.proved = b.Scheduler.proved)

let () =
  Alcotest.run "scheduler"
    [ ( "registry",
        [ Alcotest.test_case "names and lookup" `Quick registry_is_complete ] );
      ( "conformance",
        [ outcomes_certify; contract_holds; exact_backends_agree ] );
      ("anytime", [ anytime_under_tiny_lambda; anytime_under_cancellation ]);
      ("determinism", [ deterministic_schedules; portfolio_deterministic_value ])
    ]
