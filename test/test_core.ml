(* Tests for Pipesched_core.Optimal: the branch-and-bound scheduler. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
open Helpers

let tu ~id op a b = Tuple.make ~id op a b

let options_variants =
  let base = Optimal.default_options in
  [ ("paper", base);
    ("no-equivalence", { base with Optimal.equivalence = false });
    ("strong-equivalence", { base with Optimal.strong_equivalence = true });
    ("critical-path", { base with Optimal.lower_bound = Optimal.Critical_path });
    ( "all-extensions",
      { base with
        Optimal.strong_equivalence = true;
        Optimal.lower_bound = Optimal.Critical_path } );
    ("source-seed", { base with Optimal.seed = List_sched.Source_order });
    ("random-seed", { base with Optimal.seed = List_sched.Random_order 5 });
    (* The dominance memo, forced on from the first Omega call (the
       default activation threshold would never trigger on oracle-sized
       blocks) and fully off. *)
    ( "memo-eager",
      { base with
        Optimal.memo =
          { base.Optimal.memo with Optimal.memo_activation = 0 } } );
    ( "no-memo",
      { base with
        Optimal.memo =
          { base.Optimal.memo with Optimal.memo_enabled = false } } ) ]

(* ------------------------------------------------------------------ *)
(* Optimality against the exhaustive oracle                            *)

let brute_force_nops dag =
  List.fold_left
    (fun acc order ->
      min acc (Omega.evaluate machine dag ~order).Omega.nops)
    max_int (all_legal_orders dag)

let optimal_matches_brute_force =
  qtest ~count:150 "search finds the exhaustive optimum (all option sets)"
    (block_gen ~min_size:1 ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let brute = brute_force_nops dag in
      List.for_all
        (fun (_, options) ->
          let o = Optimal.schedule ~options machine dag in
          o.Optimal.stats.Optimal.completed
          && o.Optimal.best.Omega.nops = brute)
        options_variants)

let optimal_on_deep_machine =
  qtest ~count:100 "optimum also holds on the deep and demo machines"
    (block_gen ~min_size:1 ~max_size:6 ()) block_print
    (fun blk ->
      List.for_all
        (fun m ->
          let dag = Dag.of_block blk in
          let brute =
            List.fold_left
              (fun acc order ->
                min acc (Omega.evaluate m dag ~order).Omega.nops)
              max_int (all_legal_orders dag)
          in
          List.for_all
            (fun (_, options) ->
              (Optimal.schedule ~options m dag).Optimal.best.Omega.nops
              = brute)
            options_variants)
        [ Machine.Presets.deep; Machine.Presets.demo;
          Machine.Presets.throttled ])

let optimal_result_is_legal =
  qtest ~count:200 "the returned schedule is a legal order with its cost"
    (block_gen ~min_size:1 ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      Dag.is_legal_order dag o.Optimal.best.Omega.order
      && (Omega.evaluate machine dag ~order:o.Optimal.best.Omega.order)
           .Omega.nops
         = o.Optimal.best.Omega.nops)

let optimal_never_worse_than_seed =
  qtest ~count:200 "best schedule never has more NOPs than the seed"
    (block_gen ~min_size:1 ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      o.Optimal.best.Omega.nops <= o.Optimal.initial.Omega.nops)

let seed_choice_does_not_change_optimum =
  qtest ~count:100 "optimum is independent of the seed heuristic"
    (block_gen ~min_size:1 ~max_size:8 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let nops_with seed =
        (Optimal.schedule
           ~options:{ Optimal.default_options with Optimal.seed }
           machine dag)
          .Optimal.best
          .Omega.nops
      in
      let a = nops_with List_sched.Max_distance in
      let b = nops_with List_sched.Source_order in
      let c = nops_with (List_sched.Random_order 33) in
      a = b && b = c)

(* ------------------------------------------------------------------ *)
(* The paper's Figure 3 block                                          *)

let test_fig3_optimal () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 15) Operand.Null;
        tu ~id:2 Op.Store (Operand.Var "b") (Operand.Ref 1);
        tu ~id:3 Op.Load (Operand.Var "a") Operand.Null;
        tu ~id:4 Op.Mul (Operand.Ref 1) (Operand.Ref 3);
        tu ~id:5 Op.Store (Operand.Var "a") (Operand.Ref 4) ]
  in
  let dag = Dag.of_block blk in
  let o = Optimal.schedule machine dag in
  (* Load@0, anything, Mul@2, anything, Store a >= 6: two NOPs minimum. *)
  check int_t "optimal NOPs" 2 o.Optimal.best.Omega.nops;
  check bool_t "completed" true o.Optimal.stats.Optimal.completed;
  check bool_t "verified against exhaustive" true
    (Optimal.verify_optimal machine dag o)

(* The literal paper condition [5c] would prune the optimum here: at the
   root both `Store x3` and `Sub` are resource-free with no predecessors,
   but only schedules placing the Store in third position reach 2 NOPs.
   Found by the qcheck oracle; kept as a regression test for the
   successor-free refinement. *)
let test_5c_counterexample () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Store (Operand.Var "x3") (Operand.Imm 32);
        tu ~id:2 Op.Sub (Operand.Imm 13) (Operand.Imm 77);
        tu ~id:3 Op.Div (Operand.Ref 2) (Operand.Imm 99);
        tu ~id:4 Op.And (Operand.Imm 16) (Operand.Ref 3) ]
  in
  let dag = Dag.of_block blk in
  check int_t "exhaustive optimum" 2 (brute_force_nops dag);
  List.iter
    (fun (name, options) ->
      let o = Optimal.schedule ~options machine dag in
      check int_t ("optimal under " ^ name) 2 o.Optimal.best.Omega.nops)
    options_variants

(* ------------------------------------------------------------------ *)
(* Curtailment                                                         *)

let test_lambda_curtails () =
  let rng = Rng.create 4242 in
  (* A biggish block so the search cannot finish in 5 calls. *)
  let blk = random_block rng 20 in
  let dag = Dag.of_block blk in
  let o =
    Optimal.schedule
      ~options:{ Optimal.default_options with Optimal.lambda = 5 }
      machine dag
  in
  check bool_t "curtailed" false o.Optimal.stats.Optimal.completed;
  check bool_t "respected lambda" true
    (o.Optimal.stats.Optimal.omega_calls <= 5);
  (* Even curtailed, the incumbent (the seed) is a valid answer. *)
  check bool_t "still legal" true
    (Dag.is_legal_order dag o.Optimal.best.Omega.order)

let lambda_monotone =
  qtest ~count:80 "larger lambda never yields a worse schedule"
    (block_gen ~min_size:4 ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let nops_at lambda =
        (Optimal.schedule
           ~options:{ Optimal.default_options with Optimal.lambda }
           machine dag)
          .Optimal.best
          .Omega.nops
      in
      let a = nops_at 10 in
      let b = nops_at 100 in
      let c = nops_at 10_000 in
      a >= b && b >= c)

module Budget = Pipesched_prelude.Budget

(* Anytime mode: with an effectively unlimited lambda and a short
   wall-clock deadline, every entry point must come back promptly with a
   complete legal schedule and a [Curtailed_deadline] status.  The block
   is far too large for the search to finish inside the deadline. *)
let test_deadline_anytime () =
  (* 36 mutually independent, pairwise distinct instructions: the search
     space is astronomically large and equivalence pruning cannot
     collapse it, so no budget this side of the deadline finishes. *)
  let blk =
    let ops = [| Op.Load; Op.Mul; Op.Div; Op.Mod |] in
    Block.of_tuples_exn
      (List.init 36 (fun i ->
           match ops.(i mod 4) with
           | Op.Load ->
             tu ~id:(i + 1) Op.Load
               (Operand.Var (Printf.sprintf "v%d" i))
               Operand.Null
           | op -> tu ~id:(i + 1) op (Operand.Imm (i + 1)) (Operand.Imm (i + 2))))
  in
  let dag = Dag.of_block blk in
  let deadline = 0.05 in
  let options =
    { Optimal.default_options with
      Optimal.lambda = max_int;
      Optimal.deadline_s = Some deadline }
  in
  let run name f =
    let t0 = Unix.gettimeofday () in
    let status, order = f () in
    let wall = Unix.gettimeofday () -. t0 in
    check bool_t (name ^ ": curtailed by the deadline") true
      (status = Budget.Curtailed_deadline);
    check bool_t (name ^ ": legal complete schedule") true
      (Dag.is_legal_order dag order);
    check bool_t (name ^ ": within twice the deadline") true
      (wall <= 2.0 *. deadline)
  in
  run "schedule" (fun () ->
      let o = Optimal.schedule ~options machine dag in
      (o.Optimal.stats.Optimal.status, o.Optimal.best.Omega.order));
  run "schedule_bounded" (fun () ->
      match Optimal.schedule_bounded ~options ~registers:64 machine dag with
      | Ok o -> (o.Optimal.stats.Optimal.status, o.Optimal.best.Omega.order)
      | Error () -> Alcotest.fail "bounded search found no schedule");
  run "windowed" (fun () ->
      let w = Windowed.schedule ~options ~window:18 machine dag in
      (w.Windowed.status, w.Windowed.best.Omega.order))

(* The determinism contract behind byte-identical deadline-free runs:
   without a deadline the searches never consult the clock. *)
let test_no_deadline_reads_no_clock () =
  Budget.set_clock (fun () ->
      Alcotest.fail "clock read by a deadline-free search");
  Fun.protect
    ~finally:(fun () -> Budget.set_clock Unix.gettimeofday)
    (fun () ->
      let rng = Rng.create 51 in
      let blk = random_block rng 12 in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      check bool_t "elapsed not measured" true
        (o.Optimal.stats.Optimal.elapsed_s = 0.0);
      check bool_t "status agrees with completed" true
        (Budget.is_complete o.Optimal.stats.Optimal.status
         = o.Optimal.stats.Optimal.completed);
      let w = Windowed.schedule ~window:4 machine dag in
      check bool_t "windowed status" true
        (Budget.is_complete w.Windowed.status
         = w.Windowed.all_windows_completed))

let test_stats_consistency () =
  let rng = Rng.create 99 in
  let blk = random_block rng 10 in
  let dag = Dag.of_block blk in
  let o = Optimal.schedule machine dag in
  let s = o.Optimal.stats in
  check bool_t "calls positive" true (s.Optimal.omega_calls >= 0);
  check bool_t "improvements bounded" true
    (s.Optimal.improvements <= s.Optimal.schedules_completed);
  check bool_t "within lambda" true
    (s.Optimal.omega_calls <= Optimal.default_options.Optimal.lambda)

(* ------------------------------------------------------------------ *)
(* Pruning soundness under adversarial option mixes                    *)

let pruning_off_matches_pruning_on =
  qtest ~count:80 "disabling alpha-beta does not change the optimum"
    (block_gen ~min_size:1 ~max_size:6 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let on = Optimal.schedule machine dag in
      let off =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.alpha_beta = false }
          machine dag
      in
      (not (on.Optimal.stats.Optimal.completed
            && off.Optimal.stats.Optimal.completed))
      || on.Optimal.best.Omega.nops = off.Optimal.best.Omega.nops)

let alpha_beta_reduces_calls =
  qtest ~count:80 "alpha-beta pruning never increases omega calls"
    (block_gen ~min_size:2 ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let on = Optimal.schedule machine dag in
      let off =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.alpha_beta = false }
          machine dag
      in
      (not off.Optimal.stats.Optimal.completed)
      || on.Optimal.stats.Optimal.omega_calls
         <= off.Optimal.stats.Optimal.omega_calls)

(* ------------------------------------------------------------------ *)
(* Dominance memoization                                               *)

let memo_eager = { Optimal.default_memo with Optimal.memo_activation = 0 }

let memo_off = { Optimal.default_memo with Optimal.memo_enabled = false }

let memo_preserves_optimum =
  qtest ~count:120 "memo on/off agree on the optimum (schedule)"
    (block_gen ~min_size:1 ~max_size:10 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let run memo =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.memo = memo }
          machine dag
      in
      let on = run memo_eager and off = run memo_off in
      on.Optimal.stats.Optimal.completed
      && off.Optimal.stats.Optimal.completed
      && on.Optimal.best.Omega.nops = off.Optimal.best.Omega.nops
      && off.Optimal.stats.Optimal.memo_hits = 0
      (* exhaustive cross-check where it is affordable *)
      && (Dag.length dag > 7 || Optimal.verify_optimal machine dag on))

let memo_preserves_optimum_multi =
  qtest ~count:60 "memo on/off agree on the optimum (schedule_multi)"
    (block_gen ~min_size:1 ~max_size:6 ()) block_print
    (fun blk ->
      (* Critical-path bound keeps the demo machine's multi-pipe space
         tractable (see the dot4 regression below). *)
      let m = Machine.Presets.demo in
      let dag = Dag.of_block blk in
      let run memo =
        fst
          (Optimal.schedule_multi
             ~options:
               { Optimal.default_options with
                 Optimal.lower_bound = Optimal.Critical_path;
                 Optimal.memo = memo }
             m dag)
      in
      let on = run memo_eager and off = run memo_off in
      (not
         (on.Optimal.stats.Optimal.completed
          && off.Optimal.stats.Optimal.completed))
      || on.Optimal.best.Omega.nops = off.Optimal.best.Omega.nops)

let memo_preserves_bounded_result =
  qtest ~count:80 "memo on/off agree for the register-bounded search"
    QCheck2.Gen.(pair (block_gen ~min_size:1 ~max_size:7 ()) (int_range 1 4))
    (fun (blk, k) -> Printf.sprintf "registers=%d\n%s" k (block_print blk))
    (fun (blk, k) ->
      let dag = Dag.of_block blk in
      let run memo =
        Optimal.schedule_bounded
          ~options:{ Optimal.default_options with Optimal.memo = memo }
          ~registers:k machine dag
      in
      match (run memo_eager, run memo_off) with
      | Error (), Error () -> true
      | Ok on, Ok off ->
        on.Optimal.best.Omega.nops = off.Optimal.best.Omega.nops
      | Ok _, Error () | Error (), Ok _ -> false)

let test_memo_reduces_calls () =
  (* The memo only fires on searches that revisit scheduled sets — easy
     blocks (0-NOP optimum) alpha-beta-cut to nothing first.  Scan a
     deterministic population for a block where it fires; on the way,
     every block must satisfy the one-sided invariant that a memoized
     search never explores more than the unmemoized one (a cut subtree
     can contain no incumbent improvement — see optimal.ml). *)
  let module Generator = Pipesched_synth.Generator in
  let run dag memo =
    Optimal.schedule
      ~options:
        { Optimal.default_options with
          Optimal.lambda = 500_000;
          Optimal.memo = memo }
      machine dag
  in
  let rec find seed witnessed =
    if seed > 2030 then witnessed
    else begin
      let rng = Rng.create seed in
      let blk = Generator.block rng (Generator.sample_params rng) in
      let dag = Dag.of_block blk in
      let on = run dag memo_eager and off = run dag memo_off in
      check bool_t "both complete" true
        (on.Optimal.stats.Optimal.completed
         && off.Optimal.stats.Optimal.completed);
      check int_t "same optimum" off.Optimal.best.Omega.nops
        on.Optimal.best.Omega.nops;
      check bool_t "memo never explores more" true
        (on.Optimal.stats.Optimal.omega_calls
         <= off.Optimal.stats.Optimal.omega_calls);
      check int_t "disabled memo records nothing" 0
        (off.Optimal.stats.Optimal.memo_hits
         + off.Optimal.stats.Optimal.memo_entries);
      let witnessed =
        witnessed
        || (on.Optimal.stats.Optimal.memo_hits > 0
            && on.Optimal.stats.Optimal.memo_entries > 0
            && on.Optimal.stats.Optimal.omega_calls
               < off.Optimal.stats.Optimal.omega_calls)
      in
      find (seed + 1) witnessed
    end
  in
  check bool_t "memo fires and strictly saves calls on some block" true
    (find 2000 false)

let test_memo_activation_threshold () =
  (* Below the activation threshold no table is ever created, so a tiny
     search reports zero memo traffic even with the memo enabled. *)
  let rng = Rng.create 7 in
  let blk = random_block rng 6 in
  let dag = Dag.of_block blk in
  let o =
    Optimal.schedule
      ~options:
        { Optimal.default_options with
          Optimal.memo =
            { Optimal.default_memo with Optimal.memo_activation = 1_000_000 }
        }
      machine dag
  in
  check bool_t "completed" true o.Optimal.stats.Optimal.completed;
  check int_t "no memo traffic" 0
    (o.Optimal.stats.Optimal.memo_hits
     + o.Optimal.stats.Optimal.memo_misses
     + o.Optimal.stats.Optimal.memo_entries)

(* ------------------------------------------------------------------ *)
(* Multi-pipe search                                                   *)

(* Brute force over order x pipe assignment for small blocks. *)
let brute_force_multi m dag =
  let blk = Dag.block dag in
  let n = Dag.length dag in
  let candidates pos =
    match Machine.candidates m (Block.tuple_at blk pos).Tuple.op with
    | [] -> [ None ]
    | pids -> List.map (fun p -> Some p) pids
  in
  let rec assignments pos acc =
    if pos = n then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map
        (fun c -> assignments (pos + 1) (c :: acc))
        (candidates pos)
  in
  let choices = assignments 0 [] in
  List.fold_left
    (fun best order ->
      List.fold_left
        (fun best choice ->
          min best
            (Omega.evaluate_with_pipes m dag ~order ~choice).Omega.nops)
        best choices)
    max_int (all_legal_orders dag)

let multi_matches_brute_force =
  qtest ~count:60 "multi-pipe search matches order x assignment brute force"
    (block_gen ~min_size:1 ~max_size:5 ()) block_print
    (fun blk ->
      let m = Machine.Presets.demo in
      let dag = Dag.of_block blk in
      let o, choice = Optimal.schedule_multi m dag in
      let brute = brute_force_multi m dag in
      (* Returned choice must reproduce the claimed cost. *)
      let replay =
        Omega.evaluate_with_pipes m dag ~order:o.Optimal.best.Omega.order
          ~choice
      in
      o.Optimal.best.Omega.nops = brute
      && (o.Optimal.best.Omega.nops = replay.Omega.nops
          || o.Optimal.stats.Optimal.schedules_completed = 0))

let multi_never_worse_than_single =
  qtest ~count:80 "multi-pipe optimum <= single-pipe optimum"
    (block_gen ~min_size:1 ~max_size:6 ()) block_print
    (fun blk ->
      let m = Machine.Presets.demo in
      let dag = Dag.of_block blk in
      let single = Optimal.schedule m dag in
      let multi, _ = Optimal.schedule_multi m dag in
      multi.Optimal.best.Omega.nops <= single.Optimal.best.Omega.nops)

let test_multi_uses_second_loader () =
  (* Two independent loads + their consumers: one loader forces serial
     loads on the demo machine only via enqueue=1, so both machines do
     fine; but two loads with a bigger enqueue benefit.  Use a machine
     with one slow-enqueue loader vs two. *)
  let one =
    Machine.make ~name:"one-loader"
      [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:3 |]
      ~assign:[ (Op.Load, [ 0 ]) ]
  in
  let two =
    Machine.make ~name:"two-loaders"
      [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:3;
         Pipe.make ~label:"loader" ~latency:2 ~enqueue:3 |]
      ~assign:[ (Op.Load, [ 0; 1 ]) ]
  in
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        tu ~id:2 Op.Load (Operand.Var "b") Operand.Null;
        tu ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:4 Op.Store (Operand.Var "c") (Operand.Ref 3) ]
  in
  let dag = Dag.of_block blk in
  let o1, _ = Optimal.schedule_multi one dag in
  let o2, choice2 = Optimal.schedule_multi two dag in
  check bool_t "second loader helps" true
    (o2.Optimal.best.Omega.nops < o1.Optimal.best.Omega.nops);
  (* Both loads end up on different pipes. *)
  check bool_t "loads spread" true (choice2.(0) <> choice2.(1))

(* ------------------------------------------------------------------ *)
(* Register-pressure-bounded search                                    *)

module Regalloc = Pipesched_regalloc

let feasible blk order registers =
  Result.is_ok
    (Regalloc.Alloc.allocate (Block.permute blk order) ~registers)

(* Minimum NOPs over all legal orders that allocate within [registers];
   None when no order is feasible. *)
let brute_force_bounded blk dag registers =
  List.fold_left
    (fun acc order ->
      if feasible blk order registers then
        let n = (Omega.evaluate machine dag ~order).Omega.nops in
        match acc with Some m -> Some (min m n) | None -> Some n
      else acc)
    None (all_legal_orders dag)

let bounded_matches_brute_force =
  qtest ~count:120 "bounded search matches the pressure-filtered optimum"
    QCheck2.Gen.(pair (block_gen ~min_size:1 ~max_size:7 ()) (int_range 1 4))
    (fun (blk, k) -> Printf.sprintf "registers=%d\n%s" k (block_print blk))
    (fun (blk, k) ->
      let dag = Dag.of_block blk in
      let brute = brute_force_bounded blk dag k in
      match (Optimal.schedule_bounded ~registers:k machine dag, brute) with
      | Error (), None -> true
      | Ok o, Some m ->
        o.Optimal.stats.Optimal.completed
        && o.Optimal.best.Omega.nops = m
        && feasible blk o.Optimal.best.Omega.order k
      | Ok _, None | Error (), Some _ -> false)

let bounded_never_beats_unbounded =
  qtest ~count:120 "pressure bound never improves the optimum"
    QCheck2.Gen.(pair (block_gen ~min_size:1 ~max_size:8 ()) (int_range 1 5))
    (fun (blk, k) -> Printf.sprintf "registers=%d\n%s" k (block_print blk))
    (fun (blk, k) ->
      let dag = Dag.of_block blk in
      let unbounded = (Optimal.schedule machine dag).Optimal.best.Omega.nops in
      match Optimal.schedule_bounded ~registers:k machine dag with
      | Error () -> true
      | Ok o -> o.Optimal.best.Omega.nops >= unbounded)

let bounded_with_ample_registers_is_unbounded =
  qtest ~count:120 "a large register file reproduces the plain optimum"
    (block_gen ~min_size:1 ~max_size:8 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let unbounded = (Optimal.schedule machine dag).Optimal.best.Omega.nops in
      match Optimal.schedule_bounded ~registers:64 machine dag with
      | Error () -> false
      | Ok o -> o.Optimal.best.Omega.nops = unbounded)

let test_bounded_reorders_to_fit () =
  (* The accumulation [(c1+c2)+c3] needs 3 registers in source order but
     only 2 when the search interleaves the constants with the adds —
     the reordering freedom §3.4 gains by allocating after scheduling. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Const (Operand.Imm 3) Operand.Null;
        tu ~id:4 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:5 Op.Add (Operand.Ref 4) (Operand.Ref 3);
        tu ~id:6 Op.Store (Operand.Var "x") (Operand.Ref 5) ]
  in
  let dag = Dag.of_block blk in
  check bool_t "source order needs 3" true
    (Result.is_error (Regalloc.Alloc.allocate blk ~registers:2));
  match Optimal.schedule_bounded ~registers:2 machine dag with
  | Ok o -> check bool_t "found a 2-register order" true
              (feasible blk o.Optimal.best.Omega.order 2)
  | Error () -> Alcotest.fail "a 2-register order exists"

let test_bounded_infeasible () =
  (* Three values combined pairwise: whichever combination goes first,
     both its operands still have later uses, so 2 operands + 1 result
     are simultaneously live in every legal order. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Const (Operand.Imm 3) Operand.Null;
        tu ~id:4 Op.Xor (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:5 Op.Xor (Operand.Ref 1) (Operand.Ref 3);
        tu ~id:6 Op.Xor (Operand.Ref 2) (Operand.Ref 3);
        tu ~id:7 Op.Store (Operand.Var "x") (Operand.Ref 4);
        tu ~id:8 Op.Store (Operand.Var "y") (Operand.Ref 5);
        tu ~id:9 Op.Store (Operand.Var "z") (Operand.Ref 6) ]
  in
  let dag = Dag.of_block blk in
  (match Optimal.schedule_bounded ~registers:2 machine dag with
   | Error () -> ()
   | Ok _ -> Alcotest.fail "claimed feasibility with 2 registers");
  match Optimal.schedule_bounded ~registers:3 machine dag with
  | Ok _ -> ()
  | Error () -> Alcotest.fail "three registers are enough"

let test_bounded_trades_nops_for_registers () =
  (* Hiding load latency wants both loads in flight (2 registers just for
     loads); with a tight file the scheduler must serialize and stall. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        tu ~id:2 Op.Load (Operand.Var "b") Operand.Null;
        tu ~id:3 Op.Neg (Operand.Ref 1) Operand.Null;
        tu ~id:4 Op.Neg (Operand.Ref 2) Operand.Null;
        tu ~id:5 Op.Store (Operand.Var "x") (Operand.Ref 3);
        tu ~id:6 Op.Store (Operand.Var "y") (Operand.Ref 4) ]
  in
  let dag = Dag.of_block blk in
  let nops k =
    match Optimal.schedule_bounded ~registers:k machine dag with
    | Ok o -> o.Optimal.best.Omega.nops
    | Error () -> Alcotest.fail "feasible schedule exists"
  in
  check bool_t "tight file costs stalls" true (nops 1 > nops 2)

let test_bounded_rejects_zero_registers () =
  let dag = Dag.of_block (Block.of_tuples_exn []) in
  Alcotest.check_raises "zero registers"
    (Invalid_argument "Optimal.schedule_bounded: registers must be >= 1")
    (fun () -> ignore (Optimal.schedule_bounded ~registers:0 machine dag))

(* Regression for the kernel-study finding: the multi-pipe search on the
   demo machine does not finish dot4 under the paper's mu(Phi)-only bound
   (>10M calls), but the critical-path bound + strong equivalence prove
   the optimum in a few thousand. *)
let test_multi_extensions_tame_dot4 () =
  let k = Option.get (Pipesched_synth.Kernels.find "dot4") in
  let blk =
    Pipesched_frontend.Compile.compile k.Pipesched_synth.Kernels.source
  in
  let dag = Dag.of_block blk in
  let demo = Machine.Presets.demo in
  let strong =
    { Optimal.default_options with
      Optimal.lower_bound = Optimal.Critical_path;
      Optimal.strong_equivalence = true;
      Optimal.lambda = 200_000 }
  in
  let o, _ = Optimal.schedule_multi ~options:strong demo dag in
  check bool_t "completes" true o.Optimal.stats.Optimal.completed;
  check bool_t "well under budget" true
    (o.Optimal.stats.Optimal.omega_calls < 50_000);
  check int_t "proves 7 NOPs" 7 o.Optimal.best.Omega.nops;
  (* Paper-mode bound with the same budget does not finish. *)
  let paper =
    { Optimal.default_options with Optimal.lambda = 200_000 }
  in
  let p, _ = Optimal.schedule_multi ~options:paper demo dag in
  check bool_t "paper bound curtails" false p.Optimal.stats.Optimal.completed

let test_verify_optimal_detects_suboptimal () =
  let rng = Rng.create 1234 in
  (* Find a block whose source order is strictly suboptimal. *)
  let rec find n =
    if n = 0 then None
    else
      let blk = random_block rng 8 in
      let dag = Dag.of_block blk in
      let o = Optimal.schedule machine dag in
      if o.Optimal.initial.Omega.nops > o.Optimal.best.Omega.nops then
        Some (dag, o)
      else find (n - 1)
  in
  match find 200 with
  | None -> Alcotest.fail "could not build a suboptimal example"
  | Some (dag, o) ->
    check bool_t "optimal outcome verifies" true
      (Optimal.verify_optimal machine dag o);
    let fake = { o with Optimal.best = o.Optimal.initial } in
    check bool_t "suboptimal outcome rejected" false
      (Optimal.verify_optimal machine dag fake)

let () =
  Alcotest.run "core"
    [ ( "optimality",
        [ optimal_matches_brute_force;
          optimal_on_deep_machine;
          optimal_result_is_legal;
          optimal_never_worse_than_seed;
          seed_choice_does_not_change_optimum;
          Alcotest.test_case "figure 3 block" `Quick test_fig3_optimal;
          Alcotest.test_case "[5c] counterexample" `Quick
            test_5c_counterexample ] );
      ( "curtailment",
        [ Alcotest.test_case "lambda stops the search" `Quick
            test_lambda_curtails;
          lambda_monotone;
          Alcotest.test_case "deadline anytime" `Quick test_deadline_anytime;
          Alcotest.test_case "no deadline, no clock" `Quick
            test_no_deadline_reads_no_clock;
          Alcotest.test_case "stats consistency" `Quick
            test_stats_consistency ] );
      ( "pruning",
        [ pruning_off_matches_pruning_on; alpha_beta_reduces_calls ] );
      ( "memoization",
        [ memo_preserves_optimum;
          memo_preserves_optimum_multi;
          memo_preserves_bounded_result;
          Alcotest.test_case "memo fires and reduces calls" `Quick
            test_memo_reduces_calls;
          Alcotest.test_case "activation threshold" `Quick
            test_memo_activation_threshold ] );
      ( "pressure-bounded",
        [ bounded_matches_brute_force;
          bounded_never_beats_unbounded;
          bounded_with_ample_registers_is_unbounded;
          Alcotest.test_case "reorders to fit the file" `Quick
            test_bounded_reorders_to_fit;
          Alcotest.test_case "infeasible detection" `Quick
            test_bounded_infeasible;
          Alcotest.test_case "NOPs vs registers trade-off" `Quick
            test_bounded_trades_nops_for_registers;
          Alcotest.test_case "rejects zero registers" `Quick
            test_bounded_rejects_zero_registers ] );
      ( "multi-pipe",
        [ multi_matches_brute_force;
          multi_never_worse_than_single;
          Alcotest.test_case "second loader helps" `Quick
            test_multi_uses_second_loader;
          Alcotest.test_case "extensions tame dot4" `Quick
            test_multi_extensions_tame_dot4;
          Alcotest.test_case "verify_optimal" `Quick
            test_verify_optimal_detects_suboptimal ] ) ]
