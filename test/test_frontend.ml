(* Tests for Pipesched_frontend: Lexer, Parser, Interp, Gen, Opt. *)

open Pipesched_ir
open Pipesched_frontend
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "a = b1 + 42;" in
  check bool_t "tokens" true
    (toks
     = [ Lexer.Ident "a"; Lexer.Assign; Lexer.Ident "b1"; Lexer.Plus;
         Lexer.Int 42; Lexer.Semi; Lexer.Eof ])

let test_lexer_operators () =
  let toks = Lexer.tokenize "- * / % & | ^ << >> ( )" in
  check bool_t "all operators" true
    (toks
     = [ Lexer.Minus; Lexer.Star; Lexer.Slash; Lexer.Percent; Lexer.Amp;
         Lexer.Pipe_tok; Lexer.Caret; Lexer.Shl_tok; Lexer.Shr_tok;
         Lexer.Lparen; Lexer.Rparen; Lexer.Eof ])

let test_lexer_comments_whitespace () =
  let toks = Lexer.tokenize "x = 1; # trailing comment\n  y\t=\t2;" in
  check int_t "token count" 9 (List.length toks)

let test_lexer_rejects () =
  (match Lexer.tokenize "a = $;" with
   | exception Lexer.Error (_, 4) -> ()
   | exception Lexer.Error (_, p) ->
     Alcotest.failf "wrong error position %d" p
   | _ -> Alcotest.fail "accepted '$'")

let test_lexer_empty () =
  check bool_t "empty" true (Lexer.tokenize "" = [ Lexer.Eof ])

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_precedence () =
  (* * binds tighter than +, + tighter than <<, << tighter than &, etc. *)
  let e = Parser.parse_expr "1 + 2 * 3" in
  check bool_t "mul under add" true
    (e = Ast.Binop (Op.Add, Ast.Int 1, Ast.Binop (Op.Mul, Ast.Int 2, Ast.Int 3)));
  let e = Parser.parse_expr "1 << 2 + 3" in
  check bool_t "add under shift" true
    (e = Ast.Binop (Op.Shl, Ast.Int 1, Ast.Binop (Op.Add, Ast.Int 2, Ast.Int 3)));
  let e = Parser.parse_expr "1 | 2 ^ 3 & 4" in
  check bool_t "bitwise tower" true
    (e
     = Ast.Binop
         ( Op.Or,
           Ast.Int 1,
           Ast.Binop (Op.Xor, Ast.Int 2, Ast.Binop (Op.And, Ast.Int 3, Ast.Int 4)) ))

let test_parse_associativity () =
  let e = Parser.parse_expr "10 - 2 - 3" in
  check bool_t "left assoc" true
    (e
     = Ast.Binop (Op.Sub, Ast.Binop (Op.Sub, Ast.Int 10, Ast.Int 2), Ast.Int 3))

let test_parse_unary_parens () =
  let e = Parser.parse_expr "-(a + 2) * -b" in
  check bool_t "unary and parens" true
    (e
     = Ast.Binop
         ( Op.Mul,
           Ast.Unop (Op.Neg, Ast.Binop (Op.Add, Ast.Var "a", Ast.Int 2)),
           Ast.Unop (Op.Neg, Ast.Var "b") ))

let test_parse_program () =
  let prog = Parser.parse "b = 15;\na = b * a;" in
  check int_t "statements" 2 (List.length prog);
  check bool_t "figure 3 shape" true
    (prog
     = [ Ast.Assign ("b", Ast.Int 15);
         Ast.Assign ("a", Ast.Binop (Op.Mul, Ast.Var "b", Ast.Var "a")) ])

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  expect_error "a = ;";
  expect_error "a = 1";
  expect_error "= 1;";
  expect_error "a = (1;";
  expect_error "a = 1 + ;";
  expect_error "1 = a;"

let test_parse_print_roundtrip () =
  (* pp_program output reparses to the same AST. *)
  let progs =
    [ "a = 1;"; "a = b * (c + -d);"; "x = (a & b) | (c ^ 255);";
      "y = a << 2; z = y >> 1; w = z % 7;" ]
  in
  List.iter
    (fun src ->
      let p1 = Parser.parse src in
      let p2 = Parser.parse (Ast.program_to_string p1) in
      check bool_t ("roundtrip " ^ src) true (p1 = p2))
    progs

(* ------------------------------------------------------------------ *)
(* Random source programs (shared by gen/opt properties)               *)

let random_expr rng depth =
  let rec go depth =
    if depth = 0 || Rng.int rng 3 = 0 then
      if Rng.bool rng then Ast.Int (Rng.int_in rng (-50) 50)
      else Ast.Var (Printf.sprintf "v%d" (Rng.int rng 4))
    else
      match Rng.int rng 6 with
      | 0 -> Ast.Unop (Op.Neg, go (depth - 1))
      | _ ->
        let op =
          Rng.choose rng
            [| Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Mod; Op.And; Op.Or;
               Op.Xor; Op.Shl; Op.Shr |]
        in
        Ast.Binop (op, go (depth - 1), go (depth - 1))
  in
  go depth

let random_program rng =
  let n = 1 + Rng.int rng 6 in
  List.init n (fun _ ->
      Ast.Assign (Printf.sprintf "v%d" (Rng.int rng 4), random_expr rng 3))

let program_gen =
  QCheck2.Gen.(
    map
      (fun seed -> random_program (Rng.create seed))
      (int_bound 10_000_000))

let all_vars prog =
  List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)

(* ------------------------------------------------------------------ *)
(* Gen: tuple generation is faithful                                   *)

let gen_preserves_semantics =
  qtest ~count:500 "naive tuple generation preserves program semantics"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Gen.generate ~reuse:false prog in
      Interp.equivalent_on prog blk ~env:(env_of_seed 1) ~vars:(all_vars prog))

let gen_reuse_preserves_semantics =
  qtest ~count:500 "reuse-mode tuple generation preserves program semantics"
    program_gen Ast.program_to_string
    (fun prog ->
      let blk = Gen.generate ~reuse:true prog in
      Interp.equivalent_on prog blk ~env:(env_of_seed 2) ~vars:(all_vars prog))

let test_gen_fig3 () =
  (* The paper's Figure 3 translation. *)
  let blk = Gen.generate (Parser.parse "b = 15; a = b * a;") in
  let ops = Array.to_list (Array.map (fun t -> t.Tuple.op) (Block.tuples blk)) in
  check bool_t "op sequence" true
    (ops = [ Op.Const; Op.Store; Op.Load; Op.Load; Op.Mul; Op.Store ]);
  (* reuse mode avoids reloading b after its store *)
  let blk = Gen.generate ~reuse:true (Parser.parse "b = 15; a = b * a;") in
  let ops = Array.to_list (Array.map (fun t -> t.Tuple.op) (Block.tuples blk)) in
  check bool_t "reuse op sequence" true
    (ops = [ Op.Const; Op.Store; Op.Load; Op.Mul; Op.Store ])

let test_gen_load_per_use () =
  let blk = Gen.generate ~reuse:false (Parser.parse "x = a + a;") in
  let loads =
    Array.to_list (Block.tuples blk)
    |> List.filter (fun t -> t.Tuple.op = Op.Load)
  in
  check int_t "two loads without reuse" 2 (List.length loads);
  let blk = Gen.generate ~reuse:true (Parser.parse "x = a + a;") in
  let loads =
    Array.to_list (Block.tuples blk)
    |> List.filter (fun t -> t.Tuple.op = Op.Load)
  in
  check int_t "one load with reuse" 1 (List.length loads)

(* ------------------------------------------------------------------ *)
(* Opt: every pass preserves semantics                                 *)

let pass_preserves name pass =
  qtest ~count:500 (name ^ " preserves semantics") program_gen
    Ast.program_to_string
    (fun prog ->
      let blk = Gen.generate ~reuse:false prog in
      let blk' = pass blk in
      Interp.equivalent_on prog blk' ~env:(env_of_seed 3)
        ~vars:(all_vars prog))

let optimize_preserves =
  qtest ~count:500 "full optimize pipeline preserves semantics" program_gen
    Ast.program_to_string
    (fun prog ->
      let blk = Compile.compile_program ~optimize:true prog in
      Interp.equivalent_on prog blk ~env:(env_of_seed 4)
        ~vars:(all_vars prog))

let optimize_shrinks =
  qtest ~count:300 "optimize never grows the block" program_gen
    Ast.program_to_string
    (fun prog ->
      let blk = Gen.generate ~reuse:false prog in
      Block.length (Opt.optimize blk) <= Block.length blk)

let optimize_idempotent =
  qtest ~count:300 "optimize is idempotent" program_gen
    Ast.program_to_string
    (fun prog ->
      let blk = Opt.optimize (Gen.generate prog) in
      Block.equal blk (Opt.optimize blk))

let test_const_fold_example () =
  let blk = Compile.compile "a = 2 + 3 * 4;" in
  (* the whole right-hand side folds to a constant store *)
  check int_t "single store" 1 (Block.length blk);
  let t = Block.tuple_at blk 0 in
  check bool_t "store of 14" true
    (t.Tuple.op = Op.Store && t.Tuple.b = Operand.Imm 14)

let test_cse_example () =
  (* (a*b) computed twice collapses to one Mul. *)
  let blk = Compile.compile "x = (a * b) + (a * b);" in
  let muls =
    Array.to_list (Block.tuples blk)
    |> List.filter (fun t -> t.Tuple.op = Op.Mul)
  in
  check int_t "one multiply" 1 (List.length muls)

let test_cse_load_example () =
  let blk = Compile.compile "x = a + a;" in
  let loads =
    Array.to_list (Block.tuples blk)
    |> List.filter (fun t -> t.Tuple.op = Op.Load)
  in
  check int_t "one load" 1 (List.length loads)

let test_cse_respects_stores () =
  (* A store to 'a' between loads prevents merging them. *)
  let blk =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:2 Op.Store (Operand.Var "a") (Operand.Imm 9);
        Tuple.make ~id:3 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:4 Op.Add (Operand.Ref 1) (Operand.Ref 3);
        Tuple.make ~id:5 Op.Store (Operand.Var "x") (Operand.Ref 4) ]
  in
  let blk' = Opt.cse blk in
  (* load 3 is forwarded from the store (value 9), load 1 must stay *)
  let t4 = Block.find blk' 4 in
  check bool_t "second load forwarded" true (t4.Tuple.b = Operand.Imm 9);
  check bool_t "first load kept" true
    (Array.exists
       (fun t -> t.Tuple.op = Op.Load)
       (Block.tuples blk'))

let test_dead_store_example () =
  let blk = Compile.compile "x = 1; x = 2;" in
  let stores =
    Array.to_list (Block.tuples blk)
    |> List.filter (fun t -> t.Tuple.op = Op.Store)
  in
  check int_t "only the final store" 1 (List.length stores);
  check bool_t "keeps the last value" true
    ((List.hd stores).Tuple.b = Operand.Imm 2)

let test_dead_store_kept_when_read () =
  let blk = Compile.compile ~optimize:false "x = 1; y = x; x = 2;" in
  let blk' = Opt.dead_store blk in
  let stores_x =
    Array.to_list (Block.tuples blk')
    |> List.filter (fun t ->
           t.Tuple.op = Op.Store && Tuple.memory_var t = Some "x")
  in
  check int_t "both stores kept (read intervenes)" 2 (List.length stores_x)

let test_peephole_examples () =
  let check_rhs src pred name =
    let blk = Compile.compile src in
    check bool_t name true (pred blk)
  in
  (* x*0 = 0 folds the multiply away entirely *)
  check_rhs "y = a * 0;"
    (fun blk ->
      not (Array.exists (fun t -> t.Tuple.op = Op.Mul) (Block.tuples blk)))
    "mul by zero erased";
  (* x*8 becomes a shift *)
  check_rhs "y = a * 8;"
    (fun blk ->
      Array.exists (fun t -> t.Tuple.op = Op.Shl) (Block.tuples blk)
      && not (Array.exists (fun t -> t.Tuple.op = Op.Mul) (Block.tuples blk)))
    "strength reduction";
  (* x+0 disappears into a plain store of the load *)
  check_rhs "y = a + 0;"
    (fun blk ->
      not (Array.exists (fun t -> t.Tuple.op = Op.Add) (Block.tuples blk)))
    "add zero erased"

let test_dce_example () =
  (* An unused load disappears; v0 = v0 stays as a load/store pair. *)
  let blk = Gen.generate (Parser.parse "x = a + b; x = 1;") in
  let blk' = Opt.optimize blk in
  check bool_t "loads of a,b eliminated" true
    (not (Array.exists (fun t -> t.Tuple.op = Op.Load) (Block.tuples blk')))

let test_renumber () =
  let blk = Compile.compile "x = a * b + c;" in
  let ids = Array.map (fun t -> t.Tuple.id) (Block.tuples blk) in
  check bool_t "ids are 1..n" true
    (ids = Array.init (Block.length blk) (fun i -> i + 1))

let test_peephole_identities_individually () =
  (* Each algebraic identity, checked in isolation with its semantics. *)
  let cases =
    [ ("y = a - a;", Op.Sub); ("y = a ^ a;", Op.Xor);
      ("y = a / 1;", Op.Div); ("y = a | 0;", Op.Or);
      ("y = a & 0;", Op.And); ("y = a << 0;", Op.Shl);
      ("y = a >> 0;", Op.Shr); ("y = a - 0;", Op.Sub);
      ("y = 0 + a;", Op.Add); ("y = 1 * a;", Op.Mul) ]
  in
  List.iter
    (fun (src, op) ->
      let prog = Parser.parse src in
      let blk = Compile.compile_program prog in
      check bool_t (src ^ " erases the operator") false
        (Array.exists (fun t -> t.Tuple.op = op) (Block.tuples blk));
      check bool_t (src ^ " stays correct") true
        (Interp.equivalent_on prog blk ~env:(env_of_seed 29)
           ~vars:(all_vars prog)))
    cases

let test_compile_reuse_mode () =
  let prog = Parser.parse "x = a + a; y = a * x; z = x + y;" in
  let naive = Compile.compile_program ~optimize:false ~reuse:false prog in
  let reuse = Compile.compile_program ~optimize:false ~reuse:true prog in
  check bool_t "reuse emits fewer tuples" true
    (Block.length reuse < Block.length naive);
  check bool_t "both faithful" true
    (Interp.equivalent_on prog naive ~env:(env_of_seed 30)
       ~vars:(all_vars prog)
     && Interp.equivalent_on prog reuse ~env:(env_of_seed 30)
          ~vars:(all_vars prog));
  (* After optimization the two pipelines converge. *)
  let on = Compile.compile_program ~reuse:false prog in
  let or_ = Compile.compile_program ~reuse:true prog in
  check int_t "optimizer converges both" (Block.length on)
    (Block.length or_)

(* ------------------------------------------------------------------ *)
(* Interp itself                                                       *)

let test_interp_program () =
  let prog = Parser.parse "b = 15; a = b * a;" in
  let env v = if v = "a" then 3 else 0 in
  let result = Interp.run_program prog ~env in
  check bool_t "a = 45" true (List.assoc "a" result = 45);
  check bool_t "b = 15" true (List.assoc "b" result = 15)

let test_interp_block_div_zero () =
  let prog = Parser.parse "q = a / 0; r = a % 0;" in
  let blk = Gen.generate prog in
  let result = Interp.run_block blk ~env:(fun _ -> 7) in
  check bool_t "div by zero is 0" true (List.assoc "q" result = 0);
  check bool_t "mod by zero is 0" true (List.assoc "r" result = 0)

let () =
  Alcotest.run "frontend"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments/whitespace" `Quick
            test_lexer_comments_whitespace;
          Alcotest.test_case "rejects" `Quick test_lexer_rejects;
          Alcotest.test_case "empty" `Quick test_lexer_empty ] );
      ( "parser",
        [ Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "unary/parens" `Quick test_parse_unary_parens;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print roundtrip" `Quick
            test_parse_print_roundtrip ] );
      ( "gen",
        [ gen_preserves_semantics;
          gen_reuse_preserves_semantics;
          Alcotest.test_case "figure 3" `Quick test_gen_fig3;
          Alcotest.test_case "load per use" `Quick test_gen_load_per_use ] );
      ( "opt",
        [ pass_preserves "const_fold" Opt.const_fold;
          pass_preserves "peephole" Opt.peephole;
          pass_preserves "copy_prop" Opt.copy_prop;
          pass_preserves "cse" Opt.cse;
          pass_preserves "dce" Opt.dce;
          pass_preserves "dead_store" Opt.dead_store;
          pass_preserves "renumber" Opt.renumber;
          optimize_preserves;
          optimize_shrinks;
          optimize_idempotent;
          Alcotest.test_case "const fold" `Quick test_const_fold_example;
          Alcotest.test_case "cse exprs" `Quick test_cse_example;
          Alcotest.test_case "cse loads" `Quick test_cse_load_example;
          Alcotest.test_case "cse respects stores" `Quick
            test_cse_respects_stores;
          Alcotest.test_case "dead store" `Quick test_dead_store_example;
          Alcotest.test_case "dead store kept when read" `Quick
            test_dead_store_kept_when_read;
          Alcotest.test_case "peephole" `Quick test_peephole_examples;
          Alcotest.test_case "peephole identities" `Quick
            test_peephole_identities_individually;
          Alcotest.test_case "reuse mode" `Quick test_compile_reuse_mode;
          Alcotest.test_case "dce" `Quick test_dce_example;
          Alcotest.test_case "renumber" `Quick test_renumber ] );
      ( "interp",
        [ Alcotest.test_case "program" `Quick test_interp_program;
          Alcotest.test_case "division by zero" `Quick
            test_interp_block_div_zero ] ) ]
