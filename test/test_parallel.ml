(* Tests for Pipesched_parallel.Pool and the determinism contract of the
   parallel study driver (Study.run is record-for-record identical at any
   job count, modulo wall-clock time). *)

open Pipesched_ir
module Pool = Pipesched_parallel.Pool
module Rng = Pipesched_prelude.Rng
module Study = Pipesched_harness.Study
open Helpers

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)

let test_empty () =
  check bool_t "empty list" true (Pool.parallel_map ~jobs:4 succ [] = [])

let test_singleton () =
  check bool_t "one item" true (Pool.parallel_map ~jobs:4 succ [ 41 ] = [ 42 ])

let test_order_preserved () =
  let xs = List.init 1000 (fun i -> i) in
  List.iter
    (fun jobs ->
      check bool_t
        (Printf.sprintf "order at jobs=%d" jobs)
        true
        (Pool.parallel_map ~jobs ~chunk:7 (fun x -> x * x) xs
         = List.map (fun x -> x * x) xs))
    [ 1; 2; 3; 8 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.parallel_map ~jobs ~chunk:1
          (fun x -> if x = 37 then raise (Boom x) else x)
          (List.init 100 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ())
    [ 1; 4 ]

let test_nested_no_deadlock () =
  (* A worker calling parallel_map again must fall back to the serial
     path rather than spawn (or wait on) further domains. *)
  let inner x = Pool.parallel_map ~jobs:4 succ [ x; x + 1 ] in
  let got = Pool.parallel_map ~jobs:4 inner [ 10; 20; 30 ] in
  check bool_t "nested result" true
    (got = [ [ 11; 12 ]; [ 21; 22 ]; [ 31; 32 ] ])

let test_map_reduce () =
  let xs = List.init 101 (fun i -> i) in
  let sum =
    Pool.map_reduce ~jobs:4 ~map:(fun x -> x) ~reduce:( + ) ~init:0 xs
  in
  check int_t "sum 0..100" 5050 sum

let test_resolve_jobs () =
  check bool_t "explicit wins" true (Pool.resolve_jobs (Some 3) = 3);
  check bool_t "floor of 1" true (Pool.resolve_jobs (Some 0) >= 1);
  check bool_t "default positive" true (Pool.resolve_jobs None >= 1)

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)

module Budget = Pipesched_prelude.Budget

let test_cancel_pre_tripped () =
  (* A token tripped before the map starts: no item is begun, both the
     serial and the pooled path raise. *)
  let tok = Budget.token () in
  Budget.cancel tok;
  List.iter
    (fun jobs ->
      match
        Pool.parallel_map ~jobs ~cancel:tok succ (List.init 100 Fun.id)
      with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Pool.Cancelled -> ())
    [ 1; 4 ]

let test_cancel_mid_map () =
  (* Tripping the token from inside the map: items already mapped
     finish, the first un-started one raises (serial path, so the
     schedule of checks is deterministic). *)
  let tok = Budget.token () in
  let seen = ref 0 in
  match
    Pool.parallel_map ~jobs:1 ~cancel:tok
      (fun x ->
        incr seen;
        if x = 5 then Budget.cancel tok;
        x)
      (List.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Pool.Cancelled -> check int_t "stopped after item 5" 6 !seen

let test_cancel_untripped_token_is_free () =
  let tok = Budget.token () in
  List.iter
    (fun jobs ->
      check bool_t
        (Printf.sprintf "untripped token at jobs=%d" jobs)
        true
        (Pool.parallel_map ~jobs ~cancel:tok succ (List.init 50 Fun.id)
         = List.init 50 succ))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Determinism of the parallel study (the acceptance criterion)        *)

let strip r = { r with Study.time_s = 0.0 }
let stripped results = List.map strip (Study.records results)

let test_study_jobs_1_vs_4 () =
  let a = stripped (Study.run ~jobs:1 ~seed:1990 ~count:40 machine) in
  let b = stripped (Study.run ~jobs:4 ~seed:1990 ~count:40 machine) in
  check int_t "record count" 40 (List.length a);
  check bool_t "jobs=1 equals jobs=4" true (a = b)

let study_jobs_invariance =
  qtest ~count:8 "study records are independent of the job count"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 8))
    (fun (seed, jobs) -> Printf.sprintf "seed=%d jobs=%d" seed jobs)
    (fun (seed, jobs) ->
      let serial = stripped (Study.run ~jobs:1 ~seed ~count:12 machine) in
      let par = stripped (Study.run ~jobs ~seed ~count:12 machine) in
      serial = par)

(* ------------------------------------------------------------------ *)
(* Intra-block parallel branch-and-bound: serial/parallel parity       *)

module Optimal = Pipesched_core.Optimal
module Omega = Pipesched_machine.Omega
module Generator = Pipesched_synth.Generator
module Certify = Pipesched_verify.Certify

(* Ample lambda so tiny blocks complete at every job count;
   [parallel_activation = 0] forces escalation, so every parallel case
   actually exercises the enumerate/team path rather than finishing in
   the serial probe. *)
let par_options ~jobs =
  {
    Optimal.default_options with
    Optimal.lambda = 400_000;
    search_jobs = jobs;
    parallel_activation = 0;
  }

(* A (machine, block, dag) drawn from one seed.  Block sizes stay above
   [parallel_worthwhile]'s floor of 5 so the parallel path is taken. *)
let par_case seed n =
  let rng = Rng.create seed in
  let m = Generator.random_machine rng in
  let blk = random_block rng n in
  (m, blk, Dag.of_block blk)

let par_case_gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 5 9))
let par_case_print (seed, n) = Printf.sprintf "seed=%d n=%d" seed n

(* Byte-identical results at any job count — the DESIGN §9 contract —
   holds for completed searches; a curtailed parallel search may differ,
   so byte-equality is conditioned on completion (with lambda = 400k on
   <= 9-instruction blocks both sides always complete in practice).
   Legality via Certify is unconditional. *)
let parity_schedule =
  qtest ~count:40 "schedule: parallel byte-equals serial (jobs 2, 4)"
    par_case_gen par_case_print (fun (seed, n) ->
      let m, blk, dag = par_case seed n in
      let serial = Optimal.schedule ~options:(par_options ~jobs:1) m dag in
      List.for_all
        (fun jobs ->
          let par = Optimal.schedule ~options:(par_options ~jobs) m dag in
          Certify.check m blk par.Optimal.best = []
          && (not serial.Optimal.stats.Optimal.completed
              || (par.Optimal.stats.Optimal.completed
                  && par.Optimal.best = serial.Optimal.best
                  && par.Optimal.best.Omega.nops
                     = serial.Optimal.best.Omega.nops)))
        [ 2; 4 ])

let parity_multi =
  qtest ~count:30 "schedule_multi: parallel byte-equals serial (jobs 2, 4)"
    par_case_gen par_case_print (fun (seed, n) ->
      let m, blk, dag = par_case seed n in
      let serial, s_choices =
        Optimal.schedule_multi ~options:(par_options ~jobs:1) m dag
      in
      List.for_all
        (fun jobs ->
          let par, p_choices =
            Optimal.schedule_multi ~options:(par_options ~jobs) m dag
          in
          Certify.check m blk par.Optimal.best = []
          && (not serial.Optimal.stats.Optimal.completed
              || (par.Optimal.stats.Optimal.completed
                  && par.Optimal.best = serial.Optimal.best
                  && p_choices = s_choices)))
        [ 2; 4 ])

let parity_bounded =
  qtest ~count:30 "schedule_bounded: parallel agrees with serial (jobs 2, 4)"
    par_case_gen par_case_print (fun (seed, n) ->
      let m, blk, dag = par_case seed n in
      let run jobs =
        Optimal.schedule_bounded ~options:(par_options ~jobs) ~registers:3 m
          dag
      in
      let serial = run 1 in
      List.for_all
        (fun jobs ->
          match (serial, run jobs) with
          | Ok s, Ok p ->
            Certify.check m blk p.Optimal.best = []
            && (not s.Optimal.stats.Optimal.completed
                || (p.Optimal.stats.Optimal.completed
                    && p.Optimal.best = s.Optimal.best))
          | Error (), Error () -> true
          | Error (), Ok p -> Certify.check m blk p.Optimal.best = []
          | Ok s, Error () ->
            (* Losing a feasible schedule is only excusable when the
               serial search was itself curtailed. *)
            not s.Optimal.stats.Optimal.completed)
        [ 2; 4 ])

let test_split_lambda_accounting () =
  (* A shared pool carves one lambda across probe, enumeration and all
     workers: the summed Omega calls can never exceed it, no matter how
     the claims interleave.  Deterministic assertion — every spend
     consumes one granted pool unit and grants sum to at most lambda. *)
  let m, blk, dag = par_case 77 14 in
  let lambda = 300 in
  let options = { (par_options ~jobs:4) with Optimal.lambda } in
  let out = Optimal.schedule ~options m dag in
  check bool_t "summed worker calls within lambda" true
    (out.Optimal.stats.Optimal.omega_calls <= lambda);
  check bool_t "curtailed by lambda" true
    (out.Optimal.stats.Optimal.completed
     || out.Optimal.stats.Optimal.status = Budget.Curtailed_lambda);
  check bool_t "curtailed incumbent still certifies" true
    (Certify.check m blk out.Optimal.best = [])

let test_parallel_stats_status () =
  (* A completed parallel search reports Complete and a certified,
     optimal-for-this-block schedule at every job count. *)
  let m, blk, dag = par_case 4242 7 in
  List.iter
    (fun jobs ->
      let out = Optimal.schedule ~options:(par_options ~jobs) m dag in
      check bool_t
        (Printf.sprintf "completed at jobs=%d" jobs)
        true out.Optimal.stats.Optimal.completed;
      check bool_t
        (Printf.sprintf "status Complete at jobs=%d" jobs)
        true
        (out.Optimal.stats.Optimal.status = Budget.Complete);
      check bool_t
        (Printf.sprintf "certifies at jobs=%d" jobs)
        true
        (Certify.check m blk out.Optimal.best = []))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Flattened adjacency agrees with the list API                        *)

let adjacency_agreement =
  qtest ~count:300 "preds_arr/succs_arr match preds/succs"
    (block_gen ~max_size:16 ())
    block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let n = Dag.length dag in
      let ok = ref true in
      for i = 0 to n - 1 do
        let pa = Array.to_list (Dag.preds_arr dag i) in
        let sa = Array.to_list (Dag.succs_arr dag i) in
        ok :=
          !ok
          && List.sort compare pa = List.sort compare (Dag.preds dag i)
          && List.sort compare sa = List.sort compare (Dag.succs dag i)
          (* arrays are sorted increasing *)
          && pa = List.sort compare pa
          && sa = List.sort compare sa
      done;
      !ok)

(* Progress callbacks: cumulative, reach exactly [n] on both the serial
   and the parallel path, and a raising callback never corrupts the
   map. *)
let test_progress_callback () =
  List.iter
    (fun jobs ->
      let n = 200 in
      let counts = ref [] in
      let mu = Mutex.create () in
      let note c =
        Mutex.lock mu;
        counts := c :: !counts;
        Mutex.unlock mu
      in
      let ys =
        Pool.parallel_map ~jobs ~chunk:7 ~progress:note succ
          (List.init n Fun.id)
      in
      check bool_t
        (Printf.sprintf "map unchanged by progress (jobs %d)" jobs)
        true
        (ys = List.init n (fun i -> i + 1));
      let cs = List.rev !counts in
      check bool_t
        (Printf.sprintf "final cumulative count is n (jobs %d)" jobs)
        true
        (List.fold_left max 0 cs = n);
      check bool_t
        (Printf.sprintf "counts within range (jobs %d)" jobs)
        true
        (List.for_all (fun c -> c > 0 && c <= n) cs);
      (* Serial delivery is strictly increasing (parallel may race). *)
      if jobs = 1 then
        check bool_t "serial counts are 1..n" true
          (cs = List.init n (fun i -> i + 1)))
    [ 1; 4 ];
  (* A raising callback is contained. *)
  let ys =
    Pool.parallel_map ~jobs:4 ~progress:(fun _ -> failwith "boom") succ
      (List.init 50 Fun.id)
  in
  check bool_t "raising progress contained" true
    (ys = List.init 50 (fun i -> i + 1))

let test_progress_result () =
  let hi = ref 0 in
  let mu = Mutex.create () in
  let note c =
    Mutex.lock mu;
    if c > !hi then hi := c;
    Mutex.unlock mu
  in
  let rs =
    Pool.parallel_map_result ~jobs:4 ~progress:note
      (fun i -> if i = 13 then failwith "unlucky" else i)
      (List.init 100 Fun.id)
  in
  check int_t "faulted items still count as completed" 100 !hi;
  check int_t "one contained failure" 1
    (List.length (List.filter Result.is_error rs))

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested no deadlock" `Quick
            test_nested_no_deadlock;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "cancel before start" `Quick
            test_cancel_pre_tripped;
          Alcotest.test_case "cancel mid-map" `Quick test_cancel_mid_map;
          Alcotest.test_case "progress callback" `Quick
            test_progress_callback;
          Alcotest.test_case "progress with contained faults" `Quick
            test_progress_result;
          Alcotest.test_case "untripped token" `Quick
            test_cancel_untripped_token_is_free ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 vs 4" `Quick test_study_jobs_1_vs_4;
          study_jobs_invariance ] );
      ( "search parity",
        [ parity_schedule;
          parity_multi;
          parity_bounded;
          Alcotest.test_case "split-lambda accounting" `Quick
            test_split_lambda_accounting;
          Alcotest.test_case "parallel status/certify" `Quick
            test_parallel_stats_status ] );
      ( "adjacency", [ adjacency_agreement ] ) ]
