(* Tests for Pipesched_parallel.Pool and the determinism contract of the
   parallel study driver (Study.run is record-for-record identical at any
   job count, modulo wall-clock time). *)

open Pipesched_ir
module Pool = Pipesched_parallel.Pool
module Rng = Pipesched_prelude.Rng
module Study = Pipesched_harness.Study
open Helpers

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)

let test_empty () =
  check bool_t "empty list" true (Pool.parallel_map ~jobs:4 succ [] = [])

let test_singleton () =
  check bool_t "one item" true (Pool.parallel_map ~jobs:4 succ [ 41 ] = [ 42 ])

let test_order_preserved () =
  let xs = List.init 1000 (fun i -> i) in
  List.iter
    (fun jobs ->
      check bool_t
        (Printf.sprintf "order at jobs=%d" jobs)
        true
        (Pool.parallel_map ~jobs ~chunk:7 (fun x -> x * x) xs
         = List.map (fun x -> x * x) xs))
    [ 1; 2; 3; 8 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.parallel_map ~jobs ~chunk:1
          (fun x -> if x = 37 then raise (Boom x) else x)
          (List.init 100 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ())
    [ 1; 4 ]

let test_nested_no_deadlock () =
  (* A worker calling parallel_map again must fall back to the serial
     path rather than spawn (or wait on) further domains. *)
  let inner x = Pool.parallel_map ~jobs:4 succ [ x; x + 1 ] in
  let got = Pool.parallel_map ~jobs:4 inner [ 10; 20; 30 ] in
  check bool_t "nested result" true
    (got = [ [ 11; 12 ]; [ 21; 22 ]; [ 31; 32 ] ])

let test_map_reduce () =
  let xs = List.init 101 (fun i -> i) in
  let sum =
    Pool.map_reduce ~jobs:4 ~map:(fun x -> x) ~reduce:( + ) ~init:0 xs
  in
  check int_t "sum 0..100" 5050 sum

let test_resolve_jobs () =
  check bool_t "explicit wins" true (Pool.resolve_jobs (Some 3) = 3);
  check bool_t "floor of 1" true (Pool.resolve_jobs (Some 0) >= 1);
  check bool_t "default positive" true (Pool.resolve_jobs None >= 1)

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)

module Budget = Pipesched_prelude.Budget

let test_cancel_pre_tripped () =
  (* A token tripped before the map starts: no item is begun, both the
     serial and the pooled path raise. *)
  let tok = Budget.token () in
  Budget.cancel tok;
  List.iter
    (fun jobs ->
      match
        Pool.parallel_map ~jobs ~cancel:tok succ (List.init 100 Fun.id)
      with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Pool.Cancelled -> ())
    [ 1; 4 ]

let test_cancel_mid_map () =
  (* Tripping the token from inside the map: items already mapped
     finish, the first un-started one raises (serial path, so the
     schedule of checks is deterministic). *)
  let tok = Budget.token () in
  let seen = ref 0 in
  match
    Pool.parallel_map ~jobs:1 ~cancel:tok
      (fun x ->
        incr seen;
        if x = 5 then Budget.cancel tok;
        x)
      (List.init 100 Fun.id)
  with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Pool.Cancelled -> check int_t "stopped after item 5" 6 !seen

let test_cancel_untripped_token_is_free () =
  let tok = Budget.token () in
  List.iter
    (fun jobs ->
      check bool_t
        (Printf.sprintf "untripped token at jobs=%d" jobs)
        true
        (Pool.parallel_map ~jobs ~cancel:tok succ (List.init 50 Fun.id)
         = List.init 50 succ))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Determinism of the parallel study (the acceptance criterion)        *)

let strip r = { r with Study.time_s = 0.0 }
let stripped results = List.map strip (Study.records results)

let test_study_jobs_1_vs_4 () =
  let a = stripped (Study.run ~jobs:1 ~seed:1990 ~count:40 machine) in
  let b = stripped (Study.run ~jobs:4 ~seed:1990 ~count:40 machine) in
  check int_t "record count" 40 (List.length a);
  check bool_t "jobs=1 equals jobs=4" true (a = b)

let study_jobs_invariance =
  qtest ~count:8 "study records are independent of the job count"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 8))
    (fun (seed, jobs) -> Printf.sprintf "seed=%d jobs=%d" seed jobs)
    (fun (seed, jobs) ->
      let serial = stripped (Study.run ~jobs:1 ~seed ~count:12 machine) in
      let par = stripped (Study.run ~jobs ~seed ~count:12 machine) in
      serial = par)

(* ------------------------------------------------------------------ *)
(* Flattened adjacency agrees with the list API                        *)

let adjacency_agreement =
  qtest ~count:300 "preds_arr/succs_arr match preds/succs"
    (block_gen ~max_size:16 ())
    block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let n = Dag.length dag in
      let ok = ref true in
      for i = 0 to n - 1 do
        let pa = Array.to_list (Dag.preds_arr dag i) in
        let sa = Array.to_list (Dag.succs_arr dag i) in
        ok :=
          !ok
          && List.sort compare pa = List.sort compare (Dag.preds dag i)
          && List.sort compare sa = List.sort compare (Dag.succs dag i)
          (* arrays are sorted increasing *)
          && pa = List.sort compare pa
          && sa = List.sort compare sa
      done;
      !ok)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested no deadlock" `Quick
            test_nested_no_deadlock;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "cancel before start" `Quick
            test_cancel_pre_tripped;
          Alcotest.test_case "cancel mid-map" `Quick test_cancel_mid_map;
          Alcotest.test_case "untripped token" `Quick
            test_cancel_untripped_token_is_free ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 vs 4" `Quick test_study_jobs_1_vs_4;
          study_jobs_invariance ] );
      ( "adjacency", [ adjacency_agreement ] ) ]
