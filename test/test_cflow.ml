(* Tests for Pipesched_cflow: lowering, CFG execution, chain merging,
   whole-CFG scheduling, emission and machine-level execution — plus the
   control-flow additions to the front end (lexer/parser/interp). *)

open Pipesched_ir
open Pipesched_frontend
open Pipesched_cflow
open Pipesched_machine
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Front-end control-flow additions                                    *)

let test_parse_if_while () =
  let prog =
    Parser.parse
      "i = 0; while (i < 10) { if (i % 2 == 0) { s = s + i; } else { s = \
       s - 1; } i = i + 1; }"
  in
  (match prog with
   | [ Ast.Assign _; Ast.While ((Ast.Rlt, _, _), body) ] ->
     (match body with
      | [ Ast.If ((Ast.Req, _, _), [ _ ], [ _ ]); Ast.Assign _ ] -> ()
      | _ -> Alcotest.fail "unexpected while body")
   | _ -> Alcotest.fail "unexpected program shape");
  check bool_t "not straight-line" false (Ast.straight_line prog);
  check bool_t "straight-line" true
    (Ast.straight_line (Parser.parse "a = 1; b = a;"))

let test_parse_relops () =
  List.iter
    (fun (src, expected) ->
      match Parser.parse (Printf.sprintf "if (a %s b) { x = 1; }" src) with
      | [ Ast.If ((r, _, _), _, []) ] ->
        check bool_t src true (r = expected)
      | _ -> Alcotest.fail src)
    [ ("==", Ast.Req); ("!=", Ast.Rne); ("<", Ast.Rlt); ("<=", Ast.Rle);
      (">", Ast.Rgt); (">=", Ast.Rge) ]

let test_parse_cflow_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "accepted %S" src)
    [ "if (a) { x = 1; }"; "if (a < b) x = 1;"; "while (a < b) { x = 1;";
      "if (a < b) { } else"; "else { x = 1; }" ]

let test_interp_if_while () =
  let env _ = 0 in
  let run src = Interp.run_program (Parser.parse src) ~env in
  check bool_t "if true branch" true
    (List.assoc "x" (run "if (1 < 2) { x = 10; } else { x = 20; }") = 10);
  check bool_t "if false branch" true
    (List.assoc "x" (run "if (2 < 1) { x = 10; } else { x = 20; }") = 20);
  let r = run "s = 0; i = 0; while (i < 5) { s = s + i; i = i + 1; }" in
  check bool_t "loop sum" true (List.assoc "s" r = 10);
  check bool_t "loop counter" true (List.assoc "i" r = 5)

let test_interp_fuel () =
  let prog = Parser.parse "x = 0; while (0 < 1) { x = x + 1; }" in
  match Interp.run_program ~fuel:1000 prog ~env:(fun _ -> 0) with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "diverging loop terminated"

let test_gen_rejects_control_flow () =
  match Gen.generate (Parser.parse "if (a < b) { x = 1; }") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Gen accepted control flow"

(* ------------------------------------------------------------------ *)
(* Random structured programs that always terminate: while loops use a
   dedicated counter with a fixed bound. *)

let random_structured rng =
  let fresh = ref 0 in
  let var () = Printf.sprintf "v%d" (Rng.int rng 4) in
  let simple_expr () =
    if Rng.bool rng then Ast.Var (var ()) else Ast.Int (Rng.int_in rng 0 20)
  in
  let expr () =
    if Rng.int rng 3 = 0 then simple_expr ()
    else
      Ast.Binop
        ( Rng.choose rng [| Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Xor |],
          simple_expr (), simple_expr () )
  in
  let relop () =
    Rng.choose rng [| Ast.Req; Ast.Rne; Ast.Rlt; Ast.Rle; Ast.Rgt; Ast.Rge |]
  in
  let rec stmts depth budget =
    if budget <= 0 then []
    else
      let s, cost =
        match (depth > 0, Rng.int rng 6) with
        | true, 0 ->
          ( Ast.If
              ( (relop (), simple_expr (), simple_expr ()),
                stmts (depth - 1) 2,
                if Rng.bool rng then stmts (depth - 1) 2 else [] ),
            3 )
        | true, 1 ->
          let k = Printf.sprintf "k%d" !fresh in
          incr fresh;
          ( Ast.While
              ( (Ast.Rlt, Ast.Var k, Ast.Int (1 + Rng.int rng 4)),
                stmts (depth - 1) 2
                @ [ Ast.Assign (k, Ast.Binop (Op.Add, Ast.Var k, Ast.Int 1)) ]
              ),
            4 )
        | _ -> (Ast.Assign (var (), expr ()), 1)
      in
      s :: stmts depth (budget - cost)
  in
  (* Zero the loop counters up front so every while terminates. *)
  let body = stmts 2 (3 + Rng.int rng 8) in
  let counters = List.init !fresh (fun i ->
      Ast.Assign (Printf.sprintf "k%d" i, Ast.Int 0)) in
  counters @ body

let structured_gen =
  QCheck2.Gen.(
    map (fun seed -> random_structured (Rng.create seed))
    (int_bound 10_000_000))

let visible_vars prog =
  List.filter
    (fun v -> v.[0] <> '$')
    (List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog))

let agree_on prog result env =
  let reference = Interp.run_program ~fuel:100_000 prog ~env in
  List.for_all
    (fun v ->
      let expect =
        match List.assoc_opt v reference with Some x -> x | None -> env v
      in
      let got =
        match List.assoc_opt v result with Some x -> x | None -> env v
      in
      expect = got)
    (visible_vars prog)

let structured_print_roundtrip =
  qtest ~count:200 "structured pretty-print reparses to the same AST"
    structured_gen Ast.program_to_string
    (fun prog ->
      Parser.parse (Ast.program_to_string prog) = prog)

let structured_generator_runs =
  qtest ~count:200 "synth structured programs terminate and lower"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let prog =
        Pipesched_synth.Generator.structured_program rng
          { Pipesched_synth.Generator.statements = 6; variables = 4;
            constants = 3 }
          ~depth:2
      in
      let env = env_of_seed 25 in
      let cfg = Lower.lower prog in
      agree_on prog (Cfg.run cfg ~env) env)

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

let lowering_preserves_semantics =
  qtest ~count:300 "lowered CFG computes what the program computes"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Lower.lower prog in
      let env = env_of_seed 21 in
      agree_on prog (Cfg.run cfg ~env) env)

let lowering_unoptimized_too =
  qtest ~count:200 "lowering without the optimizer is also faithful"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Lower.lower ~optimize:false prog in
      let env = env_of_seed 22 in
      agree_on prog (Cfg.run cfg ~env) env)

let test_lower_structure () =
  let cfg = Lower.compile "a = 1;" in
  check int_t "straight line is one node" 1 (Cfg.length cfg);
  (match (Cfg.node cfg (cfg.Cfg.entry)).Cfg.term with
   | Cfg.Exit -> ()
   | _ -> Alcotest.fail "expected Exit");
  let cfg = Lower.compile "if (a < b) { x = 1; } else { x = 2; } y = x;" in
  (* entry, then, else, join *)
  check int_t "diamond" 4 (Cfg.length cfg);
  let cfg = Lower.compile "while (i < 3) { i = i + 1; }" in
  (* entry, head, body, exit *)
  check int_t "loop" 4 (Cfg.length cfg)

let test_lower_normalizes_conditions () =
  let cfg = Lower.compile "if (a + 1 < b * 2) { x = 1; }" in
  let entry = Cfg.node cfg cfg.Cfg.entry in
  (match entry.Cfg.term with
   | Cfg.Branch ((Ast.Rlt, Cfg.Svar t1, Cfg.Svar t2), _, _) ->
     check bool_t "temp names" true (t1.[0] = '$' && t2.[0] = '$')
   | _ -> Alcotest.fail "expected normalized branch");
  (* simple operands stay as they are *)
  let cfg = Lower.compile "if (a < 5) { x = 1; }" in
  match (Cfg.node cfg cfg.Cfg.entry).Cfg.term with
  | Cfg.Branch ((Ast.Rlt, Cfg.Svar "a", Cfg.Simm 5), _, _) -> ()
  | _ -> Alcotest.fail "expected unnormalized simple condition"

let test_cfg_validation () =
  let node = { Cfg.block = Block.of_tuples_exn []; term = Cfg.Jump 5 } in
  (match Cfg.make [ node ] ~entry:0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "accepted out-of-range target");
  match Cfg.make [] ~entry:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted empty cfg with entry"

let test_cfg_run_fuel () =
  let loop =
    Cfg.make
      [ { Cfg.block = Block.of_tuples_exn []; term = Cfg.Jump 0 } ]
      ~entry:0
  in
  match Cfg.run ~fuel:100 loop ~env:(fun _ -> 0) with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "infinite CFG terminated"

(* ------------------------------------------------------------------ *)
(* Chain merging                                                       *)

let merge_preserves_semantics =
  qtest ~count:300 "merge_chains preserves semantics"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Cfg.merge_chains (Lower.lower prog) in
      let env = env_of_seed 23 in
      agree_on prog (Cfg.run cfg ~env) env)

let merge_leaves_no_trivial_chains =
  qtest ~count:200 "after merging, no jump target has a single predecessor"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Cfg.merge_chains (Lower.lower prog) in
      let ok = ref true in
      for i = 0 to Cfg.length cfg - 1 do
        match (Cfg.node cfg i).Cfg.term with
        | Cfg.Jump j ->
          if
            j <> cfg.Cfg.entry && j <> i
            && List.length (Cfg.predecessors cfg j) = 1
          then ok := false
        | _ -> ()
      done;
      !ok)

let optimize_blocks_preserves_semantics =
  qtest ~count:200 "optimize_blocks preserves semantics (also post-merge)"
    structured_gen Ast.program_to_string
    (fun prog ->
      let env = env_of_seed 28 in
      let unopt = Cfg.optimize_blocks (Lower.lower ~optimize:false prog) in
      let merged =
        Cfg.optimize_blocks (Cfg.merge_chains (Lower.lower prog))
      in
      agree_on prog (Cfg.run unopt ~env) env
      && agree_on prog (Cfg.run merged ~env) env)

let merge_then_optimize_promotes =
  qtest ~count:100 "re-optimizing merged chains never adds instructions"
    structured_gen Ast.program_to_string
    (fun prog ->
      let merged = Cfg.merge_chains (Lower.lower prog) in
      Cfg.instruction_count (Cfg.optimize_blocks merged)
      <= Cfg.instruction_count merged)

let merge_never_grows =
  qtest ~count:200 "merging never increases nodes or instructions"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Lower.lower prog in
      let merged = Cfg.merge_chains cfg in
      Cfg.length merged <= Cfg.length cfg
      && Cfg.instruction_count merged <= Cfg.instruction_count cfg)

let test_merge_concrete () =
  (* if/else diamond: then and else blocks jump to the join, which has two
     predecessors (not mergeable); but the join continues into the final
     assignment (already one block).  A nested sequence produces a chain. *)
  let cfg =
    Lower.compile "a = 1; if (a < 2) { b = 1; } else { b = 2; } c = b;"
  in
  let merged = Cfg.merge_chains cfg in
  check bool_t "still correct" true
    (List.assoc "c" (Cfg.run merged ~env:(fun _ -> 0)) = 1);
  check bool_t "not larger" true (Cfg.length merged <= Cfg.length cfg)

(* ------------------------------------------------------------------ *)
(* Whole-CFG scheduling                                                *)

let schedule_results_legal =
  qtest ~count:150 "every node's schedule is a legal order of its block"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Lower.lower prog in
      let s = Schedule.schedule machine cfg in
      Array.for_all
        (fun (i, ns) ->
          let dag = Dag.of_block (Cfg.node cfg i).Cfg.block in
          Dag.is_legal_order dag
            ns.Schedule.result.Omega.order)
        (Array.mapi (fun i ns -> (i, ns)) s.Schedule.nodes))

let schedule_loop_headers_detected =
  qtest ~count:100 "programs with while loops have loop headers"
    QCheck2.Gen.(int_bound 10_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      ignore (Rng.bits rng);
      let cfg =
        Lower.compile "k = 0; while (k < 3) { x = x + k; k = k + 1; }"
      in
      let s = Schedule.schedule machine cfg in
      s.Schedule.loop_headers <> [])

let test_schedule_straight_line_has_no_headers () =
  let cfg = Lower.compile "a = 1; b = a * 2;" in
  let s = Schedule.schedule machine cfg in
  check bool_t "no loop headers" true (s.Schedule.loop_headers = []);
  check bool_t "nonneg nops" true (s.Schedule.total_nops >= 0)

let test_schedule_conservative_loop_entry () =
  (* Loop-header entries claim every pipe was just used. *)
  let cfg = Lower.compile "k = 0; while (k < 2) { k = k + 1; }" in
  let s = Schedule.schedule machine cfg in
  List.iter
    (fun h ->
      Array.iter
        (fun t -> check int_t "worst-case entry" (-1) t)
        s.Schedule.nodes.(h).Schedule.entry.Omega.pipe_last_use)
    s.Schedule.loop_headers

(* ------------------------------------------------------------------ *)
(* Emission and machine-level execution                                *)

let emitted_programs_execute_correctly =
  qtest ~count:250 "emitted assembly executes to the source semantics"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Cfg.merge_chains (Lower.lower prog) in
      let s = Schedule.schedule machine cfg in
      match Emit.emit ~registers:64 s with
      | Error _ -> false
      | Ok text ->
        let env = env_of_seed 24 in
        let mem, ticks = Emit.execute text ~env in
        ticks > 0 && agree_on prog mem env)

let test_emit_loop_program () =
  let cfg =
    Lower.compile "s = 0; i = 0; while (i < n) { s = s + i * i; i = i + 1; }"
  in
  let s = Schedule.schedule machine cfg in
  match Emit.emit s with
  | Error _ -> Alcotest.fail "emit failed"
  | Ok text ->
    let env v = if v = "n" then 5 else 0 in
    let mem, _ = Emit.execute text ~env in
    check bool_t "sum of squares" true (List.assoc "s" mem = 30)

(* Branch delay slots: semantics preserved and filled slots beat padded
   ones on loopy programs. *)
let delay_slots_preserve_semantics =
  qtest ~count:200 "delay-slot emission preserves semantics (d = 1, 2)"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Cfg.merge_chains (Lower.lower prog) in
      let s = Schedule.schedule machine cfg in
      List.for_all
        (fun delay_slots ->
          match Emit.emit ~registers:64 ~delay_slots s with
          | Error _ -> false
          | Ok text ->
            let env = env_of_seed 26 in
            let mem, _ = Emit.execute ~delay_slots text ~env in
            agree_on prog mem env)
        [ 1; 2 ])

(* Filling is purely a latency optimization: across random structured
   programs the filled and Nop-padded emissions execute to identical
   final memory, and filling never costs dynamic cycles. *)
let delay_slot_filling_is_semantics_neutral =
  qtest ~count:200 "filled vs padded delay slots reach identical memory"
    structured_gen Ast.program_to_string
    (fun prog ->
      let cfg = Cfg.merge_chains (Lower.lower prog) in
      let s = Schedule.schedule machine cfg in
      List.for_all
        (fun delay_slots ->
          match
            ( Emit.emit ~registers:64 ~delay_slots ~fill:true s,
              Emit.emit ~registers:64 ~delay_slots ~fill:false s )
          with
          | Ok filled, Ok padded ->
            let env = env_of_seed 29 in
            let mem_f, ticks_f = Emit.execute ~delay_slots filled ~env in
            let mem_p, ticks_p = Emit.execute ~delay_slots padded ~env in
            List.sort compare mem_f = List.sort compare mem_p
            && ticks_f <= ticks_p
          | _ -> false)
        [ 1; 2 ])

let test_delay_slot_filling_saves_cycles () =
  let cfg =
    Cfg.merge_chains
      (Lower.compile
         "s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } out = s;")
  in
  let s = Schedule.schedule machine cfg in
  let env v = if v = "n" then 20 else 0 in
  let ticks ~fill =
    match Emit.emit ~delay_slots:1 ~fill s with
    | Ok text -> snd (Emit.execute ~delay_slots:1 text ~env)
    | Error _ -> Alcotest.fail "emit failed"
  in
  let filled = ticks ~fill:true in
  let padded = ticks ~fill:false in
  check bool_t "filling saves dynamic cycles" true (filled < padded);
  (* Both agree on the answer. *)
  let out ~fill =
    match Emit.emit ~delay_slots:1 ~fill s with
    | Ok text ->
      List.assoc "out" (fst (Emit.execute ~delay_slots:1 text ~env))
    | Error _ -> Alcotest.fail "emit failed"
  in
  check int_t "same result" (out ~fill:true) (out ~fill:false)

let test_delay_slot_condition_safety () =
  (* The block's last instruction stores the condition variable: it must
     not move into the branch's slot (the branch reads it first). *)
  let cfg =
    Cfg.merge_chains
      (Lower.compile "i = 0; while (i < 3) { i = i + 1; } out = i;")
  in
  let s = Schedule.schedule machine cfg in
  match Emit.emit ~delay_slots:1 s with
  | Error _ -> Alcotest.fail "emit failed"
  | Ok text ->
    let mem, _ = Emit.execute ~delay_slots:1 text ~env:(fun _ -> 0) in
    check bool_t "loop still terminates correctly" true
      (List.assoc "out" mem = 3)

let test_execute_fuel () =
  let text = "L0:\nJmp   L0\n" in
  match Emit.execute ~fuel:100 text ~env:(fun _ -> 0) with
  | exception Emit.Out_of_fuel -> ()
  | _ -> Alcotest.fail "diverging program terminated"

let test_execute_unknown_label () =
  match Emit.execute "Jmp   Lmissing\n" ~env:(fun _ -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jumped to a missing label"

let () =
  Alcotest.run "cflow"
    [ ( "frontend",
        [ Alcotest.test_case "parse if/while" `Quick test_parse_if_while;
          Alcotest.test_case "relops" `Quick test_parse_relops;
          Alcotest.test_case "parse errors" `Quick test_parse_cflow_errors;
          Alcotest.test_case "interp if/while" `Quick test_interp_if_while;
          Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
          Alcotest.test_case "gen rejects control flow" `Quick
            test_gen_rejects_control_flow ] );
      ( "lowering",
        [ structured_print_roundtrip;
          structured_generator_runs;
          lowering_preserves_semantics;
          lowering_unoptimized_too;
          Alcotest.test_case "structure" `Quick test_lower_structure;
          Alcotest.test_case "condition normalization" `Quick
            test_lower_normalizes_conditions;
          Alcotest.test_case "cfg validation" `Quick test_cfg_validation;
          Alcotest.test_case "run fuel" `Quick test_cfg_run_fuel ] );
      ( "merging",
        [ merge_preserves_semantics;
          merge_leaves_no_trivial_chains;
          merge_never_grows;
          optimize_blocks_preserves_semantics;
          merge_then_optimize_promotes;
          Alcotest.test_case "concrete" `Quick test_merge_concrete ] );
      ( "scheduling",
        [ schedule_results_legal;
          schedule_loop_headers_detected;
          Alcotest.test_case "straight line" `Quick
            test_schedule_straight_line_has_no_headers;
          Alcotest.test_case "conservative loop entries" `Quick
            test_schedule_conservative_loop_entry ] );
      ( "emission",
        [ emitted_programs_execute_correctly;
          Alcotest.test_case "loop program" `Quick test_emit_loop_program;
          delay_slots_preserve_semantics;
          delay_slot_filling_is_semantics_neutral;
          Alcotest.test_case "delay-slot filling saves cycles" `Quick
            test_delay_slot_filling_saves_cycles;
          Alcotest.test_case "delay-slot condition safety" `Quick
            test_delay_slot_condition_safety;
          Alcotest.test_case "execution fuel" `Quick test_execute_fuel;
          Alcotest.test_case "unknown label" `Quick
            test_execute_unknown_label ] ) ]
