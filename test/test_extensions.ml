(* Tests for the extension modules: Omega entry/exit state, windowed
   scheduling of large blocks (§5.3), region scheduling across block
   boundaries (footnote 1), the timeline renderer and DOT export. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core
module Rng = Pipesched_prelude.Rng
open Helpers

let tu ~id op a b = Tuple.make ~id op a b

(* ------------------------------------------------------------------ *)
(* Entry / exit state                                                  *)

let test_cold_entry () =
  let e = Omega.cold_entry machine in
  check int_t "one slot per pipe" (Machine.pipe_count machine)
    (Array.length e.Omega.pipe_last_use);
  Array.iter
    (fun t -> check bool_t "quiescent" true (t < -1_000_000))
    e.Omega.pipe_last_use

let test_entry_forces_stall () =
  (* The multiplier was used on the previous block's last tick (-1) with
     enqueue 2: an immediate Mul must wait one tick. *)
  let blk =
    Block.of_tuples_exn [ tu ~id:1 Op.Mul (Operand.Imm 2) (Operand.Imm 3) ]
  in
  let dag = Dag.of_block blk in
  let entry = { Omega.pipe_last_use = [| -10; -1 |] } in
  let r = Omega.evaluate ~entry machine dag ~order:[| 0 |] in
  check int_t "one stall" 1 r.Omega.nops;
  check int_t "issues at tick 1" 1 r.Omega.issue.(0);
  (* A cold start issues immediately. *)
  let r0 = Omega.evaluate machine dag ~order:[| 0 |] in
  check int_t "cold start" 0 r0.Omega.nops

let test_entry_no_effect_on_free_ops () =
  let blk =
    Block.of_tuples_exn [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let entry = { Omega.pipe_last_use = [| -1; -1 |] } in
  let r = Omega.evaluate ~entry machine dag ~order:[| 0 |] in
  check int_t "no stall for resource-free op" 0 r.Omega.nops

let test_exit_state () =
  (* Load at tick 0, Mul at tick 1: exits relative to tick 2 are -2, -1. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Mul (Operand.Imm 2) (Operand.Imm 3) ]
  in
  let dag = Dag.of_block blk in
  let st = Omega.State.create machine dag in
  Omega.State.push st 0;
  Omega.State.push st 1;
  let e = Omega.State.exit_state st in
  check int_t "loader exit" (-2) e.Omega.pipe_last_use.(0);
  check int_t "multiplier exit" (-1) e.Omega.pipe_last_use.(1)

let test_exit_state_requires_complete () =
  let blk =
    Block.of_tuples_exn [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null ]
  in
  let st = Omega.State.create machine (Dag.of_block blk) in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Omega.State.exit_state: schedule incomplete")
    (fun () -> ignore (Omega.State.exit_state st))

(* Threading exit state into the next block reproduces scheduling the
   concatenation: for blocks over disjoint variables, evaluating block A
   then block B with A's exit state must equal the tail of evaluating the
   concatenated tuple sequence. *)
let entry_threading_matches_concatenation =
  qtest ~count:150 "exit->entry threading equals concatenated evaluation"
    QCheck2.Gen.(pair (int_bound 1_000_000) (pair (int_range 1 8) (int_range 1 8)))
    (fun (seed, (n1, n2)) -> Printf.sprintf "seed=%d n1=%d n2=%d" seed n1 n2)
    (fun (seed, (n1, n2)) ->
      let rng = Rng.create seed in
      let b1 = random_block rng n1 in
      (* Rename block 2's ids and variables so the concatenation is a
         valid block with no cross-block dependences. *)
      let b2 = random_block rng n2 in
      let shift = 1000 in
      let rename_var v = "q" ^ v in
      let fix_op = function
        | Operand.Ref i -> Operand.Ref (i + shift)
        | Operand.Var v -> Operand.Var (rename_var v)
        | (Operand.Imm _ | Operand.Null) as o -> o
      in
      let b2' =
        Array.to_list (Block.tuples b2)
        |> List.map (fun (t : Tuple.t) ->
               Tuple.make ~id:(t.Tuple.id + shift) t.Tuple.op (fix_op t.a)
                 (fix_op t.b))
      in
      let concat =
        Block.of_tuples_exn (Array.to_list (Block.tuples b1) @ b2')
      in
      let dag1 = Dag.of_block b1 in
      let dag2 = Dag.of_block (Block.of_tuples_exn b2') in
      let dagc = Dag.of_block concat in
      (* Evaluate everything in source order. *)
      let st1 = Omega.State.create machine dag1 in
      for i = 0 to n1 - 1 do
        Omega.State.push st1 i
      done;
      let exit1 = Omega.State.exit_state st1 in
      let r2 =
        Omega.evaluate ~entry:exit1 machine dag2
          ~order:(Omega.identity_order n2)
      in
      let rc =
        Omega.evaluate machine dagc ~order:(Omega.identity_order (n1 + n2))
      in
      (* NOPs in the concatenation's tail equal block 2's warm NOPs. *)
      let tail_nops = ref 0 in
      for k = n1 to n1 + n2 - 1 do
        tail_nops := !tail_nops + rc.Omega.eta.(k)
      done;
      r2.Omega.nops = !tail_nops)

(* ------------------------------------------------------------------ *)
(* Windowed scheduling                                                 *)

let windowed_full_window_is_optimal =
  qtest ~count:100 "window >= n reproduces the exact optimum"
    (block_gen ~min_size:1 ~max_size:8 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let exact = Optimal.schedule machine dag in
      let windowed =
        Windowed.schedule ~window:(Block.length blk + 1) machine dag
      in
      windowed.Windowed.best.Omega.nops = exact.Optimal.best.Omega.nops)

let windowed_one_is_list_schedule =
  qtest ~count:100 "window = 1 reproduces the list schedule"
    (block_gen ~min_size:1 ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let windowed = Windowed.schedule ~window:1 machine dag in
      windowed.Windowed.best.Omega.nops
      = windowed.Windowed.initial.Omega.nops)

let windowed_legal_and_bounded =
  qtest ~count:150 "windowed schedules are legal, between optimal and seed"
    (block_gen ~min_size:2 ~max_size:10 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let exact = Optimal.schedule machine dag in
      List.for_all
        (fun window ->
          let w = Windowed.schedule ~window machine dag in
          Dag.is_legal_order dag w.Windowed.best.Omega.order
          && w.Windowed.best.Omega.nops >= exact.Optimal.best.Omega.nops
          && w.Windowed.best.Omega.nops <= w.Windowed.initial.Omega.nops)
        [ 2; 3; 5 ])

let test_windowed_window_count () =
  let rng = Rng.create 31 in
  let blk = random_block rng 13 in
  let dag = Dag.of_block blk in
  let w = Windowed.schedule ~window:5 machine dag in
  check int_t "windows" 3 w.Windowed.window_count;
  check bool_t "completed" true w.Windowed.all_windows_completed;
  Alcotest.check_raises "window 0"
    (Invalid_argument "Windowed.schedule: window must be >= 1") (fun () ->
      ignore (Windowed.schedule ~window:0 machine dag))

(* Accounting parity: [omega_calls] counts every push — each window's
   incumbent evaluation, its DFS, and the commit of its best order.
   With [window = 1] each of the n windows evaluates its single
   instruction once, searches it once and commits it once: exactly 3n. *)
let windowed_counts_all_pushes =
  qtest ~count:100 "window = 1 spends exactly 3n omega pushes"
    (block_gen ~min_size:1 ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let w = Windowed.schedule ~window:1 machine dag in
      w.Windowed.omega_calls = 3 * Block.length blk
      && w.Windowed.status = Pipesched_prelude.Budget.Complete)

let test_windowed_budget_exhaustion () =
  let rng = Rng.create 32 in
  let blk = random_block rng 20 in
  let dag = Dag.of_block blk in
  let options = { Optimal.default_options with Optimal.lambda = 4 } in
  let w = Windowed.schedule ~options ~window:6 machine dag in
  check bool_t "flagged incomplete" false w.Windowed.all_windows_completed;
  check bool_t "still legal" true
    (Dag.is_legal_order dag w.Windowed.best.Omega.order);
  check bool_t "no worse than seed" true
    (w.Windowed.best.Omega.nops <= w.Windowed.initial.Omega.nops)

let windowed_cheaper_than_full =
  qtest ~count:50 "windowed search uses fewer omega calls on big blocks"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let blk = random_block_with rng 24 6 in
      let dag = Dag.of_block blk in
      let full =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.lambda = 20_000 }
          machine dag
      in
      let w =
        Windowed.schedule
          ~options:{ Optimal.default_options with Optimal.lambda = 20_000 }
          ~window:6 machine dag
      in
      (* When the full search runs to its budget, the windowed one should
         stay well under it. *)
      w.Windowed.omega_calls <= full.Optimal.stats.Optimal.omega_calls
      || full.Optimal.stats.Optimal.completed)

let test_windowed_with_entry () =
  (* A hot multiplier entry must surface in the windowed schedule too. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Mul (Operand.Imm 2) (Operand.Imm 3);
        tu ~id:2 Op.Store (Operand.Var "x") (Operand.Ref 1) ]
  in
  let dag = Dag.of_block blk in
  let entry = { Omega.pipe_last_use = [| -10; -1 |] } in
  let cold = Windowed.schedule ~window:1 machine dag in
  let warm = Windowed.schedule ~entry ~window:1 machine dag in
  check bool_t "entry costs a stall" true
    (warm.Windowed.best.Omega.nops > cold.Windowed.best.Omega.nops)

(* ------------------------------------------------------------------ *)
(* Region scheduling                                                   *)

let region_blocks rng count =
  List.init count (fun _ -> Dag.of_block (random_block rng 6))

let test_region_basic () =
  let rng = Rng.create 41 in
  let dags = region_blocks rng 4 in
  let r = Region.schedule machine dags in
  check int_t "four blocks" 4 (List.length r.Region.blocks);
  check bool_t "totals consistent" true
    (r.Region.total_nops
     = List.fold_left
         (fun acc b -> acc + b.Region.outcome.Optimal.best.Omega.nops)
         0 r.Region.blocks);
  (* First block starts cold. *)
  (match r.Region.blocks with
   | b :: _ ->
     check bool_t "first entry cold" true
       (Array.for_all (fun t -> t < -1_000_000) b.Region.entry.Omega.pipe_last_use)
   | [] -> Alcotest.fail "no blocks")

(* For one or two blocks this is a theorem: the first block sees the same
   (cold) entry in both passes, so its schedule and exit agree, and the
   warm second block is the optimum over all legal orders for that entry
   while the cold pass replays some legal order against it.  For longer
   regions the passes' entry states diverge and greedy-per-block is not
   globally dominant, so the property is only asserted for k <= 2. *)
let region_never_worse_than_cold =
  qtest ~count:80 "threaded scheduling never loses to cold scheduling"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 2))
    (fun (seed, k) -> Printf.sprintf "seed=%d blocks=%d" seed k)
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let dags = region_blocks rng k in
      let r = Region.schedule machine dags in
      r.Region.total_nops <= r.Region.cold_total_nops)

let test_region_stall_example () =
  (* Block 1 ends with multiplier work; block 2 starts with a Mul.  The
     cold schedule of block 2 puts its Mul first and eats a boundary
     stall; the threaded schedule knows better. *)
  let b1 =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Mul (Operand.Ref 1) (Operand.Imm 3);
        tu ~id:3 Op.Store (Operand.Var "a") (Operand.Ref 2) ]
  in
  let b2 =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Mul (Operand.Imm 5) (Operand.Imm 7);
        tu ~id:2 Op.Const (Operand.Imm 9) Operand.Null;
        tu ~id:3 Op.Store (Operand.Var "b") (Operand.Ref 1);
        tu ~id:4 Op.Store (Operand.Var "c") (Operand.Ref 2) ]
  in
  let r = Region.schedule machine [ Dag.of_block b1; Dag.of_block b2 ] in
  check bool_t "threading helps or ties" true
    (r.Region.total_nops <= r.Region.cold_total_nops)

(* On the simulation machine boundary hazards are structurally impossible
   for dead-code-free blocks: every pipeline op has an in-block consumer,
   which issues at least [latency >= enqueue] ticks after it, so the unit
   has always recovered by the time the block can end.  (Raw IR blocks
   with dead pipe values can violate this — an unused Mul issued on the
   last tick leaves the multiplier hot — hence the compiled-block
   generator here.)  On the throttled machine (recovery > latency) hazards
   occur and threading covers them. *)
let region_no_hazard_on_simulation =
  qtest ~count:60 "no boundary hazards when enqueue <= latency (live code)"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) -> Printf.sprintf "seed=%d blocks=%d" seed k)
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let dags =
        List.init k (fun _ ->
            Dag.of_block
              (Pipesched_synth.Generator.block rng
                 { Pipesched_synth.Generator.statements = 3;
                   variables = 3;
                   constants = 2 }))
      in
      let r = Region.schedule machine dags in
      r.Region.cold_hazards = 0
      && r.Region.cold_total_nops = r.Region.cold_claimed_nops)

let test_region_hazard_on_throttled () =
  (* Two back-to-back divisions: the second block's Div hits the
     divider's 14-tick recovery window. *)
  let block src = Dag.of_block (Pipesched_frontend.Compile.compile src) in
  let b1 = block "d = x / y; e = x + y;" in
  let b2 = block "q = u / v;" in
  let m = Machine.Presets.throttled in
  let r = Region.schedule m [ b1; b2 ] in
  check bool_t "hazard detected" true (r.Region.cold_hazards >= 1);
  check bool_t "realized exceeds claimed" true
    (r.Region.cold_total_nops > r.Region.cold_claimed_nops);
  check bool_t "threading repairs it" true
    (r.Region.total_nops <= r.Region.cold_total_nops)

(* ------------------------------------------------------------------ *)
(* Timeline and DOT                                                    *)

let test_timeline_structure () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Neg (Operand.Ref 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0; 1 |] in
  let s = Timeline.render machine dag r in
  let lines = String.split_on_char '\n' s in
  (* header + ticks 0..2 (load issues 0, nop 1, neg 2) + trailing *)
  check bool_t "has header" true
    (match lines with h :: _ -> String.length h > 0 | [] -> false);
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "shows load" true (contains "Load #x");
  check bool_t "shows nop" true (contains "Nop");
  check bool_t "shows enqueue marker" true (contains "E")

let timeline_total_rows =
  qtest ~count:100 "timeline has one row per tick through the drain"
    (block_gen ~min_size:1 ~max_size:10 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let order =
        Pipesched_sched.List_sched.schedule
          Pipesched_sched.List_sched.Max_distance dag
      in
      let r = Omega.evaluate machine dag ~order in
      let s = Timeline.render machine dag r in
      let rows =
        List.length
          (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))
      in
      rows = 1 + Omega.span machine dag r)

let test_dot_output () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Store (Operand.Var "x") (Operand.Ref 1);
        tu ~id:3 Op.Load (Operand.Var "x") Operand.Null ]
  in
  let dot = Dag.to_dot (Dag.of_block blk) in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i =
      i + n <= h && (String.sub dot i n = needle || go (i + 1))
    in
    go 0
  in
  check bool_t "digraph" true (contains "digraph");
  check bool_t "data edge" true (contains "n0 -> n1");
  check bool_t "flow edge labeled" true (contains "flow");
  check bool_t "all nodes" true
    (contains "n0 [" && contains "n1 [" && contains "n2 [")

let () =
  Alcotest.run "extensions"
    [ ( "entry-exit",
        [ Alcotest.test_case "cold entry" `Quick test_cold_entry;
          Alcotest.test_case "entry forces stall" `Quick
            test_entry_forces_stall;
          Alcotest.test_case "free ops unaffected" `Quick
            test_entry_no_effect_on_free_ops;
          Alcotest.test_case "exit state" `Quick test_exit_state;
          Alcotest.test_case "exit requires completeness" `Quick
            test_exit_state_requires_complete;
          entry_threading_matches_concatenation ] );
      ( "windowed",
        [ windowed_full_window_is_optimal;
          windowed_one_is_list_schedule;
          windowed_legal_and_bounded;
          windowed_counts_all_pushes;
          Alcotest.test_case "window count" `Quick
            test_windowed_window_count;
          Alcotest.test_case "budget exhaustion" `Quick
            test_windowed_budget_exhaustion;
          Alcotest.test_case "windowed with entry state" `Quick
            test_windowed_with_entry;
          windowed_cheaper_than_full ] );
      ( "region",
        [ Alcotest.test_case "basic" `Quick test_region_basic;
          region_never_worse_than_cold;
          Alcotest.test_case "boundary stall example" `Quick
            test_region_stall_example;
          region_no_hazard_on_simulation;
          Alcotest.test_case "hazard on throttled machine" `Quick
            test_region_hazard_on_throttled ] );
      ( "visualization",
        [ Alcotest.test_case "timeline structure" `Quick
            test_timeline_structure;
          timeline_total_rows;
          Alcotest.test_case "dot output" `Quick test_dot_output ] ) ]
