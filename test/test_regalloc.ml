(* Tests for Pipesched_regalloc: Liveness, Alloc, Codegen. *)

open Pipesched_ir
open Pipesched_frontend
module Regalloc = Pipesched_regalloc
module Rng = Pipesched_prelude.Rng
open Helpers

let tu ~id op a b = Tuple.make ~id op a b

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

let test_ranges_basic () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:4 Op.Store (Operand.Var "x") (Operand.Ref 3) ]
  in
  let ranges = Regalloc.Liveness.ranges blk in
  let r id = List.assoc id ranges in
  check int_t "const1 def" 0 (r 1).Regalloc.Liveness.def_pos;
  check int_t "const1 last use" 2 (r 1).Regalloc.Liveness.last_use_pos;
  check int_t "add last use" 3 (r 3).Regalloc.Liveness.last_use_pos;
  check bool_t "store absent" true (List.assoc_opt 4 ranges = None)

let test_unused_value_range () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Store (Operand.Var "x") (Operand.Imm 5) ]
  in
  let r = List.assoc 1 (Regalloc.Liveness.ranges blk) in
  check int_t "dies at definition" 0 r.Regalloc.Liveness.last_use_pos

let test_pressure () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:4 Op.Store (Operand.Var "x") (Operand.Ref 3) ]
  in
  check (Alcotest.array int_t) "pressure profile" [| 0; 1; 2; 1 |]
    (Regalloc.Liveness.pressure blk);
  check int_t "max" 2 (Regalloc.Liveness.max_pressure blk)

(* ------------------------------------------------------------------ *)
(* Alloc                                                               *)

(* Validity oracle: two values with overlapping live ranges never share a
   register. *)
let allocation_valid blk alloc =
  let ranges = Regalloc.Liveness.ranges blk in
  List.for_all
    (fun (id1, (r1 : Regalloc.Liveness.range)) ->
      List.for_all
        (fun (id2, (r2 : Regalloc.Liveness.range)) ->
          id1 >= id2
          || Regalloc.Alloc.register_of alloc id1
             <> Regalloc.Alloc.register_of alloc id2
          || r1.Regalloc.Liveness.last_use_pos
             <= r2.Regalloc.Liveness.def_pos
          || r2.Regalloc.Liveness.last_use_pos
             <= r1.Regalloc.Liveness.def_pos)
        ranges)
    ranges

let alloc_valid_when_enough_regs =
  qtest ~count:300 "allocation with ample registers is interference-free"
    (block_gen ~max_size:16 ()) block_print
    (fun blk ->
      match Regalloc.Alloc.allocate blk ~registers:64 with
      | Ok alloc -> allocation_valid blk alloc
      | Error _ -> false)

let alloc_uses_few_registers =
  qtest ~count:300 "registers used never exceed max pressure + 1"
    (block_gen ~max_size:16 ()) block_print
    (fun blk ->
      match Regalloc.Alloc.allocate blk ~registers:64 with
      | Ok alloc ->
        Regalloc.Alloc.registers_used alloc
        <= Regalloc.Liveness.max_pressure blk + 1
      | Error _ -> false)

let test_alloc_overflow () =
  (* Three simultaneously-live values cannot fit two registers. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Const (Operand.Imm 3) Operand.Null;
        tu ~id:4 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:5 Op.Add (Operand.Ref 4) (Operand.Ref 3);
        tu ~id:6 Op.Store (Operand.Var "x") (Operand.Ref 5) ]
  in
  (match Regalloc.Alloc.allocate blk ~registers:2 with
   | Error (pos, demand) ->
     check int_t "overflow position" 2 pos;
     check int_t "demand" 3 demand
   | Ok _ -> Alcotest.fail "expected overflow");
  match Regalloc.Alloc.allocate blk ~registers:3 with
  | Ok alloc -> check bool_t "three registers suffice" true
                  (allocation_valid blk alloc)
  | Error _ -> Alcotest.fail "three registers should be enough"

let test_rematerialize_consts () =
  (* The overflowing block above is fixable: constants re-materialize. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:3 Op.Const (Operand.Imm 3) Operand.Null;
        tu ~id:4 Op.Add (Operand.Ref 1) (Operand.Ref 2);
        tu ~id:5 Op.Add (Operand.Ref 4) (Operand.Ref 3);
        tu ~id:6 Op.Store (Operand.Var "x") (Operand.Ref 5) ]
  in
  match Regalloc.Alloc.rematerialize blk ~registers:2 with
  | None -> Alcotest.fail "expected a re-materialized fix"
  | Some blk' ->
    (match Regalloc.Alloc.allocate blk' ~registers:2 with
     | Ok alloc -> check bool_t "fixed block allocates" true
                     (allocation_valid blk' alloc)
     | Error _ -> Alcotest.fail "fix did not allocate");
    (* Semantics preserved. *)
    let before = Interp.run_block blk ~env:(fun _ -> 0) in
    let after = Interp.run_block blk' ~env:(fun _ -> 0) in
    check bool_t "same final memory" true (before = after)

let rematerialize_preserves_semantics =
  qtest ~count:300 "rematerialize preserves block semantics"
    (block_gen ~max_size:14 ()) block_print
    (fun blk ->
      match Regalloc.Alloc.rematerialize blk ~registers:3 with
      | None -> true (* not fixable is an acceptable outcome *)
      | Some blk' ->
        let env = env_of_seed 5 in
        Interp.run_block blk ~env = Interp.run_block blk' ~env
        && Regalloc.Alloc.allocate blk' ~registers:3 |> Result.is_ok)

(* Regression: a re-materialized Load must read the same value as the
   original for EVERY rewritten use.  Belady prefers the candidate with
   the farthest next use; here that is x = Load v, whose re-materialized
   copy would span the Store to v (positions 5..7 around the Store at 6).
   The candidate check must look at the whole remaining live range — not
   just up to the next use — and reject x, fixing the block by splitting
   y and z instead. *)
let test_remat_rejects_crossing_store () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "v") Operand.Null;
        tu ~id:2 Op.Load (Operand.Var "w") Operand.Null;
        tu ~id:3 Op.Load (Operand.Var "q") Operand.Null;
        tu ~id:4 Op.Store (Operand.Var "o1") (Operand.Ref 2);
        tu ~id:5 Op.Store (Operand.Var "o2") (Operand.Ref 3);
        tu ~id:6 Op.Add (Operand.Ref 1) (Operand.Imm 1);
        tu ~id:7 Op.Store (Operand.Var "v") (Operand.Ref 6);
        tu ~id:8 Op.Add (Operand.Ref 1) (Operand.Imm 2);
        tu ~id:9 Op.Store (Operand.Var "o3") (Operand.Ref 8) ]
  in
  let max_orig =
    Array.fold_left
      (fun acc (t : Tuple.t) -> max acc t.Tuple.id)
      0 (Block.tuples blk)
  in
  match Regalloc.Alloc.rematerialize blk ~registers:2 with
  | None -> Alcotest.fail "block is fixable by splitting y and z"
  | Some blk' ->
    let env = env_of_seed 3 in
    check bool_t "same final memory" true
      (Interp.run_block blk ~env = Interp.run_block blk' ~env);
    (* No inserted copy's live range may cross a Store to its variable:
       such a copy is only accidentally correct under the current block
       order and breaks as soon as the block is re-scheduled. *)
    let ranges = Regalloc.Liveness.ranges blk' in
    Array.iteri
      (fun p (t : Tuple.t) ->
        if t.Tuple.id > max_orig && t.Tuple.op = Op.Load then
          match Tuple.memory_var t with
          | None -> ()
          | Some v -> (
            match List.assoc_opt t.Tuple.id ranges with
            | None -> ()
            | Some r ->
              for i = p + 1 to r.Regalloc.Liveness.last_use_pos - 1 do
                let s = Block.tuple_at blk' i in
                if s.Tuple.op = Op.Store && Tuple.memory_var s = Some v then
                  Alcotest.failf
                    "re-materialized Load of %s at %d crosses a Store at %d"
                    v p i
              done))
      (Block.tuples blk');
    check bool_t "fixed block allocates" true
      (Regalloc.Alloc.allocate blk' ~registers:2 |> Result.is_ok)

let test_rematerialize_unfixable () =
  (* Four live arithmetic results cannot be re-materialized into 2 regs:
     chain of adds all still live at the end. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        tu ~id:2 Op.Add (Operand.Ref 1) (Operand.Imm 1);
        tu ~id:3 Op.Add (Operand.Ref 1) (Operand.Imm 2);
        tu ~id:4 Op.Add (Operand.Ref 1) (Operand.Imm 3);
        tu ~id:5 Op.Store (Operand.Var "a") (Operand.Imm 0);
        tu ~id:6 Op.Xor (Operand.Ref 2) (Operand.Ref 3);
        tu ~id:7 Op.Xor (Operand.Ref 6) (Operand.Ref 4);
        tu ~id:8 Op.Store (Operand.Var "x") (Operand.Ref 7) ]
  in
  match Regalloc.Alloc.rematerialize blk ~registers:2 with
  | None -> ()
  | Some blk' ->
    (* If it claims success, it must actually allocate. *)
    check bool_t "claimed fix allocates" true
      (Regalloc.Alloc.allocate blk' ~registers:2 |> Result.is_ok)

(* ------------------------------------------------------------------ *)
(* Codegen                                                             *)

let test_codegen_output () =
  let blk = Compile.compile "b = 15; a = b * a;" in
  let alloc =
    match Regalloc.Alloc.allocate blk ~registers:8 with
    | Ok a -> a
    | Error _ -> Alcotest.fail "allocation failed"
  in
  let eta = Array.make (Block.length blk) 0 in
  eta.(Block.length blk - 1) <- 2;
  let lines = Regalloc.Codegen.lines blk ~eta ~alloc in
  check int_t "line count" (Block.length blk + 2) (List.length lines);
  let text = Regalloc.Codegen.emit blk ~eta ~alloc in
  check bool_t "mentions Load" true
    (String.length text > 0
     && Array.exists
          (fun t -> t.Tuple.op = Op.Load)
          (Block.tuples blk)
     = (let re = "Load" in
        let rec contains i =
          i + String.length re <= String.length text
          && (String.sub text i (String.length re) = re || contains (i + 1))
        in
        contains 0))

let test_codegen_ticks () =
  let blk = Compile.compile "x = a + b;" in
  let alloc =
    match Regalloc.Alloc.allocate blk ~registers:8 with
    | Ok a -> a
    | Error _ -> Alcotest.fail "allocation failed"
  in
  let n = Block.length blk in
  let eta = Array.make n 0 in
  if n > 1 then eta.(1) <- 1;
  let lines = Regalloc.Codegen.lines blk ~eta ~alloc in
  (* Ticks are consecutive from 0. *)
  List.iteri
    (fun i l -> check int_t "tick" i l.Regalloc.Codegen.tick)
    lines;
  (* Exactly one NOP line. *)
  check int_t "nop count" (if n > 1 then 1 else 0)
    (List.length
       (List.filter (fun l -> l.Regalloc.Codegen.source = None) lines))

let test_codegen_eta_mismatch () =
  let blk = Compile.compile "x = 1;" in
  let alloc =
    match Regalloc.Alloc.allocate blk ~registers:4 with
    | Ok a -> a
    | Error _ -> Alcotest.fail "allocation failed"
  in
  Alcotest.check_raises "eta length"
    (Invalid_argument "Codegen.lines: eta length") (fun () ->
      ignore (Regalloc.Codegen.lines blk ~eta:[| 0; 0 |] ~alloc))

(* ------------------------------------------------------------------ *)
(* Assembly parser and executor                                        *)

let test_asm_parse () =
  let text = "Load  r0, a   ; t=0\nNop ; t=1\nMul   r1, r0, #3 ; t=2\nStore b, r1" in
  match Regalloc.Asm.parse text with
  | Error (line, msg) -> Alcotest.failf "parse failed line %d: %s" line msg
  | Ok instrs ->
    check int_t "count" 4 (List.length instrs);
    (match instrs with
     | [ l; n; m; s ] ->
       check bool_t "load" true
         (l = { Regalloc.Asm.mnemonic = "Load";
                operands = [ Regalloc.Asm.Reg 0; Regalloc.Asm.Mem "a" ] });
       check bool_t "nop" true (n.Regalloc.Asm.mnemonic = "Nop");
       check bool_t "mul operands" true
         (m.Regalloc.Asm.operands
          = [ Regalloc.Asm.Reg 1; Regalloc.Asm.Reg 0; Regalloc.Asm.Imm 3 ]);
       check bool_t "store" true
         (s.Regalloc.Asm.operands
          = [ Regalloc.Asm.Mem "b"; Regalloc.Asm.Reg 1 ])
     | _ -> Alcotest.fail "wrong shape")

let test_asm_execute () =
  let text = "Li    r0, #5\nLoad  r1, x\nAdd   r2, r0, r1\nStore y, r2\nNop" in
  match Regalloc.Asm.parse text with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok instrs ->
    let result, ticks =
      Regalloc.Asm.execute instrs ~env:(fun v -> if v = "x" then 37 else 0)
    in
    check int_t "ticks" 5 ticks;
    check bool_t "y = 42" true (List.assoc "y" result = 42)

let test_asm_rejects () =
  (match Regalloc.Asm.parse "Add r0, r1, r2" with
   | Ok [ i ] ->
     (match Regalloc.Asm.execute [ { i with Regalloc.Asm.mnemonic = "Bogus" } ]
              ~env:(fun _ -> 0)
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "executed unknown mnemonic")
   | _ -> Alcotest.fail "parse shape");
  match Regalloc.Asm.parse "Store x" with
  | Ok [ i ] ->
    (match Regalloc.Asm.execute [ i ] ~env:(fun _ -> 0) with
     | exception Invalid_argument _ -> ()
     | _ -> Alcotest.fail "executed malformed store")
  | _ -> Alcotest.fail "parse shape"

(* The full back end round-trips through text: emitted assembly executes
   to the same memory as the tuple interpreter. *)
let asm_roundtrip =
  qtest ~count:300 "emit -> parse -> execute matches the tuple interpreter"
    QCheck2.Gen.(int_bound 10_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let prog =
        Pipesched_synth.Generator.program rng
          { Pipesched_synth.Generator.statements = 1 + Rng.int rng 6;
            variables = 1 + Rng.int rng 4;
            constants = 1 + Rng.int rng 3 }
      in
      let blk = Compile.compile_program prog in
      match Regalloc.Alloc.allocate blk ~registers:64 with
      | Error _ -> false
      | Ok alloc ->
        let eta = Array.make (Block.length blk) 0 in
        if Block.length blk > 1 then eta.(1) <- 1;
        let text = Regalloc.Codegen.emit blk ~eta ~alloc in
        (match Regalloc.Asm.parse text with
         | Error _ -> false
         | Ok instrs ->
           let env = env_of_seed 11 in
           let result, ticks = Regalloc.Asm.execute instrs ~env in
           let expected = Interp.run_block blk ~env in
           let agree (v, x) =
             match List.assoc_opt v result with
             | Some y -> x = y
             | None -> false
           in
           ticks = Block.length blk + (if Block.length blk > 1 then 1 else 0)
           && List.for_all agree expected))

let () =
  Alcotest.run "regalloc"
    [ ( "liveness",
        [ Alcotest.test_case "ranges" `Quick test_ranges_basic;
          Alcotest.test_case "unused value" `Quick test_unused_value_range;
          Alcotest.test_case "pressure" `Quick test_pressure ] );
      ( "alloc",
        [ alloc_valid_when_enough_regs;
          alloc_uses_few_registers;
          Alcotest.test_case "overflow detection" `Quick test_alloc_overflow;
          Alcotest.test_case "rematerialize constants" `Quick
            test_rematerialize_consts;
          rematerialize_preserves_semantics;
          Alcotest.test_case "remat rejects store-crossing Load" `Quick
            test_remat_rejects_crossing_store;
          Alcotest.test_case "unfixable pressure" `Quick
            test_rematerialize_unfixable ] );
      ( "codegen",
        [ Alcotest.test_case "output" `Quick test_codegen_output;
          Alcotest.test_case "ticks" `Quick test_codegen_ticks;
          Alcotest.test_case "eta validation" `Quick
            test_codegen_eta_mismatch ] );
      ( "asm",
        [ Alcotest.test_case "parse" `Quick test_asm_parse;
          Alcotest.test_case "execute" `Quick test_asm_execute;
          Alcotest.test_case "rejects" `Quick test_asm_rejects;
          asm_roundtrip ] ) ]
