(* Tests for Pipesched_sched: List_sched and Baselines. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Rng = Pipesched_prelude.Rng
open Helpers

let heuristics =
  [ ("max_distance", List_sched.Max_distance);
    ("latency_weighted", List_sched.Latency_weighted machine);
    ("source_order", List_sched.Source_order);
    ("random_order", List_sched.Random_order 17) ]

(* ------------------------------------------------------------------ *)
(* List scheduler                                                      *)

let list_sched_legal =
  qtest ~count:300 "every heuristic yields a legal order"
    (block_gen ~max_size:16 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      List.for_all
        (fun (_, h) -> Dag.is_legal_order dag (List_sched.schedule h dag))
        heuristics)

let test_source_order_is_identity () =
  let rng = Rng.create 5 in
  let blk = random_block rng 12 in
  let dag = Dag.of_block blk in
  check (Alcotest.array int_t) "identity"
    (Array.init 12 (fun i -> i))
    (List_sched.schedule List_sched.Source_order dag)

let test_max_distance_spreads () =
  (* Load a; Add(load); Load b; Add(load b): max-distance interleaves the
     loads before the adds, hiding latency. *)
  let blk =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:2 Op.Add (Operand.Ref 1) (Operand.Imm 1);
        Tuple.make ~id:3 Op.Load (Operand.Var "b") Operand.Null;
        Tuple.make ~id:4 Op.Add (Operand.Ref 3) (Operand.Imm 1);
        Tuple.make ~id:5 Op.Store (Operand.Var "x") (Operand.Ref 2);
        Tuple.make ~id:6 Op.Store (Operand.Var "y") (Operand.Ref 4) ]
  in
  let dag = Dag.of_block blk in
  let order = List_sched.schedule List_sched.Max_distance dag in
  let r = Omega.evaluate machine dag ~order in
  let src = Omega.evaluate machine dag ~order:(Omega.identity_order 6) in
  check bool_t "beats source order" true (r.Omega.nops <= src.Omega.nops);
  check int_t "hides the load latency entirely" 0 r.Omega.nops

let test_priorities_machine_independent () =
  (* §4.1: the list scheduler does not examine the pipeline tables. *)
  let rng = Rng.create 11 in
  let blk = random_block rng 14 in
  let dag = Dag.of_block blk in
  let p = List_sched.priorities List_sched.Max_distance dag in
  check (Alcotest.array int_t) "no machine parameter involved" p
    (List_sched.priorities List_sched.Max_distance dag)

let test_random_order_deterministic () =
  let rng = Rng.create 12 in
  let blk = random_block rng 10 in
  let dag = Dag.of_block blk in
  check (Alcotest.array int_t) "same seed, same order"
    (List_sched.schedule (List_sched.Random_order 3) dag)
    (List_sched.schedule (List_sched.Random_order 3) dag)

let order_by_priority_sorted =
  qtest ~count:200 "order_by_priority is sorted by descending priority"
    (block_gen ~max_size:14 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let prio = List_sched.priorities List_sched.Max_distance dag in
      let idx = List_sched.order_by_priority List_sched.Max_distance dag in
      let ok = ref true in
      for k = 1 to Array.length idx - 1 do
        if prio.(idx.(k - 1)) < prio.(idx.(k)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)

let test_factorial () =
  check bool_t "8!" true (Baselines.factorial_float 8 = 40320.0);
  check bool_t "0!" true (Baselines.factorial_float 0 = 1.0);
  check bool_t "20! approx" true
    (abs_float (Baselines.factorial_float 20 -. 2.43e18) < 0.01e18)

let test_count_legal_chain_and_free () =
  (* A pure chain has exactly one legal order. *)
  let chain =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        Tuple.make ~id:2 Op.Neg (Operand.Ref 1) Operand.Null;
        Tuple.make ~id:3 Op.Neg (Operand.Ref 2) Operand.Null ]
  in
  check bool_t "chain" true
    (Baselines.count_legal_schedules (Dag.of_block chain) = `Exact 1);
  (* n independent tuples have n! legal orders. *)
  let free =
    Block.of_tuples_exn
      (List.init 5 (fun i ->
           Tuple.make ~id:(i + 1) Op.Const (Operand.Imm i) Operand.Null))
  in
  check bool_t "independent" true
    (Baselines.count_legal_schedules (Dag.of_block free) = `Exact 120)

let test_count_cutoff () =
  let free =
    Block.of_tuples_exn
      (List.init 8 (fun i ->
           Tuple.make ~id:(i + 1) Op.Const (Operand.Imm i) Operand.Null))
  in
  check bool_t "cutoff" true
    (Baselines.count_legal_schedules ~cutoff:100 (Dag.of_block free)
     = `At_least 100)

let count_matches_enumeration =
  qtest ~count:100 "legal-schedule count matches explicit enumeration"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      Baselines.count_legal_schedules dag
      = `Exact (List.length (all_legal_orders dag)))

let legal_only_search_is_optimal =
  qtest ~count:100 "legal-only search finds the minimum over all orders"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let r = Baselines.legal_only_search machine dag in
      let brute =
        List.fold_left
          (fun acc order ->
            min acc (Omega.evaluate machine dag ~order).Omega.nops)
          max_int (all_legal_orders dag)
      in
      r.Baselines.complete
      && r.Baselines.best.Omega.nops = brute
      && r.Baselines.schedules_tried
         = List.length (all_legal_orders dag))

let greedy_and_gross_legal =
  qtest ~count:300 "greedy and gross produce legal orders"
    (block_gen ~max_size:16 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      Dag.is_legal_order dag (Baselines.greedy machine dag)
      && Dag.is_legal_order dag (Baselines.gross machine dag))

let heuristics_not_worse_than_chaos =
  qtest ~count:150 "greedy never loses to the worst legal order"
    (block_gen ~max_size:7 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let worst =
        List.fold_left
          (fun acc order ->
            max acc (Omega.evaluate machine dag ~order).Omega.nops)
          0 (all_legal_orders dag)
      in
      let g =
        Omega.evaluate machine dag ~order:(Baselines.greedy machine dag)
      in
      g.Omega.nops <= worst)

(* ------------------------------------------------------------------ *)
(* Stochastic baseline                                                 *)

let anneal_legal_and_bounded =
  qtest ~count:150 "annealer results are legal and never worse than seed"
    (block_gen ~max_size:14 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let o = Stochastic.anneal ~budget:200 machine dag in
      Dag.is_legal_order dag o.Stochastic.best.Omega.order
      && o.Stochastic.best.Omega.nops <= o.Stochastic.initial.Omega.nops
      && o.Stochastic.evaluations <= 200)

let anneal_deterministic_per_seed =
  qtest ~count:80 "annealer is deterministic per seed"
    (block_gen ~max_size:12 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let a = Stochastic.anneal ~seed:9 ~budget:150 machine dag in
      let b = Stochastic.anneal ~seed:9 ~budget:150 machine dag in
      a.Stochastic.best.Omega.order = b.Stochastic.best.Omega.order)

let anneal_reaches_optimum_on_tiny_blocks =
  qtest ~count:60 "a generous budget finds the optimum on tiny blocks"
    (block_gen ~min_size:2 ~max_size:5 ()) block_print
    (fun blk ->
      let dag = Dag.of_block blk in
      let brute =
        List.fold_left
          (fun acc order ->
            min acc (Omega.evaluate machine dag ~order).Omega.nops)
          max_int (all_legal_orders dag)
      in
      let o = Stochastic.anneal ~budget:3_000 machine dag in
      o.Stochastic.best.Omega.nops = brute)

let test_anneal_single_instruction () =
  let blk =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Const (Operand.Imm 1) Operand.Null ]
  in
  let o = Stochastic.anneal machine (Dag.of_block blk) in
  check int_t "one evaluation" 1 o.Stochastic.evaluations

let () =
  Alcotest.run "sched"
    [ ( "list_sched",
        [ list_sched_legal;
          Alcotest.test_case "source order" `Quick
            test_source_order_is_identity;
          Alcotest.test_case "max distance hides latency" `Quick
            test_max_distance_spreads;
          Alcotest.test_case "machine independence" `Quick
            test_priorities_machine_independent;
          Alcotest.test_case "random determinism" `Quick
            test_random_order_deterministic;
          order_by_priority_sorted ] );
      ( "baselines",
        [ Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "count: chain and independent" `Quick
            test_count_legal_chain_and_free;
          Alcotest.test_case "count: cutoff" `Quick test_count_cutoff;
          count_matches_enumeration;
          legal_only_search_is_optimal;
          greedy_and_gross_legal;
          heuristics_not_worse_than_chaos ] );
      ( "stochastic",
        [ anneal_legal_and_bounded;
          anneal_deterministic_per_seed;
          anneal_reaches_optimum_on_tiny_blocks;
          Alcotest.test_case "single instruction" `Quick
            test_anneal_single_instruction ] ) ]
