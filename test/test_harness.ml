(* Tests for Pipesched_harness: Stats, Study, Ablation, Experiments. *)

open Pipesched_harness
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let feq name a b = check bool_t name true (abs_float (a -. b) < 1e-9)

let test_mean () =
  feq "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "empty" 0.0 (Stats.mean []);
  feq "single" 7.0 (Stats.mean [ 7.0 ])

let test_stddev () =
  feq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  feq "pair" 1.0 (Stats.stddev [ 1.0; 3.0 ]);
  feq "degenerate" 0.0 (Stats.stddev [ 2.0 ])

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  feq "p0" 10.0 (Stats.percentile 0.0 xs);
  feq "p100" 40.0 (Stats.percentile 100.0 xs);
  feq "p50" 25.0 (Stats.percentile 50.0 xs);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 50.0 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 150.0 xs))

let percentile_sorted_invariant =
  qtest ~count:200 "percentile is monotone and within min/max"
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 100.0))
    (fun xs -> String.concat "," (List.map string_of_float xs))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let p25 = Stats.percentile 25.0 xs in
      let p75 = Stats.percentile 75.0 xs in
      p25 <= p75 && lo <= p25 && p75 <= hi)

let test_min_max () =
  check bool_t "min_max" true (Stats.min_max [ 3.0; 1.0; 2.0 ] = (1.0, 3.0))

let test_group_by () =
  let groups = Stats.group_by (fun x -> x mod 3) [ 1; 2; 3; 4; 5; 6 ] in
  check bool_t "groups" true
    (groups = [ (0, [ 3; 6 ]); (1, [ 1; 4 ]); (2, [ 2; 5 ]) ])

let test_histogram () =
  let h = Stats.histogram ~bucket:5 [ 1; 2; 7; 12; 13; 14 ] in
  check bool_t "buckets" true (h = [ (0, 2); (5, 1); (10, 3) ]);
  check bool_t "empty bucket filled" true
    (Stats.histogram ~bucket:5 [ 1; 11 ] = [ (0, 1); (5, 0); (10, 1) ]);
  check bool_t "empty input" true (Stats.histogram ~bucket:5 [] = [])

(* ------------------------------------------------------------------ *)
(* Study                                                               *)

let test_run_block_record () =
  let rng = Rng.create 42 in
  let blk = random_block rng 12 in
  let r = Study.run_block machine blk in
  check int_t "size" 12 r.Study.size;
  check bool_t "final <= initial" true
    (r.Study.final_nops <= r.Study.initial_nops);
  check bool_t "time nonneg" true (r.Study.time_s >= 0.0);
  check bool_t "calls positive" true (r.Study.omega_calls >= 0)

let test_study_deterministic_results () =
  (* Modulo wall-clock, two same-seed studies agree. *)
  let strip r = { r with Study.time_s = 0.0 } in
  let study () =
    let results = Study.run ~seed:3 ~count:30 machine in
    check int_t "no contained failures" 0
      (List.length (Study.failures results));
    List.map strip (Study.records results)
  in
  check bool_t "deterministic" true (study () = study ())

let test_study_dedup_sound () =
  (* Dedup must not change what a study reports where transfer is sound:
     same population, same per-block optimum and completion status.
     (Counters like omega_calls describe the representative's search and
     may legitimately differ from a duplicate's own would-be search.) *)
  let with_d = Study.run ~dedup:true ~seed:11 ~count:40 machine in
  let without = Study.run ~dedup:false ~seed:11 ~count:40 machine in
  check int_t "same population" (List.length without) (List.length with_d);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Study.Scheduled ra, Study.Scheduled rb ->
        check int_t "same size" rb.Study.size ra.Study.size;
        check bool_t "same completion" true
          (ra.Study.completed = rb.Study.completed);
        if ra.Study.completed then
          check int_t "same optimal nops" rb.Study.final_nops
            ra.Study.final_nops
      | Study.Failed _, Study.Failed _ -> ()
      | _ -> Alcotest.fail "dedup changed a block's fate")
    with_d without;
  (* dedup:false marks everything unique; the synthetic population may
     or may not contain canonical duplicates (big random blocks rarely
     collide) — run_dedup below tests the fan-out on guaranteed ones. *)
  check bool_t "all unique without dedup" true
    (List.for_all (fun r -> r.Study.unique) (Study.records without));
  let uniq, total, rate = Study.dedup_stats with_d in
  check int_t "total" 40 total;
  check bool_t "uniques bounded" true (uniq <= total);
  check bool_t "rate consistent" true
    (Float.abs (rate -. (1.0 -. (float_of_int uniq /. float_of_int total)))
    < 1e-9)

let test_run_dedup_fanout () =
  (* Guaranteed duplicates: isomorphic presentations (reordered +
     relabeled) of a handful of base blocks.  run_dedup must solve one
     representative per class and fan its record out byte-for-byte
     (modulo time_s / unique). *)
  let rng = Rng.create 77 in
  let bases = List.init 4 (fun i -> random_block rng (6 + i)) in
  let items =
    List.concat_map
      (fun b -> [ b; random_topo_reorder rng b; random_relabel rng b ])
      bases
  in
  let key b = (Pipesched_ir.Canonical.of_block b).Pipesched_ir.Canonical.key in
  let solve b = Study.run_block machine b in
  let results = Study.run_dedup ~jobs:2 ~key ~solve items in
  check int_t "population size" (List.length items) (List.length results);
  check int_t "no failures" 0 (List.length (Study.failures results));
  let uniq, total, rate = Study.dedup_stats results in
  check int_t "classes" 4 uniq;
  check int_t "total" 12 total;
  feq "rate" (2.0 /. 3.0) rate;
  (* Each class's three records agree where transfer is sound. *)
  let recs = Array.of_list (Study.records results) in
  List.iteri
    (fun i _ ->
      let rep = recs.(3 * i) in
      check bool_t "rep unique" true rep.Study.unique;
      List.iter
        (fun j ->
          let d = recs.((3 * i) + j) in
          check bool_t "dup marked" false d.Study.unique;
          check int_t "dup size" rep.Study.size d.Study.size;
          check int_t "dup nops" rep.Study.final_nops d.Study.final_nops;
          check int_t "dup calls" rep.Study.omega_calls d.Study.omega_calls;
          check bool_t "dup status" true (d.Study.status = rep.Study.status))
        [ 1; 2 ])
    bases;
  (* And the deduped optima match honest per-block searches. *)
  List.iter2
    (fun item r ->
      match r with
      | Study.Scheduled rec_ ->
        let fresh = Study.run_block machine item in
        check int_t "same optimum as fresh solve" fresh.Study.final_nops
          rec_.Study.final_nops
      | Study.Failed _ -> Alcotest.fail "unexpected failure")
    items results

let test_aggregate () =
  let rec_ size initial final =
    { Study.size; initial_nops = initial; final_nops = final;
      omega_calls = 10; schedules_completed = 1; memo_hits = 0;
      completed = true; status = Pipesched_prelude.Budget.Complete;
      time_s = 0.0; unique = true }
  in
  let agg = Study.aggregate ~total:4 [ rec_ 10 5 1; rec_ 20 7 3 ] in
  check int_t "runs" 2 agg.Study.runs;
  feq "pct" 50.0 agg.Study.pct;
  feq "avg size" 15.0 agg.Study.avg_size;
  feq "avg initial" 6.0 agg.Study.avg_initial_nops;
  feq "avg final" 2.0 agg.Study.avg_final_nops

let test_by_size () =
  let rec_ size =
    { Study.size; initial_nops = 0; final_nops = 0; omega_calls = 0;
      schedules_completed = 0; memo_hits = 0; completed = true;
      status = Pipesched_prelude.Budget.Complete;
      time_s = 0.0; unique = true }
  in
  let groups = Study.by_size [ rec_ 5; rec_ 3; rec_ 5 ] in
  check bool_t "keys sorted" true (List.map fst groups = [ 3; 5 ]);
  check int_t "bucket size" 2 (List.length (List.assoc 5 groups))

(* ------------------------------------------------------------------ *)
(* Paper reference data                                                *)

let test_paper_data () =
  check int_t "table 1 rows" 11 (List.length Paper.table1);
  check int_t "totals" Paper.total_runs
    (Paper.table7_completed.Paper.runs + Paper.table7_truncated.Paper.runs);
  check bool_t "percentages sum to 100" true
    (abs_float
       (Paper.table7_completed.Paper.pct +. Paper.table7_truncated.Paper.pct
        -. 100.0)
     < 0.01)

(* ------------------------------------------------------------------ *)
(* Ablation and experiment drivers (smoke, small sizes)                *)

let test_ablation_smoke () =
  let rows = Ablation.run ~seed:1 ~count:20 ~lambda:5_000 machine in
  check int_t "all configs" 9 (List.length rows);
  List.iter
    (fun r ->
      check bool_t "pct in range" true
        (r.Ablation.completed_pct >= 0.0 && r.Ablation.completed_pct <= 100.0))
    rows;
  (* Paper mode must complete more than the no-alpha-beta config. *)
  let pct label =
    (List.find (fun r -> r.Ablation.label = label) rows)
      .Ablation.completed_pct
  in
  check bool_t "alpha-beta is essential" true
    (pct "paper (all prunings, list seed)"
     >= pct "- alpha-beta pruning [6]")

let test_experiments_printers_smoke () =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let study = Experiments.run_study ~seed:5 ~count:40 () in
  Experiments.print_machines fmt;
  Experiments.print_table6 fmt;
  Experiments.print_table7 fmt study;
  Experiments.print_fig1 fmt study;
  Experiments.print_fig4 fmt study;
  Experiments.print_fig5 fmt study;
  Experiments.print_fig6 fmt study;
  Experiments.print_fig7 fmt study;
  Experiments.print_kernel_study fmt;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length out in
        let rec go i =
          i + n <= h && (String.sub out i n = needle || go (i + 1))
        in
        go 0
      in
      check bool_t ("output mentions " ^ needle) true contains)
    [ "Table 7"; "Figure 1"; "Figure 4"; "Figure 5"; "Figure 6"; "Figure 7";
      "loader"; "multiplier"; "Operators"; "dot4"; "horner4" ]

let test_omega_cost_positive () =
  let c = Experiments.omega_cost () in
  check bool_t "positive and sane" true (c > 0.0 && c < 0.01)

let () =
  Alcotest.run "harness"
    [ ( "stats",
        [ Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          percentile_sorted_invariant;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "study",
        [ Alcotest.test_case "run_block record" `Quick test_run_block_record;
          Alcotest.test_case "deterministic" `Quick
            test_study_deterministic_results;
          Alcotest.test_case "dedup sound" `Quick test_study_dedup_sound;
          Alcotest.test_case "run_dedup fanout" `Quick test_run_dedup_fanout;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "by_size" `Quick test_by_size ] );
      ( "paper",
        [ Alcotest.test_case "reference data" `Quick test_paper_data ] );
      ( "drivers",
        [ Alcotest.test_case "ablation smoke" `Quick test_ablation_smoke;
          Alcotest.test_case "experiment printers" `Quick
            test_experiments_printers_smoke;
          Alcotest.test_case "omega cost" `Quick test_omega_cost_positive ]
      ) ]
