(* Tests for Pipesched_harness: Stats, Study, Ablation, Experiments. *)

open Pipesched_harness
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let feq name a b = check bool_t name true (abs_float (a -. b) < 1e-9)

let test_mean () =
  feq "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "empty" 0.0 (Stats.mean []);
  feq "single" 7.0 (Stats.mean [ 7.0 ])

let test_stddev () =
  feq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  feq "pair" 1.0 (Stats.stddev [ 1.0; 3.0 ]);
  feq "degenerate" 0.0 (Stats.stddev [ 2.0 ])

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  feq "p0" 10.0 (Stats.percentile 0.0 xs);
  feq "p100" 40.0 (Stats.percentile 100.0 xs);
  feq "p50" 25.0 (Stats.percentile 50.0 xs);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 50.0 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 150.0 xs))

let percentile_sorted_invariant =
  qtest ~count:200 "percentile is monotone and within min/max"
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 100.0))
    (fun xs -> String.concat "," (List.map string_of_float xs))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let p25 = Stats.percentile 25.0 xs in
      let p75 = Stats.percentile 75.0 xs in
      p25 <= p75 && lo <= p25 && p75 <= hi)

let test_min_max () =
  check bool_t "min_max" true (Stats.min_max [ 3.0; 1.0; 2.0 ] = (1.0, 3.0))

let test_group_by () =
  let groups = Stats.group_by (fun x -> x mod 3) [ 1; 2; 3; 4; 5; 6 ] in
  check bool_t "groups" true
    (groups = [ (0, [ 3; 6 ]); (1, [ 1; 4 ]); (2, [ 2; 5 ]) ])

let test_histogram () =
  let h = Stats.histogram ~bucket:5 [ 1; 2; 7; 12; 13; 14 ] in
  check bool_t "buckets" true (h = [ (0, 2); (5, 1); (10, 3) ]);
  check bool_t "empty bucket filled" true
    (Stats.histogram ~bucket:5 [ 1; 11 ] = [ (0, 1); (5, 0); (10, 1) ]);
  check bool_t "empty input" true (Stats.histogram ~bucket:5 [] = [])

(* ------------------------------------------------------------------ *)
(* Study                                                               *)

let test_run_block_record () =
  let rng = Rng.create 42 in
  let blk = random_block rng 12 in
  let r = Study.run_block machine blk in
  check int_t "size" 12 r.Study.size;
  check bool_t "final <= initial" true
    (r.Study.final_nops <= r.Study.initial_nops);
  check bool_t "time nonneg" true (r.Study.time_s >= 0.0);
  check bool_t "calls positive" true (r.Study.omega_calls >= 0)

let test_study_deterministic_results () =
  (* Modulo wall-clock, two same-seed studies agree. *)
  let strip r = { r with Study.time_s = 0.0 } in
  let study () =
    let results = Study.run ~seed:3 ~count:30 machine in
    check int_t "no contained failures" 0
      (List.length (Study.failures results));
    List.map strip (Study.records results)
  in
  check bool_t "deterministic" true (study () = study ())

let test_study_dedup_sound () =
  (* Dedup must not change what a study reports where transfer is sound:
     same population, same per-block optimum and completion status.
     (Counters like omega_calls describe the representative's search and
     may legitimately differ from a duplicate's own would-be search.) *)
  let with_d = Study.run ~dedup:true ~seed:11 ~count:40 machine in
  let without = Study.run ~dedup:false ~seed:11 ~count:40 machine in
  check int_t "same population" (List.length without) (List.length with_d);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Study.Scheduled ra, Study.Scheduled rb ->
        check int_t "same size" rb.Study.size ra.Study.size;
        check bool_t "same completion" true
          (ra.Study.completed = rb.Study.completed);
        if ra.Study.completed then
          check int_t "same optimal nops" rb.Study.final_nops
            ra.Study.final_nops
      | Study.Failed _, Study.Failed _ -> ()
      | _ -> Alcotest.fail "dedup changed a block's fate")
    with_d without;
  (* dedup:false marks everything unique; the synthetic population may
     or may not contain canonical duplicates (big random blocks rarely
     collide) — run_dedup below tests the fan-out on guaranteed ones. *)
  check bool_t "all unique without dedup" true
    (List.for_all (fun r -> r.Study.unique) (Study.records without));
  let uniq, total, rate = Study.dedup_stats with_d in
  check int_t "total" 40 total;
  check bool_t "uniques bounded" true (uniq <= total);
  check bool_t "rate consistent" true
    (Float.abs (rate -. (1.0 -. (float_of_int uniq /. float_of_int total)))
    < 1e-9)

let test_run_dedup_fanout () =
  (* Guaranteed duplicates: isomorphic presentations (reordered +
     relabeled) of a handful of base blocks.  run_dedup must solve one
     representative per class and fan its record out byte-for-byte
     (modulo time_s / unique). *)
  let rng = Rng.create 77 in
  let bases = List.init 4 (fun i -> random_block rng (6 + i)) in
  let items =
    List.concat_map
      (fun b -> [ b; random_topo_reorder rng b; random_relabel rng b ])
      bases
  in
  let key b = (Pipesched_ir.Canonical.of_block b).Pipesched_ir.Canonical.key in
  let solve b = Study.run_block machine b in
  let results = Study.run_dedup ~jobs:2 ~key ~solve items in
  check int_t "population size" (List.length items) (List.length results);
  check int_t "no failures" 0 (List.length (Study.failures results));
  let uniq, total, rate = Study.dedup_stats results in
  check int_t "classes" 4 uniq;
  check int_t "total" 12 total;
  feq "rate" (2.0 /. 3.0) rate;
  (* Each class's three records agree where transfer is sound. *)
  let recs = Array.of_list (Study.records results) in
  List.iteri
    (fun i _ ->
      let rep = recs.(3 * i) in
      check bool_t "rep unique" true rep.Study.unique;
      List.iter
        (fun j ->
          let d = recs.((3 * i) + j) in
          check bool_t "dup marked" false d.Study.unique;
          check int_t "dup size" rep.Study.size d.Study.size;
          check int_t "dup nops" rep.Study.final_nops d.Study.final_nops;
          check int_t "dup calls" rep.Study.omega_calls d.Study.omega_calls;
          check bool_t "dup status" true (d.Study.status = rep.Study.status))
        [ 1; 2 ])
    bases;
  (* And the deduped optima match honest per-block searches. *)
  List.iter2
    (fun item r ->
      match r with
      | Study.Scheduled rec_ ->
        let fresh = Study.run_block machine item in
        check int_t "same optimum as fresh solve" fresh.Study.final_nops
          rec_.Study.final_nops
      | Study.Failed _ -> Alcotest.fail "unexpected failure")
    items results

let test_aggregate () =
  let rec_ size initial final =
    { Study.size; initial_nops = initial; final_nops = final;
      omega_calls = 10; schedules_completed = 1; memo_hits = 0;
      completed = true; status = Pipesched_prelude.Budget.Complete;
      time_s = 0.0; unique = true }
  in
  let agg = Study.aggregate ~total:4 [ rec_ 10 5 1; rec_ 20 7 3 ] in
  check int_t "runs" 2 agg.Study.runs;
  feq "pct" 50.0 agg.Study.pct;
  feq "avg size" 15.0 agg.Study.avg_size;
  feq "avg initial" 6.0 agg.Study.avg_initial_nops;
  feq "avg final" 2.0 agg.Study.avg_final_nops

let test_by_size () =
  let rec_ size =
    { Study.size; initial_nops = 0; final_nops = 0; omega_calls = 0;
      schedules_completed = 0; memo_hits = 0; completed = true;
      status = Pipesched_prelude.Budget.Complete;
      time_s = 0.0; unique = true }
  in
  let groups = Study.by_size [ rec_ 5; rec_ 3; rec_ 5 ] in
  check bool_t "keys sorted" true (List.map fst groups = [ 3; 5 ]);
  check int_t "bucket size" 2 (List.length (List.assoc 5 groups))

(* ------------------------------------------------------------------ *)
(* Paper reference data                                                *)

let test_paper_data () =
  check int_t "table 1 rows" 11 (List.length Paper.table1);
  check int_t "totals" Paper.total_runs
    (Paper.table7_completed.Paper.runs + Paper.table7_truncated.Paper.runs);
  check bool_t "percentages sum to 100" true
    (abs_float
       (Paper.table7_completed.Paper.pct +. Paper.table7_truncated.Paper.pct
        -. 100.0)
     < 0.01)

(* ------------------------------------------------------------------ *)
(* Ablation and experiment drivers (smoke, small sizes)                *)

let test_ablation_smoke () =
  let rows = Ablation.run ~seed:1 ~count:20 ~lambda:5_000 machine in
  check int_t "all configs" 9 (List.length rows);
  List.iter
    (fun r ->
      check bool_t "pct in range" true
        (r.Ablation.completed_pct >= 0.0 && r.Ablation.completed_pct <= 100.0))
    rows;
  (* Paper mode must complete more than the no-alpha-beta config. *)
  let pct label =
    (List.find (fun r -> r.Ablation.label = label) rows)
      .Ablation.completed_pct
  in
  check bool_t "alpha-beta is essential" true
    (pct "paper (all prunings, list seed)"
     >= pct "- alpha-beta pruning [6]")

let test_experiments_printers_smoke () =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let study = Experiments.run_study ~seed:5 ~count:40 () in
  Experiments.print_machines fmt;
  Experiments.print_table6 fmt;
  Experiments.print_table7 fmt study;
  Experiments.print_fig1 fmt study;
  Experiments.print_fig4 fmt study;
  Experiments.print_fig5 fmt study;
  Experiments.print_fig6 fmt study;
  Experiments.print_fig7 fmt study;
  Experiments.print_kernel_study fmt;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length out in
        let rec go i =
          i + n <= h && (String.sub out i n = needle || go (i + 1))
        in
        go 0
      in
      check bool_t ("output mentions " ^ needle) true contains)
    [ "Table 7"; "Figure 1"; "Figure 4"; "Figure 5"; "Figure 6"; "Figure 7";
      "loader"; "multiplier"; "Operators"; "dot4"; "horner4" ]

let test_omega_cost_positive () =
  let c = Experiments.omega_cost () in
  check bool_t "positive and sane" true (c > 0.0 && c < 0.01)

(* ------------------------------------------------------------------ *)
(* Streaming aggregate                                                 *)

module Budget = Pipesched_prelude.Budget
module Json = Pipesched_prelude.Json

(* A synthetic record: the aggregate only reads fields, so literals keep
   the units under test explicit. *)
let mk_record ?(size = 10) ?(status = Budget.Complete) ?(time_s = 1e-3) () =
  {
    Study.size;
    initial_nops = 3;
    final_nops = 1;
    omega_calls = 100;
    schedules_completed = 2;
    memo_hits = 5;
    completed = status = Budget.Complete;
    status;
    time_s;
    unique = true;
  }

let test_agg_counters () =
  let a = Aggregate.create () in
  Aggregate.add_record a ~hash:1 (mk_record ~size:4 ());
  Aggregate.add_record a ~hash:2
    (mk_record ~size:30 ~status:Budget.Curtailed_lambda ());
  Aggregate.add_record a ~hash:1 ~from_cache:true (mk_record ~size:4 ());
  Aggregate.add_failure a;
  check int_t "blocks counts records and failures" 4 (Aggregate.blocks a);
  check int_t "failed" 1 (Aggregate.failed a);
  check int_t "completed" 2 (Aggregate.completed a);
  check int_t "dedup hits" 1 (Aggregate.dedup_hits a);
  let j = Aggregate.deterministic_json a in
  let geti k = Option.bind (Json.member k j) Json.to_int_opt in
  check bool_t "curtailed_lambda in render" true
    (geti "curtailed_lambda" = Some 1);
  check bool_t "sum_size adds every record" true (geti "sum_size" = Some 38);
  check bool_t "min/max size" true
    (geti "min_size" = Some 4 && geti "max_size" = Some 30);
  check bool_t "dedup hits excluded from render" true
    (Json.member "dedup_hits" j = None);
  (* Two distinct canonical hashes seen (hash 1 twice). *)
  check bool_t "distinct estimate exact below sketch capacity" true
    (Aggregate.distinct_estimate a = 2.0)

let test_agg_render_invariants () =
  (* from_cache and wall time may differ run to run and shard to shard;
     the byte-identity artifact must not see them. *)
  let a = Aggregate.create () and b = Aggregate.create () in
  Aggregate.add_record a ~hash:7 (mk_record ~time_s:0.5 ());
  Aggregate.add_record b ~hash:7 ~from_cache:true (mk_record ~time_s:0.002 ());
  check bool_t "render blind to from_cache and time" true
    (String.equal (Aggregate.render a) (Aggregate.render b));
  check bool_t "sum_time_s still tracked outside render" true
    (Aggregate.sum_time_s a = 0.5)

let agg_partition_invariance =
  qtest ~count:100 "merged shard aggregates render like the serial fold"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60)
           (pair (int_range 1 40) (int_bound 20)))
        (int_range 1 5))
    (fun (xs, k) -> Printf.sprintf "%d records, %d shards" (List.length xs) k)
    (fun (xs, shards) ->
      let statuses =
        [| Budget.Complete; Budget.Curtailed_lambda; Budget.Curtailed_deadline;
           Budget.Cancelled |]
      in
      let fold agg (size, h) =
        Aggregate.add_record agg ~hash:(Hashtbl.hash h)
          (mk_record ~size ~status:statuses.(h mod 4) ())
      in
      let serial = Aggregate.create () in
      List.iter (fold serial) xs;
      let n = List.length xs in
      let merged = Aggregate.create () in
      for k = 0 to shards - 1 do
        let lo = k * n / shards and hi = (k + 1) * n / shards in
        let part = Aggregate.create () in
        List.iteri (fun i x -> if i >= lo && i < hi then fold part x) xs;
        Aggregate.merge_into ~dst:merged part
      done;
      String.equal (Aggregate.render serial) (Aggregate.render merged))

let test_agg_json_roundtrip () =
  let a = Aggregate.create () in
  for i = 1 to 400 do
    Aggregate.add_record a ~hash:(Hashtbl.hash i)
      ~from_cache:(i mod 7 = 0)
      (mk_record ~size:(1 + (i mod 37))
         ~status:(if i mod 11 = 0 then Budget.Curtailed_lambda else Budget.Complete)
         ~time_s:(float_of_int i *. 1e-4)
         ())
  done;
  Aggregate.add_failure a;
  match Aggregate.of_json (Aggregate.to_json a) with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok b ->
    check bool_t "render survives the round trip" true
      (String.equal (Aggregate.render a) (Aggregate.render b));
    check int_t "dedup hits survive" (Aggregate.dedup_hits a)
      (Aggregate.dedup_hits b);
    check bool_t "sum_time_s survives" true
      (abs_float (Aggregate.sum_time_s a -. Aggregate.sum_time_s b) < 1e-9);
    check bool_t "time quantiles survive" true
      (Aggregate.time_quantile a 0.5 = Aggregate.time_quantile b 0.5);
    (* Round-tripped state must keep folding identically. *)
    Aggregate.add_record a ~hash:99999 (mk_record ());
    Aggregate.add_record b ~hash:99999 (mk_record ());
    check bool_t "still mergeable after reload" true
      (String.equal (Aggregate.render a) (Aggregate.render b))

let test_agg_distinct_estimate () =
  let a = Aggregate.create () in
  (* 200 distinct hashes, each seen 5 times: exact below the sketch's
     256-value capacity. *)
  for round = 1 to 5 do
    ignore round;
    for i = 1 to 200 do
      Aggregate.add_record a ~hash:(Hashtbl.hash (i * 7919)) (mk_record ())
    done
  done;
  check bool_t "exact below capacity" true
    (Aggregate.distinct_estimate a = 200.0);
  (* 20000 distinct hashes: the KMV estimate should land within 20%. *)
  let b = Aggregate.create () in
  for i = 1 to 20_000 do
    Aggregate.add_record b ~hash:(Hashtbl.hash (i * 31 + 17)) (mk_record ())
  done;
  let est = Aggregate.distinct_estimate b in
  check bool_t
    (Printf.sprintf "estimate %.0f within 20%% of 20000" est)
    true
    (est > 16_000.0 && est < 24_000.0)

let test_agg_time_quantile () =
  let a = Aggregate.create () in
  check bool_t "empty quantile is 0" true (Aggregate.time_quantile a 0.5 = 0.0);
  (* 90 fast blocks at ~100us, 10 slow at ~50ms: p50 must sit near the
     fast mode and p99 near the slow one (log-bucket resolution). *)
  for _ = 1 to 90 do
    Aggregate.add_record a ~hash:1 (mk_record ~time_s:1e-4 ())
  done;
  for _ = 1 to 10 do
    Aggregate.add_record a ~hash:1 (mk_record ~time_s:5e-2 ())
  done;
  let p50 = Aggregate.time_quantile a 0.5 in
  let p99 = Aggregate.time_quantile a 0.99 in
  check bool_t (Printf.sprintf "p50 %.2e near 1e-4" p50) true
    (p50 > 3e-5 && p50 < 3e-4);
  check bool_t (Printf.sprintf "p99 %.2e near 5e-2" p99) true
    (p99 > 1.5e-2 && p99 < 1.5e-1);
  check bool_t "monotone" true (p50 <= p99)

(* ------------------------------------------------------------------ *)
(* Mega checkpoints                                                    *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pipesched_mega_test_%d_%d" (Unix.getpid ())
         (Hashtbl.hash (Unix.gettimeofday ())))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (try Sys.readdir dir with _ -> [||]);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let test_mega_checkpoint_roundtrip () =
  with_temp_dir (fun dir ->
      let cfg = { Mega.default with Mega.count = 100; checkpoint_dir = dir } in
      let agg = Aggregate.create () in
      for i = 1 to 30 do
        Aggregate.add_record agg ~hash:(Hashtbl.hash i) (mk_record ())
      done;
      Mega.write_checkpoint cfg ~shard:0 ~done_blocks:30 ~rss0_kb:1000 agg;
      (match Mega.read_checkpoint cfg ~shard:0 with
      | None -> Alcotest.fail "checkpoint did not read back"
      | Some (done_blocks, rss0, _rss, agg') ->
        check int_t "done" 30 done_blocks;
        check int_t "rss0" 1000 rss0;
        check bool_t "aggregate bytes survive" true
          (String.equal (Aggregate.render agg) (Aggregate.render agg')));
      check bool_t "absent shard reads None" true
        (Mega.read_checkpoint cfg ~shard:1 = None);
      (* A config that defines a different corpus must reject the
         checkpoint (stale files are ignored, not misapplied). *)
      check bool_t "fingerprint mismatch rejected" true
        (Mega.read_checkpoint { cfg with Mega.seed = cfg.Mega.seed + 1 }
           ~shard:0
         = None);
      check bool_t "fingerprint ignores result-transparent knobs" true
        (Mega.read_checkpoint
           { cfg with Mega.jobs = 8; dedup_capacity = 1; checkpoint_every = 7 }
           ~shard:0
         <> None);
      (* Corruption is detected, never parsed into a shard state. *)
      let oc = open_out (Mega.checkpoint_path cfg 0) in
      output_string oc "{ not json";
      close_out oc;
      check bool_t "corrupt checkpoint rejected" true
        (Mega.read_checkpoint cfg ~shard:0 = None))

let test_mega_validate () =
  Alcotest.check_raises "shards >= 1"
    (Invalid_argument "Mega: shards must be >= 1") (fun () ->
      Mega.run ~resume:false { Mega.default with Mega.shards = 0 } |> ignore);
  Alcotest.check_raises "unknown preset"
    (Invalid_argument "Mega: unknown machine preset \"no-such\"") (fun () ->
      Mega.run ~resume:false { Mega.default with Mega.machine = "no-such" }
      |> ignore);
  (* Shard ranges partition [0, count) exactly, whatever the division
     remainder. *)
  List.iter
    (fun (count, shards) ->
      let cfg = { Mega.default with Mega.count = count; shards } in
      let ranges = List.init shards (Mega.shard_range cfg) in
      let total =
        List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges
      in
      check int_t
        (Printf.sprintf "%d blocks over %d shards" count shards)
        count total;
      ignore
        (List.fold_left
           (fun prev (lo, hi) ->
             check int_t "contiguous" prev lo;
             hi)
           0 ranges))
    [ (100, 3); (7, 4); (1, 1); (0, 2); (1000, 7) ]

(* ------------------------------------------------------------------ *)
(* Keyed histograms                                                    *)

let test_timehist_count () =
  let h = Aggregate.Timehist.create () in
  check int_t "empty" 0 (Aggregate.Timehist.count h);
  List.iter (Aggregate.Timehist.add h) [ 1e-4; 2e-3; 5e-2; 0.7 ];
  check int_t "counts adds" 4 (Aggregate.Timehist.count h);
  check bool_t "quantile within range" true
    (let q = Aggregate.Timehist.quantile h 0.5 in
     q >= 1e-4 && q <= 0.7 *. 2.0)

let test_keyed_histogram () =
  let k = Aggregate.Keyed.create () in
  check bool_t "no keys" true (Aggregate.Keyed.keys k = []);
  check int_t "missing key count" 0 (Aggregate.Keyed.count k "hit");
  check bool_t "missing key quantile" true
    (Aggregate.Keyed.quantile k "hit" 0.5 = 0.0);
  List.iter (Aggregate.Keyed.add k "hit") [ 1e-4; 2e-4; 3e-4 ];
  Aggregate.Keyed.add k "fresh" 0.1;
  check bool_t "keys sorted" true
    (Aggregate.Keyed.keys k = [ "fresh"; "hit" ]);
  check int_t "per-key count" 3 (Aggregate.Keyed.count k "hit");
  check int_t "total" 4 (Aggregate.Keyed.total k);
  check bool_t "stages separated" true
    (Aggregate.Keyed.quantile k "fresh" 0.5
    > Aggregate.Keyed.quantile k "hit" 0.5)

(* Merging per-connection scorecards must agree with one serial fold —
   the property the --conns N client relies on. *)
let test_keyed_merge_partition_invariance () =
  let rng = Rng.create 0x4a11 in
  let samples =
    List.init 500 (fun _ ->
        ( (if Rng.bool rng then "hit" else "fresh"),
          1e-5 *. float_of_int (1 + Rng.int rng 100_000) ))
  in
  let serial = Aggregate.Keyed.create () in
  List.iter (fun (k, v) -> Aggregate.Keyed.add serial k v) samples;
  let merged = Aggregate.Keyed.create () in
  let parts = Array.init 4 (fun _ -> Aggregate.Keyed.create ()) in
  List.iteri
    (fun i (k, v) -> Aggregate.Keyed.add parts.(i mod 4) k v)
    samples;
  Array.iter (fun p -> Aggregate.Keyed.merge_into ~dst:merged p) parts;
  check bool_t "same keys" true
    (Aggregate.Keyed.keys serial = Aggregate.Keyed.keys merged);
  check int_t "same total" (Aggregate.Keyed.total serial)
    (Aggregate.Keyed.total merged);
  List.iter
    (fun key ->
      List.iter
        (fun q ->
          check bool_t
            (Printf.sprintf "%s q%.2f agrees" key q)
            true
            (Aggregate.Keyed.quantile serial key q
            = Aggregate.Keyed.quantile merged key q))
        [ 0.5; 0.9; 0.99 ])
    (Aggregate.Keyed.keys serial)

(* ------------------------------------------------------------------ *)
(* Loadgen                                                             *)

let test_loadgen_plan_deterministic () =
  let mk seed =
    Loadgen.plan ~dup_rate:0.5 ~seed ~shape:Loadgen.Ramp ~rps:16.0
      ~duration:2.0 ()
  in
  let a = mk 7 and b = mk 7 and c = mk 8 in
  check bool_t "same seed, identical stream" true
    (a.Loadgen.requests = b.Loadgen.requests);
  check bool_t "different seed, different stream" true
    (c.Loadgen.requests <> a.Loadgen.requests)

let test_loadgen_shapes () =
  List.iter
    (fun shape ->
      let p =
        Loadgen.plan ~dup_rate:0.3 ~seed:11 ~shape ~rps:10.0 ~duration:2.0 ()
      in
      let n = Array.length p.Loadgen.requests in
      check bool_t
        (Loadgen.shape_to_string shape ^ " generates traffic")
        true (n > 0);
      Array.iteri
        (fun i (r : Loadgen.request) ->
          check int_t "index is position" i r.Loadgen.index;
          check bool_t "times non-decreasing" true
            (i = 0
            || r.Loadgen.time
               >= p.Loadgen.requests.(i - 1).Loadgen.time))
        p.Loadgen.requests;
      (* Round-trip the name too. *)
      check bool_t "shape name round-trips" true
        (Loadgen.shape_of_string (Loadgen.shape_to_string shape) = Ok shape))
    [ Loadgen.Burst; Loadgen.Soak; Loadgen.Ramp; Loadgen.Mix ];
  check bool_t "unknown shape rejected" true
    (match Loadgen.shape_of_string "nope" with
    | Error _ -> true
    | Ok _ -> false)

let test_loadgen_classify () =
  let stage = Alcotest.testable (Fmt.of_to_string Loadgen.stage_to_string) ( = ) in
  let chk name want line = check stage name want (Loadgen.classify line) in
  chk "unparsable" Loadgen.Error "{nope";
  chk "refusal" Loadgen.Error
    "{\"id\":null,\"ok\":false,\"error\":\"shutting down\"}";
  chk "curtailed" Loadgen.Curtailed
    "{\"id\":0,\"ok\":true,\"completed\":false}";
  chk "hit" Loadgen.Hit
    "{\"id\":0,\"ok\":true,\"completed\":true,\"cached\":true}";
  chk "fresh detail" Loadgen.Fresh
    "{\"id\":0,\"ok\":true,\"completed\":true,\"cached\":false}";
  chk "fresh no detail" Loadgen.Fresh "{\"id\":0,\"ok\":true,\"completed\":true}";
  chk "degraded outranks curtailed" Loadgen.Degraded
    "{\"id\":0,\"ok\":true,\"completed\":false,\"degraded\":true}";
  chk "overload refusal" Loadgen.Rejected
    "{\"id\":0,\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":3}"

let test_loadgen_retry_policy () =
  check bool_t "overloaded is retryable" true
    (Loadgen.retryable
       "{\"id\":0,\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":3}");
  check bool_t "contained internal error is retryable" true
    (Loadgen.retryable
       "{\"id\":0,\"ok\":false,\"error\":\"internal error: Injected\"}");
  check bool_t "permanent error is not" false
    (Loadgen.retryable "{\"id\":0,\"ok\":false,\"error\":\"empty block\"}");
  check bool_t "success is not" false
    (Loadgen.retryable "{\"id\":0,\"ok\":true,\"completed\":true}");
  (* The retry marker is added, replaced, and parseable. *)
  let line = "{\"id\":4,\"machine\":\"simulation\",\"block\":\"1: Load #a\"}" in
  let r1 = Loadgen.retry_line line ~attempt:1 in
  let r2 = Loadgen.retry_line r1 ~attempt:2 in
  let retry_of l =
    match Pipesched_prelude.Json.parse l with
    | Ok j -> Pipesched_prelude.Json.member "retry" j
    | Error msg -> Alcotest.failf "retry_line unparsable: %s" msg
  in
  check bool_t "attempt 1 marked" true
    (retry_of r1 = Some (Pipesched_prelude.Json.Int 1));
  check bool_t "attempt 2 replaces, not stacks" true
    (retry_of r2 = Some (Pipesched_prelude.Json.Int 2));
  check bool_t "distinct bytes per attempt" true (r1 <> r2 && r1 <> line);
  (* Backoff: deterministic, exponential in the attempt, jitter-bounded. *)
  let d ~index ~attempt =
    Loadgen.backoff_delay_s ~seed:9 ~index ~attempt ~backoff_ms:100
  in
  check bool_t "replayable" true (d ~index:3 ~attempt:1 = d ~index:3 ~attempt:1);
  check bool_t "requests de-synchronized" true
    (d ~index:3 ~attempt:1 <> d ~index:4 ~attempt:1);
  List.iter
    (fun attempt ->
      let base = 0.1 *. (2.0 ** float_of_int (attempt - 1)) in
      let v = d ~index:0 ~attempt in
      check bool_t
        (Printf.sprintf "attempt %d within jitter band" attempt)
        true
        (v >= 0.5 *. base && v < 1.5 *. base))
    [ 1; 2; 3; 4 ]

(* Chaos determinism, the harness half: replaying one plan against two
   fresh servers with the same armed fault spec produces byte-identical
   deterministic reports, faults land (errors without degrade, degraded
   answers with it), and every request still gets exactly one terminal
   outcome. *)
let test_loadgen_chaos_deterministic () =
  let module Server = Pipesched_serve.Server in
  let module Fault = Pipesched_prelude.Fault in
  let plan =
    Loadgen.plan ~hot:4 ~dup_rate:0.4 ~seed:33 ~shape:Loadgen.Soak ~rps:20.0
      ~duration:2.0 ()
  in
  let n = Array.length plan.Loadgen.requests in
  let replay ~degrade () =
    Fault.arm [ (Fault.Solver, 0.2, 5) ];
    Fun.protect ~finally:Fault.disarm (fun () ->
        let server = Server.create ~cache_capacity:256 ~degrade () in
        let r =
          Loadgen.run_sync
            ~handle:(fun line -> Some (Server.handle_line server line))
            plan
        in
        (r, Server.contained server, Server.degraded_served server))
  in
  let det rep =
    Pipesched_prelude.Json.to_string (Loadgen.report_deterministic_json rep)
  in
  let r1, contained1, _ = replay ~degrade:false () in
  let r2, contained2, _ = replay ~degrade:false () in
  check bool_t "faults actually landed" true (r1.Loadgen.r_errors > 0);
  check bool_t "containment counted" true (contained1 > 0);
  check bool_t "chaos replay is byte-identical" true
    (String.equal (det r1) (det r2));
  check bool_t "containment replays too" true (contained1 = contained2);
  check int_t "one terminal outcome per request" n
    (r1.Loadgen.r_hits + r1.Loadgen.r_fresh + r1.Loadgen.r_curtailed
   + r1.Loadgen.r_degraded + r1.Loadgen.r_rejected + r1.Loadgen.r_errors
   + r1.Loadgen.r_drops);
  (* Same faults, degrading server: failures become degraded answers. *)
  let r3, contained3, degraded3 = replay ~degrade:true () in
  check int_t "no errors under degrade" 0 r3.Loadgen.r_errors;
  check bool_t "degraded answers instead" true
    (r3.Loadgen.r_degraded > 0 && degraded3 = r3.Loadgen.r_degraded);
  check bool_t "same faults either way" true (contained3 = contained1);
  check int_t "still one terminal outcome per request" n
    (r3.Loadgen.r_hits + r3.Loadgen.r_fresh + r3.Loadgen.r_curtailed
   + r3.Loadgen.r_degraded + r3.Loadgen.r_rejected + r3.Loadgen.r_errors
   + r3.Loadgen.r_drops)

(* Replay one plan serially against an in-process server: everything
   answers, duplicates hit the cache, and the deterministic report is
   byte-stable across fresh servers. *)
let test_loadgen_run_sync_server () =
  let module Server = Pipesched_serve.Server in
  let plan =
    Loadgen.plan ~hot:4 ~lambda:50_000 ~dup_rate:0.85 ~seed:21
      ~shape:Loadgen.Mix ~rps:15.0 ~duration:2.0 ()
  in
  let replay () =
    let server = Server.create ~cache_capacity:256 () in
    Loadgen.run_sync
      ~handle:(fun line -> Some (Server.handle_line server line))
      plan
  in
  let r = replay () in
  check int_t "no errors" 0 r.Loadgen.r_errors;
  check int_t "no drops" 0 r.Loadgen.r_drops;
  check int_t "everything answered"
    (Array.length plan.Loadgen.requests)
    (r.Loadgen.r_hits + r.Loadgen.r_fresh + r.Loadgen.r_curtailed);
  check bool_t "duplicates hit the cache" true (r.Loadgen.r_hit_rate > 0.5);
  check bool_t "fresh solves happened" true (r.Loadgen.r_fresh > 0);
  let deterministic rep =
    Pipesched_prelude.Json.to_string (Loadgen.report_deterministic_json rep)
  in
  check bool_t "deterministic report is replay-stable" true
    (String.equal (deterministic r) (deterministic (replay ())));
  (* The full report parses and carries the wall-clock fields. *)
  match
    Pipesched_prelude.Json.parse
      (Pipesched_prelude.Json.to_string (Loadgen.report_json r))
  with
  | Error msg -> Alcotest.failf "report_json unparsable: %s" msg
  | Ok j ->
    check bool_t "has wall_s" true
      (Pipesched_prelude.Json.member "wall_s" j <> None);
    check bool_t "has stages" true
      (Pipesched_prelude.Json.member "stages" j <> None)

let () =
  Alcotest.run "harness"
    [ ( "stats",
        [ Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          percentile_sorted_invariant;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "study",
        [ Alcotest.test_case "run_block record" `Quick test_run_block_record;
          Alcotest.test_case "deterministic" `Quick
            test_study_deterministic_results;
          Alcotest.test_case "dedup sound" `Quick test_study_dedup_sound;
          Alcotest.test_case "run_dedup fanout" `Quick test_run_dedup_fanout;
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "by_size" `Quick test_by_size ] );
      ( "aggregate",
        [ Alcotest.test_case "counter units" `Quick test_agg_counters;
          Alcotest.test_case "render invariants" `Quick
            test_agg_render_invariants;
          agg_partition_invariance;
          Alcotest.test_case "json round trip" `Quick test_agg_json_roundtrip;
          Alcotest.test_case "distinct estimate" `Quick
            test_agg_distinct_estimate;
          Alcotest.test_case "time quantile" `Quick test_agg_time_quantile ] );
      ( "mega",
        [ Alcotest.test_case "checkpoint round trip" `Quick
            test_mega_checkpoint_roundtrip;
          Alcotest.test_case "validate and shard ranges" `Quick
            test_mega_validate ] );
      ( "keyed",
        [ Alcotest.test_case "timehist count" `Quick test_timehist_count;
          Alcotest.test_case "keyed histogram" `Quick test_keyed_histogram;
          Alcotest.test_case "merge partition invariance" `Quick
            test_keyed_merge_partition_invariance ] );
      ( "loadgen",
        [ Alcotest.test_case "plan deterministic" `Quick
            test_loadgen_plan_deterministic;
          Alcotest.test_case "shapes" `Quick test_loadgen_shapes;
          Alcotest.test_case "classify" `Quick test_loadgen_classify;
          Alcotest.test_case "retry policy" `Quick test_loadgen_retry_policy;
          Alcotest.test_case "chaos deterministic" `Quick
            test_loadgen_chaos_deterministic;
          Alcotest.test_case "run_sync vs server" `Quick
            test_loadgen_run_sync_server ] );
      ( "paper",
        [ Alcotest.test_case "reference data" `Quick test_paper_data ] );
      ( "drivers",
        [ Alcotest.test_case "ablation smoke" `Quick test_ablation_smoke;
          Alcotest.test_case "experiment printers" `Quick
            test_experiments_printers_smoke;
          Alcotest.test_case "omega cost" `Quick test_omega_cost_positive ]
      ) ]
