(* Tests for Pipesched_synth: Frequency and Generator. *)

open Pipesched_ir
open Pipesched_frontend
open Pipesched_synth
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Frequency                                                           *)

let test_default_valid () =
  ignore (Frequency.check Frequency.default);
  ignore (Frequency.check Frequency.mul_heavy)

let test_check_rejects () =
  Alcotest.check_raises "empty ops"
    (Invalid_argument "Frequency.check: op weights must have positive total")
    (fun () ->
      ignore
        (Frequency.check { Frequency.default with Frequency.op_weights = [] }));
  Alcotest.check_raises "non-binary op"
    (Invalid_argument "Frequency.check: not a binary operator: Load")
    (fun () ->
      ignore
        (Frequency.check
           { Frequency.default with
             Frequency.op_weights = [ (1, Op.Load) ] }))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let test_determinism () =
  let p = { Generator.statements = 10; variables = 4; constants = 3 } in
  let b1 = Generator.block (Rng.create 5) p in
  let b2 = Generator.block (Rng.create 5) p in
  check bool_t "same seed, same block" true (Block.equal b1 b2);
  let b3 = Generator.block (Rng.create 6) p in
  check bool_t "different seed differs" true (not (Block.equal b1 b3))

let test_respects_parameters () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let p =
      { Generator.statements = 1 + Rng.int rng 10;
        variables = 1 + Rng.int rng 5;
        constants = 1 + Rng.int rng 4 }
    in
    let prog = Generator.program rng p in
    check int_t "statement count" p.Generator.statements (List.length prog);
    let vars =
      List.sort_uniq compare
        (Ast.read_vars prog @ Ast.written_vars prog)
    in
    check bool_t "variable pool bound" true
      (List.length vars <= p.Generator.variables);
    List.iter
      (fun v -> check bool_t "pool naming" true (String.length v >= 2 && v.[0] = 'v'))
      vars
  done

let test_rejects_bad_params () =
  Alcotest.check_raises "zero statements"
    (Invalid_argument "Generator: parameters must be positive") (fun () ->
      ignore
        (Generator.program (Rng.create 1)
           { Generator.statements = 0; variables = 1; constants = 1 }))

let generated_blocks_valid =
  qtest ~count:200 "generated blocks are valid and nonempty"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Generator.sample_params rng in
      let blk = Generator.block rng p in
      Block.length blk > 0)

let generated_programs_compile_faithfully =
  qtest ~count:200 "generated programs survive the full front end"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Generator.sample_params rng in
      let prog = Generator.program rng p in
      let blk = Compile.compile_program prog in
      let vars =
        List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)
      in
      Interp.equivalent_on prog blk ~env:(env_of_seed 6) ~vars)

let test_op_mix_follows_frequency () =
  (* With the mul-heavy table, multiplies should clearly outnumber what
     the default table produces. *)
  let count_muls freq seed =
    let rng = Rng.create seed in
    let total = ref 0 in
    for _ = 1 to 200 do
      let prog =
        Generator.program ~freq rng
          { Generator.statements = 10; variables = 5; constants = 3 }
      in
      let rec count_expr = function
        | Ast.Int _ | Ast.Var _ -> 0
        | Ast.Unop (_, e) -> count_expr e
        | Ast.Binop (op, e1, e2) ->
          (if op = Op.Mul then 1 else 0) + count_expr e1 + count_expr e2
      in
      List.iter
        (function
          | Ast.Assign (_, e) -> total := !total + count_expr e
          | Ast.If _ | Ast.While _ -> ())
        prog
    done;
    !total
  in
  let default = count_muls Frequency.default 3 in
  let heavy = count_muls Frequency.mul_heavy 3 in
  check bool_t "mul-heavy has more multiplies" true (heavy > default * 2)

let test_size_mix_shape () =
  (* The calibrated mix: mean optimized size near 20, spread past 40. *)
  let rng = Rng.create 2024 in
  let sizes =
    List.init 600 (fun _ ->
        Block.length (Generator.block rng (Generator.sample_params rng)))
  in
  let mean =
    float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int 600
  in
  check bool_t "mean near 20" true (mean > 15.0 && mean < 25.0);
  check bool_t "has large blocks" true (List.exists (fun s -> s > 35) sizes);
  check bool_t "has small blocks" true (List.exists (fun s -> s < 8) sizes)

let test_batch () =
  let blocks = Generator.batch (Rng.create 9) ~count:25 in
  check int_t "count" 25 (List.length blocks);
  let blocks' = Generator.batch (Rng.create 9) ~count:25 in
  check bool_t "deterministic" true
    (List.for_all2 Block.equal blocks blocks')

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)

let test_kernels_parse () =
  List.iter
    (fun (k : Kernels.t) ->
      match Parser.parse k.Kernels.source with
      | prog ->
        check bool_t (k.Kernels.name ^ " loopedness") k.Kernels.looped
          (not (Ast.straight_line prog))
      | exception Parser.Error msg ->
        Alcotest.failf "%s: %s" k.Kernels.name msg)
    Kernels.all;
  let names = List.map (fun k -> k.Kernels.name) Kernels.all in
  check bool_t "unique names" true
    (List.length names = List.length (List.sort_uniq compare names));
  check bool_t "find" true (Kernels.find "dot4" <> None);
  check bool_t "find missing" true (Kernels.find "nope" = None)

let test_kernels_compile_faithfully () =
  List.iter
    (fun ((k : Kernels.t), prog) ->
      let blk = Compile.compile_program prog in
      let vars =
        List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)
      in
      check bool_t (k.Kernels.name ^ " faithful") true
        (Interp.equivalent_on prog blk ~env:(env_of_seed 27) ~vars))
    (Kernels.straight_line ())

let test_kernels_looped_run () =
  (* Positive inputs guarantee termination of the branchy kernels. *)
  let env v = 1 + (Hashtbl.hash v mod 7) in
  List.iter
    (fun (k : Kernels.t) ->
      if k.Kernels.looped then begin
        let prog = Parser.parse k.Kernels.source in
        let reference = Interp.run_program ~fuel:100_000 prog ~env in
        let cfg = Pipesched_cflow.Lower.lower prog in
        let got = Pipesched_cflow.Cfg.run ~fuel:100_000 cfg ~env in
        List.iter
          (fun (v, x) ->
            if v.[0] <> '$' then
              check bool_t
                (Printf.sprintf "%s: %s" k.Kernels.name v)
                true
                (Option.value ~default:(env v) (List.assoc_opt v got) = x))
          reference
      end)
    Kernels.all

let () =
  Alcotest.run "synth"
    [ ( "frequency",
        [ Alcotest.test_case "defaults valid" `Quick test_default_valid;
          Alcotest.test_case "check rejects" `Quick test_check_rejects ] );
      ( "generator",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "respects parameters" `Quick
            test_respects_parameters;
          Alcotest.test_case "rejects bad parameters" `Quick
            test_rejects_bad_params;
          generated_blocks_valid;
          generated_programs_compile_faithfully;
          Alcotest.test_case "op mix follows frequency" `Quick
            test_op_mix_follows_frequency;
          Alcotest.test_case "size mix shape" `Quick test_size_mix_shape;
          Alcotest.test_case "batch" `Quick test_batch ] );
      ( "kernels",
        [ Alcotest.test_case "parse" `Quick test_kernels_parse;
          Alcotest.test_case "compile faithfully" `Quick
            test_kernels_compile_faithfully;
          Alcotest.test_case "looped kernels run" `Quick
            test_kernels_looped_run ] ) ]
