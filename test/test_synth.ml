(* Tests for Pipesched_synth: Frequency and Generator. *)

open Pipesched_ir
open Pipesched_frontend
open Pipesched_synth
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Frequency                                                           *)

let test_default_valid () =
  ignore (Frequency.check Frequency.default);
  ignore (Frequency.check Frequency.mul_heavy)

let test_check_rejects () =
  Alcotest.check_raises "empty ops"
    (Invalid_argument "Frequency.check: op weights must have positive total")
    (fun () ->
      ignore
        (Frequency.check { Frequency.default with Frequency.op_weights = [] }));
  Alcotest.check_raises "non-binary op"
    (Invalid_argument "Frequency.check: not a binary operator: Load")
    (fun () ->
      ignore
        (Frequency.check
           { Frequency.default with
             Frequency.op_weights = [ (1, Op.Load) ] }))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let test_determinism () =
  let p = { Generator.statements = 10; variables = 4; constants = 3 } in
  let b1 = Generator.block (Rng.create 5) p in
  let b2 = Generator.block (Rng.create 5) p in
  check bool_t "same seed, same block" true (Block.equal b1 b2);
  let b3 = Generator.block (Rng.create 6) p in
  check bool_t "different seed differs" true (not (Block.equal b1 b3))

let test_respects_parameters () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let p =
      { Generator.statements = 1 + Rng.int rng 10;
        variables = 1 + Rng.int rng 5;
        constants = 1 + Rng.int rng 4 }
    in
    let prog = Generator.program rng p in
    check int_t "statement count" p.Generator.statements (List.length prog);
    let vars =
      List.sort_uniq compare
        (Ast.read_vars prog @ Ast.written_vars prog)
    in
    check bool_t "variable pool bound" true
      (List.length vars <= p.Generator.variables);
    List.iter
      (fun v -> check bool_t "pool naming" true (String.length v >= 2 && v.[0] = 'v'))
      vars
  done

let test_rejects_bad_params () =
  Alcotest.check_raises "zero statements"
    (Invalid_argument "Generator: parameters must be positive") (fun () ->
      ignore
        (Generator.program (Rng.create 1)
           { Generator.statements = 0; variables = 1; constants = 1 }))

let generated_blocks_valid =
  qtest ~count:200 "generated blocks are valid and nonempty"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Generator.sample_params rng in
      let blk = Generator.block rng p in
      Block.length blk > 0)

let generated_programs_compile_faithfully =
  qtest ~count:200 "generated programs survive the full front end"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Generator.sample_params rng in
      let prog = Generator.program rng p in
      let blk = Compile.compile_program prog in
      let vars =
        List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)
      in
      Interp.equivalent_on prog blk ~env:(env_of_seed 6) ~vars)

let test_op_mix_follows_frequency () =
  (* With the mul-heavy table, multiplies should clearly outnumber what
     the default table produces. *)
  let count_muls freq seed =
    let rng = Rng.create seed in
    let total = ref 0 in
    for _ = 1 to 200 do
      let prog =
        Generator.program ~freq rng
          { Generator.statements = 10; variables = 5; constants = 3 }
      in
      let rec count_expr = function
        | Ast.Int _ | Ast.Var _ -> 0
        | Ast.Unop (_, e) -> count_expr e
        | Ast.Binop (op, e1, e2) ->
          (if op = Op.Mul then 1 else 0) + count_expr e1 + count_expr e2
      in
      List.iter
        (function
          | Ast.Assign (_, e) -> total := !total + count_expr e
          | Ast.If _ | Ast.While _ -> ())
        prog
    done;
    !total
  in
  let default = count_muls Frequency.default 3 in
  let heavy = count_muls Frequency.mul_heavy 3 in
  check bool_t "mul-heavy has more multiplies" true (heavy > default * 2)

let test_size_mix_shape () =
  (* The calibrated mix: mean optimized size near 20, spread past 40. *)
  let rng = Rng.create 2024 in
  let sizes =
    List.init 600 (fun _ ->
        Block.length (Generator.block rng (Generator.sample_params rng)))
  in
  let mean =
    float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int 600
  in
  check bool_t "mean near 20" true (mean > 15.0 && mean < 25.0);
  check bool_t "has large blocks" true (List.exists (fun s -> s > 35) sizes);
  check bool_t "has small blocks" true (List.exists (fun s -> s < 8) sizes)

let test_batch () =
  let blocks = Generator.batch (Rng.create 9) ~count:25 in
  check int_t "count" 25 (List.length blocks);
  let blocks' = Generator.batch (Rng.create 9) ~count:25 in
  check bool_t "deterministic" true
    (List.for_all2 Block.equal blocks blocks')

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)

let test_kernels_parse () =
  List.iter
    (fun (k : Kernels.t) ->
      match Parser.parse k.Kernels.source with
      | prog ->
        check bool_t (k.Kernels.name ^ " loopedness") k.Kernels.looped
          (not (Ast.straight_line prog))
      | exception Parser.Error msg ->
        Alcotest.failf "%s: %s" k.Kernels.name msg)
    Kernels.all;
  let names = List.map (fun k -> k.Kernels.name) Kernels.all in
  check bool_t "unique names" true
    (List.length names = List.length (List.sort_uniq compare names));
  check bool_t "find" true (Kernels.find "dot4" <> None);
  check bool_t "find missing" true (Kernels.find "nope" = None)

let test_kernels_compile_faithfully () =
  List.iter
    (fun ((k : Kernels.t), prog) ->
      let blk = Compile.compile_program prog in
      let vars =
        List.sort_uniq compare (Ast.read_vars prog @ Ast.written_vars prog)
      in
      check bool_t (k.Kernels.name ^ " faithful") true
        (Interp.equivalent_on prog blk ~env:(env_of_seed 27) ~vars))
    (Kernels.straight_line ())

let test_kernels_looped_run () =
  (* Positive inputs guarantee termination of the branchy kernels. *)
  let env v = 1 + (Hashtbl.hash v mod 7) in
  List.iter
    (fun (k : Kernels.t) ->
      if k.Kernels.looped then begin
        let prog = Parser.parse k.Kernels.source in
        let reference = Interp.run_program ~fuel:100_000 prog ~env in
        let cfg = Pipesched_cflow.Lower.lower prog in
        let got = Pipesched_cflow.Cfg.run ~fuel:100_000 cfg ~env in
        List.iter
          (fun (v, x) ->
            if v.[0] <> '$' then
              check bool_t
                (Printf.sprintf "%s: %s" k.Kernels.name v)
                true
                (Option.value ~default:(env v) (List.assoc_opt v got) = x))
          reference
      end)
    Kernels.all

(* ------------------------------------------------------------------ *)
(* Schedule combinators                                                *)

let take_events ~seed n s = List.of_seq (Seq.take n (Schedule.events ~seed s))
let times es = List.map (fun e -> e.Schedule.time) es
let payloads es = List.map (fun e -> e.Schedule.payload) es
let float_list_t = Alcotest.(list (float 0.0))

let test_schedule_determinism () =
  let s =
    Schedule.mix
      [ Schedule.every ~period:1.0 Rng.bits;
        Schedule.delayed 0.5 (Schedule.limited 20 (Schedule.every ~period:2.0 Rng.bits)) ]
  in
  let a = take_events ~seed:11 50 s in
  let b = take_events ~seed:11 50 s in
  check bool_t "same seed, same events" true (a = b);
  let c = take_events ~seed:12 50 s in
  check bool_t "different seed, different payloads" true
    (payloads a <> payloads c);
  (* Forcing is pure: a partial earlier forcing never perturbs a later
     full one. *)
  Schedule.iter ~seed:11 ~limit:7 ignore s;
  check bool_t "forcing twice is stable" true (take_events ~seed:11 50 s = a)

let test_schedule_limited_drop_laws () =
  let s = Schedule.every ~period:1.0 Rng.bits in
  let whole = take_events ~seed:3 30 s in
  (* [limited] is a prefix of the same stream, [drop] the rest: slicing
     commutes with generation (no reseeding on either side). *)
  check bool_t "limited = prefix" true
    (take_events ~seed:3 30 (Schedule.limited 10 s)
     = (List.filteri (fun i _ -> i < 10) whole));
  check bool_t "drop = suffix" true
    (take_events ~seed:3 20 (Schedule.drop 10 s)
     = List.filteri (fun i _ -> i >= 10) whole);
  check bool_t "limited of limited = min" true
    (take_events ~seed:3 30 (Schedule.limited 7 (Schedule.limited 10 s))
     = take_events ~seed:3 30 (Schedule.limited 7 s));
  check int_t "limited 0 is empty" 0
    (List.length (take_events ~seed:3 5 (Schedule.limited 0 s)));
  Alcotest.check_raises "negative limited"
    (Invalid_argument "Schedule.limited: negative count") (fun () ->
      ignore (Schedule.limited (-1) s))

let test_schedule_delayed_law () =
  let s = Schedule.limited 10 (Schedule.every ~period:1.0 Rng.bits) in
  let base = take_events ~seed:9 10 s in
  let shifted = take_events ~seed:9 10 (Schedule.delayed 4.0 s) in
  check float_list_t "times shift by the delay"
    (List.map (fun t -> t +. 4.0) (times base))
    (times shifted);
  check bool_t "payloads unchanged" true (payloads base = payloads shifted);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Schedule.delayed: negative delay") (fun () ->
      ignore (Schedule.delayed (-1.0) s))

let test_schedule_mix_laws () =
  check int_t "mix [] is empty" 0
    (List.length (take_events ~seed:1 5 (Schedule.mix [])));
  (* Left bias on ties: both singletons fire at t = 0. *)
  check bool_t "ties break toward the earlier stream" true
    (payloads (take_events ~seed:1 2 (Schedule.mix [ Schedule.pure "a"; Schedule.pure "b" ]))
     = [ "a"; "b" ]);
  (* Counts add and the merge is time-sorted. *)
  let a = Schedule.limited 10 (Schedule.every ~period:3.0 Rng.bits) in
  let b =
    Schedule.delayed 1.0 (Schedule.limited 15 (Schedule.every ~period:2.0 Rng.bits))
  in
  let merged = take_events ~seed:5 100 (Schedule.mix [ a; b ]) in
  check int_t "counts add" 25 (List.length merged);
  let rec sorted = function
    | e1 :: (e2 :: _ as rest) ->
      e1.Schedule.time <= e2.Schedule.time && sorted rest
    | _ -> true
  in
  check bool_t "time-sorted" true (sorted merged)

let test_schedule_periodic_shapes () =
  check float_list_t "every fires on the grid"
    [ 0.0; 2.0; 4.0; 6.0 ]
    (times (take_events ~seed:2 4 (Schedule.every ~period:2.0 Rng.bits)));
  check float_list_t "repeating shifts each copy"
    [ 0.0; 1.5; 3.0 ]
    (times (take_events ~seed:2 9 (Schedule.repeating 3 ~period:1.5 Schedule.(pure ()))));
  check int_t "burst fires all copies at once" 5
    (List.length (take_events ~seed:2 9 (Schedule.burst 5 Schedule.(pure ()))));
  check bool_t "burst times all zero" true
    (List.for_all (( = ) 0.0)
       (times (take_events ~seed:2 9 (Schedule.burst 5 Schedule.(pure ())))));
  (* soak 4/s for 2s = 8 copies, 0.25s apart. *)
  let soak = take_events ~seed:2 99 (Schedule.soak ~rate:4.0 ~duration:2.0 Schedule.(pure ())) in
  check int_t "soak count = rate * duration" 8 (List.length soak);
  check float_list_t "soak grid"
    [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 1.75 ]
    (times soak);
  (* ramp stages start back to back. *)
  let ramp =
    take_events ~seed:2 99
      (Schedule.ramp ~stages:[ (1.0, 2.0); (2.0, 1.0) ] Schedule.(pure ()))
  in
  check float_list_t "ramp stage boundaries"
    [ 0.0; 1.0; 2.0; 2.5 ]
    (times ramp);
  (* A uniformly empty inner schedule terminates rather than diverging. *)
  check int_t "periodic of empty is empty" 0
    (List.length (take_events ~seed:2 5 (Schedule.periodic ~period:1.0 Schedule.empty)))

let test_seed_at_pins_seeds_stream () =
  (* The O(1) contract the mega study and synthgen stand on: [seed_at]
     must equal the actual payload of event [i] of [seeds]. *)
  List.iter
    (fun seed ->
      let got = payloads (take_events ~seed 64 (Schedule.seeds ~count:64)) in
      let want = List.init 64 (fun i -> Schedule.seed_at ~seed i) in
      check bool_t (Printf.sprintf "seed_at pins seeds (root %d)" seed) true
        (got = want))
    [ 0; 1; 1990; 123456789 ]

let schedule_sharding_partitions =
  qtest ~count:100 "sharded generation partitions the serial corpus"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 40) (int_range 1 6))
    (fun (seed, count, shards) ->
      Printf.sprintf "seed=%d count=%d shards=%d" seed count shards)
    (fun (seed, count, shards) ->
      let serial = ref [] in
      Generator.stream ~seed ~start:0 ~count (fun i b -> serial := (i, b) :: !serial);
      let sharded = ref [] in
      for k = 0 to shards - 1 do
        let lo = k * count / shards and hi = (k + 1) * count / shards in
        Generator.stream ~seed ~start:lo ~count:(hi - lo) (fun i b ->
            sharded := (i, b) :: !sharded)
      done;
      List.for_all2
        (fun (i, b) (j, c) -> i = j && Block.equal b c)
        (List.rev !serial) (List.rev !sharded))

let schedule_drop_commutes =
  qtest ~count:100 "drop/limited slice = serial slice (seeds stream)"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 30) (int_bound 30))
    (fun (seed, lo, n) -> Printf.sprintf "seed=%d lo=%d n=%d" seed lo n)
    (fun (seed, lo, n) ->
      let s = Schedule.seeds ~count:(lo + n) in
      let whole = payloads (take_events ~seed (lo + n) s) in
      let slice =
        payloads (take_events ~seed n Schedule.(limited n (drop lo s)))
      in
      slice = List.filteri (fun i _ -> i >= lo) whole)

let () =
  Alcotest.run "synth"
    [ ( "frequency",
        [ Alcotest.test_case "defaults valid" `Quick test_default_valid;
          Alcotest.test_case "check rejects" `Quick test_check_rejects ] );
      ( "generator",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "respects parameters" `Quick
            test_respects_parameters;
          Alcotest.test_case "rejects bad parameters" `Quick
            test_rejects_bad_params;
          generated_blocks_valid;
          generated_programs_compile_faithfully;
          Alcotest.test_case "op mix follows frequency" `Quick
            test_op_mix_follows_frequency;
          Alcotest.test_case "size mix shape" `Quick test_size_mix_shape;
          Alcotest.test_case "batch" `Quick test_batch ] );
      ( "schedule",
        [ Alcotest.test_case "determinism" `Quick test_schedule_determinism;
          Alcotest.test_case "limited/drop laws" `Quick
            test_schedule_limited_drop_laws;
          Alcotest.test_case "delayed law" `Quick test_schedule_delayed_law;
          Alcotest.test_case "mix laws" `Quick test_schedule_mix_laws;
          Alcotest.test_case "periodic shapes" `Quick
            test_schedule_periodic_shapes;
          Alcotest.test_case "seed_at pins seeds" `Quick
            test_seed_at_pins_seeds_stream;
          schedule_sharding_partitions;
          schedule_drop_commutes ] );
      ( "kernels",
        [ Alcotest.test_case "parse" `Quick test_kernels_parse;
          Alcotest.test_case "compile faithfully" `Quick
            test_kernels_compile_faithfully;
          Alcotest.test_case "looped kernels run" `Quick
            test_kernels_looped_run ] ) ]
