(* Tests for Pipesched_prelude: Bitset and Rng. *)

module Bitset = Pipesched_prelude.Bitset
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_empty () =
  let s = Bitset.create 100 in
  check int_t "cardinal" 0 (Bitset.cardinal s);
  for i = 0 to 99 do
    check bool_t "mem" false (Bitset.mem s i)
  done

let test_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check int_t "cardinal" 4 (Bitset.cardinal s);
  check bool_t "mem 63" true (Bitset.mem s 63);
  check bool_t "mem 64" true (Bitset.mem s 64);
  check bool_t "mem 65" false (Bitset.mem s 65);
  Bitset.remove s 63;
  check bool_t "removed" false (Bitset.mem s 63);
  check int_t "cardinal after remove" 3 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  check int_t "cardinal" 1 (Bitset.cardinal s)

let test_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s 10))

let test_union_inter_subset () =
  let a = Bitset.create 70 and b = Bitset.create 70 in
  List.iter (Bitset.add a) [ 1; 3; 5; 64 ];
  List.iter (Bitset.add b) [ 3; 5; 7 ];
  let i = Bitset.inter a b in
  check (Alcotest.list int_t) "inter" [ 3; 5 ] (Bitset.elements i);
  check bool_t "subset inter a" true (Bitset.subset i a);
  check bool_t "subset inter b" true (Bitset.subset i b);
  check bool_t "not subset a b" false (Bitset.subset a b);
  Bitset.union_into ~into:b a;
  check (Alcotest.list int_t) "union" [ 1; 3; 5; 7; 64 ] (Bitset.elements b);
  check bool_t "a subset union" true (Bitset.subset a b)

let test_copy_independent () =
  let a = Bitset.create 10 in
  Bitset.add a 1;
  let b = Bitset.copy a in
  Bitset.add b 2;
  check bool_t "copy has 2" true (Bitset.mem b 2);
  check bool_t "original lacks 2" false (Bitset.mem a 2);
  check bool_t "equal after clear" false (Bitset.equal a b);
  Bitset.clear b;
  check int_t "cleared" 0 (Bitset.cardinal b)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.subset a b))

let bitset_model =
  qtest ~count:300 "bitset matches a list-set model"
    QCheck2.Gen.(list (pair (int_bound 99) bool))
    (fun ops ->
      String.concat ";"
        (List.map (fun (i, add) -> Printf.sprintf "%d%b" i add) ops))
    (fun ops ->
      let s = Bitset.create 100 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, add) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.elements s))

let test_hash_raw_words () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  List.iter (Bitset.add a) [ 2; 63; 64; 99 ];
  List.iter (Bitset.add b) [ 99; 64; 63; 2 ];
  check bool_t "equal sets hash equally" true (Bitset.hash a = Bitset.hash b);
  check bool_t "non-negative" true (Bitset.hash a >= 0);
  Bitset.remove b 64;
  check bool_t "hash reflects membership" true
    (Bitset.hash a <> Bitset.hash b);
  (* raw_words is the live backing store, not a copy. *)
  let w = Bitset.raw_words a in
  Bitset.add a 7;
  check bool_t "raw_words aliases the set" true (w == Bitset.raw_words a);
  check bool_t "word updated" true (w.(0) land (1 lsl 7) <> 0)

(* ------------------------------------------------------------------ *)
(* Memo_table                                                          *)

module Memo_table = Pipesched_prelude.Memo_table

let test_memo_insert_lookup () =
  let t = Memo_table.create ~capacity:16 ~key_words:2 ~value_words:3 in
  check int_t "capacity" 16 (Memo_table.capacity t);
  check int_t "empty" 0 (Memo_table.entries t);
  check int_t "absent" (-1) (Memo_table.find t ~hash:5 [| 1; 2 |]);
  check bool_t "store" true
    (Memo_table.store t ~hash:5 ~depth:3 ~key:[| 1; 2 |]
       ~value:[| 7; 0; 9 |]);
  check int_t "one entry" 1 (Memo_table.entries t);
  let slot = Memo_table.find t ~hash:5 [| 1; 2 |] in
  check bool_t "found" true (slot >= 0);
  check int_t "depth recorded" 3 (Memo_table.depth_at t slot);
  (* Same hash, different key: open addressing must not lie. *)
  check int_t "hash collision, other key" (-1)
    (Memo_table.find t ~hash:5 [| 1; 3 |]);
  (* Overwrite in place on key match: entry count stays put. *)
  check bool_t "overwrite" true
    (Memo_table.store t ~hash:5 ~depth:2 ~key:[| 1; 2 |]
       ~value:[| 6; 0; 9 |]);
  check int_t "still one entry" 1 (Memo_table.entries t);
  let slot = Memo_table.find t ~hash:5 [| 1; 2 |] in
  check int_t "depth replaced" 2 (Memo_table.depth_at t slot);
  Memo_table.clear t;
  check int_t "cleared" 0 (Memo_table.entries t);
  check int_t "gone" (-1) (Memo_table.find t ~hash:5 [| 1; 2 |])

let test_memo_dominance () =
  let t = Memo_table.create ~capacity:8 ~key_words:1 ~value_words:3 in
  ignore
    (Memo_table.store t ~hash:1 ~depth:0 ~key:[| 42 |] ~value:[| 2; 5; 0 |]);
  let slot = Memo_table.find t ~hash:1 [| 42 |] in
  (* Componentwise <= truth table against the stored [2; 5; 0]. *)
  List.iter
    (fun (candidate, expect) ->
      check bool_t
        (Printf.sprintf "dominates [%s]"
           (String.concat ";" (List.map string_of_int candidate)))
        expect
        (Memo_table.dominates t slot (Array.of_list candidate)))
    [ ([ 2; 5; 0 ], true );   (* equal *)
      ([ 3; 5; 0 ], true );   (* strictly worse first component *)
      ([ 2; 9; 4 ], true );   (* worse everywhere else *)
      ([ 1; 5; 0 ], false);   (* better nops *)
      ([ 2; 4; 0 ], false);   (* better pipe state *)
      ([ 2; 5; -1 ], false);  (* better residual *)
      ([ 9; 9; -1 ], false) ] (* mixed: one better component kills it *)

let test_memo_capacity_one () =
  (* capacity 1 => probe window of 1 slot: the table still works, with
     eviction strictly by depth. *)
  let t = Memo_table.create ~capacity:1 ~key_words:1 ~value_words:1 in
  check int_t "capacity" 1 (Memo_table.capacity t);
  check bool_t "first store" true
    (Memo_table.store t ~hash:0 ~depth:5 ~key:[| 10 |] ~value:[| 0 |]);
  (* A deeper newcomer is dropped, the incumbent survives. *)
  check bool_t "deeper dropped" false
    (Memo_table.store t ~hash:0 ~depth:7 ~key:[| 11 |] ~value:[| 0 |]);
  check bool_t "incumbent intact" true
    (Memo_table.find t ~hash:0 [| 10 |] >= 0);
  check int_t "no evictions yet" 0 (Memo_table.evictions t);
  (* An equal-depth newcomer is also dropped (strict preference). *)
  check bool_t "equal depth dropped" false
    (Memo_table.store t ~hash:0 ~depth:5 ~key:[| 12 |] ~value:[| 0 |]);
  (* A shallower newcomer evicts. *)
  check bool_t "shallower evicts" true
    (Memo_table.store t ~hash:0 ~depth:4 ~key:[| 13 |] ~value:[| 0 |]);
  check int_t "evicted" 1 (Memo_table.evictions t);
  check int_t "old key gone" (-1) (Memo_table.find t ~hash:0 [| 10 |]);
  check bool_t "new key present" true
    (Memo_table.find t ~hash:0 [| 13 |] >= 0);
  check int_t "entries stable" 1 (Memo_table.entries t)

let test_memo_eviction_prefers_deepest () =
  (* Fill one probe window (capacity 8 => window 8) with depths 0..7 on
     colliding hashes, then insert at depth 3: the depth-7 entry goes. *)
  let t = Memo_table.create ~capacity:8 ~key_words:1 ~value_words:1 in
  for d = 0 to 7 do
    check bool_t "fill" true
      (Memo_table.store t ~hash:0 ~depth:d ~key:[| 100 + d |] ~value:[| d |])
  done;
  check int_t "full" 8 (Memo_table.entries t);
  check bool_t "evicting store" true
    (Memo_table.store t ~hash:0 ~depth:3 ~key:[| 200 |] ~value:[| 0 |]);
  check int_t "one eviction" 1 (Memo_table.evictions t);
  check int_t "deepest displaced" (-1) (Memo_table.find t ~hash:0 [| 107 |]);
  check bool_t "shallow survivors" true
    (List.for_all
       (fun d -> Memo_table.find t ~hash:0 [| 100 + d |] >= 0)
       [ 0; 1; 2; 3; 4; 5; 6 ]);
  check bool_t "newcomer stored" true (Memo_table.find t ~hash:0 [| 200 |] >= 0)

let test_memo_rounding_and_errors () =
  let t = Memo_table.create ~capacity:5 ~key_words:1 ~value_words:1 in
  check int_t "rounded up" 8 (Memo_table.capacity t);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Memo_table.create: capacity must be >= 1") (fun () ->
      ignore (Memo_table.create ~capacity:0 ~key_words:1 ~value_words:1));
  Alcotest.check_raises "key size"
    (Invalid_argument "Memo_table: key length mismatch") (fun () ->
      ignore (Memo_table.find t ~hash:0 [| 1; 2 |]));
  Alcotest.check_raises "value size"
    (Invalid_argument "Memo_table: value length mismatch") (fun () ->
      ignore
        (Memo_table.store t ~hash:0 ~depth:0 ~key:[| 1 |] ~value:[| 1; 2 |]));
  Alcotest.check_raises "negative depth"
    (Invalid_argument "Memo_table.store: negative depth") (fun () ->
      ignore
        (Memo_table.store t ~hash:0 ~depth:(-1) ~key:[| 1 |] ~value:[| 1 |]))

let memo_model =
  qtest ~count:300 "memo table find agrees with a model map"
    QCheck2.Gen.(
      list (triple (int_bound 30) (int_bound 7) (int_bound 100)))
    (fun ops ->
      String.concat ";"
        (List.map (fun (k, d, v) -> Printf.sprintf "%d,%d,%d" k d v) ops))
    (fun ops ->
      (* Capacity ample (64 > 31 keys), so nothing is ever dropped or
         evicted and every stored key must be findable with its last
         value visible through [dominates] both ways (equality). *)
      let t = Memo_table.create ~capacity:64 ~key_words:1 ~value_words:1 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, d, v) ->
          ignore (Memo_table.store t ~hash:k ~depth:d ~key:[| k |] ~value:[| v |]);
          Hashtbl.replace model k v)
        ops;
      Memo_table.entries t = Hashtbl.length model
      && Memo_table.evictions t = 0
      && Hashtbl.fold
           (fun k v ok ->
             ok
             &&
             let slot = Memo_table.find t ~hash:k [| k |] in
             slot >= 0
             && Memo_table.dominates t slot [| v |]
             && Memo_table.dominates t slot [| v - 1 |] = false)
           model true)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int_t "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  check bool_t "streams differ" true (!same < 5)

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  check int_t "copy continues identically" (Rng.bits a) (Rng.bits b)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  check bool_t "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check bool_t "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check bool_t "in closed range" true (v >= -5 && v <= 5)
  done

let test_int_uniformish () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* each bucket within 20% of the expected 2000 *)
      check bool_t "roughly uniform" true (c > 1600 && c < 2400))
    counts

let test_float_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check bool_t "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_weighted () =
  let rng = Rng.create 8 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.weighted rng [ (1, "a"); (9, "b"); (0, "c") ] in
    Hashtbl.replace counts x
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check int_t "zero-weight never drawn" 0 (get "c");
  check bool_t "ratio approx 1:9" true
    (get "b" > 7 * get "a" && get "b" < 12 * get "a")

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool_t "same elements" true (sorted = Array.init 50 (fun i -> i));
  check bool_t "actually moved" true (arr <> Array.init 50 (fun i -> i))

let test_choose () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [| 1; 2; 3 |] in
    check bool_t "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)

module Budget = Pipesched_prelude.Budget

let budget ?calls ?deadline_s ?cancel () =
  Budget.start { Budget.calls; deadline_s; cancel }

let test_budget_lambda_parity () =
  (* Checked before each spend, [calls = Some l] admits exactly [l]
     units of work — the same accounting as the paper's lambda. *)
  let b = budget ~calls:5 () in
  for _ = 1 to 5 do
    check bool_t "not exhausted before the spend" true
      (Budget.exhausted b = None);
    Budget.spend b
  done;
  check bool_t "exhausted after 5 spends" true
    (Budget.exhausted b = Some Budget.Curtailed_lambda);
  check int_t "spent" 5 (Budget.spent b)

let test_budget_sticky () =
  let tok = Budget.token () in
  let b = budget ~calls:1 ~cancel:tok () in
  Budget.spend b;
  check bool_t "lambda trips first" true
    (Budget.exhausted b = Some Budget.Curtailed_lambda);
  (* A later cancellation does not change the recorded reason. *)
  Budget.cancel tok;
  check bool_t "reason is sticky" true
    (Budget.exhausted b = Some Budget.Curtailed_lambda)

let test_budget_cancellation_first () =
  let tok = Budget.token () in
  check bool_t "fresh token" false (Budget.is_cancelled tok);
  Budget.cancel tok;
  check bool_t "cancelled" true (Budget.is_cancelled tok);
  (* Cancellation outranks an already-tripped call budget. *)
  let b = budget ~calls:0 ~cancel:tok () in
  check bool_t "cancellation wins" true
    (Budget.exhausted b = Some Budget.Cancelled)

let test_budget_deadline_strided_clock () =
  let now = ref 100.0 in
  let reads = ref 0 in
  Budget.set_clock (fun () ->
      incr reads;
      !now);
  Fun.protect
    ~finally:(fun () -> Budget.set_clock Unix.gettimeofday)
    (fun () ->
      let b = budget ~deadline_s:1.0 () in
      check bool_t "within the deadline" true (Budget.exhausted b = None);
      (* Off-stride spends never consult the clock. *)
      let r0 = !reads in
      for _ = 1 to Budget.check_stride - 1 do
        Budget.spend b;
        check bool_t "still running" true (Budget.exhausted b = None)
      done;
      check int_t "no clock reads off-stride" r0 !reads;
      now := 102.0;
      Budget.spend b;
      (* spent is a stride multiple again: the expiry is noticed. *)
      check bool_t "deadline tripped" true
        (Budget.exhausted b = Some Budget.Curtailed_deadline);
      check bool_t "elapsed reflects the fake clock" true
        (Budget.elapsed_s b >= 2.0))

let test_budget_no_deadline_never_reads_clock () =
  (* The determinism contract: without a deadline the clock must never
     be consulted, so call-bounded searches are bit-for-bit stable. *)
  Budget.set_clock (fun () ->
      Alcotest.fail "clock read by a deadline-free budget");
  Fun.protect
    ~finally:(fun () -> Budget.set_clock Unix.gettimeofday)
    (fun () ->
      let tok = Budget.token () in
      let b = budget ~calls:40 ~cancel:tok () in
      for _ = 1 to 64 do
        Budget.spend b;
        ignore (Budget.exhausted b)
      done;
      check bool_t "lambda still enforced" true
        (Budget.exhausted b = Some Budget.Curtailed_lambda);
      check bool_t "elapsed is 0.0" true (Budget.elapsed_s b = 0.0))

let test_budget_unlimited () =
  let b = Budget.start Budget.unlimited in
  for _ = 1 to 1000 do
    Budget.spend b
  done;
  check bool_t "never exhausted" true (Budget.exhausted b = None)

(* ------------------------------------------------------------------ *)
(* Budget pools: one lambda split across workers                       *)

(* Spend from a pool-attached budget until it refuses; count the spends. *)
let drain_pool_budget pool =
  let b = Budget.start ~pool Budget.unlimited in
  let n = ref 0 in
  let stop = ref false in
  while not !stop do
    match Budget.exhausted b with
    | Some _ -> stop := true
    | None ->
      Budget.spend b;
      incr n
  done;
  (!n, Budget.exhausted b)

let test_pool_single_exact () =
  (* A single consumer gets exactly [calls] spends — chunked claims must
     not round the total up or down. *)
  List.iter
    (fun calls ->
      let pool = Budget.pool ~calls in
      let n, reason = drain_pool_budget pool in
      check int_t (Printf.sprintf "exact at calls=%d" calls) calls n;
      check bool_t "reason is lambda" true
        (reason = Some Budget.Curtailed_lambda);
      check bool_t "pool exhausted" true (Budget.pool_exhausted pool))
    [ 0; 1; 63; 64; 65; 1000 ]

let test_pool_split_never_overgrants () =
  (* Several concurrent workers draining one pool: the spends must sum
     to at most [calls] under any interleaving (and to exactly [calls]
     when every worker drains to refusal, since refused workers leave no
     allowance stranded). *)
  let calls = 10_000 in
  let pool = Budget.pool ~calls in
  let counts = Array.make 4 0 in
  let domains =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let n, _ = drain_pool_budget pool in
            counts.(w) <- n))
  in
  List.iter Domain.join domains;
  let total = Array.fold_left ( + ) 0 counts in
  check int_t "spends sum to lambda" calls total;
  check bool_t "pool exhausted" true (Budget.pool_exhausted pool);
  check bool_t "pool_spent >= granted" true (Budget.pool_spent pool = calls)

let test_budget_expiry_unstrided_deadline () =
  let now = ref 0.0 in
  Budget.set_clock (fun () -> !now)
  ;
  Fun.protect
    ~finally:(fun () -> Budget.set_clock Unix.gettimeofday)
    (fun () ->
      let b = budget ~deadline_s:1.0 () in
      (* Move past the deadline at an off-stride spend count: [exhausted]
         cannot see it, [expiry] must. *)
      Budget.spend b;
      now := 5.0;
      check bool_t "exhausted blind off-stride" true
        (Budget.exhausted b = None);
      check bool_t "expiry sees the deadline" true
        (Budget.expiry b = Some Budget.Curtailed_deadline);
      (* And it is sticky like exhausted. *)
      now := 0.0;
      check bool_t "expiry sticky" true
        (Budget.expiry b = Some Budget.Curtailed_deadline))

let test_budget_expiry_lambda_only_when_tripped () =
  (* expiry reports lambda only when the counter actually tripped. *)
  let b = budget ~calls:5 () in
  for _ = 1 to 4 do
    Budget.spend b
  done;
  check bool_t "not yet" true (Budget.expiry b = None);
  Budget.spend b;
  check bool_t "tripped" true (Budget.expiry b = Some Budget.Curtailed_lambda)

(* ------------------------------------------------------------------ *)
(* Incumbent: shared bound + deterministic tie-break                   *)

module Incumbent = Pipesched_prelude.Incumbent

let test_incumbent_empty () =
  let t : int Incumbent.t = Incumbent.create () in
  let g = Incumbent.gate t in
  check bool_t "no bound" true (Incumbent.bound g = None);
  check bool_t "no best" true (Incumbent.best t = None);
  check bool_t "limit is max_int" true (Incumbent.limit g ~task:0 = max_int);
  check bool_t "anything admitted" true (Incumbent.admits g ~nops:1000 ~task:5)

let test_incumbent_monotone () =
  let t : string Incumbent.t = Incumbent.create () in
  let g = Incumbent.gate t in
  check bool_t "first accepted" true
    (Incumbent.submit t ~nops:10 ~task:3 (fun () -> "a"));
  check bool_t "bound set" true (Incumbent.bound g = Some (10, 3));
  (* Worse value rejected; payload thunk never evaluated. *)
  check bool_t "worse rejected" false
    (Incumbent.submit t ~nops:11 ~task:0 (fun () ->
         Alcotest.fail "payload evaluated on rejection"));
  (* Equal value, higher rank rejected. *)
  check bool_t "tie from higher rank rejected" false
    (Incumbent.submit t ~nops:10 ~task:7 (fun () ->
         Alcotest.fail "payload evaluated on tie rejection"));
  (* Equal value, lower rank wins: the deterministic tie-break. *)
  check bool_t "tie from lower rank wins" true
    (Incumbent.submit t ~nops:10 ~task:1 (fun () -> "b"));
  check bool_t "owner updated" true (Incumbent.bound g = Some (10, 1));
  (* Strictly better value from any rank wins. *)
  check bool_t "better wins" true
    (Incumbent.submit t ~nops:9 ~task:7 (fun () -> "c"));
  check bool_t "final" true (Incumbent.best t = Some (9, "c"))

let test_incumbent_seed_precedes_all () =
  let t : unit Incumbent.t = Incumbent.create () in
  let g = Incumbent.gate t in
  check bool_t "seed accepted" true
    (Incumbent.submit t ~nops:4 ~task:(-1) (fun () -> ()));
  (* No task can claim an equal-value tie against the seed. *)
  check bool_t "tie vs seed rejected" false
    (Incumbent.submit t ~nops:4 ~task:0 (fun () -> ()));
  check bool_t "owner is seed" true (Incumbent.bound g = Some (4, -1))

let test_incumbent_limit_tie_window () =
  let t : unit Incumbent.t = Incumbent.create () in
  let g = Incumbent.gate t in
  ignore (Incumbent.submit t ~nops:6 ~task:5 (fun () -> ()) : bool);
  (* Lower-ranked searchers may still explore value-6 ties (limit 7);
     the owner itself and higher ranks may not (limit 6). *)
  check int_t "lower rank keeps ties open" 7 (Incumbent.limit g ~task:2);
  check int_t "owner closes ties" 6 (Incumbent.limit g ~task:5);
  check int_t "higher rank closes ties" 6 (Incumbent.limit g ~task:9);
  check int_t "seed outranks everyone" 7 (Incumbent.limit g ~task:(-1))

let test_incumbent_concurrent_converges () =
  (* Hammer one incumbent from several domains with the same value set;
     the final owner must be the least rank regardless of interleaving. *)
  let t : int Incumbent.t = Incumbent.create () in
  let domains =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to 99 do
              let task = ((i * 7) + w) mod 64 in
              ignore
                (Incumbent.submit t ~nops:(20 + ((i + w) mod 10)) ~task
                   (fun () -> task)
                  : bool)
            done))
  in
  List.iter Domain.join domains;
  (* Minimum submitted value is 20; every task rank in 0..63 submits it
     in some domain's sequence... the winner must be (20, least rank that
     submitted 20).  Compute that reference serially. *)
  let min_rank = ref max_int in
  for w = 0 to 3 do
    for i = 0 to 99 do
      if 20 + ((i + w) mod 10) = 20 then begin
        let task = ((i * 7) + w) mod 64 in
        if task < !min_rank then min_rank := task
      end
    done
  done;
  check bool_t "converged to least rank" true
    (Incumbent.bound (Incumbent.gate t) = Some (20, !min_rank));
  check bool_t "payload matches owner" true
    (Incumbent.best t = Some (20, !min_rank))

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)

module Lru = Pipesched_prelude.Lru

let test_lru_capacity_bound () =
  let c = Lru.create ~capacity:3 in
  for i = 1 to 10 do
    Lru.put c (string_of_int i) i
  done;
  check int_t "length stays at capacity" 3 (Lru.length c);
  check int_t "evictions" 7 (Lru.evictions c);
  check bool_t "newest survives" true (Lru.mem c "10");
  check bool_t "oldest gone" false (Lru.mem c "1")

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* Touch "a" so "b" becomes least-recent, then overflow. *)
  check bool_t "hit a" true (Lru.find c "a" = Some 1);
  Lru.put c "d" 4;
  check bool_t "b evicted" false (Lru.mem c "b");
  check bool_t "a kept" true (Lru.mem c "a");
  check bool_t "mru order" true (Lru.keys_mru c = [ "d"; "a"; "c" ]);
  (* Replacing an existing key promotes without evicting. *)
  Lru.put c "c" 33;
  check int_t "no extra eviction" 1 (Lru.evictions c);
  check bool_t "c promoted" true (Lru.keys_mru c = [ "c"; "d"; "a" ]);
  check bool_t "c updated" true (Lru.find c "c" = Some 33)

let test_lru_counters () =
  let c = Lru.create ~capacity:2 in
  check bool_t "miss" true (Lru.find c "x" = None);
  Lru.put c "x" 1;
  check bool_t "hit" true (Lru.find c "x" = Some 1);
  check bool_t "miss again" true (Lru.find c "y" = None);
  check int_t "hits" 1 (Lru.hits c);
  check int_t "misses" 2 (Lru.misses c);
  Lru.clear c;
  check int_t "cleared hits" 0 (Lru.hits c);
  check int_t "cleared length" 0 (Lru.length c);
  check bool_t "cleared" true (Lru.find c "x" = None)

let test_lru_zero_capacity () =
  let c = Lru.create ~capacity:0 in
  Lru.put c "x" 1;
  check int_t "inert" 0 (Lru.length c);
  check bool_t "always misses" true (Lru.find c "x" = None);
  check int_t "no evictions" 0 (Lru.evictions c)

let test_lru_concurrent () =
  (* Hammer one cache from several domains; the exercise is mutual
     exclusion (no torn list), checked by a consistent final state. *)
  let c = Lru.create ~capacity:64 in
  let worker seed () =
    let rng = Rng.create seed in
    for _ = 1 to 2_000 do
      let k = string_of_int (Rng.int rng 100) in
      if Rng.bool rng then ignore (Lru.find c k) else Lru.put c k seed
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join domains;
  check bool_t "within capacity" true (Lru.length c <= 64);
  check int_t "list and table agree" (Lru.length c)
    (List.length (Lru.keys_mru c));
  check bool_t "accounting adds up" true
    (Lru.hits c + Lru.misses c <= 4 * 2_000)

(* ------------------------------------------------------------------ *)
(* Fault: deterministic chaos injection                                 *)

module Fault = Pipesched_prelude.Fault

let test_fault_parse () =
  let ok spec want =
    match Fault.parse spec with
    | Ok specs -> check bool_t ("parses " ^ spec) true (specs = want)
    | Error e -> Alcotest.failf "spec %S rejected: %s" spec e
  in
  ok "" [];
  ok "solver:0.05:1" [ (Fault.Solver, 0.05, 1) ];
  ok "solver:0.05:1,write_response:0.02:7"
    [ (Fault.Solver, 0.05, 1); (Fault.Write_response, 0.02, 7) ];
  ok " cache_insert : 1 : -3 ,accept:0:0"
    [ (Fault.Cache_insert, 1.0, -3); (Fault.Accept, 0.0, 0) ];
  let bad spec =
    check bool_t ("rejects " ^ spec) true
      (match Fault.parse spec with Error _ -> true | Ok _ -> false)
  in
  bad "nope:0.5:1";
  bad "solver:1.5:1";
  bad "solver:-0.1:1";
  bad "solver:x:1";
  bad "solver:0.5:y";
  bad "solver:0.5";
  List.iter
    (fun s ->
      check bool_t "site name round-trips" true
        (Fault.site_of_string (Fault.site_to_string s) = Some s))
    Fault.all_sites

let test_fault_determinism () =
  Fault.arm [ (Fault.Solver, 0.3, 17) ];
  Fun.protect ~finally:Fault.disarm (fun () ->
      let keys = List.init 500 (fun i -> Printf.sprintf "request-%d" i) in
      let verdicts = List.map (fun k -> Fault.fire Fault.Solver ~key:k) keys in
      (* Same arming, same keys: same verdicts, in any order. *)
      let again =
        List.map (fun k -> Fault.fire Fault.Solver ~key:k) (List.rev keys)
      in
      check bool_t "verdicts are a pure function of the key" true
        (List.rev verdicts = again);
      let fired = List.length (List.filter Fun.id verdicts) in
      check bool_t "rate in the right ballpark" true
        (fired > 50 && fired < 250);
      (* The counter saw both passes. *)
      check int_t "counter counts fires" (2 * fired)
        (Fault.injected Fault.Solver);
      (* Concurrent fire from several domains cannot perturb verdicts. *)
      let results = Array.make 4 [] in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                results.(d) <-
                  List.map (fun k -> Fault.fire Fault.Solver ~key:k) keys))
      in
      List.iter Domain.join domains;
      Array.iter
        (fun r ->
          check bool_t "interleaving-independent" true (r = verdicts))
        results)

let test_fault_extremes_and_disarm () =
  Fault.arm [ (Fault.Solver, 1.0, 1); (Fault.Accept, 0.0, 1) ];
  Fun.protect ~finally:Fault.disarm (fun () ->
      check bool_t "prob 1 always fires" true (Fault.fire Fault.Solver ~key:"k");
      check bool_t "prob 0 never fires" false (Fault.fire Fault.Accept ~key:"k");
      check bool_t "unarmed site never fires" false
        (Fault.fire Fault.Write_response ~key:"k");
      check bool_t "armed" true (Fault.armed Fault.Solver);
      check bool_t "not armed" false (Fault.armed Fault.Write_response);
      (match
         try
           Fault.guard Fault.Solver ~key:"k";
           None
         with Fault.Injected site -> Some site
       with
      | Some site -> check bool_t "guard raises with site name" true
          (site = "solver")
      | None -> Alcotest.fail "guard did not raise");
      check bool_t "fires counted" true (Fault.total_injected () >= 2));
  check bool_t "disarmed" false (Fault.armed Fault.Solver);
  check bool_t "nothing fires after disarm" false
    (Fault.fire Fault.Solver ~key:"k");
  check int_t "counters reset" 0 (Fault.total_injected ())

let test_fault_seed_and_key_sensitivity () =
  let verdicts seed =
    Fault.arm [ (Fault.Solver, 0.5, seed) ];
    Fun.protect ~finally:Fault.disarm (fun () ->
        List.init 200 (fun i ->
            Fault.fire Fault.Solver ~key:(string_of_int i)))
  in
  check bool_t "different seeds, different draws" true
    (verdicts 1 <> verdicts 2);
  check bool_t "same seed replays" true (verdicts 1 = verdicts 1)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

module Json = Pipesched_prelude.Json

let test_json_roundtrip () =
  let v =
    Json.Assoc
      [ ("id", Json.Int 7);
        ("ok", Json.Bool true);
        ("pi", Json.Float 3.5);
        ("msg", Json.String "a \"quoted\"\nline\twith \\ stuff");
        ("items", Json.List [ Json.Int 1; Json.Null; Json.String "x" ]);
        ("nested", Json.Assoc [ ("empty", Json.List []) ]) ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check bool_t "roundtrip" true (v = v')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_parse_basics () =
  check bool_t "int" true (Json.parse "42" = Ok (Json.Int 42));
  check bool_t "negative" true (Json.parse "-3" = Ok (Json.Int (-3)));
  check bool_t "float" true (Json.parse "2.5" = Ok (Json.Float 2.5));
  check bool_t "ws" true
    (Json.parse "  {\"a\" : [1, 2]}  "
    = Ok (Json.Assoc [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  check bool_t "escape" true
    (Json.parse "\"a\\u0041\\n\"" = Ok (Json.String "aA\n"));
  check bool_t "trailing rejected" true
    (match Json.parse "1 2" with Error _ -> true | Ok _ -> false);
  check bool_t "unterminated rejected" true
    (match Json.parse "{\"a\": 1" with Error _ -> true | Ok _ -> false);
  check bool_t "member" true
    (Json.member "a" (Json.Assoc [ ("a", Json.Int 1) ]) = Some (Json.Int 1));
  check bool_t "float of int" true
    (Json.to_float_opt (Json.Int 2) = Some 2.0)

(* OCaml's [int_of_string] accepts underscores, a leading '+', leading
   zeros and 0x/0o/0b prefixes — none of which are JSON.  The strict
   grammar pass must reject them all while keeping every number JSON
   does admit. *)
let test_json_strict_numbers () =
  let rejects s = match Json.parse s with Error _ -> true | Ok _ -> false in
  check bool_t "underscored int" true (rejects "1_2");
  check bool_t "leading plus" true (rejects "+5");
  check bool_t "leading plus in list" true (rejects "[+5]");
  check bool_t "leading zero" true (rejects "05");
  check bool_t "hex prefix" true (rejects "0x1f");
  check bool_t "bare trailing dot" true (rejects "1.");
  check bool_t "bare exponent" true (rejects "1e");
  check bool_t "dot without int part" true (rejects ".5");
  check bool_t "underscored float" true (rejects "1_0.5");
  check bool_t "zero" true (Json.parse "0" = Ok (Json.Int 0));
  check bool_t "negative zero point five" true
    (Json.parse "-0.5" = Ok (Json.Float (-0.5)));
  check bool_t "exponent with plus" true
    (Json.parse "1e+5" = Ok (Json.Float 100000.0));
  check bool_t "capital exponent" true
    (Json.parse "2E-2" = Ok (Json.Float 0.02));
  check bool_t "zero-led fraction" true
    (Json.parse "0.25" = Ok (Json.Float 0.25))

(* The regression that motivated the strict pass: [int_of_string
   "0x1_2a"] succeeds, so the lenient parser accepted "\u1_2a" as
   U+012A.  A \u escape is exactly four hex digits, nothing else. *)
let test_json_strict_unicode_escape () =
  let rejects s = match Json.parse s with Error _ -> true | Ok _ -> false in
  check bool_t "underscored escape" true (rejects "\"\\u1_2a\"");
  check bool_t "non-hex escape" true (rejects "\"\\u00gg\"");
  check bool_t "truncated escape" true (rejects "\"\\u00\"");
  check bool_t "signed escape" true (rejects "\"\\u-001\"");
  check bool_t "space in escape" true (rejects "\"\\u 041\"");
  check bool_t "plain BMP escape" true
    (Json.parse "\"\\u0041\"" = Ok (Json.String "A"));
  check bool_t "uppercase hex accepted" true
    (Json.parse "\"\\u00E9\"" = Ok (Json.String "\xc3\xa9"))

(* Structural equality modulo the Int/Float boundary: the printer emits
   integer-valued floats without a decimal point ("%.17g" of 1.0 is
   "1"), which legitimately reparse as Int. *)
let rec json_equal a b =
  match (a, b) with
  | Json.Int i, Json.Float f | Json.Float f, Json.Int i -> float_of_int i = f
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Assoc xs, Json.Assoc ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && json_equal v v')
         xs ys
  | a, b -> a = b

let json_gen =
  QCheck2.Gen.(
    sized_size (int_bound 3) @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
              map
                (fun s -> Json.String s)
                (string_size ~gen:printable (int_bound 8)) ]
        in
        if n = 0 then leaf
        else
          oneof
            [ leaf;
              map (fun xs -> Json.List xs)
                (list_size (int_bound 3) (self (n - 1)));
              map
                (fun kvs -> Json.Assoc kvs)
                (list_size (int_bound 3)
                   (pair
                      (string_size ~gen:printable (int_bound 6))
                      (self (n - 1)))) ]))

let json_print_parse_roundtrip =
  qtest ~count:500 "print/parse round-trips" json_gen Json.to_string
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> json_equal j j'
      | Error _ -> false)

let json_escape_strictness =
  qtest ~count:500 "\\u escapes parse iff exactly 4 hex digits"
    QCheck2.Gen.(
      string_size
        ~gen:
          (oneofl
             [ '0'; '9'; 'a'; 'f'; 'A'; 'F'; '_'; 'g'; 'x'; '+'; '-'; ' ' ])
        (return 4))
    (fun s -> Printf.sprintf "%S" s)
    (fun s ->
      let is_hex = function
        | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
        | _ -> false
      in
      let well_formed = String.for_all is_hex s in
      match Json.parse (Printf.sprintf "\"\\u%s\"" s) with
      | Ok _ -> well_formed
      | Error _ -> not well_formed)

let () =
  Alcotest.run "prelude"
    [ ( "bitset",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "union/inter/subset" `Quick
            test_union_inter_subset;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "capacity mismatch" `Quick
            test_capacity_mismatch;
          Alcotest.test_case "hash and raw_words" `Quick
            test_hash_raw_words;
          bitset_model ] );
      ( "memo_table",
        [ Alcotest.test_case "insert/lookup/overwrite" `Quick
            test_memo_insert_lookup;
          Alcotest.test_case "dominance truth table" `Quick
            test_memo_dominance;
          Alcotest.test_case "capacity 1" `Quick test_memo_capacity_one;
          Alcotest.test_case "eviction prefers deepest" `Quick
            test_memo_eviction_prefers_deepest;
          Alcotest.test_case "rounding and errors" `Quick
            test_memo_rounding_and_errors;
          memo_model ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "uniformity" `Quick test_int_uniformish;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_choose ] );
      ( "budget",
        [ Alcotest.test_case "lambda parity" `Quick test_budget_lambda_parity;
          Alcotest.test_case "sticky reason" `Quick test_budget_sticky;
          Alcotest.test_case "cancellation outranks" `Quick
            test_budget_cancellation_first;
          Alcotest.test_case "strided deadline clock" `Quick
            test_budget_deadline_strided_clock;
          Alcotest.test_case "no deadline, no clock" `Quick
            test_budget_no_deadline_never_reads_clock;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "pool single exact" `Quick test_pool_single_exact;
          Alcotest.test_case "pool split never overgrants" `Quick
            test_pool_split_never_overgrants;
          Alcotest.test_case "expiry unstrided deadline" `Quick
            test_budget_expiry_unstrided_deadline;
          Alcotest.test_case "expiry lambda only when tripped" `Quick
            test_budget_expiry_lambda_only_when_tripped ] );
      ( "incumbent",
        [ Alcotest.test_case "empty" `Quick test_incumbent_empty;
          Alcotest.test_case "monotone + tie-break" `Quick
            test_incumbent_monotone;
          Alcotest.test_case "seed precedes all" `Quick
            test_incumbent_seed_precedes_all;
          Alcotest.test_case "tie window by rank" `Quick
            test_incumbent_limit_tie_window;
          Alcotest.test_case "concurrent converges" `Quick
            test_incumbent_concurrent_converges ] );
      ( "lru",
        [ Alcotest.test_case "capacity bound" `Quick test_lru_capacity_bound;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "hit/miss counters" `Quick test_lru_counters;
          Alcotest.test_case "zero capacity inert" `Quick
            test_lru_zero_capacity;
          Alcotest.test_case "concurrent access" `Quick test_lru_concurrent ] );
      ( "fault",
        [ Alcotest.test_case "spec parsing" `Quick test_fault_parse;
          Alcotest.test_case "content-keyed determinism" `Quick
            test_fault_determinism;
          Alcotest.test_case "extremes and disarm" `Quick
            test_fault_extremes_and_disarm;
          Alcotest.test_case "seed and key sensitivity" `Quick
            test_fault_seed_and_key_sensitivity ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "strict numbers" `Quick test_json_strict_numbers;
          Alcotest.test_case "strict unicode escapes" `Quick
            test_json_strict_unicode_escape;
          json_print_parse_roundtrip;
          json_escape_strictness ] ) ]
