(* Tests for Pipesched_prelude: Bitset and Rng. *)

module Bitset = Pipesched_prelude.Bitset
module Rng = Pipesched_prelude.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_empty () =
  let s = Bitset.create 100 in
  check int_t "cardinal" 0 (Bitset.cardinal s);
  for i = 0 to 99 do
    check bool_t "mem" false (Bitset.mem s i)
  done

let test_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check int_t "cardinal" 4 (Bitset.cardinal s);
  check bool_t "mem 63" true (Bitset.mem s 63);
  check bool_t "mem 64" true (Bitset.mem s 64);
  check bool_t "mem 65" false (Bitset.mem s 65);
  Bitset.remove s 63;
  check bool_t "removed" false (Bitset.mem s 63);
  check int_t "cardinal after remove" 3 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  check int_t "cardinal" 1 (Bitset.cardinal s)

let test_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s 10))

let test_union_inter_subset () =
  let a = Bitset.create 70 and b = Bitset.create 70 in
  List.iter (Bitset.add a) [ 1; 3; 5; 64 ];
  List.iter (Bitset.add b) [ 3; 5; 7 ];
  let i = Bitset.inter a b in
  check (Alcotest.list int_t) "inter" [ 3; 5 ] (Bitset.elements i);
  check bool_t "subset inter a" true (Bitset.subset i a);
  check bool_t "subset inter b" true (Bitset.subset i b);
  check bool_t "not subset a b" false (Bitset.subset a b);
  Bitset.union_into ~into:b a;
  check (Alcotest.list int_t) "union" [ 1; 3; 5; 7; 64 ] (Bitset.elements b);
  check bool_t "a subset union" true (Bitset.subset a b)

let test_copy_independent () =
  let a = Bitset.create 10 in
  Bitset.add a 1;
  let b = Bitset.copy a in
  Bitset.add b 2;
  check bool_t "copy has 2" true (Bitset.mem b 2);
  check bool_t "original lacks 2" false (Bitset.mem a 2);
  check bool_t "equal after clear" false (Bitset.equal a b);
  Bitset.clear b;
  check int_t "cleared" 0 (Bitset.cardinal b)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.subset a b))

let bitset_model =
  qtest ~count:300 "bitset matches a list-set model"
    QCheck2.Gen.(list (pair (int_bound 99) bool))
    (fun ops ->
      String.concat ";"
        (List.map (fun (i, add) -> Printf.sprintf "%d%b" i add) ops))
    (fun ops ->
      let s = Bitset.create 100 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, add) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal s = Hashtbl.length model
      && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.elements s))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int_t "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  check bool_t "streams differ" true (!same < 5)

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  check int_t "copy continues identically" (Rng.bits a) (Rng.bits b)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  check bool_t "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check bool_t "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check bool_t "in closed range" true (v >= -5 && v <= 5)
  done

let test_int_uniformish () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* each bucket within 20% of the expected 2000 *)
      check bool_t "roughly uniform" true (c > 1600 && c < 2400))
    counts

let test_float_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check bool_t "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_weighted () =
  let rng = Rng.create 8 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.weighted rng [ (1, "a"); (9, "b"); (0, "c") ] in
    Hashtbl.replace counts x
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check int_t "zero-weight never drawn" 0 (get "c");
  check bool_t "ratio approx 1:9" true
    (get "b" > 7 * get "a" && get "b" < 12 * get "a")

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool_t "same elements" true (sorted = Array.init 50 (fun i -> i));
  check bool_t "actually moved" true (arr <> Array.init 50 (fun i -> i))

let test_choose () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [| 1; 2; 3 |] in
    check bool_t "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let () =
  Alcotest.run "prelude"
    [ ( "bitset",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "union/inter/subset" `Quick
            test_union_inter_subset;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "capacity mismatch" `Quick
            test_capacity_mismatch;
          bitset_model ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "uniformity" `Quick test_int_uniformish;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_choose ] ) ]
