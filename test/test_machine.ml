(* Tests for Pipesched_machine: Pipe, Machine, Omega, Interlock. *)

open Pipesched_ir
open Pipesched_machine
module Rng = Pipesched_prelude.Rng
open Helpers

let tu ~id op a b = Tuple.make ~id op a b

(* ------------------------------------------------------------------ *)
(* Pipe & Machine descriptions                                         *)

let test_pipe_validation () =
  Alcotest.check_raises "latency 0"
    (Invalid_argument "Pipe.make: latency must be >= 1") (fun () ->
      ignore (Pipe.make ~label:"p" ~latency:0 ~enqueue:1));
  Alcotest.check_raises "enqueue 0"
    (Invalid_argument "Pipe.make: enqueue time must be >= 1") (fun () ->
      ignore (Pipe.make ~label:"p" ~latency:1 ~enqueue:0));
  let p = Pipe.make ~label:"fu" ~latency:4 ~enqueue:4 in
  check bool_t "non-pipelined" true (Pipe.non_pipelined p);
  let q = Pipe.make ~label:"fu" ~latency:4 ~enqueue:1 in
  check bool_t "pipelined" false (Pipe.non_pipelined q)

let test_machine_tables () =
  let m = machine in
  check int_t "pipes" 2 (Machine.pipe_count m);
  check bool_t "load on loader" true (Machine.default_pipe m Op.Load = Some 0);
  check bool_t "mul on multiplier" true
    (Machine.default_pipe m Op.Mul = Some 1);
  check bool_t "add resource-free" true (Machine.default_pipe m Op.Add = None);
  check int_t "load latency" 2 (Machine.latency m Op.Load);
  check int_t "mul latency" 4 (Machine.latency m Op.Mul);
  check int_t "add latency" 1 (Machine.latency m Op.Add);
  (* Table 4 parameters *)
  check int_t "loader enqueue" 1 (Machine.pipe m 0).Pipe.enqueue;
  check int_t "multiplier enqueue" 2 (Machine.pipe m 1).Pipe.enqueue

let test_machine_validation () =
  let pipes = [| Pipe.make ~label:"p" ~latency:2 ~enqueue:1 |] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Machine.make: pipeline index out of range") (fun () ->
      ignore (Machine.make ~name:"m" pipes ~assign:[ (Op.Load, [ 1 ]) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Machine.make: duplicate mapping for Load") (fun () ->
      ignore
        (Machine.make ~name:"m" pipes
           ~assign:[ (Op.Load, [ 0 ]); (Op.Load, [ 0 ]) ]))

let test_demo_machine_multi () =
  let m = Machine.Presets.demo in
  check (Alcotest.list int_t) "two loaders" [ 0; 1 ]
    (Machine.candidates m Op.Load);
  check (Alcotest.list int_t) "two adders" [ 2; 3 ]
    (Machine.candidates m Op.Add);
  check (Alcotest.list int_t) "one multiplier" [ 4 ]
    (Machine.candidates m Op.Mul);
  check bool_t "default pipe is first" true
    (Machine.default_pipe m Op.Load = Some 0)

let test_presets_find () =
  check bool_t "simulation" true (Machine.Presets.find "simulation" <> None);
  check bool_t "unknown" true (Machine.Presets.find "nope" = None)

let machines_equal m1 m2 =
  Machine.name m1 = Machine.name m2
  && Machine.pipes m1 = Machine.pipes m2
  && List.for_all
       (fun op -> Machine.candidates m1 op = Machine.candidates m2 op)
       Op.all

let test_machine_text_roundtrip () =
  List.iter
    (fun (_, m) ->
      match Machine.parse (Machine.to_text m) with
      | Ok m' ->
        check bool_t (Machine.name m ^ " round-trips") true
          (machines_equal m m')
      | Error (line, msg) ->
        Alcotest.failf "%s: line %d: %s" (Machine.name m) line msg)
    Machine.Presets.all

let test_machine_parse_format () =
  let text =
    "# the Table 4/5 machine\n\
     machine simulation\n\
     pipe loader 2 1   # label latency enqueue\n\
     pipe multiplier 4 2\n\
     ops Load -> 0\n\
     ops Mul Div Mod -> 1\n"
  in
  match Machine.parse text with
  | Ok m -> check bool_t "matches the preset" true
              (machines_equal m Machine.Presets.simulation)
  | Error (line, msg) -> Alcotest.failf "line %d: %s" line msg

(* Random machine descriptions round-trip through text. *)
let machine_text_roundtrip_random =
  qtest ~count:200 "random machines round-trip through text"
    QCheck2.Gen.(int_bound 1_000_000)
    string_of_int
    (fun seed ->
      let rng = Rng.create seed in
      let npipes = 1 + Rng.int rng 5 in
      let pipes =
        Array.init npipes (fun i ->
            Pipe.make
              ~label:(Printf.sprintf "fu%d" i)
              ~latency:(1 + Rng.int rng 12)
              ~enqueue:(1 + Rng.int rng 12))
      in
      let assign =
        List.filter_map
          (fun op ->
            if Rng.int rng 3 = 0 then None
            else
              let k = 1 + Rng.int rng npipes in
              let pids =
                List.sort_uniq compare
                  (List.init k (fun _ -> Rng.int rng npipes))
              in
              Some (op, pids))
          Op.binary_ops
      in
      let m = Machine.make ~name:"rt" pipes ~assign in
      match Machine.parse (Machine.to_text m) with
      | Ok m' -> machines_equal m m'
      | Error _ -> false)

let test_machine_parse_errors () =
  List.iter
    (fun (text, expect_line) ->
      match Machine.parse text with
      | Error (line, _) -> check int_t text expect_line line
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [ ("pipe loader two 1", 1);
      ("pipe loader 2", 1);
      ("machine m\nops Load -> 0", 0) (* pipe index out of range *);
      ("frobnicate", 1);
      ("pipe loader 2 1\nops Bogus -> 0", 2);
      ("pipe loader 2 1\nops Load -> x", 2);
      ("pipe loader 2 1\nops -> 0", 2);
      ("pipe loader 0 1", 1) ]

(* ------------------------------------------------------------------ *)
(* Omega: worked examples from §2.1                                    *)

(* "Load R1,X; Add R0,R1" with a 4-tick load: 3 delay slots. *)
let test_dependence_delay () =
  let m =
    Machine.make ~name:"section2.1"
      [| Pipe.make ~label:"loader" ~latency:4 ~enqueue:2 |]
      ~assign:[ (Op.Load, [ 0 ]) ]
  in
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Add (Operand.Ref 1) (Operand.Imm 0) ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate m dag ~order:[| 0; 1 |] in
  check (Alcotest.array int_t) "etas" [| 0; 3 |] r.Omega.eta;
  check int_t "nops" 3 r.Omega.nops

(* "Load R1,X; Load R2,Y" with the MAR busy 2 ticks: 1 delay slot. *)
let test_conflict_delay () =
  let m =
    Machine.make ~name:"section2.1b"
      [| Pipe.make ~label:"loader" ~latency:4 ~enqueue:2 |]
      ~assign:[ (Op.Load, [ 0 ]) ]
  in
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Load (Operand.Var "y") Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate m dag ~order:[| 0; 1 |] in
  check (Alcotest.array int_t) "etas" [| 0; 1 |] r.Omega.eta;
  check int_t "nops" 1 r.Omega.nops

let test_no_delay_when_hidden () =
  (* Load; unrelated Const; unrelated Const; Add of the load: latency 2
     fully hidden by the two free instructions. *)
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:3 Op.Const (Operand.Imm 2) Operand.Null;
        tu ~id:4 Op.Add (Operand.Ref 1) (Operand.Ref 2) ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0; 1; 2; 3 |] in
  check int_t "no nops" 0 r.Omega.nops

let test_evaluate_rejects_illegal () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Neg (Operand.Ref 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  Alcotest.check_raises "illegal order"
    (Invalid_argument "Omega.evaluate: order violates dependences")
    (fun () -> ignore (Omega.evaluate machine dag ~order:[| 1; 0 |]))

let test_empty_block () =
  let blk = Block.of_tuples_exn [] in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[||] in
  check int_t "no nops" 0 r.Omega.nops;
  check int_t "span" 0 (Omega.span machine dag r)

let test_span () =
  (* A single Mul: issues at 0, result at 4. *)
  let blk =
    Block.of_tuples_exn [ tu ~id:1 Op.Mul (Operand.Imm 2) (Operand.Imm 3) ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0 |] in
  check int_t "span includes trailing latency" 4 (Omega.span machine dag r)

(* ------------------------------------------------------------------ *)
(* Omega: reference-evaluator oracle                                   *)

(* An independent O(n^2) evaluator computing issue times directly from
   the definition: t(0)=0, t(k) = max(t(k-1)+1, producer latencies,
   same-pipe enqueue constraints against ALL earlier instructions). *)
let reference_eval m dag order =
  let blk = Dag.block dag in
  let n = Array.length order in
  let issue = Array.make n 0 in
  let pipe_of pos =
    Machine.default_pipe m (Block.tuple_at blk pos).Tuple.op
  in
  let lat_of pos = Machine.latency m (Block.tuple_at blk pos).Tuple.op in
  let new_pos = Array.make (Dag.length dag) (-1) in
  Array.iteri (fun k pos -> new_pos.(pos) <- k) order;
  for k = 0 to n - 1 do
    let pos = order.(k) in
    let t = ref (if k = 0 then 0 else issue.(k - 1) + 1) in
    List.iter
      (fun u ->
        let c = issue.(new_pos.(u)) + lat_of u in
        if c > !t then t := c)
      (Dag.preds dag pos);
    (match pipe_of pos with
     | Some p ->
       let enq = (Machine.pipe m p).Pipe.enqueue in
       for j = 0 to k - 1 do
         if pipe_of order.(j) = Some p then begin
           let c = issue.(j) + enq in
           if c > !t then t := c
         end
       done
     | None -> ());
    issue.(k) <- !t
  done;
  let nops = if n = 0 then 0 else issue.(n - 1) - (n - 1) in
  (issue, nops)

(* Pick a random legal order of a block. *)
let random_legal_order rng dag =
  let n = Dag.length dag in
  let unsched = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let used = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let ready = ref [] in
    for i = 0 to n - 1 do
      if (not used.(i)) && unsched.(i) = 0 then ready := i :: !ready
    done;
    let pick = Rng.choose rng (Array.of_list !ready) in
    used.(pick) <- true;
    List.iter (fun v -> unsched.(v) <- unsched.(v) - 1) (Dag.succs dag pick);
    order.(k) <- pick
  done;
  order

let gen_block_and_order =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        let blk = random_block rng n in
        let dag = Dag.of_block blk in
        (blk, dag, random_legal_order rng dag))
      (int_bound 1_000_000)
      (int_range 1 16))

let print_block_and_order (blk, _, order) =
  Block.to_string blk ^ "\norder: "
  ^ String.concat " " (Array.to_list (Array.map string_of_int order))

let omega_matches_reference =
  qtest ~count:400 "Omega agrees with the O(n^2) reference evaluator"
    gen_block_and_order print_block_and_order
    (fun (_, dag, order) ->
      let r = Omega.evaluate machine dag ~order in
      let issue_ref, nops_ref = reference_eval machine dag order in
      r.Omega.issue = issue_ref && r.Omega.nops = nops_ref)

let omega_invariants =
  qtest ~count:400 "eta >= 0, issues strictly increase, nops = sum eta"
    gen_block_and_order print_block_and_order
    (fun (_, dag, order) ->
      let r = Omega.evaluate machine dag ~order in
      let n = Array.length order in
      let ok = ref (r.Omega.nops = Array.fold_left ( + ) 0 r.Omega.eta) in
      for k = 0 to n - 1 do
        if r.Omega.eta.(k) < 0 then ok := false;
        if
          k > 0
          && r.Omega.issue.(k) <> r.Omega.issue.(k - 1) + 1 + r.Omega.eta.(k)
        then ok := false
      done;
      if n > 0 && r.Omega.issue.(0) <> 0 then ok := false;
      !ok)

(* Greedy per-prefix NOP insertion is tight: whenever eta(k) > 0, issuing
   instruction k one slot earlier would violate a constraint. *)
let omega_minimal =
  qtest ~count:400 "inserted NOPs are minimal per prefix"
    gen_block_and_order print_block_and_order
    (fun (_, dag, order) ->
      let blk = Dag.block dag in
      let r = Omega.evaluate machine dag ~order in
      let new_pos = Array.make (Dag.length dag) (-1) in
      Array.iteri (fun k pos -> new_pos.(pos) <- k) order;
      let ok = ref true in
      Array.iteri
        (fun k pos ->
          if r.Omega.eta.(k) > 0 then begin
            let earlier = r.Omega.issue.(k) - 1 in
            let violates_dep =
              List.exists
                (fun u ->
                  let lat =
                    Machine.latency machine (Block.tuple_at blk u).Tuple.op
                  in
                  r.Omega.issue.(new_pos.(u)) + lat > earlier)
                (Dag.preds dag pos)
            in
            let violates_conflict =
              match
                Machine.default_pipe machine
                  (Block.tuple_at blk pos).Tuple.op
              with
              | None -> false
              | Some p ->
                let enq = (Machine.pipe machine p).Pipe.enqueue in
                List.exists
                  (fun j ->
                    Machine.default_pipe machine
                      (Block.tuple_at blk order.(j)).Tuple.op
                    = Some p
                    && r.Omega.issue.(j) + enq > earlier)
                  (List.init k (fun j -> j))
            in
            if not (violates_dep || violates_conflict) then ok := false
          end)
        order;
      !ok)

(* Entry-state variant of the oracle: the same O(n^2) evaluator with the
   per-pipe last-use ticks seeded from the entry. *)
let reference_eval_with_entry m dag (entry : Omega.entry) order =
  let blk = Dag.block dag in
  let n = Array.length order in
  let issue = Array.make n 0 in
  let pipe_of pos =
    Machine.default_pipe m (Block.tuple_at blk pos).Tuple.op
  in
  let lat_of pos = Machine.latency m (Block.tuple_at blk pos).Tuple.op in
  let new_pos = Array.make (Dag.length dag) (-1) in
  Array.iteri (fun k pos -> new_pos.(pos) <- k) order;
  for k = 0 to n - 1 do
    let pos = order.(k) in
    let t = ref (if k = 0 then 0 else issue.(k - 1) + 1) in
    List.iter
      (fun u ->
        let c = issue.(new_pos.(u)) + lat_of u in
        if c > !t then t := c)
      (Dag.preds dag pos);
    (match pipe_of pos with
     | Some p ->
       let enq = (Machine.pipe m p).Pipe.enqueue in
       let c = entry.Omega.pipe_last_use.(p) + enq in
       if c > !t then t := c;
       for j = 0 to k - 1 do
         if pipe_of order.(j) = Some p then begin
           let c = issue.(j) + enq in
           if c > !t then t := c
         end
       done
     | None -> ());
    issue.(k) <- !t
  done;
  issue

let omega_entry_matches_reference =
  qtest ~count:300 "Omega with entry state agrees with the oracle"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let blk = random_block rng n in
      let dag = Dag.of_block blk in
      let order = random_legal_order rng dag in
      let entry =
        { Omega.pipe_last_use =
            Array.init (Machine.pipe_count machine) (fun _ ->
                -1 - Rng.int rng 6) }
      in
      let r = Omega.evaluate ~entry machine dag ~order in
      r.Omega.issue = reference_eval_with_entry machine dag entry order)

(* Multi-pipe oracle: the demo machine with random pipeline choices. *)
let omega_multi_pipe_matches_reference =
  qtest ~count:300 "evaluate_with_pipes agrees with a per-choice oracle"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let m = Machine.Presets.demo in
      let rng = Rng.create seed in
      let blk = random_block rng n in
      let dag = Dag.of_block blk in
      let order = random_legal_order rng dag in
      let choice =
        Array.init n (fun pos ->
            match
              Machine.candidates m (Block.tuple_at blk pos).Tuple.op
            with
            | [] -> None
            | cands -> Some (Rng.choose rng (Array.of_list cands)))
      in
      let r = Omega.evaluate_with_pipes m dag ~order ~choice in
      (* Oracle with explicit choices. *)
      let issue = Array.make n 0 in
      let new_pos = Array.make n (-1) in
      Array.iteri (fun k pos -> new_pos.(pos) <- k) order;
      let lat_of pos =
        match choice.(pos) with
        | Some p -> (Machine.pipe m p).Pipe.latency
        | None -> 1
      in
      for k = 0 to n - 1 do
        let pos = order.(k) in
        let t = ref (if k = 0 then 0 else issue.(k - 1) + 1) in
        List.iter
          (fun u ->
            let c = issue.(new_pos.(u)) + lat_of u in
            if c > !t then t := c)
          (Dag.preds dag pos);
        (match choice.(pos) with
         | Some p ->
           let enq = (Machine.pipe m p).Pipe.enqueue in
           for j = 0 to k - 1 do
             if choice.(order.(j)) = Some p then begin
               let c = issue.(j) + enq in
               if c > !t then t := c
             end
           done
         | None -> ());
        issue.(k) <- !t
      done;
      r.Omega.issue = issue)

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)

let explain_accounts_for_all_stalls =
  qtest ~count:300 "explain covers every stall with a valid cause"
    gen_block_and_order print_block_and_order
    (fun (blk, dag, order) ->
      let r = Omega.evaluate machine dag ~order in
      let explained = Omega.explain machine dag r in
      let covered = Hashtbl.create 8 in
      let valid =
        List.for_all
          (fun (k, eta, cause) ->
            Hashtbl.replace covered k ();
            eta = r.Omega.eta.(k)
            &&
            match cause with
            | Omega.Dependence u -> List.mem u (Dag.preds dag order.(k))
            | Omega.Conflict p ->
              Machine.default_pipe machine
                (Block.tuple_at blk order.(k)).Tuple.op
              = Some p)
          explained
      in
      (* Cold evaluations have an in-block culprit for every stall. *)
      let all_covered = ref true in
      Array.iteri
        (fun k eta ->
          if eta > 0 && not (Hashtbl.mem covered k) then all_covered := false)
        r.Omega.eta;
      valid && !all_covered)

let test_explain_examples () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Neg (Operand.Ref 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0; 1 |] in
  (match Omega.explain machine dag r with
   | [ (1, 1, Omega.Dependence 0) ] -> ()
   | _ -> Alcotest.fail "expected one dependence stall");
  let text = Omega.explain_to_string machine dag r in
  check bool_t "mentions the load" true
    (let needle = "Load #x" in
     let h = String.length text and n = String.length needle in
     let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
     go 0)

let test_explain_conflict () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Mul (Operand.Imm 2) (Operand.Imm 3);
        tu ~id:2 Op.Mul (Operand.Imm 4) (Operand.Imm 5) ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0; 1 |] in
  match Omega.explain machine dag r with
  | [ (1, 1, Omega.Conflict 1) ] -> ()
  | _ -> Alcotest.fail "expected a multiplier conflict stall"

(* Regression: span and explain must measure the pipelines a schedule
   actually ran on (recorded in [result.pipes]), not the per-op
   defaults.  On a machine whose Load has a fast and a slow candidate
   pipeline the two disagree. *)
let twin =
  Machine.make ~name:"twin"
    [| Pipe.make ~label:"fast" ~latency:2 ~enqueue:2;
       Pipe.make ~label:"slow" ~latency:5 ~enqueue:2 |]
    ~assign:[ (Op.Load, [ 0; 1 ]) ]

let two_loads =
  Block.of_tuples_exn
    [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
      tu ~id:2 Op.Load (Operand.Var "y") Operand.Null ]

let test_pipes_recorded_in_result () =
  let dag = Dag.of_block two_loads in
  let r =
    Omega.evaluate_with_pipes twin dag ~order:[| 0; 1 |]
      ~choice:[| Some 0; Some 1 |]
  in
  check (Alcotest.array int_t) "pipes recorded" [| 0; 1 |] r.Omega.pipes;
  check int_t "no conflict across distinct pipes" 0 r.Omega.nops;
  (* The second load issues at 1 on the slow pipe: result at 1 + 5 = 6.
     Pricing it at the default (fast) pipe would report 3. *)
  check int_t "span uses the chosen pipe's latency" 6 (Omega.span twin dag r);
  let d = Omega.evaluate twin dag ~order:[| 0; 1 |] in
  check (Alcotest.array int_t) "default choice recorded" [| 0; 0 |]
    d.Omega.pipes;
  check int_t "default-pipe span" 4 (Omega.span twin dag d)

let test_explain_uses_recorded_pipes () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Store (Operand.Var "o") (Operand.Ref 1) ]
  in
  let dag = Dag.of_block blk in
  let r =
    Omega.evaluate_with_pipes twin dag ~order:[| 0; 1 |]
      ~choice:[| Some 1; None |]
  in
  (* On the slow pipe the store waits latency 5 for the load: eta = 4;
     the default fast pipe would stall it only 1. *)
  check int_t "eta from the slow pipe" 4 r.Omega.eta.(1);
  (match Omega.explain twin dag r with
   | [ (1, 4, Omega.Dependence 0) ] -> ()
   | _ -> Alcotest.fail "expected a 4-NOP dependence stall");
  let dag2 = Dag.of_block two_loads in
  let c =
    Omega.evaluate_with_pipes twin dag2 ~order:[| 0; 1 |]
      ~choice:[| Some 1; Some 1 |]
  in
  match Omega.explain twin dag2 c with
  | [ (1, 1, Omega.Conflict 1) ] -> ()
  | _ -> Alcotest.fail "expected a conflict attributed to the slow pipe"

(* ------------------------------------------------------------------ *)
(* Omega.State: push/pop discipline                                    *)

let state_push_pop_roundtrip =
  qtest ~count:200 "push-all/pop-all restores a pristine state"
    gen_block_and_order print_block_and_order
    (fun (_, dag, order) ->
      let st = Omega.State.create machine dag in
      let ready0 = Omega.State.ready_list st in
      Array.iter (fun pos -> Omega.State.push st pos) order;
      let nops_full = Omega.State.nops st in
      let r = Omega.evaluate machine dag ~order in
      let ok1 = nops_full = r.Omega.nops in
      Array.iter (fun _ -> Omega.State.pop st) order;
      ok1
      && Omega.State.depth st = 0
      && Omega.State.nops st = 0
      && Omega.State.ready_list st = ready0)

let state_interleaved =
  qtest ~count:100 "interleaved push/pop agrees with from-scratch evaluation"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 12))
    (fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let blk = random_block rng n in
      let dag = Dag.of_block blk in
      let st = Omega.State.create machine dag in
      (* Random walk: push a random ready instruction or pop. *)
      let ok = ref true in
      for _ = 1 to 40 do
        let ready = Omega.State.ready_list st in
        let can_push = ready <> [] && Omega.State.depth st < n in
        let do_push =
          if Omega.State.depth st = 0 then can_push
          else if not can_push then false
          else Rng.bool rng
        in
        if do_push then
          Omega.State.push st (Rng.choose rng (Array.of_list ready))
        else if Omega.State.depth st > 0 then Omega.State.pop st;
        (* Invariant: partial nops equal evaluating the prefix from
           scratch. *)
        let prefix = Omega.State.prefix st in
        let st2 = Omega.State.create machine dag in
        Array.iter (fun pos -> Omega.State.push st2 pos) prefix;
        if Omega.State.nops st2 <> Omega.State.nops st then ok := false
      done;
      !ok)

let test_state_guards () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Const (Operand.Imm 1) Operand.Null;
        tu ~id:2 Op.Neg (Operand.Ref 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let st = Omega.State.create machine dag in
  Alcotest.check_raises "push not-ready"
    (Invalid_argument "Omega.State.push: instruction not ready") (fun () ->
      Omega.State.push st 1);
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Omega.State.pop: empty schedule") (fun () ->
      Omega.State.pop st);
  Omega.State.push st 0;
  Alcotest.check_raises "push scheduled"
    (Invalid_argument "Omega.State.push: instruction not ready") (fun () ->
      Omega.State.push st 0);
  check bool_t "ready after push" true (Omega.State.is_ready st 1)

let test_complete_greedily_preserves_state () =
  let rng = Rng.create 77 in
  let blk = random_block rng 10 in
  let dag = Dag.of_block blk in
  let st = Omega.State.create machine dag in
  (match Omega.State.ready_list st with
   | pos :: _ -> Omega.State.push st pos
   | [] -> Alcotest.fail "no ready instruction");
  let depth = Omega.State.depth st in
  let nops = Omega.State.nops st in
  let r = Omega.State.complete_greedily st in
  check int_t "complete schedule length" (Block.length blk)
    (Array.length r.Omega.order);
  check int_t "depth preserved" depth (Omega.State.depth st);
  check int_t "nops preserved" nops (Omega.State.nops st)

let test_push_on_validation () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Const (Operand.Imm 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let st = Omega.State.create machine dag in
  Alcotest.check_raises "load needs a pipe"
    (Invalid_argument "Omega.State.push: operation requires a pipeline")
    (fun () -> Omega.State.push_on st 0 ~pipe:None);
  Alcotest.check_raises "load on wrong pipe"
    (Invalid_argument "Omega.State.push: pipeline is not a candidate")
    (fun () -> Omega.State.push_on st 0 ~pipe:(Some 1));
  Alcotest.check_raises "const takes no pipe"
    (Invalid_argument "Omega.State.push: pipeline is not a candidate")
    (fun () -> Omega.State.push_on st 1 ~pipe:(Some 0))

(* ------------------------------------------------------------------ *)
(* Interlock models                                                    *)

let interlock_models_agree =
  qtest ~count:300 "NOP padding, implicit and explicit interlocks agree"
    gen_block_and_order print_block_and_order
    (fun (_, dag, order) ->
      let r = Omega.evaluate machine dag ~order in
      let n = Array.length order in
      let padded = Interlock.nop_padded dag r in
      let t_padded = Interlock.execute_padded padded in
      let stalls, t_implicit =
        Interlock.implicit_interlock machine dag ~order
      in
      let tags = Interlock.explicit_tags machine dag r in
      let t_tagged = Interlock.execute_tagged tags in
      t_padded = n + r.Omega.nops
      && t_implicit = t_padded
      && t_tagged = t_padded
      && stalls = r.Omega.eta)

let test_padded_structure () =
  let blk =
    Block.of_tuples_exn
      [ tu ~id:1 Op.Load (Operand.Var "x") Operand.Null;
        tu ~id:2 Op.Neg (Operand.Ref 1) Operand.Null ]
  in
  let dag = Dag.of_block blk in
  let r = Omega.evaluate machine dag ~order:[| 0; 1 |] in
  let padded = Interlock.nop_padded dag r in
  (* Load (latency 2) then Neg: one NOP between them. *)
  match padded with
  | [ Interlock.Insn l; Interlock.Nop; Interlock.Insn g ] ->
    check bool_t "load first" true (l.Tuple.op = Op.Load);
    check bool_t "neg last" true (g.Tuple.op = Op.Neg)
  | _ -> Alcotest.fail "unexpected padded shape"

let () =
  Alcotest.run "machine"
    [ ( "descriptions",
        [ Alcotest.test_case "pipe validation" `Quick test_pipe_validation;
          Alcotest.test_case "simulation machine (table 4/5)" `Quick
            test_machine_tables;
          Alcotest.test_case "machine validation" `Quick
            test_machine_validation;
          Alcotest.test_case "demo machine (table 2/3)" `Quick
            test_demo_machine_multi;
          Alcotest.test_case "preset lookup" `Quick test_presets_find;
          Alcotest.test_case "text roundtrip" `Quick
            test_machine_text_roundtrip;
          Alcotest.test_case "text format" `Quick test_machine_parse_format;
          Alcotest.test_case "text errors" `Quick test_machine_parse_errors;
          machine_text_roundtrip_random ] );
      ( "omega",
        [ Alcotest.test_case "dependence delay (2.1)" `Quick
            test_dependence_delay;
          Alcotest.test_case "conflict delay (2.1)" `Quick
            test_conflict_delay;
          Alcotest.test_case "latency hidden by useful work" `Quick
            test_no_delay_when_hidden;
          Alcotest.test_case "rejects illegal orders" `Quick
            test_evaluate_rejects_illegal;
          Alcotest.test_case "empty block" `Quick test_empty_block;
          Alcotest.test_case "span" `Quick test_span;
          omega_matches_reference;
          omega_invariants;
          omega_minimal;
          omega_entry_matches_reference;
          omega_multi_pipe_matches_reference ] );
      ( "explain",
        [ explain_accounts_for_all_stalls;
          Alcotest.test_case "dependence example" `Quick
            test_explain_examples;
          Alcotest.test_case "conflict example" `Quick test_explain_conflict;
          Alcotest.test_case "pipes recorded in result" `Quick
            test_pipes_recorded_in_result;
          Alcotest.test_case "explain uses recorded pipes" `Quick
            test_explain_uses_recorded_pipes ] );
      ( "state",
        [ state_push_pop_roundtrip;
          state_interleaved;
          Alcotest.test_case "guards" `Quick test_state_guards;
          Alcotest.test_case "complete_greedily non-destructive" `Quick
            test_complete_greedily_preserves_state;
          Alcotest.test_case "push_on validation" `Quick
            test_push_on_validation ] );
      ( "interlock",
        [ interlock_models_agree;
          Alcotest.test_case "padded structure" `Quick test_padded_structure
        ] ) ]
