open Pipesched_ir
open Pipesched_machine
module Interp = Pipesched_frontend.Interp

type violation =
  | Shape of { what : string; expected : int; got : int }
  | Not_permutation of { slot : int; pos : int }
  | Illegal_pipe of { slot : int; pos : int; pipe : int }
  | Dependence_order of {
      producer : int;
      consumer : int;
      producer_slot : int;
      consumer_slot : int;
    }
  | Dependence_stall of {
      producer : int;
      consumer : int;
      available : int;
      issued : int;
    }
  | Conflict_stall of {
      pipe : int;
      earlier : int;
      later : int;
      ready : int;
      issued : int;
    }
  | Issue_not_monotonic of { slot : int; prev : int; cur : int }
  | Eta_mismatch of { slot : int; claimed : int; actual : int }
  | Nop_mismatch of { claimed : int; replayed : int }
  | Ordering_violated of {
      stronger : string;
      stronger_nops : int;
      weaker : string;
      weaker_nops : int;
    }
  | Semantics_diverged of { var : string; reference : int; scheduled : int }
  | Check_crashed of { what : string }

let explain = function
  | Shape { what; expected; got } ->
    Printf.sprintf "result shape: %s has length %d, block has %d" what got
      expected
  | Not_permutation { slot; pos } ->
    Printf.sprintf
      "order is not a permutation: slot %d holds position %d (out of range \
       or already used)"
      slot pos
  | Illegal_pipe { slot; pos; pipe } ->
    Printf.sprintf
      "illegal pipeline: slot %d (original position %d) recorded pipe %d, \
       which is not a candidate for its operation"
      slot pos pipe
  | Dependence_order { producer; consumer; producer_slot; consumer_slot } ->
    Printf.sprintf
      "dependence order: position %d (slot %d) reads position %d, which is \
       scheduled later (slot %d)"
      consumer consumer_slot producer producer_slot
  | Dependence_stall { producer; consumer; available; issued } ->
    Printf.sprintf
      "dependence stall violated: position %d issued at tick %d but its \
       producer at position %d is only available at tick %d"
      consumer issued producer available
  | Conflict_stall { pipe; earlier; later; ready; issued } ->
    Printf.sprintf
      "conflict stall violated: position %d issued at tick %d but pipe %d \
       (last enqueued by position %d) only re-accepts at tick %d"
      later issued pipe earlier ready
  | Issue_not_monotonic { slot; prev; cur } ->
    Printf.sprintf
      "issue ticks not increasing: slot %d issues at %d after slot %d \
       issued at %d"
      slot cur (slot - 1) prev
  | Eta_mismatch { slot; claimed; actual } ->
    Printf.sprintf
      "eta mismatch at slot %d: schedule claims %d NOPs, replay inserts %d"
      slot claimed actual
  | Nop_mismatch { claimed; replayed } ->
    Printf.sprintf "NOP count mismatch: schedule claims %d, replay counts %d"
      claimed replayed
  | Ordering_violated { stronger; stronger_nops; weaker; weaker_nops } ->
    Printf.sprintf
      "scheduler ordering violated: %s found %d NOPs but %s found %d \
       (expected %s <= %s)"
      stronger stronger_nops weaker weaker_nops stronger weaker
  | Semantics_diverged { var; reference; scheduled } ->
    Printf.sprintf
      "semantics diverged: variable %s is %d in the original block but %d \
       after reordering"
      var reference scheduled
  | Check_crashed { what } ->
    Printf.sprintf "certifier sub-check crashed: %s" what

let pp fmt v = Format.pp_print_string fmt (explain v)

let certified vs = vs = []
let explain_all vs = String.concat "\n" (List.map explain vs)

(* Dependences recomputed from the tuples themselves — independent of
   Dag.of_block, so a DAG-construction bug is also caught.  [preds.(v)]
   lists every earlier position [v] must wait for: positions whose value
   it references, and memory order (Load after Store, Store after Load,
   Store after Store on the same variable; Load after Load is free).
   This is the full constraint set, not a transitive reduction, which is
   equivalent for issue-time purposes: a constraint implied by a chain
   [u -> w -> v] is weaker than the chain's two constraints combined
   (latencies are >= 1). *)
let recompute_preds tus =
  let n = Array.length tus in
  let pos_of_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i (tu : Tuple.t) -> Hashtbl.replace pos_of_id tu.id i) tus;
  let preds = Array.make n [] in
  for v = 0 to n - 1 do
    let tu = tus.(v) in
    List.iter
      (fun id ->
        match Hashtbl.find_opt pos_of_id id with
        | Some u when u <> v -> preds.(v) <- u :: preds.(v)
        | Some _ | None -> ())
      (Tuple.value_refs tu);
    (match Tuple.memory_var tu with
     | None -> ()
     | Some var ->
       for u = 0 to v - 1 do
         match Tuple.memory_var tus.(u) with
         | Some var'
           when var' = var
                && (Tuple.writes_memory tu || Tuple.writes_memory tus.(u)) ->
           preds.(v) <- u :: preds.(v)
         | Some _ | None -> ()
       done)
  done;
  preds

(* A pipe clock "never used" sentinel negative enough that
   [sentinel + enqueue] can never exceed a real tick. *)
let never = min_int / 2

let latency_of machine pipe = if pipe < 0 then 1 else (Machine.pipe machine pipe).Pipe.latency

(* The from-scratch replay: walk the schedule slot by slot, computing
   each minimal legal issue tick from (a) the previous slot's tick + 1,
   (b) every recomputed producer's availability, and (c) the chosen
   pipe's last enqueue + its enqueue time.  Cold start (quiescent
   pipes), matching every scheduler entry point certified here. *)
let replay machine tus preds (r : Omega.result) =
  let n = Array.length tus in
  let issue = Array.make n 0 in
  let avail = Array.make n 0 in (* by original position *)
  let last_use = Array.make (max 1 (Machine.pipe_count machine)) never in
  for k = 0 to n - 1 do
    let pos = r.Omega.order.(k) in
    let base = if k = 0 then 0 else issue.(k - 1) + 1 in
    let t = ref base in
    List.iter (fun u -> if avail.(u) > !t then t := avail.(u)) preds.(pos);
    let pipe = r.Omega.pipes.(k) in
    if pipe >= 0 then begin
      let ready = last_use.(pipe) + (Machine.pipe machine pipe).Pipe.enqueue in
      if ready > !t then t := ready
    end;
    issue.(k) <- !t;
    if pipe >= 0 then last_use.(pipe) <- !t;
    avail.(pos) <- !t + latency_of machine pipe
  done;
  issue

let check_shapes n (r : Omega.result) =
  let dim what a =
    let got = Array.length a in
    if got <> n then [ Shape { what; expected = n; got } ] else []
  in
  dim "order" r.Omega.order @ dim "eta" r.Omega.eta
  @ dim "issue" r.Omega.issue @ dim "pipes" r.Omega.pipes

let check_permutation n (r : Omega.result) =
  let seen = Array.make n false in
  let bad = ref [] in
  for slot = n - 1 downto 0 do
    let pos = r.Omega.order.(slot) in
    if pos < 0 || pos >= n || seen.(pos) then
      bad := Not_permutation { slot; pos } :: !bad
    else seen.(pos) <- true
  done;
  !bad

let check_pipes machine tus (r : Omega.result) =
  let npipes = Machine.pipe_count machine in
  let bad = ref [] in
  Array.iteri
    (fun slot pos ->
      let pipe = r.Omega.pipes.(slot) in
      let cands = Machine.candidates machine tus.(pos).Tuple.op in
      let legal =
        match cands with
        | [] -> pipe = -1
        | _ -> pipe >= 0 && pipe < npipes && List.mem pipe cands
      in
      if not legal then bad := Illegal_pipe { slot; pos; pipe } :: !bad)
    r.Omega.order;
  List.rev !bad

let check_dependence_order preds (r : Omega.result) =
  let n = Array.length r.Omega.order in
  let slot_of = Array.make n 0 in
  Array.iteri (fun slot pos -> slot_of.(pos) <- slot) r.Omega.order;
  let bad = ref [] in
  for consumer = 0 to n - 1 do
    List.iter
      (fun producer ->
        if slot_of.(producer) > slot_of.(consumer) then
          bad :=
            Dependence_order
              { producer; consumer;
                producer_slot = slot_of.(producer);
                consumer_slot = slot_of.(consumer) }
            :: !bad)
      preds.(consumer)
  done;
  List.rev !bad

(* Direct constraint checks on the *claimed* issue ticks, so a violated
   schedule is reported as the named constraint it breaks rather than as
   an opaque replay mismatch. *)
let check_claimed_constraints machine preds (r : Omega.result) =
  let n = Array.length r.Omega.order in
  let slot_of = Array.make n 0 in
  Array.iteri (fun slot pos -> slot_of.(pos) <- slot) r.Omega.order;
  let issue_of pos = r.Omega.issue.(slot_of.(pos)) in
  let pipe_of pos = r.Omega.pipes.(slot_of.(pos)) in
  let bad = ref [] in
  for slot = 1 to n - 1 do
    if r.Omega.issue.(slot) <= r.Omega.issue.(slot - 1) then
      bad :=
        Issue_not_monotonic
          { slot; prev = r.Omega.issue.(slot - 1); cur = r.Omega.issue.(slot) }
        :: !bad
  done;
  for consumer = 0 to n - 1 do
    List.iter
      (fun producer ->
        let available = issue_of producer + latency_of machine (pipe_of producer) in
        let issued = issue_of consumer in
        if issued < available then
          bad := Dependence_stall { producer; consumer; available; issued } :: !bad)
      preds.(consumer)
  done;
  let last_on_pipe = Array.make (max 1 (Machine.pipe_count machine)) (-1) in
  for slot = 0 to n - 1 do
    let pipe = r.Omega.pipes.(slot) in
    if pipe >= 0 then begin
      (match last_on_pipe.(pipe) with
       | -1 -> ()
       | prev_slot ->
         let ready =
           r.Omega.issue.(prev_slot) + (Machine.pipe machine pipe).Pipe.enqueue
         in
         if r.Omega.issue.(slot) < ready then
           bad :=
             Conflict_stall
               { pipe;
                 earlier = r.Omega.order.(prev_slot);
                 later = r.Omega.order.(slot);
                 ready;
                 issued = r.Omega.issue.(slot) }
             :: !bad);
      last_on_pipe.(pipe) <- slot
    end
  done;
  List.rev !bad

let check_replay machine tus preds (r : Omega.result) =
  let n = Array.length tus in
  let issue = replay machine tus preds r in
  let bad = ref [] in
  let total = ref 0 in
  for slot = 0 to n - 1 do
    let base = if slot = 0 then 0 else issue.(slot - 1) + 1 in
    let actual = issue.(slot) - base in
    total := !total + actual;
    if r.Omega.eta.(slot) <> actual then
      bad := Eta_mismatch { slot; claimed = r.Omega.eta.(slot); actual } :: !bad
  done;
  if r.Omega.nops <> !total then
    bad := Nop_mismatch { claimed = r.Omega.nops; replayed = !total } :: !bad;
  List.rev !bad

let check machine blk (r : Omega.result) =
  try
    let tus = Block.tuples blk in
    let n = Array.length tus in
    match check_shapes n r with
    | _ :: _ as bad -> bad
    | [] -> (
      match check_permutation n r with
      | _ :: _ as bad -> bad
      | [] ->
        let preds = recompute_preds tus in
        let structural =
          check_pipes machine tus r @ check_dependence_order preds r
        in
        (* Timing only means anything once the structure is sound. *)
        if structural <> [] then structural
        else
          check_claimed_constraints machine preds r
          @ check_replay machine tus preds r)
  with exn -> [ Check_crashed { what = Printexc.to_string exn } ]

let check_ordering pairs =
  let rec go = function
    | (stronger, s_nops) :: rest ->
      List.filter_map
        (fun (weaker, w_nops) ->
          if s_nops > w_nops then
            Some
              (Ordering_violated
                 { stronger; stronger_nops = s_nops; weaker;
                   weaker_nops = w_nops })
          else None)
        rest
      @ go rest
    | [] -> []
  in
  go pairs

let check_semantics ?(seeds = [ 1; 2; 3 ]) blk ~order =
  try
    let scheduled = Block.permute blk order in
    List.concat_map
      (fun seed ->
        let env v = Hashtbl.hash (seed, v) mod 1000 in
        let reference = Interp.run_block blk ~env in
        let result = Interp.run_block scheduled ~env in
        List.filter_map
          (fun (var, x) ->
            match List.assoc_opt var result with
            | Some y when y = x -> None
            | Some y -> Some (Semantics_diverged { var; reference = x; scheduled = y })
            | None -> Some (Semantics_diverged { var; reference = x; scheduled = env var }))
          reference)
      seeds
  with exn -> [ Check_crashed { what = Printexc.to_string exn } ]
