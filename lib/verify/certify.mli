(** Independent schedule certification (the trust boundary; DESIGN §8).

    The search machinery both {e chooses} and {e scores} NOP placement:
    Omega inserts the padding and reports the count the branch-and-bound
    minimizes.  Nothing inside that loop can catch a systematic modelling
    bug — a wrong answer would be scored by the same wrong model.  This
    module re-derives everything a finished schedule claims from first
    principles, sharing {e no} timeline code with {!Pipesched_machine.Omega}:

    - the dependence set is recomputed directly from the tuples (value
      references and memory order), not taken from {!Pipesched_ir.Dag};
    - issue ticks are replayed by a from-scratch simulator over the
      machine description (per-pipe last-enqueue clocks, producer
      availability times);
    - for frontend-compiled blocks, the reordered block is executed by
      the reference interpreter and compared against the original.

    Every failure is a structured {!violation} carrying the evidence; no
    function in this interface raises — internal surprises surface as
    {!Check_crashed}. *)

open Pipesched_ir
open Pipesched_machine

(** One certification failure.  All positions are {e original block
    positions} unless a field is named [slot] (schedule position). *)
type violation =
  | Shape of { what : string; expected : int; got : int }
      (** a result array has the wrong length for the block *)
  | Not_permutation of { slot : int; pos : int }
      (** [order.(slot) = pos] is out of range or a duplicate *)
  | Illegal_pipe of { slot : int; pos : int; pipe : int }
      (** the recorded pipeline is not a candidate for the op (or a pipe
          was recorded for a resource-free op, or none for a piped op) *)
  | Dependence_order of {
      producer : int;
      consumer : int;
      producer_slot : int;
      consumer_slot : int;
    }  (** a consumer is scheduled before its producer *)
  | Dependence_stall of {
      producer : int;
      consumer : int;
      available : int;
      issued : int;
    }
      (** the claimed issue tick violates the producer's pipe latency:
          the consumer issued at [issued] but the producer's result is
          only available at [available] *)
  | Conflict_stall of {
      pipe : int;
      earlier : int;
      later : int;
      ready : int;
      issued : int;
    }
      (** two instructions entered pipeline [pipe] closer together than
          its enqueue time: [later] issued at [issued] but the pipe only
          re-accepts at [ready] *)
  | Issue_not_monotonic of { slot : int; prev : int; cur : int }
      (** claimed issue ticks go backwards (or collide) between
          consecutive slots *)
  | Eta_mismatch of { slot : int; claimed : int; actual : int }
      (** the claimed NOP count before this slot differs from the
          replayed minimal one *)
  | Nop_mismatch of { claimed : int; replayed : int }
      (** the claimed total NOP count differs from the replayed total *)
  | Ordering_violated of {
      stronger : string;
      stronger_nops : int;
      weaker : string;
      weaker_nops : int;
    }
      (** the invariant [stronger <= weaker] between two schedulers'
          NOP counts does not hold (e.g. optimal > windowed) *)
  | Semantics_diverged of { var : string; reference : int; scheduled : int }
      (** the reordered block computes a different final value for [var] *)
  | Check_crashed of { what : string }
      (** a sub-check raised — reported as data, never re-raised *)

(** Human-readable one-line explanation of a violation. *)
val explain : violation -> string

val pp : Format.formatter -> violation -> unit

(** [check machine blk result] certifies one finished schedule of [blk]
    against [machine]: shape, permutation validity, pipeline legality,
    producer-before-consumer order, dependence (latency) and conflict
    (enqueue) constraints on the claimed issue ticks, and agreement of
    the claimed [eta]/[issue]/[nops] with an independent cold-start
    replay.  [[]] means certified.  Never raises. *)
val check : Machine.t -> Block.t -> Omega.result -> violation list

(** [check_ordering pairs] checks the cross-scheduler invariant on a
    best-first list of [(label, nops)] pairs: each entry must have no
    more NOPs than every later one (e.g.
    [[("optimal", o); ("windowed", w); ("list", l)]] demands
    [o <= w <= l]).  Never raises. *)
val check_ordering : (string * int) list -> violation list

(** [check_semantics blk ~order] executes [blk] and its reordering under
    deterministic environments (one per seed, default [[1; 2; 3]]) with
    the reference interpreter and compares every touched variable.
    Meaningful for frontend-compiled blocks; never raises (interpreter
    or permutation failures become {!Check_crashed}). *)
val check_semantics : ?seeds:int list -> Block.t -> order:int array -> violation list

(** [certified vs] is [vs = []]. *)
val certified : violation list -> bool

(** All explanations, one per line. *)
val explain_all : violation list -> string
