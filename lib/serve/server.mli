(** The scheduling service behind [bin/pipesched_server]: request
    handling, the schedule cache, and the line protocol — everything
    except the I/O plumbing (stdin/socket loops live in the binary,
    where they belong).

    {2 Protocol}

    One request per line, one response per line, both compact JSON.

    A scheduling request:
    {v
      {"id": 1, "machine": "simulation",
       "block": "1: Load #a\n2: Load #b\n3: Add t1, t2\n4: Store #c, t3",
       "deadline_ms": 200, "lambda": 100000}
    v}

    [machine] is a preset name or an inline textual description
    ({!Pipesched_machine.Machine.parse} format — either as the string
    itself or as [{"text": "..."}]); [block] is
    {!Pipesched_ir.Block.parse} format.  [id] is echoed back verbatim
    and may be any JSON value (default [null]).  [deadline_ms] and
    [lambda] are optional per-request budget overrides; a deadline maps
    onto the anytime search, which then returns its best incumbent with
    a non-["Complete"] status on expiry.  An optional ["backend"] field
    selects the scheduler by {!Pipesched_core.Scheduler} registry name
    (["bnb"], ["cp"], ["portfolio"], ["windowed"], ["list"]; default the
    server's configured backend); unknown names fail the request.  An optional ["detail": true]
    asks for a ["cached": true|false] field in the response (whether
    the schedule came from the cache) — opt-in, because cached and
    fresh responses to the same default request are byte-identical and
    the load harness is the one client that wants to tell them
    apart.

    The response to a successful request:
    {v
      {"id": 1, "ok": true, "nops": 2, "completed": true,
       "status": "Complete", "order": [0,1,2,3], "eta": [0,0,1,1],
       "issue": [0,1,3,5], "pipes": [0,0,-1,-1]}
    v}

    [order] maps new position to position {e in the submitted block};
    [eta]/[issue]/[pipes] are per new position, as in
    {!Pipesched_machine.Omega.result}.  Failures (parse errors, invalid
    machines, certification failures) are
    [{"id": ..., "ok": false, "error": "..."}].

    A [{"op": "stats"}] request returns cache occupancy and hit/miss
    counters.

    {2 Caching}

    Responses are cached in a bounded {!Pipesched_prelude.Lru} keyed by
    [Machine.fingerprint ^ "\x00" ^ backend ^ "\x00" ^ Canonical.key]:
    everything the search can observe and nothing it cannot (the
    backend is part of the key because different backends may return
    different, equally optimal schedules).  The cached value is the
    solution of the {e canonical} block; both the miss path (fresh
    solve) and the hit path render responses by mapping that same
    canonical solution through {!Pipesched_ir.Canonical.apply}, so a hit
    is byte-identical to the fresh solve by construction — there is no
    separate rendering to drift.  Only [Complete] results are inserted
    (a curtailed incumbent is returned to its requester but never
    poisons the cache), optionally gated by an independent
    {!Pipesched_verify.Certify} pass.

    {2 Degradation and containment}

    A server created with [~degrade:true] answers a request whose
    optimal solve {e raises} (a real bug or an armed
    {!Pipesched_prelude.Fault.Solver} chaos fault) with the
    machine-independent list scheduler instead of an error: the order is
    evaluated by Omega, certified by the independent checker, and marked
    ["degraded": true] with status ["Degraded"] and [completed: false] —
    a legal schedule with no optimality claim.  The daemon also calls
    {!handle_request_degraded} directly for requests it would otherwise
    shed.  Any exception escaping a request — solver, cache insert,
    anything — is confined to that request's error response and counted
    in {!contained}; one poisoned request can never take the process
    down.

    {!handle_line} takes the cache's own mutex only; it is safe to call
    concurrently from many domains (the daemon runs one
    {!Pipesched_parallel.Pool.team} worker per job). *)

type t

(** [create ()] — a fresh server state.

    [cache_capacity] bounds the schedule cache (entries; [0] disables
    caching; default [4096]).  [certify] runs the independent checker on
    every fresh solve before it may enter the cache, failing the request
    on violations (default [false]).  [degrade] answers failed solves
    with the certified list scheduler instead of an error (default
    [false]).  [lambda] and [deadline_ms] are the default per-request
    budgets ([lambda] default
    {!Pipesched_core.Optimal.default_options}[.lambda]; no default
    deadline); requests may override both.  [backend] is the default
    scheduler backend (a {!Pipesched_core.Scheduler} registry name;
    default ["bnb"]; requests may override with a ["backend"] field);
    raises [Invalid_argument] on an unknown name. *)
val create :
  ?cache_capacity:int ->
  ?certify:bool ->
  ?degrade:bool ->
  ?lambda:int ->
  ?deadline_ms:float ->
  ?backend:string ->
  unit ->
  t

(** [handle_request t json] processes one parsed request. *)
val handle_request : t -> Pipesched_prelude.Json.t -> Pipesched_prelude.Json.t

(** [handle_request_degraded t json] answers a scheduling request with
    the certified list scheduler, skipping the optimal search entirely
    — the daemon's graceful-degradation path for requests that would
    otherwise be shed.  The response carries ["degraded": true].
    Non-scheduling fields ([op] etc.) are ignored: this is only ever
    called for scheduling requests. *)
val handle_request_degraded :
  t -> Pipesched_prelude.Json.t -> Pipesched_prelude.Json.t

(** [handle_line t line] parses and processes one protocol line,
    returning the response line (no trailing newline).  Never raises:
    malformed input yields an [ok: false] response. *)
val handle_line : t -> string -> string

(** {!handle_line} for the degraded path: parse + containment around
    {!handle_request_degraded}.  Never raises. *)
val handle_line_degraded : t -> string -> string

(** {2 Counters} (monotone since {!create}) *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_evictions : t -> int
val cache_length : t -> int

(** Exceptions (real or injected) confined to a single request's error
    or degraded response. *)
val contained : t -> int

(** Requests answered by the degraded (list-scheduler) path. *)
val degraded_served : t -> int

(** [set_extra_stats t f] installs a provider of extra fields appended
    to the [stats] response — the daemon uses it to expose queue depth,
    shed and respawn counters through the same op.  [f] must be safe to
    call from any worker domain. *)
val set_extra_stats :
  t -> (unit -> (string * Pipesched_prelude.Json.t) list) -> unit
