module Json = Pipesched_prelude.Json

type job = { line : string; write : string -> unit }

type t = {
  server : Server.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool; (* no new jobs will be accepted *)
  mutable listen_fd : Unix.file_descr option;
  served : int Atomic.t;
}

let create server =
  {
    server;
    queue = Queue.create ();
    qmutex = Mutex.create ();
    qcond = Condition.create ();
    draining = false;
    listen_fd = None;
    served = Atomic.make 0;
  }

let server t = t.server
let served t = Atomic.get t.served

let shutdown_response =
  Json.to_string
    (Json.Assoc
       [ ("id", Json.Null);
         ("ok", Json.Bool false);
         ("error", Json.String "shutting down") ])

let submit t ~line ~write =
  Mutex.lock t.qmutex;
  let accepted = not t.draining in
  if accepted then begin
    Queue.push { line; write } t.queue;
    Condition.signal t.qcond
  end;
  Mutex.unlock t.qmutex;
  accepted

let draining t =
  Mutex.lock t.qmutex;
  let d = t.draining in
  Mutex.unlock t.qmutex;
  d

let begin_shutdown t =
  Mutex.lock t.qmutex;
  t.draining <- true;
  Condition.broadcast t.qcond;
  let fd = t.listen_fd in
  t.listen_fd <- None;
  Mutex.unlock t.qmutex;
  (* Closing the listener kicks the acceptor thread out of accept(2). *)
  match fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* Publication happens under [qmutex] so it cannot interleave with
   [begin_shutdown]'s read: either the shutdown sees the fd and closes
   it, or it has already set [draining] and we close the fd here
   ourselves.  (The old daemon wrote [listen_fd] unlocked, so a SIGTERM
   during startup could miss the fd and leave the acceptor parked in
   accept(2) forever.) *)
let install_listener t fd =
  Mutex.lock t.qmutex;
  let accepted = not t.draining in
  if accepted then t.listen_fd <- Some fd;
  Mutex.unlock t.qmutex;
  if not accepted then (try Unix.close fd with Unix.Unix_error _ -> ());
  accepted

let reader_loop t ic write =
  let rec go () =
    match input_line ic with
    | "" -> go ()
    | line ->
      (* A refused line means the daemon is draining: answer it
         definitively and stop reading — the old [ignore (submit ...)]
         left accepted-but-unanswered clients hanging forever. *)
      if submit t ~line ~write then go () else write shutdown_response
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  go ()

(* Worker domain: drain jobs until the queue is empty *and* intake has
   stopped. *)
let worker t _rank =
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qmutex
    done;
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.qmutex;
      let response = Server.handle_line t.server job.line in
      job.write response;
      Atomic.incr t.served;
      loop ()
    | None ->
      (* Empty and draining: done. *)
      Mutex.unlock t.qmutex
  in
  loop ()
