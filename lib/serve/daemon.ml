module Json = Pipesched_prelude.Json
module Fault = Pipesched_prelude.Fault

type job = {
  line : string;
  write : string -> unit;
  on_done : unit -> unit;
      (* always runs exactly once, whether the job's write succeeded,
         was contained, or the worker died — connection readers rely on
         it to know when it is safe to close the fd *)
}

type admission = Accepted | Answered | Draining

type t = {
  server : Server.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool; (* no new jobs will be accepted *)
  mutable listen_fd : Unix.file_descr option;
  max_queue : int; (* 0 = unbounded *)
  max_inflight : int; (* bound on queued + executing; 0 = unbounded *)
  degrade : bool; (* answer would-be-shed requests with the list scheduler *)
  mutable inflight : int; (* jobs taken but not yet finished (under qmutex) *)
  mutable ewma_ms : float; (* smoothed service time; 0 = unprimed (under qmutex) *)
  mutable jobs : int; (* worker count, for wait estimation *)
  served : int Atomic.t;
  shed : int Atomic.t; (* requests refused by admission control *)
  write_contained : int Atomic.t; (* response writes that failed (EPIPE, chaos) *)
  respawns : int Atomic.t; (* worker domains restarted by the supervisor *)
}

let create ?(max_queue = 0) ?(max_inflight = 0) ?(degrade = false) server =
  let t =
    {
      server;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      draining = false;
      listen_fd = None;
      max_queue;
      max_inflight;
      degrade;
      inflight = 0;
      ewma_ms = 0.0;
      jobs = 1;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      write_contained = Atomic.make 0;
      respawns = Atomic.make 0;
    }
  in
  (* One [stats] op shows the whole service, not just the cache. *)
  Server.set_extra_stats server (fun () ->
      Mutex.lock t.qmutex;
      let depth = Queue.length t.queue and inflight = t.inflight in
      Mutex.unlock t.qmutex;
      [ ("queue_depth", Json.Int depth);
        ("inflight", Json.Int inflight);
        ("served", Json.Int (Atomic.get t.served));
        ("shed", Json.Int (Atomic.get t.shed));
        ("write_contained", Json.Int (Atomic.get t.write_contained));
        ("respawns", Json.Int (Atomic.get t.respawns)) ]);
  t

let server t = t.server
let served t = Atomic.get t.served
let shed t = Atomic.get t.shed
let write_contained t = Atomic.get t.write_contained
let respawns t = Atomic.get t.respawns

let queue_depth t =
  Mutex.lock t.qmutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  d

(* Callers hold qmutex. *)
let observe_locked t ms =
  if ms >= 0.0 then
    t.ewma_ms <- (if t.ewma_ms <= 0.0 then ms else (0.8 *. t.ewma_ms) +. (0.2 *. ms))

let observe_service_ms t ms =
  Mutex.lock t.qmutex;
  observe_locked t ms;
  Mutex.unlock t.qmutex

let shutdown_response =
  Json.to_string
    (Json.Assoc
       [ ("id", Json.Null);
         ("ok", Json.Bool false);
         ("error", Json.String "shutting down") ])

let overload_response id retry_after_ms =
  Json.to_string
    (Json.Assoc
       [ ("id", id);
         ("ok", Json.Bool false);
         ("error", Json.String "overloaded");
         ("retry_after_ms", Json.Int (max 0 retry_after_ms)) ])

(* Expected wait (ms) for a request admitted behind [depth] others,
   from the smoothed per-job service time spread over the workers.
   [depth] is the floor when the EWMA is unprimed: better a too-small
   hint than a zero that invites an instant retry storm. *)
let est_wait_ms t ~depth =
  if t.ewma_ms > 0.0 then t.ewma_ms *. float_of_int depth /. float_of_int (max 1 t.jobs)
  else float_of_int depth

let submit t ~line ~write ~on_done =
  Mutex.lock t.qmutex;
  if t.draining then begin
    Mutex.unlock t.qmutex;
    Draining
  end
  else begin
    let qlen = Queue.length t.queue in
    let depth = qlen + t.inflight in
    (* Admission: refuse when a bound is hit, or when the request's own
       deadline is provably unmeetable at the current depth — solving it
       anyway would burn a worker on an answer the client has already
       abandoned. *)
    let over_bounds =
      (t.max_queue > 0 && qlen >= t.max_queue)
      || (t.max_inflight > 0 && depth >= t.max_inflight)
    in
    let unmeetable =
      (not over_bounds) && t.ewma_ms > 0.0 && depth > 0
      &&
      match Json.parse line with
      | Error _ -> false
      | Ok req -> (
        match Option.bind (Json.member "deadline_ms" req) Json.to_float_opt with
        | Some d when d > 0.0 -> est_wait_ms t ~depth > d
        | _ -> false)
    in
    if over_bounds || unmeetable then begin
      let retry_after = int_of_float (Float.ceil (est_wait_ms t ~depth)) in
      Mutex.unlock t.qmutex;
      Atomic.incr t.shed;
      (* Never a silent drop: a shed request is answered immediately on
         the intake thread — degraded (certified list schedule) when the
         operator opted in, an explicit overload refusal otherwise. *)
      if t.degrade then write (Server.handle_line_degraded t.server line)
      else begin
        let id =
          match Json.parse line with
          | Ok req -> Option.value ~default:Json.Null (Json.member "id" req)
          | Error _ -> Json.Null
        in
        write (overload_response id retry_after)
      end;
      Answered
    end
    else begin
      Queue.push { line; write; on_done } t.queue;
      Condition.signal t.qcond;
      Mutex.unlock t.qmutex;
      Accepted
    end
  end

let draining t =
  Mutex.lock t.qmutex;
  let d = t.draining in
  Mutex.unlock t.qmutex;
  d

let begin_shutdown t =
  Mutex.lock t.qmutex;
  t.draining <- true;
  Condition.broadcast t.qcond;
  let fd = t.listen_fd in
  t.listen_fd <- None;
  Mutex.unlock t.qmutex;
  (* Closing the listener kicks the acceptor thread out of accept(2). *)
  match fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* Publication happens under [qmutex] so it cannot interleave with
   [begin_shutdown]'s read: either the shutdown sees the fd and closes
   it, or it has already set [draining] and we close the fd here
   ourselves.  (The old daemon wrote [listen_fd] unlocked, so a SIGTERM
   during startup could miss the fd and leave the acceptor parked in
   accept(2) forever.) *)
let install_listener t fd =
  Mutex.lock t.qmutex;
  let accepted = not t.draining in
  if accepted then t.listen_fd <- Some fd;
  Mutex.unlock t.qmutex;
  if not accepted then (try Unix.close fd with Unix.Unix_error _ -> ());
  accepted

let reader_loop t ic write =
  (* Per-connection accounting of jobs accepted but not yet finished.
     The caller closes the connection right after we return, so we must
     not return at EOF while a worker still owes this connection a
     response — the old loop did, and the close raced (and beat) the
     response write, losing the reply to any request whose final line
     arrived just before EOF. *)
  let pmutex = Mutex.create () in
  let pcond = Condition.create () in
  let pending = ref 0 in
  let on_done () =
    Mutex.lock pmutex;
    decr pending;
    Condition.signal pcond;
    Mutex.unlock pmutex
  in
  let rec go () =
    match input_line ic with
    | "" -> go ()
    | line -> (
      (* Count before submitting: once the job is in the queue a worker
         may finish it (and run [on_done]) before we run another line. *)
      Mutex.lock pmutex;
      incr pending;
      Mutex.unlock pmutex;
      match submit t ~line ~write ~on_done with
      | Accepted -> go ()
      | Answered ->
        on_done ();
        go ()
      | Draining ->
        on_done ();
        (* Answer definitively and stop reading — the old
           [ignore (submit ...)] left accepted-but-unanswered clients
           hanging forever. *)
        write shutdown_response)
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  go ();
  Mutex.lock pmutex;
  while !pending > 0 do
    Condition.wait pcond pmutex
  done;
  Mutex.unlock pmutex

(* Worker domain: drain jobs until the queue is empty *and* intake has
   stopped. *)
let worker t _rank =
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qmutex
    done;
    match Queue.take_opt t.queue with
    | Some job ->
      t.inflight <- t.inflight + 1;
      Mutex.unlock t.qmutex;
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          (* Runs even when the write raised and this worker is about to
             die: the connection's pending count must come down exactly
             once per job, or its reader waits forever at EOF. *)
          job.on_done ();
          Mutex.lock t.qmutex;
          t.inflight <- t.inflight - 1;
          observe_locked t ((Unix.gettimeofday () -. t0) *. 1000.0);
          Mutex.unlock t.qmutex)
        (fun () ->
          (* [Server.handle_line] never raises — request-level faults are
             contained inside it.  The write back to the client is this
             worker's own hazard: a vanished client (EPIPE, closed pipe)
             or an armed [write_response] chaos fault is an expected,
             per-connection failure and is contained here; anything else
             is an unknown bug and is allowed to kill the worker, which
             the supervisor then respawns. *)
          let response = Server.handle_line t.server job.line in
          (try
             Fault.guard Fault.Write_response ~key:response;
             job.write response
           with
          | Fault.Injected _ | Sys_error _ | End_of_file
          | Unix.Unix_error _ ->
            Atomic.incr t.write_contained);
          Atomic.incr t.served);
      loop ()
    | None ->
      (* Empty and draining: done. *)
      Mutex.unlock t.qmutex
  in
  loop ()

let drained t =
  Mutex.lock t.qmutex;
  let d = t.draining && Queue.is_empty t.queue in
  Mutex.unlock t.qmutex;
  d

let supervise t ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock t.qmutex;
  t.jobs <- jobs;
  Mutex.unlock t.qmutex;
  (* One systhread per worker slot; each runs the worker on its own
     domain and, should the domain die to an uncontained exception,
     respawns it — the service keeps its capacity through worker
     crashes, and the crash is visible as a counter rather than a
     wedged queue. *)
  let slot rank =
    let rec run () =
      let d = Domain.spawn (fun () -> worker t rank) in
      match Domain.join d with
      | () -> ()
      | exception _ ->
        Atomic.incr t.respawns;
        if not (drained t) then run ()
    in
    run ()
  in
  let threads = List.init jobs (fun rank -> Thread.create slot rank) in
  List.iter Thread.join threads
