(** Intake/drain state machine of the scheduling daemon.

    [bin/pipesched_server] used to keep the job queue, the draining
    flag and the listening socket inline; the logic moved here so its
    two shutdown invariants are unit-testable without spawning a
    process:

    + {b no silent drops}: once {!begin_shutdown} has run, an incoming
      request line is answered with
      [{"id":null,"ok":false,"error":"shutting down"}] and the reader
      stops, instead of being [ignore]d while the client waits forever;
    + {b no startup race}: the listening socket is published under the
      queue mutex ({!install_listener}), the same mutex
      {!begin_shutdown} takes — a SIGTERM arriving between [listen(2)]
      and publication either sees the fd (and closes it) or is seen
      (and {!install_listener} closes the fd itself and refuses), so
      the acceptor can never be left parked in [accept(2)].

    Threading: intake runs on systhreads, {!worker} on
    {!Pipesched_parallel.Pool.team} domains; all shared state is under
    one mutex/condition pair. *)

type t

(** [create server] — a fresh daemon around [server].  Not draining,
    no listener, empty queue. *)
val create : Server.t -> t

val server : t -> Server.t

(** The response line sent to a request that arrives while draining. *)
val shutdown_response : string

(** [submit t ~line ~write] enqueues a job unless draining.  Returns
    whether the job was accepted; a refused job is {e not} answered
    (callers that own a client connection should send
    {!shutdown_response} — {!reader_loop} does). *)
val submit : t -> line:string -> write:(string -> unit) -> bool

(** Stop intake: set draining, wake every worker, and close the
    published listener (kicking the acceptor out of [accept(2)]).
    Idempotent. *)
val begin_shutdown : t -> unit

val draining : t -> bool

(** [install_listener t fd] publishes the listening socket so
    {!begin_shutdown} can close it.  If the daemon is already draining
    the fd is closed here and [false] is returned — the caller must
    not start an acceptor on it. *)
val install_listener : t -> Unix.file_descr -> bool

(** [reader_loop t ic write] reads request lines from [ic] until EOF,
    submitting each with [write] as its response channel.  A line
    refused because the daemon is draining is answered with
    {!shutdown_response} via [write] and the loop returns — the client
    gets a definite answer instead of a hang. *)
val reader_loop : t -> in_channel -> (string -> unit) -> unit

(** [worker t rank] drains jobs (handling each with
    {!Server.handle_line} and answering on the job's own writer) until
    the queue is empty {e and} the daemon is draining.  Run one per
    pool domain. *)
val worker : t -> int -> unit

(** Requests answered by workers since {!create}. *)
val served : t -> int
