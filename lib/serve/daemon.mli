(** Intake/admission/drain state machine of the scheduling daemon.

    [bin/pipesched_server] used to keep the job queue, the draining
    flag and the listening socket inline; the logic moved here so its
    invariants are unit-testable without spawning a process:

    + {b no silent drops}: every line that reaches {!submit} gets
      exactly one terminal answer — a scheduling response, a degraded
      response, an [overloaded] refusal, or the [shutting down] line;
    + {b bounded queueing}: with [max_queue]/[max_inflight] set, the
      daemon sheds instead of queueing without bound, so offered load
      beyond capacity cannot grow RSS or latency without limit;
    + {b deadline honesty}: a request whose own [deadline_ms] is
      provably unmeetable at the current depth (estimated wait from a
      smoothed service time already exceeds it) is refused up front
      with a [retry_after_ms] hint instead of being solved for nobody;
    + {b graceful degradation}: with [degrade], would-be-shed requests
      are answered immediately on the intake thread by the certified
      list scheduler ({!Server.handle_line_degraded}) — a legal
      schedule now instead of an optimal schedule never;
    + {b fault containment}: a failed response write (client gone,
      EPIPE, or an armed {!Pipesched_prelude.Fault.Write_response}
      chaos fault) is contained and counted; any {e unexpected}
      exception kills only its worker domain, which {!supervise}
      respawns;
    + {b no close-vs-write race}: {!reader_loop} returns at EOF only
      after every job it submitted has finished, so the caller may
      close the connection immediately;
    + {b no startup race}: the listening socket is published under the
      queue mutex ({!install_listener}), the same mutex
      {!begin_shutdown} takes — a SIGTERM arriving between [listen(2)]
      and publication either sees the fd (and closes it) or is seen
      (and {!install_listener} closes the fd itself and refuses), so
      the acceptor can never be left parked in [accept(2)].

    Threading: intake runs on systhreads, workers on domains (one per
    {!supervise} slot); all shared state is under one mutex/condition
    pair. *)

type t

(** What {!submit} did with a line. *)
type admission =
  | Accepted  (** queued; a worker will answer and then run [on_done] *)
  | Answered  (** shed — already answered (refusal or degraded) on the
                  calling thread; [on_done] will {e not} be run *)
  | Draining  (** refused because the daemon is shutting down; the
                  caller should answer {!shutdown_response} and stop *)

(** [create server] — a fresh daemon around [server].  Not draining,
    no listener, empty queue.  Installs the daemon's counters as the
    server's extra [stats] fields ([queue_depth], [inflight], [served],
    [shed], [write_contained], [respawns]).

    [max_queue] bounds the number of {e queued} (not yet executing)
    jobs; [max_inflight] bounds queued + executing.  [0] (the default)
    means unbounded, preserving the old behavior.  [degrade] answers
    shed requests with the certified list scheduler instead of an
    [overloaded] refusal. *)
val create :
  ?max_queue:int -> ?max_inflight:int -> ?degrade:bool -> Server.t -> t

val server : t -> Server.t

(** The response line sent to a request that arrives while draining. *)
val shutdown_response : string

(** [submit t ~line ~write ~on_done] runs admission control and either
    enqueues the job or answers it on the spot; see {!admission}.
    [on_done] is called exactly once when an [Accepted] job has been
    fully processed (response written or write failure contained) — and
    never for [Answered]/[Draining] — so a connection reader can wait
    for its outstanding jobs before closing the fd. *)
val submit :
  t ->
  line:string ->
  write:(string -> unit) ->
  on_done:(unit -> unit) ->
  admission

(** Stop intake: set draining, wake every worker, and close the
    published listener (kicking the acceptor out of [accept(2)]).
    Idempotent. *)
val begin_shutdown : t -> unit

val draining : t -> bool

(** [install_listener t fd] publishes the listening socket so
    {!begin_shutdown} can close it.  If the daemon is already draining
    the fd is closed here and [false] is returned — the caller must
    not start an acceptor on it. *)
val install_listener : t -> Unix.file_descr -> bool

(** [reader_loop t ic write] reads request lines from [ic] until EOF,
    submitting each with [write] as its response channel.  Shed lines
    are answered inline; a line refused because the daemon is draining
    is answered with {!shutdown_response} and the loop stops reading.
    Returns only once every job this connection submitted has finished,
    so the caller may close the fd immediately after. *)
val reader_loop : t -> in_channel -> (string -> unit) -> unit

(** [worker t rank] drains jobs (handling each with
    {!Server.handle_line} and answering on the job's own writer) until
    the queue is empty {e and} the daemon is draining.  Expected write
    failures are contained (see the module preamble); unexpected
    exceptions propagate and kill the calling domain. *)
val worker : t -> int -> unit

(** [supervise t ~jobs] runs [jobs] supervised worker slots and blocks
    until all have drained.  Each slot runs {!worker} on its own
    domain; a slot whose domain dies to an uncontained exception counts
    a respawn and starts a fresh domain, so worker crashes cost the
    crashing request only, never the service's capacity. *)
val supervise : t -> jobs:int -> unit

(** [observe_service_ms t ms] feeds one service-time observation into
    the EWMA used for [retry_after_ms] and deadline-unmeetable
    estimates.  Workers do this automatically; exposed for tests that
    need a primed estimator without running real jobs. *)
val observe_service_ms : t -> float -> unit

(** {2 Counters} (monotone since {!create}) *)

(** Requests answered by workers. *)
val served : t -> int

(** Requests refused (or degraded) by admission control. *)
val shed : t -> int

(** Response writes that failed and were contained. *)
val write_contained : t -> int

(** Worker domains restarted by {!supervise}. *)
val respawns : t -> int

(** Jobs currently queued (excludes executing). *)
val queue_depth : t -> int
