open Pipesched_ir
open Pipesched_machine
module Json = Pipesched_prelude.Json
module Lru = Pipesched_prelude.Lru
module Budget = Pipesched_prelude.Budget
module Fault = Pipesched_prelude.Fault
module List_sched = Pipesched_sched.List_sched
module Optimal = Pipesched_core.Optimal
module Scheduler = Pipesched_core.Scheduler
module Certify = Pipesched_verify.Certify

(* Cached value: the solution of the *canonical* block.  Only Complete
   solves are stored, so completed/status need not be remembered — a hit
   renders exactly what the fresh Complete solve rendered. *)
type t = {
  cache : Omega.result Lru.t;
  certify : bool;
  degrade : bool;
  lambda : int;
  deadline_ms : float option;
  backend : string; (* default Scheduler registry name for solves *)
  contained : int Atomic.t;
      (* exceptions (real or injected) confined to one request *)
  degraded : int Atomic.t; (* requests answered by the list scheduler *)
  mutable extra_stats : unit -> (string * Json.t) list;
      (* extra fields for the stats op, installed by the daemon (queue
         depth, shed count, ...) so [stats] shows the whole service *)
}

let create ?(cache_capacity = 4096) ?(certify = false) ?(degrade = false)
    ?lambda ?deadline_ms ?(backend = "bnb") () =
  let lambda =
    match lambda with
    | Some l -> l
    | None -> Optimal.default_options.Optimal.lambda
  in
  if Scheduler.find backend = None then
    invalid_arg
      (Printf.sprintf "Server.create: unknown backend %S (have: %s)" backend
         (String.concat ", " Scheduler.names));
  {
    cache = Lru.create ~capacity:cache_capacity;
    certify;
    degrade;
    lambda;
    deadline_ms;
    backend;
    contained = Atomic.make 0;
    degraded = Atomic.make 0;
    extra_stats = (fun () -> []);
  }

let cache_hits t = Lru.hits t.cache
let cache_misses t = Lru.misses t.cache
let cache_evictions t = Lru.evictions t.cache
let cache_length t = Lru.length t.cache
let contained t = Atomic.get t.contained
let degraded_served t = Atomic.get t.degraded
let set_extra_stats t f = t.extra_stats <- f

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                    *)

let error_response id msg =
  Json.Assoc [ ("id", id); ("ok", Json.Bool false); ("error", Json.String msg) ]

let int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

(* [cached] is [Some _] only when the request opted in with
   ["detail": true]: the extra field would otherwise break the
   byte-identity of cached and fresh responses, which the bench and the
   parity tests assert.  [degraded] marks answers produced by the list
   scheduler instead of the optimal search — always explicit, so a
   client can never mistake a degraded schedule for an optimal one. *)
let render id ~order (r : Omega.result) ~completed ~status ~degraded ~cached =
  Json.Assoc
    ([ ("id", id);
       ("ok", Json.Bool true);
       ("nops", Json.Int r.Omega.nops);
       ("completed", Json.Bool completed);
       ("status", Json.String status);
       ("order", int_array order);
       ("eta", int_array r.Omega.eta);
       ("issue", int_array r.Omega.issue);
       ("pipes", int_array r.Omega.pipes) ]
    @ (if degraded then [ ("degraded", Json.Bool true) ] else [])
    @ match cached with
      | None -> []
      | Some b -> [ ("cached", Json.Bool b) ])

let resolve_machine json =
  let of_text text =
    match Machine.parse text with
    | Ok m -> Ok m
    | Error (line, msg) ->
      Error (Printf.sprintf "machine description, line %d: %s" line msg)
  in
  match json with
  | None -> Error "missing \"machine\" field"
  | Some (Json.String s) -> (
    match Machine.Presets.find s with
    | Some m -> Ok m
    | None ->
      if String.contains s '\n' then of_text s
      else
        Error
          (Printf.sprintf "unknown machine preset %S (presets: %s)" s
             (String.concat ", " (List.map fst Machine.Presets.all))))
  | Some json -> (
    match Json.member "text" json with
    | Some (Json.String text) -> of_text text
    | _ -> Error "\"machine\" must be a preset name or {\"text\": ...}")

let resolve_block json =
  match json with
  | None -> Error "missing \"block\" field"
  | Some (Json.String text) -> (
    match Block.parse text with
    | Ok blk when Block.length blk > 0 -> Ok blk
    | Ok _ -> Error "empty block"
    | Error (line, msg) -> Error (Printf.sprintf "block, line %d: %s" line msg))
  | Some _ -> Error "\"block\" must be a string"

let stats_response t id =
  Json.Assoc
    ([ ("id", id);
       ("ok", Json.Bool true);
       ("cache_length", Json.Int (cache_length t));
       ("cache_capacity", Json.Int (Lru.capacity t.cache));
       ("hits", Json.Int (cache_hits t));
       ("misses", Json.Int (cache_misses t));
       ("evictions", Json.Int (cache_evictions t));
       ("contained", Json.Int (Atomic.get t.contained));
       ("degraded", Json.Int (Atomic.get t.degraded)) ]
    @ t.extra_stats ())

let detail_cached req =
  let detail = Json.member "detail" req = Some (Json.Bool true) in
  fun b -> if detail then Some b else None

(* The graceful-degradation answer: the machine-independent list
   scheduler (the paper's seed heuristic), evaluated once by Omega and
   certified by the independent replayer — milliseconds of work and a
   legality guarantee, in exchange for giving up optimality.  Marked
   ["degraded": true] and status ["Degraded"]; [completed] is false
   because no optimality was proved. *)
let degraded_of blk machine t id ~cached =
  let dag = Dag.of_block blk in
  let order = List_sched.schedule List_sched.Max_distance dag in
  let result = Omega.evaluate machine dag ~order in
  match Certify.check machine blk result with
  | _ :: _ as violations ->
    error_response id
      ("degraded schedule failed certification: "
      ^ String.concat "; " (List.map Certify.explain violations))
  | [] ->
    Atomic.incr t.degraded;
    render id ~order:result.Omega.order result ~completed:false
      ~status:"Degraded" ~degraded:true ~cached:(cached false)

let handle_request_degraded t req =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  match resolve_machine (Json.member "machine" req) with
  | Error msg -> error_response id msg
  | Ok machine -> (
    match Machine.validate machine with
    | _ :: _ as diags ->
      error_response id
        ("invalid machine: "
        ^ String.concat "; " (List.map Machine.diagnostic_to_string diags))
    | [] -> (
      match resolve_block (Json.member "block" req) with
      | Error msg -> error_response id msg
      | Ok blk -> degraded_of blk machine t id ~cached:(detail_cached req)))

let schedule_request t id req =
  match resolve_machine (Json.member "machine" req) with
  | Error msg -> error_response id msg
  | Ok machine -> (
    match Machine.validate machine with
    | _ :: _ as diags ->
      error_response id
        ("invalid machine: "
        ^ String.concat "; " (List.map Machine.diagnostic_to_string diags))
    | [] -> (
      match resolve_block (Json.member "block" req) with
      | Error msg -> error_response id msg
      | Ok blk -> (
        let lambda =
          match Option.bind (Json.member "lambda" req) Json.to_int_opt with
          | Some l when l > 0 -> l
          | _ -> t.lambda
        in
        let deadline_s =
          match
            Option.bind (Json.member "deadline_ms" req) Json.to_float_opt
          with
          | Some ms when ms > 0.0 -> Some (ms /. 1000.0)
          | _ -> Option.map (fun ms -> ms /. 1000.0) t.deadline_ms
        in
        let cached = detail_cached req in
        match
          (* Per-request backend override; unknown names fail the
             request, like an unknown machine preset. *)
          match Json.member "backend" req with
          | None -> Ok t.backend
          | Some (Json.String b) ->
            if Scheduler.find b <> None then Ok b
            else
              Error
                (Printf.sprintf "unknown backend %S (have: %s)" b
                   (String.concat ", " Scheduler.names))
          | Some _ -> Error "\"backend\" must be a string"
        with
        | Error msg -> error_response id msg
        | Ok backend -> (
        let c = Canonical.of_block blk in
        (* Backends may return different (equally legal) schedules, and
           cached hits must stay byte-identical to fresh solves — so the
           backend is part of the cache key. *)
        let key =
          Machine.fingerprint machine ^ "\x00" ^ backend ^ "\x00"
          ^ c.Canonical.key
        in
        match Lru.find t.cache key with
        | Some result ->
          render id
            ~order:(Canonical.apply c result.Omega.order)
            result ~completed:true
            ~status:(Budget.status_to_string Budget.Complete)
            ~degraded:false ~cached:(cached true)
        | None -> (
          (* Containment boundary: anything the solve raises — a real
             bug or an armed [solver] chaos fault — is confined to this
             request.  The fault key is the request text itself, so a
             verdict is reproducible yet a client retry carrying a
             distinct attempt marker gets a fresh draw. *)
          match
            Fault.guard Fault.Solver ~key:(Json.to_string req);
            let options =
              { Optimal.default_options with Optimal.lambda; deadline_s }
            in
            let dag = Dag.of_block c.Canonical.block in
            let (module B : Scheduler.S) =
              (* create / the override above validated the name *)
              Option.get (Scheduler.find backend)
            in
            B.schedule ~options machine dag
          with
          | exception exn ->
            Atomic.incr t.contained;
            if t.degrade then degraded_of blk machine t id ~cached
            else
              error_response id
                ("internal error: " ^ Printexc.to_string exn)
          | o -> (
            let result = o.Scheduler.best in
            let completed = o.Scheduler.completed in
            let status = o.Scheduler.status in
            let violations =
              if t.certify then Certify.check machine c.Canonical.block result
              else []
            in
            match violations with
            | _ :: _ ->
              error_response id
                ("certification failed: "
                ^ String.concat "; " (List.map Certify.explain violations))
            | [] ->
              (* Curtailed incumbents are served but never cached: a later
                 request with a looser budget must get its own solve.  A
                 failed insert (an armed [cache_insert] fault) is
                 contained — the cache is an optimization, the answer is
                 already in hand. *)
              (if completed then
                 try Lru.put t.cache key result
                 with _ -> Atomic.incr t.contained);
              render id
                ~order:(Canonical.apply c result.Omega.order)
                result ~completed
                ~status:(Budget.status_to_string status)
                ~degraded:false ~cached:(cached false)))))))

let handle_request t req =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  match Json.member "op" req with
  | Some (Json.String "stats") -> stats_response t id
  | Some (Json.String "ping") ->
    Json.Assoc [ ("id", id); ("ok", Json.Bool true) ]
  | Some (Json.String op) ->
    error_response id (Printf.sprintf "unknown op %S" op)
  | Some _ -> error_response id "\"op\" must be a string"
  | None -> schedule_request t id req

let handle_line t line =
  let response =
    match Json.parse line with
    | Error msg -> error_response Json.Null msg
    | Ok req -> (
      match handle_request t req with
      | resp -> resp
      | exception exn ->
        (* Outer belt-and-braces boundary: even a fault escaping the
           per-request containment above costs only this request. *)
        Atomic.incr t.contained;
        let id = Option.value ~default:Json.Null (Json.member "id" req) in
        error_response id ("internal error: " ^ Printexc.to_string exn))
  in
  Json.to_string response

let handle_line_degraded t line =
  let response =
    match Json.parse line with
    | Error msg -> error_response Json.Null msg
    | Ok req -> (
      match handle_request_degraded t req with
      | resp -> resp
      | exception exn ->
        Atomic.incr t.contained;
        let id = Option.value ~default:Json.Null (Json.member "id" req) in
        error_response id ("internal error: " ^ Printexc.to_string exn))
  in
  Json.to_string response
