(** ASCII visualization of a schedule's pipeline activity.

    One row per clock tick: the instruction issued (or NOP), then one
    column per pipeline showing ['E'] on the tick an operation enqueues,
    ['-'] while its result is still in flight (latency window), and ['.']
    when idle.  Makes the dependence- and conflict-induced bubbles of §2.1
    visible at a glance. *)

open Pipesched_ir

(** [render machine dag result] draws the schedule.  The result must come
    from an evaluation of [dag] on [machine] (same block, default
    pipelines). *)
val render : Machine.t -> Dag.t -> Omega.result -> string
