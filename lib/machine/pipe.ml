type t = { label : string; latency : int; enqueue : int }

let make ~label ~latency ~enqueue =
  if latency < 1 then invalid_arg "Pipe.make: latency must be >= 1";
  if enqueue < 1 then invalid_arg "Pipe.make: enqueue time must be >= 1";
  { label; latency; enqueue }

let non_pipelined p = p.enqueue >= p.latency

let equal (a : t) b = a = b

let pp fmt p =
  Format.fprintf fmt "%s(latency=%d, enqueue=%d)" p.label p.latency p.enqueue
