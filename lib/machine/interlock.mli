(** Architectural delay models (§2.2).

    The paper stresses that how delays are {e implemented} — NOP padding,
    implicit hardware interlocks, or compiler-supplied explicit wait tags —
    is orthogonal to scheduling.  This module realizes all three for an
    evaluated schedule and provides per-model executors; they provably take
    the same number of cycles (asserted by the test suite). *)

open Pipesched_ir

(** A NOP-padded instruction stream. *)
type padded_item = Insn of Tuple.t | Nop

(** [nop_padded dag result] is the schedule with explicit NOPs inserted, as
    a MIPS-style compiler would emit it. *)
val nop_padded : Dag.t -> Omega.result -> padded_item list

(** [execute_padded items] runs the padded stream on a machine that issues
    one item per tick: total ticks consumed (= number of items). *)
val execute_padded : padded_item list -> int

(** [implicit_interlock machine dag ~order] simulates hardware that checks
    dependences and conflicts before issue and stalls as needed, with no
    compiler-inserted delays.  Returns per-instruction stall counts and the
    total issue ticks consumed. *)
val implicit_interlock :
  Machine.t -> Dag.t -> order:int array -> int array * int

(** Explicit-interlock tag in the style of the Tera machine (§2.2): each
    instruction carries the distance (in instructions, within the schedule)
    back to the most recent instruction whose completion or enqueue slot it
    must await, together with the kind of wait. *)
type wait_tag = {
  wait_distance : int option;
      (** [Some d]: wait for the instruction [d] places earlier; [None]: no
          wait needed beyond normal issue. *)
  wait_cycles : int;
      (** ticks after the awaited instruction's issue before this one may
          issue (its latency or enqueue time). *)
}

(** [explicit_tags machine dag result] computes one tag per scheduled
    instruction. *)
val explicit_tags : Machine.t -> Dag.t -> Omega.result -> wait_tag array

(** [execute_tagged tags] runs a tag-annotated stream: each instruction
    issues at [max (prev + 1) (issue(i - d) + cycles)].  Returns the total
    ticks consumed (last issue tick + 1). *)
val execute_tagged : wait_tag array -> int
