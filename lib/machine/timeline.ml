open Pipesched_ir

let render machine dag (r : Omega.result) =
  let blk = Dag.block dag in
  let n = Array.length r.Omega.order in
  let npipes = Machine.pipe_count machine in
  let finish =
    if n = 0 then 0
    else
      Array.to_list (Array.mapi (fun k _ -> k) r.Omega.order)
      |> List.fold_left
           (fun acc k ->
             let pos = r.Omega.order.(k) in
             let lat =
               Machine.latency machine (Block.tuple_at blk pos).Tuple.op
             in
             max acc (r.Omega.issue.(k) + lat))
           0
  in
  (* cell.(tick).(pipe) *)
  let cells = Array.make_matrix (max finish 1) (max npipes 1) '.' in
  Array.iteri
    (fun k pos ->
      let tu = Block.tuple_at blk pos in
      match Machine.default_pipe machine tu.Tuple.op with
      | None -> ()
      | Some p ->
        let t0 = r.Omega.issue.(k) in
        let lat = (Machine.pipe machine p).Pipe.latency in
        for t = t0 + 1 to min (t0 + lat - 1) (finish - 1) do
          if cells.(t).(p) = '.' then cells.(t).(p) <- '-'
        done;
        cells.(t0).(p) <- 'E')
    r.Omega.order;
  (* text per tick *)
  let text = Array.make (max finish 1) "Nop" in
  Array.iteri
    (fun k pos ->
      text.(r.Omega.issue.(k)) <- Tuple.to_string (Block.tuple_at blk pos))
    r.Omega.order;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%4s  %-28s" "tick" "instruction");
  for p = 0 to npipes - 1 do
    Buffer.add_string buf
      (Printf.sprintf " %-10s"
         (Printf.sprintf "%s/%d" (Machine.pipe machine p).Pipe.label p))
  done;
  Buffer.add_char buf '\n';
  let last_issue = if n = 0 then -1 else r.Omega.issue.(n - 1) in
  for t = 0 to finish - 1 do
    let line_text = if t <= last_issue then text.(t) else "(drain)" in
    Buffer.add_string buf (Printf.sprintf "%4d  %-28s" t line_text);
    for p = 0 to npipes - 1 do
      Buffer.add_string buf (Printf.sprintf " %-10s" (String.make 1 cells.(t).(p)))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
