(** Target machine descriptions (§4.1).

    A machine is a set of pipelines (Table 2 / Table 4 of the paper) plus an
    operation-to-pipeline mapping (Table 3 / Table 5).  An operation mapped
    to the empty pipeline set — the paper's [sigma(zeta) = emptyset] case —
    executes in a single cycle, occupies no shared resource, and its result
    is available on the next tick. *)

open Pipesched_ir

type t

(** [make ~name pipes ~assign] builds a machine description.

    [assign] maps each operation kind to the list of pipeline indices (into
    [pipes], 0-based) able to execute it; operations absent from [assign]
    get the empty set (single-cycle, resource-free).  Raises
    [Invalid_argument] on out-of-range indices or duplicate [assign] keys. *)
val make : name:string -> Pipe.t array -> assign:(Op.t * int list) list -> t

val name : t -> string

(** The pipelines, indexed by pipeline id.  Fresh array. *)
val pipes : t -> Pipe.t array

(** Number of pipelines. *)
val pipe_count : t -> int

(** [pipe t pid] is the pipeline with index [pid]. *)
val pipe : t -> int -> Pipe.t

(** All pipelines able to execute [op] (possibly empty). *)
val candidates : t -> Op.t -> int list

(** The default pipeline for [op]: the first candidate, or [None] when the
    operation uses no pipeline.  This is the paper's [sigma] (the algorithm
    of §4.2 fixes one pipeline per operation; choosing among several is the
    multi-pipe extension in {!Pipesched_core}). *)
val default_pipe : t -> Op.t -> int option

(** Result latency of [op] on its default pipeline (1 for resource-free
    operations). *)
val latency : t -> Op.t -> int

(** Structural fingerprint of the description: a compact string that is
    identical for two machines exactly when scheduling cannot tell them
    apart — same pipe parameters in the same id order, same
    op-to-candidate-pipes map (candidate {e order} included, since the
    first candidate is the default pipe).  Names and pipe labels are
    ignored.  Used with {!Pipesched_ir.Canonical} as the schedule-cache
    key. *)
val fingerprint : t -> string

(** {2 Validation}

    Structured validation of machine descriptions, for surfacing
    description mistakes as CLI diagnostics (exit code 2) instead of a
    crash — or a silent misinterpretation — deep inside the search.
    {!make} already rejects out-of-range pipe indices and duplicate
    [assign] keys by raising; {!validate} covers the cases [make]
    accepts but that almost certainly indicate a broken description. *)

type diagnostic =
  | No_pipes  (** the pipeline table is empty *)
  | Bad_latency of { pipe : int; label : string; latency : int }
      (** defensive: unreachable through {!Pipe.make} *)
  | Bad_enqueue of { pipe : int; label : string; enqueue : int }
      (** defensive: unreachable through {!Pipe.make} *)
  | No_candidates of { op : Op.t }
      (** an operation explicitly mapped to the {e empty} pipe set —
          legal (resource-free) but a likely typo in a description file,
          since omitting the op entirely means the same thing *)
  | Duplicate_candidate of { op : Op.t; pipe : int }
      (** the same pipe id listed twice for one operation *)

(** Human-readable one-line rendering of a diagnostic. *)
val diagnostic_to_string : diagnostic -> string

(** [validate m] returns every diagnostic for the description ([[]] =
    clean).  Never raises. *)
val validate : t -> diagnostic list

(** {2 Presets} *)

module Presets : sig
  (** The paper's simulation machine (Tables 4 and 5): a loader with
      latency 2 / enqueue 1 serving [Load], and a multiplier with latency 4
      / enqueue 2 serving [Mul], [Div] and [Mod].  All other operations are
      single-cycle and resource-free. *)
  val simulation : t

  (** The illustrative machine of Tables 2 and 3: two loaders (2/1), two
      adders (4/3) shared by [Add]/[Sub], one multiplier (4/2) shared by
      [Mul]/[Div].  Exercises multi-pipeline selection. *)
  val demo : t

  (** A deeply pipelined machine (loader 4/1, adder 3/1, multiplier 6/2,
      divider 12/12 non-pipelined) used by the extension studies. *)
  val deep : t

  (** A machine whose multiplier and divider have recovery (enqueue)
      times {e exceeding} their result latencies — modelling iterative
      units that must flush between operations.  The only preset on which
      pipeline state can still be hot at a block boundary (see
      {!Pipesched_core.Region} and DESIGN.md): when [enqueue <= latency]
      and every result is consumed in-block, the trailing dependence
      always drains the unit before the block can end. *)
  val throttled : t

  (** A machine with a single universal pipeline of the given parameters:
      every operation (except [Const], kept free) flows through it.  Useful
      for modelling classical single-pipe processors (Bernstein's fixed
      setting when [enqueue = 1]). *)
  val uniform : latency:int -> enqueue:int -> t

  (** All named presets with their lookup keys (for CLIs). *)
  val all : (string * t) list

  (** [find key] looks a preset up by name. *)
  val find : string -> t option
end

(** Render the two description tables (pipeline table and op->pipe map) in
    the style of the paper's Tables 2 and 3. *)
val pp_tables : Format.formatter -> t -> unit

(** {2 Textual machine descriptions}

    A simple line format for describing machines in files (the CLI's
    [--machine-file]):

    {v
      # the Table 4/5 machine
      machine simulation
      pipe loader 2 1          # label latency enqueue
      pipe multiplier 4 2
      ops Load -> 0            # operations -> candidate pipe indices
      ops Mul Div Mod -> 1
    v} *)

(** Serialize a machine in the {!parse} format (round-trips). *)
val to_text : t -> string

(** Parse a textual description.  [Error (line, msg)] points at the first
    offending 1-based line. *)
val parse : string -> (t, int * string) result
