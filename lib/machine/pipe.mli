(** A single hardware pipeline (§2.1, §4.1).

    Two parameters characterize a pipeline for the scheduler:

    - {b latency}: clock ticks between enqueuing an operation and its result
      becoming available (the depth of the pipeline in time);
    - {b enqueue time}: minimum ticks between enqueuing two operations in the
      {e same} pipeline (models stage sharing; a non-pipelined functional
      unit is a pipeline with [enqueue = latency]). *)

type t = private { label : string; latency : int; enqueue : int }

(** [make ~label ~latency ~enqueue] validates [latency >= 1] and
    [1 <= enqueue].  Raises [Invalid_argument] otherwise. *)
val make : label:string -> latency:int -> enqueue:int -> t

(** True when the unit is effectively not pipelined ([enqueue >= latency]). *)
val non_pipelined : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
