(** The NOP-insertion procedure Omega (§2.3, §4.2.2).

    Given a machine, a dependence DAG and a schedule (an ordering of the
    block's tuples), Omega computes the minimum number of NOPs that must be
    inserted before each instruction so that

    - {b dependence} is respected: an instruction issues no earlier than
      [latency] ticks after each producer it reads from, and
    - {b conflict} is avoided: two instructions entering the same pipeline
      issue at least [enqueue] ticks apart.

    Instruction [k] of the schedule issues at tick
    [t(k) = t(k-1) + 1 + eta(k)], with [t(0) = 0]; [eta(k)] is the NOP count
    before instruction [k].  Inserting the minimum NOPs greedily per prefix
    is optimal for a fixed order, since delaying an issue can never allow an
    earlier issue later.

    (The paper's tau formula in §4.2.2 step [3] omits the "+1 per
    intervening instruction" term; this implementation follows the worked
    examples of §2.1, which include it — see DESIGN.md.)

    {!State} is the incremental version used by the branch-and-bound search:
    instructions are pushed one at a time onto a partial schedule and popped
    on backtrack, each push being one "Omega call" in the paper's
    accounting. *)

open Pipesched_ir

type result = {
  order : int array;  (** new position -> original block position *)
  eta : int array;    (** NOPs inserted before each (new) position *)
  issue : int array;  (** issue tick of each (new) position *)
  pipes : int array;
      (** pipeline each (new) position was scheduled on; [-1] =
          resource-free.  Recorded so {!span} and {!explain} measure the
          pipelines a schedule {e actually} used (which differ from the
          per-op defaults for {!evaluate_with_pipes} and the multi-pipe
          search). *)
  nops : int;         (** total NOPs: the paper's mu *)
}

(** Cross-block entry conditions (the paper's footnote 1: adjacent-block
    interactions are handled "by modifying the initial conditions in the
    analysis for each block").

    [pipe_last_use.(p)] is the issue tick — relative to this block's tick
    0 — of the most recent operation enqueued in pipeline [p] by preceding
    code, or a very negative value when the pipeline is quiescent.  A
    pipeline used on the final tick of the previous block has entry
    [-1]. *)
type entry = { pipe_last_use : int array }

(** A quiescent entry state for the given machine. *)
val cold_entry : Machine.t -> entry

(** [identity_order n] is [[|0; 1; ...; n-1|]]. *)
val identity_order : int -> int array

(** [evaluate machine dag ~order] runs Omega on a complete schedule.
    [order] maps new position to original position and must be a legal
    topological order of [dag] (check with {!Dag.is_legal_order}); each
    operation runs on its default pipeline.  [entry] (see {!type-entry})
    carries pipeline state in from preceding code.  Raises
    [Invalid_argument] on an illegal order. *)
val evaluate :
  ?entry:entry -> Machine.t -> Dag.t -> order:int array -> result

(** Like {!evaluate}, but with an explicit pipeline choice per original
    position ([None] = resource-free; must be a candidate pipeline for the
    tuple's operation). *)
val evaluate_with_pipes :
  ?entry:entry ->
  Machine.t -> Dag.t -> order:int array -> choice:int option array -> result

(** Issue-time-based total execution span of a schedule: the largest
    issue tick plus result latency over all instructions (the tick at
    which the block's last value is available).  Latencies come from the
    pipelines recorded in [result.pipes], so spans are correct for
    non-default pipeline choices too. *)
val span : Machine.t -> Dag.t -> result -> int

(** Why an instruction could not issue earlier. *)
type stall_cause =
  | Dependence of int
      (** waiting for the producer at this original position *)
  | Conflict of int  (** the pipeline with this id was still busy *)

(** [explain machine dag result] attributes every non-zero [eta] to its
    binding constraint: for each schedule position with stalls, the NOP
    count and the tightest cause (ties prefer dependences).  Positions
    that issue without delay are omitted, as are stalls forced purely by
    cross-block {!type-entry} state (they have no in-block culprit). *)
val explain :
  Machine.t -> Dag.t -> result -> (int * int * stall_cause) list

(** Render {!explain} for humans, one line per stalled instruction. *)
val explain_to_string : Machine.t -> Dag.t -> result -> string

module State : sig
  type t

  (** A fresh empty partial schedule.  [entry] (default
      {!cold_entry}) carries pipeline state across block boundaries. *)
  val create : ?entry:entry -> Machine.t -> Dag.t -> t

  (** Total number of instructions in the block. *)
  val length : t -> int

  (** Number of instructions currently scheduled (the size of Phi). *)
  val depth : t -> int

  (** NOPs accumulated by the partial schedule (the paper's mu(Phi)). *)
  val nops : t -> int

  (** [is_scheduled st pos] — is the original position already in Phi? *)
  val is_scheduled : t -> int -> bool

  (** [is_ready st pos] — unscheduled with every DAG predecessor scheduled
      (the real legality test [5b], maintained in O(1)). *)
  val is_ready : t -> int -> bool

  (** [push st pos] appends the instruction at original position [pos] on
      its default pipeline, inserting minimal NOPs.  Requires
      [is_ready st pos]. *)
  val push : t -> int -> unit

  (** [push_on st pos ~pipe] appends with an explicit pipeline choice.
      [pipe] must be [None] for resource-free ops or one of the operation's
      candidate pipelines. *)
  val push_on : t -> int -> pipe:int option -> unit

  (** Remove the most recently pushed instruction.  Requires [depth > 0]. *)
  val pop : t -> unit

  (** NOPs inserted before the most recently pushed instruction. *)
  val last_eta : t -> int

  (** Original position pushed at depth [k] (0-based). *)
  val at_depth : t -> int -> int

  (** The scheduled prefix as an order array (fresh, length [depth]). *)
  val prefix : t -> int array

  (** Ready positions, in increasing original-position order. *)
  val ready_list : t -> int list

  (** Issue tick of a scheduled original position. *)
  val issue_of : t -> int -> int

  (** [avail_of st pos] is the tick at which the result of the scheduled
      instruction at [pos] becomes available to consumers: its issue
      tick plus the latency of the pipeline it was actually scheduled on
      (1 when resource-free).  Requires [is_scheduled st pos].  Used by
      the search's dominance fingerprint. *)
  val avail_of : t -> int -> int

  (** [last_use st pid] is the issue tick of the most recent instruction
      scheduled on pipeline [pid], or a large negative sentinel when the
      pipeline is so far unused.  Used by the multi-pipe search to detect
      symmetric pipeline choices. *)
  val last_use : t -> int -> int

  (** Finish the remaining instructions in increasing original-position
      order (legal because block order is topological) and return the
      completed schedule's result, leaving the state unchanged. *)
  val complete_greedily : t -> result

  (** The pipeline state a following block would inherit if it started
      issuing on the tick after this (complete) schedule's last
      instruction.  Requires [depth = length]. *)
  val exit_state : t -> entry
end
