open Pipesched_ir

type result = {
  order : int array;
  eta : int array;
  issue : int array;
  pipes : int array;
  nops : int;
}

let identity_order n = Array.init n (fun i -> i)

let neg_inf = min_int / 2

type entry = { pipe_last_use : int array }

let cold_entry machine =
  { pipe_last_use = Array.make (max (Machine.pipe_count machine) 1) neg_inf }

module State = struct
  type t = {
    dag : Dag.t;
    n : int;
    preds : int array array;       (* Dag adjacency, flattened *)
    succs : int array array;
    default_pipe : int array;      (* by original position; -1 = none *)
    candidate_ok : bool array array; (* [pos].(pipe) valid choice *)
    pipe_latency : int array;      (* by pipeline id *)
    pipe_enqueue : int array;      (* by pipeline id *)
    (* mutable search state *)
    issue : int array;             (* by original position *)
    prod_latency : int array;      (* latency of chosen pipe, by position *)
    scheduled : bool array;
    unsched_preds : int array;
    last_on_pipe : int array;      (* issue tick of last instr per pipe *)
    stack : int array;             (* positions, by depth *)
    eta_stack : int array;
    pipe_stack : int array;        (* chosen pipe per depth; -1 = none *)
    undo_last : int array;         (* previous last_on_pipe per depth *)
    mutable sp : int;
    mutable total_nops : int;
  }

  let create ?entry machine dag =
    let n = Dag.length dag in
    let blk = Dag.block dag in
    let npipes = Machine.pipe_count machine in
    let default_pipe =
      Array.init n (fun i ->
          match Machine.default_pipe machine (Block.tuple_at blk i).Tuple.op with
          | Some p -> p
          | None -> -1)
    in
    let candidate_ok =
      Array.init n (fun i ->
          let cands =
            Machine.candidates machine (Block.tuple_at blk i).Tuple.op
          in
          Array.init npipes (fun p -> List.mem p cands))
    in
    let pipe_latency =
      Array.init npipes (fun p -> (Machine.pipe machine p).Pipe.latency)
    in
    let pipe_enqueue =
      Array.init npipes (fun p -> (Machine.pipe machine p).Pipe.enqueue)
    in
    let preds = Array.init n (fun i -> Dag.preds_arr dag i) in
    let succs = Array.init n (fun i -> Dag.succs_arr dag i) in
    {
      dag;
      n;
      preds;
      succs;
      default_pipe;
      candidate_ok;
      pipe_latency;
      pipe_enqueue;
      issue = Array.make n 0;
      prod_latency = Array.make n 1;
      scheduled = Array.make n false;
      unsched_preds = Array.init n (fun i -> Array.length preds.(i));
      last_on_pipe =
        (match entry with
         | None -> Array.make (max npipes 1) neg_inf
         | Some e ->
           if Array.length e.pipe_last_use < npipes then
             invalid_arg "Omega.State.create: entry state pipe count";
           Array.sub e.pipe_last_use 0 (max npipes 1));
      stack = Array.make n 0;
      eta_stack = Array.make n 0;
      pipe_stack = Array.make n (-1);
      undo_last = Array.make n 0;
      sp = 0;
      total_nops = 0;
    }

  let length st = st.n
  let depth st = st.sp
  let nops st = st.total_nops
  let is_scheduled st pos = st.scheduled.(pos)

  let is_ready st pos =
    (not st.scheduled.(pos)) && st.unsched_preds.(pos) = 0

  let push_on st pos ~pipe =
    if not (is_ready st pos) then
      invalid_arg "Omega.State.push: instruction not ready";
    let p =
      match pipe with
      | None ->
        if st.default_pipe.(pos) <> -1 then
          invalid_arg "Omega.State.push: operation requires a pipeline";
        -1
      | Some p ->
        if p < 0 || p >= Array.length st.candidate_ok.(pos)
           || not st.candidate_ok.(pos).(p)
        then invalid_arg "Omega.State.push: pipeline is not a candidate";
        p
    in
    let base =
      if st.sp = 0 then 0 else st.issue.(st.stack.(st.sp - 1)) + 1
    in
    (* Plain loops, not [Array.iter]: this is the innermost search hot
       path and each closure would be a heap allocation per Omega call. *)
    let t = ref base in
    if p >= 0 then begin
      let c = st.last_on_pipe.(p) + st.pipe_enqueue.(p) in
      if c > !t then t := c
    end;
    let preds = st.preds.(pos) in
    for i = 0 to Array.length preds - 1 do
      let u = preds.(i) in
      let c = st.issue.(u) + st.prod_latency.(u) in
      if c > !t then t := c
    done;
    let eta = !t - base in
    st.issue.(pos) <- !t;
    st.prod_latency.(pos) <- (if p >= 0 then st.pipe_latency.(p) else 1);
    st.scheduled.(pos) <- true;
    let succs = st.succs.(pos) in
    for i = 0 to Array.length succs - 1 do
      let v = succs.(i) in
      st.unsched_preds.(v) <- st.unsched_preds.(v) - 1
    done;
    st.stack.(st.sp) <- pos;
    st.eta_stack.(st.sp) <- eta;
    st.pipe_stack.(st.sp) <- p;
    st.undo_last.(st.sp) <- (if p >= 0 then st.last_on_pipe.(p) else 0);
    if p >= 0 then st.last_on_pipe.(p) <- !t;
    st.sp <- st.sp + 1;
    st.total_nops <- st.total_nops + eta

  let push st pos =
    let dp = st.default_pipe.(pos) in
    push_on st pos ~pipe:(if dp = -1 then None else Some dp)

  let pop st =
    if st.sp = 0 then invalid_arg "Omega.State.pop: empty schedule";
    st.sp <- st.sp - 1;
    let pos = st.stack.(st.sp) in
    let p = st.pipe_stack.(st.sp) in
    st.total_nops <- st.total_nops - st.eta_stack.(st.sp);
    if p >= 0 then st.last_on_pipe.(p) <- st.undo_last.(st.sp);
    let succs = st.succs.(pos) in
    for i = 0 to Array.length succs - 1 do
      let v = succs.(i) in
      st.unsched_preds.(v) <- st.unsched_preds.(v) + 1
    done;
    st.scheduled.(pos) <- false

  let last_eta st =
    if st.sp = 0 then invalid_arg "Omega.State.last_eta: empty schedule";
    st.eta_stack.(st.sp - 1)

  let at_depth st k =
    if k < 0 || k >= st.sp then invalid_arg "Omega.State.at_depth";
    st.stack.(k)

  let prefix st = Array.sub st.stack 0 st.sp

  let ready_list st =
    let acc = ref [] in
    for pos = st.n - 1 downto 0 do
      if is_ready st pos then acc := pos :: !acc
    done;
    !acc

  let last_use st pid =
    if pid < 0 || pid >= Array.length st.last_on_pipe then
      invalid_arg "Omega.State.last_use: bad pipeline id";
    st.last_on_pipe.(pid)

  let issue_of st pos =
    if not st.scheduled.(pos) then
      invalid_arg "Omega.State.issue_of: not scheduled";
    st.issue.(pos)

  let avail_of st pos =
    if not st.scheduled.(pos) then
      invalid_arg "Omega.State.avail_of: not scheduled";
    st.issue.(pos) + st.prod_latency.(pos)

  let snapshot st =
    let order = prefix st in
    let eta = Array.sub st.eta_stack 0 st.sp in
    let issue = Array.map (fun pos -> st.issue.(pos)) order in
    let pipes = Array.sub st.pipe_stack 0 st.sp in
    { order; eta; issue; pipes; nops = st.total_nops }

  let exit_state st =
    if st.sp <> st.n then
      invalid_arg "Omega.State.exit_state: schedule incomplete";
    let shift = if st.sp = 0 then 0 else st.issue.(st.stack.(st.sp - 1)) + 1 in
    {
      pipe_last_use =
        Array.map
          (fun t -> if t <= neg_inf + shift then neg_inf else t - shift)
          st.last_on_pipe;
    }

  let complete_greedily st =
    let start_depth = st.sp in
    for pos = 0 to st.n - 1 do
      if not st.scheduled.(pos) then push st pos
    done;
    let r = snapshot st in
    while st.sp > start_depth do
      pop st
    done;
    r
end

let evaluate_with_pipes ?entry machine dag ~order ~choice =
  let n = Dag.length dag in
  if Array.length order <> n then
    invalid_arg "Omega.evaluate: order length mismatch";
  if not (Dag.is_legal_order dag order) then
    invalid_arg "Omega.evaluate: order violates dependences";
  let st = State.create ?entry machine dag in
  Array.iter (fun pos -> State.push_on st pos ~pipe:choice.(pos)) order;
  State.snapshot st

let evaluate ?entry machine dag ~order =
  let n = Dag.length dag in
  if Array.length order <> n then
    invalid_arg "Omega.evaluate: order length mismatch";
  if not (Dag.is_legal_order dag order) then
    invalid_arg "Omega.evaluate: order violates dependences";
  let st = State.create ?entry machine dag in
  Array.iter (fun pos -> State.push st pos) order;
  State.snapshot st

(* Latency of the pipeline slot [k] actually ran on.  [r.pipes] records
   the chosen pipeline per schedule position, so results produced by
   [evaluate_with_pipes] (or the multi-pipe search) are measured on their
   real pipelines, not the per-op default. *)
let slot_latency machine r k =
  match r.pipes.(k) with
  | -1 -> 1
  | p -> (Machine.pipe machine p).Pipe.latency

let span machine _dag r =
  let n = Array.length r.order in
  if n = 0 then 0
  else begin
    let finish = ref 0 in
    for k = 0 to n - 1 do
      let f = r.issue.(k) + slot_latency machine r k in
      if f > !finish then finish := f
    done;
    !finish
  end

type stall_cause = Dependence of int | Conflict of int

let explain machine dag (r : result) =
  let n = Array.length r.order in
  let new_pos = Array.make (Dag.length dag) (-1) in
  Array.iteri (fun k pos -> new_pos.(pos) <- k) r.order;
  (* The pipeline each slot actually ran on comes from the result itself
     ([r.pipes]), so schedules produced with non-default pipeline choices
     get their stalls attributed to the real culprit pipelines. *)
  let pipe_at k = r.pipes.(k) in
  let lat_of u = slot_latency machine r new_pos.(u) in
  let last_on_pipe = Array.make (max (Machine.pipe_count machine) 1) (-1) in
  let acc = ref [] in
  for k = 0 to n - 1 do
    let pos = r.order.(k) in
    if r.eta.(k) > 0 then begin
      (* Find the constraint whose release time equals the issue tick;
         dependences scanned first so ties blame them. *)
      let cause = ref None in
      List.iter
        (fun u ->
          if !cause = None && r.issue.(new_pos.(u)) + lat_of u = r.issue.(k)
          then cause := Some (Dependence u))
        (Dag.preds dag pos);
      (match pipe_at k with
       | p when p >= 0 && !cause = None ->
         let enq = (Machine.pipe machine p).Pipe.enqueue in
         if
           last_on_pipe.(p) >= 0
           && r.issue.(last_on_pipe.(p)) + enq = r.issue.(k)
         then cause := Some (Conflict p)
       | _ -> ());
      match !cause with
      | Some c -> acc := (k, r.eta.(k), c) :: !acc
      | None ->
        (* Only possible when the stall was forced by cross-block entry
           state (evaluated with ~entry); no in-block culprit to report. *)
        ()
    end;
    match pipe_at k with
    | p when p >= 0 -> last_on_pipe.(p) <- k
    | _ -> ()
  done;
  List.rev !acc

let explain_to_string machine dag (r : result) =
  let blk = Dag.block dag in
  explain machine dag r
  |> List.map (fun (k, eta, cause) ->
         let tu = Block.tuple_at blk r.order.(k) in
         match cause with
         | Dependence u ->
           Printf.sprintf
             "%d NOP%s before [%s]: waiting on the result of [%s]" eta
             (if eta = 1 then "" else "s")
             (Tuple.to_string tu)
             (Tuple.to_string (Block.tuple_at blk u))
         | Conflict p ->
           Printf.sprintf
             "%d NOP%s before [%s]: pipeline %s/%d still busy (enqueue \
              time %d)"
             eta
             (if eta = 1 then "" else "s")
             (Tuple.to_string tu)
             (Machine.pipe machine p).Pipe.label p
             (Machine.pipe machine p).Pipe.enqueue)
  |> String.concat "\n"
