open Pipesched_ir

type t = {
  name : string;
  pipes : Pipe.t array;
  table : (Op.t * int list) list; (* original mapping, for printing *)
  candidates : Op.t -> int list;
}

let make ~name pipes ~assign =
  let npipes = Array.length pipes in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (op, pids) ->
      if Hashtbl.mem tbl op then
        invalid_arg
          ("Machine.make: duplicate mapping for " ^ Op.to_string op);
      List.iter
        (fun pid ->
          if pid < 0 || pid >= npipes then
            invalid_arg "Machine.make: pipeline index out of range")
        pids;
      Hashtbl.replace tbl op pids)
    assign;
  let candidates op = Option.value ~default:[] (Hashtbl.find_opt tbl op) in
  { name; pipes; table = assign; candidates }

let name m = m.name
let pipes m = Array.copy m.pipes
let pipe_count m = Array.length m.pipes
let pipe m pid = m.pipes.(pid)
let candidates m op = m.candidates op

let default_pipe m op =
  match m.candidates op with [] -> None | pid :: _ -> Some pid

let latency m op =
  match default_pipe m op with
  | None -> 1
  | Some pid -> (pipe m pid).Pipe.latency

let fingerprint m =
  (* Everything scheduling observes, nothing it does not: pipe
     parameters in id order (labels and the machine name are cosmetic)
     and the op -> candidate-pipe map with ops in declaration order.
     Candidate order is preserved — [default_pipe] is the first
     candidate, so it is semantically load-bearing. *)
  let buf = Buffer.create 64 in
  Array.iter
    (fun (p : Pipe.t) ->
      Buffer.add_string buf
        (Printf.sprintf "p%d,%d;" p.Pipe.latency p.Pipe.enqueue))
    m.pipes;
  List.iter
    (fun op ->
      match m.candidates op with
      | [] -> ()
      | pids ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%s;" (Op.to_string op)
             (String.concat "," (List.map string_of_int pids))))
    Op.all;
  Buffer.contents buf

type diagnostic =
  | No_pipes
  | Bad_latency of { pipe : int; label : string; latency : int }
  | Bad_enqueue of { pipe : int; label : string; enqueue : int }
  | No_candidates of { op : Op.t }
  | Duplicate_candidate of { op : Op.t; pipe : int }

let diagnostic_to_string = function
  | No_pipes -> "machine has no pipelines"
  | Bad_latency { pipe; label; latency } ->
    Printf.sprintf "pipe %d (%s): non-positive latency %d" pipe label latency
  | Bad_enqueue { pipe; label; enqueue } ->
    Printf.sprintf "pipe %d (%s): non-positive enqueue %d" pipe label enqueue
  | No_candidates { op } ->
    Printf.sprintf
      "operation %s is mapped to an empty pipeline set (drop the line to \
       make it resource-free)"
      (Op.to_string op)
  | Duplicate_candidate { op; pipe } ->
    Printf.sprintf "operation %s lists pipe %d more than once"
      (Op.to_string op) pipe

let validate m =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if Array.length m.pipes = 0 then add No_pipes;
  Array.iteri
    (fun pid (p : Pipe.t) ->
      if p.Pipe.latency <= 0 then
        add (Bad_latency { pipe = pid; label = p.Pipe.label; latency = p.Pipe.latency });
      if p.Pipe.enqueue <= 0 then
        add (Bad_enqueue { pipe = pid; label = p.Pipe.label; enqueue = p.Pipe.enqueue }))
    m.pipes;
  List.iter
    (fun (op, pids) ->
      if pids = [] then add (No_candidates { op });
      let seen = Hashtbl.create 4 in
      List.iter
        (fun pid ->
          if Hashtbl.mem seen pid then add (Duplicate_candidate { op; pipe = pid })
          else Hashtbl.replace seen pid ())
        pids)
    m.table;
  List.rev !diags

module Presets = struct
  let simulation =
    make ~name:"simulation"
      [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
         Pipe.make ~label:"multiplier" ~latency:4 ~enqueue:2 |]
      ~assign:[ (Op.Load, [ 0 ]); (Op.Mul, [ 1 ]); (Op.Div, [ 1 ]);
                (Op.Mod, [ 1 ]) ]

  let demo =
    make ~name:"demo"
      [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
         Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
         Pipe.make ~label:"adder" ~latency:4 ~enqueue:3;
         Pipe.make ~label:"adder" ~latency:4 ~enqueue:3;
         Pipe.make ~label:"multiplier" ~latency:4 ~enqueue:2 |]
      ~assign:[ (Op.Load, [ 0; 1 ]); (Op.Add, [ 2; 3 ]); (Op.Sub, [ 2; 3 ]);
                (Op.Mul, [ 4 ]); (Op.Div, [ 4 ]) ]

  let deep =
    make ~name:"deep"
      [| Pipe.make ~label:"loader" ~latency:4 ~enqueue:1;
         Pipe.make ~label:"adder" ~latency:3 ~enqueue:1;
         Pipe.make ~label:"multiplier" ~latency:6 ~enqueue:2;
         Pipe.make ~label:"divider" ~latency:12 ~enqueue:12 |]
      ~assign:[ (Op.Load, [ 0 ]); (Op.Add, [ 1 ]); (Op.Sub, [ 1 ]);
                (Op.Neg, [ 1 ]); (Op.And, [ 1 ]); (Op.Or, [ 1 ]);
                (Op.Xor, [ 1 ]); (Op.Shl, [ 1 ]); (Op.Shr, [ 1 ]);
                (Op.Mul, [ 2 ]); (Op.Div, [ 3 ]); (Op.Mod, [ 3 ]) ]

  let uniform ~latency ~enqueue =
    let everything =
      List.filter (fun op -> op <> Op.Const) Op.all
      |> List.map (fun op -> (op, [ 0 ]))
    in
    make
      ~name:(Printf.sprintf "uniform-%d-%d" latency enqueue)
      [| Pipe.make ~label:"pipe" ~latency ~enqueue |]
      ~assign:everything

  let throttled =
    make ~name:"throttled"
      [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
         Pipe.make ~label:"multiplier" ~latency:4 ~enqueue:9;
         Pipe.make ~label:"divider" ~latency:6 ~enqueue:14 |]
      ~assign:[ (Op.Load, [ 0 ]); (Op.Mul, [ 1 ]); (Op.Div, [ 2 ]);
                (Op.Mod, [ 2 ]) ]

  let all =
    [ ("simulation", simulation); ("demo", demo); ("deep", deep);
      ("throttled", throttled);
      ("uniform", uniform ~latency:4 ~enqueue:1) ]

  let find key = List.assoc_opt key all
end

let pp_tables fmt m =
  Format.fprintf fmt "Machine %S@." m.name;
  Format.fprintf fmt "  %-12s %-4s %-8s %-8s@." "Function" "Id" "Latency"
    "Enqueue";
  Array.iteri
    (fun pid (p : Pipe.t) ->
      Format.fprintf fmt "  %-12s %-4d %-8d %-8d@." p.Pipe.label pid
        p.Pipe.latency p.Pipe.enqueue)
    m.pipes;
  Format.fprintf fmt "  %-12s %s@." "Operation" "Pipelines";
  List.iter
    (fun (op, pids) ->
      Format.fprintf fmt "  %-12s {%s}@." (Op.to_string op)
        (String.concat ", " (List.map string_of_int pids)))
    m.table

let to_text m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "machine %s\n" m.name);
  Array.iter
    (fun (p : Pipe.t) ->
      Buffer.add_string buf
        (Printf.sprintf "pipe %s %d %d\n" p.Pipe.label p.Pipe.latency
           p.Pipe.enqueue))
    m.pipes;
  List.iter
    (fun (op, pids) ->
      Buffer.add_string buf
        (Printf.sprintf "ops %s -> %s\n" (Op.to_string op)
           (String.concat " " (List.map string_of_int pids))))
    m.table;
  Buffer.contents buf

let parse text =
  let name = ref "machine" in
  let pipes = ref [] in
  let assign = ref [] in
  let exception Fail of int * string in
  let fail lineno msg = raise (Fail (lineno, msg)) in
  let words s =
    String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
  in
  try
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let body =
          match String.index_opt raw '#' with
          | Some j -> String.sub raw 0 j
          | None -> raw
        in
        let body = String.trim body in
        if body = "" then ()
        else
          match words body with
          | [ "machine"; n ] -> name := n
          | "pipe" :: rest -> (
            match rest with
            | [ label; lat; enq ] -> (
              match (int_of_string_opt lat, int_of_string_opt enq) with
              | Some latency, Some enqueue -> (
                match Pipe.make ~label ~latency ~enqueue with
                | p -> pipes := p :: !pipes
                | exception Invalid_argument msg -> fail lineno msg)
              | _ -> fail lineno "pipe expects integer latency and enqueue")
            | _ -> fail lineno "pipe expects: pipe <label> <latency> <enqueue>")
          | "ops" :: rest -> (
            let rec split_arrow before = function
              | "->" :: after -> Some (List.rev before, after)
              | w :: more -> split_arrow (w :: before) more
              | [] -> None
            in
            match split_arrow [] rest with
            | None | Some ([], _) | Some (_, []) ->
              fail lineno "ops expects: ops <Op>... -> <pipe index>..."
            | Some (op_names, pid_texts) ->
              let ops =
                List.map
                  (fun w ->
                    match Op.of_string w with
                    | Some op -> op
                    | None -> fail lineno ("unknown operation: " ^ w))
                  op_names
              in
              let pids =
                List.map
                  (fun w ->
                    match int_of_string_opt w with
                    | Some p -> p
                    | None -> fail lineno ("bad pipe index: " ^ w))
                  pid_texts
              in
              List.iter (fun op -> assign := (op, pids) :: !assign) ops)
          | w :: _ -> fail lineno ("unknown directive: " ^ w)
          | [] -> ())
      (String.split_on_char '\n' text);
    (match make ~name:!name (Array.of_list (List.rev !pipes))
             ~assign:(List.rev !assign) with
     | m -> Ok m
     | exception Invalid_argument msg -> Error (0, msg))
  with Fail (lineno, msg) -> Error (lineno, msg)
