open Pipesched_ir

type padded_item = Insn of Tuple.t | Nop

let nop_padded dag (r : Omega.result) =
  let blk = Dag.block dag in
  let items = ref [] in
  for k = Array.length r.order - 1 downto 0 do
    items := Insn (Block.tuple_at blk r.order.(k)) :: !items;
    for _ = 1 to r.eta.(k) do
      items := Nop :: !items
    done
  done;
  !items

let execute_padded items = List.length items

let implicit_interlock machine dag ~order =
  let r = Omega.evaluate machine dag ~order in
  let n = Array.length order in
  let total = if n = 0 then 0 else r.issue.(n - 1) + 1 in
  (r.eta, total)

type wait_tag = { wait_distance : int option; wait_cycles : int }

let explicit_tags machine dag (r : Omega.result) =
  let n = Array.length r.order in
  let blk = Dag.block dag in
  let new_pos = Array.make (Dag.length dag) (-1) in
  Array.iteri (fun k pos -> new_pos.(pos) <- k) r.order;
  let pipe_of pos =
    Machine.default_pipe machine (Block.tuple_at blk pos).Tuple.op
  in
  let latency_of pos =
    Machine.latency machine (Block.tuple_at blk pos).Tuple.op
  in
  let last_on_pipe = Array.make (max (Machine.pipe_count machine) 1) (-1) in
  Array.init n (fun k ->
      let pos = r.order.(k) in
      (* Find the constraint with the latest release time; ties prefer the
         nearer instruction (smaller distance), which the executor treats
         identically. *)
      let best = ref None in
      let consider src_new cycles =
        let release = r.issue.(src_new) + cycles in
        match !best with
        | Some (_, _, best_release) when best_release >= release -> ()
        | _ -> best := Some (src_new, cycles, release)
      in
      List.iter
        (fun u -> consider new_pos.(u) (latency_of u))
        (Dag.preds dag pos);
      (match pipe_of pos with
       | Some p ->
         if last_on_pipe.(p) >= 0 then
           consider last_on_pipe.(p)
             (Machine.pipe machine p).Pipe.enqueue;
         last_on_pipe.(p) <- k
       | None -> ());
      match !best with
      | Some (src_new, cycles, release) when k > 0 && release > r.issue.(k - 1) + 1
        ->
        { wait_distance = Some (k - src_new); wait_cycles = cycles }
      | Some _ | None -> { wait_distance = None; wait_cycles = 0 })

let execute_tagged tags =
  let n = Array.length tags in
  if n = 0 then 0
  else begin
    let issue = Array.make n 0 in
    for k = 0 to n - 1 do
      let base = if k = 0 then 0 else issue.(k - 1) + 1 in
      let t =
        match tags.(k).wait_distance with
        | None -> base
        | Some d -> max base (issue.(k - d) + tags.(k).wait_cycles)
      in
      issue.(k) <- t
    done;
    issue.(n - 1) + 1
  end
