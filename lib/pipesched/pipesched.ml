(** The umbrella namespace: one [open Pipesched] exposes every library.

    {ul
    {- {!Op}, {!Operand}, {!Tuple}, {!Block}, {!Dag} — the tuple IR.}
    {- {!Pipe}, {!Machine}, {!Omega}, {!Interlock}, {!Timeline} — the
       pipelined-machine model and the NOP-insertion procedure.}
    {- {!Ast}, {!Lexer}, {!Parser}, {!Gen}, {!Opt}, {!Interp},
       {!Compile} — the compiler front end.}
    {- {!List_sched}, {!Baselines} — the seed heuristic and baselines.}
    {- {!Optimal}, {!Windowed}, {!Region} — the paper's search and its
       extensions.}
    {- {!Liveness}, {!Alloc}, {!Codegen}, {!Asm} — the back end.}
    {- {!Frequency}, {!Generator} — synthetic benchmarks.}
    {- {!Certify} — the independent schedule certifier (trust boundary).}
    {- {!Cfg}, {!Lower}, {!Cfg_schedule}, {!Emit} — whole programs.}
    {- {!Stats}, {!Study}, {!Experiments}, {!Ablation}, {!Paper} — the
       reproduction harness.}} *)

module Bitset = Pipesched_prelude.Bitset
module Rng = Pipesched_prelude.Rng

module Pool = Pipesched_parallel.Pool

module Op = Pipesched_ir.Op
module Operand = Pipesched_ir.Operand
module Tuple = Pipesched_ir.Tuple
module Block = Pipesched_ir.Block
module Dag = Pipesched_ir.Dag

module Pipe = Pipesched_machine.Pipe
module Machine = Pipesched_machine.Machine
module Omega = Pipesched_machine.Omega
module Interlock = Pipesched_machine.Interlock
module Timeline = Pipesched_machine.Timeline

module Ast = Pipesched_frontend.Ast
module Lexer = Pipesched_frontend.Lexer
module Parser = Pipesched_frontend.Parser
module Gen = Pipesched_frontend.Gen
module Opt = Pipesched_frontend.Opt
module Interp = Pipesched_frontend.Interp
module Compile = Pipesched_frontend.Compile

module List_sched = Pipesched_sched.List_sched
module Baselines = Pipesched_sched.Baselines

module Optimal = Pipesched_core.Optimal
module Windowed = Pipesched_core.Windowed
module Region = Pipesched_core.Region

module Liveness = Pipesched_regalloc.Liveness
module Alloc = Pipesched_regalloc.Alloc
module Codegen = Pipesched_regalloc.Codegen
module Asm = Pipesched_regalloc.Asm

module Frequency = Pipesched_synth.Frequency
module Generator = Pipesched_synth.Generator

module Certify = Pipesched_verify.Certify

module Cfg = Pipesched_cflow.Cfg
module Lower = Pipesched_cflow.Lower
module Cfg_schedule = Pipesched_cflow.Schedule
module Emit = Pipesched_cflow.Emit

module Stats = Pipesched_harness.Stats
module Study = Pipesched_harness.Study
module Paper = Pipesched_harness.Paper
module Experiments = Pipesched_harness.Experiments
module Ablation = Pipesched_harness.Ablation
