(** Reproduction drivers: one per table and figure of the paper.

    Each printer emits the paper's reported rows side by side with our
    measured values, so the regenerated artifact is self-comparing.
    [run_all] executes everything (EXPERIMENTS.md is produced from its
    output). *)

(** Per-block results from the main scheduling study, shared by Table 7
    and Figures 1 and 4-7.  Fault-isolated: a block whose search raised
    appears as a [Study.Failed] entry (counted by Table 7) instead of
    killing the sweep. *)
type study = Study.result list

(** [run_study ~seed ~count ()] runs the §5.3 study (16,000 blocks in the
    paper) on the simulation machine.  [lambda] is the curtail point
    (default 50,000 Omega calls); [strong] additionally enables the
    strong-equivalence pruning extension (default off = paper mode).
    [memo] configures the dominance-memoization extension (default
    {!Pipesched_core.Optimal.default_memo}; the cut never changes the
    reported optima, only the Omega calls spent).  [deadline_s] bounds
    the whole sweep in wall-clock seconds and [block_deadline_s] each
    block's search (anytime mode: curtailed blocks record their legal
    incumbents — see Study.run); [cancel] is a shared cancellation
    token.  [jobs] sets the number of worker domains blocks are
    scheduled across; without deadlines, results are identical at any
    job count (see Study.run).  [search_jobs] sets the {e intra-block}
    team size each block's branch-and-bound runs on (two-level scheme;
    default 1 = serial search, results identical at any value — see
    Study.run and Optimal.options).  [strict] disables per-block fault
    containment (fail-fast); [certify] re-checks every schedule with the
    independent certifier (see Study.run_block).  [backend] selects the
    scheduler by {!Pipesched_core.Scheduler} registry name (default
    ["bnb"]; see Study.run_block for what the generic backends report). *)
val run_study :
  ?seed:int -> ?count:int -> ?lambda:int -> ?strong:bool ->
  ?memo:Pipesched_core.Optimal.memo_options ->
  ?deadline_s:float -> ?block_deadline_s:float ->
  ?cancel:Pipesched_prelude.Budget.token -> ?jobs:int ->
  ?search_jobs:int -> ?strict:bool -> ?certify:bool -> ?backend:string ->
  ?progress:(int -> unit) ->
  unit -> study

(** Table 1: search-space sizes for representative blocks (exhaustive vs
    illegal-pruned vs proposed).  Generates blocks matching the paper's
    row sizes; [legal_cutoff] bounds the topological-order count
    (default 10,000,000, printed as ">9,999,000" when hit). *)
val print_table1 :
  ?seed:int -> ?legal_cutoff:int -> Format.formatter -> unit -> unit

(** Tables 2/3 and 4/5: the machine descriptions (inputs, printed for
    completeness). *)
val print_machines : Format.formatter -> unit

(** Table 6: the synthetic statement-frequency table in use. *)
val print_table6 : Format.formatter -> unit

(** Table 7: termination statistics of the study. *)
val print_table7 : Format.formatter -> study -> unit

(** Figure 1: schedules searched vs block size (completed runs). *)
val print_fig1 : Format.formatter -> study -> unit

(** Figure 4: initial and final NOPs vs block size. *)
val print_fig4 : Format.formatter -> study -> unit

(** Figure 5: distribution of block sizes. *)
val print_fig5 : Format.formatter -> study -> unit

(** Figure 6: average search runtime vs block size. *)
val print_fig6 : Format.formatter -> study -> unit

(** Figure 7: percentage of provably optimal runs vs block size. *)
val print_fig7 : Format.formatter -> study -> unit

(** The §2.3 Omega-cost measurement: mean seconds per full-schedule Omega
    evaluation on a typical 15-instruction block (the paper measured
    0.12 ms on a Gould NP1 and 0.3 ms on a Sun 3/50). *)
val omega_cost : ?seed:int -> unit -> float

(** Extension: the study repeated on every preset machine (§6's "ongoing
    work examines more complex pipeline structures").  Blocks are
    scheduled across [jobs] domains. *)
val print_machine_sweep :
  ?seed:int -> ?count:int -> ?jobs:int -> Format.formatter -> unit

(** Extension: optimal NOPs over a grid of multiplier latency and enqueue
    values (the paper's deferred pipeline-structure study in miniature).
    Each grid cell's population is scheduled across [jobs] domains. *)
val print_structure_sweep :
  ?seed:int -> ?count:int -> ?jobs:int -> Format.formatter -> unit

(** Extension: windowed scheduling of very large blocks (§5.3's suggested
    splitting), comparing quality and Omega calls against the full search
    at several window sizes. *)
val print_windowed_study :
  ?seed:int -> ?count:int -> Format.formatter -> unit

(** Extension: entry-state threading across adjacent blocks (footnote 1)
    vs cold-start per-block scheduling, on multiply-heavy regions. *)
val print_region_study :
  ?seed:int -> ?count:int -> Format.formatter -> unit

(** Extension: the quality/time ladder of one-pass heuristics (source
    order, greedy, Gross-style, list) against windowed and full optimal
    search on a shared population. *)
val print_heuristic_study :
  ?seed:int -> ?count:int -> Format.formatter -> unit

(** Extension: named numeric kernels (dot product, FIR, Horner, ...)
    scheduled on the simulation and multi-pipe demo machines. *)
val print_kernel_study : Format.formatter -> unit

(** Extension: register pressure of source/list/optimal schedules (the
    §3.1 premise) and the feasibility/NOP trade-off of the
    pressure-bounded search. *)
val print_pressure_study :
  ?seed:int -> ?count:int -> Format.formatter -> unit

(** Extension: whole programs with loops and branches (§6 "arbitrary
    control flow"), comparing dynamic executed cycles under the optimal
    scheduler, the list schedule alone, and source order. *)
val print_dynamic_study :
  ?seed:int -> ?count:int -> Format.formatter -> unit

(** Extension: the portfolio race (DESIGN.md §14).  Runs
    {!Pipesched_core.Portfolio.run} over [count] machine/block pairs —
    alternating the simulation machine with {!Generator.random_machine}
    draws — and reports per-backend first-proof win counts, the proved
    fraction, and the number of bnb-vs-cp optimum disagreements (always
    0 unless a solver is buggy; CI greps the
    ["portfolio disagreements: 0"] line).  [lambda] is each side's
    budget in its own units (default 50,000). *)
val print_portfolio_study :
  ?seed:int -> ?count:int -> ?lambda:int -> Format.formatter -> unit

(** Run everything in order with the given study size (default 16,000).
    [jobs] is threaded to the main study, the ablation, and the machine
    and structure sweeps; [search_jobs] to the main study only;
    [deadline_s] / [block_deadline_s] deadline the main study (see
    {!run_study}); [backend] selects the main study's scheduler (see
    {!run_study}).  Pass [study] to reuse records already computed (the
    bench harness does, to time the study separately). *)
val run_all :
  ?seed:int -> ?count:int -> ?lambda:int -> ?strong:bool ->
  ?memo:Pipesched_core.Optimal.memo_options ->
  ?deadline_s:float -> ?block_deadline_s:float -> ?jobs:int ->
  ?search_jobs:int -> ?strict:bool -> ?certify:bool -> ?backend:string ->
  ?progress:(int -> unit) ->
  ?study:study -> Format.formatter -> unit
