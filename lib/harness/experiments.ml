open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Generator = Pipesched_synth.Generator
module Frequency = Pipesched_synth.Frequency

type study = Study.result list

let machine = Machine.Presets.simulation

let run_study ?(seed = 1990) ?(count = 16_000) ?(lambda = 50_000)
    ?(strong = false) ?(memo = Optimal.default_memo) ?deadline_s
    ?block_deadline_s ?cancel ?jobs ?search_jobs ?strict ?certify ?backend
    ?progress () =
  let options =
    { Optimal.default_options with
      Optimal.lambda;
      Optimal.strong_equivalence = strong;
      Optimal.memo = memo }
  in
  Study.run ~options ?deadline_s ?block_deadline_s ?cancel ?jobs
    ?search_jobs ?strict ?certify ?backend ?progress ~seed ~count machine

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

(* Generate a block whose optimized size is exactly [target]; widen the
   statement count until we hit it (bounded attempts, then nearest). *)
let block_of_size rng target =
  let best = ref None in
  let attempts = 4000 in
  let rec go i =
    if i >= attempts then
      match !best with
      | Some (_, b) -> b
      | None ->
        (* Unreachable — the first attempt always records a candidate —
           but name the failing request instead of asserting, so a
           future generator change surfaces as an actionable error. *)
        invalid_arg
          (Printf.sprintf
             "Experiments.block_of_size: no synthetic block near %d \
              instructions after %d attempts"
             target attempts)
    else begin
      let p = Generator.sample_params rng in
      let blk = Generator.block rng p in
      let d = abs (Block.length blk - target) in
      (match !best with
       | Some (d0, _) when d0 <= d -> ()
       | _ -> best := Some (d, blk));
      if d = 0 then blk else go (i + 1)
    end
  in
  go 0

let print_table1 ?(seed = 7) ?(legal_cutoff = 10_000_000) fmt () =
  Format.fprintf fmt
    "@.Table 1: Search Space for Representative Examples@.";
  Format.fprintf fmt
    "  (paper columns in parentheses; blocks regenerated at the same sizes)@.";
  Format.fprintf fmt "  %5s  %12s  %22s  %22s@." "insns" "exhaustive"
    "legal-only calls (paper)" "proposed calls (paper)";
  let rng = Rng.create seed in
  List.iter
    (fun (row : Paper.table1_row) ->
      let blk = block_of_size rng row.Paper.insns in
      let dag = Dag.of_block blk in
      let legal =
        match Baselines.count_legal_schedules ~cutoff:legal_cutoff dag with
        | `Exact n -> string_of_int n
        | `At_least _ -> Printf.sprintf ">%d" (legal_cutoff - 1)
      in
      let outcome =
        Optimal.schedule
          ~options:{ Optimal.default_options with Optimal.lambda = legal_cutoff }
          machine dag
      in
      let paper_legal =
        match row.Paper.legal_calls with
        | Some n -> string_of_int n
        | None -> ">9999000"
      in
      Format.fprintf fmt "  %5d  %12.3g  %12s (%9s)  %12d (%9d)@."
        (Block.length blk)
        (Baselines.factorial_float (Block.length blk))
        legal paper_legal outcome.Optimal.stats.Optimal.omega_calls
        row.Paper.proposed_calls)
    Paper.table1

(* ------------------------------------------------------------------ *)
(* Machine tables and Table 6                                          *)

let print_machines fmt =
  Format.fprintf fmt
    "@.Tables 2/3 (illustrative machine) and 4/5 (simulation machine):@.";
  Machine.pp_tables fmt Machine.Presets.demo;
  Machine.pp_tables fmt Machine.Presets.simulation

let print_table6 fmt =
  Format.fprintf fmt
    "@.Table 6: synthetic statement-type frequencies (reconstruction):@.";
  Frequency.pp fmt Frequency.default

(* ------------------------------------------------------------------ *)
(* Table 7                                                             *)

let print_table7 fmt study =
  let total = List.length study in
  let failed = List.length (Study.failures study) in
  let completed, truncated =
    List.partition (fun r -> r.Study.completed) (Study.records study)
  in
  let c = Study.aggregate ~total completed in
  let t = Study.aggregate ~total truncated in
  let p_c = Paper.table7_completed and p_t = Paper.table7_truncated in
  Format.fprintf fmt
    "@.Table 7: Statistics for Scheduling %d Blocks (paper: %d)@." total
    Paper.total_runs;
  Format.fprintf fmt "  %-28s %18s %18s@." "" "Completed(Optimal)"
    "Truncated(Subopt?)";
  let row name f_ours_c f_ours_t f_paper_c f_paper_t =
    Format.fprintf fmt "  %-28s %9s (%6s) %9s (%6s)@." name f_ours_c
      f_paper_c f_ours_t f_paper_t
  in
  let fint x = Printf.sprintf "%d" x in
  let ff1 x = Printf.sprintf "%.2f" x in
  row "Number of Runs" (fint c.Study.runs) (fint t.Study.runs)
    (fint p_c.Paper.runs) (fint p_t.Paper.runs);
  row "Percentage of Runs" (ff1 c.Study.pct) (ff1 t.Study.pct)
    (ff1 p_c.Paper.pct) (ff1 p_t.Paper.pct);
  row "Avg. Instructions/Block" (ff1 c.Study.avg_size) (ff1 t.Study.avg_size)
    (ff1 p_c.Paper.avg_insns) (ff1 p_t.Paper.avg_insns);
  row "Avg. Initial NOPs" (ff1 c.Study.avg_initial_nops)
    (ff1 t.Study.avg_initial_nops)
    (ff1 p_c.Paper.avg_initial_nops)
    (ff1 p_t.Paper.avg_initial_nops);
  row "Avg. Final NOPs" (ff1 c.Study.avg_final_nops)
    (ff1 t.Study.avg_final_nops)
    (ff1 p_c.Paper.avg_final_nops)
    (ff1 p_t.Paper.avg_final_nops);
  row "Avg. Omega Calls" (ff1 c.Study.avg_omega_calls)
    (ff1 t.Study.avg_omega_calls)
    (ff1 p_c.Paper.avg_omega_calls)
    (ff1 p_t.Paper.avg_omega_calls);
  let memo_mean rs =
    Stats.mean (List.map (fun r -> float_of_int r.Study.memo_hits) rs)
  in
  row "Avg. Memo Hits (ext)" (ff1 (memo_mean completed))
    (ff1 (memo_mean truncated)) "-" "-";
  (* Why each truncated run stopped (extension): the lambda call budget,
     a wall-clock deadline, or a cancellation token.  All zeros in the
     completed column by construction; with no deadline configured the
     deadline and cancel counts are zero and the row is deterministic. *)
  let curtails (a : Study.aggregate) =
    Printf.sprintf "%d/%d/%d" a.Study.n_curtailed_lambda
      a.Study.n_curtailed_deadline a.Study.n_cancelled
  in
  row "Curtailed lam/ddl/cancel" (curtails c) (curtails t) "-" "-";
  (* Fault isolation (extension): blocks whose search raised and were
     contained as Failed results rather than killing the sweep.  Always
     0 unless something is genuinely broken — the row is the evidence
     that a long study did not silently drop work. *)
  row "Failed (contained) blocks" (fint failed) "-" "-" "-";
  (* Duplicate elimination (extension): canonically equivalent blocks
     are searched once and fanned out; this row reports how many
     searches actually ran and the share saved. *)
  let uniq, dtotal, rate = Study.dedup_stats study in
  row "Unique Blocks (dedup)"
    (Printf.sprintf "%d/%d" uniq dtotal)
    (Printf.sprintf "%.1f%% dup" (100.0 *. rate))
    "-" "-";
  row "Avg. Search Time (s)"
    (Printf.sprintf "%.4f" c.Study.avg_time_s)
    (Printf.sprintf "%.4f" t.Study.avg_time_s)
    (Printf.sprintf "~%.1f" p_c.Paper.avg_time_s)
    (Printf.sprintf "~%.1f" p_t.Paper.avg_time_s)

(* ------------------------------------------------------------------ *)
(* Figures: per-size series                                            *)

let bucketed study =
  Stats.group_by (fun r -> r.Study.size / 5 * 5) (Study.records study)

let claim fmt key =
  match List.assoc_opt key Paper.figure_claims with
  | Some text -> Format.fprintf fmt "  paper: %s@." text
  | None -> ()

let print_fig1 fmt study =
  Format.fprintf fmt
    "@.Figure 1: Schedules Searched vs Block Size (completed runs)@.";
  claim fmt "fig1";
  Format.fprintf fmt "  %10s %8s %12s %12s %12s@." "size bucket" "runs"
    "mean calls" "p95 calls" "max calls";
  List.iter
    (fun (b, rs) ->
      let rs = List.filter (fun r -> r.Study.completed) rs in
      if rs <> [] then begin
        let calls =
          List.map (fun r -> float_of_int r.Study.omega_calls) rs
        in
        Format.fprintf fmt "  %7d-%2d %8d %12.1f %12.1f %12.0f@." b (b + 4)
          (List.length rs) (Stats.mean calls)
          (Stats.percentile 95.0 calls)
          (snd (Stats.min_max calls))
      end)
    (bucketed study)

let print_fig4 fmt study =
  Format.fprintf fmt "@.Figure 4: Initial and Final NOPs vs Block Size@.";
  claim fmt "fig4";
  Format.fprintf fmt "  %10s %8s %14s %14s@." "size bucket" "runs"
    "mean initial" "mean final";
  List.iter
    (fun (b, rs) ->
      let f sel = Stats.mean (List.map sel rs) in
      Format.fprintf fmt "  %7d-%2d %8d %14.2f %14.2f@." b (b + 4)
        (List.length rs)
        (f (fun r -> float_of_int r.Study.initial_nops))
        (f (fun r -> float_of_int r.Study.final_nops)))
    (bucketed study)

let print_fig5 fmt study =
  Format.fprintf fmt "@.Figure 5: Distribution of Sample Block Sizes@.";
  claim fmt "fig5";
  let recs = Study.records study in
  let sizes = List.map (fun r -> r.Study.size) recs in
  let mean = Stats.mean (List.map float_of_int sizes) in
  Format.fprintf fmt "  mean size = %.2f (paper: 20.6)@." mean;
  List.iter
    (fun (b, count) ->
      let bar = String.make (min 60 (count * 200 / List.length recs)) '#' in
      Format.fprintf fmt "  %3d-%3d %6d %s@." b (b + 4) count bar)
    (Stats.histogram ~bucket:5 sizes)

let print_fig6 fmt study =
  Format.fprintf fmt "@.Figure 6: Runtime vs Block Size@.";
  claim fmt "fig6";
  Format.fprintf fmt "  %10s %8s %14s %14s@." "size bucket" "runs"
    "mean time (s)" "max time (s)";
  List.iter
    (fun (b, rs) ->
      let times = List.map (fun r -> r.Study.time_s) rs in
      Format.fprintf fmt "  %7d-%2d %8d %14.5f %14.5f@." b (b + 4)
        (List.length rs) (Stats.mean times)
        (snd (Stats.min_max times)))
    (bucketed study)

let print_fig7 fmt study =
  Format.fprintf fmt
    "@.Figure 7: Percentage of Provably Optimal Runs vs Block Size@.";
  claim fmt "fig7";
  Format.fprintf fmt "  %10s %8s %12s@." "size bucket" "runs" "% optimal";
  List.iter
    (fun (b, rs) ->
      let opt = List.length (List.filter (fun r -> r.Study.completed) rs) in
      Format.fprintf fmt "  %7d-%2d %8d %12.2f@." b (b + 4) (List.length rs)
        (100.0 *. float_of_int opt /. float_of_int (List.length rs)))
    (bucketed study)

(* ------------------------------------------------------------------ *)
(* Omega microbenchmark (§2.3)                                         *)

let omega_cost ?(seed = 15) () =
  let rng = Rng.create seed in
  (* A typical 15-instruction block, as in the paper's estimate. *)
  let blk = block_of_size rng 15 in
  let dag = Dag.of_block blk in
  let order = List_sched.schedule List_sched.Max_distance dag in
  let reps = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Omega.evaluate machine dag ~order)
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) /. float_of_int reps

(* ------------------------------------------------------------------ *)
(* Extension studies (§5.3, §6 "ongoing work", footnote 1)             *)

let print_machine_sweep ?(seed = 1991) ?(count = 1_000) ?jobs fmt =
  Format.fprintf fmt
    "@.Extension: the same study on other pipeline structures (§6 \
     'ongoing work'):@.";
  Format.fprintf fmt
    "  (last column: completion with the critical-path bound + strong \
     equivalence extensions)@.";
  Format.fprintf fmt "  %-12s %10s %12s %12s %12s %12s@." "machine"
    "% optimal" "avg initial" "avg final" "avg calls" "% opt (ext)";
  let ext_options =
    { Optimal.default_options with
      Optimal.lambda = 50_000;
      Optimal.lower_bound = Optimal.Critical_path;
      Optimal.strong_equivalence = true }
  in
  List.iter
    (fun (name, m) ->
      let records = Study.records (Study.run ?jobs ~seed ~count m) in
      let total = List.length records in
      let completed = List.filter (fun r -> r.Study.completed) records in
      let agg = Study.aggregate ~total records in
      let ext =
        Study.records (Study.run ~options:ext_options ?jobs ~seed ~count m)
      in
      let ext_completed = List.filter (fun r -> r.Study.completed) ext in
      Format.fprintf fmt "  %-12s %10.2f %12.2f %12.2f %12.1f %12.2f@." name
        (100.0 *. float_of_int (List.length completed) /. float_of_int total)
        agg.Study.avg_initial_nops agg.Study.avg_final_nops
        agg.Study.avg_omega_calls
        (100.0
        *. float_of_int (List.length ext_completed)
        /. float_of_int total))
    Machine.Presets.all

(* The paper defers "variations in performance associated with different
   pipeline structures" to later work; this grid is that study in
   miniature: one multiplier-style pipeline swept over latency and
   enqueue, reporting how much of the delay an optimal schedule can hide. *)
let print_structure_sweep ?(seed = 1997) ?(count = 300) ?jobs fmt =
  Format.fprintf fmt
    "@.Extension: pipeline-structure grid (optimal avg NOPs as the \
     multiplier's latency L and enqueue E vary; loader fixed at 2/1):@.";
  let rng = Rng.create seed in
  let blocks =
    Stats.sequential_init count (fun _ ->
        Generator.block rng (Generator.sample_params rng))
  in
  let latencies = [ 1; 2; 4; 6; 8 ] in
  let enqueues = [ 1; 2; 4; 8 ] in
  Format.fprintf fmt "  %8s" "";
  List.iter (fun e -> Format.fprintf fmt " %9s" (Printf.sprintf "E=%d" e))
    enqueues;
  Format.fprintf fmt "@.";
  List.iter
    (fun latency ->
      Format.fprintf fmt "  %8s" (Printf.sprintf "L=%d" latency);
      List.iter
        (fun enqueue ->
          let m =
            Machine.make
              ~name:(Printf.sprintf "grid-%d-%d" latency enqueue)
              [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
                 Pipe.make ~label:"multiplier" ~latency ~enqueue |]
              ~assign:[ (Op.Load, [ 0 ]); (Op.Mul, [ 1 ]); (Op.Div, [ 1 ]);
                        (Op.Mod, [ 1 ]) ]
          in
          let nops =
            Pipesched_parallel.Pool.parallel_map ?jobs
              (fun blk ->
                float_of_int
                  (Optimal.schedule
                     ~options:
                       { Optimal.default_options with
                         Optimal.lambda = 20_000;
                         Optimal.lower_bound = Optimal.Critical_path }
                     m (Dag.of_block blk))
                    .Optimal.best
                    .Omega.nops)
              blocks
          in
          Format.fprintf fmt " %9.2f" (Stats.mean nops))
        enqueues;
      Format.fprintf fmt "@.")
    latencies

let print_windowed_study ?(seed = 1992) ?(count = 150) fmt =
  Format.fprintf fmt
    "@.Extension: windowed scheduling of very large blocks (§5.3):@.";
  let rng = Rng.create seed in
  let dags =
    Stats.sequential_init count (fun _ ->
        Dag.of_block
          (Generator.block rng
             { Generator.statements = 45 + Rng.int rng 25;
               variables = 8 + Rng.int rng 6;
               constants = 2 + Rng.int rng 3 }))
  in
  let sizes = List.map Dag.length dags in
  Format.fprintf fmt "  %d blocks of %d..%d instructions@." count
    (List.fold_left min max_int sizes)
    (List.fold_left max 0 sizes);
  let lambda = 50_000 in
  let options = { Optimal.default_options with Optimal.lambda } in
  Format.fprintf fmt "  %-12s %10s %12s %12s@." "scheduler" "avg NOPs"
    "avg calls" "% complete";
  let report name nops calls complete =
    Format.fprintf fmt "  %-12s %10.2f %12.1f %12.1f@." name
      (Stats.mean nops) (Stats.mean calls)
      (100.0 *. complete /. float_of_int count)
  in
  let full =
    List.map (fun dag -> Optimal.schedule ~options machine dag) dags
  in
  report "full search"
    (List.map (fun o -> float_of_int o.Optimal.best.Omega.nops) full)
    (List.map
       (fun o -> float_of_int o.Optimal.stats.Optimal.omega_calls)
       full)
    (float_of_int
       (List.length
          (List.filter (fun o -> o.Optimal.stats.Optimal.completed) full)));
  List.iter
    (fun window ->
      let ws =
        List.map (fun dag -> Windowed.schedule ~options ~window machine dag) dags
      in
      report
        (Printf.sprintf "window %d" window)
        (List.map (fun w -> float_of_int w.Windowed.best.Omega.nops) ws)
        (List.map (fun w -> float_of_int w.Windowed.omega_calls) ws)
        (float_of_int
           (List.length
              (List.filter
                 (fun w -> w.Windowed.all_windows_completed)
                 ws))))
    [ 5; 10; 20 ]

let print_region_study ?(seed = 1993) ?(count = 150) fmt =
  Format.fprintf fmt
    "@.Extension: threading pipeline state across adjacent blocks \
     (footnote 1):@.";
  (* Boundary effects need a unit whose recovery (enqueue) time exceeds
     its latency; otherwise the trailing dependence of the unit's last
     result drains it before the block can end — a structural finding
     this study also demonstrates (0 hazards on the simulation machine).
     The 'throttled' preset models such iterative units. *)
  let run_config label machine opts =
    let rng = Rng.create seed in
    let warm = ref 0 and cold = ref 0 and claimed = ref 0 in
    let hazards = ref 0 and blocks = ref 0 in
    for _ = 1 to count do
      let dags =
        Stats.sequential_init
          (2 + Rng.int rng 4)
          (fun _ ->
            Dag.of_block
              (Generator.block ~freq:Frequency.mul_heavy rng
                 { Generator.statements = 2 + Rng.int rng 4;
                   variables = 3 + Rng.int rng 3;
                   constants = 1 + Rng.int rng 3 }))
      in
      let r = Region.schedule ~options:opts machine dags in
      warm := !warm + r.Region.total_nops;
      cold := !cold + r.Region.cold_total_nops;
      claimed := !claimed + r.Region.cold_claimed_nops;
      hazards := !hazards + r.Region.cold_hazards;
      blocks := !blocks + List.length dags
    done;
    Format.fprintf fmt
      "  %-28s threaded %5d, cold realized %5d (claimed %5d), hazards \
       %d/%d blocks@."
      label !warm !cold !claimed !hazards !blocks
  in
  let base = Optimal.default_options in
  run_config "simulation, list seed:" machine base;
  run_config "throttled, list seed:" Machine.Presets.throttled base;
  run_config "throttled, source seed:" Machine.Presets.throttled
    { base with
      Optimal.seed = Pipesched_sched.List_sched.Source_order;
      (* source-order incumbents make the point fastest *)
      Optimal.lambda = 2_000 };
  Format.fprintf fmt
    "  (a 'hazard' is a block whose cold-start NOP padding underestimates \
     its true entry constraints: on an interlock-free machine the code \
     would misexecute; threading the exit state repairs it)@."

let print_heuristic_study ?(seed = 1995) ?(count = 2_000) fmt =
  Format.fprintf fmt
    "@.Extension: scheduler quality ladder (the heuristics §1 positions \
     the search against):@.";
  let rng = Rng.create seed in
  let dags =
    Stats.sequential_init count (fun _ ->
        Dag.of_block (Generator.block rng (Generator.sample_params rng)))
  in
  let eval name f =
    let t0 = Unix.gettimeofday () in
    let nops = List.map f dags in
    let dt = Unix.gettimeofday () -. t0 in
    Format.fprintf fmt "  %-22s %10.3f avg NOPs %12.2f us/block@." name
      (Stats.mean (List.map float_of_int nops))
      (1e6 *. dt /. float_of_int count)
  in
  eval "source order" (fun dag ->
      (Omega.evaluate machine dag
         ~order:(Omega.identity_order (Dag.length dag)))
        .Omega.nops);
  eval "greedy (Abraham-style)" (fun dag ->
      (Omega.evaluate machine dag ~order:(Baselines.greedy machine dag))
        .Omega.nops);
  eval "Gross-style lookahead" (fun dag ->
      (Omega.evaluate machine dag ~order:(Baselines.gross machine dag))
        .Omega.nops);
  eval "list schedule [ZaD90]" (fun dag ->
      (Omega.evaluate machine dag
         ~order:(List_sched.schedule List_sched.Max_distance dag))
        .Omega.nops);
  eval "windowed (w=10)" (fun dag ->
      (Windowed.schedule ~window:10 machine dag).Windowed.best.Omega.nops);
  eval "simulated annealing" (fun dag ->
      (Stochastic.anneal ~budget:1_000 machine dag)
        .Stochastic.best
        .Omega.nops);
  eval "optimal search" (fun dag ->
      (Optimal.schedule
         ~options:{ Optimal.default_options with Optimal.lambda = 50_000 }
         machine dag)
        .Optimal.best
        .Omega.nops)

let print_kernel_study fmt =
  Format.fprintf fmt
    "@.Extension: named kernels (NOPs per schedule; simulation machine, \
     and the Table 2/3 multi-pipe machine for the last two columns):@.";
  Format.fprintf fmt "  %-14s %6s %8s %6s %8s %12s %12s@." "kernel" "insns"
    "source" "list" "optimal" "demo single" "demo multi";
  List.iter
    (fun ((k : Pipesched_synth.Kernels.t), prog) ->
      let blk = Pipesched_frontend.Compile.compile_program prog in
      let dag = Dag.of_block blk in
      let nops_of m order = (Omega.evaluate m dag ~order).Omega.nops in
      let source =
        nops_of machine (Omega.identity_order (Block.length blk))
      in
      let listed =
        nops_of machine (List_sched.schedule List_sched.Max_distance dag)
      in
      let optimal = (Optimal.schedule machine dag).Optimal.best.Omega.nops in
      let demo = Machine.Presets.demo in
      (* The multi-pipe search space explodes under the paper's
         mu(Phi)-only bound (dot4 does not finish in 10M calls); the
         critical-path bound plus strong equivalence prove the optimum in
         a few thousand. *)
      let strong =
        { Optimal.default_options with
          Optimal.lower_bound = Optimal.Critical_path;
          Optimal.strong_equivalence = true;
          Optimal.lambda = 2_000_000 }
      in
      let demo_single =
        (Optimal.schedule ~options:strong demo dag).Optimal.best.Omega.nops
      in
      let multi_outcome = fst (Optimal.schedule_multi ~options:strong demo dag) in
      (* A default-pipe schedule is a valid multi-pipe schedule, so the
         best found is the better of the two; '*' marks a curtailed multi
         search (unproven). *)
      let demo_multi = min demo_single multi_outcome.Optimal.best.Omega.nops in
      let marker =
        if multi_outcome.Optimal.stats.Optimal.completed then "" else "*"
      in
      Format.fprintf fmt "  %-14s %6d %8d %6d %8d %12d %11d%s@."
        k.Pipesched_synth.Kernels.name (Block.length blk) source listed
        optimal demo_single demo_multi marker)
    (Pipesched_synth.Kernels.straight_line ())

let print_pressure_study ?(seed = 1996) ?(count = 1_000) fmt =
  Format.fprintf fmt
    "@.Extension: register pressure (§3.1's 'enough registers' premise):@.";
  let module Alloc = Pipesched_regalloc.Alloc in
  let module Liveness = Pipesched_regalloc.Liveness in
  let rng = Rng.create seed in
  let blocks =
    Stats.sequential_init count (fun _ ->
        Generator.block rng (Generator.sample_params rng))
  in
  let pressure_of blk order =
    Liveness.max_pressure (Block.permute blk order)
  in
  let source = ref [] and listed = ref [] and optimal = ref [] in
  List.iter
    (fun blk ->
      let dag = Dag.of_block blk in
      source :=
        float_of_int (Liveness.max_pressure blk) :: !source;
      listed :=
        float_of_int
          (pressure_of blk (List_sched.schedule List_sched.Max_distance dag))
        :: !listed;
      let o = Optimal.schedule machine dag in
      optimal :=
        float_of_int (pressure_of blk o.Optimal.best.Omega.order)
        :: !optimal)
    blocks;
  Format.fprintf fmt
    "  max live values per block: source %.2f avg / %.0f max, list %.2f / \
     %.0f, optimal %.2f / %.0f@."
    (Stats.mean !source)
    (snd (Stats.min_max !source))
    (Stats.mean !listed)
    (snd (Stats.min_max !listed))
    (Stats.mean !optimal)
    (snd (Stats.min_max !optimal));
  Format.fprintf fmt
    "  (scheduling for latency lengthens live ranges: the pressure the \
     paper's §3.1 pre-pass must budget for)@.";
  Format.fprintf fmt "  pressure-bounded search (our extension):@.";
  Format.fprintf fmt "  %10s %12s %12s@." "registers" "% feasible"
    "avg NOPs";
  List.iter
    (fun k ->
      let feasible = ref 0 and nops = ref [] in
      List.iter
        (fun blk ->
          let dag = Dag.of_block blk in
          match Optimal.schedule_bounded ~registers:k machine dag with
          | Ok o ->
            incr feasible;
            nops := float_of_int o.Optimal.best.Omega.nops :: !nops
          | Error () -> ())
        blocks;
      Format.fprintf fmt "  %10d %12.1f %12.2f@." k
        (100.0 *. float_of_int !feasible /. float_of_int count)
        (Stats.mean !nops))
    [ 2; 3; 4; 6; 8 ]

let print_dynamic_study ?(seed = 1994) ?(count = 120) fmt =
  Format.fprintf fmt
    "@.Extension: whole programs with control flow (§6 'arbitrary control \
     flow') — dynamic cycles:@.";
  let module Cfl = Pipesched_cflow in
  let rng = Rng.create seed in
  (* The last two configurations add a MIPS-style branch delay slot
     ([Hen81]): padded with NOPs vs filled by the emitter. *)
  let schedulers =
    [ ("optimal search", Optimal.default_options, 0, true);
      ( "list schedule only",
        { Optimal.default_options with Optimal.lambda = 1 }, 0, true );
      ( "source order",
        { Optimal.default_options with
          Optimal.lambda = 1;
          Optimal.seed = Pipesched_sched.List_sched.Source_order },
        0, true );
      ("optimal, slot padded", Optimal.default_options, 1, false);
      ("optimal, slot filled", Optimal.default_options, 1, true) ]
  in
  let source_index = 2 in
  let totals = Array.make (List.length schedulers) 0 in
  let static = Array.make (List.length schedulers) 0 in
  let programs = ref 0 in
  for _ = 1 to count do
    let prog =
      Generator.structured_program rng
        { Generator.statements = 8 + Rng.int rng 10;
          variables = 4 + Rng.int rng 4;
          constants = 2 + Rng.int rng 3 }
        ~depth:2
    in
    (* Re-optimizing after merging forwards loads across the former
       block boundary — register promotion along the merged edge. *)
    let cfg =
      Cfl.Cfg.optimize_blocks (Cfl.Cfg.merge_chains (Cfl.Lower.lower prog))
    in
    let env v = Hashtbl.hash (seed, v) mod 50 in
    let runs =
      List.map
        (fun (_, options, delay_slots, fill) ->
          let s = Cfl.Schedule.schedule ~options machine cfg in
          match Cfl.Emit.emit ~registers:64 ~delay_slots ~fill s with
          | Error _ -> None
          | Ok text ->
            let _, ticks = Cfl.Emit.execute ~delay_slots text ~env in
            Some (ticks, s.Cfl.Schedule.total_nops))
        schedulers
    in
    if List.for_all Option.is_some runs then begin
      incr programs;
      List.iteri
        (fun i r ->
          let ticks, nops = Option.get r in
          totals.(i) <- totals.(i) + ticks;
          static.(i) <- static.(i) + nops)
        runs
    end
  done;
  Format.fprintf fmt
    "  %d random structured programs (loops + branches), executed to \
     completion:@."
    !programs;
  List.iteri
    (fun i (name, _, _, _) ->
      Format.fprintf fmt
        "  %-22s %8d dynamic cycles total (%5.1f%% vs source order), %5d \
         static NOPs@."
        name totals.(i)
        (100.0 *. float_of_int totals.(i)
         /. float_of_int (max 1 totals.(source_index)))
        static.(i))
    schedulers

(* ------------------------------------------------------------------ *)
(* Portfolio study: the bnb / cp race over a mixed corpus (DESIGN §14) *)

let print_portfolio_study ?(seed = 1990) ?(count = 80) ?(lambda = 50_000)
    fmt =
  Format.fprintf fmt
    "@.Portfolio study: bnb vs cp racing over %d machine/block pairs \
     (lambda %d per side)@."
    count lambda;
  Format.fprintf fmt
    "  (alternating the simulation machine and random machines; first \
     side to prove optimality wins and cancels the peer)@.";
  let options = { Optimal.default_options with Optimal.lambda } in
  let wins_bnb = ref 0 and wins_cp = ref 0 and neither = ref 0 in
  let disagreements = ref 0 and proved = ref 0 in
  let sum_initial = ref 0 and sum_best = ref 0 in
  for i = 1 to count do
    let m =
      if i mod 2 = 0 then machine
      else Generator.random_machine (Rng.create ((seed + i) * 7919))
    in
    let blk = Generator.of_seed (seed + i) in
    let dag = Dag.of_block blk in
    match Portfolio.run ~options m dag with
    | o ->
      (match o.Portfolio.winner with
       | Some Portfolio.Bnb -> incr wins_bnb
       | Some Portfolio.Cp -> incr wins_cp
       | None -> incr neither);
      if o.Portfolio.proved <> None then incr proved;
      sum_initial := !sum_initial + o.Portfolio.initial.Omega.nops;
      sum_best := !sum_best + o.Portfolio.best.Omega.nops
    | exception Portfolio.Disagreement msg ->
      incr disagreements;
      Format.fprintf fmt "  DISAGREEMENT: %s@." msg
  done;
  let avg s = float_of_int !s /. float_of_int (max 1 count) in
  Format.fprintf fmt
    "  first proof: bnb %d, cp %d, neither %d (both curtailed)@." !wins_bnb
    !wins_cp !neither;
  Format.fprintf fmt
    "  proved optimal: %d/%d blocks; avg NOPs list %.2f -> best %.2f@."
    !proved count (avg sum_initial) (avg sum_best);
  (* The line CI greps: the two exact backends agreed on every block. *)
  Format.fprintf fmt "  portfolio disagreements: %d@." !disagreements

let run_all ?(seed = 1990) ?(count = 16_000) ?lambda ?strong ?memo
    ?deadline_s ?block_deadline_s ?jobs ?search_jobs ?strict ?certify
    ?backend ?progress ?study fmt =
  Format.fprintf fmt
    "Reproduction: Nisar & Dietz, Optimal Code Scheduling for \
     Multiple-Pipeline Processors (1990)@.";
  print_machines fmt;
  print_table6 fmt;
  print_table1 fmt ();
  let study =
    match study with
    | Some s -> s
    | None ->
      run_study ~seed ~count ?lambda ?strong ?memo ?deadline_s
        ?block_deadline_s ?jobs ?search_jobs ?strict ?certify ?backend
        ?progress ()
  in
  print_table7 fmt study;
  print_fig1 fmt study;
  print_fig4 fmt study;
  print_fig5 fmt study;
  print_fig6 fmt study;
  print_fig7 fmt study;
  let c = omega_cost () in
  Format.fprintf fmt
    "@.Omega cost (sec per 15-insn schedule evaluation): %.3e (paper: \
     1.2e-4 Gould NP1, 3e-4 Sun 3/50)@."
    c;
  let ablation_count = max 200 (count / 8) in
  Ablation.print fmt
    (Ablation.run ?jobs ~seed:(seed + 1) ~count:ablation_count
       ~lambda:20_000 machine);
  print_machine_sweep ~count:(max 200 (count / 16)) ?jobs fmt;
  print_structure_sweep ~count:(max 100 (count / 50)) ?jobs fmt;
  print_windowed_study ~count:(max 50 (count / 100)) fmt;
  print_region_study ~count:(max 50 (count / 100)) fmt;
  print_heuristic_study ~count:(max 200 (count / 8)) fmt;
  print_kernel_study fmt;
  print_pressure_study ~count:(max 150 (count / 20)) fmt;
  print_dynamic_study ~count:(max 40 (count / 150)) fmt;
  print_portfolio_study ~seed:(seed + 2) ~count:(max 40 (count / 200)) fmt
