module Json = Pipesched_prelude.Json
module Budget = Pipesched_prelude.Budget

(* ------------------------------------------------------------------ *)
(* KMV distinct-count sketch over canonical hashes.

   Keeps the [k] smallest distinct hash values seen.  Union of sketches
   = sketch of the union, so the estimate is invariant under how the
   stream was partitioned across shards — unlike any LRU-based count.
   Exact while fewer than [k] distinct values have been seen; above
   that, the classic (k-1) * range / kth-minimum estimator. *)

module Kmv = struct
  let k = 256

  type t = { mutable values : int array; mutable n : int }
  (* [values.(0 .. n-1)] sorted ascending, distinct. *)

  let create () = { values = Array.make k 0; n = 0 }

  (* Largest index with values.(i) < h, plus one — i.e. insertion point;
     [`Found] if h is present. *)
  let search t h =
    let lo = ref 0 and hi = ref t.n in
    let found = ref false in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let v = t.values.(mid) in
      if v = h then (
        found := true;
        lo := mid;
        hi := mid)
      else if v < h then lo := mid + 1
      else hi := mid
    done;
    (!lo, !found)

  (* splitmix64 finalizer.  The estimator needs hashes uniform over
     [0, max_int]; re-mixing here makes the sketch correct whatever the
     caller feeds it (64-bit FNV in production, Hashtbl.hash's 30 bits
     in tests). *)
  let mix h0 =
    let open Int64 in
    let z = of_int h0 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

  (* [h] is already mixed (insertion from [add] or another sketch). *)
  let insert t h =
    let pos, found = search t h in
    if not found then
      if t.n < k then (
        Array.blit t.values pos t.values (pos + 1) (t.n - pos);
        t.values.(pos) <- h;
        t.n <- t.n + 1)
      else if pos < k then (
        Array.blit t.values pos t.values (pos + 1) (k - pos - 1);
        t.values.(pos) <- h)

  let add t hash = insert t (mix hash)

  let merge_into ~dst src =
    for i = 0 to src.n - 1 do
      insert dst src.values.(i)
    done

  let estimate t =
    if t.n < k then float_of_int t.n
    else
      let kth = float_of_int t.values.(k - 1) in
      float_of_int (k - 1) *. float_of_int max_int /. kth

  (* Order-sensitive fold of the sketch contents: two sketches with the
     same fingerprint hold the same values with overwhelming
     probability, so including this in the deterministic render catches
     any divergence in the observed hash population. *)
  let fingerprint t =
    let acc = ref 0 in
    for i = 0 to t.n - 1 do
      acc := ((!acc * 1000003) + t.values.(i)) land max_int
    done;
    !acc

  let to_json t = Json.List (List.init t.n (fun i -> Json.Int t.values.(i)))

  let of_json j =
    match Json.to_list_opt j with
    | None -> Error "sketch: expected a list"
    | Some xs ->
      let t = create () in
      let ok =
        List.for_all
          (fun x ->
            match Json.to_int_opt x with
            | Some v ->
              (* Stored values are already mixed. *)
              insert t v;
              true
            | None -> false)
          xs
      in
      if ok then Ok t else Error "sketch: non-integer entry"
end

(* ------------------------------------------------------------------ *)
(* Log-bucketed wall-time histogram: 8 buckets per decade over
   [1us, 100s) — 64 buckets, ~33% relative resolution, constant
   memory, and merges by addition.  Times are not deterministic, so
   this feeds {!pp} and {!to_json} but never the deterministic
   render. *)

module Timehist = struct
  let buckets = 64
  let per_decade = 8.0
  let t0 = 1e-6

  type t = int array

  let create () : t = Array.make buckets 0

  let index time =
    if time <= t0 then 0
    else
      let i = int_of_float (Float.floor (per_decade *. log10 (time /. t0))) in
      if i < 0 then 0 else if i >= buckets then buckets - 1 else i

  let add (t : t) time = t.(index time) <- t.(index time) + 1

  let representative i =
    t0 *. Float.pow 10.0 ((float_of_int i +. 0.5) /. per_decade)

  let quantile (t : t) q =
    let total = Array.fold_left ( + ) 0 t in
    if total = 0 then 0.0
    else
      let target =
        let r = int_of_float (Float.ceil (q *. float_of_int total)) in
        if r < 1 then 1 else if r > total then total else r
      in
      let acc = ref 0 and ans = ref 0.0 and found = ref false in
      for i = 0 to buckets - 1 do
        if not !found then (
          acc := !acc + t.(i);
          if !acc >= target then (
            ans := representative i;
            found := true))
      done;
      !ans

  let merge_into ~(dst : t) (src : t) =
    for i = 0 to buckets - 1 do
      dst.(i) <- dst.(i) + src.(i)
    done

  let count (t : t) = Array.fold_left ( + ) 0 t
end

(* ------------------------------------------------------------------ *)
(* Keyed variant of the time histogram: one log-bucket sketch per string
   key (the load harness keys by response stage — hit / fresh /
   curtailed / ...).  Merges key-wise, so per-stage percentiles from
   concurrent connections or shards fold like everything else here. *)

module Keyed = struct
  type t = (string, Timehist.t) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let hist (t : t) key =
    match Hashtbl.find_opt t key with
    | Some h -> h
    | None ->
      let h = Timehist.create () in
      Hashtbl.add t key h;
      h

  let add t key time = Timehist.add (hist t key) time

  let count t key =
    match Hashtbl.find_opt t key with
    | Some h -> Timehist.count h
    | None -> 0

  let total (t : t) =
    Hashtbl.fold (fun _ h acc -> acc + Timehist.count h) t 0

  let quantile t key q =
    match Hashtbl.find_opt t key with
    | Some h -> Timehist.quantile h q
    | None -> 0.0

  let keys (t : t) =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

  let merge_into ~dst (src : t) =
    Hashtbl.iter (fun k h -> Timehist.merge_into ~dst:(hist dst k) h) src
end

(* ------------------------------------------------------------------ *)

let size_buckets = 20
let size_bucket_width = 5

type t = {
  mutable blocks : int;
  mutable failed : int;
  mutable completed : int;
  mutable curtailed_lambda : int;
  mutable curtailed_deadline : int;
  mutable cancelled : int;
  mutable dedup_hits : int;
  mutable sum_size : int;
  mutable sum_initial_nops : int;
  mutable sum_final_nops : int;
  mutable sum_omega_calls : int;
  mutable sum_memo_hits : int;
  mutable sum_schedules_completed : int;
  mutable min_size : int;  (* max_int while no record folded *)
  mutable max_size : int;
  size_hist : int array;
  sketch : Kmv.t;
  times : Timehist.t;
  mutable sum_time_s : float;
}

let create () =
  {
    blocks = 0;
    failed = 0;
    completed = 0;
    curtailed_lambda = 0;
    curtailed_deadline = 0;
    cancelled = 0;
    dedup_hits = 0;
    sum_size = 0;
    sum_initial_nops = 0;
    sum_final_nops = 0;
    sum_omega_calls = 0;
    sum_memo_hits = 0;
    sum_schedules_completed = 0;
    min_size = max_int;
    max_size = 0;
    size_hist = Array.make size_buckets 0;
    sketch = Kmv.create ();
    times = Timehist.create ();
    sum_time_s = 0.0;
  }

let add_record t ?(from_cache = false) ~hash (r : Study.record) =
  t.blocks <- t.blocks + 1;
  (match r.Study.status with
  | Budget.Complete -> t.completed <- t.completed + 1
  | Budget.Curtailed_lambda -> t.curtailed_lambda <- t.curtailed_lambda + 1
  | Budget.Curtailed_deadline -> t.curtailed_deadline <- t.curtailed_deadline + 1
  | Budget.Cancelled -> t.cancelled <- t.cancelled + 1);
  if from_cache then t.dedup_hits <- t.dedup_hits + 1;
  t.sum_size <- t.sum_size + r.Study.size;
  t.sum_initial_nops <- t.sum_initial_nops + r.Study.initial_nops;
  t.sum_final_nops <- t.sum_final_nops + r.Study.final_nops;
  t.sum_omega_calls <- t.sum_omega_calls + r.Study.omega_calls;
  t.sum_memo_hits <- t.sum_memo_hits + r.Study.memo_hits;
  t.sum_schedules_completed <-
    t.sum_schedules_completed + r.Study.schedules_completed;
  if r.Study.size < t.min_size then t.min_size <- r.Study.size;
  if r.Study.size > t.max_size then t.max_size <- r.Study.size;
  let b = min (r.Study.size / size_bucket_width) (size_buckets - 1) in
  t.size_hist.(b) <- t.size_hist.(b) + 1;
  Kmv.add t.sketch hash;
  Timehist.add t.times r.Study.time_s;
  t.sum_time_s <- t.sum_time_s +. r.Study.time_s

let add_failure t =
  t.blocks <- t.blocks + 1;
  t.failed <- t.failed + 1

let merge_into ~dst src =
  dst.blocks <- dst.blocks + src.blocks;
  dst.failed <- dst.failed + src.failed;
  dst.completed <- dst.completed + src.completed;
  dst.curtailed_lambda <- dst.curtailed_lambda + src.curtailed_lambda;
  dst.curtailed_deadline <- dst.curtailed_deadline + src.curtailed_deadline;
  dst.cancelled <- dst.cancelled + src.cancelled;
  dst.dedup_hits <- dst.dedup_hits + src.dedup_hits;
  dst.sum_size <- dst.sum_size + src.sum_size;
  dst.sum_initial_nops <- dst.sum_initial_nops + src.sum_initial_nops;
  dst.sum_final_nops <- dst.sum_final_nops + src.sum_final_nops;
  dst.sum_omega_calls <- dst.sum_omega_calls + src.sum_omega_calls;
  dst.sum_memo_hits <- dst.sum_memo_hits + src.sum_memo_hits;
  dst.sum_schedules_completed <-
    dst.sum_schedules_completed + src.sum_schedules_completed;
  if src.min_size < dst.min_size then dst.min_size <- src.min_size;
  if src.max_size > dst.max_size then dst.max_size <- src.max_size;
  for i = 0 to size_buckets - 1 do
    dst.size_hist.(i) <- dst.size_hist.(i) + src.size_hist.(i)
  done;
  Kmv.merge_into ~dst:dst.sketch src.sketch;
  Timehist.merge_into ~dst:dst.times src.times;
  dst.sum_time_s <- dst.sum_time_s +. src.sum_time_s

let blocks t = t.blocks
let failed t = t.failed
let completed t = t.completed
let dedup_hits t = t.dedup_hits
let sum_time_s t = t.sum_time_s
let distinct_estimate t = Kmv.estimate t.sketch
let time_quantile t q = Timehist.quantile t.times q

let rendered_min_size t = if t.min_size = max_int then 0 else t.min_size

let deterministic_json t =
  Json.Assoc
    [
      ("blocks", Json.Int t.blocks);
      ("failed", Json.Int t.failed);
      ("completed", Json.Int t.completed);
      ("curtailed_lambda", Json.Int t.curtailed_lambda);
      ("curtailed_deadline", Json.Int t.curtailed_deadline);
      ("cancelled", Json.Int t.cancelled);
      ("sum_size", Json.Int t.sum_size);
      ("sum_initial_nops", Json.Int t.sum_initial_nops);
      ("sum_final_nops", Json.Int t.sum_final_nops);
      ("sum_omega_calls", Json.Int t.sum_omega_calls);
      ("sum_memo_hits", Json.Int t.sum_memo_hits);
      ("sum_schedules_completed", Json.Int t.sum_schedules_completed);
      ("min_size", Json.Int (rendered_min_size t));
      ("max_size", Json.Int t.max_size);
      ( "size_hist",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.size_hist))
      );
      ("distinct_estimate", Json.Float (distinct_estimate t));
      ("sketch_fp", Json.Int (Kmv.fingerprint t.sketch));
    ]

let render t = Json.to_string (deterministic_json t)

let to_json t =
  Json.Assoc
    [
      ("blocks", Json.Int t.blocks);
      ("failed", Json.Int t.failed);
      ("completed", Json.Int t.completed);
      ("curtailed_lambda", Json.Int t.curtailed_lambda);
      ("curtailed_deadline", Json.Int t.curtailed_deadline);
      ("cancelled", Json.Int t.cancelled);
      ("dedup_hits", Json.Int t.dedup_hits);
      ("sum_size", Json.Int t.sum_size);
      ("sum_initial_nops", Json.Int t.sum_initial_nops);
      ("sum_final_nops", Json.Int t.sum_final_nops);
      ("sum_omega_calls", Json.Int t.sum_omega_calls);
      ("sum_memo_hits", Json.Int t.sum_memo_hits);
      ("sum_schedules_completed", Json.Int t.sum_schedules_completed);
      ("min_size", Json.Int t.min_size);
      ("max_size", Json.Int t.max_size);
      ( "size_hist",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.size_hist))
      );
      ("sketch", Kmv.to_json t.sketch);
      ( "time_hist",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.times)) );
      ("sum_time_s", Json.Float t.sum_time_s);
    ]

let of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name = Json.member name j in
  let int name =
    match Option.bind (field name) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "aggregate: missing int field %S" name)
  in
  let float_ name =
    match Option.bind (field name) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "aggregate: missing float field %S" name)
  in
  let int_array name len =
    match Option.bind (field name) Json.to_list_opt with
    | Some xs when List.length xs = len -> (
      let vals = List.filter_map Json.to_int_opt xs in
      match List.length vals = len with
      | true -> Ok (Array.of_list vals)
      | false -> Error (Printf.sprintf "aggregate: bad entries in %S" name))
    | _ -> Error (Printf.sprintf "aggregate: field %S must be a %d-list" name len)
  in
  let* blocks = int "blocks" in
  let* failed = int "failed" in
  let* completed = int "completed" in
  let* curtailed_lambda = int "curtailed_lambda" in
  let* curtailed_deadline = int "curtailed_deadline" in
  let* cancelled = int "cancelled" in
  let* dedup_hits = int "dedup_hits" in
  let* sum_size = int "sum_size" in
  let* sum_initial_nops = int "sum_initial_nops" in
  let* sum_final_nops = int "sum_final_nops" in
  let* sum_omega_calls = int "sum_omega_calls" in
  let* sum_memo_hits = int "sum_memo_hits" in
  let* sum_schedules_completed = int "sum_schedules_completed" in
  let* min_size = int "min_size" in
  let* max_size = int "max_size" in
  let* size_hist = int_array "size_hist" size_buckets in
  let* sketch =
    match field "sketch" with
    | Some s -> Kmv.of_json s
    | None -> Error "aggregate: missing field \"sketch\""
  in
  let* time_hist = int_array "time_hist" Timehist.buckets in
  let* sum_time_s = float_ "sum_time_s" in
  Ok
    {
      blocks;
      failed;
      completed;
      curtailed_lambda;
      curtailed_deadline;
      cancelled;
      dedup_hits;
      sum_size;
      sum_initial_nops;
      sum_final_nops;
      sum_omega_calls;
      sum_memo_hits;
      sum_schedules_completed;
      min_size;
      max_size;
      size_hist;
      sketch;
      times = time_hist;
      sum_time_s;
    }

let pp ?wall_s fmt t =
  let scheduled = t.blocks - t.failed in
  let avg num = if scheduled = 0 then 0.0 else float_of_int num /. float_of_int scheduled in
  Format.fprintf fmt "blocks            %d@." t.blocks;
  (match wall_s with
  | Some w when w > 0.0 ->
    Format.fprintf fmt "blocks/sec        %.1f@." (float_of_int t.blocks /. w)
  | _ -> ());
  Format.fprintf fmt "failed            %d@." t.failed;
  Format.fprintf fmt "completed         %d (%.2f%%)@." t.completed
    (100.0 *. avg t.completed);
  Format.fprintf fmt "curtailed lambda  %d@." t.curtailed_lambda;
  Format.fprintf fmt "curtailed dline   %d@." t.curtailed_deadline;
  Format.fprintf fmt "cancelled         %d@." t.cancelled;
  Format.fprintf fmt "size min/avg/max  %d / %.1f / %d@." (rendered_min_size t)
    (avg t.sum_size) t.max_size;
  Format.fprintf fmt "avg initial NOPs  %.2f@." (avg t.sum_initial_nops);
  Format.fprintf fmt "avg final NOPs    %.2f@." (avg t.sum_final_nops);
  Format.fprintf fmt "avg Omega calls   %.0f@." (avg t.sum_omega_calls);
  Format.fprintf fmt "distinct classes  ~%.0f@." (distinct_estimate t);
  Format.fprintf fmt "dedup cache hits  %d@." t.dedup_hits;
  Format.fprintf fmt "block time p50    %.2e s@." (time_quantile t 0.5);
  Format.fprintf fmt "block time p99    %.2e s@." (time_quantile t 0.99)
