(** DSL-driven load generation for the scheduling daemon.

    The missing half of the serving story: {!Pipesched_synth.Schedule}
    describes {e when} requests arrive (burst / soak / ramp / mix, with
    split seeds), {!Pipesched_synth.Generator.of_seed} describes {e
    what} arrives (every block a pure function of its seed), and this
    module turns the two into a replayable request {!plan} plus the
    classification/percentile machinery that scores a replay.

    {b Open loop}: requests are sent at their scheduled times whether
    or not earlier responses have arrived, so a slow server shows up as
    latency (and ultimately drops), never as a silently throttled
    offered rate — the coordinated-omission trap of closed-loop
    clients.  The serial {!run_sync} driver is the closed-loop
    exception used for in-process bench evidence, where the interesting
    output is per-stage handling latency, not queueing.

    Every response is classified by {b stage} — answered from the
    schedule cache ({!Hit}), freshly solved to completion ({!Fresh}),
    budget-curtailed ({!Curtailed}), answered by the degraded list
    scheduler ({!Degraded}), shed by admission control ({!Rejected}),
    refused/failed ({!Error}) or never answered ({!Dropped}), with
    non-terminal retried attempts tracked as {!Retried} — and folded
    into one
    {!Aggregate.Keyed} log-bucket histogram per stage, giving p50/p90/
    p99 per stage in constant memory.  Plans ask the server for the
    ["cached"] response field (["detail": true]), so hit/fresh is
    ground truth from the daemon, not a client-side guess.

    Determinism: {!plan} is a pure function of its parameters — same
    seed, shape and rates give the byte-identical request array
    (pinned by a test), so a soak run names its workload with one
    integer.  Reports split like {!Aggregate}: {!report_json} carries
    wall-clock fields (percentiles, achieved rps),
    {!report_deterministic_json} only what the plan and the server's
    deterministic behavior decide (counts per stage, offered load). *)

module Json = Pipesched_prelude.Json

(** {2 Request plans} *)

type shape = Burst | Soak | Ramp | Mix

val shape_to_string : shape -> string
val shape_of_string : string -> (shape, string) result

type request = {
  index : int;  (** 0-based; doubles as the request ["id"] *)
  time : float; (** scheduled send offset from stream start, seconds *)
  line : string; (** the JSON request line (no trailing newline) *)
  dup : bool;   (** drawn from the hot (duplicate) block pool *)
}

type plan = {
  shape : shape;
  seed : int;
  rps : float;      (** nominal peak rate, requests/second *)
  duration : float; (** nominal stream length, seconds *)
  dup_rate : float;
  machine : string;
  requests : request array; (** time-sorted *)
}

(** [plan ~seed ~shape ~rps ~duration ()] builds the request stream:

    - {!Soak}: constant [rps] for [duration] seconds;
    - {!Burst}: all of each second's requests at once, once a second;
    - {!Ramp}: four equal stages at 0.25/0.5/1.0/1.5 x [rps];
    - {!Mix}: a 0.6 x [rps] soak with a burst every 2 s on top.

    Each event draws its payload from its own split seed: with
    probability [dup_rate] a block from a pool of [hot] pre-compiled
    blocks (cache-hit traffic after first presentation), otherwise a
    fresh {!Pipesched_synth.Generator.of_seed} block.  [machine]
    (preset name, default ["simulation"]), [lambda] and [deadline_ms]
    go into every request verbatim.  Raises [Invalid_argument] unless
    [rps > 0], [duration > 0] and [0 <= dup_rate <= 1]. *)
val plan :
  ?machine:string ->
  ?hot:int ->
  ?lambda:int ->
  ?deadline_ms:float ->
  ?dup_rate:float ->
  seed:int ->
  shape:shape ->
  rps:float ->
  duration:float ->
  unit ->
  plan

(** {2 Response classification} *)

type stage =
  | Hit        (** answered from the schedule cache *)
  | Fresh      (** freshly solved to completion *)
  | Curtailed  (** budget-curtailed incumbent *)
  | Degraded   (** answered by the certified list scheduler
                   (["degraded": true]) *)
  | Rejected   (** shed by admission control (["error": "overloaded"]) *)
  | Retried    (** a non-terminal failed attempt that was retried —
                   drivers record it via {!record}; {!classify} never
                   returns it and it never counts as answered *)
  | Error      (** any other refusal or failure *)
  | Dropped    (** never answered *)

val stage_to_string : stage -> string

(** All stages, report order. *)
val stages : stage list

(** Classify one received response line.  [ok: true] with
    ["degraded": true] is {!Degraded}; [completed: false] is
    {!Curtailed}; [cached: true] is {!Hit}; any other well-formed
    [ok: true] is {!Fresh}.  [ok: false] with error ["overloaded"] is
    {!Rejected}; unparsable or otherwise failed lines are {!Error}.
    ({!Dropped} is assigned by drivers to requests that never got a
    line back; {!Retried} only by drivers that resend.) *)
val classify : string -> stage

(** {2 Retry policy}

    Pure helpers shared by the open-loop client and the tests, so the
    retry schedule is a replayable function of the plan seed. *)

(** Whether a response line is worth retrying: an [overloaded]
    admission refusal or a contained [internal error] (transient under
    chaos injection).  Other errors (parse failures, invalid machines)
    are permanent and not retryable. *)
val retryable : string -> bool

(** [retry_line line ~attempt] is [line] with a ["retry": attempt]
    field added (replacing any previous one).  The marker makes the
    resend a distinct key for the server's content-keyed chaos draws —
    a retried request gets a fresh fault verdict, like a real transient
    fault.  Unparsable lines are returned unchanged. *)
val retry_line : string -> attempt:int -> string

(** [backoff_delay_s ~seed ~index ~attempt ~backoff_ms] — the delay
    before resend [attempt] (1-based) of request [index]: exponential
    in the attempt, scaled by a deterministic jitter in [\[0.5, 1.5)]
    drawn from a stream split off the plan seed, so concurrent clients
    de-synchronize without losing replayability. *)
val backoff_delay_s :
  seed:int -> index:int -> attempt:int -> backoff_ms:int -> float

(** {2 Scoring} *)

(** Mutable fold of classified response latencies: per-stage counts
    plus one {!Aggregate.Keyed} histogram bucket set per stage.
    Constant memory; not thread-safe (drivers record under their own
    lock). *)
type outcome

val outcome : unit -> outcome

(** [record o stage ~latency_s] folds one response.  {!Dropped}
    contributes to counts only, never to a histogram. *)
val record : outcome -> stage -> latency_s:float -> unit

type stage_summary = {
  stage : stage;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

type report = {
  r_shape : shape;
  r_seed : int;
  r_dup_rate : float;
  r_conns : int;
  r_requests : int;      (** offered *)
  r_duration : float;    (** nominal stream length, seconds *)
  r_offered_rps : float; (** requests / nominal duration *)
  r_wall_s : float;      (** measured replay wall time *)
  r_achieved_rps : float; (** answered / wall *)
  r_stages : stage_summary list; (** all stages, {!stages} order *)
  r_hits : int;
  r_fresh : int;
  r_curtailed : int;
  r_degraded : int;
  r_rejected : int;
  r_retries : int; (** non-terminal retried attempts *)
  r_errors : int;
  r_drops : int;
  r_hit_rate : float;
      (** hits / answered-ok (hit+fresh+curtailed+degraded) *)
}

val summarize : plan:plan -> conns:int -> wall_s:float -> outcome -> report

(** Full report, including the wall-clock fields (per-stage
    percentiles, achieved rps, wall time). *)
val report_json : report -> Json.t

(** Only the fields that are a pure function of the plan and the
    server's deterministic behavior: shape/seed/load parameters and
    per-stage counts.  Byte-identical across serial replays of the same
    plan against a fresh server. *)
val report_deterministic_json : report -> Json.t

val pp_report : Format.formatter -> report -> unit

(** {2 Drivers} *)

(** [run_sync ~handle plan] replays the plan serially in-process:
    each line goes through [handle] (e.g.
    [fun l -> Some (Server.handle_line server l)]) with its latency
    measured around the call; [None] counts as {!Dropped}.  Ignores
    event times (closed loop) — this is the bench/test driver.  The
    open-loop socket client lives in [bin/pipesched_load]. *)
val run_sync : handle:(string -> string option) -> plan -> report
