open Pipesched_ir
module Json = Pipesched_prelude.Json
module Rng = Pipesched_prelude.Rng
module Schedule = Pipesched_synth.Schedule
module Generator = Pipesched_synth.Generator

(* ------------------------------------------------------------------ *)
(* Request plans                                                       *)

type shape = Burst | Soak | Ramp | Mix

let shape_to_string = function
  | Burst -> "burst"
  | Soak -> "soak"
  | Ramp -> "ramp"
  | Mix -> "mix"

let shape_of_string = function
  | "burst" -> Ok Burst
  | "soak" -> Ok Soak
  | "ramp" -> Ok Ramp
  | "mix" -> Ok Mix
  | s -> Error (Printf.sprintf "unknown shape %S (burst|soak|ramp|mix)" s)

type request = { index : int; time : float; line : string; dup : bool }

type plan = {
  shape : shape;
  seed : int;
  rps : float;
  duration : float;
  dup_rate : float;
  machine : string;
  requests : request array;
}

(* The arrival process: [once draw] per slot, composed by shape.  Every
   slot's payload comes from its own split seed (Schedule threads them),
   so the stream is a pure function of (seed, shape, rates). *)
let arrivals shape ~rps ~duration draw =
  let ceil_i x = max 1 (int_of_float (Float.ceil x)) in
  let slot = Schedule.once draw in
  match shape with
  | Soak -> Schedule.soak ~rate:rps ~duration slot
  | Burst ->
    (* Each second's worth of traffic lands at once: same offered total
       as the soak, maximally unfriendly arrival pattern. *)
    Schedule.repeating (ceil_i duration) ~period:1.0
      (Schedule.burst (ceil_i rps) slot)
  | Ramp ->
    let q = duration /. 4.0 in
    Schedule.ramp
      ~stages:
        [ (0.25 *. rps, q); (0.5 *. rps, q); (rps, q); (1.5 *. rps, q) ]
      slot
  | Mix ->
    Schedule.mix
      [ Schedule.soak ~rate:(0.6 *. rps) ~duration slot;
        Schedule.repeating (ceil_i (duration /. 2.0)) ~period:2.0
          (Schedule.burst (ceil_i (0.8 *. rps)) slot) ]

let plan ?(machine = "simulation") ?(hot = 8) ?lambda ?deadline_ms
    ?(dup_rate = 0.0) ~seed ~shape ~rps ~duration () =
  if not (rps > 0.0) then invalid_arg "Loadgen.plan: rps must be positive";
  if not (duration > 0.0) then
    invalid_arg "Loadgen.plan: duration must be positive";
  if not (dup_rate >= 0.0 && dup_rate <= 1.0) then
    invalid_arg "Loadgen.plan: dup_rate must be in [0, 1]";
  let hot_n = max 1 hot in
  (* The hot pool — the blocks duplicate traffic re-presents.  Drawn
     from a generator derived from (not equal to) the root seed so pool
     membership never collides with the DSL's own child seeds. *)
  let hot_blocks =
    let hrng = Rng.create (seed lxor 0x10adc11e) in
    Array.init hot_n (fun _ ->
        Block.to_string (Generator.of_seed (Rng.bits hrng)))
  in
  let draw rng =
    if Rng.float rng < dup_rate then (hot_blocks.(Rng.int rng hot_n), true)
    else (Block.to_string (Generator.of_seed (Rng.bits rng)), false)
  in
  let events =
    List.of_seq (Schedule.events ~seed (arrivals shape ~rps ~duration draw))
  in
  let requests =
    Array.of_list
      (List.mapi
         (fun index (e : (string * bool) Schedule.event) ->
           let block, dup = e.Schedule.payload in
           let fields =
             [ ("id", Json.Int index);
               ("machine", Json.String machine);
               ("block", Json.String block);
               ("detail", Json.Bool true) ]
             @ (match lambda with
               | Some l -> [ ("lambda", Json.Int l) ]
               | None -> [])
             @
             match deadline_ms with
             | Some ms -> [ ("deadline_ms", Json.Float ms) ]
             | None -> []
           in
           { index;
             time = e.Schedule.time;
             line = Json.to_string (Json.Assoc fields);
             dup })
         events)
  in
  { shape; seed; rps; duration; dup_rate; machine; requests }

(* ------------------------------------------------------------------ *)
(* Response classification                                             *)

type stage =
  | Hit
  | Fresh
  | Curtailed
  | Degraded
  | Rejected
  | Retried
  | Error
  | Dropped

let stage_to_string = function
  | Hit -> "hit"
  | Fresh -> "fresh"
  | Curtailed -> "curtailed"
  | Degraded -> "degraded"
  | Rejected -> "rejected"
  | Retried -> "retried"
  | Error -> "error"
  | Dropped -> "dropped"

let stages = [ Hit; Fresh; Curtailed; Degraded; Rejected; Retried; Error; Dropped ]

let classify line =
  match Json.parse line with
  | Error _ -> Error
  | Ok resp -> (
    match Json.member "ok" resp with
    | Some (Json.Bool true) -> (
      (* Degraded outranks the other positive stages: a degraded answer
         also has [completed: false], but it is a deliberate fallback,
         not a curtailed search. *)
      match Json.member "degraded" resp with
      | Some (Json.Bool true) -> Degraded
      | _ -> (
        match Json.member "completed" resp with
        | Some (Json.Bool false) -> Curtailed
        | _ -> (
          match Json.member "cached" resp with
          | Some (Json.Bool true) -> Hit
          | _ -> Fresh)))
    | _ -> (
      match Json.member "error" resp with
      | Some (Json.String "overloaded") -> Rejected
      | _ -> Error))

(* ------------------------------------------------------------------ *)
(* Retry policy (pure helpers shared by the open-loop client and tests) *)

let retryable line =
  match Json.parse line with
  | Error _ -> false
  | Ok resp -> (
    match (Json.member "ok" resp, Json.member "error" resp) with
    | Some (Json.Bool false), Some (Json.String e) ->
      e = "overloaded"
      || (String.length e >= 14 && String.sub e 0 14 = "internal error")
    | _ -> false)

(* The resent line carries its attempt number, so the server's
   content-keyed chaos draws (see {!Pipesched_prelude.Fault}) treat the
   retry as a distinct decision — like a real transient fault would. *)
let retry_line line ~attempt =
  match Json.parse line with
  | Ok (Json.Assoc fields) ->
    Json.to_string
      (Json.Assoc
         (List.remove_assoc "retry" fields @ [ ("retry", Json.Int attempt) ]))
  | Ok _ | Error _ -> line

let backoff_delay_s ~seed ~index ~attempt ~backoff_ms =
  let rng = Rng.at (seed lxor 0x0ba52e77) ((index * 16) + attempt) in
  let scale = Float.pow 2.0 (float_of_int (max 0 (attempt - 1))) in
  (* Deterministic jitter in [0.5, 1.5) x the exponential step: spreads
     synchronized retries without making replays diverge. *)
  float_of_int (max 1 backoff_ms) *. scale *. (0.5 +. Rng.float rng) /. 1000.0

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)

type outcome = {
  counts : (stage * int ref) list;
  hist : Aggregate.Keyed.t; (* latencies, keyed by stage name *)
}

let outcome () =
  { counts = List.map (fun s -> (s, ref 0)) stages;
    hist = Aggregate.Keyed.create () }

let record o stage ~latency_s =
  incr (List.assq stage o.counts);
  if stage <> Dropped then
    Aggregate.Keyed.add o.hist (stage_to_string stage) latency_s

type stage_summary = {
  stage : stage;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

type report = {
  r_shape : shape;
  r_seed : int;
  r_dup_rate : float;
  r_conns : int;
  r_requests : int;
  r_duration : float;
  r_offered_rps : float;
  r_wall_s : float;
  r_achieved_rps : float;
  r_stages : stage_summary list;
  r_hits : int;
  r_fresh : int;
  r_curtailed : int;
  r_degraded : int;
  r_rejected : int;
  r_retries : int;
  r_errors : int;
  r_drops : int;
  r_hit_rate : float;
}

let summarize ~plan ~conns ~wall_s o =
  let count s = !(List.assq s o.counts) in
  let q s p =
    1000.0 *. Aggregate.Keyed.quantile o.hist (stage_to_string s) p
  in
  let summary s =
    { stage = s;
      count = count s;
      p50_ms = q s 0.5;
      p90_ms = q s 0.9;
      p99_ms = q s 0.99 }
  in
  let n = Array.length plan.requests in
  let answered_ok = count Hit + count Fresh + count Curtailed + count Degraded in
  let answered = answered_ok + count Rejected + count Error in
  { r_shape = plan.shape;
    r_seed = plan.seed;
    r_dup_rate = plan.dup_rate;
    r_conns = conns;
    r_requests = n;
    r_duration = plan.duration;
    r_offered_rps = float_of_int n /. plan.duration;
    r_wall_s = wall_s;
    r_achieved_rps =
      (if wall_s > 0.0 then float_of_int answered /. wall_s else 0.0);
    r_stages = List.map summary stages;
    r_hits = count Hit;
    r_fresh = count Fresh;
    r_curtailed = count Curtailed;
    r_degraded = count Degraded;
    r_rejected = count Rejected;
    r_retries = count Retried;
    r_errors = count Error;
    r_drops = count Dropped;
    r_hit_rate =
      (if answered_ok > 0 then
         float_of_int (count Hit) /. float_of_int answered_ok
       else 0.0) }

let stage_json ~timed s =
  ( stage_to_string s.stage,
    Json.Assoc
      (("count", Json.Int s.count)
      ::
      (if timed && s.stage <> Dropped then
         [ ("p50_ms", Json.Float s.p50_ms);
           ("p90_ms", Json.Float s.p90_ms);
           ("p99_ms", Json.Float s.p99_ms) ]
       else [])) )

let report_fields ~timed r =
  [ ("shape", Json.String (shape_to_string r.r_shape));
    ("seed", Json.Int r.r_seed);
    ("dup_rate", Json.Float r.r_dup_rate);
    ("conns", Json.Int r.r_conns);
    ("requests", Json.Int r.r_requests);
    ("duration_s", Json.Float r.r_duration);
    ("offered_rps", Json.Float r.r_offered_rps) ]
  @ (if timed then
       [ ("wall_s", Json.Float r.r_wall_s);
         ("achieved_rps", Json.Float r.r_achieved_rps) ]
     else [])
  @ [ ("stages", Json.Assoc (List.map (stage_json ~timed) r.r_stages));
      ("hit_rate", Json.Float r.r_hit_rate);
      ("degraded", Json.Int r.r_degraded);
      ("rejected", Json.Int r.r_rejected);
      ("retries", Json.Int r.r_retries);
      ("errors", Json.Int r.r_errors);
      ("drops", Json.Int r.r_drops) ]

let report_json r = Json.Assoc (report_fields ~timed:true r)
let report_deterministic_json r = Json.Assoc (report_fields ~timed:false r)

let pp_report fmt r =
  Format.fprintf fmt "shape             %s (seed %d)@."
    (shape_to_string r.r_shape) r.r_seed;
  Format.fprintf fmt "requests          %d over %.1f s nominal@." r.r_requests
    r.r_duration;
  Format.fprintf fmt "offered rps       %.1f (dup rate %.2f, %d conn%s)@."
    r.r_offered_rps r.r_dup_rate r.r_conns
    (if r.r_conns = 1 then "" else "s");
  Format.fprintf fmt "achieved rps      %.1f (%.2f s wall)@." r.r_achieved_rps
    r.r_wall_s;
  List.iter
    (fun s ->
      if s.stage = Dropped || s.stage = Error then
        Format.fprintf fmt "%-17s %d@." (stage_to_string s.stage) s.count
      else
        Format.fprintf fmt
          "%-17s %d  p50 %.2f ms  p90 %.2f ms  p99 %.2f ms@."
          (stage_to_string s.stage) s.count s.p50_ms s.p90_ms s.p99_ms)
    r.r_stages;
  Format.fprintf fmt "hit rate          %.2f@." r.r_hit_rate

(* ------------------------------------------------------------------ *)
(* Serial in-process driver                                            *)

let run_sync ~handle plan =
  let o = outcome () in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun r ->
      let s0 = Unix.gettimeofday () in
      match handle r.line with
      | None -> record o Dropped ~latency_s:0.0
      | Some resp ->
        record o (classify resp) ~latency_s:(Unix.gettimeofday () -. s0))
    plan.requests;
  summarize ~plan ~conns:1 ~wall_s:(Unix.gettimeofday () -. t0) o
