(** Small statistics helpers for the experiment harness. *)

(** [sequential_init count f] is [List.init count f] with [f] guaranteed
    to be evaluated left-to-right ([List.init]'s order is unspecified).
    Use whenever [f] draws from a stateful RNG, so populations are
    reproducible. *)
val sequential_init : int -> (int -> 'a) -> 'a list

(** Arithmetic mean; 0 on the empty list. *)
val mean : float list -> float

(** Population standard deviation; 0 on fewer than two samples. *)
val stddev : float list -> float

(** [percentile p xs] with [p] in [0, 100]; interpolates between ranks.
    Raises [Invalid_argument] on an empty list or out-of-range [p]. *)
val percentile : float -> float list -> float

val min_max : float list -> float * float

(** [group_by key xs] buckets [xs] by [key], returning buckets sorted by
    key. *)
val group_by : ('a -> int) -> 'a list -> (int * 'a list) list

(** [histogram ~bucket xs] counts ints into fixed-width buckets, returning
    [(bucket_start, count)] sorted; empty buckets in range included. *)
val histogram : bucket:int -> int list -> (int * int) list
