(* [List.init] with a guaranteed left-to-right evaluation order, for
   initializers with side effects (drawing from a stateful RNG). *)
let sequential_init count f =
  let rec go i acc = if i >= count then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then arr.(lo)
  else
    let f = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. f)) +. (arr.(hi) *. f)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let group_by key xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      Hashtbl.replace tbl k
        (x :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    xs;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort compare

let histogram ~bucket xs =
  if bucket <= 0 then invalid_arg "Stats.histogram: bucket must be positive";
  match xs with
  | [] -> []
  | _ ->
    let keyed = group_by (fun x -> x / bucket * bucket) xs in
    let lo = fst (List.hd keyed) in
    let hi = fst (List.nth keyed (List.length keyed - 1)) in
    let rec fill b acc =
      if b > hi then List.rev acc
      else
        let count =
          match List.assoc_opt b keyed with
          | Some l -> List.length l
          | None -> 0
        in
        fill (b + bucket) ((b, count) :: acc)
    in
    fill lo []
