(** The scheduling study engine behind Table 7 and Figures 1, 4-7.

    Runs the optimal scheduler over a population of synthetic blocks and
    collects one record per block.  All populations are generated from a
    seed, so studies are reproducible. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core

type record = {
  size : int;               (** instructions in the (optimized) block *)
  initial_nops : int;       (** NOPs of the list schedule *)
  final_nops : int;         (** NOPs of the best schedule found *)
  omega_calls : int;
  schedules_completed : int;
  memo_hits : int;          (** subtrees pruned by the dominance memo *)
  completed : bool;         (** search ran to completion (provably optimal) *)
  time_s : float;           (** wall-clock seconds for the search *)
}

(** [run_block ?options machine blk] schedules one block and records it. *)
val run_block : ?options:Optimal.options -> Machine.t -> Block.t -> record

(** [run ?options ?freq ?jobs ~seed ~count machine] generates [count]
    blocks with the paper's size mix and schedules each, distributing
    blocks over [jobs] domains (default: [PIPESCHED_JOBS] or the
    machine's recommended domain count; see Pipesched_parallel.Pool).

    Deterministic at any job count: every block's RNG seed is pre-drawn
    serially from [seed] before any parallel work starts, so the records
    are identical — field for field, in order — whether [jobs] is 1 or
    64.  The only exception is the wall-clock [time_s] field.

    The default [options] use [lambda = 50_000] (large relative to a
    typical complete search, per §5.3). *)
val run :
  ?options:Optimal.options ->
  ?freq:Pipesched_synth.Frequency.t ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  Machine.t ->
  record list

(** Aggregates of a record sub-population (one Table 7 column). *)
type aggregate = {
  runs : int;
  pct : float;              (** share of the whole population, percent *)
  avg_size : float;
  avg_initial_nops : float;
  avg_final_nops : float;
  avg_omega_calls : float;
  avg_time_s : float;
}

(** [aggregate ~total records] summarizes a sub-population against the
    whole population's size [total]. *)
val aggregate : total:int -> record list -> aggregate

(** Per-block-size bucketing: [(size, records)] sorted by size. *)
val by_size : record list -> (int * record list) list
