(** The scheduling study engine behind Table 7 and Figures 1, 4-7.

    Runs the optimal scheduler over a population of synthetic blocks and
    collects one record per block.  All populations are generated from a
    seed, so studies are reproducible. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core

type record = {
  size : int;               (** instructions in the (optimized) block *)
  initial_nops : int;       (** NOPs of the list schedule *)
  final_nops : int;         (** NOPs of the best schedule found *)
  omega_calls : int;
  schedules_completed : int;
  memo_hits : int;          (** subtrees pruned by the dominance memo *)
  completed : bool;         (** search ran to completion (provably optimal) *)
  status : Pipesched_prelude.Budget.status;
      (** [Complete] iff [completed]; otherwise which budget limit
          (lambda, wall-clock deadline, cancellation) curtailed this
          block's search — the record's [final_nops] is then the legal
          incumbent's *)
  time_s : float;           (** wall-clock seconds for the search *)
  unique : bool;
      (** true: this block's search was actually run (it was the first
          presentation of its canonical equivalence class, or dedup was
          off); false: the record was fanned out from a canonically
          identical block solved earlier in the study *)
}

(** One contained per-block fault: the exception text and the backtrace
    captured in the worker that hit it. *)
type failure = { exn : string; backtrace : string }

(** One block's fate in a fault-isolated study: a record, or the
    contained failure that replaced it. *)
type result = Scheduled of record | Failed of failure

(** Raised by {!run_block} when [certify] is set and the independent
    certifier ({!Pipesched_verify.Certify}) rejects the schedule; the
    payload is the violation explanations, one per line.  Inside
    {!run}'s non-strict mode this is contained into a {!Failed} entry
    like any other per-block exception. *)
exception Certification_failed of string

(** The [Scheduled] records of a result list, in order. *)
val records : result list -> record list

(** The [Failed] entries of a result list, in order. *)
val failures : result list -> failure list

(** [run_block ?options ?certify machine blk] schedules one block and
    records it.  With [certify] (default false), the best schedule is
    re-checked by the independent certifier — machine-model replay,
    optimal-vs-list NOP ordering, and interpreter semantics on the
    reordered block — and {!Certification_failed} is raised on any
    violation.

    [backend] selects the scheduler by {!Scheduler} registry name
    (default ["bnb"], the direct {!Optimal.schedule} path, which is also
    the only one reporting [memo_hits]/[schedules_completed]; the
    generic path leaves them 0 and puts the backend's own work units in
    [omega_calls]).  Raises [Invalid_argument] on an unknown name. *)
val run_block :
  ?options:Optimal.options ->
  ?certify:bool ->
  ?backend:string ->
  Machine.t ->
  Block.t ->
  record

(** [run_protected ?strict ?jobs f xs] is the study's fault-containment
    boundary, exposed for corpus-shaped drivers and tests: maps [f] over
    [xs] across [jobs] domains; by default an item that raises becomes
    one [Failed] entry (exception + backtrace) and the rest of the
    corpus still runs, in input order.  [strict] restores fail-fast: the
    first exception propagates to the caller. *)
val run_protected :
  ?strict:bool ->
  ?jobs:int ->
  ?progress:(int -> unit) ->
  ('a -> record) ->
  'a list ->
  result list

(** [run_dedup ?strict ?jobs ~key ~solve items] is the duplicate
    elimination underneath {!run}, exposed for corpus-shaped drivers
    (the fuzzer, tests): keys every item in parallel, groups equal keys
    serially in input order, [solve]s only the first presentation of
    each class across [jobs] domains, and fans its record back out to
    the other members with [unique = false].  Sound whenever equal keys
    imply equal search results — the intended key is
    [Machine.fingerprint ^ Canonical.key].  Fault containment and the
    [strict] switch behave as in {!run_protected} (a raise inside [key]
    or [solve] fails that item, or its whole class, respectively). *)
val run_dedup :
  ?strict:bool ->
  ?jobs:int ->
  ?progress:(int -> unit) ->
  key:('a -> string) ->
  solve:('a -> record) ->
  'a list ->
  result list

(** [run ?options ?deadline_s ?block_deadline_s ?cancel ?freq ?jobs ~seed
    ~count machine] generates [count] blocks with the paper's size mix
    and schedules each, distributing blocks over [jobs] domains (default:
    [PIPESCHED_JOBS] or the machine's recommended domain count; see
    Pipesched_parallel.Pool).

    Deterministic at any job count: every block's RNG seed is pre-drawn
    serially from [seed] before any parallel work starts, so the records
    are identical — field for field, in order — whether [jobs] is 1 or
    64.  The only exception is the wall-clock [time_s] field.

    Deadlines make the study {e anytime} without breaking its shape:
    [deadline_s] bounds the whole sweep (each block's search receives the
    time remaining as its budget; once the sweep deadline passes,
    remaining blocks return their list-schedule incumbents near
    instantly), [block_deadline_s] bounds each block's search
    individually, and [cancel] is a shared token polled by every search.
    Every block always yields a record — curtailed ones are marked by
    their [status].  When neither deadline is set the clock is never
    consulted and the determinism contract above holds bit-for-bit;
    with a deadline, which blocks get curtailed depends on wall time.

    Fault isolation: a raise inside one block's generation, search or
    certification becomes one [Failed] entry and the study continues
    ({!run_protected}); [strict] (default false) restores fail-fast.
    [certify] runs the independent certifier on every block's result
    (see {!run_block}).

    [search_jobs] overrides [options.search_jobs]: the number of
    {e intra-block} team workers each block's branch-and-bound runs on
    (second level of the two-level scheme; default 1, serial search —
    see {!Optimal.options}).  Because the parallel search reports a
    result identical to the serial one, the study's determinism
    contract extends to it: records are field-for-field equal at any
    ([jobs], [search_jobs]) combination except [omega_calls],
    [schedules_completed] and [time_s], which at [search_jobs > 1]
    reflect racing workers.

    [backend] selects the scheduler per {!run_block} (default the
    branch-and-bound); every other knob — budgets, dedup, fault
    isolation, certification — applies to any backend.

    Duplicate elimination (extension): with [dedup] (default true) the
    population is grouped by {!Pipesched_ir.Canonical} key first and
    only one representative per equivalence class is actually searched;
    every other member receives a copy of its representative's record
    with [unique = false].  Sound because canonically equal blocks have
    isomorphic DAGs — the search result (NOP counts, status) transfers
    exactly.  Still deterministic at any job count: generation +
    canonicalization is a [parallel_map], grouping is serial in input
    order, and representative solving is another [parallel_map].
    [dedup:false] restores one search per block (the A/B lever for
    testing the soundness claim).  {!dedup_stats} summarizes the
    savings.

    [progress] is a {!Pipesched_parallel.Pool} progress callback wired
    to the {e solve} phase: cumulative searches finished, out of the
    unique classes (or out of [count] with [dedup:false]).  It runs on
    worker domains — see {!Pipesched_parallel.Pool.parallel_map}.

    The default [options] use [lambda = 50_000] (large relative to a
    typical complete search, per §5.3). *)
val run :
  ?options:Optimal.options ->
  ?deadline_s:float ->
  ?block_deadline_s:float ->
  ?cancel:Pipesched_prelude.Budget.token ->
  ?freq:Pipesched_synth.Frequency.t ->
  ?jobs:int ->
  ?search_jobs:int ->
  ?strict:bool ->
  ?certify:bool ->
  ?backend:string ->
  ?dedup:bool ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  Machine.t ->
  result list

(** Aggregates of a record sub-population (one Table 7 column). *)
type aggregate = {
  runs : int;
  pct : float;              (** share of the whole population, percent *)
  avg_size : float;
  avg_initial_nops : float;
  avg_final_nops : float;
  avg_omega_calls : float;
  avg_time_s : float;
  n_curtailed_lambda : int;   (** blocks stopped by the lambda budget *)
  n_curtailed_deadline : int; (** blocks stopped by a wall-clock deadline *)
  n_cancelled : int;          (** blocks stopped by the cancellation token *)
}

(** [aggregate ~total records] summarizes a sub-population against the
    whole population's size [total]. *)
val aggregate : total:int -> record list -> aggregate

(** Per-block-size bucketing: [(size, records)] sorted by size. *)
val by_size : record list -> (int * record list) list

(** [(unique, total, dedup_rate)] over the scheduled records:
    [unique] classes actually searched out of [total] blocks;
    [dedup_rate = 1 - unique/total] (0 when dedup was off or every
    block was distinct). *)
val dedup_stats : result list -> int * int * float
