(** Ablation studies over the search's design choices (DESIGN.md §5).

    Each configuration runs the same block population; reported are the
    completion rate (provably optimal within lambda), the mean Omega calls
    over completed runs, and schedule quality (mean final NOPs).  This
    quantifies what each pruning ingredient of §4.2.3 buys, and what the
    two extensions (strong equivalence, critical-path bound) add. *)

type config = {
  label : string;
  options : Pipesched_core.Optimal.options;
}

(** The standard ladder: paper mode, then each ingredient removed, then
    each extension added.  All share the given [lambda]. *)
val standard_configs : lambda:int -> config list

type row = {
  label : string;
  completed_pct : float;
  avg_calls_completed : float;
  avg_memo_hits : float;  (** mean dominance-memo prunes per block *)
  avg_final_nops : float;
  avg_time_s : float;
  deadline_hits : int;
      (** blocks whose search a per-block deadline curtailed; always 0
          when [block_deadline_s] is not passed to {!run} *)
}

(** [run ?jobs ?block_deadline_s ~seed ~count ~lambda machine] evaluates
    {!standard_configs} on a shared population, scheduling the blocks of
    each configuration across [jobs] domains (default: [PIPESCHED_JOBS]
    or the recommended domain count).  [block_deadline_s] additionally
    deadlines each block's search (anytime mode; curtailed blocks are
    counted in [deadline_hits]).  Without it, the population and every
    reported number except [avg_time_s] are independent of [jobs]. *)
val run :
  ?jobs:int ->
  ?block_deadline_s:float ->
  seed:int -> count:int -> lambda:int -> Pipesched_machine.Machine.t ->
  row list

val print : Format.formatter -> row list -> unit
