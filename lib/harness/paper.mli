(** Reference numbers transcribed from the paper, for side-by-side
    comparison in the reproduced tables. *)

(** One row of Table 1: block size, exhaustive search calls (n!), Omega
    calls with illegal-only pruning, Omega calls with the proposed
    pruning.  [legal_calls = None] encodes the paper's ">9,999,000". *)
type table1_row = {
  insns : int;
  exhaustive : float;
  legal_calls : int option;
  proposed_calls : int;
}

val table1 : table1_row list

(** Table 7, one column per termination class. *)
type table7_column = {
  runs : int;
  pct : float;
  avg_insns : float;
  avg_initial_nops : float;
  avg_final_nops : float;
  avg_omega_calls : float;
  avg_time_s : float;  (** on a 1990 Sun 3/50 — compare shape, not value *)
}

val table7_completed : table7_column
val table7_truncated : table7_column

(** Total runs in the paper's study. *)
val total_runs : int

(** Qualitative shapes claimed for the figures, printed alongside our
    measured series. *)
val figure_claims : (string * string) list
