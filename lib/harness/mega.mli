(** The sharded mega-study engine: multi-process, streaming, resumable.

    Scales {!Study.run} past what one process should hold: the corpus
    [0 .. count) is split into [shards] contiguous index ranges, each
    run by a {e separate worker process} (true isolation beyond domains
    — a segfaulting or OOM-killed shard loses only its shard), and every
    per-block outcome streams back to the master over a pipe as one line
    of JSON, folded immediately into a constant-memory {!Aggregate}.  No
    record list ever exists.

    {b Block identity.}  Block [i] is [Generator.of_seed
    (Schedule.seed_at ~seed i)] — a pure function of [(seed, i)], O(1)
    to locate.  Shard ranges therefore partition exactly the corpus a
    serial run would generate, which is the first half of the
    byte-identity contract.

    {b Determinism.}  Each worker canonicalizes its block
    ({!Pipesched_ir.Canonical}) and searches the {e canonical} block, so
    a block's record is a pure function of its canonical class (at
    [search_jobs = 1]; beyond that [omega_calls] etc. race, as in
    {!Study.run}).  The per-shard dedup LRU is then transparent: a cache
    hit replays byte-for-byte the record a fresh search would produce —
    which is why {!Aggregate.render} is byte-identical at any [shards] /
    [jobs] / [dedup_capacity], and why the LRU needs no checkpointing.

    {b Checkpoint / resume.}  Every [checkpoint_every] blocks a worker
    atomically (write-temp + rename) persists its full aggregate plus a
    config fingerprint (master seed, count, shards, lambda, machine
    fingerprint, ...).  [resume = true] restarts each shard from its
    last valid checkpoint — a killed run (worker {e or} master: master
    state is reconstructed entirely from the checkpoints) loses at most
    [checkpoint_every] blocks per shard, and the resumed run's aggregate
    is byte-identical to an uninterrupted one.  Fingerprint-mismatched
    or corrupt checkpoints are ignored (the shard restarts from 0).

    Workers are spawned by re-executing the current binary with a
    [--mega-worker <json>] argv convention — never [Unix.fork], which
    is unsafe once domains exist.  Host binaries must call
    {!run_if_worker} first thing in [main].

    See DESIGN.md §11. *)

type config = {
  seed : int;  (** master corpus seed *)
  count : int;  (** corpus size (blocks) *)
  shards : int;  (** worker processes *)
  jobs : int;  (** domains per worker for block-level parallelism *)
  search_jobs : int;  (** intra-block search domains (see {!Study.run}) *)
  lambda : int;  (** per-block Omega-call budget *)
  dedup_capacity : int;
      (** per-shard canonical-key LRU entries; [0] disables dedup *)
  checkpoint_every : int;  (** blocks between checkpoints, per shard *)
  checkpoint_dir : string;
  machine : string;  (** machine preset name ({!Pipesched_machine.Machine.Presets}) *)
  certify : bool;  (** independently certify every searched schedule *)
}

(** [seed 1990], [count 10_000], [shards 2], [jobs 1], [search_jobs 1],
    [lambda 50_000], [dedup_capacity 65_536], [checkpoint_every 1_000],
    [checkpoint_dir "mega-checkpoints"], [machine "simulation"], no
    certification. *)
val default : config

(** [shard_range cfg k] is shard [k]'s half-open corpus slice
    [(lo, hi)]. *)
val shard_range : config -> int -> int * int

(** The minimum corpus slice worth a worker process (64).  Below it the
    per-shard fork/exec, checkpoint and streaming overhead outweighs the
    parallelism — small corpora measurably run {e slower} at higher
    shard counts (the §11 crossover). *)
val min_shard_blocks : int

(** [effective_shards cfg] is the shard count {!run} will actually use:
    [cfg.shards] clamped to [max 1 (cfg.count / min_shard_blocks)].
    {!run} warns on stderr when the clamp engages.  Result-transparent
    (the aggregate is byte-identical at any shard count); exposed so
    the bench can report requested vs effective. *)
val effective_shards : config -> int

(** Progress snapshot passed to the [?progress] callback (invoked
    frequently — the callback is expected to rate-limit itself). *)
type progress = {
  total : int;
  done_blocks : int;  (** includes blocks replayed from checkpoints *)
  resumed : int;
  live_shards : int;
  shards : int;
  elapsed_s : float;
}

type stats = {
  wall_s : float;
  processed : int;  (** blocks actually searched in this invocation *)
  resumed : int;  (** blocks replayed from checkpoints *)
  blocks_per_s : float;  (** [processed / wall_s] *)
  max_rss_ratio : float;
      (** max over shards of final worker RSS / RSS at its first
          checkpoint — the bench's flat-memory evidence; [0.] when
          unavailable (no /proc) *)
}

(** [run ?exe ?progress ~resume cfg] drives a full mega study and
    returns the merged aggregate (shards merged in shard order) plus run
    statistics.  [exe] is the worker binary (default
    [Sys.executable_name]; it must call {!run_if_worker}).  On any shard
    failure — crash, nonzero exit, truncated stream, or an
    aggregate-fingerprint mismatch between a worker's final state and
    the master's fold of its stream — returns [Error] with a
    human-readable report; completed shards' checkpoints survive, so
    re-running with [resume = true] continues from them.  Raises
    [Invalid_argument] on nonsensical configs (unknown preset,
    [shards < 1], ...). *)
val run :
  ?exe:string ->
  ?progress:(progress -> unit) ->
  resume:bool ->
  config ->
  (Aggregate.t * stats, string) result

(** Worker-mode dispatch: when [Sys.argv] is [|_; "--mega-worker";
    <json>|], runs the shard described by [<json>] and exits the
    process (0 on success).  Host binaries call this before any other
    argv parsing; it returns immediately in a normal invocation.

    Crash injection (for the kill-and-resume bench and CI smoke): with
    [PIPESCHED_MEGA_CRASH="<shard>:<n>"] in the environment, that
    shard's worker SIGKILLs itself the moment its {e shard-relative}
    progress reaches [n] blocks — mid-stream, deliberately between
    checkpoints. *)
val run_if_worker : unit -> unit

(** {2 Checkpoint internals (exposed for tests)} *)

val config_fingerprint : config -> string
val checkpoint_path : config -> int -> string

val write_checkpoint :
  config -> shard:int -> done_blocks:int -> rss0_kb:int -> Aggregate.t -> unit

(** [(done, rss0_kb, rss_kb, aggregate)] of a shard's checkpoint, or
    [None] when absent, unparsable, config-mismatched, or internally
    inconsistent. *)
val read_checkpoint :
  config -> shard:int -> (int * int * int * Aggregate.t) option
