open Pipesched_ir
open Pipesched_machine
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Budget = Pipesched_prelude.Budget
module Pool = Pipesched_parallel.Pool

module Certify = Pipesched_verify.Certify

type record = {
  size : int;
  initial_nops : int;
  final_nops : int;
  omega_calls : int;
  schedules_completed : int;
  memo_hits : int;
  completed : bool;
  status : Budget.status;
  time_s : float;
  unique : bool;
}

type failure = { exn : string; backtrace : string }
type result = Scheduled of record | Failed of failure

exception Certification_failed of string

let records results =
  List.filter_map (function Scheduled r -> Some r | Failed _ -> None) results

let failures results =
  List.filter_map (function Failed f -> Some f | Scheduled _ -> None) results

let default_options = { Optimal.default_options with Optimal.lambda = 50_000 }

let now () = Unix.gettimeofday ()

let certify_result machine blk ~(best : Omega.result)
    ~(initial : Omega.result) =
  let violations =
    Certify.check machine blk best
    @ Certify.check_ordering
        [ ("optimal", best.Omega.nops); ("list", initial.Omega.nops) ]
    @ Certify.check_semantics blk ~order:best.Omega.order
  in
  if violations <> [] then
    raise (Certification_failed (Certify.explain_all violations))

let run_block ?(options = default_options) ?(certify = false) ?backend machine
    blk =
  let dag = Dag.of_block blk in
  match backend with
  | None | Some "bnb" ->
    (* the direct path keeps the search-internal counters (memo hits,
       completed schedules) that the generic interface does not carry *)
    let t0 = now () in
    let outcome = Optimal.schedule ~options machine dag in
    let t1 = now () in
    if certify then
      certify_result machine blk ~best:outcome.Optimal.best
        ~initial:outcome.Optimal.initial;
    {
      size = Block.length blk;
      initial_nops = outcome.Optimal.initial.Omega.nops;
      final_nops = outcome.Optimal.best.Omega.nops;
      omega_calls = outcome.Optimal.stats.Optimal.omega_calls;
      schedules_completed = outcome.Optimal.stats.Optimal.schedules_completed;
      memo_hits = outcome.Optimal.stats.Optimal.memo_hits;
      completed = outcome.Optimal.stats.Optimal.completed;
      status = outcome.Optimal.stats.Optimal.status;
      time_s = t1 -. t0;
      unique = true;
    }
  | Some name -> (
    match Scheduler.find name with
    | None ->
      invalid_arg
        (Printf.sprintf "Study.run_block: unknown backend %S (have: %s)" name
           (String.concat ", " Scheduler.names))
    | Some (module B : Scheduler.S) ->
      let t0 = now () in
      let outcome = B.schedule ~options machine dag in
      let t1 = now () in
      if certify then
        certify_result machine blk ~best:outcome.Scheduler.best
          ~initial:outcome.Scheduler.initial;
      {
        size = Block.length blk;
        initial_nops = outcome.Scheduler.initial.Omega.nops;
        final_nops = outcome.Scheduler.best.Omega.nops;
        omega_calls = outcome.Scheduler.calls;
        schedules_completed = 0;
        memo_hits = 0;
        completed = outcome.Scheduler.completed;
        status = outcome.Scheduler.status;
        time_s = t1 -. t0;
        unique = true;
      })

(* Per-block seeds are pre-drawn serially (an explicit left-to-right
   loop: [List.init]'s evaluation order is unspecified, and the RNG is
   stateful), so the block population depends only on [seed] and [count]
   — never on the number of domains.  Each block is then generated and
   scheduled from its own seed, and [Pool.parallel_map] returns records
   in input order, making the study record-for-record identical at any
   job count (modulo the wall-clock [time_s] field).

   Deadlines degrade this gracefully rather than aborting: a sweep-wide
   [deadline_s] is converted to an absolute end time up front, and each
   block's search gets the time remaining (intersected with
   [block_deadline_s]) as its own budget.  Every block still produces a
   record — one whose search was cut short simply carries a curtailed
   [status] and its (legal) incumbent's NOP count.  The clock is only
   consulted when one of the deadlines is set, so deadline-free studies
   keep the bit-for-bit determinism contract. *)
(* The fault-containment boundary shared by every corpus-shaped driver:
   non-strict, one item raising becomes one [Failed] entry (exception
   text + backtrace) and every other item still runs, in order; strict
   restores fail-fast (the first exception tears the whole map down).
   Containment happens per item inside the pool, so a deterministic
   workload fails identically at any job count. *)
let run_protected ?(strict = false) ?jobs ?progress f xs =
  if strict then Pool.parallel_map ?jobs ?progress (fun x -> Scheduled (f x)) xs
  else
    List.map
      (function
        | Ok r -> Scheduled r
        | Error { Pool.exn; backtrace } -> Failed { exn; backtrace })
      (Pool.parallel_map_result ?jobs ?progress f xs)

(* Duplicate elimination via the canonical form (three phases, each one
   deterministic at any job count, so callers' determinism contracts
   survive):

   1. the caller produces + keys every item in parallel (per-item fault
      containment preserved — a failed item arrives as [Error]);
   2. group by key serially, in input order — the first presentation of
      each equivalence class becomes the class representative;
   3. solve only the representatives in parallel, then fan each class's
      record back out to every member, marked [unique = false] on the
      copies.

   A duplicate's record mirrors its representative's search (same NOP
   counts by canonical-form soundness; the counters are the
   representative's search, not a hypothetical re-search of the
   duplicate's presentation).  [dedup_stats] reports the savings. *)
let dedup_keyed ?strict ?jobs ?progress ~solve keyed =
  let reps = Hashtbl.create 64 in
  let uniques = ref [] in
  let nuniq = ref 0 in
  let tagged =
    List.map
      (function
        | Error { Pool.exn; backtrace } -> `Failed { exn; backtrace }
        | Ok (item, key) -> (
          match Hashtbl.find_opt reps key with
          | Some idx -> `Dup idx
          | None ->
            let idx = !nuniq in
            incr nuniq;
            Hashtbl.add reps key idx;
            uniques := item :: !uniques;
            `Rep idx))
      keyed
  in
  let solved =
    Array.of_list
      (run_protected ?strict ?jobs ?progress solve (List.rev !uniques))
  in
  List.map
    (function
      | `Failed f -> Failed f
      | `Rep idx -> solved.(idx)
      | `Dup idx -> (
        match solved.(idx) with
        | Scheduled r -> Scheduled { r with unique = false }
        | Failed f -> Failed f))
    tagged

let run_dedup ?strict ?jobs ?progress ~key ~solve items =
  dedup_keyed ?strict ?jobs ?progress ~solve
    (Pool.parallel_map_result ?jobs (fun x -> (x, key x)) items)

let run ?(options = default_options) ?deadline_s ?block_deadline_s ?cancel
    ?freq ?jobs ?search_jobs ?strict ?certify ?backend ?(dedup = true)
    ?progress ~seed ~count machine =
  (* Two-level scheduling: [jobs] block-level domains, each block's
     search itself running on [search_jobs] team workers.  The search's
     determinism contract (same result at any job count) keeps the
     study's record-for-record reproducibility intact. *)
  let options =
    match search_jobs with
    | None -> options
    | Some sj -> { options with Optimal.search_jobs = max 1 sj }
  in
  let rng = Rng.create seed in
  let seeds = Array.make (max count 1) 0 in
  for i = 0 to count - 1 do
    seeds.(i) <- Rng.bits rng
  done;
  let sweep_end =
    match deadline_s with Some d -> Some (now () +. d) | None -> None
  in
  let cancel =
    match cancel with Some _ -> cancel | None -> options.Optimal.cancel
  in
  let options_for_block () =
    match (sweep_end, block_deadline_s, cancel) with
    | None, None, None -> options
    | _ ->
      let remaining =
        match sweep_end with
        | None -> None
        | Some e -> Some (max 0.0 (e -. now ()))
      in
      let eff =
        match (remaining, block_deadline_s) with
        | None, d | d, None -> d
        | Some a, Some b -> Some (min a b)
      in
      { options with Optimal.deadline_s = eff; cancel }
  in
  let generate block_seed =
    let rng = Rng.create block_seed in
    Pipesched_synth.Generator.block ?freq rng
      (Pipesched_synth.Generator.sample_params rng)
  in
  let solve blk =
    run_block ~options:(options_for_block ()) ?certify ?backend machine blk
  in
  let seed_list = Array.to_list (Array.sub seeds 0 count) in
  if not dedup then
    run_protected ?strict ?jobs ?progress (fun s -> solve (generate s)) seed_list
  else
    dedup_keyed ?strict ?jobs ?progress ~solve
      (Pool.parallel_map_result ?jobs
         (fun s ->
           let blk = generate s in
           (blk, (Canonical.of_block blk).Canonical.key))
         seed_list)

type aggregate = {
  runs : int;
  pct : float;
  avg_size : float;
  avg_initial_nops : float;
  avg_final_nops : float;
  avg_omega_calls : float;
  avg_time_s : float;
  n_curtailed_lambda : int;
  n_curtailed_deadline : int;
  n_cancelled : int;
}

let aggregate ~total records =
  let f sel = Stats.mean (List.map sel records) in
  let count_status s =
    List.length (List.filter (fun r -> r.status = s) records)
  in
  {
    runs = List.length records;
    pct =
      (if total = 0 then 0.0
       else 100.0 *. float_of_int (List.length records) /. float_of_int total);
    avg_size = f (fun r -> float_of_int r.size);
    avg_initial_nops = f (fun r -> float_of_int r.initial_nops);
    avg_final_nops = f (fun r -> float_of_int r.final_nops);
    avg_omega_calls = f (fun r -> float_of_int r.omega_calls);
    avg_time_s = f (fun r -> r.time_s);
    n_curtailed_lambda = count_status Budget.Curtailed_lambda;
    n_curtailed_deadline = count_status Budget.Curtailed_deadline;
    n_cancelled = count_status Budget.Cancelled;
  }

let by_size records = Stats.group_by (fun r -> r.size) records

let dedup_stats results =
  let recs = records results in
  let total = List.length recs in
  let uniq = List.length (List.filter (fun r -> r.unique) recs) in
  let rate =
    if total = 0 then 0.0
    else 1.0 -. (float_of_int uniq /. float_of_int total)
  in
  (uniq, total, rate)
