(** Constant-memory streaming aggregate of study records.

    The mega study never materializes a record list: every per-block
    outcome is folded into this bounded structure — counters, sums, a
    fixed-bucket block-size histogram, a k-minimum-values (KMV) sketch
    of canonical-DAG hashes for a global unique-block estimate, and a
    log-bucketed histogram of per-block wall times for percentile
    queries.  State is O(1) regardless of how many blocks stream
    through, which is what keeps a 10^6-block run's RSS flat.

    Aggregates {b merge}: [merge_into] combines two disjoint
    sub-population aggregates into the aggregate of their union
    (counters and histograms add; KMV sketches union).  Merging is
    associative and, for the deterministic part of the state,
    commutative — the mega master still merges shards in shard-id
    order so even the non-deterministic float fields accumulate in a
    fixed order.

    The {b determinism split}: {!render} serializes exactly the fields
    that are a pure function of the corpus definition (master seed,
    count, machine, lambda) — wall-clock times and dedup-cache hit
    counts are excluded, because times vary run to run and cache hits
    depend on how duplicates land across shards and LRU evictions.
    [render] is the byte-identity artifact the bench and CI compare
    across shard counts and across kill/resume runs.  {!to_json} /
    {!of_json} serialize the {e full} state (including time histograms)
    for checkpoints. *)

module Json = Pipesched_prelude.Json

(** The log-bucketed latency/time histogram used internally for block
    wall times, exposed for reuse: 64 buckets, 8 per decade over
    [1us, 100s), ~33% relative resolution, constant memory, merges by
    addition. *)
module Timehist : sig
  type t

  val create : unit -> t

  (** [add t seconds] folds one observation. *)
  val add : t -> float -> unit

  (** Observations folded in. *)
  val count : t -> int

  (** [quantile t q] with [0 <= q <= 1], to bucket resolution; [0.]
      when empty. *)
  val quantile : t -> float -> float

  val merge_into : dst:t -> t -> unit
end

(** {!Timehist} keyed by a string — one sketch per response stage in
    the load harness ([hit] / [fresh] / [curtailed] / ...).  Absent
    keys read as empty; [merge_into] merges key-wise. *)
module Keyed : sig
  type t

  val create : unit -> t
  val add : t -> string -> float -> unit
  val count : t -> string -> int

  (** Observations across all keys. *)
  val total : t -> int

  val quantile : t -> string -> float -> float

  (** Keys with at least one sketch, sorted. *)
  val keys : t -> string list

  val merge_into : dst:t -> t -> unit
end

type t

val create : unit -> t

(** [add_record t ~hash r] folds one scheduled block: [hash] is the
    block's canonical-DAG hash (folded into the KMV distinct sketch);
    [from_cache] (default false) marks a record replayed from the
    per-shard dedup cache rather than searched (counted in
    {!dedup_hits}, which is excluded from {!render}). *)
val add_record : t -> ?from_cache:bool -> hash:int -> Study.record -> unit

(** Fold one contained per-block failure (generation or search raised). *)
val add_failure : t -> unit

(** [merge_into ~dst src] folds [src] into [dst].  [src] is unchanged. *)
val merge_into : dst:t -> t -> unit

(** {2 Accessors} *)

(** Records + failures folded in. *)
val blocks : t -> int

val failed : t -> int
val completed : t -> int
val dedup_hits : t -> int
val sum_time_s : t -> float

(** Estimated distinct canonical classes (KMV; exact below the sketch
    capacity of 256, unbiased above it). *)
val distinct_estimate : t -> float

(** [time_quantile t q] is the [q]-quantile ([0 <= q <= 1]) of per-block
    search wall time, to log-bucket resolution (~33% per bucket); [0.]
    when empty. *)
val time_quantile : t -> float -> float

(** {2 Serialization} *)

(** The deterministic sub-state as JSON (fixed key order).  Excludes
    wall times and dedup-cache hits; includes a fingerprint of the KMV
    sketch so any divergence in the observed hash population shows. *)
val deterministic_json : t -> Json.t

(** [Json.to_string (deterministic_json t)] — the byte-identity
    artifact. *)
val render : t -> string

(** Full state (checkpoint serialization), including time histograms. *)
val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

(** Human-readable summary; [wall_s] adds end-to-end blocks/sec. *)
val pp : ?wall_s:float -> Format.formatter -> t -> unit
