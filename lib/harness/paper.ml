type table1_row = {
  insns : int;
  exhaustive : float;
  legal_calls : int option;
  proposed_calls : int;
}

let table1 =
  [ { insns = 8; exhaustive = 40320.0; legal_calls = Some 163;
      proposed_calls = 76 };
    { insns = 11; exhaustive = 39916800.0; legal_calls = Some 9_039;
      proposed_calls = 12 };
    { insns = 13; exhaustive = 6.2e9; legal_calls = Some 65_105;
      proposed_calls = 394 };
    { insns = 13; exhaustive = 6.2e9; legal_calls = Some 40_240;
      proposed_calls = 21 };
    { insns = 14; exhaustive = 8.7e10; legal_calls = Some 175_384;
      proposed_calls = 1_676 };
    { insns = 16; exhaustive = 2.1e13; legal_calls = Some 27_487;
      proposed_calls = 17 };
    { insns = 16; exhaustive = 2.1e13; legal_calls = Some 5_800_000;
      proposed_calls = 66_890 };
    { insns = 16; exhaustive = 2.1e13; legal_calls = Some 92_228_324;
      proposed_calls = 5_434 };
    { insns = 20; exhaustive = 2.4e18; legal_calls = Some 12_872;
      proposed_calls = 334 };
    { insns = 21; exhaustive = 5.1e19; legal_calls = Some 58_581;
      proposed_calls = 202 };
    { insns = 22; exhaustive = 1.1e21; legal_calls = None;
      proposed_calls = 119 } ]

type table7_column = {
  runs : int;
  pct : float;
  avg_insns : float;
  avg_initial_nops : float;
  avg_final_nops : float;
  avg_omega_calls : float;
  avg_time_s : float;
}

let table7_completed =
  { runs = 15_812; pct = 98.83; avg_insns = 20.50; avg_initial_nops = 9.50;
    avg_final_nops = 0.67; avg_omega_calls = 427.4; avg_time_s = 0.1 }

let table7_truncated =
  { runs = 188; pct = 1.17; avg_insns = 32.28; avg_initial_nops = 14.34;
    avg_final_nops = 4.03; avg_omega_calls = 54_150.0; avg_time_s = 15.0 }

let total_runs = 16_000

let figure_claims =
  [ ( "fig1",
      "schedules searched stays in the 10..10^4 band for completed runs, \
       with no strong growth in block size" );
    ( "fig4",
      "initial NOPs grow roughly linearly with block size; final NOPs stay \
       nearly constant (close to zero)" );
    ( "fig5",
      "block sizes spread widely, average 20.6 instructions, tail past 40" );
    ( "fig6",
      "average runtime grows slowly with block size and stays within \
       interactive compile times for common sizes" );
    ( "fig7",
      "the percentage of provably optimal runs stays near 100% through \
       ~20-instruction blocks and decays for very large blocks" ) ]
