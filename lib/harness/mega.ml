open Pipesched_ir
open Pipesched_machine
module Json = Pipesched_prelude.Json
module Budget = Pipesched_prelude.Budget
module Lru = Pipesched_prelude.Lru
module Pool = Pipesched_parallel.Pool
module Generator = Pipesched_synth.Generator
module Schedule = Pipesched_synth.Schedule
module Optimal = Pipesched_core.Optimal

type config = {
  seed : int;
  count : int;
  shards : int;
  jobs : int;
  search_jobs : int;
  lambda : int;
  dedup_capacity : int;
  checkpoint_every : int;
  checkpoint_dir : string;
  machine : string;
  certify : bool;
}

let default =
  {
    seed = 1990;
    count = 10_000;
    shards = 2;
    jobs = 1;
    search_jobs = 1;
    lambda = 50_000;
    dedup_capacity = 65_536;
    checkpoint_every = 1_000;
    checkpoint_dir = "mega-checkpoints";
    machine = "simulation";
    certify = false;
  }

let shard_range cfg k =
  (k * cfg.count / cfg.shards, (k + 1) * cfg.count / cfg.shards)

(* Tiny shards are pure overhead: every worker process pays fork/exec,
   checkpoint and streaming setup for a handful of blocks, and at small
   corpora more shards measurably *lose* throughput (the crossover sits
   near 64 blocks per shard — DESIGN.md §11).  Requests beyond
   [count / min_shard_blocks] are clamped with a warning instead of
   honored.  Result-transparent: the aggregate is shard-count-invariant
   by construction, so only wall-clock time changes. *)
let min_shard_blocks = 64

let effective_shards cfg =
  min cfg.shards (max 1 (cfg.count / min_shard_blocks))

let resolve_machine cfg =
  match Machine.Presets.find cfg.machine with
  | Some m -> m
  | None ->
    invalid_arg (Printf.sprintf "Mega: unknown machine preset %S" cfg.machine)

let validate cfg =
  if cfg.count < 0 then invalid_arg "Mega: negative count";
  if cfg.shards < 1 then invalid_arg "Mega: shards must be >= 1";
  if cfg.jobs < 1 then invalid_arg "Mega: jobs must be >= 1";
  if cfg.search_jobs < 1 then invalid_arg "Mega: search_jobs must be >= 1";
  if cfg.lambda < 1 then invalid_arg "Mega: lambda must be >= 1";
  if cfg.dedup_capacity < 0 then invalid_arg "Mega: negative dedup_capacity";
  if cfg.checkpoint_every < 1 then
    invalid_arg "Mega: checkpoint_every must be >= 1";
  ignore (resolve_machine cfg)

(* Everything that determines the deterministic aggregate — and nothing
   that doesn't ([jobs], [dedup_capacity], [checkpoint_every] are all
   result-transparent), so a resume may legally change those. *)
let config_fingerprint cfg =
  Printf.sprintf
    "v1;seed=%d;count=%d;shards=%d;lambda=%d;search_jobs=%d;certify=%b;machine=%s"
    cfg.seed cfg.count cfg.shards cfg.lambda cfg.search_jobs cfg.certify
    (Machine.fingerprint (resolve_machine cfg))

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let jint name j = Option.bind (Json.member name j) Json.to_int_opt
let jfloat name j = Option.bind (Json.member name j) Json.to_float_opt
let jstr name j = Option.bind (Json.member name j) Json.to_string_opt
let jbool name j = Option.bind (Json.member name j) Json.to_bool_opt

let status_of_string = function
  | "Complete" -> Some Budget.Complete
  | "Curtailed_lambda" -> Some Budget.Curtailed_lambda
  | "Curtailed_deadline" -> Some Budget.Curtailed_deadline
  | "Cancelled" -> Some Budget.Cancelled
  | _ -> None

let rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then (
          close_in_noerr ic;
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          try int_of_string digits with _ -> 0)
        else go ()
      | exception End_of_file ->
        close_in_noerr ic;
        0
    in
    go ()
  with _ -> 0

(* ------------------------------------------------------------------ *)
(* Checkpoints: write-temp + rename, so a checkpoint file is always
   either the previous complete one or the new complete one.           *)

let checkpoint_path cfg shard =
  Filename.concat cfg.checkpoint_dir (Printf.sprintf "shard-%04d.json" shard)

let write_checkpoint cfg ~shard ~done_blocks ~rss0_kb agg =
  let lo, hi = shard_range cfg shard in
  let j =
    Json.Assoc
      [
        ("schema", Json.Int 1);
        ("config", Json.String (config_fingerprint cfg));
        ("shard", Json.Int shard);
        ("lo", Json.Int lo);
        ("hi", Json.Int hi);
        ("done", Json.Int done_blocks);
        ("rss0_kb", Json.Int rss0_kb);
        ("rss_kb", Json.Int (rss_kb ()));
        ("aggregate", Aggregate.to_json agg);
      ]
  in
  let path = checkpoint_path cfg shard in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let read_checkpoint cfg ~shard =
  let path = checkpoint_path cfg shard in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in_noerr ic;
      match Json.parse (String.trim s) with
      | Error _ -> None
      | Ok j -> (
        let lo, hi = shard_range cfg shard in
        match
          ( jint "schema" j,
            jstr "config" j,
            jint "shard" j,
            jint "lo" j,
            jint "hi" j,
            jint "done" j,
            jint "rss0_kb" j,
            jint "rss_kb" j,
            Json.member "aggregate" j )
        with
        | ( Some 1,
            Some fp,
            Some sh,
            Some l,
            Some h,
            Some d,
            Some r0,
            Some r1,
            Some aj )
          when fp = config_fingerprint cfg
               && sh = shard && l = lo && h = hi && d >= 0 && d <= hi - lo
          -> (
          match Aggregate.of_json aj with
          | Ok agg when Aggregate.blocks agg = d -> Some (d, r0, r1, agg)
          | _ -> None)
        | _ -> None)
    with _ -> None

(* ------------------------------------------------------------------ *)
(* The line protocol (worker stdout -> master).  One JSON object per
   line: a start announcement, then per-block records / failures, then
   a final summary carrying a fingerprint of the worker's own aggregate
   render — a free end-to-end integrity check on the IPC stream.       *)

let start_line ~shard ~start =
  Json.to_string
    (Json.Assoc [ ("shard", Json.Int shard); ("start", Json.Int start) ])

let record_line ~idx ~hash ~from_cache (r : Study.record) =
  Json.to_string
    (Json.Assoc
       [
         ("i", Json.Int idx);
         ("h", Json.Int hash);
         ("c", Json.Bool from_cache);
         ("sz", Json.Int r.Study.size);
         ("i0", Json.Int r.Study.initial_nops);
         ("fn", Json.Int r.Study.final_nops);
         ("oc", Json.Int r.Study.omega_calls);
         ("sc", Json.Int r.Study.schedules_completed);
         ("mh", Json.Int r.Study.memo_hits);
         ("st", Json.String (Budget.status_to_string r.Study.status));
         ("t", Json.Float r.Study.time_s);
       ])

let failure_line ~idx (f : Pool.failure) =
  Json.to_string
    (Json.Assoc [ ("i", Json.Int idx); ("fail", Json.String f.Pool.exn) ])

let final_line ~shard ~done_blocks ~fp =
  Json.to_string
    (Json.Assoc
       [
         ("shard", Json.Int shard);
         ("done", Json.Int done_blocks);
         ("fp", Json.Int fp);
       ])

type line =
  | L_start of { start : int }
  | L_record of { hash : int; from_cache : bool; record : Study.record }
  | L_failure
  | L_final of { done_blocks : int; fp : int }

let parse_line s : (line, string) result =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
    match jint "i" j with
    | Some _ -> (
      match jstr "fail" j with
      | Some _ -> Ok L_failure
      | None -> (
        match
          ( jint "h" j,
            jbool "c" j,
            jint "sz" j,
            jint "i0" j,
            jint "fn" j,
            jint "oc" j,
            jint "sc" j,
            jint "mh" j,
            Option.bind (jstr "st" j) status_of_string,
            jfloat "t" j )
        with
        | ( Some hash,
            Some from_cache,
            Some size,
            Some initial_nops,
            Some final_nops,
            Some omega_calls,
            Some schedules_completed,
            Some memo_hits,
            Some status,
            Some time_s ) ->
          Ok
            (L_record
               {
                 hash;
                 from_cache;
                 record =
                   {
                     Study.size;
                     initial_nops;
                     final_nops;
                     omega_calls;
                     schedules_completed;
                     memo_hits;
                     completed = status = Budget.Complete;
                     status;
                     time_s;
                     unique = not from_cache;
                   };
               })
        | _ -> Error "malformed record line"))
    | None -> (
      match (jint "start" j, jint "done" j, jint "fp" j) with
      | Some start, _, _ -> Ok (L_start { start })
      | None, Some done_blocks, Some fp -> Ok (L_final { done_blocks; fp })
      | _ -> Error "unrecognized line"))

let agg_fingerprint agg = Canonical.hash_string (Aggregate.render agg)

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)

(* Crash injection for the kill-and-resume bench/CI smoke:
   PIPESCHED_MEGA_CRASH="<shard>:<n>" SIGKILLs that shard's worker the
   moment its absolute progress reaches [n] blocks — mid-stream, between
   checkpoints. *)
let crash_spec () =
  match Sys.getenv_opt "PIPESCHED_MEGA_CRASH" with
  | None -> None
  | Some s -> (
    match String.index_opt s ':' with
    | None -> None
    | Some i -> (
      try
        Some
          ( int_of_string (String.sub s 0 i),
            int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
      with _ -> None))

let worker_main cfg ~shard ~resume =
  validate cfg;
  if cfg.jobs > 1 || cfg.search_jobs > 1 then
    (* Domains make minor GCs stop-the-world barriers; same tuning as
       the bench harness. *)
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let machine = resolve_machine cfg in
  let lo, hi = shard_range cfg shard in
  let n = hi - lo in
  let start, rss0, agg =
    if resume then
      match read_checkpoint cfg ~shard with
      | Some (d, r0, _, a) -> (d, r0, a)
      | None -> (0, 0, Aggregate.create ())
    else (0, 0, Aggregate.create ())
  in
  let out = stdout in
  output_string out (start_line ~shard ~start);
  output_char out '\n';
  flush out;
  let cache = Lru.create ~capacity:cfg.dedup_capacity in
  let options =
    {
      Optimal.default_options with
      Optimal.lambda = cfg.lambda;
      Optimal.search_jobs = cfg.search_jobs;
    }
  in
  (* Solve the *canonical* block, so the record is a pure function of
     the block's canonical class and an LRU hit replays exactly what a
     fresh search would report (dedup transparency — see mega.mli). *)
  let solve idx =
    let bseed = Schedule.seed_at ~seed:cfg.seed idx in
    let blk = Generator.of_seed bseed in
    let c = Canonical.of_block blk in
    match Lru.find cache c.Canonical.key with
    | Some r -> (c.Canonical.hash, true, { r with Study.unique = false })
    | None ->
      let r =
        Study.run_block ~options ~certify:cfg.certify machine c.Canonical.block
      in
      Lru.put cache c.Canonical.key r;
      (c.Canonical.hash, false, r)
  in
  let crash = crash_spec () in
  let done_ = ref start in
  let last_ckpt = ref start in
  let rss0 = ref rss0 in
  let buf = Buffer.create 65536 in
  let emit_pending () =
    output_string out (Buffer.contents buf);
    Buffer.clear buf;
    flush out
  in
  let checkpoint () =
    (* RSS baseline = first checkpoint of the run's life, i.e. after the
       caches have taken shape; the flat-memory evidence compares the
       final RSS against this. *)
    if !rss0 = 0 then rss0 := rss_kb ();
    write_checkpoint cfg ~shard ~done_blocks:!done_ ~rss0_kb:!rss0 agg;
    last_ckpt := !done_
  in
  let maybe_crash () =
    match crash with
    | Some (s, after) when s = shard && !done_ >= after ->
      emit_pending ();
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ()
  in
  let batch_size = max 1 (min 512 (cfg.jobs * 32)) in
  while !done_ < n do
    let b = min batch_size (n - !done_) in
    let idxs = List.init b (fun i -> lo + !done_ + i) in
    let results = Pool.parallel_map_result ~jobs:cfg.jobs solve idxs in
    List.iter2
      (fun idx res ->
        (match res with
        | Ok (hash, from_cache, r) ->
          Buffer.add_string buf (record_line ~idx ~hash ~from_cache r);
          Buffer.add_char buf '\n';
          Aggregate.add_record agg ~from_cache ~hash r
        | Error f ->
          Buffer.add_string buf (failure_line ~idx f);
          Buffer.add_char buf '\n';
          Aggregate.add_failure agg);
        incr done_;
        maybe_crash ();
        if !done_ - !last_ckpt >= cfg.checkpoint_every then (
          emit_pending ();
          checkpoint ()))
      idxs results;
    emit_pending ()
  done;
  checkpoint ();
  output_string out (final_line ~shard ~done_blocks:n ~fp:(agg_fingerprint agg));
  output_char out '\n';
  flush out

(* ------------------------------------------------------------------ *)
(* Worker argv convention                                              *)

let worker_arg cfg ~shard ~resume =
  Json.to_string
    (Json.Assoc
       [
         ("seed", Json.Int cfg.seed);
         ("count", Json.Int cfg.count);
         ("shards", Json.Int cfg.shards);
         ("jobs", Json.Int cfg.jobs);
         ("search_jobs", Json.Int cfg.search_jobs);
         ("lambda", Json.Int cfg.lambda);
         ("dedup_capacity", Json.Int cfg.dedup_capacity);
         ("checkpoint_every", Json.Int cfg.checkpoint_every);
         ("checkpoint_dir", Json.String cfg.checkpoint_dir);
         ("machine", Json.String cfg.machine);
         ("certify", Json.Bool cfg.certify);
         ("shard", Json.Int shard);
         ("resume", Json.Bool resume);
       ])

let worker_of_arg s =
  match Json.parse s with
  | Error e -> Error ("bad worker config: " ^ e)
  | Ok j -> (
    let ( let* ) = Option.bind in
    let parsed =
      let* seed = jint "seed" j in
      let* count = jint "count" j in
      let* shards = jint "shards" j in
      let* jobs = jint "jobs" j in
      let* search_jobs = jint "search_jobs" j in
      let* lambda = jint "lambda" j in
      let* dedup_capacity = jint "dedup_capacity" j in
      let* checkpoint_every = jint "checkpoint_every" j in
      let* checkpoint_dir = jstr "checkpoint_dir" j in
      let* machine = jstr "machine" j in
      let* certify = jbool "certify" j in
      let* shard = jint "shard" j in
      let* resume = jbool "resume" j in
      Some
        ( {
            seed;
            count;
            shards;
            jobs;
            search_jobs;
            lambda;
            dedup_capacity;
            checkpoint_every;
            checkpoint_dir;
            machine;
            certify;
          },
          shard,
          resume )
    in
    match parsed with
    | Some v -> Ok v
    | None -> Error "bad worker config: missing or mistyped field")

let run_if_worker () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "--mega-worker" then (
    (match worker_of_arg Sys.argv.(2) with
    | Ok (cfg, shard, resume) -> (
      try worker_main cfg ~shard ~resume
      with e ->
        Printf.eprintf "mega worker %d: %s\n%!" shard (Printexc.to_string e);
        Stdlib.exit 3)
    | Error e ->
      Printf.eprintf "mega worker: %s\n%!" e;
      Stdlib.exit 3);
    Stdlib.exit 0)

(* ------------------------------------------------------------------ *)
(* Master                                                              *)

(* [Unix.WSIGNALED] carries OCaml's portable signal numbers (negative);
   name the common ones rather than leak e.g. -7 for SIGKILL. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

type progress = {
  total : int;
  done_blocks : int;
  resumed : int;
  live_shards : int;
  shards : int;
  elapsed_s : float;
}

type stats = {
  wall_s : float;
  processed : int;
  resumed : int;
  blocks_per_s : float;
  max_rss_ratio : float;
}

type shard_state = {
  shard : int;
  lo : int;
  hi : int;
  agg : Aggregate.t;
  start : int;  (* blocks replayed from this shard's checkpoint *)
  mutable streamed : int;  (* blocks folded from the live stream *)
  mutable final : (int * int) option;  (* worker's (done, fingerprint) *)
  mutable pid : int;
  buf : Buffer.t;
  mutable err : string option;
}

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else (
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  in
  go dir

let clear_checkpoints cfg =
  match Sys.readdir cfg.checkpoint_dir with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if String.length f >= 6 && String.sub f 0 6 = "shard-" then
          try Sys.remove (Filename.concat cfg.checkpoint_dir f)
          with Sys_error _ -> ())
      files

let process_line st line =
  match parse_line line with
  | Error e ->
    if st.err = None then
      st.err <- Some (Printf.sprintf "shard %d: bad line (%s)" st.shard e)
  | Ok (L_start { start }) ->
    if start <> st.start && st.err = None then
      st.err <-
        Some
          (Printf.sprintf
             "shard %d resumed at block %d but the master read %d from its \
              checkpoint"
             st.shard start st.start)
  | Ok (L_record { hash; from_cache; record }) ->
    Aggregate.add_record st.agg ~from_cache ~hash record;
    st.streamed <- st.streamed + 1
  | Ok L_failure ->
    Aggregate.add_failure st.agg;
    st.streamed <- st.streamed + 1
  | Ok (L_final { done_blocks; fp }) -> st.final <- Some (done_blocks, fp)

let drain_buffer st =
  let s = Buffer.contents st.buf in
  let rec go pos =
    match String.index_from_opt s pos '\n' with
    | Some nl ->
      process_line st (String.sub s pos (nl - pos));
      go (nl + 1)
    | None ->
      Buffer.clear st.buf;
      Buffer.add_substring st.buf s pos (String.length s - pos)
  in
  go 0

let run ?(exe = Sys.executable_name) ?progress ~resume cfg =
  validate cfg;
  (* Clamp before the fingerprint is computed, so workers, checkpoints
     and resumes all see the same (effective) shard count. *)
  let cfg =
    let eff = effective_shards cfg in
    if eff < cfg.shards then begin
      Printf.eprintf
        "mega: clamping %d shards to %d (%d blocks, min %d blocks per \
         shard)\n\
         %!"
        cfg.shards eff cfg.count min_shard_blocks;
      { cfg with shards = eff }
    end
    else cfg
  in
  mkdir_p cfg.checkpoint_dir;
  if not resume then clear_checkpoints cfg;
  let t_start = Unix.gettimeofday () in
  let states =
    Array.init cfg.shards (fun k ->
        let lo, hi = shard_range cfg k in
        let start, agg =
          if resume then
            match read_checkpoint cfg ~shard:k with
            | Some (d, _, _, a) -> (d, a)
            | None -> (0, Aggregate.create ())
          else (0, Aggregate.create ())
        in
        {
          shard = k;
          lo;
          hi;
          agg;
          start;
          streamed = 0;
          final = None;
          pid = -1;
          buf = Buffer.create 4096;
          err = None;
        })
  in
  let resumed = Array.fold_left (fun a st -> a + st.start) 0 states in
  let live = Hashtbl.create 16 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  Array.iter
    (fun st ->
      let n = st.hi - st.lo in
      if st.start >= n then
        (* Shard already complete in its checkpoint: nothing to spawn;
           its fold *is* the checkpoint aggregate. *)
        st.final <- Some (n, agg_fingerprint st.agg)
      else (
        (* cloexec: shard B must not inherit (and hold open) shard A's
           pipe write end, or A's EOF would wait on B's exit. *)
        let r, w = Unix.pipe ~cloexec:true () in
        let pid =
          Unix.create_process exe
            [| exe; "--mega-worker"; worker_arg cfg ~shard:st.shard ~resume |]
            devnull w Unix.stderr
        in
        Unix.close w;
        st.pid <- pid;
        Hashtbl.replace live r st))
    states;
  Unix.close devnull;
  let chunk = Bytes.create 65536 in
  let report () =
    match progress with
    | None -> ()
    | Some f ->
      let done_blocks =
        Array.fold_left (fun a st -> a + st.start + st.streamed) 0 states
      in
      f
        {
          total = cfg.count;
          done_blocks;
          resumed;
          live_shards = Hashtbl.length live;
          shards = cfg.shards;
          elapsed_s = Unix.gettimeofday () -. t_start;
        }
  in
  while Hashtbl.length live > 0 do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) live [] in
    let ready, _, _ = Unix.select fds [] [] 0.5 in
    List.iter
      (fun fd ->
        let st = Hashtbl.find live fd in
        let nread =
          try Unix.read fd chunk 0 (Bytes.length chunk)
          with Unix.Unix_error _ -> 0
        in
        if nread = 0 then (
          Hashtbl.remove live fd;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let _, status = Unix.waitpid [] st.pid in
          match status with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED c ->
            if st.err = None then
              st.err <-
                Some (Printf.sprintf "shard %d exited with code %d" st.shard c)
          | Unix.WSIGNALED s ->
            if st.err = None then
              st.err <-
                Some
                  (Printf.sprintf "shard %d killed by %s" st.shard
                     (signal_name s))
          | Unix.WSTOPPED s ->
            if st.err = None then
              st.err <-
                Some
                  (Printf.sprintf "shard %d stopped by %s" st.shard
                     (signal_name s)))
        else (
          Buffer.add_subbytes st.buf chunk 0 nread;
          drain_buffer st))
      ready;
    report ()
  done;
  let errors = ref [] in
  let add_error e = errors := e :: !errors in
  Array.iter
    (fun st ->
      let n = st.hi - st.lo in
      match st.err with
      | Some e -> add_error e
      | None -> (
        match st.final with
        | None ->
          add_error
            (Printf.sprintf "shard %d ended without a final summary" st.shard)
        | Some (d, fp) ->
          if d <> n then
            add_error
              (Printf.sprintf "shard %d finished at %d/%d blocks" st.shard d n)
          else if st.start + st.streamed <> n then
            add_error
              (Printf.sprintf "shard %d: master folded %d of %d blocks"
                 st.shard (st.start + st.streamed) n)
          else if agg_fingerprint st.agg <> fp then
            add_error
              (Printf.sprintf
                 "shard %d: aggregate fingerprint mismatch between worker and \
                  master (IPC corruption?)"
                 st.shard)))
    states;
  if !errors <> [] then
    Error
      (String.concat "\n" (List.rev !errors)
      ^ "\n(completed work is checkpointed; re-run with --resume to continue)")
  else begin
    let total = Aggregate.create () in
    Array.iter (fun st -> Aggregate.merge_into ~dst:total st.agg) states;
    let wall_s = Unix.gettimeofday () -. t_start in
    let processed = cfg.count - resumed in
    let max_rss_ratio =
      Array.fold_left
        (fun acc st ->
          match read_checkpoint cfg ~shard:st.shard with
          | Some (_, r0, r1, _) when r0 > 0 ->
            Float.max acc (float_of_int r1 /. float_of_int r0)
          | _ -> acc)
        0.0 states
    in
    Ok
      ( total,
        {
          wall_s;
          processed;
          resumed;
          blocks_per_s =
            (if wall_s > 0.0 then float_of_int processed /. wall_s else 0.0);
          max_rss_ratio;
        } )
  end
