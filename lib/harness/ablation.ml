open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Budget = Pipesched_prelude.Budget
module Generator = Pipesched_synth.Generator
module List_sched = Pipesched_sched.List_sched

type config = { label : string; options : Optimal.options }

let standard_configs ~lambda =
  let base = { Optimal.default_options with Optimal.lambda } in
  [ { label = "paper (all prunings, list seed)"; options = base };
    { label = "- equivalence pruning [5c]";
      options = { base with Optimal.equivalence = false } };
    { label = "- alpha-beta pruning [6]";
      options = { base with Optimal.alpha_beta = false } };
    { label = "- list seed (source order)";
      options = { base with Optimal.seed = List_sched.Source_order } };
    { label = "- list seed (random order)";
      options = { base with Optimal.seed = List_sched.Random_order 99 } };
    { label = "- dominance memo (ext)";
      options =
        { base with
          Optimal.memo =
            { base.Optimal.memo with Optimal.memo_enabled = false } } };
    { label = "+ strong equivalence (ext)";
      options = { base with Optimal.strong_equivalence = true } };
    { label = "+ critical-path bound (ext)";
      options = { base with Optimal.lower_bound = Optimal.Critical_path } };
    { label = "+ both extensions";
      options =
        { base with
          Optimal.strong_equivalence = true;
          Optimal.lower_bound = Optimal.Critical_path } } ]

type row = {
  label : string;
  completed_pct : float;
  avg_calls_completed : float;
  avg_memo_hits : float;
  avg_final_nops : float;
  avg_time_s : float;
  deadline_hits : int;
}

let run ?jobs ?block_deadline_s ~seed ~count ~lambda machine =
  let rng = Rng.create seed in
  let blocks =
    Stats.sequential_init count (fun _ ->
        Generator.block rng (Generator.sample_params rng))
  in
  List.map
    (fun cfg ->
      let options =
        match block_deadline_s with
        | None -> cfg.options
        | Some d -> { cfg.options with Optimal.deadline_s = Some d }
      in
      let records =
        Pipesched_parallel.Pool.parallel_map ?jobs
          (fun blk -> Study.run_block ~options machine blk)
          blocks
      in
      let completed = List.filter (fun r -> r.Study.completed) records in
      {
        label = cfg.label;
        completed_pct =
          100.0
          *. float_of_int (List.length completed)
          /. float_of_int (max 1 count);
        avg_calls_completed =
          Stats.mean
            (List.map
               (fun r -> float_of_int r.Study.omega_calls)
               completed);
        avg_memo_hits =
          Stats.mean
            (List.map (fun r -> float_of_int r.Study.memo_hits) records);
        avg_final_nops =
          Stats.mean (List.map (fun r -> float_of_int r.Study.final_nops) records);
        avg_time_s = Stats.mean (List.map (fun r -> r.Study.time_s) records);
        deadline_hits =
          List.length
            (List.filter
               (fun r -> r.Study.status = Budget.Curtailed_deadline)
               records);
      })
    (standard_configs ~lambda)

let print fmt rows =
  Format.fprintf fmt "@.Ablation of the search ingredients:@.";
  Format.fprintf fmt "  %-34s %10s %14s %10s %11s %11s %9s@."
    "configuration" "% optimal" "calls (compl.)" "memo hits" "final NOPs"
    "time (s)" "ddl hits";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  %-34s %10.2f %14.1f %10.1f %11.3f %11.5f %9d@."
        r.label r.completed_pct r.avg_calls_completed r.avg_memo_hits
        r.avg_final_nops r.avg_time_s r.deadline_hits)
    rows
