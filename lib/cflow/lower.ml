open Pipesched_frontend

(* Builder: blocks under construction, as reversed assignment lists with a
   terminator filled in when the block is sealed. *)
type builder = {
  mutable stmts : Ast.stmt list array;  (* reversed, Assign only *)
  mutable terms : Cfg.terminator array;
  mutable used : int;
  mutable temp : int;
}

let new_block b =
  if b.used = Array.length b.stmts then begin
    let grow n a fill =
      let a' = Array.make (max 8 (2 * n)) fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    b.stmts <- grow b.used b.stmts [];
    b.terms <- grow b.used b.terms Cfg.Exit
  end;
  let id = b.used in
  b.used <- id + 1;
  id

let append b id stmt = b.stmts.(id) <- stmt :: b.stmts.(id)

let fresh_temp b =
  let t = Printf.sprintf "$c%d" b.temp in
  b.temp <- b.temp + 1;
  t

(* Normalize a condition: complex operands become temporaries assigned at
   the end of block [id]. *)
let normalize_cond b id (r, e1, e2) =
  let simple e =
    match e with
    | Ast.Int n -> Cfg.Simm n
    | Ast.Var v -> Cfg.Svar v
    | _ ->
      let t = fresh_temp b in
      append b id (Ast.Assign (t, e));
      Cfg.Svar t
  in
  let s1 = simple e1 in
  let s2 = simple e2 in
  (r, s1, s2)

(* Lower a statement sequence into block [id]; returns the block id where
   control rests afterwards. *)
let rec lower_seq b id = function
  | [] -> id
  | Ast.Assign _ as s :: rest ->
    append b id s;
    lower_seq b id rest
  | Ast.If (c, then_, else_) :: rest ->
    let cond = normalize_cond b id c in
    let then_b = new_block b in
    let else_b = new_block b in
    let join_b = new_block b in
    b.terms.(id) <- Cfg.Branch (cond, then_b, else_b);
    let then_end = lower_seq b then_b then_ in
    b.terms.(then_end) <- Cfg.Jump join_b;
    let else_end = lower_seq b else_b else_ in
    b.terms.(else_end) <- Cfg.Jump join_b;
    lower_seq b join_b rest
  | Ast.While (c, body) :: rest ->
    let head_b = new_block b in
    b.terms.(id) <- Cfg.Jump head_b;
    let cond = normalize_cond b head_b c in
    let body_b = new_block b in
    let exit_b = new_block b in
    b.terms.(head_b) <- Cfg.Branch (cond, body_b, exit_b);
    let body_end = lower_seq b body_b body in
    b.terms.(body_end) <- Cfg.Jump head_b;
    lower_seq b exit_b rest

let lower ?(optimize = true) prog =
  let b =
    { stmts = Array.make 8 []; terms = Array.make 8 Cfg.Exit; used = 0;
      temp = 0 }
  in
  let entry = new_block b in
  let final = lower_seq b entry prog in
  b.terms.(final) <- Cfg.Exit;
  let nodes =
    List.init b.used (fun i ->
        let stmts = List.rev b.stmts.(i) in
        let block = Gen.generate ~reuse:false stmts in
        let block = if optimize then Opt.optimize block else block in
        { Cfg.block; term = b.terms.(i) })
  in
  Cfg.make nodes ~entry

let compile ?optimize src = lower ?optimize (Parser.parse src)
