(** Lowering structured programs to control-flow graphs.

    [If]/[While] statements become diamonds and loops of basic blocks;
    condition operands that are not already a variable or literal are
    materialized into compiler temporaries ([$c0], [$c1], ...) by extra
    assignments inside the preceding block, so every block is plain
    straight-line code for the §4 machinery.

    Temporaries live in memory like ordinary variables; they are invisible
    to the source program and filtered from {!Cfg.run} comparisons by the
    caller when needed. *)

open Pipesched_frontend

(** [lower ?optimize prog] builds the CFG ([optimize] (default true) runs
    the §3.1 passes on every block).  Pure straight-line programs lower to
    a single [Exit] node. *)
val lower : ?optimize:bool -> Ast.program -> Cfg.t

(** [compile ?optimize src] parses and lowers source text. *)
val compile : ?optimize:bool -> string -> Cfg.t
