open Pipesched_ir
open Pipesched_frontend

type simple = Svar of string | Simm of int

type cond = Ast.relop * simple * simple

type terminator = Jump of int | Branch of cond * int * int | Exit

type node = { block : Block.t; term : terminator }

type t = { nodes : node array; entry : int }

let targets = function
  | Jump j -> [ j ]
  | Branch (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Exit -> []

let make nodes ~entry =
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  if entry < 0 || entry >= n then invalid_arg "Cfg.make: entry out of range";
  Array.iter
    (fun node ->
      List.iter
        (fun j ->
          if j < 0 || j >= n then
            invalid_arg "Cfg.make: terminator target out of range")
        (targets node.term))
    arr;
  { nodes = arr; entry }

let length cfg = Array.length cfg.nodes
let node cfg i = cfg.nodes.(i)
let successors cfg i = targets cfg.nodes.(i).term

let predecessors cfg i =
  let acc = ref [] in
  for p = Array.length cfg.nodes - 1 downto 0 do
    if List.mem i (successors cfg p) then acc := p :: !acc
  done;
  !acc

let instruction_count cfg =
  Array.fold_left (fun acc n -> acc + Block.length n.block) 0 cfg.nodes

let eval_simple mem_value = function
  | Svar v -> mem_value v
  | Simm n -> n

let run ?(fuel = 100_000) cfg ~env =
  let mem = Hashtbl.create 16 in
  let touched = Hashtbl.create 16 in
  let mem_value v =
    Hashtbl.replace touched v ();
    match Hashtbl.find_opt mem v with Some x -> x | None -> env v
  in
  let fuel_left = ref fuel in
  let rec go i =
    if !fuel_left <= 0 then raise Interp.Out_of_fuel;
    decr fuel_left;
    let { block; term } = cfg.nodes.(i) in
    List.iter
      (fun (v, x) ->
        Hashtbl.replace touched v ();
        Hashtbl.replace mem v x)
      (Interp.run_block block ~env:mem_value);
    match term with
    | Jump j -> go j
    | Branch ((r, a, b), tt, ff) ->
      let x = eval_simple mem_value a in
      let y = eval_simple mem_value b in
      go (if Ast.eval_relop r x y then tt else ff)
    | Exit -> ()
  in
  go cfg.entry;
  Hashtbl.fold (fun v () acc -> (v, mem_value v) :: acc) touched []
  |> List.sort compare

(* Concatenate [b] after [a], renumbering [b]'s tuple ids above [a]'s. *)
let concat_blocks a b =
  let max_id =
    Array.fold_left
      (fun acc (tu : Tuple.t) -> max acc tu.Tuple.id)
      0 (Block.tuples a)
  in
  let remap = Hashtbl.create 16 in
  let fix = function
    | Operand.Ref id -> Operand.Ref (Hashtbl.find remap id)
    | o -> o
  in
  let shifted = ref [] in
  let next = ref max_id in
  Array.iter
    (fun (tu : Tuple.t) ->
      incr next;
      Hashtbl.replace remap tu.Tuple.id !next;
      shifted :=
        Tuple.make ~id:!next tu.Tuple.op (fix tu.Tuple.a) (fix tu.Tuple.b)
        :: !shifted)
    (Block.tuples b);
  Block.of_tuples_exn
    (Array.to_list (Block.tuples a) @ List.rev !shifted)

let merge_chains cfg =
  let nodes = Array.copy cfg.nodes in
  let n = Array.length nodes in
  (* Union-find-free approach: repeatedly splice until stable, then drop
     unreachable nodes by rebuilding with an index map. *)
  let pred_count = Array.make n 0 in
  let recount () =
    Array.fill pred_count 0 n 0;
    Array.iter
      (fun node ->
        List.iter (fun j -> pred_count.(j) <- pred_count.(j) + 1)
          (targets node.term))
      nodes
  in
  let changed = ref true in
  while !changed do
    changed := false;
    recount ();
    for i = 0 to n - 1 do
      match nodes.(i).term with
      | Jump j when j <> cfg.entry && j <> i && pred_count.(j) = 1 ->
        nodes.(i) <-
          { block = concat_blocks nodes.(i).block nodes.(j).block;
            term = nodes.(j).term };
        (* Detach the spliced node so it becomes unreachable. *)
        nodes.(j) <- { block = Block.of_tuples_exn []; term = Exit };
        changed := true;
        recount ()
      | _ -> ()
    done
  done;
  (* Drop unreachable nodes. *)
  let reachable = Array.make n false in
  let rec mark i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter mark (targets nodes.(i).term)
    end
  in
  mark cfg.entry;
  let index = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if reachable.(i) then begin
      index.(i) <- !count;
      incr count;
      kept := i :: !kept
    end
  done;
  let remap_term = function
    | Jump j -> Jump index.(j)
    | Branch (c, t, f) -> Branch (c, index.(t), index.(f))
    | Exit -> Exit
  in
  let final =
    List.rev_map
      (fun i -> { nodes.(i) with term = remap_term nodes.(i).term })
      !kept
  in
  make final ~entry:index.(cfg.entry)

let optimize_blocks cfg =
  {
    cfg with
    nodes =
      Array.map
        (fun node -> { node with block = Opt.optimize node.block })
        cfg.nodes;
  }

let pp_simple fmt = function
  | Svar v -> Format.pp_print_string fmt v
  | Simm n -> Format.pp_print_int fmt n

let pp fmt cfg =
  Array.iteri
    (fun i { block; term } ->
      Format.fprintf fmt "L%d:%s@." i
        (if i = cfg.entry then "  (entry)" else "");
      Array.iter
        (fun tu -> Format.fprintf fmt "  %a@." Tuple.pp tu)
        (Block.tuples block);
      match term with
      | Jump j -> Format.fprintf fmt "  Jmp L%d@." j
      | Branch ((r, a, b), t, f) ->
        Format.fprintf fmt "  Br (%a %s %a) L%d L%d@." pp_simple a
          (match r with
           | Ast.Req -> "=="
           | Ast.Rne -> "!="
           | Ast.Rlt -> "<"
           | Ast.Rle -> "<="
           | Ast.Rgt -> ">"
           | Ast.Rge -> ">=")
          pp_simple b t f
      | Exit -> Format.fprintf fmt "  Ret@.")
    cfg.nodes
