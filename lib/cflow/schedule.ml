open Pipesched_ir
open Pipesched_machine
open Pipesched_core

type node_schedule = {
  result : Omega.result;
  entry : Omega.entry;
  stats : Optimal.stats;
}

type t = {
  cfg : Cfg.t;
  nodes : node_schedule array;
  total_nops : int;
  loop_headers : int list;
}

(* Exit state of a fixed order replayed against an entry. *)
let replay_exit machine dag entry order =
  let st = Omega.State.create ~entry machine dag in
  Array.iter (fun pos -> Omega.State.push st pos) order;
  Omega.State.exit_state st

let replay_result machine dag entry order =
  Omega.evaluate ~entry machine dag ~order

(* DFS from the entry: classify back edges (to a node on the current
   stack) and produce a reverse postorder of the forward graph. *)
let analyze cfg =
  let n = Cfg.length cfg in
  let color = Array.make n `White in
  let back_targets = ref [] in
  let postorder = ref [] in
  let rec dfs u =
    color.(u) <- `Grey;
    List.iter
      (fun v ->
        match color.(v) with
        | `White -> dfs v
        | `Grey -> back_targets := v :: !back_targets
        | `Black -> ())
      (Cfg.successors cfg u);
    color.(u) <- `Black;
    postorder := u :: !postorder
  in
  dfs cfg.Cfg.entry;
  (* accumulated head-first at finish time = reverse postorder *)
  (!postorder, List.sort_uniq compare !back_targets)

let schedule ?(options = Optimal.default_options) machine cfg =
  let n = Cfg.length cfg in
  let dags =
    Array.init n (fun i -> Dag.of_block (Cfg.node cfg i).Cfg.block)
  in
  (* Phase 1: per-node optimal orders under cold entries. *)
  let outcomes =
    Array.map (fun dag -> Optimal.schedule ~options machine dag) dags
  in
  let orders = Array.map (fun o -> o.Optimal.best.Omega.order) outcomes in
  (* Phase 2: exact propagation over the forward (acyclic) structure in
     reverse postorder; loop headers (back-edge targets) receive the fully
     conservative entry "every pipeline enqueued on the previous tick",
     which is sound for any number of iterations of the loop body. *)
  let rpo, loop_headers = analyze cfg in
  let cold = Omega.cold_entry machine in
  let worst =
    { Omega.pipe_last_use = Array.make (Machine.pipe_count machine) (-1) }
  in
  let entries = Array.make n cold in
  List.iter (fun h -> entries.(h) <- worst) loop_headers;
  let merge_into i (src : Omega.entry) =
    let dst = entries.(i) in
    entries.(i) <-
      { Omega.pipe_last_use =
          Array.mapi
            (fun p t -> max t src.Omega.pipe_last_use.(p))
            dst.Omega.pipe_last_use }
  in
  List.iter
    (fun i ->
      let exit_ = replay_exit machine dags.(i) entries.(i) orders.(i) in
      List.iter
        (fun j ->
          (* Loop headers already hold the worst case; merging a concrete
             exit cannot exceed it. *)
          if not (List.mem j loop_headers) then merge_into j exit_)
        (Cfg.successors cfg i))
    rpo;
  let nodes =
    Array.init n (fun i ->
        {
          result = replay_result machine dags.(i) entries.(i) orders.(i);
          entry = entries.(i);
          stats = outcomes.(i).Optimal.stats;
        })
  in
  {
    cfg;
    nodes;
    total_nops =
      Array.fold_left (fun acc ns -> acc + ns.result.Omega.nops) 0 nodes;
    loop_headers;
  }
