(** Whole-program assembly emission and execution.

    Each scheduled CFG node becomes a labelled section ([L0:], [L1:], ...)
    of register-allocated instructions with explicit NOPs; terminators
    become [Jmp Ln], [Ret], or a compare-and-branch [B<relop> a, b, Lt, Lf]
    whose operands are memory variables or immediates (values cross block
    boundaries through memory in this model, so branch operands are read
    from memory — a CISC-flavored simplification documented in
    DESIGN.md).

    {!execute} runs the emitted text on the {!Pipesched_regalloc.Asm}
    machine state extended with control flow, closing the loop from
    structured source programs to machine-level execution. *)

(** [emit ?registers ?delay_slots scheduled] renders the scheduled CFG.

    [delay_slots] (default 0) models MIPS-style branch delay slots
    ([Hen81], the paper's NOP-padding exemplar): every [Jmp] and branch is
    followed by that many slots which execute {e before} control
    transfers.  The emitter fills slots with stall-free trailing
    instructions of the block when safe (a filled instruction must not
    store to a variable the branch condition reads) and pads the rest
    with [Nop].

    Returns [Error (node, pos, demand)] if a node's block does not fit the
    register file. *)
val emit :
  ?registers:int -> ?delay_slots:int -> ?fill:bool -> Schedule.t ->
  (string, int * int * int) result

(** [fill] (default true) — set false to pad every slot with [Nop]
    instead of filling (the comparison baseline). *)

(** Raised by {!execute} when the branch/step budget is exhausted. *)
exception Out_of_fuel

(** [execute ?fuel ?delay_slots text ~env] parses and runs an emitted
    program; [delay_slots] must match the value the program was emitted
    with (slot instructions execute before control transfers, as the
    hardware would).  Returns the final memory (touched variables, sorted)
    and total ticks (instructions + NOPs + 1 per taken terminator).
    Raises [Invalid_argument] on malformed programs, {!Out_of_fuel} when
    more than [fuel] (default 1,000,000) ticks execute. *)
val execute :
  ?fuel:int -> ?delay_slots:int -> string -> env:(string -> int) ->
  (string * int) list * int
