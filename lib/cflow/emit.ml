open Pipesched_ir
open Pipesched_frontend
module Regalloc = Pipesched_regalloc

let relop_mnemonic = function
  | Ast.Req -> "Beq"
  | Ast.Rne -> "Bne"
  | Ast.Rlt -> "Blt"
  | Ast.Rle -> "Ble"
  | Ast.Rgt -> "Bgt"
  | Ast.Rge -> "Bge"

let relop_of_mnemonic = function
  | "Beq" -> Some Ast.Req
  | "Bne" -> Some Ast.Rne
  | "Blt" -> Some Ast.Rlt
  | "Ble" -> Some Ast.Rle
  | "Bgt" -> Some Ast.Rgt
  | "Bge" -> Some Ast.Rge
  | _ -> None

let simple_operand = function
  | Cfg.Svar v -> v
  | Cfg.Simm n -> "#" ^ string_of_int n

(* Variables a branch condition reads from memory. *)
let cond_vars = function
  | Cfg.Jump _ | Cfg.Exit -> []
  | Cfg.Branch ((_, a, b), _, _) ->
    List.filter_map
      (function Cfg.Svar v -> Some v | Cfg.Simm _ -> None)
      [ a; b ]

let emit ?(registers = 16) ?(delay_slots = 0) ?(fill = true)
    (s : Schedule.t) =
  if delay_slots < 0 then invalid_arg "Emit.emit: negative delay slots";
  let buf = Buffer.create 4096 in
  let exception Overflow of int * int * int in
  try
    Array.iteri
      (fun i (ns : Schedule.node_schedule) ->
        let node = Cfg.node s.Schedule.cfg i in
        let result = ns.Schedule.result in
        let scheduled =
          Block.permute node.Cfg.block
            result.Pipesched_machine.Omega.order
        in
        let alloc =
          match Regalloc.Alloc.allocate scheduled ~registers with
          | Ok a -> a
          | Error (pos, demand) -> raise (Overflow (i, pos, demand))
        in
        let lines =
          Regalloc.Codegen.lines scheduled
            ~eta:result.Pipesched_machine.Omega.eta ~alloc
        in
        (* Fill branch delay slots with the block's trailing stall-free
           instructions when the branch condition does not read anything
           they store. *)
        let fillable =
          match node.Cfg.term with
          | Cfg.Exit -> 0
          | (Cfg.Jump _ | Cfg.Branch _) as term ->
            if delay_slots = 0 || not fill then 0
            else begin
              let cvars = cond_vars term in
              let n = Block.length scheduled in
              let safe pos =
                let tu = Block.tuple_at scheduled pos in
                result.Pipesched_machine.Omega.eta.(pos) = 0
                && (match Pipesched_ir.Tuple.memory_var tu with
                    | Some v when Pipesched_ir.Tuple.writes_memory tu ->
                      not (List.mem v cvars)
                    | Some _ | None -> true)
              in
              let rec streak k =
                if k < delay_slots && k < n && safe (n - 1 - k) then
                  streak (k + 1)
                else k
              in
              streak 0
            end
        in
        let moved = ref [] in
        let kept = ref [] in
        let insn_seen = ref 0 in
        let total_insns = Block.length scheduled in
        List.iter
          (fun (l : Regalloc.Codegen.line) ->
            (match l.Regalloc.Codegen.source with
             | Some _ -> incr insn_seen
             | None -> ());
            if
              l.Regalloc.Codegen.source <> None
              && !insn_seen > total_insns - fillable
            then moved := l :: !moved
            else kept := l :: !kept)
          lines;
        let moved = List.rev !moved in
        let kept = List.rev !kept in
        Buffer.add_string buf (Printf.sprintf "L%d:\n" i);
        List.iter
          (fun (l : Regalloc.Codegen.line) ->
            Buffer.add_string buf l.Regalloc.Codegen.text;
            Buffer.add_char buf '\n')
          kept;
        (match node.Cfg.term with
         | Cfg.Jump j -> Buffer.add_string buf (Printf.sprintf "Jmp   L%d\n" j)
         | Cfg.Exit -> Buffer.add_string buf "Ret\n"
         | Cfg.Branch ((r, a, b), t, f) ->
           Buffer.add_string buf
             (Printf.sprintf "%s   %s, %s, L%d, L%d\n" (relop_mnemonic r)
                (simple_operand a) (simple_operand b) t f));
        if node.Cfg.term <> Cfg.Exit then begin
          List.iter
            (fun (l : Regalloc.Codegen.line) ->
              Buffer.add_string buf l.Regalloc.Codegen.text;
              Buffer.add_char buf '\n')
            moved;
          for _ = List.length moved + 1 to delay_slots do
            Buffer.add_string buf "Nop\n"
          done
        end)
      s.Schedule.nodes;
    Ok (Buffer.contents buf)
  with Overflow (node, pos, demand) -> Error (node, pos, demand)

exception Out_of_fuel

type line = Label of string | Insn of Regalloc.Asm.instr

let parse_program text =
  let lines = String.split_on_char '\n' text in
  List.filter_map
    (fun raw ->
      let body =
        match String.index_opt raw ';' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let body = String.trim body in
      if body = "" then None
      else if String.length body > 1 && body.[String.length body - 1] = ':'
      then Some (Label (String.sub body 0 (String.length body - 1)))
      else
        match Regalloc.Asm.parse body with
        | Ok [ instr ] -> Some (Insn instr)
        | Ok _ -> invalid_arg "Emit.execute: unparsable line"
        | Error (_, msg) -> invalid_arg ("Emit.execute: " ^ msg))
    lines

let execute ?(fuel = 1_000_000) ?(delay_slots = 0) text ~env =
  let prog = Array.of_list (parse_program text) in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun pc -> function
      | Label l -> Hashtbl.replace labels l pc
      | Insn _ -> ())
    prog;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some pc -> pc
    | None -> invalid_arg ("Emit.execute: unknown label " ^ l)
  in
  let st = Regalloc.Asm.create_state ~env in
  let fuel_left = ref fuel in
  let value = function
    | Regalloc.Asm.Mem v -> Regalloc.Asm.read_mem st v
    | Regalloc.Asm.Imm n -> n
    | Regalloc.Asm.Reg _ ->
      invalid_arg "Emit.execute: register operand in branch"
  in
  let ticks = ref 0 in
  let spend () =
    incr ticks;
    decr fuel_left;
    if !fuel_left <= 0 then raise Out_of_fuel
  in
  (* Execute the delay-slot instructions following a transfer at [pc]
     (MIPS semantics: they run before control moves). *)
  let run_slots pc =
    for k = 1 to delay_slots do
      match prog.(pc + k) with
      | Insn instr ->
        spend ();
        Regalloc.Asm.step st instr
      | Label _ | (exception Invalid_argument _) ->
        invalid_arg "Emit.execute: missing delay-slot instruction"
    done
  in
  let rec go pc =
    if pc >= Array.length prog then ()
    else
      match prog.(pc) with
      | Label _ -> go (pc + 1)
      | Insn { Regalloc.Asm.mnemonic = "Jmp"; operands = [ Mem l ] } ->
        spend ();
        run_slots pc;
        go (target l)
      | Insn { Regalloc.Asm.mnemonic = "Ret"; operands = [] } -> spend ()
      | Insn { Regalloc.Asm.mnemonic; operands = [ a; b; Mem lt; Mem lf ] }
        when relop_of_mnemonic mnemonic <> None ->
        spend ();
        let r = Option.get (relop_of_mnemonic mnemonic) in
        let next =
          target (if Ast.eval_relop r (value a) (value b) then lt else lf)
        in
        run_slots pc;
        go next
      | Insn instr ->
        spend ();
        Regalloc.Asm.step st instr;
        go (pc + 1)
  in
  go 0;
  (Regalloc.Asm.memory st, !ticks)
