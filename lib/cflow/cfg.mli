(** Control-flow graphs of tuple basic blocks.

    The paper schedules one basic block at a time (§2.3 footnote 1, §6);
    this module supplies the "arbitrary control flow" §6 lists as future
    work: a CFG whose nodes are ordinary {!Pipesched_ir.Block} values and
    whose terminators jump, branch on a comparison, or exit.

    Branch conditions are {e normalized}: both operands are a variable or
    a literal (the lowering pass materializes complex condition operands
    into compiler temporaries inside the block), so blocks stay pure
    straight-line tuple code and every §4 algorithm applies unchanged. *)

open Pipesched_ir
open Pipesched_frontend

(** A normalized condition operand. *)
type simple = Svar of string | Simm of int

type cond = Ast.relop * simple * simple

type terminator =
  | Jump of int                 (** unconditional, to node index *)
  | Branch of cond * int * int  (** condition true -> first target *)
  | Exit

type node = { block : Block.t; term : terminator }

type t = { nodes : node array; entry : int }

(** [make nodes ~entry] validates node indices (entry and every
    terminator target in range).  Raises [Invalid_argument]. *)
val make : node list -> entry:int -> t

(** Number of nodes. *)
val length : t -> int

(** [node cfg i] is the i-th node. *)
val node : t -> int -> node

(** [successors cfg i] are the terminator's target indices (0, 1 or 2,
    deduplicated). *)
val successors : t -> int -> int list

(** [predecessors cfg i] lists nodes whose terminator targets [i]. *)
val predecessors : t -> int -> int list

(** Total tuples across all nodes. *)
val instruction_count : t -> int

(** [run ?fuel cfg ~env] executes the CFG against an initial memory and
    returns every touched variable's final value, sorted.  [fuel]
    (default [100_000]) bounds executed {e blocks}; raises
    {!Pipesched_frontend.Interp.Out_of_fuel} beyond it. *)
val run : ?fuel:int -> t -> env:Interp.env -> (string * int) list

(** Merge linear chains: whenever a node ends in [Jump j] and [j] is not
    the entry and has exactly one predecessor, splice [j]'s block (ids
    renumbered) onto the node and take over its terminator.  Larger blocks
    give the scheduler more to work with — the simplest form of the trace
    growing §6 alludes to. *)
val merge_chains : t -> t

(** Run {!Pipesched_frontend.Opt.optimize} on every node's block (the
    terminator's variables are read from memory, so block-local
    optimization is always safe). *)
val optimize_blocks : t -> t

val pp : Format.formatter -> t -> unit
