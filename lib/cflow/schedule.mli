(** Whole-CFG scheduling.

    Every node is scheduled by the §4 branch-and-bound independently, then
    pipeline state is propagated along CFG edges (generalizing
    {!Pipesched_core.Region} from straight-line chains to arbitrary
    graphs):

    - along the {e forward} (acyclic) structure, a node's entry state is
      the elementwise latest (max) over its predecessors' exit states,
      computed exactly in reverse postorder;
    - {e back-edge targets} (loop headers) receive the fully conservative
      entry "every pipeline enqueued on the previous tick", which is sound
      for any number of loop iterations.  (An exact loop fixpoint is not
      well-defined: replayed exit states are not monotone in entry states,
      so iterating max-merges can settle on padding that underestimates a
      path through fewer iterations.)

    The resulting NOP padding is therefore safe for interlock-free targets
    on every execution path. *)

open Pipesched_machine
open Pipesched_core

type node_schedule = {
  result : Omega.result;   (** order and padding under the final entry *)
  entry : Omega.entry;
  stats : Optimal.stats;
}

type t = {
  cfg : Cfg.t;
  nodes : node_schedule array;
  total_nops : int;        (** static NOPs summed over nodes *)
  loop_headers : int list; (** nodes padded with the conservative entry *)
}

(** [schedule ?options machine cfg] schedules every node and runs the
    entry fixpoint. *)
val schedule : ?options:Optimal.options -> Machine.t -> Cfg.t -> t
