open Pipesched_ir

type range = { def_pos : int; last_use_pos : int }

let ranges blk =
  let n = Block.length blk in
  let last_use = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    List.iter
      (fun id -> Hashtbl.replace last_use id i)
      (Tuple.value_refs (Block.tuple_at blk i))
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let tu = Block.tuple_at blk i in
    if Tuple.produces_value tu then
      let lu =
        Option.value ~default:i (Hashtbl.find_opt last_use tu.Tuple.id)
      in
      acc := (tu.Tuple.id, { def_pos = i; last_use_pos = lu }) :: !acc
  done;
  !acc

let pressure blk =
  let n = Block.length blk in
  let p = Array.make n 0 in
  List.iter
    (fun (_, r) ->
      (* Live across entry of positions def_pos+1 .. last_use_pos. *)
      for i = r.def_pos + 1 to r.last_use_pos do
        p.(i) <- p.(i) + 1
      done)
    (ranges blk);
  p

let max_pressure blk = Array.fold_left max 0 (pressure blk)
