open Pipesched_ir

type t = { assignment : (int, int) Hashtbl.t; used : int }

let allocate blk ~registers =
  if registers < 1 then invalid_arg "Alloc.allocate: registers must be >= 1";
  let n = Block.length blk in
  let ranges = Liveness.ranges blk in
  let range_of = Hashtbl.create 16 in
  List.iter (fun (id, r) -> Hashtbl.replace range_of id r) ranges;
  (* expiry.(i) = ids whose last use is at position i *)
  let expiry = Array.make (max n 1) [] in
  List.iter
    (fun (id, (r : Liveness.range)) ->
      expiry.(r.last_use_pos) <- id :: expiry.(r.last_use_pos))
    ranges;
  (* LIFO free list so just-released registers are reused first, keeping
     the register count at the live-range pressure. *)
  let free = ref [] in
  for r = registers - 1 downto 0 do
    free := r :: !free
  done;
  let take () =
    match !free with
    | [] -> None
    | r :: rest ->
      free := rest;
      Some r
  in
  let release r = free := r :: !free in
  let assignment = Hashtbl.create 16 in
  let used = ref 0 in
  let exception Overflow of int in
  try
    for i = 0 to n - 1 do
      let tu = Block.tuple_at blk i in
      (* Instructions read their sources before writing their result, so a
         value whose last use is this position releases its register first
         and the new definition may reuse it (e.g. "Add r0, r0, r1"). *)
      List.iter
        (fun id ->
          match Hashtbl.find_opt assignment id with
          | Some r -> release r
          | None -> ())
        expiry.(i);
      if Tuple.produces_value tu then begin
        match take () with
        | None -> raise (Overflow i)
        | Some r ->
          used := max !used (r + 1);
          Hashtbl.replace assignment tu.Tuple.id r;
          (* An unused value occupies its register only transiently. *)
          let range = Hashtbl.find range_of tu.Tuple.id in
          if range.Liveness.last_use_pos = i then release r
      end
    done;
    Ok { assignment; used = !used }
  with Overflow pos ->
    (* Demand at this point: values live through this position plus the
       new definition. *)
    let live =
      List.length
        (List.filter
           (fun (_, (r : Liveness.range)) ->
             r.def_pos < pos && r.last_use_pos > pos)
           ranges)
    in
    Error (pos, live + 1)

let register_of t id =
  match Hashtbl.find_opt t.assignment id with
  | Some r -> r
  | None -> raise Not_found

let registers_used t = t.used

(* --- Rematerialization ----------------------------------------------- *)

let fresh_id blk =
  Array.fold_left
    (fun acc (tu : Tuple.t) -> max acc tu.Tuple.id)
    0 (Block.tuples blk)
  + 1

(* Is there a Store to [var] at a position in (lo, hi) exclusive? *)
let store_between blk var lo hi =
  let found = ref false in
  for i = lo + 1 to hi - 1 do
    let tu = Block.tuple_at blk i in
    if tu.Tuple.op = Op.Store && Tuple.memory_var tu = Some var then
      found := true
  done;
  !found

(* Split the live range of [id]: insert a re-materialized copy of its
   producer just before position [u] and rewrite every use at positions
   >= u to the copy.  Caller guarantees the producer is a Const, or a Load
   whose variable is not stored to anywhere inside the value's live range
   — every use >= u reads the copy, so a Store to the variable between
   the copy and any rewritten use would change what that use observes. *)
let split blk id u =
  let producer = Block.find blk id in
  let nid = fresh_id blk in
  let remat =
    Tuple.make ~id:nid producer.Tuple.op producer.Tuple.a producer.Tuple.b
  in
  let rewrite (tu : Tuple.t) =
    let fix o = if o = Operand.Ref id then Operand.Ref nid else o in
    Tuple.make ~id:tu.Tuple.id tu.Tuple.op (fix tu.Tuple.a) (fix tu.Tuple.b)
  in
  let out = ref [] in
  Array.iteri
    (fun i tu ->
      if i = u then out := remat :: !out;
      out := (if i >= u then rewrite tu else tu) :: !out)
    (Block.tuples blk);
  Block.of_tuples_exn (List.rev !out)

let rematerialize blk ~registers =
  let rec go blk fuel =
    if fuel = 0 then None
    else
      match allocate blk ~registers with
      | Ok _ -> Some blk
      | Error (pos, _) ->
        (* Candidates: values live across [pos] whose producer can be
           re-materialized at their next use at/after [pos].  Prefer the
           one with the farthest next use (Belady). *)
        let ranges = Liveness.ranges blk in
        let next_use_of id =
          let nu = ref None in
          for i = Block.length blk - 1 downto pos do
            if List.mem id (Tuple.value_refs (Block.tuple_at blk i)) then
              nu := Some i
          done;
          !nu
        in
        let candidates =
          List.filter_map
            (fun (id, (r : Liveness.range)) ->
              if r.def_pos < pos && r.last_use_pos >= pos then
                match next_use_of id with
                | Some u ->
                  let producer = Block.find blk id in
                  let ok =
                    match
                      (producer.Tuple.op, Tuple.memory_var producer)
                    with
                    | Op.Const, _ -> true
                    | Op.Load, Some v ->
                      (* The copy at [u] must read the same value as the
                         original Load for EVERY rewritten use, not just
                         the first: a Store to [v] between [u] and a
                         later use would be observed by the copy's
                         consumers but not by the original's.  Checking
                         up to the last use rejects such candidates. *)
                      not (store_between blk v r.def_pos r.last_use_pos)
                    | _ -> false
                  in
                  if ok && u > r.def_pos + 1 then Some (id, u) else None
                | None -> None
              else None)
            ranges
        in
        (match
           List.sort (fun (_, u1) (_, u2) -> compare u2 u1) candidates
         with
         | [] -> None
         | (id, u) :: _ -> go (split blk id u) (fuel - 1))
  in
  go blk (4 * Block.length blk)
