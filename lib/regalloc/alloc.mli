(** Post-scheduling register allocation (§3.4).

    Values are assigned to physical registers only after the optimal
    schedule is fixed, so register reuse never constrains the scheduler
    ("artificial conflicts" of postpass approaches).  Allocation is a
    linear scan over the scheduled order: a value gets a free register at
    its definition and releases it after its last use.

    If demand exceeds the register file, {!allocate} fails and
    {!rematerialize} implements §3.1's spill strategy: values whose
    producer is a [Const] or [Load] (of a variable with no Store anywhere
    inside the value's live range — a Store between the re-load point and
    {e any} remaining use would change what that use reads) are split —
    the value is re-materialized just before a later use, shrinking live
    ranges.  Store instructions "typically do not interfere with any
    pipelined operations", so the paper notes such fixes usually keep the
    schedule valid; re-running the scheduler afterwards is the caller's
    choice. *)

open Pipesched_ir

type t

(** [allocate blk ~registers] linear-scans the block's current order.
    Sources are read before results are written, so a definition may reuse
    the register of a value making its last use at the same instruction.
    [Error (pos, demand)] reports the first position where the values
    live through [pos] plus the new definition exceed [registers]. *)
val allocate : Block.t -> registers:int -> (t, int * int) result

(** Register index assigned to a value-producing tuple id.
    Raises [Not_found] for unknown or valueless ids. *)
val register_of : t -> int -> int

(** Number of distinct registers used. *)
val registers_used : t -> int

(** [rematerialize blk ~registers] rewrites the block so that {!allocate}
    succeeds with the given register count, by re-issuing [Const]s and
    re-loading variables whose memory is current at the new position {e
    and stays current through the value's last use} (no intervening
    Store), so every rewritten use reads the same value as before.
    Returns [None] when the block cannot be fixed this way (a live value
    produced by an arithmetic tuple would have to spill to memory, which
    the prototype — like the paper's — does not implement). *)
val rematerialize : Block.t -> registers:int -> Block.t option
