(** The target assembly language: parser and executor.

    {!Codegen} emits a MIPS-flavored textual assembly; this module reads
    that text back and executes it against a register file and memory,
    giving the emitted code an independent semantics.  The test suite uses
    it to close the loop: source program -> tuples -> optimal schedule ->
    registers -> assembly -> {e execution}, checking the final memory
    against the reference interpreters at the other end of the pipeline.

    NOPs are executed as (timed) no-ops, so a parsed listing also yields
    the schedule's total issue ticks. *)

(** A parsed operand: register index, immediate, or memory variable. *)
type operand = Reg of int | Imm of int | Mem of string

type instr = {
  mnemonic : string;       (** as written, e.g. ["Mul"] or ["Nop"] *)
  operands : operand list; (** destination first for value producers *)
}

(** [parse text] parses an emitted listing (one instruction per line;
    everything from [';'] on is a comment).  [Error (line, msg)] points at
    the first offending 1-based line. *)
val parse : string -> (instr list, int * string) result

(** [execute instrs ~env] runs the program: registers start at 0, memory
    reads of unwritten variables consult [env].  Returns the final value
    of every variable the program touched, sorted by name, plus the total
    ticks consumed (= number of instructions including NOPs).
    Raises [Invalid_argument] on malformed instructions (wrong operand
    counts, unknown mnemonics, register out of range). *)
val execute :
  instr list -> env:(string -> int) -> (string * int) list * int

(** {2 Stepped execution}

    Whole-program executors (labels, branches — see [Pipesched_cflow])
    drive the same machine state one instruction at a time. *)

type state

(** Fresh state: registers zeroed, memory backed by [env]. *)
val create_state : env:(string -> int) -> state

(** Execute one non-control instruction, advancing the tick counter. *)
val step : state -> instr -> unit

(** Current value of a memory variable (reads through to [env]). *)
val read_mem : state -> string -> int

(** Final memory: every touched variable, sorted by name. *)
val memory : state -> (string * int) list

(** Ticks consumed so far. *)
val ticks : state -> int
