open Pipesched_ir

type line = { text : string; tick : int; source : int option }

let reg alloc id = Printf.sprintf "r%d" (Alloc.register_of alloc id)

let operand alloc = function
  | Operand.Ref id -> reg alloc id
  | Operand.Imm n -> Printf.sprintf "#%d" n
  | Operand.Var v -> v
  | Operand.Null -> invalid_arg "Codegen: null operand in emission"

let format_tuple alloc (tu : Tuple.t) =
  let dst () = reg alloc tu.Tuple.id in
  match tu.Tuple.op with
  | Op.Const -> Printf.sprintf "Li    %s, %s" (dst ()) (operand alloc tu.a)
  | Op.Load -> Printf.sprintf "Load  %s, %s" (dst ()) (operand alloc tu.a)
  | Op.Store ->
    Printf.sprintf "Store %s, %s" (operand alloc tu.a) (operand alloc tu.b)
  | Op.Mov -> Printf.sprintf "Mov   %s, %s" (dst ()) (operand alloc tu.a)
  | Op.Neg -> Printf.sprintf "Neg   %s, %s" (dst ()) (operand alloc tu.a)
  | op ->
    Printf.sprintf "%-5s %s, %s, %s" (Op.to_string op) (dst ())
      (operand alloc tu.a) (operand alloc tu.b)

let lines blk ~eta ~alloc =
  let n = Block.length blk in
  if Array.length eta <> n then invalid_arg "Codegen.lines: eta length";
  let tick = ref 0 in
  let out = ref [] in
  for i = 0 to n - 1 do
    for _ = 1 to eta.(i) do
      out := { text = "Nop"; tick = !tick; source = None } :: !out;
      incr tick
    done;
    let tu = Block.tuple_at blk i in
    out :=
      { text = format_tuple alloc tu; tick = !tick;
        source = Some tu.Tuple.id }
      :: !out;
    incr tick
  done;
  List.rev !out

let emit blk ~eta ~alloc =
  lines blk ~eta ~alloc
  |> List.map (fun l -> Printf.sprintf "%-24s ; t=%d" l.text l.tick)
  |> String.concat "\n"
