(** Assembly emission (§3.4).

    After scheduling and register allocation, each tuple maps directly to
    one target instruction.  The emitter produces a MIPS-flavored textual
    listing with the schedule's NOPs made explicit (the paper's NOP-padding
    model; under an interlocked target the NOP lines would simply be
    omitted and the hardware would stall identically). *)

open Pipesched_ir

(** One emitted line. *)
type line = {
  text : string;        (** e.g. ["Mul   r2, r0, r1"] or ["Nop"] *)
  tick : int;           (** issue tick of this line *)
  source : int option;  (** tuple id, [None] for NOPs *)
}

(** [lines blk ~eta ~alloc] formats the block's current order with
    [eta.(i)] NOPs before position [i].  [eta] must have the block's
    length; allocation must cover the block ({!Alloc.allocate} on it). *)
val lines : Block.t -> eta:int array -> alloc:Alloc.t -> line list

(** [emit blk ~eta ~alloc] renders {!lines} as one string, one instruction
    per line, with issue-tick comments. *)
val emit : Block.t -> eta:int array -> alloc:Alloc.t -> string
