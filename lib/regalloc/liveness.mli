(** Value liveness within a scheduled block.

    A tuple's value is live from its defining position to its last use.
    Register allocation happens {e after} scheduling (§3.4), so liveness is
    computed on whatever order the block's tuples currently have. *)

open Pipesched_ir

type range = {
  def_pos : int;      (** position defining the value *)
  last_use_pos : int; (** last position reading it ([= def_pos] if unused) *)
}

(** [ranges blk] maps each value-producing tuple id to its live range.
    [Store] tuples produce no value and are absent. *)
val ranges : Block.t -> (int * range) list

(** [pressure blk] is, per position, the number of values live across the
    {e entry} of that position (values defined earlier whose last use is at
    this position or later). *)
val pressure : Block.t -> int array

(** Maximum of {!pressure}: the register demand of this order (§3.1's
    spill pre-check compares this against the register-file size). *)
val max_pressure : Block.t -> int
