open Pipesched_ir

type operand = Reg of int | Imm of int | Mem of string

type instr = { mnemonic : string; operands : operand list }

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_operand tok =
  let is_int s =
    s <> "" && (match int_of_string_opt s with Some _ -> true | None -> false)
  in
  if String.length tok >= 2 && tok.[0] = 'r' && is_int (String.sub tok 1 (String.length tok - 1))
  then Ok (Reg (int_of_string (String.sub tok 1 (String.length tok - 1))))
  else if String.length tok >= 2 && tok.[0] = '#'
          && is_int (String.sub tok 1 (String.length tok - 1))
  then Ok (Imm (int_of_string (String.sub tok 1 (String.length tok - 1))))
  else if tok <> "" then Ok (Mem tok)
  else Error "empty operand"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let body = String.trim (strip_comment line) in
      if body = "" then go (lineno + 1) acc rest
      else begin
        let mnemonic, args =
          match String.index_opt body ' ' with
          | None -> (body, "")
          | Some i ->
            ( String.sub body 0 i,
              String.sub body (i + 1) (String.length body - i - 1) )
        in
        let toks =
          String.split_on_char ',' args
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let rec operands acc = function
          | [] -> Ok (List.rev acc)
          | tok :: more -> (
            match parse_operand tok with
            | Ok o -> operands (o :: acc) more
            | Error m -> Error m)
        in
        match operands [] toks with
        | Ok ops -> go (lineno + 1) ({ mnemonic; operands = ops } :: acc) rest
        | Error msg -> Error (lineno, msg)
      end
  in
  go 1 [] lines

type state = {
  regs : int array;
  mem : (string, int) Hashtbl.t;
  touched : (string, unit) Hashtbl.t;
  env : string -> int;
  mutable ticks : int;
}

let create_state ~env =
  {
    regs = Array.make 256 0;
    mem = Hashtbl.create 16;
    touched = Hashtbl.create 16;
    env;
    ticks = 0;
  }

let reg st i =
  if i < 0 || i >= Array.length st.regs then
    invalid_arg "Asm.execute: register range";
  st.regs.(i)

let set_reg st i v =
  if i < 0 || i >= Array.length st.regs then
    invalid_arg "Asm.execute: register range";
  st.regs.(i) <- v

let operand_value st = function
  | Reg i -> reg st i
  | Imm n -> n
  | Mem _ -> invalid_arg "Asm.execute: memory operand in register slot"

let read_mem st v =
  Hashtbl.replace st.touched v ();
  match Hashtbl.find_opt st.mem v with Some x -> x | None -> st.env v

let write_mem st v x =
  Hashtbl.replace st.touched v ();
  Hashtbl.replace st.mem v x

let binop_of = function
  | "Add" -> Some Op.Add
  | "Sub" -> Some Op.Sub
  | "Mul" -> Some Op.Mul
  | "Div" -> Some Op.Div
  | "Mod" -> Some Op.Mod
  | "And" -> Some Op.And
  | "Or" -> Some Op.Or
  | "Xor" -> Some Op.Xor
  | "Shl" -> Some Op.Shl
  | "Shr" -> Some Op.Shr
  | _ -> None

let step st { mnemonic; operands } =
  st.ticks <- st.ticks + 1;
  let value = operand_value st in
  match (mnemonic, operands) with
  | "Nop", [] -> ()
  | "Li", [ Reg d; src ] -> set_reg st d (value src)
  | "Load", [ Reg d; Mem v ] -> set_reg st d (read_mem st v)
  | "Store", [ Mem v; src ] -> write_mem st v (value src)
  | "Mov", [ Reg d; src ] -> set_reg st d (value src)
  | "Neg", [ Reg d; src ] -> set_reg st d (-value src)
  | op, [ Reg d; a; b ] -> (
    match binop_of op with
    | Some op -> set_reg st d (Op.eval2 op (value a) (value b))
    | None -> invalid_arg ("Asm.execute: unknown mnemonic " ^ op))
  | op, _ ->
    invalid_arg (Printf.sprintf "Asm.execute: malformed %s instruction" op)

let memory st =
  Hashtbl.fold (fun v () acc -> (v, read_mem st v) :: acc) st.touched []
  |> List.sort compare

let ticks st = st.ticks

let execute instrs ~env =
  let st = create_state ~env in
  List.iter (step st) instrs;
  (memory st, st.ticks)
