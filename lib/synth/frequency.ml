open Pipesched_ir

type shape =
  | Sh_const
  | Sh_copy
  | Sh_unop
  | Sh_binop_vv
  | Sh_binop_vc
  | Sh_binop3

type t = {
  shape_weights : (int * shape) list;
  op_weights : (int * Op.t) list;
}

let check t =
  let total l = List.fold_left (fun acc (w, _) -> acc + w) 0 l in
  if total t.shape_weights <= 0 then
    invalid_arg "Frequency.check: shape weights must have positive total";
  if total t.op_weights <= 0 then
    invalid_arg "Frequency.check: op weights must have positive total";
  List.iter
    (fun (w, op) ->
      if w < 0 then invalid_arg "Frequency.check: negative weight";
      if not (List.mem op Op.binary_ops) then
        invalid_arg
          ("Frequency.check: not a binary operator: " ^ Op.to_string op))
    t.op_weights;
  t

let default =
  check
    {
      shape_weights =
        [ (10, Sh_const); (8, Sh_copy); (4, Sh_unop); (42, Sh_binop_vv);
          (26, Sh_binop_vc); (10, Sh_binop3) ];
      op_weights =
        [ (45, Op.Add); (25, Op.Sub); (15, Op.Mul); (6, Op.Div);
          (3, Op.Mod); (2, Op.And); (2, Op.Or); (1, Op.Xor); (1, Op.Shl) ];
    }

let mul_heavy =
  check
    {
      default with
      op_weights =
        [ (25, Op.Add); (10, Op.Sub); (40, Op.Mul); (15, Op.Div);
          (5, Op.Mod); (5, Op.Shl) ];
    }

let shape_name = function
  | Sh_const -> "v = c"
  | Sh_copy -> "v = w"
  | Sh_unop -> "v = -w"
  | Sh_binop_vv -> "v = w op x"
  | Sh_binop_vc -> "v = w op c"
  | Sh_binop3 -> "v = (w op x) op y"

let pp fmt t =
  Format.fprintf fmt "Statement shapes:@.";
  List.iter
    (fun (w, sh) -> Format.fprintf fmt "  %-18s %3d@." (shape_name sh) w)
    t.shape_weights;
  Format.fprintf fmt "Operators:@.";
  List.iter
    (fun (w, op) -> Format.fprintf fmt "  %-18s %3d@." (Op.to_string op) w)
    t.op_weights
