(** A small suite of hand-written kernels — the kind of numeric inner
    loops the paper's era benchmarked (Livermore-loops flavor), written in
    the mini source language.

    The synthetic generator (§5.2) gives statistical coverage; these give
    recognizable shapes: reductions, recurrences, stencils, polynomial
    evaluation.  Each kernel is one basic block (straight-line) unless
    marked looped. *)

open Pipesched_frontend

type t = {
  name : string;
  description : string;
  source : string;
  looped : bool;  (** contains while/if — compile via [Pipesched_cflow] *)
}

(** All kernels, straight-line first. *)
val all : t list

(** The straight-line subset, parsed (each is a single basic block). *)
val straight_line : unit -> (t * Ast.program) list

(** [find name] looks a kernel up by name. *)
val find : string -> t option
