(** Statement-type frequencies for the synthetic benchmark generator
    (§5.2, Table 6).

    The paper generates "a random sequence of assignment statements" whose
    type frequencies "correspond loosely to the instruction frequency
    distributions found in [AlW75]" (Alexander & Wortman's study of XPL
    programs).  Table 6's body is unreadable in the available scan, so this
    reconstruction follows the same study's character: simple assignments
    and additive operators dominate; multiplication and division are
    markedly rarer.  [Load]/[Store] tuples are not drawn from the table —
    per the paper they arise implicitly during code generation. *)

open Pipesched_ir

(** The right-hand-side shapes statements are drawn from. *)
type shape =
  | Sh_const          (** [v = c] *)
  | Sh_copy           (** [v = w] *)
  | Sh_unop           (** [v = -w] *)
  | Sh_binop_vv       (** [v = w op x] *)
  | Sh_binop_vc       (** [v = w op c] *)
  | Sh_binop3         (** [v = (w op x) op y] *)

type t = {
  shape_weights : (int * shape) list;
  op_weights : (int * Op.t) list;  (** binary operators only *)
}

(** The default reconstruction of Table 6 (weights sum to 100 for shapes):
    const 10, copy 8, unary 4, [w op x] 42, [w op c] 26, three-operand 10;
    operators: Add 45, Sub 25, Mul 15, Div 6, Mod 3, And 2, Or 2, Xor 1,
    Shl 1, Shr 0 (shifts arise mostly via strength reduction). *)
val default : t

(** A multiply-heavy variant stressing the long-latency pipeline. *)
val mul_heavy : t

(** Validate weights (positive totals, binary ops only); raises
    [Invalid_argument]. *)
val check : t -> t

val pp : Format.formatter -> t -> unit
