open Pipesched_frontend

type t = {
  name : string;
  description : string;
  source : string;
  looped : bool;
}

let all =
  [ { name = "dot4";
      description = "4-term dot product (independent multiplies)";
      source =
        "acc = a0 * b0;\n\
         acc = acc + a1 * b1;\n\
         acc = acc + a2 * b2;\n\
         acc = acc + a3 * b3;";
      looped = false };
    { name = "fir3";
      description = "3-tap FIR step with energy accumulation";
      source =
        "y = w0 * x0 + w1 * x1 + w2 * x2;\n\
         y = y >> 12;\n\
         energy = energy + y * y;";
      looped = false };
    { name = "horner4";
      description = "degree-4 polynomial by Horner's rule (serial chain)";
      source =
        "p = c4;\n\
         p = p * x + c3;\n\
         p = p * x + c2;\n\
         p = p * x + c1;\n\
         p = p * x + c0;";
      looped = false };
    { name = "complex_mul";
      description = "complex multiply (ar+ai)(br+bi)";
      source =
        "cr = ar * br - ai * bi;\n\
         ci = ar * bi + ai * br;";
      looped = false };
    { name = "mat2";
      description = "2x2 matrix multiply (8 independent multiplies)";
      source =
        "c00 = a00 * b00 + a01 * b10;\n\
         c01 = a00 * b01 + a01 * b11;\n\
         c10 = a10 * b00 + a11 * b10;\n\
         c11 = a10 * b01 + a11 * b11;";
      looped = false };
    { name = "lerp";
      description = "fixed-point linear interpolation";
      source =
        "d = x1 - x0;\n\
         y = x0 * 256 + d * t;\n\
         y = y >> 8;";
      looped = false };
    { name = "avg_filter";
      description = "boxcar average of four samples";
      source = "s = s0 + s1 + s2 + s3;\ny = s >> 2;";
      looped = false };
    { name = "quantize";
      description = "scale, clamp-by-mask, and pack two samples";
      source =
        "q0 = (s0 * g) >> 7;\n\
         q1 = (s1 * g) >> 7;\n\
         q0 = q0 & 255;\n\
         q1 = q1 & 255;\n\
         packed = (q0 << 8) | q1;";
      looped = false };
    { name = "sum_squares";
      description = "looped sum of squares (counted loop)";
      source =
        "s = 0;\n\
         i = 0;\n\
         while (i < n) { s = s + i * i; i = i + 1; }";
      looped = true };
    { name = "gcd_ish";
      description = "repeated conditional subtraction (branchy loop)";
      source =
        "while (a != b) {\n\
        \  if (a > b) { a = a - b; } else { b = b - a; }\n\
         }";
      looped = true };
    { name = "poly_table";
      description = "looped Horner over a fixed-degree polynomial";
      source =
        "p = 0;\n\
         k = 0;\n\
         while (k < 5) { p = p * x + k; k = k + 1; }";
      looped = true } ]

let straight_line () =
  List.filter_map
    (fun k -> if k.looped then None else Some (k, Parser.parse k.source))
    all

let find name = List.find_opt (fun k -> k.name = name) all
