open Pipesched_ir
open Pipesched_machine
open Pipesched_frontend
module Rng = Pipesched_prelude.Rng

type params = { statements : int; variables : int; constants : int }

let default_params = { statements = 8; variables = 5; constants = 3 }

let validate p =
  if p.statements < 1 || p.variables < 1 || p.constants < 1 then
    invalid_arg "Generator: parameters must be positive"

let program ?(freq = Frequency.default) rng p =
  validate p;
  let var_pool = Array.init p.variables (fun i -> Printf.sprintf "v%d" i) in
  let const_pool = Array.init p.constants (fun _ -> 1 + Rng.int rng 99) in
  let var () = Ast.Var (Rng.choose rng var_pool) in
  let const () = Ast.Int (Rng.choose rng const_pool) in
  let op () = Rng.weighted rng freq.Frequency.op_weights in
  let stmt () =
    let dest = Rng.choose rng var_pool in
    let rhs =
      match Rng.weighted rng freq.Frequency.shape_weights with
      | Frequency.Sh_const -> const ()
      | Frequency.Sh_copy -> var ()
      | Frequency.Sh_unop -> Ast.Unop (Op.Neg, var ())
      | Frequency.Sh_binop_vv -> Ast.Binop (op (), var (), var ())
      | Frequency.Sh_binop_vc -> Ast.Binop (op (), var (), const ())
      | Frequency.Sh_binop3 ->
        Ast.Binop (op (), Ast.Binop (op (), var (), var ()), var ())
    in
    Ast.Assign (dest, rhs)
  in
  List.init p.statements (fun _ -> stmt ())

let block ?freq ?(optimize = true) rng p =
  Compile.compile_program ~optimize (program ?freq rng p)

let sample_params rng =
  (* Calibrated so that optimized blocks average ~20 instructions with a
     tail past 40 (Figure 5): mostly 2-27 statements, with a 1-in-10
     chance of a very large block. *)
  let statements =
    if Rng.int rng 10 = 0 then 32 + Rng.int rng 20 else 3 + Rng.int rng 30
  in
  {
    statements;
    variables = 4 + Rng.int rng 9;
    constants = 1 + Rng.int rng 4;
  }

let batch ?freq rng ~count =
  List.init count (fun _ -> block ?freq rng (sample_params rng))

let of_seed ?freq s =
  let rng = Rng.create s in
  block ?freq rng (sample_params rng)

let stream ?freq ~seed ~start ~count f =
  if start < 0 || count < 0 then invalid_arg "Generator.stream: negative range";
  for i = start to start + count - 1 do
    f i (of_seed ?freq (Schedule.seed_at ~seed i))
  done

let random_machine rng =
  let pipe_count = 1 + Rng.int rng 4 in
  let pipes =
    Array.init pipe_count (fun i ->
        Pipe.make
          ~label:(Printf.sprintf "p%d" i)
          ~latency:(1 + Rng.int rng 6)
          ~enqueue:(1 + Rng.int rng 6))
  in
  (* Each candidate op either stays resource-free (skipped) or draws a
     random non-empty subset of the pipelines. *)
  let subset () =
    let picked =
      List.filter (fun _ -> Rng.bool rng) (List.init pipe_count Fun.id)
    in
    match picked with [] -> [ Rng.int rng pipe_count ] | _ -> picked
  in
  let assign =
    List.filter_map
      (fun op -> if Rng.int rng 3 = 0 then None else Some (op, subset ()))
      [
        Op.Load; Op.Store; Op.Mov; Op.Neg; Op.Add; Op.Sub; Op.Mul;
        Op.Div; Op.Mod; Op.And; Op.Or; Op.Xor; Op.Shl; Op.Shr;
      ]
  in
  Machine.make ~name:"fuzz" pipes ~assign

let structured_program ?(freq = Frequency.default) rng p ~depth =
  validate p;
  if depth < 0 then invalid_arg "Generator.structured_program: depth";
  let fresh = ref 0 in
  let var_pool = Array.init p.variables (fun i -> Printf.sprintf "v%d" i) in
  let const_pool = Array.init p.constants (fun _ -> 1 + Rng.int rng 99) in
  let simple () =
    if Rng.bool rng then Ast.Var (Rng.choose rng var_pool)
    else Ast.Int (Rng.choose rng const_pool)
  in
  let relop () =
    Rng.choose rng
      [| Ast.Req; Ast.Rne; Ast.Rlt; Ast.Rle; Ast.Rgt; Ast.Rge |]
  in
  let assign () =
    match program ~freq rng { p with statements = 1 } with
    | [ s ] -> s
    | _ -> assert false
  in
  let rec stmts depth budget =
    if budget <= 0 then []
    else
      let s, cost =
        match (depth > 0, Rng.int rng 6) with
        | true, 0 ->
          ( Ast.If
              ( (relop (), simple (), simple ()),
                stmts (depth - 1) 2,
                if Rng.bool rng then stmts (depth - 1) 2 else [] ),
            3 )
        | true, 1 ->
          let k = Printf.sprintf "k%d" !fresh in
          incr fresh;
          ( Ast.While
              ( (Ast.Rlt, Ast.Var k, Ast.Int (1 + Rng.int rng 4)),
                stmts (depth - 1) 2
                @ [ Ast.Assign (k, Ast.Binop (Op.Add, Ast.Var k, Ast.Int 1))
                  ] ),
            4 )
        | _ -> (assign (), 1)
      in
      s :: stmts depth (budget - cost)
  in
  let body = stmts depth p.statements in
  let counters =
    List.init !fresh (fun i ->
        Ast.Assign (Printf.sprintf "k%d" i, Ast.Int 0))
  in
  counters @ body
