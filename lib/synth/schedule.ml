module Rng = Pipesched_prelude.Rng

type 'a event = { time : float; payload : 'a }

(* A schedule is a function of its root seed; all determinism properties
   follow from keeping this pure.  Child seeds are derived with [Rng.at]
   so that component [i]'s seed never depends on how many draws earlier
   components made. *)
type 'a t = int -> 'a event Seq.t

let events ~seed s = s seed

let iter ~seed ?limit f s =
  let sq = events ~seed s in
  let sq = match limit with None -> sq | Some n -> Seq.take n sq in
  Seq.iter f sq

let child seed i = Rng.bits (Rng.at seed i)

let empty : 'a t = fun _ -> Seq.empty

let once g : 'a t =
 fun seed -> Seq.return { time = 0.0; payload = g (Rng.create seed) }

let pure x = once (fun _ -> x)

let map f s =
 fun seed -> Seq.map (fun e -> { e with payload = f e.payload }) (s seed)

let shift dt sq = Seq.map (fun e -> { e with time = e.time +. dt }) sq

let delayed d s =
  if d < 0.0 then invalid_arg "Schedule.delayed: negative delay";
  fun seed -> shift d (s seed)

let limited n s =
  if n < 0 then invalid_arg "Schedule.limited: negative count";
  fun seed -> Seq.take n (s seed)

let drop n s =
  if n < 0 then invalid_arg "Schedule.drop: negative count";
  fun seed -> Seq.drop n (s seed)

(* Stable two-way merge: ties go to [a], so [mix] breaks ties toward the
   earlier stream in the list. *)
let rec merge2 a b () =
  match a () with
  | Seq.Nil -> b ()
  | Seq.Cons (ea, a') as na -> (
    match b () with
    | Seq.Nil -> na
    | Seq.Cons (eb, b') ->
      if ea.time <= eb.time then Seq.Cons (ea, merge2 a' (Seq.cons eb b'))
      else Seq.Cons (eb, merge2 (Seq.cons ea a') b'))

let mix ss : 'a t =
 fun seed ->
  List.fold_left merge2 Seq.empty
    (List.mapi (fun i s -> s (child seed i)) ss)

let repeating n ~period s =
  if n < 0 then invalid_arg "Schedule.repeating: negative count";
  if period < 0.0 then invalid_arg "Schedule.repeating: negative period";
  fun seed ->
    List.fold_left merge2 Seq.empty
      (List.init n (fun k ->
           shift (float_of_int k *. period) (s (child seed k))))

let periodic ~period s =
  if not (period > 0.0) then
    invalid_arg "Schedule.periodic: period must be positive";
  fun seed ->
    let rep k = shift (float_of_int k *. period) (s (child seed k)) in
    (* [pending] holds the merged, time-sorted events of copies < k.
       Emit from it while its head does not pass copy k's start time,
       then splice copy k in — so only as many copies as time order
       requires are ever forced (one copy of lookahead). *)
    let rec go k pending () =
      let start = float_of_int k *. period in
      match pending () with
      | Seq.Cons (e, rest) when e.time <= start -> Seq.Cons (e, go k rest)
      | node -> (
        let pending () = node in
        match (node, rep k ()) with
        | Seq.Nil, Seq.Nil -> Seq.Nil
        | _, rnode -> go (k + 1) (merge2 pending (fun () -> rnode)) ())
    in
    go 0 Seq.empty

let every ~period g = periodic ~period (once g)

let burst n s = repeating n ~period:0.0 s

let soak ~rate ~duration s =
  if not (rate > 0.0) || not (duration > 0.0) then
    invalid_arg "Schedule.soak: rate and duration must be positive";
  let n = max 0 (int_of_float (Float.ceil (rate *. duration))) in
  repeating n ~period:(1.0 /. rate) s

let ramp ~stages s =
  let rec build t0 = function
    | [] -> []
    | (rate, duration) :: rest ->
      delayed t0 (soak ~rate ~duration s) :: build (t0 +. duration) rest
  in
  mix (build 0.0 stages)

let seeds ~count = limited count (every ~period:1.0 Rng.bits)

(* Must track [seeds] exactly: [every] is [periodic (once Rng.bits)], so
   event [i] draws from [Rng.create (child seed i)].  Pinned by a test. *)
let seed_at ~seed i = Rng.bits (Rng.create (child seed i))
