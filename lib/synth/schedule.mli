(** Schedule combinators: deterministic, seed-split event streams.

    A ['a t] describes a (possibly infinite) time-ordered stream of
    seeded events — "at time [t], produce a payload drawn from an
    independent RNG".  Modeled on [Sdn.Schedule] from the SDN policies
    repo: small push-free combinators ([once] / [periodic] / [repeating]
    / [limited] / [delayed] / [mix]) that compose load shapes, with the
    seed {e split} structurally so every event's payload is a pure
    function of [(root seed, path to the event)].

    Two properties carry the whole mega-study design:

    + {b determinism} — [events ~seed s] is a pure value; forcing it
      twice, or on another machine, yields the same events;
    + {b random access} — combinators derive child seeds with
      {!Pipesched_prelude.Rng.at}, so an event's seed depends only on
      its index, never on how many draws earlier events made.  Slicing
      ([drop] / [limited]) therefore commutes with generation: shard
      [k] of a corpus generates exactly its slice of the serial stream
      (pinned by a qcheck test), and {!seed_at} gives true O(1) access
      to the corpus population.

    Streams are lazy {!Seq.t}s: events are produced one at a time with
    constant memory, which is what both million-block corpus generation
    and long soak load tests need. *)

module Rng = Pipesched_prelude.Rng

type 'a event = { time : float; payload : 'a }

(** A seeded event stream.  Apply with {!events}. *)
type 'a t

(** {2 Forcing} *)

(** [events ~seed s] forces the stream.  Events arrive in
    non-decreasing [time] order. *)
val events : seed:int -> 'a t -> 'a event Seq.t

(** [iter ~seed ?limit f s] applies [f] to the first [limit] events
    (all of them when [limit] is omitted — beware infinite streams). *)
val iter : seed:int -> ?limit:int -> ('a event -> unit) -> 'a t -> unit

(** {2 Primitive constructors} *)

(** The empty stream. *)
val empty : 'a t

(** [once g] emits a single event at time [0.] whose payload is drawn
    by [g] from a generator created from the stream's seed. *)
val once : (Rng.t -> 'a) -> 'a t

(** [pure x] is [once (fun _ -> x)]. *)
val pure : 'a -> 'a t

(** {2 Combinators} *)

(** [map f s] transforms payloads, keeping times. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [delayed d s] shifts every event [d] seconds later.
    Requires [d >= 0.]. *)
val delayed : float -> 'a t -> 'a t

(** [limited n s] keeps only the first [n] events.  Requires [n >= 0]. *)
val limited : int -> 'a t -> 'a t

(** [drop n s] skips the first [n] events.  Skipping draws only the
    (cheap, per-event-seeded) payloads; anything expensive derived from
    a payload downstream — compiling a block from a corpus seed — is
    never done for skipped events.  Requires [n >= 0]. *)
val drop : int -> 'a t -> 'a t

(** [mix ss] merges streams into one time-sorted stream; each component
    gets an independent child seed.  Ties break toward the earlier
    stream in the list. *)
val mix : 'a t list -> 'a t

(** [repeating n ~period s] runs [n] copies of [s], copy [k] shifted
    [k * period] later, each with an independent child seed, merged
    time-sorted.  Requires [n >= 0] and [period >= 0.]. *)
val repeating : int -> period:float -> 'a t -> 'a t

(** [periodic ~period s] is the infinite version of {!repeating}:
    copy [k] starts at [k * period], with an independent child seed.
    Requires [period > 0.].  Evaluation is lazy — only enough copies
    are forced to emit events in time order.  If a copy turns out
    empty the stream ends there (a uniformly empty [s] gives the empty
    stream rather than diverging). *)
val periodic : period:float -> 'a t -> 'a t

(** [every ~period g] = [periodic ~period (once g)]: one draw of [g]
    every [period] seconds, forever.  The corpus backbone. *)
val every : period:float -> (Rng.t -> 'a) -> 'a t

(** {2 Load shapes (for [bin/pipesched_server] soak tests)} *)

(** [burst n s]: [n] copies of [s] all at once ([repeating n ~period:0.]). *)
val burst : int -> 'a t -> 'a t

(** [soak ~rate ~duration s]: copies of [s] launched at [rate] per
    second for [duration] seconds ([rate], [duration] > 0). *)
val soak : rate:float -> duration:float -> 'a t -> 'a t

(** [ramp ~stages s]: consecutive {!soak} stages [(rate, duration)],
    each starting when the previous ends. *)
val ramp : stages:(float * float) list -> 'a t -> 'a t

(** {2 The study corpus} *)

(** [seeds ~count] is the mega-study corpus stream: [count] events, one
    per second, whose payload is a fresh 63-bit block seed.  Event [i]'s
    payload equals [seed_at ~seed i] — the contract that lets shards,
    [bin/synthgen], and tests agree on the population without sharing
    state. *)
val seeds : count:int -> int t

(** [seed_at ~seed i] is the payload of event [i] of [seeds] (any
    [count > i]) under root seed [seed], in O(1). *)
val seed_at : seed:int -> int -> int
