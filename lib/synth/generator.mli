(** Synthetic basic-block generator (§5.2).

    Mirrors the paper's C generator: given the desired number of
    statements, variables and constants, emit a random sequence of
    assignment statements with {!Frequency}-weighted shapes, then compile
    it through the regular front end (which introduces the [Load]s and
    [Store]s and optimizes).  Everything is driven by a {!Rng.t}, so
    generation is deterministic per seed. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_frontend
module Rng = Pipesched_prelude.Rng

type params = {
  statements : int;  (** assignment statements to generate *)
  variables : int;   (** size of the variable pool (named v0, v1, ...) *)
  constants : int;   (** size of the integer-literal pool *)
}

(** [default_params] matches the paper's mid-size runs: 8 statements over
    5 variables and 3 constants. *)
val default_params : params

(** [program ?freq rng p] is a random source program.  Every statement
    assigns to a pool variable; operands are drawn from the pools.
    Raises [Invalid_argument] for non-positive parameters. *)
val program : ?freq:Frequency.t -> Rng.t -> params -> Ast.program

(** [block ?freq ?optimize rng p] compiles a random program to a tuple
    block ([optimize] defaults to [true], matching §3.1). *)
val block : ?freq:Frequency.t -> ?optimize:bool -> Rng.t -> params -> Block.t

(** [sample_params rng] draws parameters reproducing the paper's block-size
    mix (Figure 5): optimized blocks mostly between 5 and 45 instructions
    with mean near 20. *)
val sample_params : Rng.t -> params

(** [batch ?freq rng ~count] generates [count] blocks with
    {!sample_params}-drawn parameters — the population used for the
    16,000-run study (Table 7, Figures 1 and 4-7). *)
val batch : ?freq:Frequency.t -> Rng.t -> count:int -> Block.t list

(** [of_seed ?freq s] compiles the block identified by block seed [s]:
    a fresh generator is created from [s], parameters are drawn with
    {!sample_params}, and the block is compiled.  This is the whole
    block-identity contract of the mega study — a block is a pure
    function of its seed. *)
val of_seed : ?freq:Frequency.t -> int -> Block.t

(** [stream ?freq ~seed ~start ~count f] calls [f i blk] for each index
    [i] in [\[start, start + count)], where [blk] is
    [of_seed (Schedule.seed_at ~seed i)] — the {!sample_params} block-size
    mix, one block at a time, constant memory.  Because block seeds come
    from {!Schedule.seed_at}, generating a slice yields exactly that
    slice of the full stream: shards, [bin/synthgen] and the mega study
    all see the same population. *)
val stream :
  ?freq:Frequency.t ->
  seed:int -> start:int -> count:int -> (int -> Block.t -> unit) -> unit

(** [random_machine rng] draws a random machine description for
    differential testing: 1-4 pipelines with latencies and enqueue times
    in 1..6, each operation either resource-free or mapped to a random
    non-empty pipeline subset.  Always satisfies {!Machine.validate}. *)
val random_machine : Rng.t -> Machine.t

(** [structured_program ?freq rng p ~depth] is a random program {e with
    control flow} (for the whole-program extension): assignment statements
    drawn as in {!program}, interleaved with [if]/[else] diamonds and
    always-terminating [while] loops (each loop runs a dedicated counter
    [k0], [k1], ... to a small bound).  [depth] bounds control-flow
    nesting; [p.statements] is the top-level statement budget. *)
val structured_program :
  ?freq:Frequency.t -> Rng.t -> params -> depth:int -> Ast.program
