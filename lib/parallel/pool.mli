(** Deterministic chunked work pool over OCaml 5 domains.

    [parallel_map] and [map_reduce] distribute independent items across
    worker domains.  Results are always delivered in input order, and the
    functions applied must be pure with respect to shared state, so the
    value computed is {e identical at every job count} — parallelism only
    changes wall-clock time.  This is the determinism contract the study
    driver (Harness.Study) builds on: anything derived from a
    [parallel_map] is reproducible bit-for-bit whether run with 1 job on
    a laptop or 64 in CI.

    Scheduling is dynamic: workers repeatedly grab the next chunk of
    indices from a mutex-protected counter, so a heavy-tailed workload
    (e.g. branch-and-bound searches whose cost varies by orders of
    magnitude per block) still balances.  Chunking only affects load
    balance, never results.

    The pool is safe under nested use: a call made from inside a worker
    domain runs serially in that worker instead of spawning further
    domains, so no lock ordering between pools can deadlock. *)

(** [default_jobs ()] is the worker count used when [?jobs] is omitted:
    the value of the [PIPESCHED_JOBS] environment variable when set to a
    positive integer, otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [resolve_jobs jobs] normalizes an optional CLI-style job count:
    [Some j] clamps to at least 1, [None] falls back to
    {!default_jobs}. *)
val resolve_jobs : int option -> int

(** [default_search_jobs ()] is the {e intra-block} search worker count
    used when a [--search-jobs] flag is omitted: [PIPESCHED_SEARCH_JOBS]
    when set to a positive integer, otherwise 1 (serial search).  Unlike
    {!default_jobs} it does not default to the core count: the
    block-level pool already occupies the cores, so a second level of
    parallelism is opt-in. *)
val default_search_jobs : unit -> int

(** [Some j] clamps to at least 1, [None] falls back to
    {!default_search_jobs}. *)
val resolve_search_jobs : int option -> int

(** Raised by {!parallel_map} / {!map_reduce} when the [?cancel] token
    was tripped before every item was mapped.  Items already in flight
    finish first (cancellation is cooperative — no domain is killed), so
    the raise happens only after all workers have drained. *)
exception Cancelled

(** [parallel_map ?jobs ?chunk ?cancel f xs] is [List.map f xs] computed
    on [jobs] domains (default {!resolve_jobs}[ None]), with [f] applied
    to each element exactly once and results in input order.  [f] is
    evaluated left-to-right when running serially ([jobs <= 1], a
    single-element list, or a nested call from a worker).

    If any application of [f] raises, the first exception (in completion
    order) is re-raised in the caller after all workers have stopped;
    remaining unstarted items are abandoned.

    [cancel] is an optional shared {!Pipesched_prelude.Budget.token}:
    once tripped (from any domain), no further item is started, workers
    drain, and {!Cancelled} is raised — unless every item had already
    been mapped, in which case the full result is returned normally.
    The serial path checks the token between items, so behavior is the
    same at any job count.

    [chunk] is the number of consecutive indices a worker claims per
    counter access (default: scaled to [length xs / (jobs * 32)],
    clamped to [1 .. 64]).

    [progress] is called with the cumulative number of items completed
    — after every item on the serial path, after every chunk on the
    parallel one.  It runs on worker domains, so it must be
    domain-safe; counts can arrive slightly out of order under races;
    a raising callback is contained (never affects the map).  Intended
    for rate-limited heartbeats, not precise accounting. *)
val parallel_map :
  ?jobs:int ->
  ?chunk:int ->
  ?cancel:Pipesched_prelude.Budget.token ->
  ?progress:(int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** One contained per-item failure: the exception rendered with
    [Printexc.to_string] plus the backtrace captured in the worker (empty
    when backtrace recording is off). *)
type failure = { exn : string; backtrace : string }

(** [parallel_map_result ?jobs ?chunk ?cancel f xs] is {!parallel_map}
    with per-item fault containment: an application of [f] that raises
    yields [Error failure] for that item instead of tearing down the
    whole map, and every other item still runs.  Results stay in input
    order, so the determinism contract is preserved — a deterministic
    [f] fails (or succeeds) identically at any job count.  [cancel]
    still aborts the map as a whole via {!Cancelled} (cancellation is a
    caller decision, not an item fault). *)
val parallel_map_result :
  ?jobs:int ->
  ?chunk:int ->
  ?cancel:Pipesched_prelude.Budget.token ->
  ?progress:(int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list

(** [team ~jobs f] runs [f 0 .. f (jobs-1)] as a fixed team of
    collaborating workers and waits for all of them.  Unlike
    {!parallel_map}'s items, team workers are {e expected} to share
    state (an incumbent, an atomic work counter, a budget pool) — the
    caller is responsible for that state's thread safety.  Worker 0 runs
    on the calling domain (so [~jobs:1] spawns nothing and is exactly
    [f 0]); the [jobs - 1] spawned domains are flagged as pool workers
    so nested {!parallel_map} calls inside them run serially.  If any
    worker raises, the first exception (worker 0 first, then spawn
    order) is re-raised after all workers have been joined. *)
val team : jobs:int -> (int -> unit) -> unit

(** [map_reduce ?jobs ?chunk ?cancel ~map ~reduce ~init xs] maps in
    parallel, then folds the mapped results {e in input order} with
    [reduce], starting from [init].  Deterministic for any [reduce],
    associative or not, at any job count.  [cancel] as in
    {!parallel_map}. *)
val map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  ?cancel:Pipesched_prelude.Budget.token ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
