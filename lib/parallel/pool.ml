module Budget = Pipesched_prelude.Budget

exception Cancelled

let default_jobs () =
  match Sys.getenv_opt "PIPESCHED_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> j
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve_jobs = function
  | Some j -> max 1 j
  | None -> default_jobs ()

(* Search workers default to 1 (serial), not the core count: intra-block
   parallelism only pays off on hard blocks, and the block-level pool
   above it already uses the cores.  Opt in via the env knob or the
   --search-jobs flags. *)
let default_search_jobs () =
  match Sys.getenv_opt "PIPESCHED_SEARCH_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> j
     | Some _ | None -> 1)
  | None -> 1

let resolve_search_jobs = function
  | Some j -> max 1 j
  | None -> default_search_jobs ()

(* Set in every worker domain: a nested parallel_map runs serially there,
   so pools never wait on each other. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

(* Left-to-right serial map (List.map's evaluation order is unspecified). *)
let map_lr f xs = List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let parallel_map ?jobs ?chunk ?cancel ?progress f xs =
  let cancelled () =
    match cancel with Some tok -> Budget.is_cancelled tok | None -> false
  in
  (* A raising progress callback must never take a worker down (that
     would leak the pool's accounting), so it is always contained. *)
  let notify c =
    match progress with
    | None -> ()
    | Some p -> ( try p c with _ -> ())
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min (resolve_jobs jobs) n in
  if n = 0 then []
  else if jobs <= 1 || Domain.DLS.get inside_worker then begin
    (* The serial path honors the token between items, like the pool's
       [take] does between chunks: items already mapped are kept, the
       first un-started one raises. *)
    let done_ = ref 0 in
    map_lr
      (fun x ->
        if cancelled () then raise Cancelled;
        let y = f x in
        incr done_;
        notify !done_;
        y)
      xs
  end
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (min 64 (n / (jobs * 32)))
    in
    let results = Array.make n None in
    let mu = Mutex.create () in
    let finished = Condition.create () in
    let next = ref 0 in
    let active = ref jobs in
    let error = ref None in
    let completed = ref 0 in
    (* Count under the mutex, notify outside it: a slow callback never
       blocks other workers, at the price that cumulative counts may
       arrive slightly out of order under races. *)
    let advance k =
      Mutex.lock mu;
      completed := !completed + k;
      let c = !completed in
      Mutex.unlock mu;
      notify c
    in
    (* [take] hands out the next chunk of indices, or the empty range once
       the items are exhausted, a worker has failed, or the cancellation
       token has been tripped — cancellation is cooperative: in-flight
       items finish, un-started ones are never begun. *)
    let take () =
      Mutex.lock mu;
      let lo = if !error = None && not (cancelled ()) then !next else n in
      let hi = min n (lo + chunk) in
      next := hi;
      Mutex.unlock mu;
      (lo, hi)
    in
    let fail exn bt =
      Mutex.lock mu;
      if !error = None then error := Some (exn, bt);
      Mutex.unlock mu
    in
    let retire () =
      Mutex.lock mu;
      decr active;
      if !active = 0 then Condition.broadcast finished;
      Mutex.unlock mu
    in
    let worker () =
      Domain.DLS.set inside_worker true;
      let rec loop () =
        let lo, hi = take () in
        if lo < hi then begin
          (match
             for i = lo to hi - 1 do
               results.(i) <- Some (f items.(i))
             done
           with
           | () -> advance (hi - lo)
           | exception exn -> fail exn (Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ();
      retire ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    Mutex.lock mu;
    while !active > 0 do
      Condition.wait finished mu
    done;
    Mutex.unlock mu;
    List.iter Domain.join domains;
    match !error with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      if Array.exists (fun r -> r = None) results then raise Cancelled;
      Array.to_list
        (Array.map
           (function Some y -> y | None -> assert false)
           results)
  end

(* A fixed team of [jobs] collaborating workers (they share state by
   design — e.g. an incumbent and a work counter — unlike the pure maps
   above).  Worker 0 runs on the calling domain, so [team ~jobs:1 f] is
   exactly [f 0] with no domain spawned and the caller's DLS untouched;
   spawned workers get [inside_worker] set so any parallel_map they
   reach runs serially.  All workers are joined before returning; the
   first exception (worker 0 first, then spawn order) is re-raised. *)
let team ~jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then f 0
  else begin
    let spawned =
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set inside_worker true;
              f (i + 1)))
    in
    let err0 =
      match f 0 with
      | () -> None
      | exception exn -> Some (exn, Printexc.get_raw_backtrace ())
    in
    let errs =
      List.filter_map
        (fun d ->
          match Domain.join d with
          | () -> None
          | exception exn -> Some (exn, Printexc.get_raw_backtrace ()))
        spawned
    in
    match (err0, errs) with
    | Some (exn, bt), _ | None, (exn, bt) :: _ ->
      Printexc.raise_with_backtrace exn bt
    | None, [] -> ()
  end

let map_reduce ?jobs ?chunk ?cancel ~map ~reduce ~init xs =
  List.fold_left reduce init (parallel_map ?jobs ?chunk ?cancel map xs)

type failure = { exn : string; backtrace : string }

let parallel_map_result ?jobs ?chunk ?cancel ?progress f xs =
  parallel_map ?jobs ?chunk ?cancel ?progress
    (fun x ->
      match f x with
      | y -> Ok y
      | exception exn ->
        let backtrace =
          Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
        in
        Error { exn = Printexc.to_string exn; backtrace })
    xs
