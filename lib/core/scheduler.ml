open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Budget = Pipesched_prelude.Budget
module Solve_cp = Pipesched_solve.Cp

type outcome = {
  best : Omega.result;
  initial : Omega.result;
  calls : int;
  completed : bool;
  status : Budget.status;
  proved : int option;
}

module type S = sig
  val name : string
  val describe : string

  val schedule :
    ?options:Optimal.options ->
    ?entry:Omega.entry ->
    Machine.t ->
    Dag.t ->
    outcome
end

module Bnb : S = struct
  let name = "bnb"
  let describe = "branch-and-bound over legal orders (the paper's search)"

  let schedule ?(options = Optimal.default_options) ?entry machine dag =
    let o = Optimal.schedule ~options ?entry machine dag in
    let s = o.Optimal.stats in
    {
      best = o.Optimal.best;
      initial = o.Optimal.initial;
      calls = s.Optimal.omega_calls;
      completed = s.Optimal.completed;
      status = s.Optimal.status;
      proved =
        (if s.Optimal.completed then Some o.Optimal.best.Omega.nops else None);
    }
end

module Cp : S = struct
  let name = "cp"
  let describe = "propagation/learning (CDCL) over issue-slot variables"

  let schedule ?(options = Optimal.default_options) ?entry machine dag =
    let c =
      Solve_cp.solve ~lambda:options.Optimal.lambda
        ?deadline_s:options.Optimal.deadline_s
        ?cancel:options.Optimal.cancel ~seed:options.Optimal.seed ?entry
        machine dag
    in
    let s = c.Solve_cp.stats in
    {
      best = c.Solve_cp.best;
      initial = c.Solve_cp.initial;
      calls = s.Solve_cp.decisions + s.Solve_cp.conflicts;
      completed = s.Solve_cp.completed;
      status = s.Solve_cp.status;
      proved = s.Solve_cp.proved;
    }
end

module Portfolio_backend : S = struct
  let name = "portfolio"
  let describe = "bnb and cp racing on two domains, sharing the incumbent"

  let schedule ?(options = Optimal.default_options) ?entry machine dag =
    let p = Portfolio.run ~options ?entry machine dag in
    {
      best = p.Portfolio.best;
      initial = p.Portfolio.initial;
      calls = p.Portfolio.bnb.Portfolio.calls + p.Portfolio.cp.Portfolio.calls;
      completed = p.Portfolio.proved <> None;
      status = p.Portfolio.status;
      proved = p.Portfolio.proved;
    }
end

module Windowed_backend : S = struct
  let name = "windowed"
  let describe = "locally-optimal windows of 20 over the list schedule"

  let schedule ?(options = Optimal.default_options) ?entry machine dag =
    let w = Windowed.schedule ~options ?entry ~window:20 machine dag in
    {
      best = w.Windowed.best;
      initial = w.Windowed.initial;
      calls = w.Windowed.omega_calls;
      (* locally optimal per window is not a global optimality proof *)
      completed = false;
      status = w.Windowed.status;
      proved = None;
    }
end

module List_backend : S = struct
  let name = "list"
  let describe = "the list-scheduling heuristic alone (no search)"

  let schedule ?(options = Optimal.default_options) ?entry machine dag =
    let order = List_sched.schedule options.Optimal.seed dag in
    let r = Omega.evaluate ?entry machine dag ~order in
    {
      best = r;
      initial = r;
      calls = 1;
      completed = false;
      status = Budget.Complete;
      proved = None;
    }
end

let backends : (module S) list =
  [
    (module Bnb);
    (module Cp);
    (module Portfolio_backend);
    (module Windowed_backend);
    (module List_backend);
  ]

let find name =
  List.find_opt (fun (module B : S) -> B.name = name) backends

let names = List.map (fun (module B : S) -> B.name) backends
