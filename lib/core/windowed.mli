(** Windowed scheduling of very large blocks (§5.3).

    The paper suggests that "for very large basic blocks, it might be
    useful to split the basic blocks into smaller sections (containing,
    say, twenty instructions or less each) and find solutions which are
    locally optimal.  A good heuristic for the split might be to simply
    partition the list schedule."  This module implements exactly that:

    + the list schedule of the whole block is computed;
    + it is partitioned into consecutive windows of at most [window]
      instructions;
    + each window is scheduled by the branch-and-bound search, with the
      pipeline state inherited from everything already scheduled
      (the {!Omega.entry}-style warm start) and candidates restricted to
      the window's instructions;
    + the window's best order is committed and the search moves on.

    The result is locally optimal per window, globally heuristic: the
    search cost is bounded by [windows * branching^window] instead of
    [branching^n], and quality degrades gracefully as [window] shrinks
    ([window >= n] recovers the exact algorithm; [window = 1] is exactly
    the list schedule). *)

open Pipesched_machine

type outcome = {
  best : Omega.result;
      (** full schedule of the whole block; never more NOPs than
          [initial] (the seed is returned when per-window improvements
          interact badly) *)
  initial : Omega.result; (** the seed list schedule *)
  window : int;
  window_count : int;
  omega_calls : int;
      (** {e all} Omega pushes performed, including each window's
          incumbent evaluation and the commit of its best order — not
          just the DFS pushes (with [window = 1] this is exactly [3n]) *)
  all_windows_completed : bool;
      (** every per-window search ran to completion within its share of
          the budget (each window's result then provably optimal {e given}
          the committed prefix) *)
  status : Pipesched_prelude.Budget.status;
      (** [Complete] iff [all_windows_completed]; otherwise which budget
          limit (lambda, deadline, cancellation) curtailed the search.
          The returned schedule is complete and legal in every case. *)
}

(** [schedule ?options ?entry ~window machine dag] runs the windowed
    search.  [options.lambda] bounds the {e total} Omega calls across all
    windows (every push counted, see [omega_calls]); [options.deadline_s]
    and [options.cancel] additionally bound it in wall time.  When the
    budget runs out mid-window, that window and all later ones fall back
    to their list order — committing each window is mandatory, so the
    result is always a complete legal schedule and only O(n) pushes
    remain after expiry.  Raises [Invalid_argument] if [window < 1]. *)
val schedule :
  ?options:Optimal.options ->
  ?entry:Omega.entry ->
  window:int ->
  Machine.t ->
  Pipesched_ir.Dag.t ->
  outcome
