(** Scheduling a straight-line region of consecutive basic blocks.

    The paper (footnote 1) notes that interactions between adjacent blocks
    are handled "by modifying the initial conditions in the analysis for
    each block".  This module threads the {!Omega.entry} pipeline state
    along a sequence of blocks: each block is scheduled optimally given
    the pipeline occupancy it inherits, and bequeaths its own exit state
    to the next.

    This matters when a block ends with long-latency work: a cold-start
    schedule of the next block would issue a conflicting operation too
    early and the hardware (or NOP padding) would have to stall. *)

open Pipesched_machine
open Pipesched_ir

type block_outcome = {
  outcome : Optimal.outcome;
  entry : Omega.entry;  (** state the block was scheduled against *)
  exit_ : Omega.entry;  (** state it hands to its successor *)
}

type t = {
  blocks : block_outcome list;
  total_nops : int;       (** sum of per-block NOPs with threading *)
  cold_total_nops : int;  (** same blocks scheduled with cold entries and
                              the inter-block stalls this would cause
                              charged at each boundary *)
  cold_claimed_nops : int;
      (** the NOP count the cold-start compiler {e believes} it emitted;
          when [cold_total_nops > cold_claimed_nops] a NOP-padded machine
          (no interlock hardware) would execute incorrectly, because the
          padding underestimates the pipeline state at block entry *)
  cold_hazards : int;
      (** number of blocks whose cold schedule underestimates its real
          entry constraints *)
}

(** [schedule ?options machine dags] schedules the blocks in order,
    threading pipeline state.  The cold comparison schedules each block
    independently and then replays each cold schedule against its true
    entry state to count the boundary stalls the paper's footnote warns
    about — and the hazards a NOP-padding target would turn into wrong
    execution. *)
val schedule : ?options:Optimal.options -> Machine.t -> Dag.t list -> t
