(** The optimal pipeline scheduler (§4.2.3) — the paper's core contribution.

    A depth-first branch-and-bound over legal instruction orders:

    + the {!Pipesched_sched.List_sched} heuristic produces the initial
      schedule, which is evaluated with Omega and becomes the incumbent
      [pi] (§4.2.3 step [1]);
    + the search extends a partial schedule [Phi] one ready instruction at
      a time, inserting minimal NOPs incrementally (steps [2]–[5]);
    + {b legality pruning}: only candidates whose DAG predecessors are all
      in [Phi] are tried (the quick [earliest]/[latest] window test [5a] is
      subsumed by O(1) ready-count maintenance; the real test [5b] is what
      the count implements);
    + {b equivalence pruning} (step [5c]): at a choice point, at most one
      candidate that is {e free} — no pipeline resource, no predecessors
      {e and no successors} — is explored, since such instructions are
      mutually interchangeable fillers.  (The paper's condition omits the
      successor requirement; taken literally it can prune every optimal
      schedule — a predecessor-free instruction whose consumers come later
      is not interchangeable with an unconstrained one, because its
      position bounds where its consumers may go.  See the counterexample
      in the test suite and DESIGN.md.);
    + {b alpha-beta pruning} (step [6]): a partial schedule whose NOP count
      already reaches the incumbent's is abandoned — completing it can only
      add NOPs;
    + {b curtailment} (step [4]): after [lambda] Omega calls the search
      stops with the best schedule found, which may be suboptimal.

    None of the prunings can discard {e every} optimal schedule, so a
    completed search returns a provably optimal schedule (the paper's
    termination case [1]).

    Extensions beyond the paper (all optionality-preserving, all
    ablation-switchable): a stronger {e interchangeable-candidates} check,
    an admissible critical-path lower bound, and a search over pipeline
    {e assignment} for machines that offer several pipelines per operation
    (the feature footnote 3 excludes from the paper's algorithm). *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched

(** Admissible lower bound used by step [6]. *)
type lower_bound =
  | Partial_nops
      (** mu(Phi) alone — exactly the paper's alpha-beta condition *)
  | Critical_path
      (** mu(Phi) refined with the latency-weighted critical path of the
          unscheduled suffix (extension; strictly stronger, still never
          prunes all optima) *)

(** Dominance-memoization settings (extension).  The search keeps a
    bounded transposition table keyed by the {e set} of scheduled
    positions; a node is pruned when a previously explored prefix over
    the same set left the machine in a componentwise no-worse normalized
    state (no more NOPs, no later pipe last-uses, no larger residual
    producer latencies — all relative to the next issue slot).  The cut
    is exact: it never changes the reported optimum, only the number of
    Omega calls spent reaching it (see the soundness argument in
    optimal.ml). *)
type memo_options = {
  memo_enabled : bool;  (** master switch for the dominance cut *)
  memo_capacity : int;
      (** table capacity bound in entries, rounded up to a power of two;
          the allocation starts small and doubles as entries land, and at
          the bound old entries are evicted (deepest first) *)
  memo_activation : int;
      (** create the table only once this many Omega calls have been
          spent, so trivial searches never pay even the small initial
          allocation *)
}

(** Memoization on, 4096 entries, activation after 256 Omega calls. *)
val default_memo : memo_options

type options = {
  lambda : int;
      (** curtail point: maximum Omega calls (incremental NOP insertions)
          before the search gives up; the paper's user-supplied lambda *)
  deadline_s : float option;
      (** wall-clock deadline in seconds, measured from search start
          (extension).  [None] (the default) means call-count-only
          budgeting — the clock is then never read, so results are
          bit-for-bit deterministic.  On expiry the search returns its
          incumbent with status {!Pipesched_prelude.Budget.Curtailed_deadline}. *)
  cancel : Pipesched_prelude.Budget.token option;
      (** shared cancellation token, safe to trip from another domain
          (extension); on cancellation the search returns its incumbent
          with status {!Pipesched_prelude.Budget.Cancelled} *)
  seed : List_sched.heuristic;  (** initial-schedule heuristic *)
  equivalence : bool;           (** step [5c] on/off *)
  strong_equivalence : bool;
      (** also skip a candidate when an already-tried sibling has the same
          pipeline, the same predecessor set and the same successor set
          (fully interchangeable instructions; extension) *)
  alpha_beta : bool;            (** step [6] on/off *)
  lower_bound : lower_bound;
  memo : memo_options;          (** dominance memoization (extension) *)
  search_jobs : int;
      (** intra-block parallel branch-and-bound (extension): number of
          domains searching {e this block's} tree together.  [1] (the
          default) is the plain serial search.  At [>= 2] a hard block
          is split at its root frontier into lexicographically ordered
          subtree tasks, searched by a worker team sharing the incumbent
          through an atomic bound ({!Pipesched_prelude.Incumbent}) and
          drawing [lambda] from a shared pool
          ({!Pipesched_prelude.Budget.pool}).  The reported schedule and
          NOP count are {e identical at any job count} (see DESIGN.md
          §9); [omega_calls] and the other exploration counters are not
          — workers race, so the work actually done varies. *)
  parallel_activation : int;
      (** Omega calls the serial probe spends before a [search_jobs > 1]
          search escalates to the worker team.  Blocks whose serial
          search finishes within this cap take the exact serial path —
          same result, same stats — so easy blocks never pay the
          parallel overhead.  Ignored when [search_jobs <= 1]. *)
}

(** The paper's configuration: [lambda = 100_000], no deadline, no
    cancellation token, {!List_sched.Max_distance} seed, equivalence and
    alpha-beta pruning on, [Partial_nops] bound, strong equivalence off,
    {!default_memo} memoization, serial search ([search_jobs = 1],
    [parallel_activation = 4096]). *)
val default_options : options

(** Search statistics.  With [search_jobs > 1] these are summed over the
    probe, the frontier enumeration, and every worker task; the
    exploration counters ([omega_calls], [schedules_completed],
    [improvements], memo counters) then depend on scheduling races and
    vary run to run — only [completed], [status], and the reported
    schedule itself are deterministic. *)
type stats = {
  omega_calls : int;
      (** incremental NOP insertions performed (the paper's Lambda) *)
  schedules_completed : int;
      (** complete schedules reached and compared against the incumbent *)
  improvements : int;
      (** times the incumbent was improved (including the seed's first
          evaluation is not counted) *)
  completed : bool;
      (** true: termination case [1], the result is provably optimal;
          false: case [2], curtailed — see [status] for which limit *)
  status : Pipesched_prelude.Budget.status;
      (** how the search ended: [Complete] iff [completed]; otherwise
          which budget limit stopped it (lambda, wall-clock deadline, or
          cancellation token).  The returned incumbent is a legal
          schedule in every case. *)
  elapsed_s : float;
      (** wall time spent in the search; [0.0] when no deadline was set
          (the clock is not read at all then, for determinism) *)
  memo_hits : int;
      (** nodes pruned by the dominance cut (subtrees never entered) *)
  memo_misses : int;
      (** dominance lookups that found no dominating entry *)
  memo_entries : int;  (** entries resident in the table at the end *)
  memo_evictions : int;
      (** entries displaced by the bounded table's eviction policy *)
}

type outcome = {
  best : Omega.result;     (** best schedule found *)
  initial : Omega.result;  (** the evaluated seed (list) schedule *)
  stats : stats;
}

(** [schedule ?options machine dag] runs the search with each operation on
    its default pipeline (the paper's algorithm).  [entry] carries
    pipeline state in from preceding code (see {!Omega.entry} and
    {!Region}). *)
val schedule :
  ?options:options -> ?entry:Omega.entry -> Machine.t -> Dag.t -> outcome

(** [schedule_shared ~shared ~rank machine dag] — the serial single-pipe
    search attached to an external shared incumbent, for the portfolio
    racer ({!Pipesched_core.Portfolio}): the evaluated seed is submitted
    at rank [-1], every improvement is published at rank [rank] as it is
    found, and the incumbent's gate tightens pruning whenever a peer
    backend publishes a better bound first.  Returns the usual outcome
    plus [Some proved] when the search ran to completion: the proved
    optimal NOP count, which is [min own-best shared-bound] — with a
    peer in play the proof is relative to the shared bound, so the
    witness schedule may be held by the peer (fetch it with
    [Incumbent.best]).  [options.search_jobs] is ignored here; the racer
    parallelizes across backends instead. *)
val schedule_shared :
  ?options:options ->
  ?entry:Omega.entry ->
  shared:Omega.result Pipesched_prelude.Incumbent.t ->
  rank:int ->
  Machine.t ->
  Dag.t ->
  outcome * int option

(** [schedule_multi ?options machine dag] additionally searches over the
    pipeline assignment when operations have several candidate pipelines
    (§4.1's two-loader example; extension).  Symmetric pipelines (equal
    parameters and equal last-use state) are explored only once per choice
    point.  Returns the chosen pipe per original position alongside the
    outcome. *)
val schedule_multi :
  ?options:options -> ?entry:Omega.entry -> Machine.t -> Dag.t ->
  outcome * int option array

(** [schedule_bounded ?options ~registers machine dag] searches only
    schedules whose register demand never exceeds [registers] — the §3.1
    concern made into a hard constraint instead of a pre-pass (extension).
    A value is live from its definition until its last remaining consumer
    is scheduled (read-then-write convention, matching
    [Pipesched_regalloc.Alloc]); candidates whose definition would push
    the live count past the file are pruned as illegal.

    Returns [Ok outcome] with the best feasible schedule found
    ([outcome.stats.completed] means provably optimal {e among feasible
    schedules}), or [Error ()] when no feasible complete schedule was
    found within [lambda] (the block needs §3.1 spill rewriting first).
    Note the seed list schedule may itself be infeasible — it is {e not}
    used as an incumbent, and is only evaluated (to fill
    [outcome.initial], as a reference point) when the search succeeds;
    on [Error ()] no Omega evaluation of the seed happens at all. *)
val schedule_bounded :
  ?options:options -> registers:int -> Machine.t -> Dag.t ->
  (outcome, unit) result

(** [verify_optimal machine dag outcome] cross-checks an outcome against
    the exhaustive legal-only search (test helper; exponential, use on
    small blocks only).  True when the NOP counts agree. *)
val verify_optimal : Machine.t -> Dag.t -> outcome -> bool
