open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Budget = Pipesched_prelude.Budget

type outcome = {
  best : Omega.result;
  initial : Omega.result;
  window : int;
  window_count : int;
  omega_calls : int;
  all_windows_completed : bool;
  status : Budget.status;
}

exception Budget_exhausted

let schedule ?(options = Optimal.default_options) ?entry ~window machine dag =
  if window < 1 then invalid_arg "Windowed.schedule: window must be >= 1";
  let n = Dag.length dag in
  let seed_order = List_sched.schedule options.Optimal.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  let st = Omega.State.create ?entry machine dag in
  let budget =
    Budget.start
      {
        Budget.calls = Some options.Optimal.lambda;
        deadline_s = options.Optimal.deadline_s;
        cancel = options.Optimal.cancel;
      }
  in
  let omega_calls = ref 0 in
  let all_completed = ref true in
  (* Every Omega push is one Omega call and is accounted as such — the
     per-window incumbent evaluation and the committed best order
     included.  Those pushes happen even once the budget has run out,
     because committing each window is what keeps the final schedule
     legal and complete (the anytime guarantee); only the per-window DFS
     itself is interruptible. *)
  let spend_push pos =
    Budget.spend budget;
    incr omega_calls;
    Omega.State.push st pos
  in
  let budget_push pos =
    (match Budget.exhausted budget with
     | Some _ -> raise Budget_exhausted
     | None -> ());
    spend_push pos
  in
  (* Candidate iteration order within windows: list priority. *)
  let cand_order =
    List_sched.order_by_priority options.Optimal.seed dag
  in
  let window_count = (n + window - 1) / window in
  let chunk_of = Array.make n 0 in
  Array.iteri (fun k pos -> chunk_of.(pos) <- k / window) seed_order;
  (* Schedule one window: DFS over the window's instructions on top of the
     committed prefix; commit the best order found. *)
  let schedule_window w first_k =
    let size = min window (n - first_k) in
    let in_window pos = chunk_of.(pos) = w in
    (* Incumbent: the window's slice of the list schedule. *)
    let incumbent = Array.sub seed_order first_k size in
    let base_depth = Omega.State.depth st in
    Array.iter spend_push incumbent;
    let best_nops = ref (Omega.State.nops st) in
    let best_order = ref (Array.copy incumbent) in
    for _ = 1 to size do
      Omega.State.pop st
    done;
    let current = Array.make size 0 in
    let completed =
      try
        let rec go depth =
          if depth = size then begin
            if Omega.State.nops st < !best_nops then begin
              best_nops := Omega.State.nops st;
              best_order := Array.copy current
            end
          end
          else
            let tried = ref 0 in
            Array.iter
              (fun pos ->
                if in_window pos && Omega.State.is_ready st pos then begin
                  incr tried;
                  budget_push pos;
                  current.(depth) <- pos;
                  if Omega.State.nops st < !best_nops then go (depth + 1);
                  Omega.State.pop st
                end)
              cand_order;
            assert (!tried > 0)
        in
        go 0;
        true
      with Budget_exhausted ->
        (* Unwind the partial descent the exception interrupted. *)
        while Omega.State.depth st > base_depth do
          Omega.State.pop st
        done;
        false
    in
    if not completed then all_completed := false;
    Array.iter spend_push !best_order;
    completed
  in
  let k = ref 0 in
  for w = 0 to window_count - 1 do
    ignore (schedule_window w !k);
    k := !k + window
  done;
  (* Every window commits its full slice, so nothing is left for the
     greedy completion here — but if it ever had work, its pushes would
     be Omega calls too, so account for them. *)
  let uncommitted = n - Omega.State.depth st in
  for _ = 1 to uncommitted do
    Budget.spend budget;
    incr omega_calls
  done;
  let best = Omega.State.complete_greedily st in
  (* Locally-optimal windows are not globally dominant: an improved early
     window can worsen a later window's context.  Never return something
     worse than the seed. *)
  let best = if best.Omega.nops > initial.Omega.nops then initial else best in
  let status =
    if !all_completed then Budget.Complete
    else
      match Budget.exhausted budget with
      | Some s -> s
      | None -> Budget.Curtailed_lambda
  in
  {
    best;
    initial;
    window;
    window_count;
    omega_calls = !omega_calls;
    all_windows_completed = !all_completed;
    status;
  }
