(** The common SCHEDULER interface: every backend — exact searches,
    heuristics, the portfolio race — as a first-class module taking the
    same inputs (options, entry state, machine, DAG) and producing the
    same outcome shape.  Study drivers, the daemon, the fuzzer and the
    CLI dispatch on a backend {e name} instead of hard-wiring
    {!Optimal}; adding a backend means adding one registry entry.

    Outcome contract, checked per backend by the conformance suite
    (test/test_scheduler.ml):

    - [best] and [initial] are legal schedules of the block
      (certify-clean), with [best.nops <= initial.nops];
    - the backend is {e anytime}: it honors [options.lambda] /
      [options.deadline_s] / [options.cancel] and still returns a legal
      incumbent when curtailed, with [status] naming the tripped limit;
    - [completed = true] iff [status = Complete] iff [proved = Some _],
      and then [proved = Some best.nops] claims proved optimality
      (exact backends only; heuristic backends always report
      [completed = false] with status [Complete] — they terminate
      naturally but prove nothing);
    - with no deadline, no cancellation and [search_jobs = 1], the
      reported schedule is deterministic. *)

open Pipesched_ir
open Pipesched_machine

type outcome = {
  best : Omega.result;
  initial : Omega.result;
  calls : int;
      (** work units spent, in backend-specific units (Omega calls for
          the searches, decisions + conflicts for cp, the sum of both
          sides for portfolio) *)
  completed : bool;  (** optimality proved *)
  status : Pipesched_prelude.Budget.status;
  proved : int option;  (** the proved optimal NOP count, iff completed *)
}

module type S = sig
  val name : string

  (** Human-oriented one-liner for listings. *)
  val describe : string

  val schedule :
    ?options:Optimal.options ->
    ?entry:Omega.entry ->
    Machine.t ->
    Dag.t ->
    outcome
end

(** The registry, in listing order: ["bnb"] ({!Optimal.schedule}),
    ["cp"] ({!Pipesched_solve.Cp.solve}), ["portfolio"]
    ({!Portfolio.run}), ["windowed"] ({!Windowed.schedule}, window 20),
    ["list"] (the seed heuristic alone). *)
val backends : (module S) list

(** [find name] looks the backend up by name. *)
val find : string -> (module S) option

(** Registered names, in listing order. *)
val names : string list
