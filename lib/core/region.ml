open Pipesched_machine
module Dag = Pipesched_ir.Dag

type block_outcome = {
  outcome : Optimal.outcome;
  entry : Omega.entry;
  exit_ : Omega.entry;
}

type t = {
  blocks : block_outcome list;
  total_nops : int;
  cold_total_nops : int;
  cold_claimed_nops : int;
  cold_hazards : int;
}

(* Replay a complete order against an entry state and return the exit
   state and the realized NOP count. *)
let replay machine dag entry order =
  let st = Omega.State.create ~entry machine dag in
  Array.iter (fun pos -> Omega.State.push st pos) order;
  (Omega.State.nops st, Omega.State.exit_state st)

let schedule ?(options = Optimal.default_options) machine dags =
  let cold = Omega.cold_entry machine in
  (* Warm-threaded pass: each block scheduled against its true entry. *)
  let _, warm_rev =
    List.fold_left
      (fun (entry, acc) dag ->
        let outcome = Optimal.schedule ~options ~entry machine dag in
        let _, exit_ =
          replay machine dag entry outcome.Optimal.best.Omega.order
        in
        (exit_, { outcome; entry; exit_ } :: acc))
      (cold, []) dags
  in
  let blocks = List.rev warm_rev in
  let total_nops =
    List.fold_left
      (fun acc b -> acc + b.outcome.Optimal.best.Omega.nops)
      0 blocks
  in
  (* Cold pass: schedule each block in isolation, then charge the stalls
     its schedule actually incurs once the predecessor's pipeline state is
     taken into account.  Whenever the realized count exceeds the claimed
     one, NOP padding emitted from the cold analysis would be short: an
     interlock-free machine would misexecute (a boundary hazard). *)
  let _, cold_total_nops, cold_claimed_nops, cold_hazards =
    List.fold_left
      (fun (entry, acc, claimed, hazards) dag ->
        let outcome = Optimal.schedule ~options ~entry:cold machine dag in
        let realized, exit_ =
          replay machine dag entry outcome.Optimal.best.Omega.order
        in
        let claim = outcome.Optimal.best.Omega.nops in
        ( exit_,
          acc + realized,
          claimed + claim,
          hazards + (if realized > claim then 1 else 0) ))
      (cold, 0, 0, 0) dags
  in
  { blocks; total_nops; cold_total_nops; cold_claimed_nops; cold_hazards }
