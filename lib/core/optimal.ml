open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Budget = Pipesched_prelude.Budget
module Incumbent = Pipesched_prelude.Incumbent
module Memo_table = Pipesched_prelude.Memo_table
module Pool = Pipesched_parallel.Pool

type lower_bound = Partial_nops | Critical_path

type memo_options = {
  memo_enabled : bool;
  memo_capacity : int;
  memo_activation : int;
}

type options = {
  lambda : int;
  deadline_s : float option;
  cancel : Budget.token option;
  seed : List_sched.heuristic;
  equivalence : bool;
  strong_equivalence : bool;
  alpha_beta : bool;
  lower_bound : lower_bound;
  memo : memo_options;
  search_jobs : int;
  parallel_activation : int;
}

let default_memo =
  { memo_enabled = true; memo_capacity = 4_096; memo_activation = 256 }

let default_options =
  {
    lambda = 100_000;
    deadline_s = None;
    cancel = None;
    seed = List_sched.Max_distance;
    equivalence = true;
    strong_equivalence = false;
    alpha_beta = true;
    lower_bound = Partial_nops;
    memo = default_memo;
    search_jobs = 1;
    parallel_activation = 4_096;
  }

type stats = {
  omega_calls : int;
  schedules_completed : int;
  improvements : int;
  completed : bool;
  status : Budget.status;
  elapsed_s : float;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
  memo_evictions : int;
}

type outcome = { best : Omega.result; initial : Omega.result; stats : stats }

exception Curtailed

(* Shared machinery between the single-pipe and multi-pipe searches. *)
type search_env = {
  n : int;
  st : Omega.State.t;
  cand_order : int array;
  rank : int array;                (* inverse of cand_order *)
  ready : Pipesched_prelude.Bitset.t;
      (* ranks of the currently ready positions, maintained
         incrementally by [dfs] as instructions are pushed and popped *)
  preds : int array array;         (* Dag adjacency, flattened *)
  succs : int array array;
  is_free : bool array;
  (* Strong-equivalence class of each position, interned to a dense int
     in [make_env] so the per-node tried-signature check is an int-array
     probe instead of polymorphic hashing of array tuples. *)
  signature : int array;
  nsigs : int;
  (* Critical-path bound ingredients (admissible for any pipe choice). *)
  min_lat : int array;
  tail : int array;
  (* Resource-bound ingredients: the forced pipeline of each position
     (-1 when resource-free or when several candidates exist — such
     operations contribute nothing, keeping the bound admissible for the
     multi-pipe search too), and each pipeline's enqueue time. *)
  forced_pipe : int array;
  pipe_enqueue : int array;
  (* Largest producer latency any pipe can impose (>= 1, the resource-free
     latency): bounds how far back in the schedule stack a producer can
     still have a positive residual in [fingerprint]. *)
  max_prod_lat : int;
  dag : Dag.t;
  (* Dominance-memoization state: the scheduled-set key (maintained
     incrementally by [dfs]), the normalized-fingerprint scratch, and the
     transposition table itself (created lazily once the search has done
     [memo_activation] Omega calls, so tiny searches never pay the
     allocation). *)
  sched_set : Pipesched_prelude.Bitset.t;
  fp : int array;
  mutable memo_tbl : Memo_table.t option;
  (* Where an activated table is parked between searches: a parallel
     worker passes the same ref to every task's env, so the (cleared)
     table allocation is reused instead of re-created per subtree. *)
  memo_cache : Memo_table.t option ref;
  mutable memo_hits : int;
  mutable memo_misses : int;
  (* Critical-path-bound scratch, preallocated so the bound is not
     O(n) in fresh arrays per node; [cp_bound.(d)] caches the admissible
     bound computed for the node currently open at depth [d]. *)
  cp_est : int array;
  cp_remaining : int array;
  cp_bound : int array;
  budget : Budget.t;
  (* Parallel search: the shared incumbent's atomic bound and this
     searcher's rank in the lexicographic task order ([-1] for the
     serial probe; [None]/[-1] for a plain serial search, which then
     behaves exactly as before). *)
  inc_gate : Incumbent.gate option;
  task_index : int;
  mutable omega_calls : int;
  mutable schedules_completed : int;
  mutable improvements : int;
  mutable best_nops : int;
}

(* [multi]: the search may choose among candidate pipelines, so only
   single-candidate operations may be charged to a pipe in the resource
   bound; the single-pipe search pins every operation to its default.
   [budget]/[memo_cache]/[gate]/[task_index] let the parallel driver give
   each worker env a pool-carved budget, a reusable memo table slot, and
   the shared incumbent; omitted, the env is a plain serial one. *)
let make_env ?entry ?(multi = false) ?budget ?memo_cache ?gate
    ?(task_index = -1) machine dag options =
  let n = Dag.length dag in
  let blk = Dag.block dag in
  let pipe_of pos =
    Machine.default_pipe machine (Block.tuple_at blk pos).Tuple.op
  in
  let min_lat =
    Array.init n (fun pos ->
        let op = (Block.tuple_at blk pos).Tuple.op in
        match Machine.candidates machine op with
        | [] -> 1
        | pids ->
          List.fold_left
            (fun acc pid -> min acc (Machine.pipe machine pid).Pipe.latency)
            max_int pids)
  in
  let tail = Dag.heights dag ~edge_weight:(fun ~src ~dst:_ -> min_lat.(src)) in
  let forced_pipe =
    Array.init n (fun pos ->
        match
          Machine.candidates machine (Block.tuple_at blk pos).Tuple.op
        with
        | [ p ] -> p
        | [] -> -1
        | p :: _ :: _ -> if multi then -1 else p)
  in
  let pipe_enqueue =
    Array.init (Machine.pipe_count machine) (fun p ->
        (Machine.pipe machine p).Pipe.enqueue)
  in
  let max_prod_lat =
    let m = ref 1 in
    for p = 0 to Machine.pipe_count machine - 1 do
      let l = (Machine.pipe machine p).Pipe.latency in
      if l > !m then m := l
    done;
    !m
  in
  let preds = Array.init n (fun pos -> Dag.preds_arr dag pos) in
  let succs = Array.init n (fun pos -> Dag.succs_arr dag pos) in
  let cand_order = List_sched.order_by_priority options.seed dag in
  let rank = Array.make n 0 in
  Array.iteri (fun r pos -> rank.(pos) <- r) cand_order;
  (* Intern the strong-equivalence signatures — (pipe, preds, succs) —
     to dense ints once at construction (polymorphic hashing is fine
     here, off the search hot path), so the per-node check in [dfs]
     probes an int matrix. *)
  let sig_ids = Hashtbl.create (max n 1) in
  let nsigs = ref 0 in
  let signature =
    Array.init n (fun pos ->
        let key =
          ( (match pipe_of pos with Some p -> p | None -> -1),
            preds.(pos),
            succs.(pos) )
        in
        match Hashtbl.find_opt sig_ids key with
        | Some id -> id
        | None ->
          let id = !nsigs in
          Hashtbl.add sig_ids key id;
          incr nsigs;
          id)
  in
  let ready = Pipesched_prelude.Bitset.create (max n 1) in
  for pos = 0 to n - 1 do
    if Array.length preds.(pos) = 0 then
      Pipesched_prelude.Bitset.add ready rank.(pos)
  done;
  {
    n;
    st = Omega.State.create ?entry machine dag;
    cand_order;
    rank;
    ready;
    preds;
    succs;
    (* [5c] needs the successor-free refinement: two resource-free,
       predecessor-free instructions are only interchangeable in every
       completion when neither constrains anything downstream.  Without
       it the pruning can discard all optimal schedules (see the
       counterexample in test_core.ml). *)
    is_free =
      Array.init n (fun pos ->
          pipe_of pos = None
          && Array.length preds.(pos) = 0
          && Array.length succs.(pos) = 0);
    signature;
    nsigs = !nsigs;
    min_lat;
    tail;
    forced_pipe;
    pipe_enqueue;
    max_prod_lat;
    dag;
    sched_set = Pipesched_prelude.Bitset.create (max n 1);
    fp = Array.make (1 + Array.length pipe_enqueue + n) 0;
    memo_tbl = None;
    memo_cache = (match memo_cache with Some r -> r | None -> ref None);
    memo_hits = 0;
    memo_misses = 0;
    cp_est = Array.make (max n 1) 0;
    cp_remaining = Array.make (max (Array.length pipe_enqueue) 1) 0;
    cp_bound = Array.make (n + 1) 0;
    budget =
      (match budget with
       | Some b -> b
       | None ->
         Budget.start
           {
             Budget.calls = Some options.lambda;
             deadline_s = options.deadline_s;
             cancel = options.cancel;
           });
    inc_gate = gate;
    task_index;
    omega_calls = 0;
    schedules_completed = 0;
    improvements = 0;
    best_nops = max_int;
  }

(* Admissible lower bound on the final total NOPs of any completion of the
   current partial schedule: mu(Phi) refined with the earliest possible
   issue of each unscheduled instruction plus its latency-weighted tail
   (see optimal.mli).  est is computed over unscheduled positions in block
   order, which is topological.

   [floor] is a bound already known to be admissible for this node — the
   caller passes the parent's cached bound: the child's completions are a
   subset of the parent's, so any lower bound on the parent also bounds
   the child, and taking the max only tightens the result.

   The scratch arrays live in [search_env]: [cp_est] needs no clearing
   because every unscheduled position is written before it is read (block
   order is topological, and scheduled slots are never read); only the
   per-pipe [cp_remaining] counters are zeroed. *)
let critical_path_bound env ~floor =
  let st = env.st in
  let depth = Omega.State.depth st in
  if depth = env.n then max floor (Omega.State.nops st)
  else begin
    let est = env.cp_est in
    let last_issue =
      if depth = 0 then -1
      else Omega.State.issue_of st (Omega.State.at_depth st (depth - 1))
    in
    let bound = ref (max floor (Omega.State.nops st)) in
    let remaining_on = env.cp_remaining in
    Array.fill remaining_on 0 (Array.length remaining_on) 0;
    for v = 0 to env.n - 1 do
      if not (Omega.State.is_scheduled st v) then begin
        if env.forced_pipe.(v) >= 0 then
          remaining_on.(env.forced_pipe.(v)) <-
            remaining_on.(env.forced_pipe.(v)) + 1;
        let e = ref (last_issue + 1) in
        Array.iter
          (fun u ->
            let avail =
              if Omega.State.is_scheduled st u then
                Omega.State.issue_of st u + env.min_lat.(u)
              else est.(u) + env.min_lat.(u)
            in
            if avail > !e then e := avail)
          env.preds.(v);
        est.(v) <- !e;
        let b = !e + env.tail.(v) - (env.n - 1) in
        if b > !bound then bound := b
      end
    done;
    (* Resource component: the R_p unscheduled operations forced onto pipe
       p each need [enqueue_p] ticks after the previous enqueue, starting
       from the pipe's current last use (or from the next issue slot when
       the pipe is still untouched). *)
    Array.iteri
      (fun p r ->
        if r > 0 then begin
          let last = Omega.State.last_use st p in
          let finish =
            if last > min_int / 4 then last + (r * env.pipe_enqueue.(p))
            else last_issue + 1 + ((r - 1) * env.pipe_enqueue.(p))
          in
          let b = finish - (env.n - 1) in
          if b > !bound then bound := b
        end)
      remaining_on;
    !bound
  end

let bound_value env options ~floor =
  match options.lower_bound with
  | Partial_nops -> max floor (Omega.State.nops env.st)
  | Critical_path -> critical_path_bound env ~floor

(* Normalized state fingerprint for the dominance check, written into
   [env.fp].  All ticks are expressed relative to [base], the earliest
   tick the next instruction could issue at ([issue(last) + 1], or 0 for
   the empty prefix), so prefixes reaching the same scheduled set at
   different absolute ticks but with the same *shape* compare equal.

     fp.(0)                = mu(Phi), the NOPs accumulated so far
     fp.(1 + p)            = per-pipe last-use tick relative to base,
                             clamped below at -enqueue_p: anything
                             earlier imposes no conflict constraint on
                             issues >= base, so distinguishing such
                             values would only weaken the dominance test
     fp.(1 + npipes + v)   = residual latency of the value produced at
                             position v — how many ticks past base until
                             it becomes available — clamped at 0, and 0
                             whenever v is unscheduled or every consumer
                             of v is already scheduled (then it can no
                             longer stall anything)

   Which components are "relevant" (scheduled producers with unscheduled
   consumers; pipes) is a function of the scheduled *set* alone, so two
   fingerprints for the same key are always componentwise comparable. *)
let fingerprint env =
  let st = env.st in
  let depth = Omega.State.depth st in
  let base =
    if depth = 0 then 0
    else Omega.State.issue_of st (Omega.State.at_depth st (depth - 1)) + 1
  in
  let fp = env.fp in
  fp.(0) <- Omega.State.nops st;
  let npipes = Array.length env.pipe_enqueue in
  for p = 0 to npipes - 1 do
    fp.(1 + p) <-
      max (Omega.State.last_use st p - base) (- env.pipe_enqueue.(p))
  done;
  (* A producer's residual is positive only when [issue + prod_latency >
     base], and prod_latency <= max_prod_lat; issue ticks are strictly
     increasing along the schedule stack, so every such producer sits in
     a suffix of the stack.  Zero the whole region with one fill and walk
     only that suffix — O(n/word + max_lat * succs) per node instead of a
     successor scan for all n positions. *)
  Array.fill fp (1 + npipes) env.n 0;
  let k = ref (depth - 1) in
  let live = ref true in
  while !live && !k >= 0 do
    let v = Omega.State.at_depth st !k in
    if Omega.State.issue_of st v + env.max_prod_lat <= base then live := false
    else begin
      let residual = Omega.State.avail_of st v - base in
      if residual > 0 then begin
        (* Plain loop, not [Array.iter]: runs per memoized node, and the
           closure would be one heap allocation per position per call. *)
        let succs = env.succs.(v) in
        let pending = ref false in
        for i = 0 to Array.length succs - 1 do
          if not (Omega.State.is_scheduled st succs.(i)) then pending := true
        done;
        if !pending then fp.(1 + npipes + v) <- residual
      end;
      decr k
    end
  done

(* Dominance cut over the transposition table.  Returns [true] when the
   current node may be pruned without affecting the reported optimum.

   Soundness: the key is the scheduled *set*, and legality of a suffix
   depends only on that set, so every completion available below the
   stored prefix B is also available below the current prefix A and vice
   versa.  The stored fingerprint dominating the current one
   componentwise means B had accumulated no more NOPs AND imposed
   constraints on the future (pipe last-uses, unconsumed producer
   availabilities, all relative to the next issue slot) that are no
   tighter than A's.  Omega is monotone in those constraints: relaxing
   any of them can only lower each suffix instruction's forced issue
   tick, hence each eta, hence the final NOP total.  So for every
   completion, B's total <= A's total: the best completion below A
   cannot beat the best below B.

   Under alpha-beta this composes, even though B's subtree may itself
   have been pruned: the incumbent only ever decreases, and both the
   lower bounds and this dominance cut only discard subtrees whose every
   completion is >= some schedule already found or still reachable.  By
   induction over the order nodes are closed, when B's subtree finished,
   either it had established incumbent <= (best completion below B) or
   the incumbent was already that good; either way the incumbent at any
   later point is <= best-below-B <= best-below-A, so pruning A loses
   nothing.  The same argument covers the equivalence prunings (they
   only drop schedules whose NOP totals are matched by a retained
   sibling) and the register-bounded search (Pressure's live/remaining
   state is a pure function of the scheduled set, so A and B admit the
   same feasible suffixes).  Curtailment aborts the whole search, so a
   wrongly-kept entry can at worst have made the curtailed prefix
   smaller — completed searches are unaffected.

   Misses store the current state; on a key match the entry is
   overwritten unconditionally, which is always sound (any stored,
   actually-explored state yields a valid dominance witness). *)
let memo_cut env =
  match env.memo_tbl with
  | None -> false
  | Some tbl ->
    let module Bitset = Pipesched_prelude.Bitset in
    let module Memo_table = Pipesched_prelude.Memo_table in
    fingerprint env;
    let hash = Bitset.hash env.sched_set in
    let key = Bitset.raw_words env.sched_set in
    let slot = Memo_table.find tbl ~hash key in
    if slot >= 0 && Memo_table.dominates tbl slot env.fp then begin
      env.memo_hits <- env.memo_hits + 1;
      true
    end
    else begin
      env.memo_misses <- env.memo_misses + 1;
      ignore
        (Memo_table.store tbl ~hash
           ~depth:(Omega.State.depth env.st)
           ~key ~value:env.fp
          : bool);
      false
    end

let maybe_activate_memo env options =
  if
    env.memo_tbl = None
    && options.memo.memo_enabled
    && env.n > 1
    && env.omega_calls >= options.memo.memo_activation
  then begin
    let tbl =
      match !(env.memo_cache) with
      | Some tbl ->
        (* Reuse the previous task's table; [clear] also resets its
           entry/eviction counters, so per-env stats stay per-task. *)
        Memo_table.clear tbl;
        tbl
      | None ->
        (* Start tiny and let the table double as entries land: searches
           that activate the memo but stay small (the common case under
           modest lambdas) never pay the full-capacity allocate-and-zero
           that used to make memo-on slower than memo-off. *)
        let tbl =
          Memo_table.create_growing ~initial:64
            ~capacity:options.memo.memo_capacity
            ~key_words:
              (Array.length
                 (Pipesched_prelude.Bitset.raw_words env.sched_set))
            ~value_words:(Array.length env.fp)
        in
        env.memo_cache := Some tbl;
        tbl
    in
    env.memo_tbl <- Some tbl
  end

(* Exclusive pruning limit: the tighter of this searcher's own best and
   the shared incumbent's gate (when parallel).  Reading the gate is one
   atomic load; staleness is sound — see Incumbent. *)
let prune_limit env =
  match env.inc_gate with
  | None -> env.best_nops
  | Some g ->
    let s = Incumbent.limit g ~task:env.task_index in
    if s < env.best_nops then s else env.best_nops

(* The search skeleton.  [push_candidates f pos] must invoke [f] once per
   distinct way of scheduling [pos] next (once for the single-pipe search;
   once per non-symmetric candidate pipe for the multi-pipe search), with
   the instruction pushed for the dynamic extent of the call.

   [start_depth]: the caller has already replayed a prefix of that length
   into the env (parallel subtree tasks); the search explores below it.
   [stop = (d, record)]: instead of descending past depth [d], call
   [record] with the prefix in place and backtrack — this enumerates the
   depth-[d] frontier (with the equivalence prunings applied), which is
   how the parallel driver builds its task set. *)
let dfs ?(start_depth = 0) ?stop env options ~push_candidates ~on_complete =
  let module Bitset = Pipesched_prelude.Bitset in
  (* Per-depth scratch, allocated once per search: a snapshot buffer for
     the ready set (as ranks, so snapshots come out in priority order)
     and, for the strong-equivalence pruning, a generation-stamped matrix
     of signature classes already expanded at this node (int probes; the
     signatures were interned in [make_env]).  Using [env.ready]
     incrementally replaces the old O(n) scan of [cand_order] at every
     node with a word-skipping walk over the ready positions only. *)
  let snapshot = Array.make_matrix (env.n + 1) (max env.n 1) 0 in
  let sig_rows = if options.strong_equivalence then env.n + 1 else 1 in
  let sig_seen = Array.make_matrix sig_rows (max env.nsigs 1) 0 in
  let sig_gen = ref 0 in
  let stop_depth, stop_record =
    match stop with Some (d, f) -> (d, f) | None -> (-1, ignore)
  in
  (* Per-depth slots for the candidate being expanded plus one callback
     closure per depth ([cbs], filled below): expanding a node allocates
     nothing.  An inline callback would capture the loop variables and
     cost one heap allocation per Omega call — enough to dominate minor
     GC, which at [search_jobs > 1] means stop-the-world barriers across
     every worker domain. *)
  let cb_rank = Array.make (env.n + 1) 0 in
  let cb_pos = Array.make (env.n + 1) 0 in
  let cbs = Array.make (env.n + 1) ignore in
  let rec go depth =
    if depth = env.n then begin
      env.schedules_completed <- env.schedules_completed + 1;
      let nops = Omega.State.nops env.st in
      if
        nops < env.best_nops
        && (match env.inc_gate with
           | None -> true
           | Some g -> Incumbent.admits g ~nops ~task:env.task_index)
      then begin
        env.best_nops <- nops;
        env.improvements <- env.improvements + 1;
        on_complete ()
      end
    end
    else if depth = stop_depth then stop_record ()
    else if depth > start_depth && memo_cut env then ()
    else begin
      (* The ready set is restored after each child, so this snapshot is
         exactly the set of positions the old full scan would accept. *)
      let buf = snapshot.(depth) in
      let count = Bitset.to_buffer env.ready buf in
      let tried_free = ref false in
      let node_gen =
        if options.strong_equivalence then begin
          incr sig_gen;
          !sig_gen
        end
        else 0
      in
      for i = 0 to count - 1 do
        let rk = buf.(i) in
        let pos = env.cand_order.(rk) in
        let skip =
          (options.equivalence && env.is_free.(pos) && !tried_free)
          || (options.strong_equivalence
              && sig_seen.(depth).(env.signature.(pos)) = node_gen)
        in
        if not skip then begin
          if env.is_free.(pos) then tried_free := true;
          if options.strong_equivalence then
            sig_seen.(depth).(env.signature.(pos)) <- node_gen;
          cb_rank.(depth) <- rk;
          cb_pos.(depth) <- pos;
          push_candidates pos cbs.(depth)
        end
      done
    end
  and expand depth () =
    (* The candidate for this depth is pushed for the extent of this
       callback (its rank/position are in the per-depth slots): drop it
       from the ready set (and add it to the scheduled-set key) and admit
       any successor whose last unscheduled predecessor it was, then
       undo.  Plain loops over the successors, not [Array.iter]: each
       would allocate a closure per expanded node. *)
    let rk = cb_rank.(depth) in
    let pos = cb_pos.(depth) in
    let succs = env.succs.(pos) in
    Bitset.remove env.ready rk;
    Bitset.add env.sched_set pos;
    for j = 0 to Array.length succs - 1 do
      let s = succs.(j) in
      if Omega.State.is_ready env.st s then Bitset.add env.ready env.rank.(s)
    done;
    (if not options.alpha_beta then go (depth + 1)
     else begin
       (* The parent's bound is an admissible floor for every child
          (completions below a child are a subset of those below the
          parent), so when the incumbent has improved past it since the
          parent was expanded, all remaining siblings fail without
          recomputation. *)
       let parent_bound = env.cp_bound.(depth) in
       if parent_bound < prune_limit env then begin
         let b = bound_value env options ~floor:parent_bound in
         env.cp_bound.(depth + 1) <- b;
         if b < prune_limit env then go (depth + 1)
       end
     end);
    for j = 0 to Array.length succs - 1 do
      let s = succs.(j) in
      if Omega.State.is_ready env.st s then Bitset.remove env.ready env.rank.(s)
    done;
    Bitset.remove env.sched_set pos;
    Bitset.add env.ready rk
  in
  for d = 0 to env.n do
    cbs.(d) <- expand d
  done;
  if start_depth = 0 then
    (* A floor of 0 NOPs is trivially admissible for the root; for a
       replayed prefix the caller has filled [cp_bound.(0..start_depth)]. *)
    env.cp_bound.(0) <- 0;
  go start_depth

(* One Omega call: check the combined budget (lambda / deadline / token),
   raising [Curtailed] once any limit trips — the search then unwinds and
   reports the incumbent.  The check precedes the spend, matching the
   paper's "curtail when Lambda reaches lambda" exactly. *)
let count_call env options =
  (match Budget.exhausted env.budget with
   | Some _ -> raise Curtailed
   | None -> ());
  Budget.spend env.budget;
  env.omega_calls <- env.omega_calls + 1;
  maybe_activate_memo env options

let stats_of env ~completed =
  let entries, evictions =
    match env.memo_tbl with
    | None -> (0, 0)
    | Some tbl -> (Memo_table.entries tbl, Memo_table.evictions tbl)
  in
  let status =
    if completed then Budget.Complete
    else
      (* [expiry] re-evaluates every limit without the strided deadline
         gate, so the reported reason is the limit that actually tripped
         (a deadline that passed between strided clock reads is no longer
         misreported as lambda). *)
      match Budget.expiry env.budget with
      | Some s -> s
      | None ->
        (* Unreachable when the search itself stopped us (Curtailed is
           only raised after a limit trips, which is sticky); kept for
           unwinds by foreign exceptions. *)
        Budget.Curtailed_lambda
  in
  {
    omega_calls = env.omega_calls;
    schedules_completed = env.schedules_completed;
    improvements = env.improvements;
    completed;
    status;
    elapsed_s = Budget.elapsed_s env.budget;
    memo_hits = env.memo_hits;
    memo_misses = env.memo_misses;
    memo_entries = entries;
    memo_evictions = evictions;
  }

(* ------------------------------------------------------------------ *)
(* Intra-block parallel branch-and-bound.                              *)
(*                                                                     *)
(* The driver below parallelizes one search across domains in three    *)
(* stages:                                                             *)
(*                                                                     *)
(*   1. a serial PROBE — the unmodified serial search, capped at       *)
(*      [parallel_activation] Omega calls.  Easy blocks finish here    *)
(*      and take the exact serial path (same result, same stats);      *)
(*   2. on lambda-cap expiry, a serial ENUMERATION of the depth-d      *)
(*      frontier (equivalence prunings applied, bounds and memo off),  *)
(*      deepening d until enough subtree tasks exist.  The task list   *)
(*      is in lexicographic order and independent of the job count;    *)
(*   3. a WORKER TEAM: each worker pulls tasks off an atomic counter   *)
(*      (in a strided, diversified order — pure wall-clock heuristic), *)
(*      replays the prefix into a fresh env and runs [dfs] below it,   *)
(*      sharing the incumbent through [Incumbent] and drawing lambda   *)
(*      from a shared [Budget.pool].                                   *)
(*                                                                     *)
(* Determinism of the reported result (DESIGN.md §9 for the full       *)
(* argument): a completed search reports the seed when nothing beats   *)
(* it, else the lexicographically least optimal completion — the       *)
(* prunings keep the lex-least representative of every class they      *)
(* collapse, a dominating memo entry always admits an equal-or-better  *)
(* lex-earlier completion, and the Incumbent rank protocol resolves    *)
(* equal-NOP ties toward the lex-earlier task — so serial and parallel *)
(* agree byte-for-byte at any job count.  Stats other than the NOP     *)
(* count (calls, completions, memo counters) aggregate worker          *)
(* nondeterminism and DO vary run to run at [search_jobs > 1].         *)
(* ------------------------------------------------------------------ *)

(* Per-entry-point adapter the driver drives a search through: a fresh
   env, the candidate generator, a prefix-replay step, the pipe choices
   of the current prefix (for task capture), and the payload to snapshot
   when a completion wins. *)
type 'a kit = {
  kenv : search_env;
  kpush : int -> (unit -> unit) -> unit;
  kstep : int -> int option -> unit;
  kpipes : int -> int option array;
  kpayload : unit -> 'a;
}

type task = { t_order : int array; t_pipes : int option array }

(* Stats are summed per-env as each env is retired (probe, enumeration
   passes, every worker task); worker accs are merged after the join. *)
type stats_acc = {
  mutable a_calls : int;
  mutable a_completed : int;
  mutable a_improvements : int;
  mutable a_hits : int;
  mutable a_misses : int;
  mutable a_entries : int;
  mutable a_evictions : int;
}

let fresh_acc () =
  {
    a_calls = 0;
    a_completed = 0;
    a_improvements = 0;
    a_hits = 0;
    a_misses = 0;
    a_entries = 0;
    a_evictions = 0;
  }

let acc_env acc env =
  acc.a_calls <- acc.a_calls + env.omega_calls;
  acc.a_completed <- acc.a_completed + env.schedules_completed;
  acc.a_improvements <- acc.a_improvements + env.improvements;
  acc.a_hits <- acc.a_hits + env.memo_hits;
  acc.a_misses <- acc.a_misses + env.memo_misses;
  match env.memo_tbl with
  | None -> ()
  | Some tbl ->
    (* Counters are per-task: activation [clear]s the cached table. *)
    acc.a_entries <- acc.a_entries + Memo_table.entries tbl;
    acc.a_evictions <- acc.a_evictions + Memo_table.evictions tbl

let acc_merge acc other =
  acc.a_calls <- acc.a_calls + other.a_calls;
  acc.a_completed <- acc.a_completed + other.a_completed;
  acc.a_improvements <- acc.a_improvements + other.a_improvements;
  acc.a_hits <- acc.a_hits + other.a_hits;
  acc.a_misses <- acc.a_misses + other.a_misses;
  acc.a_entries <- acc.a_entries + other.a_entries;
  acc.a_evictions <- acc.a_evictions + other.a_evictions

let status_rank = function
  | Budget.Complete -> 0
  | Budget.Curtailed_deadline -> 1
  | Budget.Curtailed_lambda -> 2
  | Budget.Cancelled -> 3

(* Enough tasks for dynamic balance across a few workers; the frontier
   is deepened (up to the cap) until this many subtrees exist. *)
let split_task_target = 64
let split_depth_cap = 8

(* The order workers pull tasks in: a strided interleave of the
   lex-ordered task list, so early claims sample the whole frontier
   instead of its lex-first corner.  Diversification finds a strong
   incumbent sooner (the classic branch-and-bound acceleration), which
   only changes wall time — the Incumbent rank protocol pins the
   reported result to the lex order regardless. *)
let interleave n =
  let bands = if n < 16 then max n 1 else 16 in
  let perm = Array.make (max n 1) 0 in
  let j = ref 0 in
  for b = 0 to bands - 1 do
    let k = ref b in
    while !k < n do
      perm.(!j) <- !k;
      incr j;
      k := !k + bands
    done
  done;
  perm

type 'a par_result = { pr_best : (int * 'a) option; pr_stats : stats }

let par_search (type a) ~options ~n
    ~(mk_kit :
        task_index:int ->
        budget:Budget.t ->
        memo_cache:Memo_table.t option ref ->
        gate:Incumbent.gate option ->
        a kit) ~(seed : (int * a) option) : a par_result =
  let pool = Budget.pool ~calls:options.lambda in
  let base_limits =
    {
      Budget.calls = None;
      deadline_s = options.deadline_s;
      cancel = options.cancel;
    }
  in
  let acc = fresh_acc () in
  let finish ~completed ~status ~elapsed best =
    {
      pr_best = best;
      pr_stats =
        {
          omega_calls = acc.a_calls;
          schedules_completed = acc.a_completed;
          improvements = acc.a_improvements;
          completed;
          status;
          elapsed_s = elapsed;
          memo_hits = acc.a_hits;
          memo_misses = acc.a_misses;
          memo_entries = acc.a_entries;
          memo_evictions = acc.a_evictions;
        };
    }
  in
  (* Stage 1: serial probe, capped at [parallel_activation] calls but
     drawing them from the shared pool so they count against lambda. *)
  let probe_budget =
    Budget.start ~pool
      {
        base_limits with
        Budget.calls = Some (max 0 options.parallel_activation);
      }
  in
  let probe =
    mk_kit ~task_index:(-1) ~budget:probe_budget ~memo_cache:(ref None)
      ~gate:None
  in
  (match seed with
   | Some (nops, _) -> probe.kenv.best_nops <- nops
   | None -> ());
  let probe_best = ref None in
  let probe_result =
    match
      dfs probe.kenv options ~push_candidates:probe.kpush
        ~on_complete:(fun () ->
          probe_best := Some (probe.kenv.best_nops, probe.kpayload ()))
    with
    | () -> `Done
    | exception Curtailed -> (
      match Budget.expiry probe_budget with
      | Some Budget.Curtailed_lambda when not (Budget.pool_exhausted pool)
        ->
        (* The probe's private activation cap tripped, not the search's
           own limits: this block is hard — go parallel. *)
        `Escalate
      | Some s -> `Stopped s
      | None -> `Stopped Budget.Curtailed_lambda)
  in
  acc_env acc probe.kenv;
  let best_or_seed () =
    match !probe_best with Some _ as b -> b | None -> seed
  in
  let elapsed () = Budget.elapsed_s probe_budget in
  (* Workers' deadline budgets start their own clocks, so give them the
     time remaining, not the original span.  Reads the clock iff a
     deadline is set (determinism contract preserved). *)
  let remaining_deadline () =
    match options.deadline_s with
    | None -> None
    | Some d -> Some (Float.max 0.0 (d -. Budget.elapsed_s probe_budget))
  in
  match probe_result with
  | `Done ->
    finish ~completed:true ~status:Budget.Complete ~elapsed:(elapsed ())
      (best_or_seed ())
  | `Stopped s ->
    finish ~completed:false ~status:s ~elapsed:(elapsed ()) (best_or_seed ())
  | `Escalate ->
    let inc = Incumbent.create () in
    (match seed with
     | Some (nops, p) ->
       ignore (Incumbent.submit inc ~nops ~task:(-1) (fun () -> p) : bool)
     | None -> ());
    (match !probe_best with
     | Some (nops, p) ->
       ignore (Incumbent.submit inc ~nops ~task:(-1) (fun () -> p) : bool)
     | None -> ());
    (* Stage 2: enumerate the depth-d frontier.  Equivalence prunings on
       (they define which subtrees exist at all — same classes the
       serial search explores); alpha-beta and memo off (the frontier
       must not depend on bound or table dynamics, so the task list is a
       pure function of the block).  Deepen until enough tasks exist. *)
    let enum_options =
      {
        options with
        alpha_beta = false;
        memo = { options.memo with memo_enabled = false };
      }
    in
    let enum_limits =
      { base_limits with Budget.deadline_s = remaining_deadline () }
    in
    let tasks = ref [] in
    let ntasks = ref 0 in
    let enum_status = ref None in
    let depth_cap = max 1 (min split_depth_cap (n - 1)) in
    let enumerate d =
      tasks := [];
      ntasks := 0;
      let budget = Budget.start ~pool enum_limits in
      let kit =
        mk_kit ~task_index:(-1) ~budget ~memo_cache:(ref None) ~gate:None
      in
      let record () =
        tasks :=
          { t_order = Omega.State.prefix kit.kenv.st; t_pipes = kit.kpipes d }
          :: !tasks;
        incr ntasks
      in
      let ok =
        match
          dfs kit.kenv enum_options ~stop:(d, record)
            ~push_candidates:kit.kpush ~on_complete:ignore
        with
        | () -> true
        | exception Curtailed ->
          enum_status :=
            Some
              (match Budget.expiry budget with
               | Some s -> s
               | None -> Budget.Curtailed_lambda);
          false
      in
      acc_env acc kit.kenv;
      ok
    in
    let d = ref 1 in
    let ok = ref (enumerate !d) in
    while !ok && !ntasks < split_task_target && !d < depth_cap do
      incr d;
      ok := enumerate !d
    done;
    if not !ok then
      finish ~completed:false
        ~status:
          (match !enum_status with
           | Some s -> s
           | None -> Budget.Curtailed_lambda)
        ~elapsed:(elapsed ()) (Incumbent.best inc)
    else begin
      let task_arr = Array.of_list (List.rev !tasks) in
      let nt = Array.length task_arr in
      if nt = 0 then
        (* No legal depth-1 extension at all (register-bounded search):
           the tree below the root is empty, so the probe saw it all. *)
        finish ~completed:true ~status:Budget.Complete ~elapsed:(elapsed ())
          (Incumbent.best inc)
      else begin
        (* Stage 3: the worker team. *)
        let jobs = max 2 options.search_jobs in
        let team_limits =
          { base_limits with Budget.deadline_s = remaining_deadline () }
        in
        let perm = interleave nt in
        let next = Atomic.make 0 in
        let gate = Incumbent.gate inc in
        let waccs = Array.init jobs (fun _ -> fresh_acc ()) in
        let wstatus = Array.make jobs Budget.Complete in
        (* Replay a task prefix into a fresh env, mirroring the
           bookkeeping [dfs] does around each push.  Returns false when
           the prefix's own bound already fails against the incumbent —
           the whole subtree is then pruned without a search. *)
        let replay kit task =
          let env = kit.kenv in
          env.cp_bound.(0) <- 0;
          let d = Array.length task.t_order in
          let ok = ref true in
          let i = ref 0 in
          while !ok && !i < d do
            let pos = task.t_order.(!i) in
            kit.kstep pos task.t_pipes.(!i);
            Pipesched_prelude.Bitset.remove env.ready env.rank.(pos);
            Pipesched_prelude.Bitset.add env.sched_set pos;
            Array.iter
              (fun s ->
                if Omega.State.is_ready env.st s then
                  Pipesched_prelude.Bitset.add env.ready env.rank.(s))
              env.succs.(pos);
            (if options.alpha_beta then begin
               let b = bound_value env options ~floor:env.cp_bound.(!i) in
               env.cp_bound.(!i + 1) <- b;
               if b >= prune_limit env then ok := false
             end);
            incr i
          done;
          !ok
        in
        Pool.team ~jobs (fun w ->
            let budget = Budget.start ~pool team_limits in
            let memo_cache = ref None in
            let wacc = waccs.(w) in
            let rec loop () =
              let k = Atomic.fetch_and_add next 1 in
              if k < nt then begin
                let ti = perm.(k) in
                let task = task_arr.(ti) in
                let kit =
                  mk_kit ~task_index:ti ~budget ~memo_cache
                    ~gate:(Some gate)
                in
                let curtailed =
                  match
                    if replay kit task then
                      dfs ~start_depth:(Array.length task.t_order) kit.kenv
                        options ~push_candidates:kit.kpush
                        ~on_complete:(fun () ->
                          ignore
                            (Incumbent.submit inc
                               ~nops:(Omega.State.nops kit.kenv.st)
                               ~task:ti
                               (fun () -> kit.kpayload ())
                              : bool))
                  with
                  | () -> false
                  | exception Curtailed -> true
                in
                acc_env wacc kit.kenv;
                if curtailed then
                  wstatus.(w) <-
                    (match Budget.expiry budget with
                     | Some s -> s
                     | None -> Budget.Curtailed_lambda)
                else loop ()
              end
            in
            loop ());
        Array.iter (acc_merge acc) waccs;
        let completed = Array.for_all Budget.is_complete wstatus in
        let status =
          if completed then Budget.Complete
          else
            Array.fold_left
              (fun a s -> if status_rank s > status_rank a then s else a)
              Budget.Complete wstatus
        in
        finish ~completed ~status ~elapsed:(elapsed ()) (Incumbent.best inc)
      end
    end

(* Below this size the enumeration/team overhead cannot pay off; the
   serial path also keeps the parity tests' tiny DAGs trivially equal. *)
let parallel_worthwhile options n = options.search_jobs > 1 && n > 4

let schedule ?(options = default_options) ?entry machine dag =
  let seed_order = List_sched.schedule options.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  if not (parallel_worthwhile options (Dag.length dag)) then begin
    let env = make_env ?entry machine dag options in
    env.best_nops <- initial.nops;
    let best = ref initial in
    let push_candidates pos k =
      count_call env options;
      Omega.State.push env.st pos;
      k ();
      Omega.State.pop env.st
    in
    let on_complete () = best := Omega.State.complete_greedily env.st in
    let completed =
      match dfs env options ~push_candidates ~on_complete with
      | () -> true
      | exception Curtailed -> false
    in
    { best = !best; initial; stats = stats_of env ~completed }
  end
  else begin
    let mk_kit ~task_index ~budget ~memo_cache ~gate =
      let env =
        make_env ?entry ~budget ~memo_cache ?gate ~task_index machine dag
          options
      in
      {
        kenv = env;
        kpush =
          (fun pos k ->
            count_call env options;
            Omega.State.push env.st pos;
            k ();
            Omega.State.pop env.st);
        kstep =
          (fun pos _pipe ->
            count_call env options;
            Omega.State.push env.st pos);
        kpipes = (fun d -> Array.make d None);
        kpayload = (fun () -> Omega.State.complete_greedily env.st);
      }
    in
    let p =
      par_search ~options ~n:(Dag.length dag) ~mk_kit
        ~seed:(Some (initial.nops, initial))
    in
    let best = match p.pr_best with Some (_, b) -> b | None -> initial in
    { best; initial; stats = p.pr_stats }
  end

(* One serial search attached to an external shared incumbent — the B&B
   side of the portfolio racer (see Portfolio), with a peer backend
   submitting to and pruning against the same incumbent.  The seed goes
   in at rank [-1]; improvements are published at [rank] as found; the
   gate tightens pruning whenever the peer publishes first.  A completed
   run proves "no schedule beats the shared bound", so the claim is
   [min own-best shared-bound] — the witness schedule may live on the
   peer's side of the incumbent, not here. *)
let schedule_shared ?(options = default_options) ?entry ~shared ~rank machine
    dag =
  let seed_order = List_sched.schedule options.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  ignore
    (Incumbent.submit shared ~nops:initial.nops ~task:(-1) (fun () -> initial)
      : bool);
  let gate = Incumbent.gate shared in
  let env = make_env ?entry ~gate ~task_index:rank machine dag options in
  env.best_nops <- initial.nops;
  let best = ref initial in
  let push_candidates pos k =
    count_call env options;
    Omega.State.push env.st pos;
    k ();
    Omega.State.pop env.st
  in
  let on_complete () =
    let r = Omega.State.complete_greedily env.st in
    best := r;
    ignore
      (Incumbent.submit shared ~nops:r.nops ~task:rank (fun () -> r) : bool)
  in
  let completed =
    match dfs env options ~push_candidates ~on_complete with
    | () -> true
    | exception Curtailed -> false
  in
  let proved =
    if not completed then None
    else
      Some
        (match Incumbent.bound gate with
         | Some (v, _) -> min v env.best_nops
         | None -> env.best_nops)
  in
  ({ best = !best; initial; stats = stats_of env ~completed }, proved)

let schedule_multi ?(options = default_options) ?entry machine dag =
  let n = Dag.length dag in
  let blk = Dag.block dag in
  let seed_order = List_sched.schedule options.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  let default_choice =
    Array.init n (fun pos ->
        Machine.default_pipe machine (Block.tuple_at blk pos).Tuple.op)
  in
  let candidates_of =
    Array.init n (fun pos ->
        Machine.candidates machine (Block.tuple_at blk pos).Tuple.op)
  in
  let npipes = Machine.pipe_count machine in
  (* Dense id per distinct (latency, enqueue) pair, so the symmetric-pipe
     pruning below keys on a small int instead of a nested tuple. *)
  let param_id = Array.make (max npipes 1) 0 in
  let nparams = ref 0 in
  let param_seen = Hashtbl.create 8 in
  for p = 0 to npipes - 1 do
    let pipe = Machine.pipe machine p in
    let key = (pipe.Pipe.latency, pipe.Pipe.enqueue) in
    match Hashtbl.find_opt param_seen key with
    | Some id -> param_id.(p) <- id
    | None ->
      param_id.(p) <- !nparams;
      Hashtbl.add param_seen key !nparams;
      incr nparams
  done;
  let enqueue_of =
    Array.init (max npipes 1) (fun p ->
        if p < npipes then (Machine.pipe machine p).Pipe.enqueue else 0)
  in
  (* One search instance: env + candidate generator + its choice array.
     Shared by the serial path and by every parallel kit. *)
  let mk_parts ?budget ?memo_cache ?gate ?task_index () =
    let env =
      make_env ?entry ~multi:true ?budget ?memo_cache ?gate ?task_index
        machine dag options
    in
    let choice = Array.copy default_choice in
    (* Per-depth scratch for the symmetric-pipe pruning: keys already
       tried at this choice point, as ints, linear-scanned (candidate
       lists are a handful of pipes at most). *)
    let tried_buf = Array.make_matrix (n + 1) (max npipes 1) 0 in
    let push_candidates pos k =
      match candidates_of.(pos) with
      | [] ->
        count_call env options;
        Omega.State.push_on env.st pos ~pipe:None;
        choice.(pos) <- None;
        k ();
        Omega.State.pop env.st
      | pids ->
        (* Symmetric-pipe pruning: two candidate pipes with equal
           parameters and equal effective last-use tick lead to identical
           subtrees.  The key is one int, [(clamped last-use) * nparams +
           param class]: a last use at or below [-enqueue] imposes no
           conflict constraint on any issue tick >= 0, so all such values
           collapse to [-enqueue] — never less pruning than the exact
           tick, still only collapsing identical subtrees. *)
        let buf = tried_buf.(Omega.State.depth env.st) in
        let nseen = ref 0 in
        List.iter
          (fun p ->
            let enq = enqueue_of.(p) in
            let lu = Omega.State.last_use env.st p in
            let lc = if lu < -enq then -enq else lu in
            let key = (lc * !nparams) + param_id.(p) in
            let dup = ref false in
            for i = 0 to !nseen - 1 do
              if buf.(i) = key then dup := true
            done;
            if not !dup then begin
              buf.(!nseen) <- key;
              incr nseen;
              count_call env options;
              Omega.State.push_on env.st pos ~pipe:(Some p);
              choice.(pos) <- Some p;
              k ();
              Omega.State.pop env.st
            end)
          pids
    in
    (env, push_candidates, choice)
  in
  if not (parallel_worthwhile options n) then begin
    let env, push_candidates, choice = mk_parts () in
    env.best_nops <- initial.nops;
    let best = ref initial in
    let best_choice = ref (Array.copy default_choice) in
    let on_complete () =
      best := Omega.State.complete_greedily env.st;
      best_choice := Array.copy choice
    in
    let completed =
      match dfs env options ~push_candidates ~on_complete with
      | () -> true
      | exception Curtailed -> false
    in
    ({ best = !best; initial; stats = stats_of env ~completed }, !best_choice)
  end
  else begin
    let mk_kit ~task_index ~budget ~memo_cache ~gate =
      let env, push_candidates, choice =
        mk_parts ~budget ~memo_cache ?gate ~task_index ()
      in
      {
        kenv = env;
        kpush = push_candidates;
        kstep =
          (fun pos pipe ->
            count_call env options;
            Omega.State.push_on env.st pos ~pipe;
            choice.(pos) <- pipe);
        kpipes =
          (fun d ->
            Array.init d (fun i -> choice.(Omega.State.at_depth env.st i)));
        kpayload =
          (fun () -> (Omega.State.complete_greedily env.st, Array.copy choice));
      }
    in
    let p =
      par_search ~options ~n ~mk_kit
        ~seed:(Some (initial.nops, (initial, Array.copy default_choice)))
    in
    let best, best_choice =
      match p.pr_best with
      | Some (_, bc) -> bc
      | None -> (initial, Array.copy default_choice)
    in
    ({ best; initial; stats = p.pr_stats }, best_choice)
  end

(* Incremental register-demand bookkeeping for the bounded search.  A
   value is live from its definition until its last remaining consumer is
   scheduled; a definition transiently demands one more register
   (read-then-write, matching Regalloc.Alloc). *)
module Pressure = struct
  type t = {
    uses : (int * int) array array;
        (* per position: (producer position, multiplicity) it reads;
           flattened for the per-push/pop traversals of the search *)
    produces : bool array;
    consumer_count : int array; (* total reads of each position's value *)
    remaining : int array;      (* mutable during search *)
    mutable live : int;
  }

  let create dag =
    let blk = Dag.block dag in
    let n = Dag.length dag in
    let consumer_count = Array.make n 0 in
    let uses =
      Array.init n (fun pos ->
          let refs =
            List.map
              (fun id -> Block.pos_of_id blk id)
              (Tuple.value_refs (Block.tuple_at blk pos))
          in
          let tbl = Hashtbl.create 4 in
          List.iter
            (fun u ->
              Hashtbl.replace tbl u
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u)))
            refs;
          let a =
            Array.of_list (Hashtbl.fold (fun u m acc -> (u, m) :: acc) tbl [])
          in
          (* Monomorphic: producer positions are distinct Hashtbl keys,
             so the first component alone orders the array. *)
          Array.sort (fun ((u1 : int), _) ((u2 : int), _) -> compare u1 u2) a;
          a)
    in
    Array.iter
      (fun pairs ->
        Array.iter
          (fun (u, m) -> consumer_count.(u) <- consumer_count.(u) + m)
          pairs)
      uses;
    {
      uses;
      produces =
        Array.init n (fun pos ->
            Tuple.produces_value (Block.tuple_at blk pos));
      consumer_count;
      remaining = Array.copy consumer_count;
      live = 0;
    }

  (* Register demand if [pos] were scheduled next. *)
  let demand p pos =
    let deaths =
      Array.fold_left
        (fun acc (u, m) -> if p.remaining.(u) = m then acc + 1 else acc)
        0 p.uses.(pos)
    in
    p.live - deaths + (if p.produces.(pos) then 1 else 0)

  let push p pos =
    Array.iter
      (fun (u, m) ->
        if p.remaining.(u) = m then p.live <- p.live - 1;
        p.remaining.(u) <- p.remaining.(u) - m)
      p.uses.(pos);
    if p.produces.(pos) && p.consumer_count.(pos) > 0 then
      p.live <- p.live + 1

  let pop p pos =
    if p.produces.(pos) && p.consumer_count.(pos) > 0 then
      p.live <- p.live - 1;
    Array.iter
      (fun (u, m) ->
        p.remaining.(u) <- p.remaining.(u) + m;
        if p.remaining.(u) = m then p.live <- p.live + 1)
      p.uses.(pos)
end

let schedule_bounded ?(options = default_options) ~registers machine dag =
  if registers < 1 then
    invalid_arg "Optimal.schedule_bounded: registers must be >= 1";
  let seed_order = List_sched.schedule options.seed dag in
  (* The seed is only a reference point, never an incumbent: it may
     violate the register bound.  Evaluating it is pure waste when the
     search comes up empty, so force it only on success. *)
  let initial = lazy (Omega.evaluate machine dag ~order:seed_order) in
  let mk_parts ?budget ?memo_cache ?gate ?task_index () =
    let env =
      make_env ?budget ?memo_cache ?gate ?task_index machine dag options
    in
    let pressure = Pressure.create dag in
    let push_candidates pos k =
      if Pressure.demand pressure pos <= registers then begin
        count_call env options;
        Omega.State.push env.st pos;
        Pressure.push pressure pos;
        k ();
        Pressure.pop pressure pos;
        Omega.State.pop env.st
      end
    in
    (env, push_candidates, pressure)
  in
  if not (parallel_worthwhile options (Dag.length dag)) then begin
    let env, push_candidates, _pressure = mk_parts () in
    let best = ref None in
    let on_complete () =
      best := Some (Omega.State.complete_greedily env.st)
    in
    let completed =
      match dfs env options ~push_candidates ~on_complete with
      | () -> true
      | exception Curtailed -> false
    in
    let stats = stats_of env ~completed in
    match !best with
    | Some best -> Ok { best; initial = Lazy.force initial; stats }
    | None -> Error ()
  end
  else begin
    let mk_kit ~task_index ~budget ~memo_cache ~gate =
      let env, push_candidates, pressure =
        mk_parts ~budget ~memo_cache ?gate ~task_index ()
      in
      {
        kenv = env;
        kpush = push_candidates;
        kstep =
          (fun pos _pipe ->
            (* Prefixes come from the register-feasible enumeration, so
               the demand gate was already applied to every step. *)
            count_call env options;
            Omega.State.push env.st pos;
            Pressure.push pressure pos);
        kpipes = (fun d -> Array.make d None);
        kpayload = (fun () -> Omega.State.complete_greedily env.st);
      }
    in
    let p = par_search ~options ~n:(Dag.length dag) ~mk_kit ~seed:None in
    match p.pr_best with
    | Some (_, best) ->
      Ok { best; initial = Lazy.force initial; stats = p.pr_stats }
    | None -> Error ()
  end

let verify_optimal machine dag (outcome : outcome) =
  let r = Baselines.legal_only_search machine dag in
  r.Baselines.complete && r.Baselines.best.Omega.nops = outcome.best.Omega.nops
