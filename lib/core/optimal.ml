open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Budget = Pipesched_prelude.Budget

type lower_bound = Partial_nops | Critical_path

type memo_options = {
  memo_enabled : bool;
  memo_capacity : int;
  memo_activation : int;
}

type options = {
  lambda : int;
  deadline_s : float option;
  cancel : Budget.token option;
  seed : List_sched.heuristic;
  equivalence : bool;
  strong_equivalence : bool;
  alpha_beta : bool;
  lower_bound : lower_bound;
  memo : memo_options;
}

let default_memo =
  { memo_enabled = true; memo_capacity = 4_096; memo_activation = 256 }

let default_options =
  {
    lambda = 100_000;
    deadline_s = None;
    cancel = None;
    seed = List_sched.Max_distance;
    equivalence = true;
    strong_equivalence = false;
    alpha_beta = true;
    lower_bound = Partial_nops;
    memo = default_memo;
  }

type stats = {
  omega_calls : int;
  schedules_completed : int;
  improvements : int;
  completed : bool;
  status : Budget.status;
  elapsed_s : float;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
  memo_evictions : int;
}

type outcome = { best : Omega.result; initial : Omega.result; stats : stats }

exception Curtailed

(* Shared machinery between the single-pipe and multi-pipe searches. *)
type search_env = {
  n : int;
  st : Omega.State.t;
  cand_order : int array;
  rank : int array;                (* inverse of cand_order *)
  ready : Pipesched_prelude.Bitset.t;
      (* ranks of the currently ready positions, maintained
         incrementally by [dfs] as instructions are pushed and popped *)
  preds : int array array;         (* Dag adjacency, flattened *)
  succs : int array array;
  is_free : bool array;
  signature : (int * int array * int array) array;
  (* Critical-path bound ingredients (admissible for any pipe choice). *)
  min_lat : int array;
  tail : int array;
  (* Resource-bound ingredients: the forced pipeline of each position
     (-1 when resource-free or when several candidates exist — such
     operations contribute nothing, keeping the bound admissible for the
     multi-pipe search too), and each pipeline's enqueue time. *)
  forced_pipe : int array;
  pipe_enqueue : int array;
  dag : Dag.t;
  (* Dominance-memoization state: the scheduled-set key (maintained
     incrementally by [dfs]), the normalized-fingerprint scratch, and the
     transposition table itself (created lazily once the search has done
     [memo_activation] Omega calls, so tiny searches never pay the
     allocation). *)
  sched_set : Pipesched_prelude.Bitset.t;
  fp : int array;
  mutable memo_tbl : Pipesched_prelude.Memo_table.t option;
  mutable memo_hits : int;
  mutable memo_misses : int;
  (* Critical-path-bound scratch, preallocated so the bound is not
     O(n) in fresh arrays per node; [cp_bound.(d)] caches the admissible
     bound computed for the node currently open at depth [d]. *)
  cp_est : int array;
  cp_remaining : int array;
  cp_bound : int array;
  budget : Budget.t;
  mutable omega_calls : int;
  mutable schedules_completed : int;
  mutable improvements : int;
  mutable best_nops : int;
}

(* [multi]: the search may choose among candidate pipelines, so only
   single-candidate operations may be charged to a pipe in the resource
   bound; the single-pipe search pins every operation to its default. *)
let make_env ?entry ?(multi = false) machine dag options =
  let n = Dag.length dag in
  let blk = Dag.block dag in
  let pipe_of pos =
    Machine.default_pipe machine (Block.tuple_at blk pos).Tuple.op
  in
  let min_lat =
    Array.init n (fun pos ->
        let op = (Block.tuple_at blk pos).Tuple.op in
        match Machine.candidates machine op with
        | [] -> 1
        | pids ->
          List.fold_left
            (fun acc pid -> min acc (Machine.pipe machine pid).Pipe.latency)
            max_int pids)
  in
  let tail = Dag.heights dag ~edge_weight:(fun ~src ~dst:_ -> min_lat.(src)) in
  let forced_pipe =
    Array.init n (fun pos ->
        match
          Machine.candidates machine (Block.tuple_at blk pos).Tuple.op
        with
        | [ p ] -> p
        | [] -> -1
        | p :: _ :: _ -> if multi then -1 else p)
  in
  let pipe_enqueue =
    Array.init (Machine.pipe_count machine) (fun p ->
        (Machine.pipe machine p).Pipe.enqueue)
  in
  let preds = Array.init n (fun pos -> Dag.preds_arr dag pos) in
  let succs = Array.init n (fun pos -> Dag.succs_arr dag pos) in
  let cand_order = List_sched.order_by_priority options.seed dag in
  let rank = Array.make n 0 in
  Array.iteri (fun r pos -> rank.(pos) <- r) cand_order;
  let ready = Pipesched_prelude.Bitset.create (max n 1) in
  for pos = 0 to n - 1 do
    if Array.length preds.(pos) = 0 then
      Pipesched_prelude.Bitset.add ready rank.(pos)
  done;
  {
    n;
    st = Omega.State.create ?entry machine dag;
    cand_order;
    rank;
    ready;
    preds;
    succs;
    (* [5c] needs the successor-free refinement: two resource-free,
       predecessor-free instructions are only interchangeable in every
       completion when neither constrains anything downstream.  Without
       it the pruning can discard all optimal schedules (see the
       counterexample in test_core.ml). *)
    is_free =
      Array.init n (fun pos ->
          pipe_of pos = None
          && Array.length preds.(pos) = 0
          && Array.length succs.(pos) = 0);
    signature =
      Array.init n (fun pos ->
          ( (match pipe_of pos with Some p -> p | None -> -1),
            preds.(pos),
            succs.(pos) ));
    min_lat;
    tail;
    forced_pipe;
    pipe_enqueue;
    dag;
    sched_set = Pipesched_prelude.Bitset.create (max n 1);
    fp = Array.make (1 + Array.length pipe_enqueue + n) 0;
    memo_tbl = None;
    memo_hits = 0;
    memo_misses = 0;
    cp_est = Array.make (max n 1) 0;
    cp_remaining = Array.make (max (Array.length pipe_enqueue) 1) 0;
    cp_bound = Array.make (n + 1) 0;
    budget =
      Budget.start
        {
          Budget.calls = Some options.lambda;
          deadline_s = options.deadline_s;
          cancel = options.cancel;
        };
    omega_calls = 0;
    schedules_completed = 0;
    improvements = 0;
    best_nops = max_int;
  }

(* Admissible lower bound on the final total NOPs of any completion of the
   current partial schedule: mu(Phi) refined with the earliest possible
   issue of each unscheduled instruction plus its latency-weighted tail
   (see optimal.mli).  est is computed over unscheduled positions in block
   order, which is topological.

   [floor] is a bound already known to be admissible for this node — the
   caller passes the parent's cached bound: the child's completions are a
   subset of the parent's, so any lower bound on the parent also bounds
   the child, and taking the max only tightens the result.

   The scratch arrays live in [search_env]: [cp_est] needs no clearing
   because every unscheduled position is written before it is read (block
   order is topological, and scheduled slots are never read); only the
   per-pipe [cp_remaining] counters are zeroed. *)
let critical_path_bound env ~floor =
  let st = env.st in
  let depth = Omega.State.depth st in
  if depth = env.n then max floor (Omega.State.nops st)
  else begin
    let est = env.cp_est in
    let last_issue =
      if depth = 0 then -1
      else Omega.State.issue_of st (Omega.State.at_depth st (depth - 1))
    in
    let bound = ref (max floor (Omega.State.nops st)) in
    let remaining_on = env.cp_remaining in
    Array.fill remaining_on 0 (Array.length remaining_on) 0;
    for v = 0 to env.n - 1 do
      if not (Omega.State.is_scheduled st v) then begin
        if env.forced_pipe.(v) >= 0 then
          remaining_on.(env.forced_pipe.(v)) <-
            remaining_on.(env.forced_pipe.(v)) + 1;
        let e = ref (last_issue + 1) in
        Array.iter
          (fun u ->
            let avail =
              if Omega.State.is_scheduled st u then
                Omega.State.issue_of st u + env.min_lat.(u)
              else est.(u) + env.min_lat.(u)
            in
            if avail > !e then e := avail)
          env.preds.(v);
        est.(v) <- !e;
        let b = !e + env.tail.(v) - (env.n - 1) in
        if b > !bound then bound := b
      end
    done;
    (* Resource component: the R_p unscheduled operations forced onto pipe
       p each need [enqueue_p] ticks after the previous enqueue, starting
       from the pipe's current last use (or from the next issue slot when
       the pipe is still untouched). *)
    Array.iteri
      (fun p r ->
        if r > 0 then begin
          let last = Omega.State.last_use st p in
          let finish =
            if last > min_int / 4 then last + (r * env.pipe_enqueue.(p))
            else last_issue + 1 + ((r - 1) * env.pipe_enqueue.(p))
          in
          let b = finish - (env.n - 1) in
          if b > !bound then bound := b
        end)
      remaining_on;
    !bound
  end

let bound_value env options ~floor =
  match options.lower_bound with
  | Partial_nops -> max floor (Omega.State.nops env.st)
  | Critical_path -> critical_path_bound env ~floor

(* Normalized state fingerprint for the dominance check, written into
   [env.fp].  All ticks are expressed relative to [base], the earliest
   tick the next instruction could issue at ([issue(last) + 1], or 0 for
   the empty prefix), so prefixes reaching the same scheduled set at
   different absolute ticks but with the same *shape* compare equal.

     fp.(0)                = mu(Phi), the NOPs accumulated so far
     fp.(1 + p)            = per-pipe last-use tick relative to base,
                             clamped below at -enqueue_p: anything
                             earlier imposes no conflict constraint on
                             issues >= base, so distinguishing such
                             values would only weaken the dominance test
     fp.(1 + npipes + v)   = residual latency of the value produced at
                             position v — how many ticks past base until
                             it becomes available — clamped at 0, and 0
                             whenever v is unscheduled or every consumer
                             of v is already scheduled (then it can no
                             longer stall anything)

   Which components are "relevant" (scheduled producers with unscheduled
   consumers; pipes) is a function of the scheduled *set* alone, so two
   fingerprints for the same key are always componentwise comparable. *)
let fingerprint env =
  let st = env.st in
  let depth = Omega.State.depth st in
  let base =
    if depth = 0 then 0
    else Omega.State.issue_of st (Omega.State.at_depth st (depth - 1)) + 1
  in
  let fp = env.fp in
  fp.(0) <- Omega.State.nops st;
  let npipes = Array.length env.pipe_enqueue in
  for p = 0 to npipes - 1 do
    fp.(1 + p) <-
      max (Omega.State.last_use st p - base) (- env.pipe_enqueue.(p))
  done;
  for v = 0 to env.n - 1 do
    let residual =
      if not (Omega.State.is_scheduled st v) then 0
      else begin
        let pending = ref false in
        Array.iter
          (fun s ->
            if not (Omega.State.is_scheduled st s) then pending := true)
          env.succs.(v);
        if !pending then max 0 (Omega.State.avail_of st v - base) else 0
      end
    in
    fp.(1 + npipes + v) <- residual
  done

(* Dominance cut over the transposition table.  Returns [true] when the
   current node may be pruned without affecting the reported optimum.

   Soundness: the key is the scheduled *set*, and legality of a suffix
   depends only on that set, so every completion available below the
   stored prefix B is also available below the current prefix A and vice
   versa.  The stored fingerprint dominating the current one
   componentwise means B had accumulated no more NOPs AND imposed
   constraints on the future (pipe last-uses, unconsumed producer
   availabilities, all relative to the next issue slot) that are no
   tighter than A's.  Omega is monotone in those constraints: relaxing
   any of them can only lower each suffix instruction's forced issue
   tick, hence each eta, hence the final NOP total.  So for every
   completion, B's total <= A's total: the best completion below A
   cannot beat the best below B.

   Under alpha-beta this composes, even though B's subtree may itself
   have been pruned: the incumbent only ever decreases, and both the
   lower bounds and this dominance cut only discard subtrees whose every
   completion is >= some schedule already found or still reachable.  By
   induction over the order nodes are closed, when B's subtree finished,
   either it had established incumbent <= (best completion below B) or
   the incumbent was already that good; either way the incumbent at any
   later point is <= best-below-B <= best-below-A, so pruning A loses
   nothing.  The same argument covers the equivalence prunings (they
   only drop schedules whose NOP totals are matched by a retained
   sibling) and the register-bounded search (Pressure's live/remaining
   state is a pure function of the scheduled set, so A and B admit the
   same feasible suffixes).  Curtailment aborts the whole search, so a
   wrongly-kept entry can at worst have made the curtailed prefix
   smaller — completed searches are unaffected.

   Misses store the current state; on a key match the entry is
   overwritten unconditionally, which is always sound (any stored,
   actually-explored state yields a valid dominance witness). *)
let memo_cut env =
  match env.memo_tbl with
  | None -> false
  | Some tbl ->
    let module Bitset = Pipesched_prelude.Bitset in
    let module Memo_table = Pipesched_prelude.Memo_table in
    fingerprint env;
    let hash = Bitset.hash env.sched_set in
    let key = Bitset.raw_words env.sched_set in
    let slot = Memo_table.find tbl ~hash key in
    if slot >= 0 && Memo_table.dominates tbl slot env.fp then begin
      env.memo_hits <- env.memo_hits + 1;
      true
    end
    else begin
      env.memo_misses <- env.memo_misses + 1;
      ignore
        (Memo_table.store tbl ~hash
           ~depth:(Omega.State.depth env.st)
           ~key ~value:env.fp
          : bool);
      false
    end

let maybe_activate_memo env options =
  if
    env.memo_tbl = None
    && options.memo.memo_enabled
    && env.n > 1
    && env.omega_calls >= options.memo.memo_activation
  then
    env.memo_tbl <-
      Some
        (Pipesched_prelude.Memo_table.create
           ~capacity:options.memo.memo_capacity
           ~key_words:
             (Array.length (Pipesched_prelude.Bitset.raw_words env.sched_set))
           ~value_words:(Array.length env.fp))

(* The search skeleton.  [push_candidates f pos] must invoke [f] once per
   distinct way of scheduling [pos] next (once for the single-pipe search;
   once per non-symmetric candidate pipe for the multi-pipe search), with
   the instruction pushed for the dynamic extent of the call. *)
let dfs env options ~push_candidates ~on_complete =
  let module Bitset = Pipesched_prelude.Bitset in
  (* Per-depth scratch, allocated once per search: a snapshot buffer for
     the ready set (as ranks, so snapshots come out in priority order)
     and, for the strong-equivalence pruning, a table of signatures
     already expanded at this node.  Using [env.ready] incrementally
     replaces the old O(n) scan of [cand_order] at every node with a
     word-skipping walk over the ready positions only. *)
  let snapshot = Array.make_matrix (env.n + 1) (max env.n 1) 0 in
  let sig_tbls = Array.init (env.n + 1) (fun _ -> Hashtbl.create 8) in
  let rec go depth =
    if depth = env.n then begin
      env.schedules_completed <- env.schedules_completed + 1;
      if Omega.State.nops env.st < env.best_nops then begin
        env.best_nops <- Omega.State.nops env.st;
        env.improvements <- env.improvements + 1;
        on_complete ()
      end
    end
    else if depth > 0 && memo_cut env then ()
    else begin
      (* The ready set is restored after each child, so this snapshot is
         exactly the set of positions the old full scan would accept. *)
      let buf = snapshot.(depth) in
      let count = Bitset.to_buffer env.ready buf in
      let tried_free = ref false in
      let tried_sigs = sig_tbls.(depth) in
      if options.strong_equivalence then Hashtbl.reset tried_sigs;
      for i = 0 to count - 1 do
        let rk = buf.(i) in
        let pos = env.cand_order.(rk) in
        let skip =
          (options.equivalence && env.is_free.(pos) && !tried_free)
          || (options.strong_equivalence
              && Hashtbl.mem tried_sigs env.signature.(pos))
        in
        if not skip then begin
          if env.is_free.(pos) then tried_free := true;
          if options.strong_equivalence then
            Hashtbl.replace tried_sigs env.signature.(pos) ();
          push_candidates pos (fun () ->
              (* [pos] is pushed for the extent of this callback: drop it
                 from the ready set (and add it to the scheduled-set key)
                 and admit any successor whose last unscheduled
                 predecessor it was, then undo. *)
              Bitset.remove env.ready rk;
              Bitset.add env.sched_set pos;
              Array.iter
                (fun s ->
                  if Omega.State.is_ready env.st s then
                    Bitset.add env.ready env.rank.(s))
                env.succs.(pos);
              (if not options.alpha_beta then go (depth + 1)
               else begin
                 (* The parent's bound is an admissible floor for every
                    child (completions below a child are a subset of
                    those below the parent), so when the incumbent has
                    improved past it since the parent was expanded, all
                    remaining siblings fail without recomputation. *)
                 let parent_bound = env.cp_bound.(depth) in
                 if parent_bound < env.best_nops then begin
                   let b = bound_value env options ~floor:parent_bound in
                   env.cp_bound.(depth + 1) <- b;
                   if b < env.best_nops then go (depth + 1)
                 end
               end);
              Array.iter
                (fun s ->
                  if Omega.State.is_ready env.st s then
                    Bitset.remove env.ready env.rank.(s))
                env.succs.(pos);
              Bitset.remove env.sched_set pos;
              Bitset.add env.ready rk)
        end
      done
    end
  in
  (* A floor of 0 NOPs is trivially admissible for the root. *)
  env.cp_bound.(0) <- 0;
  go 0

(* One Omega call: check the combined budget (lambda / deadline / token),
   raising [Curtailed] once any limit trips — the search then unwinds and
   reports the incumbent.  The check precedes the spend, matching the
   paper's "curtail when Lambda reaches lambda" exactly. *)
let count_call env options =
  (match Budget.exhausted env.budget with
   | Some _ -> raise Curtailed
   | None -> ());
  Budget.spend env.budget;
  env.omega_calls <- env.omega_calls + 1;
  maybe_activate_memo env options

let stats_of env ~completed =
  let entries, evictions =
    match env.memo_tbl with
    | None -> (0, 0)
    | Some tbl ->
      ( Pipesched_prelude.Memo_table.entries tbl,
        Pipesched_prelude.Memo_table.evictions tbl )
  in
  let status =
    if completed then Budget.Complete
    else
      match Budget.exhausted env.budget with
      | Some s -> s
      | None -> Budget.Curtailed_lambda
  in
  {
    omega_calls = env.omega_calls;
    schedules_completed = env.schedules_completed;
    improvements = env.improvements;
    completed;
    status;
    elapsed_s = Budget.elapsed_s env.budget;
    memo_hits = env.memo_hits;
    memo_misses = env.memo_misses;
    memo_entries = entries;
    memo_evictions = evictions;
  }

let schedule ?(options = default_options) ?entry machine dag =
  let seed_order = List_sched.schedule options.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  let env = make_env ?entry machine dag options in
  env.best_nops <- initial.nops;
  let best = ref initial in
  let push_candidates pos k =
    count_call env options;
    Omega.State.push env.st pos;
    k ();
    Omega.State.pop env.st
  in
  let on_complete () = best := Omega.State.complete_greedily env.st in
  let completed =
    match dfs env options ~push_candidates ~on_complete with
    | () -> true
    | exception Curtailed -> false
  in
  { best = !best; initial; stats = stats_of env ~completed }

let schedule_multi ?(options = default_options) ?entry machine dag =
  let n = Dag.length dag in
  let blk = Dag.block dag in
  let seed_order = List_sched.schedule options.seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  let env = make_env ?entry ~multi:true machine dag options in
  env.best_nops <- initial.nops;
  let best = ref initial in
  let default_choice =
    Array.init n (fun pos ->
        Machine.default_pipe machine (Block.tuple_at blk pos).Tuple.op)
  in
  let choice = Array.copy default_choice in
  let best_choice = ref (Array.copy default_choice) in
  let candidates_of =
    Array.init n (fun pos ->
        Machine.candidates machine (Block.tuple_at blk pos).Tuple.op)
  in
  let pipe_params p =
    let pipe = Machine.pipe machine p in
    (pipe.Pipe.latency, pipe.Pipe.enqueue)
  in
  (* Per-depth tables for the symmetric-pipe pruning, reset on entry;
     preallocated so the hot path never re-scans a membership list. *)
  let tried_tbls = Array.init (n + 1) (fun _ -> Hashtbl.create 8) in
  let push_candidates pos k =
    match candidates_of.(pos) with
    | [] ->
      count_call env options;
      Omega.State.push_on env.st pos ~pipe:None;
      choice.(pos) <- None;
      k ();
      Omega.State.pop env.st
    | pids ->
      (* Symmetric-pipe pruning: two candidate pipes with equal parameters
         and equal last-use tick lead to identical subtrees. *)
      let tried = tried_tbls.(Omega.State.depth env.st) in
      Hashtbl.reset tried;
      List.iter
        (fun p ->
          let key = (pipe_params p, Omega.State.last_use env.st p) in
          if not (Hashtbl.mem tried key) then begin
            Hashtbl.add tried key ();
            count_call env options;
            Omega.State.push_on env.st pos ~pipe:(Some p);
            choice.(pos) <- Some p;
            k ();
            Omega.State.pop env.st
          end)
        pids
  in
  let on_complete () =
    best := Omega.State.complete_greedily env.st;
    best_choice := Array.copy choice
  in
  let completed =
    match dfs env options ~push_candidates ~on_complete with
    | () -> true
    | exception Curtailed -> false
  in
  ({ best = !best; initial; stats = stats_of env ~completed }, !best_choice)

(* Incremental register-demand bookkeeping for the bounded search.  A
   value is live from its definition until its last remaining consumer is
   scheduled; a definition transiently demands one more register
   (read-then-write, matching Regalloc.Alloc). *)
module Pressure = struct
  type t = {
    uses : (int * int) array array;
        (* per position: (producer position, multiplicity) it reads;
           flattened for the per-push/pop traversals of the search *)
    produces : bool array;
    consumer_count : int array; (* total reads of each position's value *)
    remaining : int array;      (* mutable during search *)
    mutable live : int;
  }

  let create dag =
    let blk = Dag.block dag in
    let n = Dag.length dag in
    let consumer_count = Array.make n 0 in
    let uses =
      Array.init n (fun pos ->
          let refs =
            List.map
              (fun id -> Block.pos_of_id blk id)
              (Tuple.value_refs (Block.tuple_at blk pos))
          in
          let tbl = Hashtbl.create 4 in
          List.iter
            (fun u ->
              Hashtbl.replace tbl u
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u)))
            refs;
          let a =
            Array.of_list (Hashtbl.fold (fun u m acc -> (u, m) :: acc) tbl [])
          in
          Array.sort compare a;
          a)
    in
    Array.iter
      (fun pairs ->
        Array.iter
          (fun (u, m) -> consumer_count.(u) <- consumer_count.(u) + m)
          pairs)
      uses;
    {
      uses;
      produces =
        Array.init n (fun pos ->
            Tuple.produces_value (Block.tuple_at blk pos));
      consumer_count;
      remaining = Array.copy consumer_count;
      live = 0;
    }

  (* Register demand if [pos] were scheduled next. *)
  let demand p pos =
    let deaths =
      Array.fold_left
        (fun acc (u, m) -> if p.remaining.(u) = m then acc + 1 else acc)
        0 p.uses.(pos)
    in
    p.live - deaths + (if p.produces.(pos) then 1 else 0)

  let push p pos =
    Array.iter
      (fun (u, m) ->
        if p.remaining.(u) = m then p.live <- p.live - 1;
        p.remaining.(u) <- p.remaining.(u) - m)
      p.uses.(pos);
    if p.produces.(pos) && p.consumer_count.(pos) > 0 then
      p.live <- p.live + 1

  let pop p pos =
    if p.produces.(pos) && p.consumer_count.(pos) > 0 then
      p.live <- p.live - 1;
    Array.iter
      (fun (u, m) ->
        p.remaining.(u) <- p.remaining.(u) + m;
        if p.remaining.(u) = m then p.live <- p.live + 1)
      p.uses.(pos)
end

let schedule_bounded ?(options = default_options) ~registers machine dag =
  if registers < 1 then
    invalid_arg "Optimal.schedule_bounded: registers must be >= 1";
  let seed_order = List_sched.schedule options.seed dag in
  (* The seed is only a reference point, never an incumbent: it may
     violate the register bound.  Evaluating it is pure waste when the
     search comes up empty, so force it only on success. *)
  let initial = lazy (Omega.evaluate machine dag ~order:seed_order) in
  let env = make_env machine dag options in
  let pressure = Pressure.create dag in
  let best = ref None in
  let push_candidates pos k =
    if Pressure.demand pressure pos <= registers then begin
      count_call env options;
      Omega.State.push env.st pos;
      Pressure.push pressure pos;
      k ();
      Pressure.pop pressure pos;
      Omega.State.pop env.st
    end
  in
  let on_complete () = best := Some (Omega.State.complete_greedily env.st) in
  let completed =
    match dfs env options ~push_candidates ~on_complete with
    | () -> true
    | exception Curtailed -> false
  in
  let stats = stats_of env ~completed in
  match !best with
  | Some best -> Ok { best; initial = Lazy.force initial; stats }
  | None -> Error ()

let verify_optimal machine dag (outcome : outcome) =
  let r = Baselines.legal_only_search machine dag in
  r.Baselines.complete && r.Baselines.best.Omega.nops = outcome.best.Omega.nops
