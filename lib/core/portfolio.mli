(** Portfolio optimal scheduling: the branch-and-bound ({!Optimal}) and
    the propagation/learning solver ({!Pipesched_solve.Cp}) race on two
    domains over the same block, sharing one
    {!Pipesched_prelude.Incumbent} so each side's best-so-far bound
    prunes the other.  The first side to {e prove} optimality cancels
    the loser through a {!Pipesched_prelude.Budget.derive}d token (the
    caller's own token, if any, stays untouched and still cancels both).

    Before any domain is spawned the CP side gets a cheap inline
    {e presolve} (a few hundred decisions against the same shared
    incumbent).  Resource-bound blocks — the bulk of generated corpora —
    are proved outright there, so the common case pays no domain-spawn
    cost and the portfolio stays within epsilon of the bare CP backend.
    When the presolve proves the block, [winner = Some Cp] and the bnb
    side reports zero calls with status [Cancelled].

    The two backends search exactly the same space — legal orders with
    default pipeline choices, scored by the same Omega semantics — so on
    completion their proofs must name the same optimal NOP count, and
    the shared incumbent must hold a witness schedule realizing it.  Any
    violation is a solver bug by construction (DESIGN.md §14): the race
    then re-runs both sides standalone, greedily shrinks the block while
    they still disagree, writes a fuzz-style repro JSON into
    [repro_dir], and raises {!Disagreement}.

    Determinism: the winner, per-side statistics and statuses depend on
    the race; [proved] and [best.nops] do not (they are the optimum
    whenever either side completes). *)

open Pipesched_machine

type backend = Bnb | Cp

val backend_name : backend -> string

type side_report = {
  completed : bool;            (** this side proved optimality *)
  status : Pipesched_prelude.Budget.status;
      (** [Cancelled] usually means the peer won the race *)
  proved : int option;         (** proved optimal NOPs, iff [completed] *)
  calls : int;
      (** work units spent: Omega calls (bnb), decisions + conflicts
          (cp) — units differ, comparable only within a backend *)
  best_nops : int;             (** this side's own best schedule *)
}

type outcome = {
  best : Omega.result;
      (** the shared incumbent's schedule — the better of the two
          sides' bests *)
  initial : Omega.result;      (** the evaluated seed (list) schedule *)
  winner : backend option;
      (** first side to prove optimality; [None] when neither did *)
  bnb : side_report;
  cp : side_report;
  proved : int option;         (** the optimum, iff either side proved *)
  status : Pipesched_prelude.Budget.status;
      (** [Complete] iff [proved]; otherwise the limit that stopped the
          race *)
}

(** Raised when the backends disagree (see the module doc); the payload
    names both verdicts and the repro file path. *)
exception Disagreement of string

(** [run machine dag] races the two backends.  [options.lambda] is
    granted to {e each} side in its own units; [options.cancel] cancels
    the whole race; [options.search_jobs] is ignored (the two race
    domains are the parallelism).  [repro_dir] (default
    ["portfolio-repro"]) receives the repro file if a disagreement is
    ever detected. *)
val run :
  ?options:Optimal.options ->
  ?entry:Omega.entry ->
  ?repro_dir:string ->
  Machine.t ->
  Pipesched_ir.Dag.t ->
  outcome
