open Pipesched_ir
open Pipesched_machine
module Budget = Pipesched_prelude.Budget
module Incumbent = Pipesched_prelude.Incumbent
module Pool = Pipesched_parallel.Pool
module Solve_cp = Pipesched_solve.Cp

type backend = Bnb | Cp

let backend_name = function Bnb -> "bnb" | Cp -> "cp"

type side_report = {
  completed : bool;
  status : Budget.status;
  proved : int option;
  calls : int;
  best_nops : int;
}

type outcome = {
  best : Omega.result;
  initial : Omega.result;
  winner : backend option;
  bnb : side_report;
  cp : side_report;
  proved : int option;
  status : Budget.status;
}

exception Disagreement of string

(* ------------------------------------------------------------------ *)
(* Disagreement forensics: re-run both backends standalone (serial, no
   shared state, so fully deterministic), shrink the block greedily as
   long as they still disagree, and write a repro file shaped like the
   fuzzer's.  A disagreement is always a bug — both solvers claim a
   proof anchored to the same Omega semantics — so this path trades
   speed for a small, replayable witness. *)

let standalone_optima ?options ?entry machine blk =
  let options =
    match options with Some o -> o | None -> Optimal.default_options
  in
  let dag = Dag.of_block blk in
  let o =
    Optimal.schedule
      ~options:{ options with Optimal.search_jobs = 1; Optimal.cancel = None }
      ?entry machine dag
  in
  let c =
    Solve_cp.solve ~lambda:options.Optimal.lambda
      ~seed:options.Optimal.seed ?entry machine dag
  in
  let ob =
    if o.Optimal.stats.Optimal.completed then
      Some o.Optimal.best.Omega.nops
    else None
  in
  (ob, c.Solve_cp.stats.Solve_cp.proved)

let still_disagrees ?options ?entry machine blk =
  match standalone_optima ?options ?entry machine blk with
  | Some a, Some b -> a <> b
  | _ -> false

let cut_ref id op =
  match op with Operand.Ref id' when id' = id -> Operand.Imm 1 | _ -> op

let drop_instruction blk i =
  let tus = Array.to_list (Block.tuples blk) in
  let victim = List.nth tus i in
  let rest = List.filteri (fun j _ -> j <> i) tus in
  let rewired =
    List.map
      (fun (tu : Tuple.t) ->
        Tuple.make ~id:tu.id tu.op
          (cut_ref victim.Tuple.id tu.a)
          (cut_ref victim.Tuple.id tu.b))
      rest
  in
  match Block.of_tuples rewired with Ok b -> Some b | Error _ -> None

let shrink ?options ?entry machine blk =
  let rec go blk =
    let n = Block.length blk in
    let drops = List.filter_map (drop_instruction blk) (List.init n Fun.id) in
    match List.find_opt (still_disagrees ?options ?entry machine) drops with
    | Some smaller -> go smaller
    | None -> blk
  in
  go blk

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_repro ~dir machine blk shrunk ~bnb_nops ~cp_nops =
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   else if not (Sys.is_directory dir) then
     invalid_arg
       (Printf.sprintf "portfolio: %s exists and is not a directory" dir));
  let tag = Hashtbl.hash (Machine.to_text machine, Block.to_string blk) in
  let path =
    Filename.concat dir (Printf.sprintf "portfolio-repro-%d.json" tag)
  in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"machine\": \"%s\",\n" (json_escape (Machine.to_text machine));
  p "  \"block\": \"%s\",\n" (json_escape (Block.to_string blk));
  p "  \"shrunk_block\": \"%s\",\n" (json_escape (Block.to_string shrunk));
  p "  \"bnb_nops\": %s,\n"
    (match bnb_nops with Some v -> string_of_int v | None -> "null");
  p "  \"cp_nops\": %s\n"
    (match cp_nops with Some v -> string_of_int v | None -> "null");
  p "}\n";
  close_out oc;
  path

let disagree ?options ?entry ~repro_dir machine dag detail =
  let blk = Dag.block dag in
  let shrunk = shrink ?options ?entry machine blk in
  let bnb_nops, cp_nops = standalone_optima ?options ?entry machine shrunk in
  let path = write_repro ~dir:repro_dir machine blk shrunk ~bnb_nops ~cp_nops in
  raise
    (Disagreement (Printf.sprintf "%s (repro %s)" detail path))

(* ------------------------------------------------------------------ *)
(* The race.                                                           *)

(* Decision + conflict cap for the inline CP presolve below.  Resource-
   bound blocks — the common case in generated corpora — are typically
   proved within a few hundred decisions, and proving them before the
   race starts skips the domain-spawn cost entirely (~10ms, which on
   such blocks would dwarf the solve). *)
let presolve_lambda = 2_000

let cp_side_report (c : Solve_cp.outcome) =
  {
    completed = c.Solve_cp.stats.Solve_cp.completed;
    status = c.Solve_cp.stats.Solve_cp.status;
    proved = c.Solve_cp.stats.Solve_cp.proved;
    calls =
      c.Solve_cp.stats.Solve_cp.decisions
      + c.Solve_cp.stats.Solve_cp.conflicts;
    best_nops = c.Solve_cp.best.Omega.nops;
  }

let run ?(options = Optimal.default_options) ?entry
    ?(repro_dir = "portfolio-repro") machine dag =
  (* Both sides share one incumbent: either side's bound prunes the
     other, and the final best schedule is whatever the pair found.  The
     stop token is derived from the caller's, so the winner can cut the
     loser off without consuming the caller's token. *)
  let shared : Omega.result Incumbent.t = Incumbent.create () in
  let stop =
    match options.Optimal.cancel with
    | Some t -> Budget.derive t
    | None -> Budget.token ()
  in
  let side_options =
    { options with Optimal.cancel = Some stop; Optimal.search_jobs = 1 }
  in
  (* Inline CP presolve: a few hundred decisions, same shared incumbent.
     When it proves the block outright the race never starts — the bnb
     side then reports zero calls with status [Cancelled]. *)
  let presolve =
    let lambda = max 1 (min presolve_lambda options.Optimal.lambda) in
    let c =
      Solve_cp.solve ~lambda ?deadline_s:options.Optimal.deadline_s
        ~cancel:stop ~seed:options.Optimal.seed ?entry ~shared:(shared, 1)
        machine dag
    in
    if c.Solve_cp.stats.Solve_cp.completed then Some c else None
  in
  let initial, bnb_report, bnb_proved, cp_report, winner_idx =
    match presolve with
    | Some c ->
      Budget.cancel stop;
      let bnb_report =
        {
          completed = false;
          status = Budget.Cancelled;
          proved = None;
          calls = 0;
          best_nops = c.Solve_cp.initial.Omega.nops;
        }
      in
      (c.Solve_cp.initial, bnb_report, None, cp_side_report c, 1)
    | None ->
      let winner = Atomic.make (-1) in
      let claim side =
        if Atomic.compare_and_set winner (-1) side then Budget.cancel stop
      in
      let bnb_res = ref None and cp_res = ref None in
      Pool.team ~jobs:2 (fun w ->
          if w = 0 then begin
            let o, proved =
              Optimal.schedule_shared ~options:side_options ?entry ~shared
                ~rank:0 machine dag
            in
            if o.Optimal.stats.Optimal.completed then claim 0;
            bnb_res := Some (o, proved)
          end
          else begin
            let c =
              Solve_cp.solve ~lambda:side_options.Optimal.lambda
                ?deadline_s:side_options.Optimal.deadline_s ~cancel:stop
                ~seed:side_options.Optimal.seed ?entry ~shared:(shared, 1)
                machine dag
            in
            if c.Solve_cp.stats.Solve_cp.completed then claim 1;
            cp_res := Some c
          end);
      let o, bnb_proved =
        match !bnb_res with Some r -> r | None -> assert false
      in
      let c = match !cp_res with Some r -> r | None -> assert false in
      let bnb_report =
        {
          completed = o.Optimal.stats.Optimal.completed;
          status = o.Optimal.stats.Optimal.status;
          proved = bnb_proved;
          calls = o.Optimal.stats.Optimal.omega_calls;
          best_nops = o.Optimal.best.Omega.nops;
        }
      in
      (o.Optimal.initial, bnb_report, bnb_proved, cp_side_report c,
       Atomic.get winner)
  in
  let cp_proved = cp_report.proved in
  let best =
    match Incumbent.best shared with
    | Some (_, r) -> r
    | None -> initial
  in
  (* Agreement: both proofs (when present) must name the same optimum,
     and the final incumbent must realize it.  Anything else means one
     of the solvers is wrong, which is a bug by construction — see
     DESIGN.md §14. *)
  (match bnb_proved, cp_proved with
   | Some a, Some b when a <> b ->
     disagree ~options ?entry ~repro_dir machine dag
       (Printf.sprintf "bnb proved %d, cp proved %d" a b)
   | _ -> ());
  let check_witness side v =
    if best.Omega.nops <> v then
      disagree ~options ?entry ~repro_dir machine dag
        (Printf.sprintf "%s proved %d but the shared incumbent holds %d"
           (backend_name side) v best.Omega.nops)
  in
  (match bnb_proved with Some v -> check_witness Bnb v | None -> ());
  (match cp_proved with Some v -> check_witness Cp v | None -> ());
  let proved =
    match bnb_proved, cp_proved with
    | Some v, _ | _, Some v -> Some v
    | None, None -> None
  in
  let winner =
    match winner_idx with 0 -> Some Bnb | 1 -> Some Cp | _ -> None
  in
  let status =
    if proved <> None then Budget.Complete
    else if bnb_report.status = Budget.Cancelled then cp_report.status
    else bnb_report.status
  in
  {
    best;
    initial;
    winner;
    bnb = bnb_report;
    cp = cp_report;
    proved;
    status;
  }
