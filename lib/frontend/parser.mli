(** Recursive-descent parser for the mini source language.

    Grammar (standard C-like precedence, lowest first):

    {v
      program := stmt* eof
      stmt    := ident '=' expr ';'
               | 'if' '(' cond ')' '{' stmt* '}' ('else' '{' stmt* '}')?
               | 'while' '(' cond ')' '{' stmt* '}'
      cond    := expr ('=='|'!='|'<'|'<='|'>'|'>=') expr
      expr    := or
      or      := xor  ('|' xor)*
      xor     := and  ('^' and)*
      and     := shift ('&' shift)*
      shift   := add  (('<<'|'>>') add)*
      add     := mul  (('+'|'-') mul)*
      mul     := unary (('*'|'/'|'%') unary)*
      unary   := '-' unary | primary
      primary := int | ident | '(' expr ')'
    v} *)

(** Raised with a human-readable message. *)
exception Error of string

(** [parse src] lexes and parses a whole program.
    Raises {!Error} (or {!Lexer.Error}) on malformed input. *)
val parse : string -> Ast.program

(** [parse_expr src] parses a single expression (test helper). *)
val parse_expr : string -> Ast.expr
