(** Classic block-level optimizations (§3.1).

    The paper's prototype performs "constant folding with value
    propagation, common subexpression elimination, dead code elimination,
    and various peephole optimizations" before scheduling.  Each pass here
    maps a valid block to a valid, semantically equivalent block (the test
    suite property-checks equivalence through {!Interp}).

    Passes are idempotent but enable each other (folding creates dead
    constants; CSE creates dead loads; peephole creates copies), so
    {!optimize} iterates the pipeline to a fixpoint. *)

open Pipesched_ir

(** Fold constant subcomputations and propagate immediate values into
    operand positions ([Ref] to a [Const] becomes [Imm]; pure tuples with
    all-immediate operands become [Const]). *)
val const_fold : Block.t -> Block.t

(** Algebraic simplifications on immediate operands: [x+0], [x-0], [x*1],
    [x*0], [x/1], [x&0], [x|0], [x^0], [x<<0], [x>>0], [x-x], [x^x],
    [-(-x)], and strength reduction of [x * 2^k] to [x << k] (which also
    moves work off the multiplier pipeline). *)
val peephole : Block.t -> Block.t

(** Eliminate [Mov] tuples by forwarding their operand to all users. *)
val copy_prop : Block.t -> Block.t

(** Common subexpression elimination: duplicate pure tuples (with
    commutative-operand normalization), redundant [Load]s of an unmodified
    variable, and store-to-load forwarding. *)
val cse : Block.t -> Block.t

(** Remove tuples whose results are unused and which have no side effect
    (everything but [Store] is removable). *)
val dce : Block.t -> Block.t

(** Remove a [Store] that is overwritten by a later [Store] to the same
    variable with no intervening [Load] of it. *)
val dead_store : Block.t -> Block.t

(** Renumber tuple ids sequentially from 1 (cosmetic; applied last). *)
val renumber : Block.t -> Block.t

(** The full pipeline iterated to a fixpoint, then renumbered. *)
val optimize : Block.t -> Block.t
