type token =
  | Int of int
  | Ident of string
  | Assign
  | Semi
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe_tok
  | Caret
  | Shl_tok
  | Shr_tok
  | Lbrace
  | Rbrace
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Kw_if
  | Kw_else
  | Kw_while
  | Eof

exception Error of string * int

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '=' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (Eq_eq :: acc)
      | '=' -> go (i + 1) (Assign :: acc)
      | '{' -> go (i + 1) (Lbrace :: acc)
      | '}' -> go (i + 1) (Rbrace :: acc)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (Bang_eq :: acc)
      | ';' -> go (i + 1) (Semi :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '+' -> go (i + 1) (Plus :: acc)
      | '-' -> go (i + 1) (Minus :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      | '/' -> go (i + 1) (Slash :: acc)
      | '%' -> go (i + 1) (Percent :: acc)
      | '&' -> go (i + 1) (Amp :: acc)
      | '|' -> go (i + 1) (Pipe_tok :: acc)
      | '^' -> go (i + 1) (Caret :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> go (i + 2) (Shl_tok :: acc)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> go (i + 2) (Shr_tok :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (Le :: acc)
      | '<' -> go (i + 1) (Lt :: acc)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (Ge :: acc)
      | '>' -> go (i + 1) (Gt :: acc)
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let j = scan i in
        let text = String.sub src i (j - i) in
        (match int_of_string_opt text with
         | Some v -> go j (Int v :: acc)
         | None -> raise (Error ("integer literal out of range: " ^ text, i)))
      | c when is_alpha c ->
        let rec scan j = if j < n && is_alnum src.[j] then scan (j + 1) else j in
        let j = scan i in
        let tok =
          match String.sub src i (j - i) with
          | "if" -> Kw_if
          | "else" -> Kw_else
          | "while" -> Kw_while
          | word -> Ident word
        in
        go j (tok :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0 []

let token_to_string = function
  | Int n -> string_of_int n
  | Ident s -> s
  | Assign -> "="
  | Semi -> ";"
  | Lparen -> "("
  | Rparen -> ")"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe_tok -> "|"
  | Caret -> "^"
  | Shl_tok -> "<<"
  | Shr_tok -> ">>"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Eof -> "<eof>"
