(** Reference interpreters for source programs and tuple blocks.

    These give the two program representations an executable semantics, so
    the test suite can {e prove} (property-test) that tuple generation, every
    optimizer pass, and every legal schedule preserve program meaning.
    Division/modulus by zero evaluate to 0, matching {!Pipesched_ir.Op}. *)

open Pipesched_ir

(** An initial memory: the value each variable holds on block entry. *)
type env = string -> int

(** Raised by {!run_program} when [fuel] statement executions were not
    enough to finish (a long or diverging [while]). *)
exception Out_of_fuel

(** [run_program prog ~env] executes the source program and returns the
    final value of every variable it touches (reads or writes), sorted by
    name.  [fuel] (default [100_000]) bounds the number of statement
    executions; raises {!Out_of_fuel} beyond it. *)
val run_program : ?fuel:int -> Ast.program -> env:env -> (string * int) list

(** [run_block blk ~env] executes the tuple block against memory [env] and
    returns the final value of every variable the block touches, sorted by
    name.  Raises [Invalid_argument] on a malformed block (defensive; cannot
    happen for validated {!Block.t} values). *)
val run_block : Block.t -> env:env -> (string * int) list

(** [equivalent_on prog blk ~env ~vars] — do program and block agree on the
    final values of [vars] under [env]? *)
val equivalent_on :
  Ast.program -> Block.t -> env:env -> vars:string list -> bool
