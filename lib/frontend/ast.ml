open Pipesched_ir

type expr =
  | Int of int
  | Var of string
  | Unop of Op.t * expr
  | Binop of Op.t * expr * expr

type relop = Req | Rne | Rlt | Rle | Rgt | Rge

type cond = relop * expr * expr

type stmt =
  | Assign of string * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list

type program = stmt list

let eval_relop r x y =
  match r with
  | Req -> x = y
  | Rne -> x <> y
  | Rlt -> x < y
  | Rle -> x <= y
  | Rgt -> x > y
  | Rge -> x >= y

let straight_line prog =
  List.for_all (function Assign _ -> true | If _ | While _ -> false) prog

let rec expr_vars = function
  | Int _ -> []
  | Var v -> [ v ]
  | Unop (_, e) -> expr_vars e
  | Binop (_, e1, e2) -> expr_vars e1 @ expr_vars e2

let dedup vs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    vs

let rec stmt_reads = function
  | Assign (_, e) -> expr_vars e
  | If ((_, l, r), t, f) ->
    expr_vars l @ expr_vars r @ List.concat_map stmt_reads t
    @ List.concat_map stmt_reads f
  | While ((_, l, r), body) ->
    expr_vars l @ expr_vars r @ List.concat_map stmt_reads body

let rec stmt_writes = function
  | Assign (v, _) -> [ v ]
  | If (_, t, f) -> List.concat_map stmt_writes t @ List.concat_map stmt_writes f
  | While (_, body) -> List.concat_map stmt_writes body

let read_vars prog = dedup (List.concat_map stmt_reads prog)

let written_vars prog = dedup (List.concat_map stmt_writes prog)

(* Printing with minimal parentheses would need precedence tracking; for a
   diagnostic language we parenthesize every compound subexpression. *)
let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt v
  | Unop (op, e) ->
    assert (op = Op.Neg);
    Format.fprintf fmt "-(%a)" pp_expr e
  | Binop (op, e1, e2) ->
    let sym =
      match op with
      | Op.Add -> "+"
      | Op.Sub -> "-"
      | Op.Mul -> "*"
      | Op.Div -> "/"
      | Op.Mod -> "%"
      | Op.And -> "&"
      | Op.Or -> "|"
      | Op.Xor -> "^"
      | Op.Shl -> "<<"
      | Op.Shr -> ">>"
      | Op.Const | Op.Load | Op.Store | Op.Mov | Op.Neg ->
        invalid_arg "Ast.pp_expr: not a binary operator"
    in
    Format.fprintf fmt "(%a %s %a)" pp_expr e1 sym pp_expr e2

let relop_to_string = function
  | Req -> "=="
  | Rne -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let pp_cond fmt (r, l, rhs) =
  Format.fprintf fmt "%a %s %a" pp_expr l (relop_to_string r) pp_expr rhs

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v pp_expr e
  | If (c, t, []) ->
    Format.fprintf fmt "if (%a) { %a }" pp_cond c pp_stmts t
  | If (c, t, f) ->
    Format.fprintf fmt "if (%a) { %a } else { %a }" pp_cond c pp_stmts t
      pp_stmts f
  | While (c, body) ->
    Format.fprintf fmt "while (%a) { %a }" pp_cond c pp_stmts body

and pp_stmts fmt stmts =
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_space fmt ();
      pp_stmt fmt s)
    stmts

let pp_program fmt prog =
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_newline fmt ();
      pp_stmt fmt s)
    prog

let program_to_string prog = Format.asprintf "%a" pp_program prog
