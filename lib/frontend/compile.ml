let compile_program ?(optimize = true) ?(reuse = false) prog =
  let blk = Gen.generate ~reuse prog in
  if optimize then Opt.optimize blk else blk

let compile ?optimize ?reuse src =
  compile_program ?optimize ?reuse (Parser.parse src)
