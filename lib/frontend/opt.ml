open Pipesched_ir

(* Every pass below walks the block in order, building a reversed tuple
   list plus an alias map sending removed tuple ids to the operand that
   replaces them.  [subst] applies the alias map to an operand. *)

let subst alias o =
  match o with
  | Operand.Ref id -> (
    match Hashtbl.find_opt alias id with Some o' -> o' | None -> o)
  | Operand.Var _ | Operand.Imm _ | Operand.Null -> o

let rebuild tuples = Block.of_tuples_exn (List.rev tuples)

let const_fold blk =
  let consts = Hashtbl.create 16 in
  let alias = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      let a = subst alias tu.a in
      let b = subst alias tu.b in
      let a =
        match a with
        | Operand.Ref id -> (
          match Hashtbl.find_opt consts id with
          | Some n -> Operand.Imm n
          | None -> a)
        | _ -> a
      in
      let b =
        match b with
        | Operand.Ref id -> (
          match Hashtbl.find_opt consts id with
          | Some n -> Operand.Imm n
          | None -> b)
        | _ -> b
      in
      let folded =
        match (tu.op, a, b) with
        | Op.Const, Operand.Imm n, _ -> Some n
        | (Op.Mov | Op.Neg), Operand.Imm n, _ ->
          Some (Op.eval1 tu.op n)
        | ( (Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Mod | Op.And | Op.Or
            | Op.Xor | Op.Shl | Op.Shr),
            Operand.Imm x,
            Operand.Imm y ) ->
          Some (Op.eval2 tu.op x y)
        | _ -> None
      in
      match folded with
      | Some n ->
        Hashtbl.replace consts tu.id n;
        out :=
          Tuple.make ~id:tu.id Op.Const (Operand.Imm n) Operand.Null :: !out
      | None -> out := Tuple.make ~id:tu.id tu.op a b :: !out)
    (Block.tuples blk);
  rebuild !out

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let peephole blk =
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      let mov x = Tuple.make ~id:tu.id Op.Mov x Operand.Null in
      let const n =
        Tuple.make ~id:tu.id Op.Const (Operand.Imm n) Operand.Null
      in
      let same_ref a b =
        match (a, b) with
        | Operand.Ref i, Operand.Ref j -> i = j
        | _ -> false
      in
      let rewritten =
        match (tu.op, tu.a, tu.b) with
        | Op.Add, x, Operand.Imm 0 | Op.Add, Operand.Imm 0, x -> Some (mov x)
        | Op.Sub, x, Operand.Imm 0 -> Some (mov x)
        | Op.Sub, a, b when same_ref a b -> Some (const 0)
        | Op.Mul, x, Operand.Imm 1 | Op.Mul, Operand.Imm 1, x -> Some (mov x)
        | Op.Mul, _, Operand.Imm 0 | Op.Mul, Operand.Imm 0, _ ->
          Some (const 0)
        | Op.Mul, x, Operand.Imm n when is_power_of_two n ->
          Some (Tuple.make ~id:tu.id Op.Shl x (Operand.Imm (log2 n)))
        | Op.Mul, Operand.Imm n, x when is_power_of_two n ->
          Some (Tuple.make ~id:tu.id Op.Shl x (Operand.Imm (log2 n)))
        | Op.Div, x, Operand.Imm 1 -> Some (mov x)
        | Op.And, _, Operand.Imm 0 | Op.And, Operand.Imm 0, _ ->
          Some (const 0)
        | Op.Or, x, Operand.Imm 0 | Op.Or, Operand.Imm 0, x -> Some (mov x)
        | Op.Xor, x, Operand.Imm 0 | Op.Xor, Operand.Imm 0, x -> Some (mov x)
        | Op.Xor, a, b when same_ref a b -> Some (const 0)
        | (Op.Shl | Op.Shr), x, Operand.Imm 0 -> Some (mov x)
        | _ -> None
      in
      out := Option.value rewritten ~default:tu :: !out)
    (Block.tuples blk);
  rebuild !out

(* -(-x) = Mov x needs to look through one level of references, which the
   generic pass structure above does not; handled here separately. *)
let double_neg blk =
  let defs = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      Hashtbl.replace defs tu.id tu;
      let rewritten =
        match (tu.op, tu.a) with
        | Op.Neg, Operand.Ref id -> (
          match Hashtbl.find_opt defs id with
          | Some (inner : Tuple.t) when inner.op = Op.Neg ->
            Some (Tuple.make ~id:tu.id Op.Mov inner.a Operand.Null)
          | _ -> None)
        | _ -> None
      in
      out := Option.value rewritten ~default:tu :: !out)
    (Block.tuples blk);
  rebuild !out

let copy_prop blk =
  let alias = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      let a = subst alias tu.a in
      let b = subst alias tu.b in
      if tu.op = Op.Mov then Hashtbl.replace alias tu.id a
      else out := Tuple.make ~id:tu.id tu.op a b :: !out)
    (Block.tuples blk);
  rebuild !out

let cse blk =
  let alias = Hashtbl.create 16 in
  let pure_tbl = Hashtbl.create 16 in
  let load_tbl = Hashtbl.create 16 in
  let generation = Hashtbl.create 8 in
  let last_store = Hashtbl.create 8 in
  let gen_of v = Option.value ~default:0 (Hashtbl.find_opt generation v) in
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      let a = subst alias tu.a in
      let b = subst alias tu.b in
      match tu.op with
      | Op.Load ->
        let v = Option.get (Operand.var_name a) in
        (match Hashtbl.find_opt last_store v with
         | Some value -> Hashtbl.replace alias tu.id value
         | None -> (
           let key = (v, gen_of v) in
           match Hashtbl.find_opt load_tbl key with
           | Some id0 -> Hashtbl.replace alias tu.id (Operand.Ref id0)
           | None ->
             Hashtbl.replace load_tbl key tu.id;
             out := Tuple.make ~id:tu.id tu.op a b :: !out))
      | Op.Store ->
        let v = Option.get (Operand.var_name a) in
        Hashtbl.replace generation v (gen_of v + 1);
        Hashtbl.replace last_store v b;
        out := Tuple.make ~id:tu.id tu.op a b :: !out
      | _ when Op.pure tu.op ->
        let ka, kb =
          if Op.commutative tu.op && Operand.compare a b > 0 then (b, a)
          else (a, b)
        in
        let key = (tu.op, ka, kb) in
        (match Hashtbl.find_opt pure_tbl key with
         | Some id0 -> Hashtbl.replace alias tu.id (Operand.Ref id0)
         | None ->
           Hashtbl.replace pure_tbl key tu.id;
           out := Tuple.make ~id:tu.id tu.op a b :: !out)
      | _ -> out := Tuple.make ~id:tu.id tu.op a b :: !out)
    (Block.tuples blk);
  rebuild !out

let dce blk =
  let tuples = Block.tuples blk in
  let live = Hashtbl.create 16 in
  let mark o =
    match Operand.ref_id o with
    | Some id -> Hashtbl.replace live id ()
    | None -> ()
  in
  let out = ref [] in
  for i = Array.length tuples - 1 downto 0 do
    let tu = tuples.(i) in
    if tu.Tuple.op = Op.Store || Hashtbl.mem live tu.Tuple.id then begin
      mark tu.Tuple.a;
      mark tu.Tuple.b;
      out := tu :: !out
    end
  done;
  Block.of_tuples_exn !out

let dead_store blk =
  let tuples = Block.tuples blk in
  let overwritten = Hashtbl.create 8 in
  let out = ref [] in
  for i = Array.length tuples - 1 downto 0 do
    let tu = tuples.(i) in
    match (tu.Tuple.op, Operand.var_name tu.Tuple.a) with
    | Op.Load, Some v ->
      Hashtbl.replace overwritten v false;
      out := tu :: !out
    | Op.Store, Some v ->
      if Option.value ~default:false (Hashtbl.find_opt overwritten v) then ()
      else begin
        Hashtbl.replace overwritten v true;
        out := tu :: !out
      end
    | _ -> out := tu :: !out
  done;
  Block.of_tuples_exn !out

let renumber blk =
  let next = ref 0 in
  let remap = Hashtbl.create 16 in
  let fix o =
    match o with
    | Operand.Ref id -> Operand.Ref (Hashtbl.find remap id)
    | _ -> o
  in
  let out = ref [] in
  Array.iter
    (fun (tu : Tuple.t) ->
      incr next;
      let a = fix tu.a and b = fix tu.b in
      Hashtbl.replace remap tu.id !next;
      out := Tuple.make ~id:!next tu.op a b :: !out)
    (Block.tuples blk);
  rebuild !out

let optimize blk =
  let pass b =
    b |> const_fold |> peephole |> double_neg |> copy_prop |> cse |> dce
    |> dead_store
  in
  let rec fix b iters =
    let b' = pass b in
    if iters = 0 || Block.equal b b' then b' else fix b' (iters - 1)
  in
  renumber (fix blk 10)
