(** Hand-written lexer for the mini source language. *)

type token =
  | Int of int
  | Ident of string
  | Assign          (** [=] *)
  | Semi            (** [;] *)
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe_tok        (** [|] *)
  | Caret
  | Shl_tok         (** [<<] *)
  | Shr_tok         (** [>>] *)
  | Lbrace
  | Rbrace
  | Eq_eq           (** [==] *)
  | Bang_eq         (** [!=] *)
  | Lt
  | Le
  | Gt
  | Ge
  | Kw_if
  | Kw_else
  | Kw_while
  | Eof

(** Raised with a message and a 0-based character offset. *)
exception Error of string * int

(** [tokenize src] is the token stream of [src], ending with [Eof].
    Comments run from [#] to end of line.  Raises {!Error} on any other
    unrecognized character. *)
val tokenize : string -> token list

val token_to_string : token -> string
