open Pipesched_ir

exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    raise
      (Error
         (Printf.sprintf "expected %s but found %s" what
            (Lexer.token_to_string (peek st))))

(* Binary-operator levels, loosest first. *)
let levels =
  [ [ (Lexer.Pipe_tok, Op.Or) ];
    [ (Lexer.Caret, Op.Xor) ];
    [ (Lexer.Amp, Op.And) ];
    [ (Lexer.Shl_tok, Op.Shl); (Lexer.Shr_tok, Op.Shr) ];
    [ (Lexer.Plus, Op.Add); (Lexer.Minus, Op.Sub) ];
    [ (Lexer.Star, Op.Mul); (Lexer.Slash, Op.Div); (Lexer.Percent, Op.Mod) ] ]

let rec parse_level st = function
  | [] -> parse_unary st
  | ops :: tighter ->
    let lhs = ref (parse_level st tighter) in
    let rec loop () =
      match List.assoc_opt (peek st) ops with
      | Some op ->
        advance st;
        let rhs = parse_level st tighter in
        lhs := Ast.Binop (op, !lhs, rhs);
        loop ()
      | None -> ()
    in
    loop ();
    !lhs

and parse_unary st =
  match peek st with
  | Lexer.Minus ->
    advance st;
    Ast.Unop (Op.Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int n ->
    advance st;
    Ast.Int n
  | Lexer.Ident v ->
    advance st;
    Ast.Var v
  | Lexer.Lparen ->
    advance st;
    let e = parse_level st levels in
    expect st Lexer.Rparen "')'";
    e
  | t ->
    raise
      (Error
         (Printf.sprintf "expected an expression but found %s"
            (Lexer.token_to_string t)))

let parse_expression st = parse_level st levels

let parse_cond st =
  expect st Lexer.Lparen "'('";
  let lhs = parse_expression st in
  let rel =
    match peek st with
    | Lexer.Eq_eq -> Ast.Req
    | Lexer.Bang_eq -> Ast.Rne
    | Lexer.Lt -> Ast.Rlt
    | Lexer.Le -> Ast.Rle
    | Lexer.Gt -> Ast.Rgt
    | Lexer.Ge -> Ast.Rge
    | t ->
      raise
        (Error
           (Printf.sprintf "expected a comparison operator but found %s"
              (Lexer.token_to_string t)))
  in
  advance st;
  let rhs = parse_expression st in
  expect st Lexer.Rparen "')'";
  (rel, lhs, rhs)

let rec parse_stmt st =
  match peek st with
  | Lexer.Ident v ->
    advance st;
    expect st Lexer.Assign "'='";
    let e = parse_expression st in
    expect st Lexer.Semi "';'";
    Ast.Assign (v, e)
  | Lexer.Kw_if ->
    advance st;
    let cond = parse_cond st in
    let then_ = parse_braced st in
    let else_ =
      if peek st = Lexer.Kw_else then begin
        advance st;
        parse_braced st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | Lexer.Kw_while ->
    advance st;
    let cond = parse_cond st in
    Ast.While (cond, parse_braced st)
  | t ->
    raise
      (Error
         (Printf.sprintf "expected a statement but found %s"
            (Lexer.token_to_string t)))

and parse_braced st =
  expect st Lexer.Lbrace "'{'";
  let rec go acc =
    if peek st = Lexer.Rbrace then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    if peek st = Lexer.Eof then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Lexer.Eof "end of input";
  e
