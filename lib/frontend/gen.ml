open Pipesched_ir

type state = {
  mutable next_id : int;
  mutable acc : Tuple.t list; (* reversed *)
  known : (string, Operand.t) Hashtbl.t; (* current value per var (reuse) *)
  reuse : bool;
}

let emit st op a b =
  let id = st.next_id in
  st.next_id <- id + 1;
  st.acc <- Tuple.make ~id op a b :: st.acc;
  Operand.Ref id

let gen_var st v =
  if st.reuse then
    match Hashtbl.find_opt st.known v with
    | Some o -> o
    | None ->
      let o = emit st Op.Load (Operand.Var v) Operand.Null in
      Hashtbl.replace st.known v o;
      o
  else emit st Op.Load (Operand.Var v) Operand.Null

let rec gen_expr st = function
  | Ast.Int n -> emit st Op.Const (Operand.Imm n) Operand.Null
  | Ast.Var v -> gen_var st v
  | Ast.Unop (op, e) ->
    let a = gen_expr st e in
    emit st op a Operand.Null
  | Ast.Binop (op, e1, e2) ->
    let a = gen_expr st e1 in
    let b = gen_expr st e2 in
    emit st op a b

let gen_stmt st = function
  | Ast.Assign (v, e) ->
    let value = gen_expr st e in
    ignore (emit st Op.Store (Operand.Var v) value);
    if st.reuse then Hashtbl.replace st.known v value
  | Ast.If _ | Ast.While _ ->
    invalid_arg
      "Gen.generate: control flow in a basic block (use Pipesched_cflow)"

let generate ?(reuse = false) prog =
  let st = { next_id = 1; acc = []; known = Hashtbl.create 16; reuse } in
  List.iter (gen_stmt st) prog;
  Block.of_tuples_exn (List.rev st.acc)
