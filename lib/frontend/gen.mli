(** Tuple generation: source AST to tuple code (§3.1).

    The translation follows the paper's code-generation convention: "the
    first reference to a variable causes a load for that variable to be
    generated, and a store is generated when a variable is assigned a
    value".

    Two modes:

    - [~reuse:false] (the default) is the traditional load-on-demand code
      generator the paper's §2.1 describes as producing many dependences:
      {e every} occurrence of a variable emits a fresh [Load] and every
      integer literal a fresh [Const].  The optimizer then coalesces.
    - [~reuse:true] tracks the current value of each variable (after a load
      or an assignment) and reuses it, emitting at most one [Load] per
      variable version — roughly what a DAG-building front end produces
      directly. *)

(** [generate ?reuse prog] compiles a straight-line source program to a
    valid tuple block.  Tuple ids are assigned sequentially from 1.
    Raises [Invalid_argument] on [If]/[While] (whole-program compilation
    lives in [Pipesched_cflow]). *)
val generate : ?reuse:bool -> Ast.program -> Pipesched_ir.Block.t
