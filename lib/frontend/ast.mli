(** Abstract syntax of the mini source language.

    The prototype compiler's input is a basic block of assignment
    statements over integer variables (see the paper's Figure 3 and the
    synthetic-benchmark generator of §5.2):

    {v
      b = 15;
      a = b * a;
      c = (a + b) / 2;
    v}

    Expressions use the binary/unary operations of {!Pipesched_ir.Op};
    there is no control flow — each program {e is} one basic block. *)

open Pipesched_ir

type expr =
  | Int of int
  | Var of string
  | Unop of Op.t * expr   (** [Op.Neg] only *)
  | Binop of Op.t * expr * expr

(** Comparison operators for control-flow conditions. *)
type relop = Req | Rne | Rlt | Rle | Rgt | Rge

type cond = relop * expr * expr

(** Statements.  [Assign] is the §5.2 straight-line core the paper's
    experiments run on; [If]/[While] are the structured control flow of
    the arbitrary-control-flow extension (§6 future work), compiled by
    {!Pipesched_cflow}. *)
type stmt =
  | Assign of string * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list

type program = stmt list

(** [eval_relop r x y] — the comparison's truth on concrete integers. *)
val eval_relop : relop -> int -> int -> bool

(** True when the program is assignment-only (a single basic block). *)
val straight_line : program -> bool

(** Variables read by the expression, left to right with duplicates. *)
val expr_vars : expr -> string list

(** Variables read anywhere in the program (including in conditions),
    deduplicated, in first-occurrence order. *)
val read_vars : program -> string list

(** Variables assigned by the program, deduplicated, in order. *)
val written_vars : program -> string list

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
