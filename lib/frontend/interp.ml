open Pipesched_ir

type env = string -> int

exception Out_of_fuel

let run_program ?(fuel = 100_000) prog ~env =
  let mem = Hashtbl.create 16 in
  let touched = Hashtbl.create 16 in
  let read v =
    Hashtbl.replace touched v ();
    match Hashtbl.find_opt mem v with Some x -> x | None -> env v
  in
  let write v x =
    Hashtbl.replace touched v ();
    Hashtbl.replace mem v x
  in
  let rec eval = function
    | Ast.Int n -> n
    | Ast.Var v -> read v
    | Ast.Unop (op, e) -> Op.eval1 op (eval e)
    | Ast.Binop (op, e1, e2) ->
      let x = eval e1 in
      let y = eval e2 in
      Op.eval2 op x y
  in
  let cond (r, l, rhs) =
    let x = eval l in
    let y = eval rhs in
    Ast.eval_relop r x y
  in
  let fuel_left = ref fuel in
  let rec exec stmt =
    if !fuel_left <= 0 then raise Out_of_fuel;
    decr fuel_left;
    match stmt with
    | Ast.Assign (v, e) -> write v (eval e)
    | Ast.If (c, then_, else_) ->
      List.iter exec (if cond c then then_ else else_)
    | Ast.While (c, body) ->
      if cond c then begin
        List.iter exec body;
        exec stmt
      end
  in
  List.iter exec prog;
  Hashtbl.fold (fun v () acc -> (v, read v) :: acc) touched []
  |> List.sort compare

let run_block blk ~env =
  let mem = Hashtbl.create 16 in
  let touched = Hashtbl.create 16 in
  let values = Hashtbl.create 16 in
  let read v =
    Hashtbl.replace touched v ();
    match Hashtbl.find_opt mem v with Some x -> x | None -> env v
  in
  let write v x =
    Hashtbl.replace touched v ();
    Hashtbl.replace mem v x
  in
  (* Errors carry the instruction index and the offending tuple, so a
     failure inside generated or fuzzed code is actionable. *)
  let malformed what i tu =
    invalid_arg
      (Printf.sprintf "Interp.run_block: %s at instruction %d [%s]" what i
         (Tuple.to_string tu))
  in
  let operand i (tu : Tuple.t) = function
    | Operand.Imm n -> n
    | Operand.Ref id -> (
      match Hashtbl.find_opt values id with
      | Some x -> x
      | None ->
        malformed (Printf.sprintf "dangling reference t%d" id) i tu)
    | Operand.Var _ | Operand.Null -> malformed "non-value operand" i tu
  in
  Array.iteri
    (fun i (tu : Tuple.t) ->
      match tu.op with
      | Op.Const -> (
        match tu.a with
        | Operand.Imm n -> Hashtbl.replace values tu.id n
        | _ -> malformed "malformed Const" i tu)
      | Op.Load -> (
        match tu.a with
        | Operand.Var v -> Hashtbl.replace values tu.id (read v)
        | _ -> malformed "malformed Load" i tu)
      | Op.Store -> (
        match tu.a with
        | Operand.Var v -> write v (operand i tu tu.b)
        | _ -> malformed "malformed Store" i tu)
      | Op.Mov | Op.Neg ->
        Hashtbl.replace values tu.id (Op.eval1 tu.op (operand i tu tu.a))
      | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Mod | Op.And | Op.Or
      | Op.Xor | Op.Shl | Op.Shr ->
        Hashtbl.replace values tu.id
          (Op.eval2 tu.op (operand i tu tu.a) (operand i tu tu.b)))
    (Block.tuples blk);
  Hashtbl.fold (fun v () acc -> (v, read v) :: acc) touched []
  |> List.sort compare

let equivalent_on prog blk ~env ~vars =
  let p = run_program prog ~env in
  let b = run_block blk ~env in
  let value_in results v =
    match List.assoc_opt v results with Some x -> x | None -> env v
  in
  List.for_all (fun v -> value_in p v = value_in b v) vars
