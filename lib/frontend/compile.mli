(** The front-end driver: source text to optimized tuple block. *)

open Pipesched_ir

(** [compile_program ?optimize ?reuse prog] generates tuples
    ({!Gen.generate}) and, when [optimize] (default [true]), runs the full
    {!Opt.optimize} pipeline. *)
val compile_program : ?optimize:bool -> ?reuse:bool -> Ast.program -> Block.t

(** [compile ?optimize ?reuse src] parses and compiles source text.
    Raises {!Parser.Error} or {!Lexer.Error} on malformed input. *)
val compile : ?optimize:bool -> ?reuse:bool -> string -> Block.t
