(** Isomorphism-stable canonical form of a block's dependence DAG.

    Two blocks that differ only in {e scheduling-irrelevant} presentation
    — instruction order (any topological reordering), tuple-id
    ("virtual register") labels, variable names, or immediate values —
    canonicalize to the same {!t}: the same canonical block, the same
    {!key} string and the same {!val-hash}.  Everything Omega actually
    consumes is preserved: operation kinds (hence pipeline candidates and
    latencies, once a machine is fixed), the data-dependence edges, and
    the memory-dependence structure — as the DAG records it.  Variable
    sharing the DAG cannot see (unordered load pairs, or an anti
    dependence collapsed into a coincident data edge) is deliberately
    erased, which widens the equivalence class without changing any
    edge.

    The construction (see DESIGN.md §10):

    + {b refinement}: each node gets a structural color, iteratively
      refined from its operation kind and the sorted colors of its
      predecessors and successors (with edge kinds), until the color
      partition stabilizes — a Weisfeiler–Leman pass specialized to DAGs;
    + {b canonical order}: a greedy topological order that always emits
      the ready node with the least (placed-predecessor positions,
      color, op) key.  Every component of the key is an isomorphism
      invariant, so isomorphic presentations emit the same order; nodes
      still tied are structurally interchangeable and either choice
      yields the same canonical block;
    + {b materialization}: the canonical {!block} is rebuilt in that
      order with ids [1..n]; memory operations connected by {e recorded}
      memory edges (flow/anti/output) form groups renamed by first
      canonical occurrence ([s0, s1, ...]), while a memory op with no
      recorded memory edge gets a private variable ([l<pos>] for loads,
      [w<pos>] for stores) — reproducing the DAG's edge set exactly;
      immediates are normalized to [0] and binary operands sorted by
      canonical producer.

    Soundness does not rest on the refinement being a complete
    invariant: consumers (the schedule cache, the study/fuzz dedup) key
    on the full {!key} string, so a hash collision — or an exotic pair
    of non-isomorphic blocks the refinement cannot separate — can only
    cost a missed dedup, never a wrong schedule.  [key]-equal blocks
    have {e identical} canonical blocks, and a schedule of the canonical
    block maps through {!perm} to a legal schedule of each original. *)

type t = {
  block : Block.t;  (** the canonical block: solve / hash this *)
  perm : int array;
      (** canonical position -> original block position (a bijection).
          Do not mutate. *)
  key : string;
      (** the canonical block rendered as text — the exact cache /
          dedup key (equality on [key] is equality of canonical forms) *)
  hash : int;  (** 64-bit FNV-1a of [key] *)
}

(** Canonicalize a block (builds the DAG internally). *)
val of_block : Block.t -> t

(** Canonicalize an already-built DAG (avoids rebuilding it). *)
val of_dag : Dag.t -> t

(** [apply t corder] maps a schedule of the {e canonical} block (an
    order array, new position -> canonical position) back onto the
    original block: new position -> original position.  The result is a
    legal order of the original block's DAG whenever [corder] is legal
    for the canonical one, with identical NOP/issue behavior on any
    machine. *)
val apply : t -> int array -> int array

(** FNV-1a (64-bit, as an OCaml [int]) of an arbitrary string — the hash
    {!of_block} applies to {!key}.  Exposed for tests and for callers
    that key auxiliary tables off precomputed key strings. *)
val hash_string : string -> int
