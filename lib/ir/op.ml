type t =
  | Const
  | Load
  | Store
  | Mov
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Neg
  | And
  | Or
  | Xor
  | Shl
  | Shr

let all =
  [ Const; Load; Store; Mov; Add; Sub; Mul; Div; Mod; Neg; And; Or; Xor;
    Shl; Shr ]

let binary_ops = [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr ]

let value_arity = function
  | Const | Load -> 0
  | Store | Mov | Neg -> 1
  | Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr -> 2

let commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Const | Load | Store | Mov | Sub | Div | Mod | Neg | Shl | Shr -> false

let eval2 op x y =
  match op with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Mod -> if y = 0 then 0 else x mod y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl ->
    let s = y land 63 in
    if s > 62 then 0 else x lsl s
  | Shr ->
    let s = y land 63 in
    if s > 62 then (if x < 0 then -1 else 0) else x asr s
  | Const | Load | Store | Mov | Neg ->
    invalid_arg "Op.eval2: not a binary operation"

let eval1 op x =
  match op with
  | Neg -> -x
  | Mov -> x
  | Const | Load | Store | Add | Sub | Mul | Div | Mod | And | Or | Xor
  | Shl | Shr ->
    invalid_arg "Op.eval1: not a unary operation"

let pure = function
  | Load | Store -> false
  | Const | Mov | Add | Sub | Mul | Div | Mod | Neg | And | Or | Xor | Shl
  | Shr ->
    true

let to_string = function
  | Const -> "Const"
  | Load -> "Load"
  | Store -> "Store"
  | Mov -> "Mov"
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Div -> "Div"
  | Mod -> "Mod"
  | Neg -> "Neg"
  | And -> "And"
  | Or -> "Or"
  | Xor -> "Xor"
  | Shl -> "Shl"
  | Shr -> "Shr"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun op -> String.lowercase_ascii (to_string op) = s) all

let pp fmt op = Format.pp_print_string fmt (to_string op)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
