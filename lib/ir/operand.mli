(** Tuple operands.

    Each tuple operand (the [alpha] and [beta] of the paper's notation) is
    either a variable name, a reference to the result of an earlier tuple, an
    immediate integer, or absent. *)

type t =
  | Var of string  (** an unambiguous program variable (see §3.1) *)
  | Ref of int     (** the value computed by the tuple with this id *)
  | Imm of int     (** an integer literal *)
  | Null           (** operand not used by this operation *)

(** [ref_id o] is [Some id] when [o] is a tuple reference. *)
val ref_id : t -> int option

(** [var_name o] is [Some v] when [o] names a variable. *)
val var_name : t -> string option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Inverse of {!to_string}: ["#v"] is a variable, ["tN"] a reference,
    an integer an immediate, ["_"] the null operand. *)
val of_string : string -> t option
