type t = Var of string | Ref of int | Imm of int | Null

let ref_id = function Ref i -> Some i | Var _ | Imm _ | Null -> None
let var_name = function Var v -> Some v | Ref _ | Imm _ | Null -> None

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_string = function
  | Var v -> "#" ^ v
  | Ref i -> "t" ^ string_of_int i
  | Imm n -> string_of_int n
  | Null -> "_"

let pp fmt o = Format.pp_print_string fmt (to_string o)

let of_string s =
  let n = String.length s in
  if s = "_" then Some Null
  else if n >= 2 && s.[0] = '#' then Some (Var (String.sub s 1 (n - 1)))
  else if n >= 2 && s.[0] = 't' then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some id -> Some (Ref id)
    | None -> None
  else
    match int_of_string_opt s with Some v -> Some (Imm v) | None -> None
