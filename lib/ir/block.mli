(** Validated basic blocks of tuple code.

    A block is a sequence of tuples in which every [Ref] operand points to a
    value-producing tuple defined {e earlier} in the sequence — the linear
    embedding of a DAG described in §3.1.  Blocks are immutable; schedulers
    produce new blocks via {!permute}. *)

type t

(** [of_tuples ts] validates and builds a block.  Errors (as [Error msg]):
    duplicate tuple ids, a [Ref] to an undefined or later tuple, or a [Ref]
    to a [Store] (which produces no value). *)
val of_tuples : Tuple.t list -> (t, string) result

(** Like {!of_tuples} but raises [Invalid_argument]. *)
val of_tuples_exn : Tuple.t list -> t

(** The tuples in block order.  The returned array is fresh. *)
val tuples : t -> Tuple.t array

(** Number of tuples. *)
val length : t -> int

(** [tuple_at b i] is the tuple at position [i] (0-based). *)
val tuple_at : t -> int -> Tuple.t

(** [pos_of_id b id] is the position of the tuple with the given id.
    Raises [Not_found] for unknown ids. *)
val pos_of_id : t -> int -> int

(** [find b id] is the tuple with the given id.  Raises [Not_found]. *)
val find : t -> int -> Tuple.t

(** Distinct variable names referenced by the block, in first-use order. *)
val vars : t -> string list

(** [permute b order] reorders the block: position [i] of the result holds
    the tuple previously at position [order.(i)].  [order] must be a
    permutation of [0 .. length b - 1] and the result must still be a valid
    block (references pointing backwards); otherwise [Invalid_argument] is
    raised.  Use {!Dag.is_legal_order} to pre-check schedules. *)
val permute : t -> int array -> t

(** Structural equality of the tuple sequences. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Inverse of {!to_string}: one tuple per line; blank lines and
    {e full-line} [#] comments are skipped (mid-line [#] always starts a
    variable operand).  [Error (line, msg)] points at the first offending
    1-based line; block-level validation errors report line 0. *)
val parse : string -> (t, int * string) result
