(** Tuple operation types.

    The intermediate form of the paper (§3.1) represents each instruction as
    a tuple [(id, op, alpha, beta)].  This module enumerates the operation
    kinds, their arities, and the algebraic facts the optimizer and the
    synthetic-benchmark generator need. *)

type t =
  | Const  (** materialize an integer literal; [alpha] is the immediate *)
  | Load   (** load a variable from memory; [alpha] is the variable *)
  | Store  (** store to a variable; [alpha] is the variable, [beta] a value *)
  | Mov    (** register-to-register copy; [alpha] is a value *)
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Neg
  | And
  | Or
  | Xor
  | Shl
  | Shr

(** All operation kinds, in declaration order. *)
val all : t list

(** Binary arithmetic/logic operations (both operands are values). *)
val binary_ops : t list

(** Number of value operands the operation consumes (0, 1 or 2). *)
val value_arity : t -> int

(** True for operations where swapping the operands preserves the result. *)
val commutative : t -> bool

(** [eval2 op x y] evaluates a binary operation on concrete integers.
    Division and modulus by zero yield 0, and shift amounts are taken
    modulo 64 (with 63 shifting everything out) — a total semantics chosen
    so that optimizer-soundness properties are testable on arbitrary
    inputs, and such that [eval2 Shl x k = x * 2^k] for [0 <= k <= 62]
    (strength reduction relies on this).
    Raises [Invalid_argument] for non-binary operations. *)
val eval2 : t -> int -> int -> int

(** [eval1 op x] evaluates a unary operation ([Neg], [Mov]).
    Raises [Invalid_argument] otherwise. *)
val eval1 : t -> int -> int

(** True when the operation's result depends only on its value operands
    (i.e., it is a candidate for constant folding and CSE): every operation
    except [Load] and [Store]. *)
val pure : t -> bool

(** Mnemonic used by printers and the assembly emitter, e.g. ["Mul"]. *)
val to_string : t -> string

(** Inverse of [to_string] (case-insensitive). *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
