module Bitset = Pipesched_prelude.Bitset

type edge_kind = Data | Mem_flow | Mem_anti | Mem_output

(* Adjacency is stored flattened as sorted [int array]s: the search
   kernels (Omega.State, Optimal) iterate predecessors and successors on
   every push/pop, and arrays keep that traversal allocation-free and
   cache-friendly.  The list accessors below are derived views. *)
type t = {
  blk : Block.t;
  preds : int array array;
  succs : int array array;
  kinds : (int * int, edge_kind) Hashtbl.t;
  ancestors : Bitset.t array;
  descendants : Bitset.t array;
}

let add_edge kinds edges u v kind =
  if u <> v && not (Hashtbl.mem kinds (u, v)) then begin
    Hashtbl.replace kinds (u, v) kind;
    edges := (u, v) :: !edges
  end

let of_block blk =
  let n = Block.length blk in
  let kinds = Hashtbl.create (n * 4) in
  let edges = ref [] in
  (* Data dependences via Ref operands. *)
  for v = 0 to n - 1 do
    let tu = Block.tuple_at blk v in
    List.iter
      (fun id -> add_edge kinds edges (Block.pos_of_id blk id) v Data)
      (Tuple.value_refs tu)
  done;
  (* Memory dependences, per variable, in block order. *)
  let last_store = Hashtbl.create 8 in
  let loads_since = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    let tu = Block.tuple_at blk v in
    match Tuple.memory_var tu with
    | None -> ()
    | Some x ->
      if Tuple.writes_memory tu then begin
        (match Hashtbl.find_opt last_store x with
         | Some s -> add_edge kinds edges s v Mem_output
         | None -> ());
        List.iter
          (fun l -> add_edge kinds edges l v Mem_anti)
          (Option.value ~default:[] (Hashtbl.find_opt loads_since x));
        Hashtbl.replace last_store x v;
        Hashtbl.replace loads_since x []
      end
      else begin
        (match Hashtbl.find_opt last_store x with
         | Some s -> add_edge kinds edges s v Mem_flow
         | None -> ());
        let prev = Option.value ~default:[] (Hashtbl.find_opt loads_since x) in
        Hashtbl.replace loads_since x (v :: prev)
      end
  done;
  let pred_lists = Array.make n [] and succ_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      pred_lists.(v) <- u :: pred_lists.(v);
      succ_lists.(u) <- v :: succ_lists.(u))
    !edges;
  let freeze lists =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      lists
  in
  let preds = freeze pred_lists and succs = freeze succ_lists in
  (* Transitive closures.  Block order is a topological order, so a single
     forward pass computes ancestors and a backward pass descendants. *)
  let ancestors = Array.init n (fun _ -> Bitset.create n) in
  for v = 0 to n - 1 do
    Array.iter
      (fun u ->
        Bitset.add ancestors.(v) u;
        Bitset.union_into ~into:ancestors.(v) ancestors.(u))
      preds.(v)
  done;
  let descendants = Array.init n (fun _ -> Bitset.create n) in
  for u = n - 1 downto 0 do
    Array.iter
      (fun v ->
        Bitset.add descendants.(u) v;
        Bitset.union_into ~into:descendants.(u) descendants.(v))
      succs.(u)
  done;
  { blk; preds; succs; kinds; ancestors; descendants }

let block d = d.blk
let length d = Array.length d.preds
let preds d i = Array.to_list d.preds.(i)
let succs d i = Array.to_list d.succs.(i)
let preds_arr d i = d.preds.(i)
let succs_arr d i = d.succs.(i)
let edge_kind d u v = Hashtbl.find_opt d.kinds (u, v)
let ancestors d i = d.ancestors.(i)
let descendants d i = d.descendants.(i)
let earliest d i = Bitset.cardinal d.ancestors.(i)
let latest d i = length d - 1 - Bitset.cardinal d.descendants.(i)

let is_legal_order d order =
  let n = length d in
  if Array.length order <> n then false
  else begin
    let new_pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun np op ->
        if op < 0 || op >= n || new_pos.(op) >= 0 then ok := false
        else new_pos.(op) <- np)
      order;
    !ok
    && (let legal = ref true in
        for v = 0 to n - 1 do
          Array.iter
            (fun u -> if new_pos.(u) >= new_pos.(v) then legal := false)
            d.preds.(v)
        done;
        !legal)
  end

let heights d ~edge_weight =
  let n = length d in
  let h = Array.make n 0 in
  for u = n - 1 downto 0 do
    Array.iter
      (fun v -> h.(u) <- max h.(u) (edge_weight ~src:u ~dst:v + h.(v)))
      d.succs.(u)
  done;
  h

let roots d =
  let acc = ref [] in
  for i = length d - 1 downto 0 do
    if Array.length d.preds.(i) = 0 then acc := i :: !acc
  done;
  !acc

let critical_path d ~edge_weight =
  Array.fold_left max 0 (heights d ~edge_weight)

let to_dot d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n  node [shape=box, fontname=monospace];\n";
  for i = 0 to length d - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=%S];\n" i
         (Tuple.to_string (Block.tuple_at d.blk i)))
  done;
  Hashtbl.iter
    (fun (u, v) kind ->
      let style, label =
        match kind with
        | Data -> ("solid", "")
        | Mem_flow -> ("dashed", "flow")
        | Mem_anti -> ("dashed", "anti")
        | Mem_output -> ("dashed", "out")
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=%s, label=%S];\n" u v style
           label))
    d.kinds;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
