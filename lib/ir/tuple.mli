(** Tuple instructions: the intermediate form of §3.1.

    A tuple is [(id, op, alpha, beta)].  Tuple ids are unique within a block
    and reference-operands always point to tuples defined earlier in the
    block, so a tuple list embeds a DAG in linear notation. *)

type t = { id : int; op : Op.t; a : Operand.t; b : Operand.t }

(** [make ~id op a b] builds a tuple, validating the operand shape against
    the operation's arity:
    - [Const] takes [Imm, Null];
    - [Load] takes [Var, Null];
    - [Store] takes [Var, (Ref|Imm)];
    - unary ops take [(Ref|Imm), Null];
    - binary ops take [(Ref|Imm), (Ref|Imm)].
    Raises [Invalid_argument] on a malformed tuple. *)
val make : id:int -> Op.t -> Operand.t -> Operand.t -> t

(** Ids of tuples this tuple reads through [Ref] operands (0, 1 or 2,
    left operand first, duplicates preserved). *)
val value_refs : t -> int list

(** [Some v] when the tuple touches memory ([Load]/[Store] of variable [v]). *)
val memory_var : t -> string option

(** True when the tuple writes memory (a [Store]). *)
val writes_memory : t -> bool

(** True when the tuple produces a value other tuples may reference
    (everything except [Store]). *)
val produces_value : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Inverse of {!to_string} (["4: Mul t1, t3"]); validates the shape like
    {!make}.  [Error msg] on malformed input. *)
val of_string : string -> (t, string) result
