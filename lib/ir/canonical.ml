type t = {
  block : Block.t;
  perm : int array;
  key : string;
  hash : int;
}

let hash_string s =
  (* FNV-1a, 64-bit arithmetic on OCaml's native int (the top bit is
     lost; irrelevant — consumers compare full keys, never only hashes). *)
  let h = ref ((0xcbf29ce4 lsl 32) lor 0x84222325) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h

let op_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i op -> Hashtbl.replace tbl op i) Op.all;
  fun op -> Hashtbl.find tbl op

let kind_index = function
  | Dag.Data -> 0
  | Dag.Mem_flow -> 1
  | Dag.Mem_anti -> 2
  | Dag.Mem_output -> 3

(* ------------------------------------------------------------------ *)
(* Refinement: Weisfeiler-Leman colors over the DAG.                   *)

let refine dag opix =
  let n = Array.length opix in
  let color = Array.map (fun o -> Hashtbl.hash (0x9e37, o)) opix in
  let distinct colors =
    let seen = Hashtbl.create (2 * n) in
    Array.iter (fun c -> Hashtbl.replace seen c ()) colors;
    Hashtbl.length seen
  in
  let classes = ref (distinct color) in
  (* Each round folds in one more hop of structure; [n] rounds always
     suffice, and the class count is monotone, so stop as soon as a
     round fails to split any class. *)
  let rec go round =
    if round >= n then ()
    else begin
      let next =
        Array.init n (fun v ->
            let side edges =
              let a =
                Array.map
                  (fun u ->
                    let k =
                      match Dag.edge_kind dag u v with
                      | Some k -> kind_index k
                      | None -> (
                        match Dag.edge_kind dag v u with
                        | Some k -> kind_index k
                        | None -> 4)
                    in
                    Hashtbl.hash (k, color.(u)))
                  edges
              in
              Array.sort compare a;
              Array.to_list a
            in
            Hashtbl.hash
              (color.(v), side (Dag.preds_arr dag v), side (Dag.succs_arr dag v)))
      in
      Array.blit next 0 color 0 n;
      let c = distinct color in
      if c > !classes then begin
        classes := c;
        go (round + 1)
      end
    end
  in
  go 0;
  color

(* ------------------------------------------------------------------ *)
(* Canonical order: greedy Kahn, least invariant key first.            *)

let canonical_order dag opix color =
  let n = Array.length opix in
  let placed = Array.make n (-1) in
  let perm = Array.make n 0 in
  let indeg = Array.init n (fun v -> Array.length (Dag.preds_arr dag v)) in
  (* The key of a ready node: canonical positions of its (already
     placed) predecessors tagged with edge kinds, then its refined
     color, then its op.  All components are isomorphism invariants;
     nodes equal on the full key are interchangeable. *)
  let key v =
    let ps =
      Array.map
        (fun u ->
          let k =
            match Dag.edge_kind dag u v with
            | Some k -> kind_index k
            | None -> 4
          in
          (placed.(u) * 8) + k)
        (Dag.preds_arr dag v)
    in
    Array.sort compare ps;
    (Array.to_list ps, color.(v), opix.(v))
  in
  for j = 0 to n - 1 do
    let best = ref (-1) and best_key = ref ([], 0, 0) in
    for v = 0 to n - 1 do
      if placed.(v) < 0 && indeg.(v) = 0 then begin
        let k = key v in
        if !best < 0 || compare k !best_key < 0 then begin
          best := v;
          best_key := k
        end
      end
    done;
    let v = !best in
    placed.(v) <- j;
    perm.(j) <- v;
    Array.iter (fun w -> indeg.(w) <- indeg.(w) - 1) (Dag.succs_arr dag v)
  done;
  (perm, placed)

(* ------------------------------------------------------------------ *)
(* Materialization: rebuild the block in canonical clothing.           *)

let materialize dag blk placed perm =
  let n = Array.length perm in
  (* Canonical variable names must be a function of the DAG alone, not
     of source-variable sharing the DAG cannot see: an anti dependence
     (load x before store x) whose pair already carries a data edge is
     recorded as [Data] by [Dag.of_block] (first kind wins), so two
     stores can share a variable with a load textually while being
     structurally indistinguishable.  Group memory operations by the
     memory-kind edges the DAG actually recorded (union-find); each
     group renamed [s<k>] by first canonical occurrence.  A memory op
     with no recorded memory edge gets a private variable — [l<j>] for
     loads (unordered loads carry no constraint; splitting them is
     invisible to Omega and maximizes dedup) — which reproduces the
     original edge set exactly, since any relation to its old
     var-mates either never existed or survives as the data edge. *)
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  for v = 0 to n - 1 do
    Array.iter
      (fun u ->
        match Dag.edge_kind dag u v with
        | Some (Dag.Mem_flow | Dag.Mem_anti | Dag.Mem_output) ->
          let ru = find u and rv = find v in
          if ru <> rv then parent.(ru) <- rv
        | Some Dag.Data | None -> ())
      (Dag.preds_arr dag v)
  done;
  let grouped = Array.make n false in
  for v = 0 to n - 1 do
    let r = find v in
    if r <> v then begin
      grouped.(r) <- true;
      grouped.(v) <- true
    end
  done;
  let names = Hashtbl.create 8 in
  let var_name j v =
    let tu = Block.tuple_at blk v in
    match Tuple.memory_var tu with
    | None -> None
    | Some _ ->
      let r = find v in
      if grouped.(r) then begin
        match Hashtbl.find_opt names r with
        | Some nm -> Some nm
        | None ->
          let nm = Printf.sprintf "s%d" (Hashtbl.length names) in
          Hashtbl.replace names r nm;
          Some nm
      end
      else if Tuple.writes_memory tu then
        Some (Printf.sprintf "w%d" j)
      else Some (Printf.sprintf "l%d" j)
  in
  let canon_ref id = placed.(Block.pos_of_id blk id) + 1 in
  let value = function
    | Operand.Ref id -> Operand.Ref (canon_ref id)
    | _ -> Operand.Imm 0
  in
  (* Explicit left-to-right loop: the [s<k>] numbering is first-occurrence
     stateful, and [List.init]'s evaluation order is unspecified. *)
  let acc = ref [] in
  for j = 0 to n - 1 do
    let tu =
        let v = perm.(j) in
        let tu = Block.tuple_at blk v in
        let id = j + 1 in
        match tu.Tuple.op with
        | Op.Const -> Tuple.make ~id Op.Const (Operand.Imm 0) Operand.Null
        | Op.Load ->
          Tuple.make ~id Op.Load
            (Operand.Var (Option.get (var_name j v)))
            Operand.Null
        | Op.Store ->
          Tuple.make ~id Op.Store
            (Operand.Var (Option.get (var_name j v)))
            (value tu.Tuple.b)
        | op when Op.value_arity op = 1 ->
          Tuple.make ~id op (value tu.Tuple.a) Operand.Null
        | op ->
          (* Binary: the DAG keeps one Data edge per (producer,
             consumer) pair and never sees operand sides, so the text
             must carry exactly the *set* of canonical producers —
             sorted, deduplicated (Or t1, t1 and Or 3, t1 are
             structurally identical), padded with immediates.  Omega
             treats operands symmetrically, so this only widens the
             equivalence class; re-parsing rebuilds the same edges. *)
          let a = value tu.Tuple.a and b = value tu.Tuple.b in
          let lo, hi =
            match (a, b) with
            | Operand.Ref i, Operand.Ref j when i = j -> (a, Operand.Imm 0)
            | Operand.Ref i, Operand.Ref j when i > j -> (b, a)
            | Operand.Ref _, Operand.Ref _ -> (a, b)
            | Operand.Ref _, _ -> (a, Operand.Imm 0)
            | _, Operand.Ref _ -> (b, Operand.Imm 0)
            | _, _ -> (Operand.Imm 0, Operand.Imm 0)
          in
          Tuple.make ~id op lo hi
    in
    acc := tu :: !acc
  done;
  Block.of_tuples_exn (List.rev !acc)

let of_dag dag =
  let blk = Dag.block dag in
  let n = Dag.length dag in
  let opix = Array.init n (fun i -> op_index (Block.tuple_at blk i).Tuple.op) in
  let color = refine dag opix in
  let perm, placed = canonical_order dag opix color in
  let cblk = materialize dag blk placed perm in
  let key = Block.to_string cblk in
  { block = cblk; perm; key; hash = hash_string key }

let of_block blk = of_dag (Dag.of_block blk)

let apply t corder = Array.map (fun cpos -> t.perm.(cpos)) corder
