type t = { id : int; op : Op.t; a : Operand.t; b : Operand.t }

let is_value = function
  | Operand.Ref _ | Operand.Imm _ -> true
  | Operand.Var _ | Operand.Null -> false

let shape_ok op a b =
  match op with
  | Op.Const -> (match a, b with Operand.Imm _, Operand.Null -> true | _ -> false)
  | Op.Load -> (match a, b with Operand.Var _, Operand.Null -> true | _ -> false)
  | Op.Store -> (match a with Operand.Var _ -> is_value b | _ -> false)
  | Op.Mov | Op.Neg -> is_value a && b = Operand.Null
  | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Mod | Op.And | Op.Or | Op.Xor
  | Op.Shl | Op.Shr ->
    is_value a && is_value b

let make ~id op a b =
  if not (shape_ok op a b) then
    invalid_arg
      (Printf.sprintf "Tuple.make: malformed %s tuple (%s, %s)"
         (Op.to_string op) (Operand.to_string a) (Operand.to_string b));
  { id; op; a; b }

let value_refs t =
  let of_operand o = match Operand.ref_id o with Some i -> [ i ] | None -> [] in
  of_operand t.a @ of_operand t.b

let memory_var t =
  match t.op with
  | Op.Load | Op.Store -> Operand.var_name t.a
  | _ -> None

let writes_memory t = t.op = Op.Store
let produces_value t = t.op <> Op.Store

let equal (x : t) y = x = y

let to_string t =
  match t.op with
  | Op.Const | Op.Load ->
    Printf.sprintf "%d: %s %s" t.id (Op.to_string t.op)
      (Operand.to_string t.a)
  | Op.Mov | Op.Neg ->
    Printf.sprintf "%d: %s %s" t.id (Op.to_string t.op)
      (Operand.to_string t.a)
  | _ ->
    Printf.sprintf "%d: %s %s, %s" t.id (Op.to_string t.op)
      (Operand.to_string t.a) (Operand.to_string t.b)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_string line =
  let line = String.trim line in
  match String.index_opt line ':' with
  | None -> Error "missing ':' after the tuple id"
  | Some colon ->
    let id_text = String.trim (String.sub line 0 colon) in
    let rest =
      String.trim
        (String.sub line (colon + 1) (String.length line - colon - 1))
    in
    (match int_of_string_opt id_text with
     | None -> Error ("bad tuple id: " ^ id_text)
     | Some id ->
       let mnemonic, args =
         match String.index_opt rest ' ' with
         | None -> (rest, "")
         | Some sp ->
           ( String.sub rest 0 sp,
             String.trim
               (String.sub rest (sp + 1) (String.length rest - sp - 1)) )
       in
       (match Op.of_string mnemonic with
        | None -> Error ("unknown operation: " ^ mnemonic)
        | Some op ->
          let toks =
            if args = "" then []
            else
              String.split_on_char ',' args
              |> List.map String.trim
              |> List.filter (fun s -> s <> "")
          in
          let operand tok =
            match Operand.of_string tok with
            | Some o -> Ok o
            | None -> Error ("bad operand: " ^ tok)
          in
          let build a b =
            match make ~id op a b with
            | t -> Ok t
            | exception Invalid_argument msg -> Error msg
          in
          (match toks with
           | [] -> build Operand.Null Operand.Null
           | [ a ] ->
             Result.bind (operand a) (fun a -> build a Operand.Null)
           | [ a; b ] ->
             Result.bind (operand a) (fun a ->
                 Result.bind (operand b) (fun b -> build a b))
           | _ -> Error "too many operands")))
