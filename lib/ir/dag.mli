(** Dependence DAG of a basic block.

    Nodes are block {e positions} (0-based, in the original block order);
    edges point from producer to consumer.  Three classes of edge are built:

    - {b Data}: tuple [v] reads the value of tuple [u] via a [Ref] operand;
    - {b memory flow}: a [Load x] after a [Store x];
    - {b memory anti/output}: a [Store x] after a [Load x] / [Store x].

    All edge classes constrain scheduling identically in the paper's model
    (the consumer must wait for the producer's pipeline latency); the class
    is recorded for inspection and tests.

    The module also provides the paper's [earliest]/[latest] position bounds
    (Definitions 6 and 7) used by the quick legality check [5a]. *)

type edge_kind = Data | Mem_flow | Mem_anti | Mem_output

type t

(** Build the DAG of a block.  O(n^2 / 63) due to transitive closures. *)
val of_block : Block.t -> t

(** The block the DAG was built from. *)
val block : t -> Block.t

(** Number of nodes. *)
val length : t -> int

(** Immediate predecessors of a position — the paper's [rho].  Sorted.
    Allocates a fresh list; hot paths should use {!preds_arr}. *)
val preds : t -> int -> int list

(** Immediate successors of a position.  Sorted.  Allocates a fresh
    list; hot paths should use {!succs_arr}. *)
val succs : t -> int -> int list

(** Flattened adjacency: the predecessors of a position as a sorted
    array.  This is the DAG's own storage — O(1), no allocation — used
    by the scheduling kernels (Omega.State, Optimal).  Do not mutate. *)
val preds_arr : t -> int -> int array

(** Flattened adjacency: the successors of a position as a sorted
    array.  Do not mutate. *)
val succs_arr : t -> int -> int array

(** [edge_kind d u v] is the kind of edge [u -> v], if present. *)
val edge_kind : t -> int -> int -> edge_kind option

(** All transitive ancestors of a position, as a bitset (do not mutate). *)
val ancestors : t -> int -> Pipesched_prelude.Bitset.t

(** All transitive descendants of a position (do not mutate). *)
val descendants : t -> int -> Pipesched_prelude.Bitset.t

(** [earliest d i]: minimum number of instructions that must execute before
    position [i] in any legal schedule (= cardinality of its ancestor set).
    Definition 6 of the paper, 0-based. *)
val earliest : t -> int -> int

(** [latest d i]: maximum number of instructions that may execute before
    position [i] (= n - 1 - number of descendants).  Definition 7, 0-based. *)
val latest : t -> int -> int

(** [is_legal_order d order] checks that the schedule [order] (mapping new
    position -> original position, a permutation) respects every edge. *)
val is_legal_order : t -> int array -> bool

(** [heights d ~edge_weight] is, for each node, the weight of the heaviest
    path from that node to any sink, where traversing edge [u -> v] costs
    [edge_weight ~src:u ~dst:v].  Used for list-scheduling priorities and
    the critical-path lower bound. *)
val heights : t -> edge_weight:(src:int -> dst:int -> int) -> int array

(** [roots d] are positions with no predecessors (initially ready). *)
val roots : t -> int list

(** [critical_path d ~edge_weight] is the maximum element of {!heights}:
    the weight of the heaviest dependence chain in the block. *)
val critical_path : t -> edge_weight:(src:int -> dst:int -> int) -> int

(** Graphviz rendering of the DAG: nodes are tuples, solid edges data
    dependences, dashed edges memory ordering. *)
val to_dot : t -> string
