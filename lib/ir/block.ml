type t = { arr : Tuple.t array; pos : (int, int) Hashtbl.t }

let build arr =
  let pos = Hashtbl.create (Array.length arr * 2) in
  Array.iteri (fun i (tu : Tuple.t) -> Hashtbl.replace pos tu.id i) arr;
  { arr; pos }

let validate (ts : Tuple.t list) =
  let seen = Hashtbl.create 16 in
  let check_tuple (tu : Tuple.t) =
    if Hashtbl.mem seen tu.id then
      Error (Printf.sprintf "duplicate tuple id %d" tu.id)
    else
      let bad_ref =
        List.find_opt
          (fun r ->
            match Hashtbl.find_opt seen r with
            | None -> true (* undefined or forward reference *)
            | Some produces -> not produces)
          (Tuple.value_refs tu)
      in
      match bad_ref with
      | Some r ->
        Error
          (Printf.sprintf "tuple %d references %d, which is %s" tu.id r
             (if Hashtbl.mem seen r then "not a value-producing tuple"
              else "undefined or defined later"))
      | None ->
        Hashtbl.replace seen tu.id (Tuple.produces_value tu);
        Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | tu :: rest -> ( match check_tuple tu with Ok () -> go rest | e -> e)
  in
  go ts

let of_tuples ts =
  match validate ts with
  | Ok () -> Ok (build (Array.of_list ts))
  | Error _ as e -> e

let of_tuples_exn ts =
  match of_tuples ts with
  | Ok b -> b
  | Error msg -> invalid_arg ("Block.of_tuples_exn: " ^ msg)

let tuples b = Array.copy b.arr
let length b = Array.length b.arr
let tuple_at b i = b.arr.(i)

let pos_of_id b id =
  match Hashtbl.find_opt b.pos id with Some i -> i | None -> raise Not_found

let find b id = b.arr.(pos_of_id b id)

let vars b =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun tu ->
      match Tuple.memory_var tu with
      | Some v when not (Hashtbl.mem seen v) ->
        Hashtbl.replace seen v ();
        acc := v :: !acc
      | Some _ | None -> ())
    b.arr;
  List.rev !acc

let permute b order =
  let n = Array.length b.arr in
  if Array.length order <> n then
    invalid_arg "Block.permute: order length mismatch";
  let used = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || used.(i) then
        invalid_arg "Block.permute: not a permutation";
      used.(i) <- true)
    order;
  let ts = Array.to_list (Array.map (fun i -> b.arr.(i)) order) in
  match of_tuples ts with
  | Ok b' -> b'
  | Error msg -> invalid_arg ("Block.permute: illegal schedule: " ^ msg)

let equal b1 b2 =
  Array.length b1.arr = Array.length b2.arr
  && Array.for_all2 Tuple.equal b1.arr b2.arr

let pp fmt b =
  Array.iteri
    (fun i tu ->
      if i > 0 then Format.pp_print_newline fmt ();
      Tuple.pp fmt tu)
    b.arr

let to_string b = Format.asprintf "%a" pp b

let parse text =
  let rec go lineno acc = function
    | [] -> (
      match of_tuples (List.rev acc) with
      | Ok blk -> Ok blk
      | Error msg -> Error (0, msg))
    | raw :: rest ->
      (* Only full-line comments: '#' also prefixes variable operands. *)
      let body = String.trim raw in
      if body = "" || body.[0] = '#' then go (lineno + 1) acc rest
      else
        match Tuple.of_string body with
        | Ok tu -> go (lineno + 1) (tu :: acc) rest
        | Error msg -> Error (lineno, msg)
  in
  go 1 [] (String.split_on_char '\n' text)
