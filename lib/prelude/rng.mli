(** Deterministic splittable pseudo-random numbers (splitmix64).

    Every experiment in this repository is seeded, so any table or figure can
    be regenerated bit-for-bit.  The generator is the splitmix64 sequence of
    Steele, Lea and Flood; it is small, fast and has no global state. *)

type t

(** [create seed] is a fresh generator.  Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [at seed n] is the generator [create seed] after exactly [n] draws, in
    O(1): [bits (at seed n)] equals the [(n+1)]-th value of [bits (create
    seed)].  This makes per-index seeds ([bits (at master i)]) a pure
    function of [(master, i)] — any contiguous slice of the stream can be
    produced without replaying the prefix, which is what lets sharded and
    serial corpus generation agree exactly.  Requires [n >= 0]. *)
val at : int -> int -> t

(** [split t] derives an independent generator; [t] advances by one step. *)
val split : t -> t

(** Next raw 64-bit value (as an OCaml [int], top bit cleared). *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound).  Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive.  Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [choose t arr] picks a uniform element.  Requires a non-empty array. *)
val choose : t -> 'a array -> 'a

(** [weighted t pairs] picks an element with probability proportional to its
    non-negative integer weight.  Requires positive total weight. *)
val weighted : t -> (int * 'a) list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
