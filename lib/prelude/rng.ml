type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let at seed n =
  if n < 0 then invalid_arg "Rng.at: negative index";
  (* Each draw advances state by exactly [golden_gamma] before mixing, so
     the state after [n] draws from [create seed] is [seed + n * gamma]. *)
  { state = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int n) golden_gamma) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (next_int64 t) land max_int

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t = float_of_int (bits t) /. float_of_int max_int

let bool t = bits t land 1 = 1

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted: total weight must be positive";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (w, x) :: rest -> if k < w then x else pick (k - w) rest
  in
  pick k pairs

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
