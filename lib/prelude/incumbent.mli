(** Shared incumbent for parallel branch-and-bound searches.

    An incumbent couples a lock-free {e bound} — one [Atomic.t] int
    packing the pair [(nops, owner)] so that numeric order is
    lexicographic order — with a mutex-guarded {e payload} slot holding
    the best schedule found so far.  The packed key is monotone
    decreasing, which is what makes concurrent use sound for
    alpha-beta pruning: a worker that reads a stale key sees an {e older
    (weaker)} bound, so it can only prune less than the freshest bound
    would allow, never more.  The optimum is therefore never discarded
    by racing readers.

    Determinism contract.  Each searcher carries a {e task rank}: the
    position of its subtree in the serial lexicographic enumeration of
    the search frontier ([-1] for the seed/probe incumbent, which
    precedes every subtree).  Equal-NOP results are resolved by rank —
    {!admits} and {!submit} accept [(nops, task)] only when it is
    lexicographically below the current key, and {!limit} lets a
    searcher keep exploring bound-[v] ties exactly while the current
    owner outranks it.  A completed search thus converges to the
    lowest-ranked subtree containing an optimal schedule regardless of
    timing or worker count, so the reported (value, schedule) pair is
    identical at any job count. *)

(** The atomic bound alone — what the search hot path polls.  Obtained
    from {!gate}; readers never take the payload mutex. *)
type gate

(** A shared incumbent carrying a payload of type ['a] (the best
    schedule, in whatever representation the caller uses). *)
type 'a t

(** Largest admissible task rank (the packed owner field's width bounds
    it; ranks are small frontier indices in practice). *)
val max_task : int

(** A fresh, empty incumbent: {!bound} is [None], {!limit} is
    [max_int], any valid submission is accepted. *)
val create : unit -> 'a t

val gate : 'a t -> gate

(** [bound g] is [Some (nops, owner)] for the current best, or [None]
    when nothing has been submitted.  [owner] is [-1] for a seed. *)
val bound : gate -> (int * int) option

(** [limit g ~task] is the exclusive pruning limit for the searcher of
    rank [task]: a node whose lower bound reaches [limit] cannot lead
    to an acceptable submission and may be pruned.  It is [v] when the
    current owner's rank is [<= task] (ties already belong to a
    lower-or-equal rank) and [v + 1] while the owner outranks [task]
    (rank [task] may still claim a [v]-valued tie). *)
val limit : gate -> task:int -> int

(** [admits g ~nops ~task] — would a [(nops, task)] submission be
    accepted right now?  Racy by design (the hot-path pre-check); the
    authoritative test is re-run under the mutex by {!submit}. *)
val admits : gate -> nops:int -> task:int -> bool

(** [submit t ~nops ~task make] installs [make ()] as the payload iff
    [(nops, task)] lexicographically improves on the current key, and
    returns whether it did.  [make] is evaluated only on acceptance,
    under the payload mutex.  [task] must be in [-1 .. max_task];
    [nops] must be non-negative. *)
val submit : 'a t -> nops:int -> task:int -> (unit -> 'a) -> bool

(** The final [(nops, payload)], or [None] when nothing was submitted.
    Takes the payload mutex; meant for after the workers have joined. *)
val best : 'a t -> (int * 'a) option
