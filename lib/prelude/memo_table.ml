type t = {
  key_words : int;
  value_words : int;
  max_mask : int;          (* capacity bound - 1; capacity is a power of two *)
  mutable mask : int;      (* current allocation - 1; grows up to max_mask *)
  mutable probe : int;     (* linear-probe window length *)
  mutable depths : int array;      (* per slot; -1 = empty *)
  mutable hashes : int array;      (* per slot; quick reject before key compare *)
  mutable keys : int array;        (* allocation * key_words *)
  mutable values : int array;      (* allocation * value_words *)
  mutable entries : int;
  mutable evictions : int;
}

(* Bounding the probe window bounds both the lookup cost and the age of
   what eviction can displace; 8 slots is plenty at sane load factors. *)
let max_probe = 8

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create_growing ~initial ~capacity ~key_words ~value_words =
  if capacity < 1 then invalid_arg "Memo_table.create: capacity must be >= 1";
  if key_words < 1 then invalid_arg "Memo_table.create: key_words must be >= 1";
  if value_words < 1 then
    invalid_arg "Memo_table.create: value_words must be >= 1";
  if initial < 1 then invalid_arg "Memo_table.create: initial must be >= 1";
  let cap = next_pow2 capacity in
  let alloc = min cap (next_pow2 initial) in
  {
    key_words;
    value_words;
    max_mask = cap - 1;
    mask = alloc - 1;
    probe = min alloc max_probe;
    depths = Array.make alloc (-1);
    hashes = Array.make alloc 0;
    keys = Array.make (alloc * key_words) 0;
    values = Array.make (alloc * value_words) 0;
    entries = 0;
    evictions = 0;
  }

let create ~capacity ~key_words ~value_words =
  create_growing ~initial:capacity ~capacity ~key_words ~value_words

let capacity t = t.max_mask + 1
let allocated t = t.mask + 1
let entries t = t.entries
let evictions t = t.evictions

let check_key t key =
  if Array.length key <> t.key_words then
    invalid_arg "Memo_table: key length mismatch"

let check_value t value =
  if Array.length value <> t.value_words then
    invalid_arg "Memo_table: value length mismatch"

let key_eq t slot key =
  let base = slot * t.key_words in
  let ok = ref true in
  for i = 0 to t.key_words - 1 do
    if t.keys.(base + i) <> key.(i) then ok := false
  done;
  !ok

let find t ~hash key =
  check_key t key;
  let found = ref (-1) in
  let j = ref 0 in
  while !found < 0 && !j < t.probe do
    let s = (hash + !j) land t.mask in
    if t.depths.(s) >= 0 && t.hashes.(s) = hash && key_eq t s key then
      found := s;
    incr j
  done;
  !found

let dominates t slot value =
  check_value t value;
  if slot < 0 || slot > t.mask then invalid_arg "Memo_table.dominates: slot";
  let base = slot * t.value_words in
  let ok = ref true in
  for i = 0 to t.value_words - 1 do
    if t.values.(base + i) > value.(i) then ok := false
  done;
  !ok

let depth_at t slot =
  if slot < 0 || slot > t.mask then invalid_arg "Memo_table.depth_at: slot";
  t.depths.(slot)

(* Double the allocation (toward the capacity bound) and rehash with the
   stored hashes.  Keys are distinct, so rehashing needs no key compare;
   a probe window that fills during the rehash (rare at half load) falls
   back to the normal depth rule, counting a displacement or drop as an
   eviction. *)
let grow t =
  let old_mask = t.mask
  and old_depths = t.depths
  and old_hashes = t.hashes
  and old_keys = t.keys
  and old_values = t.values in
  let alloc = (old_mask + 1) * 2 in
  t.mask <- alloc - 1;
  t.probe <- min alloc max_probe;
  t.depths <- Array.make alloc (-1);
  t.hashes <- Array.make alloc 0;
  t.keys <- Array.make (alloc * t.key_words) 0;
  t.values <- Array.make (alloc * t.value_words) 0;
  t.entries <- 0;
  for s = 0 to old_mask do
    let depth = old_depths.(s) in
    if depth >= 0 then begin
      let hash = old_hashes.(s) in
      let empty = ref (-1) and deepest = ref (-1) in
      for j = 0 to t.probe - 1 do
        let s' = (hash + j) land t.mask in
        if t.depths.(s') < 0 then begin
          if !empty < 0 then empty := s'
        end
        else if !deepest < 0 || t.depths.(s') > t.depths.(!deepest) then
          deepest := s'
      done;
      let slot =
        if !empty >= 0 then begin
          t.entries <- t.entries + 1;
          !empty
        end
        else begin
          t.evictions <- t.evictions + 1;
          if t.depths.(!deepest) > depth then !deepest else -1
        end
      in
      if slot >= 0 then begin
        Array.blit old_keys (s * t.key_words) t.keys (slot * t.key_words)
          t.key_words;
        Array.blit old_values (s * t.value_words) t.values
          (slot * t.value_words) t.value_words;
        t.depths.(slot) <- depth;
        t.hashes.(slot) <- hash
      end
    end
  done

let rec store t ~hash ~depth ~key ~value =
  check_key t key;
  check_value t value;
  if depth < 0 then invalid_arg "Memo_table.store: negative depth";
  (* Keep the load factor under 3/4 while room to grow remains, so probe
     windows rarely saturate before the capacity bound is reached. *)
  if t.mask < t.max_mask && t.entries * 4 >= (t.mask + 1) * 3 then grow t;
  let matching = ref (-1) and empty = ref (-1) and deepest = ref (-1) in
  for j = 0 to t.probe - 1 do
    let s = (hash + j) land t.mask in
    if t.depths.(s) < 0 then begin
      if !empty < 0 then empty := s
    end
    else begin
      if !matching < 0 && t.hashes.(s) = hash && key_eq t s key then
        matching := s;
      if !deepest < 0 || t.depths.(s) > t.depths.(!deepest) then deepest := s
    end
  done;
  if !matching < 0 && !empty < 0 && t.mask < t.max_mask then begin
    (* Window saturated below the bound: grow instead of evicting, then
       retry (the rehash spreads the window's entries out). *)
    grow t;
    store t ~hash ~depth ~key ~value
  end
  else begin
    let slot =
      if !matching >= 0 then !matching
      else if !empty >= 0 then begin
        t.entries <- t.entries + 1;
        !empty
      end
      else if t.depths.(!deepest) > depth then begin
        (* Depth-preferring eviction: displace the guard of the smallest
           subtree, and only for a shallower (more valuable) newcomer. *)
        t.evictions <- t.evictions + 1;
        !deepest
      end
      else -1
    in
    if slot < 0 then false
    else begin
      Array.blit key 0 t.keys (slot * t.key_words) t.key_words;
      Array.blit value 0 t.values (slot * t.value_words) t.value_words;
      t.depths.(slot) <- depth;
      t.hashes.(slot) <- hash;
      true
    end
  end

let clear t =
  Array.fill t.depths 0 (Array.length t.depths) (-1);
  t.entries <- 0;
  t.evictions <- 0
